package numaws_test

// The facade's layering contract, enforced: no godoc-visible declaration of
// pkg/numaws — exported function signature, exported type, exported struct
// field, exported method — may reference a type imported from an internal
// package. Internal types are free to appear in unexported fields and
// function bodies (that is the point of a facade); leaking one into the
// exported surface would couple embedders to the engine. The CI facade job
// runs the same check over `go doc -all` as a second line of defense.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeLeaksNoInternalTypes(t *testing.T) {
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, file, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		internal := internalImportNames(f)
		for _, decl := range f.Decls {
			checkDecl(t, fset, decl, internal)
		}
	}
	if checked == 0 {
		t.Fatal("no facade source files checked")
	}
}

// internalImportNames maps the local name of every internal import of f to
// its path ("sched" -> "repro/internal/sched").
func internalImportNames(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if !strings.Contains(path, "/internal/") {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl, internal map[string]string) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		// Methods on unexported types are not godoc-visible.
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		where := fmt.Sprintf("func %s", d.Name.Name)
		checkFieldList(t, fset, d.Type.Params, internal, where)
		checkFieldList(t, fset, d.Type.Results, internal, where)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					checkTypeExpr(t, fset, s.Type, internal, "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				exported := false
				for _, n := range s.Names {
					exported = exported || n.IsExported()
				}
				if !exported {
					continue
				}
				if s.Type != nil {
					checkExpr(t, fset, s.Type, internal, "var/const "+s.Names[0].Name)
				}
				// Constant/var initializers are part of the godoc
				// rendering too (`const X = pkg.Y` shows pkg.Y).
				for _, v := range s.Values {
					checkExpr(t, fset, v, internal, "var/const "+s.Names[0].Name+" value")
				}
			}
		}
	}
}

func exportedReceiver(recv *ast.FieldList) bool {
	for _, f := range recv.List {
		expr := f.Type
		if star, ok := expr.(*ast.StarExpr); ok {
			expr = star.X
		}
		if ident, ok := expr.(*ast.Ident); ok && ident.IsExported() {
			return true
		}
	}
	return false
}

// checkTypeExpr checks a type declaration's right-hand side, descending
// only into godoc-visible parts: exported struct fields and exported
// interface methods; everything else is checked wholesale.
func checkTypeExpr(t *testing.T, fset *token.FileSet, expr ast.Expr, internal map[string]string, where string) {
	t.Helper()
	switch e := expr.(type) {
	case *ast.StructType:
		for _, f := range e.Fields.List {
			if len(f.Names) == 0 {
				// Embedded field: always part of the exported surface.
				checkExpr(t, fset, f.Type, internal, where+" (embedded field)")
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					checkExpr(t, fset, f.Type, internal, fmt.Sprintf("%s field %s", where, n.Name))
					break
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range e.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() {
					checkExpr(t, fset, m.Type, internal, fmt.Sprintf("%s method %s", where, n.Name))
					break
				}
			}
		}
	default:
		checkExpr(t, fset, expr, internal, where)
	}
}

func checkFieldList(t *testing.T, fset *token.FileSet, fl *ast.FieldList, internal map[string]string, where string) {
	t.Helper()
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		checkExpr(t, fset, f.Type, internal, where)
	}
}

// checkExpr flags any selector expression pkg.Type whose pkg is an
// internal import.
func checkExpr(t *testing.T, fset *token.FileSet, expr ast.Expr, internal map[string]string, where string) {
	t.Helper()
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if path, leaked := internal[ident.Name]; leaked {
			t.Errorf("%s: %s leaks internal type %s.%s (%s)",
				fset.Position(n.Pos()), where, ident.Name, sel.Sel.Name, path)
		}
		return true
	})
}
