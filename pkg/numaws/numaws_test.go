package numaws_test

import (
	"context"
	"errors"
	"runtime"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/numaws"
)

func small(t *testing.T, opts ...numaws.Option) *numaws.Session {
	t.Helper()
	s, err := numaws.New(append([]numaws.Option{numaws.WithScale(numaws.ScaleSmall)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesOptions(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []numaws.Option
		want string // substring of the expected error
	}{
		{"unknown topology", []numaws.Option{numaws.WithTopology("nope")}, "unknown topology"},
		{"unknown policy", []numaws.Option{numaws.WithPolicy("nope")}, "cilk, numaws"},
		{"empty policy", []numaws.Option{numaws.WithPolicy("")}, "empty policy"},
		{"too many workers", []numaws.Option{numaws.WithTopology("2x4"), numaws.WithWorkers(9)}, "out of range"},
		{"negative workers", []numaws.Option{numaws.WithWorkers(-1)}, "negative"},
		{"zero seed", []numaws.Option{numaws.WithSeed(0)}, "non-zero"},
		{"zero seeds", []numaws.Option{numaws.WithSeeds(0)}, "at least one seed"},
		{"zero jobs", []numaws.Option{numaws.WithJobs(0)}, "at least one job"},
		{"unknown bench", []numaws.Option{numaws.WithBenchmarks("nope")}, "no benchmark named"},
		{"duplicate bench", []numaws.Option{numaws.WithBenchmarks("heat", "heat")}, "named twice"},
		{"bad scale", []numaws.Option{numaws.WithScale(numaws.Scale(99))}, "unknown scale"},
		{"zero option", []numaws.Option{{}}, "zero Option"},
	} {
		_, err := numaws.New(tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSessionDescribesItsConfiguration(t *testing.T) {
	s := small(t, numaws.WithTopology("2x4"), numaws.WithPolicy("cilk"), numaws.WithWorkers(6))
	m := s.Machine()
	if m.Name != "2x4" || m.Sockets != 2 || m.Cores != 8 || !strings.Contains(m.Description, "2 sockets") {
		t.Errorf("machine = %+v", m)
	}
	if s.Policy() != "cilk" || s.Workers() != 6 {
		t.Errorf("policy/workers = %s/%d, want cilk/6", s.Policy(), s.Workers())
	}
	// Default worker count is the whole machine — the full core count,
	// with no stale 32-worker cap on big topologies.
	if got := small(t, numaws.WithTopology("8x16")).Workers(); got != 128 {
		t.Errorf("default workers on 8x16 = %d, want 128", got)
	}
	// The default suite is the registered one: the paper's nine plus the
	// five Cilk-suite additions. (Tests registering their own benchmarks
	// unregister on cleanup, so the count is stable.)
	benches := small(t).Benchmarks()
	if len(benches) != 14 {
		t.Fatalf("%d benchmarks, want 14", len(benches))
	}
	sub := small(t, numaws.WithBenchmarks("heat", "cg")).Benchmarks()
	if len(sub) != 2 || sub[0].Name != "heat" || sub[1].Name != "cg" {
		t.Errorf("restricted suite = %+v", sub)
	}
}

func TestDiscoveryLists(t *testing.T) {
	topos := numaws.Topologies()
	if len(topos) == 0 || topos[0] != "paper-4x8" {
		t.Errorf("Topologies() = %v", topos)
	}
	pols := numaws.Policies()
	want := []string{"adaptive-bias", "cilk", "numaws", "socket-first", "steal-half"}
	if !slices.Equal(pols, want) {
		t.Errorf("Policies() = %v, want %v", pols, want)
	}
}

func TestMeasureAndRun(t *testing.T) {
	s := small(t, numaws.WithWorkers(8), numaws.WithBenchmarks("cilksort"))
	row, err := s.Measure(t.Context(), "cilksort")
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "cilksort" || row.P != 8 || row.TS <= 0 || row.Cilk.T1 <= 0 || row.NUMAWS.TP <= 0 {
		t.Errorf("row = %+v", row)
	}
	if row.NUMAWS.Scalability() <= 1 {
		t.Errorf("no speedup at P=8: %.2f", row.NUMAWS.Scalability())
	}
	rep, err := s.Run(t.Context(), "cilksort")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != "numaws" || rep.Workers != 8 || rep.Time <= 0 || rep.Work <= 0 {
		t.Errorf("run report = %+v", rep)
	}
	if rep.Accesses.PrivateHit == 0 {
		t.Error("run report missing memory accesses")
	}
	ts, err := s.RunSerial(t.Context(), "cilksort")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Policy != "serial" || ts.Workers != 1 || ts.Time <= rep.Time {
		t.Errorf("serial report = %+v (parallel %d)", ts, rep.Time)
	}
	if _, err := s.Measure(t.Context(), "heat"); err == nil {
		t.Error("Measure of a benchmark outside the session's suite succeeded")
	}
}

func TestEachStreamsAndAgreesWithMeasureAll(t *testing.T) {
	s := small(t, numaws.WithWorkers(8), numaws.WithSeeds(2), numaws.WithBenchmarks("cilksort", "heat"))
	var mu sync.Mutex
	var runs []numaws.Run
	rows, err := s.Each(t.Context(), func(r numaws.Run) {
		mu.Lock()
		runs = append(runs, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 specs x (TS + 2 platforms x (T1 + 2 seed runs)).
	if want := 2 * (1 + 2*(1+2)); len(runs) != want {
		t.Errorf("streamed %d runs, want %d", len(runs), want)
	}
	for _, r := range runs {
		if r.Time <= 0 {
			t.Errorf("streamed run %+v has non-positive time", r)
		}
	}
	plain, err := s.MeasureAll(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(plain) != 2 || rows[0] != plain[0] || rows[1] != plain[1] {
		t.Errorf("Each rows differ from MeasureAll rows:\n%+v\n%+v", rows, plain)
	}
	if _, err := s.Each(t.Context(), nil); err == nil {
		t.Error("Each with a nil callback succeeded")
	}
}

// TestMeasureAllPreCancelled pins prompt failure under an already-cancelled
// context: no simulation runs, the context's error surfaces, and no
// goroutine outlives the call.
func TestMeasureAllPreCancelled(t *testing.T) {
	s := small(t, numaws.WithWorkers(8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rows, err := s.MeasureAll(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Errorf("cancelled MeasureAll returned rows: %+v", rows)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-cancelled MeasureAll took %v, want prompt return", d)
	}
}

// TestMeasureAllMidRunCancellation pins the streaming-cancellation
// contract: cancelling mid-sweep stops the run promptly with ctx.Err(),
// the rows streamed before the cancellation are valid measurements, and no
// goroutines leak (goleak-style before/after counting).
func TestMeasureAllMidRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	s := small(t, numaws.WithWorkers(8), numaws.WithJobs(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var partial []numaws.Run
	rows, err := s.Each(ctx, func(r numaws.Run) {
		mu.Lock()
		partial = append(partial, r)
		mu.Unlock()
		if len(partial) == 3 {
			cancel() // cancel from inside the stream, mid-run
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Errorf("cancelled Each returned aggregated rows: %+v", rows)
	}
	// The grid is 14 specs x 7 runs = 98 simulations; cancelling after 3
	// must stop the sweep long before it completes.
	mu.Lock()
	got := len(partial)
	mu.Unlock()
	if got < 3 || got > 20 {
		t.Errorf("%d runs streamed around the cancellation, want a small partial prefix", got)
	}
	// Partial rows received before the cancel are valid measurements.
	for _, r := range partial {
		if r.Time <= 0 || r.Bench == "" || r.Policy == "" {
			t.Errorf("partial streamed run invalid: %+v", r)
		}
	}
	// goleak-style check: every pool and simulation goroutine has exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across a cancelled sweep: %d before, %d after", before, after)
	}
}

// TestScalabilityAndSweep covers the curve surfaces end to end at small
// scale.
func TestScalabilityAndSweep(t *testing.T) {
	s := small(t, numaws.WithBenchmarks("cilksort"))
	series, err := s.Scalability(t.Context(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Name != "cilksort" {
		t.Fatalf("series = %+v", series)
	}
	if sp := series[0].Speedup(); sp[0] != 1 || sp[1] <= 1 {
		t.Errorf("speedup = %v", sp)
	}
	sweeps, err := s.Sweep(t.Context(), []string{"2x4", "uniform"}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 2 || sweeps[0].Topology != "2x4" || sweeps[1].Topology != "uniform" {
		t.Fatalf("sweeps = %+v", sweeps)
	}
	if _, err := s.Sweep(t.Context(), []string{"nope"}, nil); err == nil {
		t.Error("sweep over an unknown topology succeeded")
	}
}

func TestDAGsAndTimeline(t *testing.T) {
	s := small(t, numaws.WithWorkers(8), numaws.WithBenchmarks("cilksort", "heat"))
	dags, err := s.DAGs(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 2 || dags[0].Bench != "cilksort" || dags[1].Bench != "heat" {
		t.Fatalf("dags = %+v", dags)
	}
	for _, d := range dags {
		if d.Work <= 0 || d.Span <= 0 || d.Span > d.Work || d.Parallelism <= 1 {
			t.Errorf("implausible dag: %+v", d)
		}
	}
	tls, err := s.Timeline(t.Context(), "heat", 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 2 || tls[0].Policy != "cilk" || tls[1].Policy != "numaws" {
		t.Fatalf("timelines = %+v", tls)
	}
	for _, tl := range tls {
		if tl.Time <= 0 || tl.Chart == "" || tl.P != 8 {
			t.Errorf("timeline %s incomplete: time=%d p=%d", tl.Policy, tl.Time, tl.P)
		}
	}
	// A cilk session records one timeline, not the same policy twice.
	cs := small(t, numaws.WithWorkers(8), numaws.WithPolicy("cilk"), numaws.WithBenchmarks("heat"))
	one, err := cs.Timeline(t.Context(), "heat", 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Policy != "cilk" {
		t.Errorf("cilk session timelines = %+v", one)
	}
}

// sumTree is the quickstart computation: sum of squares by binary
// spawning.
func sumTree(lo, hi int, out *int64) numaws.Task {
	return func(ctx numaws.Context) {
		if hi-lo <= 1024 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i) * int64(i)
			}
			*out = s
			ctx.Compute(int64(hi - lo))
			return
		}
		mid := (lo + hi) / 2
		var left, right int64
		ctx.Spawn(sumTree(lo, mid, &left))
		ctx.Call(sumTree(mid, hi, &right))
		ctx.Sync()
		*out = left + right
		ctx.Compute(1)
	}
}

func TestRunTaskUserComputation(t *testing.T) {
	s := small(t, numaws.WithWorkers(16))
	const n = 1 << 18
	var want int64
	for i := int64(0); i < n; i++ {
		want += i * i
	}
	var serialSum int64
	ts, err := s.RunTaskSerial(t.Context(), sumTree(0, n, &serialSum))
	if err != nil {
		t.Fatal(err)
	}
	if serialSum != want || ts.Time <= 0 || ts.Policy != "serial" {
		t.Errorf("serial: sum=%d (want %d), report %+v", serialSum, want, ts)
	}
	var parSum int64
	rep, err := s.RunTask(t.Context(), sumTree(0, n, &parSum))
	if err != nil {
		t.Fatal(err)
	}
	if parSum != want {
		t.Errorf("parallel sum = %d, want %d", parSum, want)
	}
	if rep.Time >= ts.Time {
		t.Errorf("16 workers (%d cycles) not faster than serial (%d)", rep.Time, ts.Time)
	}
	if rep.Steals == 0 {
		t.Error("parallel run recorded no steals")
	}
	// Determinism: the same session replays the same virtual time.
	var again int64
	rep2, err := s.RunTask(t.Context(), sumTree(0, n, &again))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Time != rep.Time {
		t.Errorf("same-seed RunTask differs: %d vs %d", rep2.Time, rep.Time)
	}
	// Pre-cancelled contexts short-circuit user computations too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunTask(ctx, sumTree(0, n, &again)); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTask under cancelled ctx: %v", err)
	}
}

func TestRenderersAndExporters(t *testing.T) {
	s := small(t, numaws.WithWorkers(8), numaws.WithBenchmarks("cilksort"))
	rows, err := s.MeasureAll(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for name, table := range map[string]string{
		"Table7": numaws.Table7(rows),
		"Table8": numaws.Table8(rows),
		"Fig3":   numaws.Fig3(rows),
	} {
		if !strings.Contains(table, "cilksort") {
			t.Errorf("%s missing the benchmark row:\n%s", name, table)
		}
	}
	var b strings.Builder
	if err := numaws.WriteExport(&b, numaws.Export{Rows: rows}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"cilksort"`) || !strings.Contains(b.String(), `"work_inflation"`) {
		t.Errorf("JSON export incomplete:\n%s", b.String())
	}
	b.Reset()
	if err := numaws.WriteRowsCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(b.String()), "\n") + 1; lines != 2 {
		t.Errorf("rows CSV has %d lines, want header + 1 row:\n%s", lines, b.String())
	}
	if grid := numaws.MortonGrid(4); !strings.Contains(grid, "0") {
		t.Errorf("MortonGrid empty:\n%s", grid)
	}
}

func TestScalabilityRejectsExplicitCurvelessBench(t *testing.T) {
	s := small(t)
	// matmul exists in the suite but has no Fig. 9 curve: naming it
	// explicitly must error, not silently return an empty result.
	if _, err := s.Scalability(t.Context(), []int{1, 4}, "matmul"); err == nil ||
		!strings.Contains(err.Error(), "no scalability curve") {
		t.Errorf("Scalability(matmul) err = %v, want a no-curve error", err)
	}
}

func TestMeasureAllRejectsDuplicateNames(t *testing.T) {
	s := small(t)
	// The same rule as WithBenchmarks: duplicates are an error, not a
	// silent doubling of the simulation grid.
	if _, err := s.MeasureAll(t.Context(), "heat", "heat"); err == nil ||
		!strings.Contains(err.Error(), "named twice") {
		t.Errorf("MeasureAll(heat, heat) err = %v, want named-twice error", err)
	}
}

// TestEachDistinguishesBaselineColumn pins the streaming column
// discriminator: with the session policy set to "cilk" the comparison
// degenerates to cilk-vs-cilk, and only the Baseline flag tells the two
// columns' otherwise identical runs apart.
func TestEachDistinguishesBaselineColumn(t *testing.T) {
	s := small(t, numaws.WithWorkers(4), numaws.WithPolicy("cilk"), numaws.WithBenchmarks("cilksort"))
	var mu sync.Mutex
	baseline, policyCol := 0, 0
	if _, err := s.Each(t.Context(), func(r numaws.Run) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case r.Serial:
			if r.Baseline {
				t.Errorf("serial run flagged as baseline: %+v", r)
			}
		case r.Baseline:
			baseline++
		default:
			policyCol++
		}
	}); err != nil {
		t.Fatal(err)
	}
	// T1 + one seed run per column, identical (Bench, Policy, P, Seed)
	// tuples — distinguishable only by Baseline.
	if baseline != 2 || policyCol != 2 {
		t.Errorf("column split baseline=%d policy=%d, want 2/2", baseline, policyCol)
	}
}
