package numaws

// The facade's result types. They mirror the engine's internal metrics
// types field for field, but belong to this package: the public API must
// not name internal types in exported signatures (the layering contract in
// DESIGN.md, enforced by the facadepurity analyzer in numaws-vet and the
// CI facade job), so measurements cross the boundary by value conversion.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
)

// PlatformResult is one platform's measurements for one benchmark: the
// one-worker time, the P-worker time, and the P-worker work/scheduling/idle
// breakdown summed over workers.
type PlatformResult struct {
	T1 int64 // one-worker time, cycles
	TP int64 // P-worker time, cycles
	WP int64 // summed work time at P workers
	SP int64 // summed scheduling time at P workers
	IP int64 // summed idle time at P workers
	W1 int64 // work time at one worker (= T1)
}

// SpawnOverhead is T1/TS: the cost of expressing the parallelism.
func (r PlatformResult) SpawnOverhead(ts int64) float64 {
	m := metrics.PlatformResult(r)
	return m.SpawnOverhead(ts)
}

// Scalability is T1/TP: the parallel speedup over the platform's own
// one-worker run.
func (r PlatformResult) Scalability() float64 {
	m := metrics.PlatformResult(r)
	return m.Scalability()
}

// WorkInflation is WP/T1: how much the total useful-work time grew going
// parallel — the quantity the paper's NUMA-WS scheduler exists to shrink.
func (r PlatformResult) WorkInflation() float64 {
	m := metrics.PlatformResult(r)
	return m.WorkInflation()
}

// RunFailure describes why a benchmark's measurement failed: the identity
// of the run that died plus the harness's failure classification. It is
// containment's public face — a session-level measurement call returns an
// error only for grid-level problems (cancellation, journal I/O), while a
// single benchmark's panic, deadline or verification mismatch becomes its
// row's Err with every other row intact.
type RunFailure struct {
	Bench  string
	Policy string // "" for serial-reference failures
	P      int
	Seed   int64
	// Kind classifies the failure: "panic", "verify", "timeout" or
	// "cancel". Timeouts are transient (WithRetry re-runs them); the
	// others are deterministic properties of the run.
	Kind    string
	Message string
}

// Error implements error.
func (f *RunFailure) Error() string {
	mode := f.Policy
	if mode == "" {
		mode = "serial"
	}
	return fmt.Sprintf("%s [%s P=%d seed=%d]: %s: %s", f.Bench, mode, f.P, f.Seed, f.Kind, f.Message)
}

// Row is one benchmark's full measurement: the serial elision TS and both
// platforms' results — Cilk, the classic work-stealing baseline, and
// NUMAWS, the session's policy (the paper's scheduler unless WithPolicy
// said otherwise).
type Row struct {
	Name   string
	Input  string // "input size / base case" description
	TS     int64
	Cilk   PlatformResult
	NUMAWS PlatformResult
	P      int // worker count of the TP/WP/SP/IP columns
	// Err, when non-nil, marks this row as failed: one of the benchmark's
	// runs died and containment produced an error row (measurement fields
	// zero) instead of losing the whole grid. Renderers print a diagnostic
	// line for it; the exporters carry it alongside the identity fields.
	Err *RunFailure
}

// Series is one benchmark's scalability curve (the paper's Fig. 9): TP[i]
// is the completion time at P[i] workers.
type Series struct {
	Name string
	P    []int
	TP   []int64
}

// Speedup reports T1/TP per point (P[0] must be 1).
func (s Series) Speedup() []float64 {
	m := seriesToMetrics(s)
	return m.Speedup()
}

// SweepCurve is one (benchmark, machine) scalability curve of a topology
// sweep.
type SweepCurve struct {
	Bench    string
	Topology string // the topology spec the curve ran on
	Sockets  int
	Cores    int
	P        []int
	TP       []int64
}

// Speedup reports T1/TP per point (P[0] must be 1).
func (s SweepCurve) Speedup() []float64 {
	m := sweepToMetrics(s)
	return m.Speedup()
}

// Export bundles every measurement kind for the machine-readable writers;
// any field may be empty.
type Export struct {
	Rows       []Row
	Series     []Series
	Sweeps     []SweepCurve
	Tournament *Tournament
}

// Run identifies one completed simulation of a streaming measurement (see
// Session.Each): which benchmark, under which policy ("serial" for the TS
// elision run), at which worker count and scheduler seed, and the
// completion time it measured.
type Run struct {
	Bench  string
	Policy string
	P      int
	Seed   int64
	Serial bool
	// Baseline marks runs of the classic work-stealing baseline column
	// (always "cilk"), distinguishing them from the session-policy column
	// even when the session's policy is itself "cilk". False for serial
	// runs.
	Baseline bool
	// Replayed marks a run filled from the session's resume journal
	// (WithResume) instead of simulated; Time is the journaled measurement.
	Replayed bool
	Time     int64 // virtual cycles (TS for serial runs, TP otherwise)
}

// Accesses counts memory accesses by the point of the hierarchy that
// serviced them, from fastest to slowest.
type Accesses struct {
	PrivateHit  int64 // private L1/L2 hit
	LocalLLC    int64 // shared last-level cache on the home socket
	RemoteCache int64 // a cache on another socket
	LocalDRAM   int64 // DRAM attached to the accessing socket
	RemoteDRAM  int64 // DRAM on another socket
}

// Remote reports the accesses serviced off-socket — the traffic NUMA-aware
// scheduling exists to avoid.
func (a Accesses) Remote() int64 { return a.RemoteCache + a.RemoteDRAM }

// RunReport is the outcome of one simulation (Session.Run, RunSerial,
// RunTask): the completion time plus the scheduler and memory-system
// activity behind it. Scheduler fields are zero for serial runs, which
// have no scheduler.
type RunReport struct {
	Bench   string // "" for RunTask computations
	Policy  string // registry name; "serial" for serial elision runs
	Workers int
	Time    int64 // completion time in virtual cycles

	Work  int64 // summed useful-work time over workers
	Sched int64 // summed scheduling time (promotions, syncs, pushes)
	Idle  int64 // summed idle time (failed steal attempts)

	Steals        int64 // successful deque steals
	StealAttempts int64 // all steal attempts
	Pushes        int64 // successful mailbox deposits
	MailboxHits   int64 // frames obtained from a mailbox (own or stolen)

	Accesses Accesses
}

// DAGReport is a benchmark's measured computation dag: the quantities the
// paper's Section IV bounds are stated in.
type DAGReport struct {
	Bench       string
	Work        int64 // T1: total strand cycles
	Span        int64 // T∞: critical-path cycles
	Parallelism float64
}

// Timeline is one policy's rendered per-worker execution timeline for a
// benchmark: each worker's time split into useful work, scheduler
// bookkeeping and idle probing.
type Timeline struct {
	Policy string
	P      int
	Time   int64  // completion time in virtual cycles
	Chart  string // fixed-width rendering, one row per worker
}

// Conversions between the facade types and the internal metrics types.

func failureFromMetrics(e *metrics.RowError) *RunFailure {
	if e == nil {
		return nil
	}
	return &RunFailure{Bench: e.Bench, Policy: e.Policy, P: e.P, Seed: e.Seed,
		Kind: e.Kind, Message: e.Msg}
}

func failureToMetrics(f *RunFailure) *metrics.RowError {
	if f == nil {
		return nil
	}
	return &metrics.RowError{Bench: f.Bench, Policy: f.Policy, P: f.P, Seed: f.Seed,
		Kind: f.Kind, Msg: f.Message}
}

func rowFromMetrics(m metrics.Row) Row {
	return Row{
		Name: m.Name, Input: m.Input, TS: m.TS, P: m.P,
		Cilk:   PlatformResult(m.Cilk),
		NUMAWS: PlatformResult(m.NUMAWS),
		Err:    failureFromMetrics(m.Err),
	}
}

func rowToMetrics(r Row) metrics.Row {
	return metrics.Row{
		Name: r.Name, Input: r.Input, TS: r.TS, P: r.P,
		Cilk:   metrics.PlatformResult(r.Cilk),
		NUMAWS: metrics.PlatformResult(r.NUMAWS),
		Err:    failureToMetrics(r.Err),
	}
}

func rowsFromMetrics(ms []metrics.Row) []Row {
	out := make([]Row, len(ms))
	for i, m := range ms {
		out[i] = rowFromMetrics(m)
	}
	return out
}

func rowsToMetrics(rs []Row) []metrics.Row {
	out := make([]metrics.Row, len(rs))
	for i, r := range rs {
		out[i] = rowToMetrics(r)
	}
	return out
}

func seriesFromMetrics(m metrics.Series) Series {
	return Series{Name: m.Name, P: m.P, TP: m.TP}
}

func seriesToMetrics(s Series) metrics.Series {
	return metrics.Series{Name: s.Name, P: s.P, TP: s.TP}
}

func seriesSliceFromMetrics(ms []metrics.Series) []Series {
	out := make([]Series, len(ms))
	for i, m := range ms {
		out[i] = seriesFromMetrics(m)
	}
	return out
}

func seriesSliceToMetrics(ss []Series) []metrics.Series {
	out := make([]metrics.Series, len(ss))
	for i, s := range ss {
		out[i] = seriesToMetrics(s)
	}
	return out
}

func sweepFromMetrics(m metrics.Sweep) SweepCurve {
	return SweepCurve{Bench: m.Bench, Topology: m.Topology, Sockets: m.Sockets,
		Cores: m.Cores, P: m.P, TP: m.TP}
}

func sweepToMetrics(s SweepCurve) metrics.Sweep {
	return metrics.Sweep{Bench: s.Bench, Topology: s.Topology, Sockets: s.Sockets,
		Cores: s.Cores, P: s.P, TP: s.TP}
}

func sweepsFromMetrics(ms []metrics.Sweep) []SweepCurve {
	out := make([]SweepCurve, len(ms))
	for i, m := range ms {
		out[i] = sweepFromMetrics(m)
	}
	return out
}

func sweepsToMetrics(ss []SweepCurve) []metrics.Sweep {
	out := make([]metrics.Sweep, len(ss))
	for i, s := range ss {
		out[i] = sweepToMetrics(s)
	}
	return out
}

// reportFrom flattens a core run report into the facade's RunReport.
func reportFrom(bench, policy string, rep *core.Report) RunReport {
	out := RunReport{
		Bench:   bench,
		Policy:  policy,
		Workers: rep.Workers,
		Time:    rep.Time,
	}
	if st := rep.Sched; st != nil {
		out.Work = st.WorkTotal()
		out.Sched = st.SchedTotal()
		out.Idle = st.IdleTotal()
		out.Steals = st.Steals
		out.StealAttempts = st.StealAttempts
		out.Pushes = st.Pushes
		out.MailboxHits = st.MailboxSteals + st.MailboxSelf
	}
	out.Accesses = accessesFrom(rep)
	return out
}

func accessesFrom(rep *core.Report) Accesses {
	c := rep.Cache.Count
	return Accesses{
		PrivateHit:  c[cache.KindPrivateHit],
		LocalLLC:    c[cache.KindLocalLLC],
		RemoteCache: c[cache.KindRemoteCache],
		LocalDRAM:   c[cache.KindLocalDRAM],
		RemoteDRAM:  c[cache.KindRemoteDRAM],
	}
}
