package numaws_test

import (
	"strings"
	"testing"

	"repro/pkg/numaws"
)

// registerTestPolicy registers one shared custom policy for this test
// binary (registration is permanent per process, so every test draws on
// the same instance): nearest-first with a deterministic fallback, using
// every hook field except the adaptive pair.
func registerTestPolicy(t *testing.T) string {
	t.Helper()
	const name = "test-nearest"
	err := numaws.RegisterPolicy(numaws.PolicyDef{
		Name:      name,
		StealHalf: true,
		Victim: func(r numaws.Rand, v numaws.PolicyView) int {
			if mates := v.SocketMates(v.Self()); len(mates) > 1 && v.Streak() == 0 {
				m := mates[r.Intn(len(mates)-1)]
				if m == v.Self() {
					m = mates[len(mates)-1]
				}
				return m
			}
			return v.PickUniform(r)
		},
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	return name
}

func TestRegisterPolicyMisuseIsError(t *testing.T) {
	if err := numaws.RegisterPolicy(numaws.PolicyDef{}); err == nil ||
		!strings.Contains(err.Error(), "empty policy name") {
		t.Errorf("empty-name registration: err = %v", err)
	}
	if err := numaws.RegisterPolicy(numaws.PolicyDef{Name: "no-victim"}); err == nil ||
		!strings.Contains(err.Error(), "nil Victim") {
		t.Errorf("nil-Victim registration: err = %v", err)
	}
	vic := func(r numaws.Rand, v numaws.PolicyView) int { return v.PickUniform(r) }
	if err := numaws.RegisterPolicy(numaws.PolicyDef{
		Name: "adapt-no-epoch", Victim: vic,
		Adapt: func(numaws.PolicyObservation, []float64) bool { return false },
	}); err == nil || !strings.Contains(err.Error(), "AdaptEvery") {
		t.Errorf("Adapt-without-epoch registration: err = %v", err)
	}
	if err := numaws.RegisterPolicy(numaws.PolicyDef{
		Name: "epoch-no-adapt", Victim: vic, AdaptEvery: 1024,
	}); err == nil || !strings.Contains(err.Error(), "without Adapt") {
		t.Errorf("epoch-without-Adapt registration: err = %v", err)
	}
	if err := numaws.RegisterPolicy(numaws.PolicyDef{Name: "cilk", Victim: vic}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: err = %v", err)
	}
}

// TestRegisteredPolicyFlowsThroughSession pins the registration seam end
// to end: a facade-registered policy is listed, selectable by name, and
// measures deterministically through the standard Session surface.
func TestRegisteredPolicyFlowsThroughSession(t *testing.T) {
	name := registerTestPolicy(t)
	found := false
	for _, p := range numaws.Policies() {
		if p == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Policies() = %v does not list %q", numaws.Policies(), name)
	}
	run := func() numaws.RunReport {
		s := small(t, numaws.WithWorkers(8), numaws.WithPolicy(name),
			numaws.WithBenchmarks("heat"))
		rep, err := s.Run(t.Context(), "heat")
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Time <= 0 {
		t.Errorf("run under %q: non-positive makespan %d", name, a.Time)
	}
	if a.Time != b.Time || a.Steals != b.Steals {
		t.Errorf("same-seed runs under %q diverged: %+v vs %+v", name, a, b)
	}
}
