package numaws

// Session's measurement surface: single runs, the paper's comparison
// protocol, streaming sweeps, scalability curves, topology sweeps, dag
// introspection and execution timelines. Every method takes a
// context.Context; cancellation skips every simulation not yet started and
// surfaces ctx.Err(), and simulations already running finish before the
// call returns (no goroutine outlives it).

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/sched"
)

// facadeErr converts a contained run failure crossing the boundary into
// its public type (*RunFailure, which implements error), so callers of the
// single-run surfaces classify failures without naming engine types.
// Grid-level errors (cancellation, journal I/O, name lookups) pass through
// unchanged.
func facadeErr(err error) error {
	var re *harness.RunError
	if errors.As(err, &re) {
		return failureFromMetrics(re.RowError())
	}
	return err
}

// spec resolves one benchmark name against the session's suite.
func (s *Session) spec(bench string) (harness.Spec, error) {
	for _, sp := range s.specs {
		if sp.Name == bench {
			return sp, nil
		}
	}
	names := make([]string, len(s.specs))
	for i, sp := range s.specs {
		names[i] = sp.Name
	}
	return harness.Spec{}, fmt.Errorf("numaws: no benchmark named %q in this session (have %v)", bench, names)
}

// subset resolves an optional benchmark-name filter: no names means the
// session's whole suite. Explicit names follow the same rules as
// WithBenchmarks (selectSpecs): unknown and duplicate names are errors.
func (s *Session) subset(benches []string) ([]harness.Spec, error) {
	if len(benches) == 0 {
		return s.specs, nil
	}
	out, err := selectSpecs(s.specs, benches)
	if err != nil {
		return nil, fmt.Errorf("numaws: %w", err)
	}
	return out, nil
}

// Run executes the named benchmark once under the session's policy at the
// session's worker count and returns the run report.
func (s *Session) Run(ctx context.Context, bench string) (RunReport, error) {
	sp, err := s.spec(bench)
	if err != nil {
		return RunReport{}, err
	}
	rep, err := harness.RunOne(ctx, sp, s.policy, s.options())
	if err != nil {
		return RunReport{}, facadeErr(err)
	}
	return reportFrom(bench, s.policy.Name(), rep), nil
}

// RunSerial executes the named benchmark as the serial elision (spawn
// becomes call, sync a no-op) and returns the TS report.
func (s *Session) RunSerial(ctx context.Context, bench string) (RunReport, error) {
	sp, err := s.spec(bench)
	if err != nil {
		return RunReport{}, err
	}
	rep, err := harness.RunSerial(ctx, sp, s.options())
	if err != nil {
		return RunReport{}, facadeErr(err)
	}
	return reportFrom(bench, "serial", rep), nil
}

// Measure runs the paper's full comparison protocol for one benchmark: TS,
// then T1 and TP (with the work/scheduling/idle breakdown) under both the
// classic work-stealing baseline and the session's policy.
func (s *Session) Measure(ctx context.Context, bench string) (Row, error) {
	sp, err := s.spec(bench)
	if err != nil {
		return Row{}, err
	}
	row, err := harness.Measure(ctx, sp, s.options())
	if err != nil {
		return Row{}, err
	}
	return rowFromMetrics(row), nil
}

// MeasureAll runs the comparison protocol for every benchmark of the
// session (or the named subset, in the given order). The grid's
// independent simulations execute concurrently on the session's job pool;
// rows are aggregated in canonical order, identical for every job count.
func (s *Session) MeasureAll(ctx context.Context, benches ...string) ([]Row, error) {
	specs, err := s.subset(benches)
	if err != nil {
		return nil, err
	}
	rows, err := harness.MeasureAll(ctx, specs, s.options())
	if err != nil {
		return nil, err
	}
	return rowsFromMetrics(rows), nil
}

// Each is the streaming MeasureAll: onRun receives every completed
// (benchmark, policy, P, seed) simulation as it finishes — in completion
// order, serialized — instead of the caller waiting for the aggregated
// rows, which are still returned at the end. Rows streamed before a
// cancellation are valid, completed measurements even though Each then
// returns ctx.Err() and nil rows.
func (s *Session) Each(ctx context.Context, onRun func(Run), benches ...string) ([]Row, error) {
	if onRun == nil {
		return nil, fmt.Errorf("numaws: Each requires a non-nil onRun callback")
	}
	specs, err := s.subset(benches)
	if err != nil {
		return nil, err
	}
	opt := s.options()
	opt.OnRun = func(m harness.RunMeta) {
		onRun(Run{Bench: m.Bench, Policy: m.Policy, P: m.P, Seed: m.Seed,
			Serial: m.Serial, Baseline: m.Baseline, Replayed: m.Replayed, Time: m.Time})
	}
	rows, err := harness.MeasureAll(ctx, specs, opt)
	if err != nil {
		return nil, err
	}
	return rowsFromMetrics(rows), nil
}

// Scalability measures the paper's Fig. 9 protocol under the session's
// policy: TP for every benchmark that has a scalability curve, at each of
// the given worker counts (nil points derive the machine's axis — 1 plus
// its quarter points, the paper's {1, 8, 16, 24, 32} on the default
// machine).
func (s *Session) Scalability(ctx context.Context, points []int, benches ...string) ([]Series, error) {
	specs, err := s.subset(benches)
	if err != nil {
		return nil, err
	}
	// The no-filter default measures whichever benchmarks have curves
	// (the Fig. 9 protocol), but an explicitly named benchmark without a
	// curve must not vanish silently from the result.
	for _, name := range benches {
		for _, sp := range specs {
			if sp.Name == name && sp.Fig9Name == "" {
				return nil, fmt.Errorf("numaws: benchmark %q has no scalability curve (the paper plots its -z variant instead)", name)
			}
		}
	}
	series, err := harness.MeasureScalability(ctx, specs, s.options(), points)
	if err != nil {
		return nil, facadeErr(err)
	}
	return seriesSliceFromMetrics(series), nil
}

// Sweep runs the scalability protocol across a grid of machine topologies
// (preset names or "SOCKETSxCORES" shapes) under the session's policy, one
// curve per (benchmark, machine). nil points derive each machine's axis;
// explicit points are clipped to each machine's core count. The session's
// own topology does not participate unless named.
func (s *Session) Sweep(ctx context.Context, topologies []string, points []int, benches ...string) ([]SweepCurve, error) {
	specs, err := s.subset(benches)
	if err != nil {
		return nil, err
	}
	machines, err := harness.Machines(topologies)
	if err != nil {
		return nil, err
	}
	sweeps, err := harness.MeasureTopologies(ctx, specs, machines, s.options(), points)
	if err != nil {
		return nil, facadeErr(err)
	}
	return sweepsFromMetrics(sweeps), nil
}

// DAGs measures each benchmark's computation dag — work, span and
// parallelism, the paper's Section IV quantities — by running it once
// under the session's policy with dag recording on. Benchmarks run
// concurrently on the session's job pool; results come back in suite
// order.
func (s *Session) DAGs(ctx context.Context, benches ...string) ([]DAGReport, error) {
	specs, err := s.subset(benches)
	if err != nil {
		return nil, err
	}
	opt := s.options()
	opt.RecordDAG = true
	out := make([]DAGReport, len(specs))
	err = exec.ForEach(ctx, opt.Jobs, len(specs), func(i int) error {
		rep, err := harness.RunOne(ctx, specs[i], s.policy, opt)
		if err != nil {
			return facadeErr(err)
		}
		out[i] = DAGReport{
			Bench:       specs[i].Name,
			Work:        rep.DAG.Work(),
			Span:        rep.DAG.Span(),
			Parallelism: rep.DAG.Parallelism(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Timeline runs the named benchmark with an execution-timeline recorder
// under the classic baseline and under the session's policy (once, if they
// are the same) and renders each worker's time as a fixed-width chart of
// the given column width.
func (s *Session) Timeline(ctx context.Context, bench string, width int) ([]Timeline, error) {
	sp, err := s.spec(bench)
	if err != nil {
		return nil, err
	}
	policies := []sched.Policy{sched.Cilk, s.policy}
	if s.policy == sched.Cilk {
		policies = policies[:1]
	}
	opt := s.options()
	out := make([]Timeline, 0, len(policies))
	for _, pol := range policies {
		rep, tl, err := harness.RunTraced(ctx, sp, pol, opt)
		if err != nil {
			return nil, facadeErr(err)
		}
		out = append(out, Timeline{
			Policy: pol.Name(),
			P:      opt.P,
			Time:   rep.Time,
			Chart:  tl.Render(width),
		})
	}
	return out, nil
}
