package numaws

// The sweep service's public face: the facade owns construction and
// lifecycle (store, listener, graceful drain) and hands the HTTP surface
// itself to internal/server. `numaws serve` is a thin shell over this
// file, so embedders can mount the same service in their own process —
// Handler composes with any mux — or run it standalone with
// ListenAndServe.

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"repro/internal/exec"
	"repro/internal/server"
	"repro/internal/store"
)

// ServerConfig configures NewServer.
type ServerConfig struct {
	// Addr is the listen address for ListenAndServe (host:port; port 0
	// picks a free port). Default "localhost:8080".
	Addr string
	// Store is the path of the persistent content-addressed result store
	// (a CRC-checksummed JSONL file, created if missing). Required: the
	// store is the service's whole point.
	Store string
	// Jobs bounds concurrent simulations across all requests; below 1
	// means one per CPU.
	Jobs int
	// MaxGridRuns caps a single grid request's run count; below 1 means
	// the server default.
	MaxGridRuns int
	// Logf, when non-nil, receives the service's log lines (the bound
	// address, store corruption notes, aborted grids).
	Logf func(format string, args ...any)
}

// Server is a sweep service instance: a result store plus the HTTP
// surface over it. Close releases the store.
type Server struct {
	addr  string
	logf  func(string, ...any)
	st    *store.Store
	inner *server.Server
}

// NewServer opens (or creates) the result store and builds the service
// over it. A store with a torn tail is healed at open — the corrupt
// records are dropped, counted, and reported through Logf and /statusz.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Store == "" {
		return nil, fmt.Errorf("numaws: NewServer: Store path is required")
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "localhost:8080"
	}
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = exec.DefaultJobs()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, err := store.Open(cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("numaws: %w", err)
	}
	inner, err := server.New(server.Config{
		Store: st, Jobs: jobs, MaxGridRuns: cfg.MaxGridRuns, Logf: logf,
	})
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("numaws: %w", err)
	}
	if c := st.Counters(); c.Skipped > 0 {
		logf("numaws: store %s: replayed %d record(s), dropped %d torn/corrupt line(s)",
			cfg.Store, c.Records, c.Skipped)
	}
	return &Server{addr: addr, logf: logf, st: st, inner: inner}, nil
}

// Handler returns the service's HTTP handler, for embedding in another
// server or driving through httptest.
func (s *Server) Handler() http.Handler { return s.inner.Handler() }

// ListenAndServe binds the configured address, logs the resolved one, and
// serves until ctx is cancelled. Cancellation drains gracefully: the
// listener closes, in-flight grid streams run to completion (their rows
// are already durable as they finish), and only then does ListenAndServe
// return nil.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("numaws: %w", err)
	}
	s.logf("numaws: serving on http://%s (store %s)", ln.Addr(), s.st.Path())
	hs := &http.Server{Handler: s.inner.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("numaws: serve: %w", err)
	case <-ctx.Done():
		// The drain must outlive the cancelled accept context — derive
		// from it rather than minting a fresh root.
		if err := hs.Shutdown(context.WithoutCancel(ctx)); err != nil {
			return fmt.Errorf("numaws: shutdown: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		return nil
	}
}

// Close releases the result store. Records are fsync'd as they are
// written, so Close loses nothing; safe to call twice.
func (s *Server) Close() error { return s.st.Close() }
