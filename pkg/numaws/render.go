package numaws

// Human-readable renderings and machine-readable exports of the facade's
// measurement types, delegating to the engine's table and export code so
// the CLI and any embedder print byte-identical artifacts.

import (
	"io"

	"repro/internal/layout"
	"repro/internal/metrics"
)

// Fig3 renders rows as the paper's Fig. 3: total processing time on the
// classic work-stealing baseline normalized to TS, split into work,
// scheduling and idle components.
func Fig3(rows []Row) string { return metrics.Fig3(rowsToMetrics(rows)) }

// Table7 renders rows as the paper's Fig. 7 table: TS, then T1 (spawn
// overhead) and TP (scalability) per platform, in virtual cycles.
func Table7(rows []Row) string { return metrics.Table7(rowsToMetrics(rows)) }

// Table8 renders rows as the paper's Fig. 8 table: T1, WP (work
// inflation), SP and IP per platform.
func Table8(rows []Row) string { return metrics.Table8(rowsToMetrics(rows)) }

// Fig9 renders scalability curves as a table of T1/TP speedups. Like the
// Table7/Table8 headers and the export field names, the rendered heading
// names the paper's NUMA-WS scheduler; when the measuring session was
// built WithPolicy, the curves carry that policy's runs (the CLI prints a
// note on stderr in that case).
func Fig9(series []Series) string { return metrics.Fig9(seriesSliceToMetrics(series)) }

// SweepTable renders topology-sweep curves grouped by machine.
func SweepTable(sweeps []SweepCurve) string { return metrics.SweepTable(sweepsToMetrics(sweeps)) }

// MortonGrid renders the Z-Morton index of every cell of an n x n matrix
// (the paper's Fig. 6(a)); n must be a power of two.
func MortonGrid(n int) string { return layout.Grid(n, layout.Morton, 0) }

// BlockedMortonGrid renders the blocked Z-Morton layout of an n x n matrix
// — block x block tiles in Z-Morton order, row-major inside each tile (the
// paper's Fig. 6(b)).
func BlockedMortonGrid(n, block int) string { return layout.Grid(n, layout.BlockedMorton, block) }

// WriteExport writes every measurement kind in e (any may be empty) as one
// indented JSON document carrying raw cycle counts plus the derived
// ratios.
func WriteExport(w io.Writer, e Export) error {
	m := metrics.Export{
		Rows:   rowsToMetrics(e.Rows),
		Series: seriesSliceToMetrics(e.Series),
		Sweeps: sweepsToMetrics(e.Sweeps),
	}
	if e.Tournament != nil {
		mt := tournamentToMetrics(*e.Tournament)
		m.Tournament = &mt
	}
	return metrics.WriteExport(w, m)
}

// WriteRowsCSV writes one CSV record per benchmark row: identity, raw
// cycle counts, and the derived ratios for both platforms.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	return metrics.WriteRowsCSV(w, rowsToMetrics(rows))
}

// WriteSeriesCSV writes scalability curves in long form: one CSV record
// per (series, point).
func WriteSeriesCSV(w io.Writer, series []Series) error {
	return metrics.WriteSeriesCSV(w, seriesSliceToMetrics(series))
}

// WriteSweepsCSV writes topology-sweep curves in long form: one CSV record
// per (bench, topology, point).
func WriteSweepsCSV(w io.Writer, sweeps []SweepCurve) error {
	return metrics.WriteSweepsCSV(w, sweepsToMetrics(sweeps))
}

// WriteTournamentCSV writes a ranked tournament in long form: one CSV
// record per (policy, bench, topology) cell, rank-major.
func WriteTournamentCSV(w io.Writer, t Tournament) error {
	m := tournamentToMetrics(t)
	return metrics.WriteTournamentCSV(w, &m)
}

// WriteCSV writes rows and/or series as CSV. When both are present the two
// tables are separated by a blank line, each with its own header — a
// stream for eyeballing, not for strict CSV parsers; tooling should
// receive one kind per writer (WriteRowsCSV / WriteSeriesCSV).
func WriteCSV(w io.Writer, rows []Row, series []Series) error {
	return metrics.WriteCSV(w, rowsToMetrics(rows), seriesSliceToMetrics(series))
}
