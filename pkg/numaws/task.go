package numaws

// The embeddable programming model: user fork-join computations run on the
// session's simulated machine through the facade's own Task/Context pair,
// so embedders never touch engine types. The model mirrors Cilk Plus
// extended with the paper's locality API — Spawn is cilk_spawn, Sync is
// cilk_sync, SpawnAt is cilk_spawn with an @p# place annotation — and
// stays processor-oblivious: the same program runs unchanged on any
// worker/socket count, querying NumPlaces at run time.

import (
	"context"

	"repro/internal/core"
)

// PlaceAny unsets a locality hint, the paper's @ANY annotation.
const PlaceAny = -1

// The facade constant must agree with the engine's.
var _ = [1]struct{}{}[PlaceAny-core.PlaceAny]

// Task is a unit of spawnable work in a user computation.
type Task func(Context)

// Context is the per-frame handle through which a Task expresses
// parallelism (Spawn/Sync), locality (SpawnAt/SetPlace/NumPlaces) and its
// compute footprint (Compute). Cost-model methods are no-ops on the serial
// elision.
type Context interface {
	// Spawn runs the task as a spawned child that may execute in parallel
	// with the continuation of the caller. The child inherits the
	// caller's locality hint.
	Spawn(t Task)
	// SpawnAt is Spawn with an explicit place hint (@p#), or PlaceAny to
	// unset the inherited hint for this child.
	SpawnAt(place int, t Task)
	// Sync blocks until all children spawned by this frame have returned.
	Sync()
	// Call runs the task synchronously in the current frame, like a plain
	// function call (no stealable continuation).
	Call(t Task)
	// Compute charges n cycles of pure computation to the current strand.
	Compute(n int64)
	// NumPlaces reports how many virtual places this run has (one per
	// socket in use). Programs size their place variables from it.
	NumPlaces() int
	// Place reports the current frame's locality hint (PlaceAny if
	// unset).
	Place() int
	// SetPlace updates the current frame's locality hint.
	SetPlace(p int)
	// Worker reports the executing worker's id (0 on serial executors);
	// diagnostic only.
	Worker() int
}

// taskCtx adapts the engine's context to the facade's Context interface.
type taskCtx struct {
	c core.Context
}

var _ Context = taskCtx{}

func adapt(t Task) core.Task {
	return func(c core.Context) { t(taskCtx{c: c}) }
}

func (t taskCtx) Spawn(f Task)              { t.c.Spawn(adapt(f)) }
func (t taskCtx) SpawnAt(place int, f Task) { t.c.SpawnAt(place, adapt(f)) }
func (t taskCtx) Sync()                     { t.c.Sync() }
func (t taskCtx) Call(f Task)               { t.c.Call(adapt(f)) }
func (t taskCtx) Compute(n int64)           { t.c.Compute(n) }
func (t taskCtx) NumPlaces() int            { return t.c.NumPlaces() }
func (t taskCtx) Place() int                { return t.c.Place() }
func (t taskCtx) SetPlace(p int)            { t.c.SetPlace(p) }
func (t taskCtx) Worker() int               { return t.c.Worker() }

// RunTask executes a user fork-join computation on the session's simulated
// machine under the session's policy, at the session's worker count and
// seed, and returns the run report (Bench is empty for user computations).
func (s *Session) RunTask(ctx context.Context, t Task) (RunReport, error) {
	if err := ctx.Err(); err != nil {
		return RunReport{}, err
	}
	rt := s.newRuntime(s.cfg.workers)
	rep := rt.Run(adapt(t))
	return reportFrom("", s.policy.Name(), rep), nil
}

// RunTaskSerial executes a user computation as the serial elision (spawn
// becomes call, sync a no-op) and returns its TS report.
func (s *Session) RunTaskSerial(ctx context.Context, t Task) (RunReport, error) {
	if err := ctx.Err(); err != nil {
		return RunReport{}, err
	}
	rt := s.newRuntime(1)
	rep := rt.RunSerial(adapt(t))
	return reportFrom("", "serial", rep), nil
}

// newRuntime builds a fresh simulated platform for one user computation.
func (s *Session) newRuntime(workers int) *core.Runtime {
	cfg := core.DefaultConfigOn(s.top, workers, s.policy)
	cfg.Sched.Seed = s.cfg.seed
	return core.NewRuntime(cfg)
}
