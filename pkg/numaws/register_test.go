package numaws_test

// End-to-end test of the registration hook: a benchmark registered
// through the public facade must flow through session construction,
// WithBenchmarks, the measurement protocol, the renderers and the
// exporters exactly like a built-in benchmark — without the test ever
// importing an internal package.

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/pkg/numaws"
)

// spinTask burns n charged cycles as a binary spawn tree and counts leaf
// executions so verification has something real to check.
func spinTask(n int64, grain int64, leaves *atomic.Int64) numaws.Task {
	return func(ctx numaws.Context) {
		if n <= grain {
			ctx.Compute(n)
			leaves.Add(1)
			return
		}
		half := n / 2
		ctx.Spawn(spinTask(half, grain, leaves))
		ctx.Call(spinTask(n-half, grain, leaves))
		ctx.Sync()
	}
}

func TestRegisterBenchmarkFlowsEndToEnd(t *testing.T) {
	const name = "userbench-e2e"
	defer numaws.UnregisterBenchmarkForTest(name)
	// Make runs on pool-worker goroutines (one per simulation of the
	// grid), so observations must be atomic.
	var sawScale atomic.Int64
	sawScale.Store(-1)
	err := numaws.RegisterBenchmark(numaws.BenchmarkDef{
		Name:  name,
		Input: func(s numaws.Scale) string { return "spin/64" },
		Fig3:  true,
		Curve: name,
		Make: func(scale numaws.Scale, aware bool) numaws.BenchmarkRun {
			sawScale.Store(int64(scale))
			var leaves atomic.Int64
			total := int64(1 << 16)
			return numaws.BenchmarkRun{
				Root: spinTask(total, 64, &leaves),
				Verify: func() error {
					if leaves.Load() == 0 {
						return errors.New("user benchmark executed no leaves")
					}
					return nil
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The registered name joins new sessions' default suites and resolves
	// through WithBenchmarks.
	s, err := numaws.New(
		numaws.WithScale(numaws.ScaleSmall),
		numaws.WithWorkers(8),
		numaws.WithBenchmarks("cilksort", name),
	)
	if err != nil {
		t.Fatal(err)
	}
	benches := s.Benchmarks()
	if len(benches) != 2 || benches[1].Name != name {
		t.Fatalf("session suite = %+v", benches)
	}
	if benches[1].Input != "spin/64" || !benches[1].Fig3 || benches[1].Curve != name {
		t.Errorf("registered metadata lost: %+v", benches[1])
	}

	// The full comparison protocol runs it like any built-in benchmark.
	rows, err := s.MeasureAll(t.Context(), name)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != name {
		t.Fatalf("rows = %+v", rows)
	}
	if got := numaws.Scale(sawScale.Load()); got != numaws.ScaleSmall {
		t.Errorf("Make saw scale %v, want ScaleSmall", got)
	}
	row := rows[0]
	if row.TS <= 0 || row.Cilk.T1 <= 0 || row.NUMAWS.TP <= 0 {
		t.Errorf("missing measurements: %+v", row)
	}
	if row.NUMAWS.Scalability() <= 1 {
		t.Errorf("no speedup at P=8: %.2f", row.NUMAWS.Scalability())
	}

	// Renderers and exporters carry it through.
	if table := numaws.Table7(rows); !strings.Contains(table, name) {
		t.Errorf("Table7 missing %q:\n%s", name, table)
	}
	var b strings.Builder
	if err := numaws.WriteExport(&b, numaws.Export{Rows: rows}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"`+name+`"`) {
		t.Errorf("JSON export missing %q:\n%s", name, b.String())
	}
	b.Reset()
	if err := numaws.WriteRowsCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), name) {
		t.Errorf("CSV export missing %q:\n%s", name, b.String())
	}

	// The scalability protocol picks up the registered curve.
	series, err := s.Scalability(t.Context(), []int{1, 4}, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Name != name {
		t.Errorf("series = %+v", series)
	}
}

func TestRegisterBenchmarkValidates(t *testing.T) {
	if err := numaws.RegisterBenchmark(numaws.BenchmarkDef{}); err == nil {
		t.Error("empty definition accepted")
	}
	if err := numaws.RegisterBenchmark(numaws.BenchmarkDef{Name: "nomake"}); err == nil {
		t.Error("nil Make accepted")
		numaws.UnregisterBenchmarkForTest("nomake")
	}
	// A Make returning a nil Root fails at workload construction with the
	// benchmark named — and containment turns that panic into a typed,
	// attributable error instead of crashing the caller.
	const nilRoot = "nilroot-test"
	defer numaws.UnregisterBenchmarkForTest(nilRoot)
	if err := numaws.RegisterBenchmark(numaws.BenchmarkDef{
		Name: nilRoot,
		Make: func(numaws.Scale, bool) numaws.BenchmarkRun { return numaws.BenchmarkRun{} },
	}); err != nil {
		t.Fatal(err)
	}
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithBenchmarks(nilRoot))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunSerial(t.Context(), nilRoot)
	var rf *numaws.RunFailure
	if !errors.As(err, &rf) {
		t.Fatalf("nil Root: err = %v, want *numaws.RunFailure", err)
	}
	if rf.Kind != "panic" || !strings.Contains(rf.Message, nilRoot) || !strings.Contains(rf.Message, "nil Root") {
		t.Errorf("nil-Root failure not attributable: %+v", rf)
	}

	// A collision with a built-in benchmark is an error, not a silent
	// replacement.
	err = numaws.RegisterBenchmark(numaws.BenchmarkDef{
		Name: "cilksort",
		Make: func(numaws.Scale, bool) numaws.BenchmarkRun {
			return numaws.BenchmarkRun{Root: func(ctx numaws.Context) { ctx.Compute(1) }}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("collision err = %v, want already-registered", err)
	}
}
