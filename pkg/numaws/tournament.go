package numaws

// The policy tournament's public face: every registered scheduling policy
// — built-ins and RegisterPolicy hooks alike — runs the same benchmark x
// topology grid and comes back ranked by how close it stays to the best
// completion time of every cell. The CLI's tournament subcommand and the
// sweep service's /v1/tournament endpoint are shells over the same
// machinery.

import (
	"context"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// TournamentCell is one cell of a ranked tournament entry: the policy's
// completion time for one (benchmark, topology), averaged over the
// session's seeds, and its ratio to the cell's best time across all
// policies (1.0 = this policy won the cell).
type TournamentCell struct {
	Bench    string
	Topology string
	TP       int64
	Norm     float64
}

// TournamentEntry is one policy's ranked tournament outcome.
type TournamentEntry struct {
	Rank   int
	Policy string
	// Score is the geometric mean of Norm over the cells; lower is better,
	// and 1.0 means the policy had the best time in every cell.
	Score float64
	// Cells holds one result per (bench, topology), bench-major, in the
	// tournament's axis order.
	Cells []TournamentCell
}

// Tournament is a complete ranked policy tournament: the grid axes and one
// entry per registered policy, best score first. The ranking is
// deterministic: same session configuration, same table.
type Tournament struct {
	Benches    []string
	Topologies []string
	Entries    []TournamentEntry
}

// Winner reports the top-ranked policy name ("" for an empty tournament).
func (t Tournament) Winner() string {
	if len(t.Entries) == 0 {
		return ""
	}
	return t.Entries[0].Policy
}

// Table renders the tournament as the CLI's fixed-width ranking table: a
// one-line summary, the ranked scores, then one completion-time table per
// topology.
func (t Tournament) Table() string {
	m := tournamentToMetrics(t)
	return metrics.TournamentTable(&m)
}

// Tournament runs every registered scheduling policy over the benchmark x
// topology grid and ranks them. benches empty means the session's whole
// suite; topologies nil or empty means the session's own machine, and
// otherwise follows WithTopology's forms (presets or SOCKETSxCORES). Every
// cell runs at its machine's full core count and is averaged over the
// session's seeds (WithSeeds), so machines of different sizes compete on
// their whole-machine behavior. Any cell's failure aborts the tournament —
// a ranking with missing cells would compare incomparables.
func (s *Session) Tournament(ctx context.Context, topologies []string, benches ...string) (Tournament, error) {
	specs, err := s.subset(benches)
	if err != nil {
		return Tournament{}, err
	}
	machines := []harness.Machine{{Name: s.cfg.topology, Top: s.top}}
	if len(topologies) > 0 {
		if machines, err = harness.Machines(topologies); err != nil {
			return Tournament{}, err
		}
	}
	t, err := harness.Tournament(ctx, specs, machines, harness.RegisteredPolicies(), nil, s.options())
	if err != nil {
		return Tournament{}, facadeErr(err)
	}
	return tournamentFromMetrics(t), nil
}

func tournamentFromMetrics(m metrics.Tournament) Tournament {
	t := Tournament{Benches: m.Benches, Topologies: m.Topologies}
	for _, e := range m.Entries {
		fe := TournamentEntry{Rank: e.Rank, Policy: e.Policy, Score: e.Score}
		for _, c := range e.Cells {
			fe.Cells = append(fe.Cells, TournamentCell{
				Bench: c.Bench, Topology: c.Topology, TP: c.TP, Norm: c.Norm,
			})
		}
		t.Entries = append(t.Entries, fe)
	}
	return t
}

func tournamentToMetrics(t Tournament) metrics.Tournament {
	m := metrics.Tournament{Benches: t.Benches, Topologies: t.Topologies}
	for _, e := range t.Entries {
		me := metrics.TournamentEntry{Rank: e.Rank, Policy: e.Policy, Score: e.Score}
		for _, c := range e.Cells {
			me.Cells = append(me.Cells, metrics.TournamentResult{
				Bench: c.Bench, Topology: c.Topology, TP: c.TP, Norm: c.Norm,
			})
		}
		m.Entries = append(m.Entries, me)
	}
	return m
}
