package numaws_test

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"

	"repro/pkg/numaws"
)

// TestSessionTournament pins the facade's tournament surface: every
// registered policy — including the binary's facade-registered one — is
// ranked over the requested grid, deterministically, with a renderable
// table and a CSV export.
func TestSessionTournament(t *testing.T) {
	custom := registerTestPolicy(t)
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithTopology("2x4"))
	if err != nil {
		t.Fatal(err)
	}
	tour, err := s.Tournament(t.Context(), []string{"2x4", "1x2"}, "fib", "cilksort")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tour.Benches, []string{"fib", "cilksort"}) ||
		!reflect.DeepEqual(tour.Topologies, []string{"2x4", "1x2"}) {
		t.Errorf("axes: %v / %v", tour.Benches, tour.Topologies)
	}
	all := numaws.Policies()
	if len(tour.Entries) != len(all) {
		t.Fatalf("%d entries for %d registered policies %v", len(tour.Entries), len(all), all)
	}
	found := false
	for i, e := range tour.Entries {
		if e.Rank != i+1 || len(e.Cells) != 4 {
			t.Errorf("entry %d: rank %d with %d cells, want sequential ranks over 4 cells", i, e.Rank, len(e.Cells))
		}
		if i > 0 && e.Score < tour.Entries[i-1].Score {
			t.Errorf("ranking not ascending: %+v", tour.Entries)
		}
		found = found || e.Policy == custom
	}
	if !found {
		t.Errorf("facade-registered %q missing from the tournament", custom)
	}
	if w := tour.Winner(); w != tour.Entries[0].Policy {
		t.Errorf("Winner() = %q, entries lead with %q", w, tour.Entries[0].Policy)
	}

	// Determinism: the same session configuration reproduces the ranking.
	again, err := s.Tournament(t.Context(), []string{"2x4", "1x2"}, "fib", "cilksort")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tour, again) {
		t.Errorf("tournament not deterministic across repeats")
	}

	table := tour.Table()
	if !strings.Contains(table, "Tournament: ") || !strings.Contains(table, "winner "+tour.Winner()) {
		t.Errorf("table missing summary line:\n%s", table)
	}

	var buf bytes.Buffer
	if err := numaws.WriteTournamentCSV(&buf, tour); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(all)*4; len(recs) != want {
		t.Errorf("CSV has %d records, want %d", len(recs), want)
	}
}

// TestSessionTournamentDefaultsToOwnMachine leaves topologies nil: the
// grid has exactly the session's machine as its only topology.
func TestSessionTournamentDefaultsToOwnMachine(t *testing.T) {
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithTopology("2x4"))
	if err != nil {
		t.Fatal(err)
	}
	tour, err := s.Tournament(t.Context(), nil, "fib")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tour.Topologies, []string{"2x4"}) {
		t.Errorf("topologies %v, want the session's own machine", tour.Topologies)
	}
}

// TestSessionTournamentRejectsBadAxes pins the error surface: unknown
// benchmarks and topologies fail with the facade's named-value errors.
func TestSessionTournamentRejectsBadAxes(t *testing.T) {
	s, err := numaws.New(numaws.WithScale(numaws.ScaleSmall), numaws.WithTopology("2x4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tournament(t.Context(), nil, "nope"); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown benchmark: err = %v", err)
	}
	if _, err := s.Tournament(t.Context(), []string{"weird"}, "fib"); err == nil ||
		!strings.Contains(err.Error(), "weird") {
		t.Errorf("unknown topology: err = %v", err)
	}
	if _, err := s.Tournament(t.Context(), []string{"2x4", "2x4"}, "fib"); err == nil ||
		!strings.Contains(err.Error(), "2x4") {
		t.Errorf("duplicate topology: err = %v", err)
	}
}
