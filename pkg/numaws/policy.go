package numaws

// The policy registration hook: embedders add their own victim-selection
// strategies to the global registry and they flow through every surface a
// built-in policy reaches — WithPolicy, the measurement methods, the
// tournament, the numaws CLI's -policy flag and the sweep service's
// policies axis. Like RegisterBenchmark, the hook is expressed entirely in
// facade types: a user policy sees a deterministic random source (Rand), a
// read-only machine view (PolicyView) and counter snapshots
// (PolicyObservation), never an engine type, and misuse is an error, not a
// panic.

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
)

// Rand is the deterministic random source handed to policy hooks. All
// randomness a hook consumes must come from it — that is what keeps runs
// byte-identical per seed.
type Rand struct {
	rng *sim.RNG
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r Rand) Intn(n int) int { return r.rng.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (r Rand) Float64() float64 { return r.rng.Float64() }

// PolicyView is a victim draw's read-only window onto the run: the
// machine's shape, the thief's identity and how its search has been going.
// It is passed by value and consulting it never allocates.
type PolicyView struct {
	view   *sched.View
	picker *sim.Picker
	self   int
	streak int
}

// Workers reports the run's worker count (always at least 2 during a
// victim draw).
func (v PolicyView) Workers() int { return v.view.Workers() }

// Self reports the stealing worker's id — never a valid victim.
func (v PolicyView) Self() int { return v.self }

// Streak reports the thief's consecutive failed steal attempts since it
// last acquired work; it resets to zero whenever the thief obtains a
// frame. Hierarchical policies widen their victim set as it grows.
func (v PolicyView) Streak() int { return v.streak }

// SocketOf reports the socket hosting worker w.
func (v PolicyView) SocketOf(w int) int { return v.view.SocketOf(w) }

// Sockets reports the machine's socket count.
func (v PolicyView) Sockets() int { return v.view.Sockets() }

// Hops reports the distance-matrix hop count between two sockets.
func (v PolicyView) Hops(a, b int) int { return v.view.Hops(a, b) }

// MaxHops reports the machine's diameter in hops.
func (v PolicyView) MaxHops() int { return v.view.MaxHops() }

// SocketMates returns the ids of every worker on w's socket, including w,
// in ascending order. The slice is the engine's own candidate list: treat
// it as read-only.
func (v PolicyView) SocketMates(w int) []int { return v.view.SocketMates(w) }

// PickUniform draws a victim uniformly from all workers except the thief —
// exactly the draw the built-in cilk policy makes.
func (v PolicyView) PickUniform(r Rand) int {
	return r.rng.PickUniformExcept(v.view.Workers(), v.self)
}

// PickBiased draws a victim from the locality-biased distribution — exactly
// the draw the built-in numaws policy makes. If the run has no biased
// picker (the policy was registered with Biased false, or bias was ablated
// away), it degrades to PickUniform, mirroring numaws under DisableBias.
func (v PolicyView) PickBiased(r Rand) int {
	if v.picker != nil {
		return v.picker.Pick(r.rng)
	}
	return v.PickUniform(r)
}

// PolicyObservation is a deterministic snapshot of the run's counters at
// an adaptation epoch. All counts are cumulative since the start of the
// run; StealsByHop is indexed by hop class (successful steals whose victim
// sat h hops from the thief).
type PolicyObservation struct {
	Events        int64
	StealAttempts int64
	Steals        int64
	FailedSteals  int64
	RemoteResumes int64
	LocalResumes  int64
	StealsByHop   []int64
}

// PolicyDef describes a user scheduling policy for RegisterPolicy.
type PolicyDef struct {
	// Name is the registry key and display name. It must be non-empty and
	// not collide with a registered policy (the built-ins included).
	Name string
	// Biased requests the locality-biased victim distribution: the engine
	// builds per-thief pickers from the run's hop-class bias weights, and
	// PickBiased draws from them.
	Biased bool
	// Pushes activates the lazy work-pushing machinery (mailboxes,
	// PUSHBACK), exactly as under the built-in numaws policy.
	Pushes bool
	// StealHalf makes every successful steal transfer up to half the
	// victim's deque instead of a single frame; the extra frames run on
	// the thief before it steals again.
	StealHalf bool
	// Victim draws the victim worker id for one steal attempt; it is
	// required. The returned id must be a worker other than v.Self(), and
	// the draw must be deterministic: all randomness through r, no state
	// outside the arguments. PickUniform and PickBiased reproduce the
	// built-in draws.
	Victim func(r Rand, v PolicyView) int
	// AdaptEvery, if positive, asks for Adapt to be called every
	// AdaptEvery simulation events. Setting it requires Adapt.
	AdaptEvery int64
	// Adapt, if non-nil, may rewrite the run's per-hop-class bias weights
	// in place at each epoch (every weight must stay strictly positive)
	// and reports whether it changed them. It must be a pure function of
	// its arguments. Setting it requires a positive AdaptEvery, and it is
	// only consulted on Biased policies when bias is not ablated away.
	Adapt func(obs PolicyObservation, weights []float64) bool
}

// RegisterPolicy adds a scheduling policy to the global registry under
// def.Name. Registered policies are selectable by name everywhere built-in
// policies are — WithPolicy, the tournament, the CLI and the sweep
// service — and join every Session built afterwards. Registration is
// permanent for the process: names cannot be reused or replaced, so every
// measurement stays attributable to a stable name.
func RegisterPolicy(def PolicyDef) error {
	if def.Name == "" {
		return fmt.Errorf("numaws: RegisterPolicy: empty policy name")
	}
	if def.Victim == nil {
		return fmt.Errorf("numaws: RegisterPolicy: policy %q has a nil Victim", def.Name)
	}
	if def.Adapt != nil && def.AdaptEvery <= 0 {
		return fmt.Errorf("numaws: RegisterPolicy: policy %q sets Adapt without a positive AdaptEvery", def.Name)
	}
	if def.Adapt == nil && def.AdaptEvery > 0 {
		return fmt.Errorf("numaws: RegisterPolicy: policy %q sets AdaptEvery without Adapt", def.Name)
	}
	if err := sched.TryRegister(&userPolicy{def: def}); err != nil {
		return fmt.Errorf("numaws: %w", err)
	}
	return nil
}

// userPolicy adapts a facade PolicyDef to the engine's Policy interface
// (plus its optional BulkStealer and Adaptive hooks, which the engine
// consults through the StealHalf flag and the AdaptEvery epoch).
type userPolicy struct {
	def PolicyDef
}

func (u *userPolicy) Name() string     { return u.def.Name }
func (u *userPolicy) String() string   { return u.def.Name }
func (u *userPolicy) Biased() bool     { return u.def.Biased }
func (u *userPolicy) Pushes() bool     { return u.def.Pushes }
func (u *userPolicy) StealsBulk() bool { return u.def.StealHalf }

func (u *userPolicy) Victim(rng *sim.RNG, picker *sim.Picker, view *sched.View, at sched.Steal) int {
	v := u.def.Victim(Rand{rng: rng}, PolicyView{view: view, picker: picker, self: at.Self, streak: at.Streak})
	if v < 0 || v >= view.Workers() || v == at.Self {
		// Victim runs per steal attempt, long after RegisterPolicy could
		// have reported an error; failing here with an attributable
		// message beats an index panic deep inside the engine.
		panic(fmt.Sprintf("numaws: policy %q: Victim returned %d, want a worker in [0,%d) other than %d",
			u.def.Name, v, view.Workers(), at.Self))
	}
	return v
}

func (u *userPolicy) AdaptEvery() int64 { return u.def.AdaptEvery }

func (u *userPolicy) Adapt(obs sched.Observation, weights []float64) bool {
	// The snapshot hands the user a copy of the hop profile so a buggy
	// hook cannot corrupt the engine's counters.
	return u.def.Adapt(PolicyObservation{
		Events:        obs.Events,
		StealAttempts: obs.StealAttempts,
		Steals:        obs.Steals,
		FailedSteals:  obs.FailedSteals,
		RemoteResumes: obs.RemoteResumes,
		LocalResumes:  obs.LocalResumes,
		StealsByHop:   append([]int64(nil), obs.StealsByHop...),
	}, weights)
}
