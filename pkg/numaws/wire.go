package numaws

// The sweep service's public wire types and streaming client. They mirror
// internal/server's wire structs field for field — the facade wraps the
// server (see serve.go), so the server cannot import this package, and
// the JSON tags are the contract the two sides share. The server's
// end-to-end tests drive a real handler through QueryGrid, pinning the
// mirror in lockstep.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// GridRequest asks a sweep service for the cross product of the given
// experiment axes — the same axes the CLI takes. Empty axes take the
// CLI's defaults.
type GridRequest struct {
	// Benches restricts the grid to the named benchmarks, in the given
	// order; empty means every registered benchmark.
	Benches []string `json:"benches,omitempty"`
	// Topologies lists preset names or SOCKETSxCORES shapes; empty means
	// ["paper-4x8"].
	Topologies []string `json:"topologies,omitempty"`
	// Policies lists registered policy names; empty means ["numaws"].
	Policies []string `json:"policies,omitempty"`
	// Workers lists simulated worker counts; 0 means the whole machine of
	// each topology. Empty means [0].
	Workers []int `json:"workers,omitempty"`
	// Seeds lists scheduler seeds; 0 is rejected (the engine reserves it
	// as "default"). Empty means [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale is "small" or "full" (the default).
	Scale string `json:"scale,omitempty"`
	// Serial adds one serial-elision (TS) row per benchmark × topology.
	Serial bool `json:"serial,omitempty"`
	// Verify controls result verification; nil means true.
	Verify *bool `json:"verify,omitempty"`
}

// GridRow is one completed run streamed by the service, in completion
// order. Because every simulation is deterministic in the row's identity
// fields, a Cached row is byte-identical to a freshly simulated one.
type GridRow struct {
	Bench    string `json:"bench"`
	Input    string `json:"input"`
	Scale    string `json:"scale"`
	Topology string `json:"topology"` // the requested spec string
	Policy   string `json:"policy"`   // "serial" for serial-elision rows
	P        int    `json:"p"`
	Seed     int64  `json:"seed"`
	Serial   bool   `json:"serial,omitempty"`
	// Cached marks a row the service served without simulating for this
	// request: a store hit, or a coalesced ride on a concurrent client's
	// identical in-flight run.
	Cached bool  `json:"cached"`
	Time   int64 `json:"time"`
	Work   int64 `json:"work"`
	Sched  int64 `json:"sched"`
	Idle   int64 `json:"idle"`
	// Err marks a contained run failure (panic, verification mismatch,
	// deadline); the measurement fields are zero and the rest of the grid
	// completed normally.
	Err *GridRowError `json:"err,omitempty"`
}

// GridRowError is a contained run failure on the wire.
type GridRowError struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// GridSummary trails a grid stream: how the rows broke down. Simulated
// counts the runs this request actually executed; on a fully warm query
// it is zero.
type GridSummary struct {
	Rows      int `json:"rows"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
	Failed    int `json:"failed"`
}

// TournamentRequest asks a sweep service to rank scheduling policies over
// a benchmark × topology grid. Every cell runs at its machine's full core
// count — a fixed worker axis would bias the ranking toward machines it
// happens to fit — so the request has no worker axis.
type TournamentRequest struct {
	// Benches restricts the grid to the named benchmarks, in the given
	// order; empty means every registered benchmark.
	Benches []string `json:"benches,omitempty"`
	// Topologies lists preset names or SOCKETSxCORES shapes; empty means
	// ["paper-4x8"].
	Topologies []string `json:"topologies,omitempty"`
	// Policies lists the contestants; empty means every registered policy.
	Policies []string `json:"policies,omitempty"`
	// Seeds lists scheduler seeds to average each cell over; empty means
	// [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale is "small" or "full" (the default).
	Scale string `json:"scale,omitempty"`
	// Verify controls result verification; nil means true.
	Verify *bool `json:"verify,omitempty"`
}

// TournamentRank is one ranked policy of a tournament summary.
type TournamentRank struct {
	Rank   int     `json:"rank"`
	Policy string  `json:"policy"`
	Score  float64 `json:"score"` // geomean of per-cell TP / cell-best TP
}

// TournamentSummary trails a tournament stream: the grid counts plus the
// deterministic ranking. Ranking is omitted when any cell failed — a
// ranking over missing cells would compare incomparables — so a summary
// with Failed > 0 is an unranked tournament.
type TournamentSummary struct {
	Rows      int              `json:"rows"`
	Cached    int              `json:"cached"`
	Simulated int              `json:"simulated"`
	Failed    int              `json:"failed"`
	Ranking   []TournamentRank `json:"ranking,omitempty"`
}

// QueryTournament streams a tournament request against a running sweep
// service, invoking onRow (which may be nil) for each run as the service
// completes it, and returns the trailing summary with the ranking. The
// rows are the same shape grid streams use. A stream that ends without a
// summary is an error, exactly as in QueryGrid.
func QueryTournament(ctx context.Context, server string, req TournamentRequest, onRow func(GridRow)) (TournamentSummary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return TournamentSummary{}, fmt.Errorf("numaws: tournament: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(server, "/")+"/v1/tournament", bytes.NewReader(body))
	if err != nil {
		return TournamentSummary{}, fmt.Errorf("numaws: tournament: %w", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return TournamentSummary{}, fmt.Errorf("numaws: tournament: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return TournamentSummary{}, fmt.Errorf("numaws: tournament: server said %s: %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev struct {
			Row  *GridRow           `json:"row"`
			Done *TournamentSummary `json:"done"`
		}
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return TournamentSummary{}, fmt.Errorf("numaws: tournament: stream ended without its summary (the server aborted the run)")
			}
			return TournamentSummary{}, fmt.Errorf("numaws: tournament: %w", err)
		}
		if ev.Row != nil && onRow != nil {
			onRow(*ev.Row)
		}
		if ev.Done != nil {
			return *ev.Done, nil
		}
	}
}

// QueryGrid streams a grid request against a running sweep service
// (`numaws serve`) at the given base URL, invoking onRow (which may be
// nil) for each row as the service completes it, and returns the trailing
// summary. A stream that ends without a summary — the service aborted the
// grid mid-stream or died — is an error; rows already delivered through
// onRow remain valid, since each stands alone. Cancelling ctx abandons
// the stream; the service cancels only this client's uncached work.
func QueryGrid(ctx context.Context, server string, req GridRequest, onRow func(GridRow)) (GridSummary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return GridSummary{}, fmt.Errorf("numaws: query: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(server, "/")+"/v1/grid", bytes.NewReader(body))
	if err != nil {
		return GridSummary{}, fmt.Errorf("numaws: query: %w", err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return GridSummary{}, fmt.Errorf("numaws: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return GridSummary{}, fmt.Errorf("numaws: query: server said %s: %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev struct {
			Row  *GridRow     `json:"row"`
			Done *GridSummary `json:"done"`
		}
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return GridSummary{}, fmt.Errorf("numaws: query: stream ended without its summary (the server aborted the grid)")
			}
			return GridSummary{}, fmt.Errorf("numaws: query: %w", err)
		}
		if ev.Row != nil && onRow != nil {
			onRow(*ev.Row)
		}
		if ev.Done != nil {
			return *ev.Done, nil
		}
	}
}
