package numaws_test

// Misuse and failure-containment tests for the public facade: a
// registered benchmark that panics or is mis-shaped must surface as a
// typed error row from the grid surfaces (MeasureAll, Each) — never a
// crash, never the loss of the other benchmarks' rows — at both scales.
// Plus the journal round trip: a session built WithJournal can be resumed
// WithResume into identical rows without re-simulating anything.

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/pkg/numaws"
)

// registerForTest registers a benchmark and unregisters it when the test
// ends.
func registerForTest(t *testing.T, def numaws.BenchmarkDef) {
	t.Helper()
	if err := numaws.RegisterBenchmark(def); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { numaws.UnregisterBenchmarkForTest(def.Name) })
}

// TestMisbehavingBenchmarksYieldErrorRows drives a grid containing a
// panicking benchmark, a nil-Root benchmark, and a healthy one through
// MeasureAll and Each at both scales: the two broken benchmarks come back
// as attributable error rows, the healthy one measures normally, and
// neither call crashes or returns an error.
func TestMisbehavingBenchmarksYieldErrorRows(t *testing.T) {
	registerForTest(t, numaws.BenchmarkDef{
		Name: "misuse-panic",
		Make: func(numaws.Scale, bool) numaws.BenchmarkRun {
			return numaws.BenchmarkRun{Root: func(ctx numaws.Context) {
				ctx.Compute(10)
				panic("deliberate misuse panic")
			}}
		},
	})
	registerForTest(t, numaws.BenchmarkDef{
		Name: "misuse-nilroot",
		Make: func(numaws.Scale, bool) numaws.BenchmarkRun { return numaws.BenchmarkRun{} },
	})
	registerForTest(t, numaws.BenchmarkDef{
		Name: "misuse-healthy",
		Make: func(numaws.Scale, bool) numaws.BenchmarkRun {
			return numaws.BenchmarkRun{Root: func(ctx numaws.Context) {
				ctx.Spawn(func(c numaws.Context) { c.Compute(50) })
				ctx.Compute(50)
				ctx.Sync()
			}}
		},
	})
	for _, scale := range []numaws.Scale{numaws.ScaleSmall, numaws.ScaleFull} {
		s, err := numaws.New(
			numaws.WithScale(scale),
			numaws.WithBenchmarks("misuse-panic", "misuse-nilroot", "misuse-healthy"),
			numaws.WithWorkers(4),
			numaws.WithJobs(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		check := func(surface string, rows []numaws.Row, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("scale %d %s: grid must contain benchmark failures, got %v", scale, surface, err)
			}
			if len(rows) != 3 {
				t.Fatalf("scale %d %s: got %d rows, want 3", scale, surface, len(rows))
			}
			for i, wantMsg := range []string{"deliberate misuse panic", "nil Root"} {
				re := rows[i].Err
				if re == nil {
					t.Fatalf("scale %d %s: broken benchmark %s has no error row", scale, surface, rows[i].Name)
				}
				if re.Kind != "panic" || !strings.Contains(re.Message, wantMsg) {
					t.Errorf("scale %d %s: error row = %+v, want panic mentioning %q", scale, surface, re, wantMsg)
				}
			}
			if healthy := rows[2]; healthy.Err != nil || healthy.TS <= 0 {
				t.Errorf("scale %d %s: healthy benchmark's row suffered: %+v", scale, surface, healthy)
			}
		}
		rows, err := s.MeasureAll(t.Context())
		check("MeasureAll", rows, err)
		var streamed atomic.Int64
		rows, err = s.Each(t.Context(), func(numaws.Run) { streamed.Add(1) })
		check("Each", rows, err)
		if streamed.Load() == 0 {
			t.Errorf("scale %d: Each streamed no completed runs", scale)
		}
	}
}

// TestSessionJournalResume exercises the crash-safety surface end to end
// through the facade: a journaled session's rows, replayed by a second
// WithResume session, are identical — with every run filled from the
// journal rather than simulated.
func TestSessionJournalResume(t *testing.T) {
	path := t.TempDir() + "/session.jsonl"
	opts := func(extra ...numaws.Option) []numaws.Option {
		return append([]numaws.Option{
			numaws.WithScale(numaws.ScaleSmall),
			numaws.WithBenchmarks("heat", "lu"),
			numaws.WithWorkers(4),
			numaws.WithJobs(2),
		}, extra...)
	}
	s1, err := numaws.New(opts(numaws.WithJournal(path))...)
	if err != nil {
		t.Fatal(err)
	}
	rows1, err := s1.MeasureAll(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := numaws.New(opts(numaws.WithJournal(path), numaws.WithResume())...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var replayed, simulated atomic.Int64
	rows2, err := s2.Each(t.Context(), func(r numaws.Run) {
		if r.Replayed {
			replayed.Add(1)
		} else {
			simulated.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows1, rows2) {
		t.Errorf("resumed session's rows differ:\nfirst:   %+v\nresumed: %+v", rows1, rows2)
	}
	if simulated.Load() != 0 || replayed.Load() == 0 {
		t.Errorf("resume simulated %d runs and replayed %d, want 0 simulated", simulated.Load(), replayed.Load())
	}

	// Resume without a journal is a configuration error, caught at New.
	if _, err := numaws.New(opts(numaws.WithResume())...); err == nil || !strings.Contains(err.Error(), "WithJournal") {
		t.Errorf("WithResume without WithJournal: err = %v, want configuration error", err)
	}
}
