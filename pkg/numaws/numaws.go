// Package numaws is the public API of the NUMA-WS simulator: a library
// facade over the paper-reproduction engine that lets any Go program embed
// the simulator, measure the paper's benchmarks, sweep machine topologies,
// stream results from long runs, and run its own fork-join computations on
// the simulated NUMA machine.
//
// This package is the one supported way to consume the simulator. Its
// exported surface deliberately names no type from the simulation engine
// underneath (the layering contract in DESIGN.md); everything a caller
// needs — machines, policies, benchmarks, measurements, renderers and
// exporters — is expressed in this package's own types, so the engine can
// keep refactoring without breaking embedders.
//
// A Session is built once from functional options and then queried:
//
//	s, err := numaws.New(
//		numaws.WithTopology("2x16"),
//		numaws.WithPolicy("numaws"),
//		numaws.WithScale(numaws.ScaleSmall),
//	)
//	if err != nil { ... }
//	row, err := s.Measure(ctx, "heat")
//	fmt.Printf("speedup %.2fx\n", row.NUMAWS.Scalability())
//
// Every measurement takes a context.Context and stops promptly when it is
// cancelled (at per-simulation granularity), returning ctx.Err(). Long
// sweeps can stream each completed simulation through Session.Each instead
// of waiting for the aggregated rows.
package numaws

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Scale selects the benchmark input sizes.
type Scale int

// Available scales.
const (
	// ScaleFull is the paper's EXPERIMENTS.md configuration; a full
	// measurement sweep takes minutes to hours.
	ScaleFull Scale = iota
	// ScaleSmall shrinks every input so a full sweep runs in seconds;
	// used by tests, examples and quick exploration.
	ScaleSmall
)

// The facade's Scale and the engine's have inverted zero values (the
// facade defaults to ScaleFull, the engine to ScaleSmall), so every
// boundary crossing must convert through this one helper pair — a
// re-derived ad-hoc conversion that forgets the inversion would silently
// run full-scale inputs where small was asked, or vice versa.

// engineScale converts a facade Scale for the harness/workloads layer.
func engineScale(s Scale) harness.Scale {
	if s == ScaleSmall {
		return harness.ScaleSmall
	}
	return harness.ScaleFull
}

// facadeScale converts an engine scale to the facade's.
func facadeScale(hs harness.Scale) Scale {
	if hs == harness.ScaleSmall {
		return ScaleSmall
	}
	return ScaleFull
}

// config collects the option values; New validates it as a whole.
type config struct {
	topology string
	policy   string
	scale    Scale
	workers  int
	seed     int64
	seeds    int
	jobs     int
	verify   bool
	fresh    bool
	benches  []string
	timeout  time.Duration
	retries  int
	journal  string
	resume   bool
}

// Option configures New.
type Option struct {
	apply func(*config) error
}

func option(f func(*config) error) Option { return Option{apply: f} }

// WithTopology selects the simulated machine: a preset name (see
// Topologies) or a generic "SOCKETSxCORES" ring shape such as "2x16".
// The default is "paper-4x8", the paper's 4-socket x 8-core Xeon E5-4620.
// Unknown names surface as an error from New naming the accepted forms.
func WithTopology(spec string) Option {
	return option(func(c *config) error {
		if spec == "" {
			return fmt.Errorf("WithTopology: empty topology spec")
		}
		c.topology = spec
		return nil
	})
}

// WithPolicy selects the scheduling policy by registry name (see
// Policies). The default is "numaws", the paper's scheduler; "cilk" is
// classic work stealing. The policy drives Run, the sweeps, and the
// NUMA-aware column of the comparison tables (the baseline column is
// always "cilk"). Unknown names surface as an error from New listing the
// registered names.
func WithPolicy(name string) Option {
	return option(func(c *config) error {
		if name == "" {
			return fmt.Errorf("WithPolicy: empty policy name")
		}
		c.policy = name
		return nil
	})
}

// WithScale selects benchmark input sizes; the default is ScaleFull.
func WithScale(s Scale) Option {
	return option(func(c *config) error {
		if s != ScaleFull && s != ScaleSmall {
			return fmt.Errorf("WithScale: unknown scale %d", int(s))
		}
		c.scale = s
		return nil
	})
}

// WithWorkers sets the simulated worker count P of parallel runs and the
// TP column of the tables. 0 (the default) means the whole machine — every
// core of the selected topology. New rejects counts the machine cannot
// place.
func WithWorkers(p int) Option {
	return option(func(c *config) error {
		if p < 0 {
			return fmt.Errorf("WithWorkers: negative worker count %d", p)
		}
		c.workers = p
		return nil
	})
}

// WithSeed sets the base scheduler seed (default 1). Runs are
// deterministic in the seed: the same Session configuration replays
// byte-identical measurements. Zero is reserved as "the default" by the
// engine, so New rejects it rather than silently remapping.
func WithSeed(seed int64) Option {
	return option(func(c *config) error {
		if seed == 0 {
			return fmt.Errorf("WithSeed: seed must be non-zero (the default seed is 1)")
		}
		c.seed = seed
		return nil
	})
}

// WithSeeds averages each parallel measurement over n scheduler seeds
// (seed, seed+1, ...), echoing the paper's "each data point is the average
// of 10 runs". The default is 1.
func WithSeeds(n int) Option {
	return option(func(c *config) error {
		if n < 1 {
			return fmt.Errorf("WithSeeds: need at least one seed, got %d", n)
		}
		c.seeds = n
		return nil
	})
}

// WithJobs bounds how many independent simulations run concurrently on
// host goroutines. Jobs changes wall-clock time only — measurements are
// aggregated in canonical order and are identical for every value. The
// default is one job per available CPU.
func WithJobs(n int) Option {
	return option(func(c *config) error {
		if n < 1 {
			return fmt.Errorf("WithJobs: need at least one job, got %d", n)
		}
		c.jobs = n
		return nil
	})
}

// WithVerify controls whether every run's computed result is checked
// against a reference (default true). Verification costs host time, never
// simulated cycles.
func WithVerify(v bool) Option {
	return option(func(c *config) error {
		c.verify = v
		return nil
	})
}

// WithFreshInputs forces every simulation to construct its workload input
// from scratch instead of drawing on the session-wide input pool and the
// shared serial-reference cache (default false: pooled). Input data is a
// pure function of benchmark, scale, and input seed, so pooling never
// changes any measurement — this switch exists for callers that want to
// bound peak memory or to cross-check the pooled path against an
// unamortized run.
func WithFreshInputs(fresh bool) Option {
	return option(func(c *config) error {
		c.fresh = fresh
		return nil
	})
}

// WithBenchmarks restricts the session to the named benchmarks (in the
// given order) instead of the full registered suite — the paper's nine,
// the Cilk-suite additions, and anything added through RegisterBenchmark
// before the session was built. New rejects unknown names with an error
// listing the available ones.
func WithBenchmarks(names ...string) Option {
	return option(func(c *config) error {
		if len(names) == 0 {
			return fmt.Errorf("WithBenchmarks: no names given")
		}
		c.benches = append([]string(nil), names...)
		return nil
	})
}

// WithRunTimeout bounds each individual simulation of the session's
// measurements: a run exceeding d is interrupted and classified as a
// transient failure, which surfaces as the benchmark's error row (Row.Err)
// unless a retry budget (WithRetry) re-runs it successfully. The default,
// 0, means no deadline — the fully deterministic configuration, since any
// deadline lets a run observe host load.
func WithRunTimeout(d time.Duration) Option {
	return option(func(c *config) error {
		if d < 0 {
			return fmt.Errorf("WithRunTimeout: negative timeout %v", d)
		}
		c.timeout = d
		return nil
	})
}

// WithRetry re-runs a transiently failed simulation (deadline interrupt;
// never a panic or verification mismatch, which are deterministic) up to n
// additional attempts. The budget is an attempt count, not a backoff: each
// attempt checks out fresh resources, so a retried success is
// byte-identical to a first-try success. The default is 0.
func WithRetry(n int) Option {
	return option(func(c *config) error {
		if n < 0 {
			return fmt.Errorf("WithRetry: negative retry budget %d", n)
		}
		c.retries = n
		return nil
	})
}

// WithJournal makes the session's grid measurements crash-safe: every
// completed (benchmark, policy, P, seed) simulation of Measure, MeasureAll
// and Each is durably appended to the JSONL journal at path as it
// finishes. Combine with WithResume to replay a journal written by an
// earlier (killed) process; without it, New truncates path and starts
// fresh. Sessions holding a journal should be Closed.
func WithJournal(path string) Option {
	return option(func(c *config) error {
		if path == "" {
			return fmt.Errorf("WithJournal: empty journal path")
		}
		c.journal = path
		return nil
	})
}

// WithResume replays the WithJournal file's completed runs instead of
// re-simulating them: runs whose full key is journaled fill from the
// journal (streamed through Each with Run.Replayed set), only the missing
// tuples simulate, and new completions extend the same file. Because every
// simulation is deterministic, a resumed grid's rows are identical to an
// uninterrupted run's. Requires WithJournal; a missing journal file is an
// empty journal, not an error.
func WithResume() Option {
	return option(func(c *config) error {
		c.resume = true
		return nil
	})
}

// Session is a configured simulator instance: one machine topology, one
// scheduling policy, one benchmark suite. Sessions are immutable after New
// and safe for concurrent use; every method that simulates takes a
// context.Context and honors its cancellation at per-simulation
// granularity. The suite is captured at New: benchmarks registered later
// (RegisterBenchmark) appear in sessions built afterwards, never in
// existing ones.
type Session struct {
	top    *topology.Topology
	policy sched.Policy
	specs  []harness.Spec
	cfg    config
	jw     *journal.Writer
	replay map[journal.Key]journal.Result
	rstats journal.ReplayStats
}

// New builds a Session from the given options, validating them as a set:
// unknown topology or policy names, out-of-range worker counts and unknown
// benchmark names are reported here, before any simulation runs.
func New(opts ...Option) (*Session, error) {
	c := config{
		topology: "paper-4x8",
		policy:   "numaws",
		scale:    ScaleFull,
		seed:     1,
		seeds:    1,
		jobs:     exec.DefaultJobs(),
		verify:   true,
	}
	for _, o := range opts {
		if o.apply == nil {
			return nil, fmt.Errorf("numaws: zero Option value")
		}
		if err := o.apply(&c); err != nil {
			return nil, fmt.Errorf("numaws: %w", err)
		}
	}
	top, err := topology.Parse(c.topology)
	if err != nil {
		return nil, fmt.Errorf("numaws: %w", err)
	}
	pol, err := sched.Lookup(c.policy)
	if err != nil {
		return nil, fmt.Errorf("numaws: %w", err)
	}
	if c.workers == 0 {
		c.workers = top.Cores()
	}
	if c.workers > top.Cores() {
		return nil, fmt.Errorf("numaws: %d workers out of range [1,%d] for topology %s",
			c.workers, top.Cores(), c.topology)
	}
	all := harness.Specs(engineScale(c.scale))
	specs := all
	if len(c.benches) > 0 {
		specs, err = selectSpecs(all, c.benches)
		if err != nil {
			return nil, fmt.Errorf("numaws: %w", err)
		}
	}
	s := &Session{top: top, policy: pol, specs: specs, cfg: c}
	if c.resume && c.journal == "" {
		return nil, fmt.Errorf("numaws: WithResume requires WithJournal")
	}
	if c.journal != "" {
		if c.resume {
			if s.replay, s.rstats, err = journal.ReplayWithStats(c.journal); err != nil {
				return nil, fmt.Errorf("numaws: %w", err)
			}
			s.jw, err = journal.Append(c.journal)
		} else {
			s.jw, err = journal.Create(c.journal)
		}
		if err != nil {
			return nil, fmt.Errorf("numaws: %w", err)
		}
	}
	return s, nil
}

// Close releases the session's journal file, if any. Safe to call on
// sessions built without WithJournal and safe to call twice; measurements
// after Close fail on their first journal append.
func (s *Session) Close() error { return s.jw.Close() }

// ReplayStats reports what WithResume found in the journal: how many
// completed runs it replayed, and how many trailing lines it discarded as
// torn or corrupt (everything from the first unreadable record on — a
// resume silently re-measures that tail, so callers surface the count).
// Both are zero for sessions built without WithResume.
func (s *Session) ReplayStats() (replayed, skipped int) {
	return s.rstats.Records, s.rstats.Skipped
}

// selectSpecs resolves benchmark names against the suite, preserving the
// requested order and rejecting unknown or duplicate names.
func selectSpecs(all []harness.Spec, names []string) ([]harness.Spec, error) {
	byName := make(map[string]harness.Spec, len(all))
	known := make([]string, 0, len(all))
	for _, s := range all {
		byName[s.Name] = s
		known = append(known, s.Name)
	}
	seen := make(map[string]bool, len(names))
	out := make([]harness.Spec, 0, len(names))
	for _, n := range names {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("no benchmark named %q (want %s)", n, strings.Join(known, ", "))
		}
		if seen[n] {
			return nil, fmt.Errorf("benchmark %q named twice", n)
		}
		seen[n] = true
		out = append(out, s)
	}
	return out, nil
}

// options assembles the harness options for one measurement call.
func (s *Session) options() harness.Options {
	return harness.Options{
		Topology:    s.top,
		P:           s.cfg.workers,
		Seed:        s.cfg.seed,
		Seeds:       s.cfg.seeds,
		Verify:      s.cfg.verify,
		Jobs:        s.cfg.jobs,
		Policy:      s.policy,
		FreshInputs: s.cfg.fresh,
		RunTimeout:  s.cfg.timeout,
		Retries:     s.cfg.retries,
		Journal:     s.jw,
		Resume:      s.replay,
	}
}

// Machine describes the session's simulated machine.
type Machine struct {
	Name    string // the topology spec the session was built with
	Sockets int
	Cores   int // total cores across all sockets
	// Description is the machine rendered the way the paper's Fig. 1
	// presents it: sockets, per-socket resources, and the node distance
	// matrix.
	Description string
}

// Machine reports the session's simulated machine.
func (s *Session) Machine() Machine {
	return Machine{
		Name:        s.cfg.topology,
		Sockets:     s.top.Sockets(),
		Cores:       s.top.Cores(),
		Description: s.top.String(),
	}
}

// Policy reports the session's scheduling policy name.
func (s *Session) Policy() string { return s.policy.Name() }

// Workers reports the session's resolved simulated worker count (the whole
// machine unless WithWorkers said otherwise).
func (s *Session) Workers() int { return s.cfg.workers }

// Benchmark describes one benchmark of the session's suite.
type Benchmark struct {
	Name  string
	Input string // human-readable "input size / base case"
	// Fig3 marks the seven benchmarks of the paper's Fig. 3.
	Fig3 bool
	// Curve is the benchmark's series name in the paper's Fig. 9
	// scalability plot ("" if it has no curve).
	Curve string
}

// Benchmarks lists the session's benchmark suite in measurement order:
// the registered suite in name order, or the WithBenchmarks selection in
// its given order.
func (s *Session) Benchmarks() []Benchmark {
	out := make([]Benchmark, len(s.specs))
	for i, sp := range s.specs {
		out[i] = Benchmark{Name: sp.Name, Input: sp.Input, Fig3: sp.InFig3, Curve: sp.Fig9Name}
	}
	return out
}

// Topologies lists the built-in machine presets accepted by WithTopology
// (generic "SOCKETSxCORES" shapes are accepted too).
func Topologies() []string { return topology.Presets() }

// Policies lists the registered scheduling policy names accepted by
// WithPolicy, sorted.
func Policies() []string { return sched.Names() }
