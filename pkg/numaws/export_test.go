package numaws

import "repro/internal/workloads"

// UnregisterBenchmarkForTest removes a benchmark registered during a test
// so registrations do not leak between tests. Compiled into test binaries
// only; production registrations are permanent (see RegisterBenchmark).
func UnregisterBenchmarkForTest(name string) { workloads.Unregister(name) }
