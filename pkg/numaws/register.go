package numaws

// The benchmark registration hook: embedders add their own benchmarks to
// the global registry and they flow through every session surface —
// WithBenchmarks, Measure/MeasureAll/Each, Scalability, Sweep, DAGs, the
// renderers and the exporters — exactly like the built-in suite. The hook
// is expressed entirely in facade types (Task/Context, Scale): a user
// benchmark describes its computation against the simulated machine's
// Context and never sees an engine type, the same layering contract as
// RunTask.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

// BenchmarkRun is one prepared, single-use instance of a registered
// benchmark: the timed computation plus an optional result check.
type BenchmarkRun struct {
	// Root is the timed computation; it must be non-nil (a Make that
	// returns a nil Root panics at workload construction, with the
	// benchmark named). It must also be deterministic: the registry
	// contract is that the same (scale, aware) instance replays the same
	// dag, so measurements are attributable and seed-reproducible.
	Root Task
	// Verify, if non-nil, checks the computed result after the run
	// against a serial reference (run with WithVerify(true), the
	// default). Returning an error fails the measurement.
	Verify func() error
}

// BenchmarkDef describes a user benchmark for RegisterBenchmark.
type BenchmarkDef struct {
	// Name is the registry key and table name. It must be non-empty and
	// not collide with a registered benchmark (the built-in suite
	// included).
	Name string
	// Input, if non-nil, describes the input at each scale — the
	// "input size / base case" column of the tables.
	Input func(scale Scale) string
	// Fig3 includes the benchmark in the Fig. 3 normalized-time plot.
	Fig3 bool
	// Curve, if non-empty, is the benchmark's series name in the Fig. 9
	// scalability protocol (Session.Scalability and the sweeps' default
	// set). Conventionally the benchmark's own name.
	Curve string
	// Make builds a fresh single-use instance: scale selects input sizes
	// and aware selects the NUMA-aware configuration (locality hints via
	// Context.SpawnAt/SetPlace — hint-free benchmarks simply ignore it).
	// Make is called once per simulation; instances must not share
	// mutable state.
	Make func(scale Scale, aware bool) BenchmarkRun
}

// RegisterBenchmark adds a benchmark to the global registry under
// def.Name. Registered benchmarks join the suite of every Session built
// afterwards (sessions already built are immutable) and are selectable by
// name everywhere built-in benchmarks are: WithBenchmarks, the
// measurement methods, and the numaws CLI's -bench flag. Registration is
// permanent for the process: names cannot be reused or replaced, so every
// measurement stays attributable to a stable name.
func RegisterBenchmark(def BenchmarkDef) error {
	if def.Name == "" {
		return fmt.Errorf("numaws: RegisterBenchmark: empty benchmark name")
	}
	if def.Make == nil {
		return fmt.Errorf("numaws: RegisterBenchmark: benchmark %q has a nil Make", def.Name)
	}
	mk, input, fig3, curve := def.Make, def.Input, def.Fig3, def.Curve
	name := def.Name
	err := workloads.TryRegister(name, func(ws workloads.Scale) workloads.Spec {
		scale := facadeScale(ws)
		in := ""
		if input != nil {
			in = input(scale)
		}
		return workloads.Spec{
			Name:  name,
			Input: in,
			Make: func(aware bool) workloads.Workload {
				run := mk(scale, aware)
				if run.Root == nil {
					// Make runs per simulation, long after RegisterBenchmark
					// could have reported an error; failing here with an
					// attributable message beats the alternative — a nil
					// task dereference deep inside the simulator.
					panic(fmt.Sprintf("numaws: benchmark %q: Make returned a BenchmarkRun with nil Root", name))
				}
				return &userWorkload{name: name, run: run}
			},
			InFig3:   fig3,
			Fig9Name: curve,
		}
	})
	if err != nil {
		return fmt.Errorf("numaws: %w", err)
	}
	return nil
}

// userWorkload adapts a facade BenchmarkRun to the engine's workload
// interface. User computations express everything through the facade
// Context, so there is nothing to prepare on the runtime.
type userWorkload struct {
	name string
	run  BenchmarkRun
}

func (u *userWorkload) Name() string          { return u.name }
func (u *userWorkload) Prepare(*core.Runtime) {}
func (u *userWorkload) Root() core.Task       { return adapt(u.run.Root) }
func (u *userWorkload) Verify() error {
	if u.run.Verify == nil {
		return nil
	}
	return u.run.Verify()
}
