// Command numaws-vet is the repro module's static-analysis suite: five
// repo-specific analyzers that hold the simulator to the invariants
// DESIGN.md promises in prose — determinism (no wall clock, no global
// rand, no unordered map iteration in simulation packages), alloc-free
// hot paths, a facade whose exported surface names no internal type,
// context-first plumbing, and init-time-only registry population.
//
// Build it once, then run it through go vet:
//
//	go build -o numaws-vet ./cmd/numaws-vet
//	go vet -vettool=$(pwd)/numaws-vet ./...
//
// CI runs exactly that in the lint step. The same suite also runs
// in-process as a regular test (internal/lint's selfcheck), so `go test
// ./...` catches violations without the extra build.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/unit"
)

func main() {
	unit.Main(lint.Analyzers()...)
}
