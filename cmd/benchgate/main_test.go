package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine(
		"BenchmarkTable7/cg/numaws-8 \t 3\t  24666667 ns/op\t 123456 T32-cycles\t 13457 allocs/op\t 11300000 B/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if name != "BenchmarkTable7/cg/numaws" {
		t.Fatalf("name = %q, want procs suffix stripped", name)
	}
	for unit, want := range map[string]float64{
		"ns/op": 24666667, "T32-cycles": 123456, "allocs/op": 13457, "B/op": 11300000,
	} {
		if m[unit] != want {
			t.Errorf("%s = %v, want %v", unit, m[unit], want)
		}
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"BenchmarkTable7/cg/numaws-8", // name-only header line
		"PASS",
		"ok  \trepro\t12.3s",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted a non-result line", line)
		}
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo/sub-2-4":  "BenchmarkFoo/sub-2",
		"BenchmarkFoo/sub-name": "BenchmarkFoo/sub-name",
		"BenchmarkFoo":          "BenchmarkFoo",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGate(t *testing.T) {
	ref := map[string]metrics{
		"BenchmarkA": {"T32-cycles": 1000, "allocs/op": 100, "ns/op": 5000},
		"BenchmarkB": {"TP-cycles": 42, "allocs/op": 10},
	}
	t.Run("identical passes", func(t *testing.T) {
		if f := gate(ref, ref, 1.25); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	})
	t.Run("wall time ignored", func(t *testing.T) {
		head := map[string]metrics{
			"BenchmarkA": {"T32-cycles": 1000, "allocs/op": 100, "ns/op": 99999999},
			"BenchmarkB": {"TP-cycles": 42, "allocs/op": 10},
		}
		if f := gate(ref, head, 1.25); len(f) != 0 {
			t.Fatalf("ns/op change should not gate: %v", f)
		}
	})
	t.Run("cycle drift fails", func(t *testing.T) {
		head := map[string]metrics{
			"BenchmarkA": {"T32-cycles": 1001, "allocs/op": 100},
			"BenchmarkB": {"TP-cycles": 42, "allocs/op": 10},
		}
		f := gate(ref, head, 1.25)
		if len(f) != 1 || !strings.Contains(f[0], "T32-cycles drifted") {
			t.Fatalf("want one cycle-drift failure, got %v", f)
		}
	})
	t.Run("alloc regression fails", func(t *testing.T) {
		head := map[string]metrics{
			"BenchmarkA": {"T32-cycles": 1000, "allocs/op": 126},
			"BenchmarkB": {"TP-cycles": 42, "allocs/op": 10},
		}
		f := gate(ref, head, 1.25)
		if len(f) != 1 || !strings.Contains(f[0], "allocs/op regressed") {
			t.Fatalf("want one alloc failure, got %v", f)
		}
	})
	t.Run("alloc within slack passes", func(t *testing.T) {
		head := map[string]metrics{
			"BenchmarkA": {"T32-cycles": 1000, "allocs/op": 124},
			"BenchmarkB": {"TP-cycles": 42, "allocs/op": 10},
		}
		if f := gate(ref, head, 1.25); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	})
	t.Run("missing benchmark fails", func(t *testing.T) {
		head := map[string]metrics{
			"BenchmarkA": {"T32-cycles": 1000, "allocs/op": 100},
		}
		f := gate(ref, head, 1.25)
		if len(f) != 1 || !strings.Contains(f[0], "missing from new run") {
			t.Fatalf("want one missing-benchmark failure, got %v", f)
		}
	})
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	text := "goos: linux\n" +
		"goarch: amd64\n" +
		"pkg: repro\n" +
		"BenchmarkTable7/cg/cilk-8 \t 3\t 30000000 ns/op\t 2000 T32-cycles\t 15000 allocs/op\n" +
		"BenchmarkTable7/cg/numaws-8 \t 3\t 24666667 ns/op\t 1800 T32-cycles\t 13457 allocs/op\n" +
		"PASS\n" +
		"ok  \trepro\t1.2s\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(runs))
	}
	if runs["BenchmarkTable7/cg/numaws"]["T32-cycles"] != 1800 {
		t.Fatalf("wrong metrics: %v", runs["BenchmarkTable7/cg/numaws"])
	}
	if _, err := parseFile(filepath.Join(dir, "empty.txt")); err == nil {
		t.Fatal("missing file should error")
	}
}
