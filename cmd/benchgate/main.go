// Command benchgate turns a pair of `go test -bench` outputs into a hard
// CI gate. It compares a committed reference (e.g. BENCH_grid.json) against
// a freshly produced run and fails when the new run drifts on anything the
// simulator promises to hold constant:
//
//   - every metric whose unit ends in "-cycles" is a simulated-cycle count
//     (TS, TP, work, span, ...). The simulator is deterministic, so these
//     must match the reference exactly — any difference is a semantic
//     change, not noise.
//   - allocs/op may not exceed the reference by more than the slack factor
//     (default 1.25x, absorbing host and GOMAXPROCS variation in the
//     parallel harness paths).
//
// Wall-clock metrics (ns/op) and B/op are ignored: they depend on the host
// and belong in the report-only benchstat summary, not a gate.
//
// Benchmark names are matched with the trailing -GOMAXPROCS suffix
// stripped, so a reference recorded on an 8-core machine gates a run on a
// 4-core runner. Every benchmark present in the reference must appear in
// the new output; a missing benchmark fails the gate (a gate that silently
// shrinks is no gate). Because pooled inputs amortize construction across
// iterations, allocs/op depends on -benchtime: regenerate and gate with the
// same -benchtime as the reference.
//
// Usage:
//
//	benchgate -ref BENCH_grid.json -new /tmp/bench.txt [-alloc-slack 1.25]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	ref := flag.String("ref", "", "committed reference benchmark output (required)")
	head := flag.String("new", "", "freshly produced benchmark output (required)")
	slack := flag.Float64("alloc-slack", 1.25, "allowed allocs/op growth factor over the reference")
	flag.Parse()
	if *ref == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: both -ref and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	refRuns, err := parseFile(*ref)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headRuns, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	failures := gate(refRuns, headRuns, *slack)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d failure(s) across %d reference benchmarks\n",
			len(failures), len(refRuns))
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks, all simulated-cycle metrics exact, allocs/op within %.2fx\n",
		len(refRuns), *slack)
}

// metrics maps a metric unit (e.g. "T32-cycles", "allocs/op") to its value.
type metrics map[string]float64

// parseFile reads `go test -bench` text output into per-benchmark metrics,
// keyed by benchmark name with the -GOMAXPROCS suffix stripped.
func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, m, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// parseLine parses one benchmark result line: the name, the iteration
// count, then (value, unit) pairs. Non-result lines return ok=false.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // e.g. a "BenchmarkFoo" header split across lines
	}
	m := make(metrics)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		m[fields[i+1]] = v
	}
	return stripProcs(fields[0]), m, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends to
// benchmark names, so references transfer across machine core counts.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gate compares the new run against the reference and returns one message
// per violation, in deterministic (sorted) order.
func gate(ref, head map[string]metrics, slack float64) []string {
	names := make([]string, 0, len(ref))
	for n := range ref {
		names = append(names, n)
	}
	sort.Strings(names)
	var failures []string
	for _, n := range names {
		hm, ok := head[n]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in reference but missing from new run", n))
			continue
		}
		units := make([]string, 0, len(ref[n]))
		for u := range ref[n] {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			rv := ref[n][u]
			switch {
			case strings.HasSuffix(u, "-cycles"):
				hv, ok := hm[u]
				if !ok {
					failures = append(failures, fmt.Sprintf("%s: metric %s missing from new run", n, u))
				} else if hv != rv {
					failures = append(failures, fmt.Sprintf(
						"%s: %s drifted: reference %v, new %v (simulated cycles must match exactly)", n, u, rv, hv))
				}
			case u == "allocs/op":
				hv, ok := hm[u]
				if !ok {
					failures = append(failures, fmt.Sprintf("%s: allocs/op missing from new run", n))
				} else if hv > rv*slack {
					failures = append(failures, fmt.Sprintf(
						"%s: allocs/op regressed: reference %v, new %v (limit %.0f at %.2fx slack)",
						n, rv, hv, rv*slack, slack))
				}
			}
		}
	}
	return failures
}
