package main

// The serve and query subcommands: the CLI shell over the sweep service
// (pkg/numaws's Server and QueryGrid). Both own the flags after their
// name with a dedicated FlagSet, like sweep — the global flags configure
// a local measurement Session, which neither subcommand builds.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"repro/pkg/numaws"
)

// subcommandHelp drives the top-level usage text: every subcommand in
// presentation order with a one-line description. main_test pins its
// correspondence with the subcommands map.
var subcommandHelp = []struct{ name, desc string }{
	{"fig1", "print the evaluation machine's topology (Fig. 1)"},
	{"fig3", "normalized processing times on Cilk Plus (Fig. 3)"},
	{"fig6", "Z-Morton and blocked Z-Morton index grids (Fig. 6)"},
	{"table7", "TS / T1 / TP execution times on both platforms (Fig. 7)"},
	{"table8", "work / scheduling / idle breakdown and inflation (Fig. 8)"},
	{"tables", "table7 and table8 from one measured grid"},
	{"fig9", "scalability curves (Fig. 9)"},
	{"dag", "measured work, span and parallelism per benchmark (Section IV)"},
	{"timeline", "per-worker execution timeline under both schedulers"},
	{"sweep", "speedup curves across a grid of machine topologies"},
	{"tournament", "rank every registered scheduling policy over a benchmark x topology grid"},
	{"serve", "run the deduplicating sweep service (HTTP/JSON, NDJSON streams)"},
	{"query", "stream a grid from a running sweep service"},
	{"all", "everything above except sweep, tournament, serve and query"},
}

// printUsage is the top-level -h text: the subcommand list first (the
// thing flag's default usage never shows), then the global flags.
func printUsage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "Usage: numaws [flags] <subcommand>\n\nSubcommands:\n")
	for _, sc := range subcommandHelp {
		fmt.Fprintf(w, "  %-9s %s\n", sc.name, sc.desc)
	}
	fmt.Fprintf(w, "\nGlobal flags (before the subcommand; sweep, tournament, serve and query take their own flags after their name — see numaws <subcommand> -h):\n")
	fs.PrintDefaults()
}

// runServe runs the sweep service until ctx is cancelled (Ctrl-C or
// SIGTERM), then drains in-flight grid streams and exits 0.
func runServe(ctx context.Context, args []string, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "numaws:", strings.TrimPrefix(err.Error(), "numaws: "))
		return 1
	}
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	storePath := fs.String("store", "", "content-addressed result store file (JSONL; created if missing; required)")
	jobs := fs.Int("jobs", runtime.NumCPU(), "max concurrent simulations across all requests")
	maxGrid := fs.Int("max-grid", 0, "largest accepted grid, in run tuples (0: the server default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	if fs.NArg() > 0 {
		return fail(fmt.Errorf("serve: unexpected argument %q", fs.Arg(0)))
	}
	if *storePath == "" {
		return fail(fmt.Errorf("serve requires -store (the result store file)"))
	}
	srv, err := numaws.NewServer(numaws.ServerConfig{
		Addr: *addr, Store: *storePath, Jobs: *jobs, MaxGridRuns: *maxGrid,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()
	if err := srv.ListenAndServe(ctx); err != nil {
		return fail(err)
	}
	return 0
}

// runQuery streams one grid from a running service: each row to stdout as
// an NDJSON line, the summary to stderr. Exits 1 when any row failed or
// the stream was truncated.
func runQuery(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "numaws:", strings.TrimPrefix(err.Error(), "numaws: "))
		return 1
	}
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://localhost:8080", "base URL of a running numaws serve")
	bench := fs.String("bench", "", "comma-separated benchmark names (default: every registered benchmark)")
	topos := fs.String("topologies", "", "comma-separated topology presets or SOCKETSxCORES shapes (default: paper-4x8)")
	policies := fs.String("policies", "", "comma-separated policy names (default: numaws)")
	workers := fs.String("p", "", "comma-separated worker counts; 0 means each machine's whole core set (default: 0)")
	seeds := fs.String("seeds", "", "comma-separated scheduler seeds (default: 1)")
	scale := fs.String("scale", "full", "input scale: small or full")
	serial := fs.Bool("serial", false, "include the serial-elision (TS) row per benchmark and topology")
	verify := fs.Bool("verify", true, "verify every run's result")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 1
	}
	if fs.NArg() > 0 {
		return fail(fmt.Errorf("query: unexpected argument %q", fs.Arg(0)))
	}
	req := numaws.GridRequest{
		Benches:    splitList(*bench),
		Topologies: splitList(*topos),
		Policies:   splitList(*policies),
		Scale:      *scale,
		Serial:     *serial,
	}
	if !*verify {
		v := false
		req.Verify = &v
	}
	for _, s := range splitList(*workers) {
		p, err := strconv.Atoi(s)
		if err != nil {
			return fail(fmt.Errorf("query: bad -p entry %q", s))
		}
		req.Workers = append(req.Workers, p)
	}
	for _, s := range splitList(*seeds) {
		sd, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fail(fmt.Errorf("query: bad -seeds entry %q", s))
		}
		req.Seeds = append(req.Seeds, sd)
	}
	enc := json.NewEncoder(stdout)
	var encErr error
	sum, err := numaws.QueryGrid(ctx, *server, req, func(row numaws.GridRow) {
		if err := enc.Encode(row); err != nil && encErr == nil {
			encErr = err
		}
	})
	if err != nil {
		return fail(err)
	}
	if encErr != nil {
		return fail(encErr)
	}
	fmt.Fprintf(stderr, "numaws: query: %d rows: %d cached, %d simulated, %d failed\n",
		sum.Rows, sum.Cached, sum.Simulated, sum.Failed)
	if sum.Failed > 0 {
		return 1
	}
	return 0
}
