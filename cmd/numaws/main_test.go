package main

// CLI-level tests. testdata/all-small.golden was captured from the
// pre-redesign binary (the closed-enum, pre-facade implementation) running
// `numaws -scale small -topology paper-4x8 all`; the golden test is the
// acceptance gate that the public facade, the pluggable policy registry,
// the context-aware harness and now the open workload registry reproduce
// the paper pipeline byte for byte under both registered policies (the
// tables carry the cilk baseline and the numaws columns of every
// benchmark). Since the suite opened up, the golden run selects the
// paper's nine with -bench; the default suite additionally carries the
// Cilk-suite benchmarks (fib, nqueens, fft, lu, rectmul), covered by
// their own tests below.

import (
	"bytes"
	"context"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// paperNine is the original nine-benchmark suite the golden output pins.
const paperNine = "cg,cilksort,heat,hull1,hull2,matmul,matmul-z,strassen,strassen-z"

// runCLI executes a full command line in-process.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = realMain(t.Context(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestAllSmallMatchesPinnedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale pipeline skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/all-small.golden")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scale", "small", "-topology", "paper-4x8", "-bench", paperNine, "all")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if out != string(want) {
		t.Errorf("`numaws -scale small -topology paper-4x8 -bench %s all` diverged from the pinned pre-redesign oracle.\nIf the change is intentional, regenerate testdata/all-small.golden.\n--- got\n%s\n--- want\n%s", paperNine, out, want)
	}
}

// cilkFive is the Cilk-suite addition pinned by testdata/cilk-small.golden.
const cilkFive = "fib,nqueens,fft,lu,rectmul"

// TestCilkSmallMatchesPinnedOracle is the all-small golden test for the
// five Cilk-suite benchmarks: the full paper pipeline over fib, nqueens,
// fft, lu and rectmul must reproduce testdata/cilk-small.golden byte for
// byte.
func TestCilkSmallMatchesPinnedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale pipeline skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/cilk-small.golden")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scale", "small", "-topology", "paper-4x8", "-bench", cilkFive, "all")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if out != string(want) {
		t.Errorf("`numaws -scale small -topology paper-4x8 -bench %s all` diverged from the pinned oracle.\nIf the change is intentional, regenerate testdata/cilk-small.golden.\n--- got\n%s\n--- want\n%s", cilkFive, out, want)
	}
}

// TestTournamentSmallMatchesPinnedOracle pins the policy tournament: all
// five registered policies ranked over heat and cilksort on the paper
// machine must reproduce testdata/tournament-small.golden byte for byte —
// the ranking, the scores, and every cell's completion time.
func TestTournamentSmallMatchesPinnedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale tournament skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/tournament-small.golden")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scale", "small", "-topology", "paper-4x8", "tournament", "-bench", "heat,cilksort")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if out != string(want) {
		t.Errorf("`numaws -scale small -topology paper-4x8 tournament -bench heat,cilksort` diverged from the pinned oracle.\nIf the change is intentional, regenerate testdata/tournament-small.golden.\n--- got\n%s\n--- want\n%s", out, want)
	}
}

// TestTournamentFlags pins the subcommand's own flag surface: list flags
// after the name, rejection of positionals, and the export paths.
func TestTournamentFlags(t *testing.T) {
	code, _, errb := runCLI(t, "tournament", "extra")
	if code == 0 || !strings.Contains(errb, "unexpected argument") {
		t.Errorf("positional arg: exit %d, stderr %q", code, errb)
	}
	code, _, errb = runCLI(t, "-scale", "small", "tournament", "-bench", "bogus")
	if code == 0 || !strings.Contains(errb, "bogus") {
		t.Errorf("unknown bench: exit %d, stderr %q", code, errb)
	}
	code, _, _ = runCLI(t, "tournament", "-h")
	if code != 0 {
		t.Errorf("tournament -h exited %d, want 0", code)
	}
}

// TestDefaultSuiteCoversCilkAdditions pins the open suite: without -bench
// the session carries the registered fourteen, and the dag protocol (one
// verified parallel run per benchmark) covers the five additions.
func TestDefaultSuiteCoversCilkAdditions(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-suite run skipped in -short mode")
	}
	code, out, errb := runCLI(t, "-scale", "small", "dag")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	for _, name := range []string{"fib", "nqueens", "fft", "lu", "rectmul", "cilksort"} {
		if !strings.Contains(out, name) {
			t.Errorf("default dag output missing %q:\n%s", name, out)
		}
	}
}

func TestUnknownBenchIsUsageErrorListingNames(t *testing.T) {
	code, _, errb := runCLI(t, "-bench", "bogus", "fig1")
	if code == 0 {
		t.Fatal("unknown -bench exited 0")
	}
	for _, want := range []string{`"bogus"`, "cilksort", "fib", "rectmul"} {
		if !strings.Contains(errb, want) {
			t.Errorf("unknown -bench stderr missing %q:\n%s", want, errb)
		}
	}
}

func TestSeedsBelowOneIsUsageError(t *testing.T) {
	for _, v := range []string{"0", "-3"} {
		code, _, errb := runCLI(t, "-seeds", v, "fig1")
		if code == 0 {
			t.Fatalf("-seeds %s exited 0", v)
		}
		if !strings.Contains(errb, "at least 1") {
			t.Errorf("-seeds %s stderr unhelpful:\n%s", v, errb)
		}
	}
	// -seeds 1 (the default) stays accepted.
	if code, _, errb := runCLI(t, "-seeds", "1", "fig1"); code != 0 {
		t.Errorf("-seeds 1 rejected: %s", errb)
	}
}

func TestUnknownPolicyIsUsageErrorListingNames(t *testing.T) {
	code, _, errb := runCLI(t, "-policy", "bogus", "fig1")
	if code == 0 {
		t.Fatal("unknown -policy exited 0")
	}
	for _, want := range []string{`"bogus"`, "cilk", "numaws"} {
		if !strings.Contains(errb, want) {
			t.Errorf("unknown -policy stderr missing %q:\n%s", want, errb)
		}
	}
}

func TestUnknownTopologyIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t, "-topology", "bogus", "fig1")
	if code == 0 {
		t.Fatal("unknown -topology exited 0")
	}
	if !strings.Contains(errb, "unknown topology") || !strings.Contains(errb, "paper-4x8") {
		t.Errorf("unknown -topology stderr unhelpful:\n%s", errb)
	}
}

// TestWorkerCountFollowsTheMachine pins the -p bugfix: the default worker
// count is the machine's core count — not the stale 32-worker cap of the
// fixed-4x8 era — and out-of-range counts are usage errors naming the
// machine's range.
func TestWorkerCountFollowsTheMachine(t *testing.T) {
	// -p beyond the machine: usage error carrying the real core count.
	code, _, errb := runCLI(t, "-topology", "2x4", "-p", "9", "fig1")
	if code == 0 {
		t.Fatal("-p 9 on an 8-core machine exited 0")
	}
	if !strings.Contains(errb, "[1,8]") {
		t.Errorf("-p range error does not name the machine's range:\n%s", errb)
	}
	// -p at the machine's size is accepted (fig1 runs no simulation).
	if code, _, errb := runCLI(t, "-topology", "2x4", "-p", "8", "fig1"); code != 0 {
		t.Errorf("-p 8 on an 8-core machine rejected: %s", errb)
	}
	// A >32-core machine is fully usable: 128 workers on 8x16 is in
	// range, and 129 is the first count rejected. Under the old cap,
	// -p 128 would have been unreachable.
	if code, _, errb := runCLI(t, "-topology", "8x16", "-p", "128", "fig1"); code != 0 {
		t.Errorf("-p 128 on a 128-core machine rejected (stale 32-cap?): %s", errb)
	}
	if code, _, _ := runCLI(t, "-topology", "8x16", "-p", "129", "fig1"); code == 0 {
		t.Error("-p 129 on a 128-core machine accepted")
	}
	if code, _, _ := runCLI(t, "-p", "-3", "fig1"); code == 0 {
		t.Error("negative -p accepted")
	}
}

func TestPreCancelledContextAbortsMeasurement(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := realMain(ctx, []string{"-scale", "small", "tables"}, &out, &errb)
	if code == 0 {
		t.Fatal("cancelled measurement exited 0")
	}
	if !strings.Contains(errb.String(), "context canceled") {
		t.Errorf("stderr does not surface the cancellation:\n%s", errb.String())
	}
}

func TestFlagAfterSubcommandRejected(t *testing.T) {
	code, _, errb := runCLI(t, "fig1", "-p", "8")
	if code == 0 {
		t.Fatal("flag after subcommand exited 0")
	}
	if !strings.Contains(errb, "must precede the subcommand") {
		t.Errorf("stderr: %s", errb)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := runCLI(t, "-h"); code != 0 {
		t.Errorf("numaws -h exited %d, want 0", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-h"); code != 0 {
		t.Errorf("numaws sweep -h exited %d, want 0", code)
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	code, _, errb := runCLI(t, "-resume", "table7")
	if code == 0 {
		t.Fatal("-resume without -journal exited 0")
	}
	if !strings.Contains(errb, "-resume requires -journal") {
		t.Errorf("stderr: %s", errb)
	}
}

// TestJournalResumeRoundTrip runs a small grid twice: once writing a
// journal, once resuming from it. The resumed run replays every record
// instead of re-simulating, and its printed tables are byte-identical.
func TestJournalResumeRoundTrip(t *testing.T) {
	path := t.TempDir() + "/cli.jsonl"
	code, out1, errb := runCLI(t, "-scale", "small", "-bench", "heat", "-journal", path, "table7")
	if code != 0 {
		t.Fatalf("journaled run exited %d, stderr:\n%s", code, errb)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("journal not written: %v", err)
	}
	code, out2, errb := runCLI(t, "-scale", "small", "-bench", "heat", "-journal", path, "-resume", "table7")
	if code != 0 {
		t.Fatalf("resumed run exited %d, stderr:\n%s", code, errb)
	}
	if out1 != out2 {
		t.Errorf("resumed run's output diverged:\n--- first\n%s\n--- resumed\n%s", out1, out2)
	}
	// The resume surfaces what the journal gave it: replayed rows and (on
	// a healthy file) zero skipped lines.
	if !strings.Contains(errb, "numaws: resume: replayed") || !strings.Contains(errb, "skipped 0 torn/corrupt journal line(s)") {
		t.Errorf("resume did not report its replay counts:\n%s", errb)
	}
}

// TestTimeoutFlagAccepted pins that a generous -timeout (with -retries)
// never changes a healthy run's output: the deadline hook is pure
// observation until it fires.
func TestTimeoutFlagAccepted(t *testing.T) {
	code, out1, errb := runCLI(t, "-scale", "small", "-bench", "heat", "table7")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	code, out2, errb := runCLI(t, "-scale", "small", "-bench", "heat", "-timeout", "5m", "-retries", "2", "table7")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb)
	}
	if out1 != out2 {
		t.Errorf("-timeout changed a healthy run's output:\n--- without\n%s\n--- with\n%s", out1, out2)
	}
}

// TestUsageListsEverySubcommand pins the top-level help: every registered
// subcommand appears with a one-line description, and the help list and
// the subcommands registry never drift apart.
func TestUsageListsEverySubcommand(t *testing.T) {
	code, _, errb := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("numaws -h exited %d", code)
	}
	if !strings.Contains(errb, "Subcommands:") {
		t.Fatalf("-h does not list subcommands:\n%s", errb)
	}
	listed := map[string]bool{}
	for _, sc := range subcommandHelp {
		listed[sc.name] = true
		if sc.desc == "" {
			t.Errorf("subcommand %q has no description", sc.name)
		}
		if !strings.Contains(errb, sc.name+" ") && !strings.Contains(errb, sc.name+"\n") {
			t.Errorf("-h output missing subcommand %q:\n%s", sc.name, errb)
		}
		if _, ok := subcommands[sc.name]; !ok {
			t.Errorf("help lists %q but the subcommands registry does not know it", sc.name)
		}
	}
	for name := range subcommands {
		if !listed[name] {
			t.Errorf("subcommand %q is registered but missing from the help list", name)
		}
	}
}

// TestUnknownSubcommandListsServeAndQuery: the unknown-subcommand error
// enumerates the full registry, service subcommands included.
func TestUnknownSubcommandListsServeAndQuery(t *testing.T) {
	code, _, errb := runCLI(t, "frobnicate")
	if code == 0 {
		t.Fatal("unknown subcommand exited 0")
	}
	for _, want := range []string{"unknown subcommand", "serve", "query"} {
		if !strings.Contains(errb, want) {
			t.Errorf("stderr missing %q:\n%s", want, errb)
		}
	}
}

// TestServeAndQueryRejectGlobalFlags: the global flags configure a local
// measurement session, which neither service subcommand builds — passing
// one is a usage error pointing at the subcommand's own flags.
func TestServeAndQueryRejectGlobalFlags(t *testing.T) {
	for _, cmd := range []string{"serve", "query"} {
		code, _, errb := runCLI(t, "-scale", "small", cmd)
		if code == 0 {
			t.Fatalf("numaws -scale small %s exited 0", cmd)
		}
		if !strings.Contains(errb, "does not take the global flags") {
			t.Errorf("%s stderr: %s", cmd, errb)
		}
	}
}

func TestServeRequiresStore(t *testing.T) {
	code, _, errb := runCLI(t, "serve")
	if code == 0 {
		t.Fatal("serve without -store exited 0")
	}
	if !strings.Contains(errb, "serve requires -store") {
		t.Errorf("stderr: %s", errb)
	}
}

func TestServeQueryHelpExitsZero(t *testing.T) {
	for _, cmd := range []string{"serve", "query"} {
		if code, _, _ := runCLI(t, cmd, "-h"); code != 0 {
			t.Errorf("numaws %s -h exited %d, want 0", cmd, code)
		}
	}
}

// syncBuffer is a bytes.Buffer safe for a writer goroutine and a polling
// reader.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeQueryRoundTrip drives the service end to end through the CLI:
// an in-process `numaws serve` on an ephemeral port, then two identical
// `numaws query` runs — the second is answered entirely from the store —
// and finally a context cancellation, which must drain and exit 0.
func TestServeQueryRoundTrip(t *testing.T) {
	store := t.TempDir() + "/store.jsonl"
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()

	var serveErr syncBuffer
	exited := make(chan int, 1)
	go func() {
		exited <- realMain(ctx, []string{"serve", "-addr", "localhost:0", "-store", store}, io.Discard, &serveErr)
	}()

	// The serve log line carries the resolved address.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("serve never logged its address:\n%s", serveErr.String())
		}
		out := serveErr.String()
		if i := strings.Index(out, "serving on "); i >= 0 {
			rest := out[i+len("serving on "):]
			url = strings.Fields(rest)[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	args := []string{"query", "-server", url, "-bench", "fib", "-topologies", "2x4",
		"-p", "2", "-seeds", "1,2", "-scale", "small"}
	code, out1, errb := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("cold query exited %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "2 rows: 0 cached, 2 simulated, 0 failed") {
		t.Errorf("cold query summary: %s", errb)
	}

	code, out2, errb := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("warm query exited %d, stderr:\n%s", code, errb)
	}
	if !strings.Contains(errb, "2 rows: 2 cached, 0 simulated, 0 failed") {
		t.Errorf("warm query summary: %s", errb)
	}

	// NDJSON rows are deterministic, so the two queries agree line for
	// line once the cached marker is ignored.
	norm := func(s string) string {
		s = strings.ReplaceAll(s, `"cached":true`, `"cached":false`)
		lines := strings.Split(strings.TrimSpace(s), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	if norm(out1) != norm(out2) {
		t.Errorf("query rows diverged:\n--- cold\n%s\n--- warm\n%s", out1, out2)
	}

	cancel()
	select {
	case code := <-exited:
		if code != 0 {
			t.Errorf("serve exited %d on cancellation, want 0 (graceful drain), stderr:\n%s", code, serveErr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("serve did not exit after cancellation:\n%s", serveErr.String())
	}
}
