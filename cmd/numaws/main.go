// Command numaws regenerates the paper's figures and tables on the
// simulated NUMA platform.
//
// Usage:
//
//	numaws [flags] <subcommand>
//
// Subcommands:
//
//	fig1    print the evaluation machine's topology (Fig. 1)
//	fig3    normalized processing times on Cilk Plus (Fig. 3)
//	fig6    Z-Morton and blocked Z-Morton index grids (Fig. 6)
//	table7  TS / T1 / TP execution times on both platforms (Fig. 7)
//	table8  work / scheduling / idle breakdown and inflation (Fig. 8)
//	fig9    NUMA-WS scalability curves (Fig. 9)
//	dag     measured work, span and parallelism per benchmark (Section IV)
//	timeline <bench>  per-worker execution timeline under both schedulers
//	sweep [-bench LIST] [-topologies LIST] [-points LIST]
//	        NUMA-WS speedup curves across a grid of machine topologies
//	all     everything above except sweep
//
// Flags:
//
//	-scale   small|full (default full)
//	-topology  machine the experiments simulate: a preset name
//	         (paper-4x8, 2x16, 8x4, snc-2x2x8, uniform) or a generic
//	         SOCKETSxCORES ring shape; unknown names are a usage error
//	-p       parallel worker count for the tables (default: the whole
//	         machine, capped at 32)
//	-seed    scheduler seed (default 1)
//	-seeds   seeds to average each parallel measurement over (default 1)
//	-verify  verify every run's computed result (default true)
//	-jobs    how many simulations to run concurrently on the host
//	         (default: the number of CPUs). Output is identical for every
//	         value; -jobs only changes wall-clock time.
//	-json    write the measured rows/series as a JSON document to this
//	         file ("-" for stdout) in addition to the printed tables
//	-csv     write the measured rows/series as CSV to this file
//	         ("-" for stdout) in addition to the printed tables; when a
//	         subcommand measures both rows and series, the series table
//	         goes to a sibling *.series.csv file
//	-cpuprofile  write a pprof CPU profile of the measurement runs to
//	         this file (the sweep subcommand also accepts it after its
//	         name), so perf investigation of the simulator is self-serve
//	-memprofile  write a pprof heap profile taken after the measurement
//	         runs to this file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
)

func main() {
	scale := flag.String("scale", "full", "input scale: small or full")
	topoSpec := flag.String("topology", "paper-4x8", "machine topology: a preset name or SOCKETSxCORES")
	p := flag.Int("p", 0, "parallel worker count for tables (0: whole machine, capped at 32)")
	seed := flag.Int64("seed", 1, "scheduler seed")
	seeds := flag.Int("seeds", 1, "seeds to average each parallel measurement over")
	verify := flag.Bool("verify", true, "verify every run's result")
	jobs := flag.Int("jobs", exec.DefaultJobs(), "concurrent simulations on the host (wall-clock only; results are identical)")
	jsonPath := flag.String("json", "", "write measured rows/series as JSON to this file (\"-\" for stdout)")
	csvPath := flag.String("csv", "", "write measured rows/series as CSV to this file (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the runs to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile after the runs to this file")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	sc := harness.ScaleFull
	if *scale == "small" {
		sc = harness.ScaleSmall
	}
	// Unknown topology and preset names are a usage error, never a silent
	// default: a sweep on the wrong machine looks plausible and wastes hours.
	top, err := topology.Parse(*topoSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "numaws: -jobs %d clamped to 1 (need at least one host worker)\n", *jobs)
		*jobs = 1
	}
	if *p == 0 {
		*p = top.Cores()
		if *p > 32 {
			*p = 32
		}
	}
	if *p < 1 || *p > top.Cores() {
		fmt.Fprintf(os.Stderr, "numaws: -p %d out of range [1,%d] for topology %s\n", *p, top.Cores(), *topoSpec)
		os.Exit(1)
	}
	opt := harness.Options{Topology: top, P: *p, Seed: *seed, Seeds: *seeds, Verify: *verify, Jobs: *jobs}
	specs := harness.Specs(sc)

	kind, known := subcommands[cmd]
	if !known {
		fmt.Fprintln(os.Stderr, "numaws:", unknownSubcommand(cmd))
		os.Exit(1)
	}
	// Go's flag package stops at the first positional argument, so a flag
	// placed after the subcommand would be silently ignored — reject it
	// loudly instead of running a sweep with the wrong configuration. The
	// sweep subcommand is the exception: it owns the arguments after its
	// name (a dedicated FlagSet, like `go test -run`).
	rest := flag.Args()
	if len(rest) > 0 { // empty when cmd defaulted to "all"
		rest = rest[1:]
	}
	var sw *sweepArgs
	if cmd == "sweep" {
		// An explicitly passed global -topology becomes the sweep's machine
		// list; combining it with -topologies would leave one of them
		// silently ignored, so that mix is rejected.
		topoExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "topology" {
				topoExplicit = true
			}
		})
		globalTopo := ""
		if topoExplicit {
			globalTopo = *topoSpec
		}
		sw, err = parseSweepArgs(rest, *jsonPath, *csvPath, *cpuProfile, *memProfile, globalTopo, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "numaws:", err)
			os.Exit(1)
		}
		*jsonPath, *csvPath = sw.json, sw.csv
		*cpuProfile, *memProfile = sw.cpu, sw.mem
		rest = nil
	}
	if cmd == "timeline" && len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		rest = rest[1:] // the benchmark name operand
	}
	if len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			fmt.Fprintf(os.Stderr, "numaws: flag %s must precede the subcommand: numaws [flags] %s\n", rest[0], cmd)
		} else {
			fmt.Fprintf(os.Stderr, "numaws: unexpected argument %q after %q\n", rest[0], cmd)
		}
		os.Exit(1)
	}
	if (*jsonPath != "" || *csvPath != "") && !kind.rows && !kind.series && !kind.sweeps {
		fmt.Fprintf(os.Stderr, "numaws: -json/-csv: subcommand %q produces no rows or series to export\n", cmd)
		os.Exit(1)
	}
	// Open the export files before the sweep: an unwritable path should
	// fail here, not after hours of simulation.
	out, err := openSinks(*jsonPath, *csvPath, kind)
	if err != nil {
		out.discard() // drop any sink opened before the failing one
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
	// Profiling brackets the measurement runs only, so the profile is the
	// simulator, not flag parsing or export encoding.
	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		out.discard()
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
	var ex export
	if err := run(cmd, specs, opt, &ex, sw); err != nil {
		stopProf()
		out.discard()
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
	// The profiles are a side channel: a failure writing them must not
	// discard the completed measurements, so export first and only then
	// report the profile error (loudly, with the exports safely on disk).
	profErr := stopProf()
	if err := ex.write(out); err != nil {
		out.discard() // sinks not yet written keep their temp files
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
	if profErr != nil {
		fmt.Fprintln(os.Stderr, "numaws: profile (measurements and exports are intact):", profErr)
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile and arranges a heap profile, either
// optional ("" disables it). The returned stop function is idempotent; it
// ends the CPU profile and snapshots the heap after a final GC, so the
// profile reflects live simulator state rather than collectable garbage.
func startProfiles(cpu, mem string) (func() error, error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var err error
		if cpuF != nil {
			pprof.StopCPUProfile()
			err = cpuF.Close()
		}
		if mem != "" {
			f, ferr := os.Create(mem)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return err
			}
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}

// measures says which result kinds a subcommand produces.
type measures struct{ rows, series, sweeps bool }

// subcommands is the authoritative registry: every subcommand run()
// handles, mapped to what it measures. Validity checks, the usage
// message, and the export sinks derive from it; -json/-csv problems
// (non-measuring subcommand, unwritable path) are rejected up front,
// before hours of simulation.
var subcommands = map[string]measures{
	"fig1": {}, "fig6": {}, "dag": {}, "timeline": {},
	"fig3":   {rows: true},
	"table7": {rows: true},
	"table8": {rows: true},
	"tables": {rows: true},
	"fig9":   {series: true},
	"sweep":  {sweeps: true},
	"all":    {rows: true, series: true},
}

// sweepArgs carries the sweep subcommand's parsed flags.
type sweepArgs struct {
	benches   []harness.Spec
	topos     []string
	points    []int
	json, csv string
	cpu, mem  string
}

// parseSweepArgs parses the arguments after "sweep" with a dedicated
// FlagSet. -json/-csv may be given either before the subcommand (the global
// flags, passed in as defaults) or after it. globalTopo is the global
// -topology value when the user passed that flag explicitly ("" otherwise);
// it narrows the sweep to that one machine, and clashes with -topologies.
func parseSweepArgs(args []string, jsonDefault, csvDefault, cpuDefault, memDefault, globalTopo string, specs []harness.Spec) (*sweepArgs, error) {
	toposDefault := strings.Join(topology.Presets(), ",")
	if globalTopo != "" {
		toposDefault = globalTopo
	}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	bench := fs.String("bench", "", "comma-separated benchmark names (default: the Fig. 9 curve set)")
	topos := fs.String("topologies", toposDefault,
		"comma-separated topology presets or SOCKETSxCORES shapes")
	points := fs.String("points", "", "comma-separated worker counts, clipped to each machine's core count (default: each machine's quarter points)")
	jsonPath := fs.String("json", jsonDefault, "write the sweep as JSON to this file (\"-\" for stdout)")
	csvPath := fs.String("csv", csvDefault, "write the sweep as CSV to this file (\"-\" for stdout)")
	cpuProfile := fs.String("cpuprofile", cpuDefault, "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", memDefault, "write a pprof heap profile after the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("sweep: unexpected argument %q", fs.Arg(0))
	}
	if globalTopo != "" && *topos != toposDefault {
		return nil, fmt.Errorf("sweep: -topology %s conflicts with sweep -topologies %s; pass only one", globalTopo, *topos)
	}
	sw := &sweepArgs{json: *jsonPath, csv: *csvPath, cpu: *cpuProfile, mem: *memProfile, topos: splitList(*topos)}
	if *points != "" {
		for _, s := range splitList(*points) {
			p, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad -points entry %q", s)
			}
			sw.points = append(sw.points, p)
		}
	}
	byName := make(map[string]harness.Spec, len(specs))
	var names []string
	for _, s := range specs {
		byName[s.Name] = s
		names = append(names, s.Name)
	}
	if *bench == "" {
		// Default to the Fig. 9 curve set: the benchmarks the paper plots
		// as scalability curves.
		for _, s := range specs {
			if s.Fig9Name != "" {
				sw.benches = append(sw.benches, s)
			}
		}
		return sw, nil
	}
	for _, n := range splitList(*bench) {
		s, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sweep: no benchmark named %q (want %s)", n, strings.Join(names, ", "))
		}
		sw.benches = append(sw.benches, s)
	}
	return sw, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// seriesCSVPath derives the sibling file the series table lands in when
// one -csv path must carry both kinds: out.csv -> out.series.csv.
func seriesCSVPath(path string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + ".series" + ext
}

func unknownSubcommand(cmd string) error {
	names := make([]string, 0, len(subcommands))
	for name := range subcommands {
		names = append(names, name)
	}
	sort.Strings(names)
	return fmt.Errorf("unknown subcommand %q (want %s)", cmd, strings.Join(names, ", "))
}

// export accumulates the measurements the executed subcommands produced,
// for the optional machine-readable outputs. Each kind keeps the last
// measurement set produced ("all" measures the full table rows after
// fig3's subset, so the export carries the full set).
type export struct {
	rows   []metrics.Row
	series []metrics.Series
	sweeps []metrics.Sweep
}

// sink is one pre-opened export destination. File sinks write to a
// temporary file in the destination directory and rename into place on
// success, so a failed sweep neither truncates a previous export nor
// leaves a partial one.
type sink struct {
	w    io.Writer
	f    *os.File // the temporary file; nil for stdout
	path string   // final destination
}

func openSink(path string) (*sink, error) {
	if path == "" {
		return nil, nil
	}
	if path == "-" {
		return &sink{w: os.Stdout, path: path}, nil
	}
	// The temp file only proves the parent directory is writable; also
	// make sure the destination itself can be renamed into, so a bad
	// path fails now rather than after the sweep.
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return nil, fmt.Errorf("%s is a directory", path)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &sink{w: f, f: f, path: path}, nil
}

func (s *sink) put(fn func(io.Writer) error) error {
	if s == nil {
		return nil
	}
	if s.f == nil {
		return fn(s.w)
	}
	err := fn(s.f)
	if err == nil {
		err = s.f.Chmod(0o644)
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(s.f.Name())
		return err
	}
	if err := os.Rename(s.f.Name(), s.path); err != nil {
		os.Remove(s.f.Name())
		return err
	}
	return nil
}

// discard removes a file sink's temporary file without touching the
// destination; used when the sweep fails before anything is exported.
func (s *sink) discard() {
	if s == nil || s.f == nil {
		return
	}
	s.f.Close()
	os.Remove(s.f.Name())
}

// sinks holds every export destination, opened before the sweep runs.
type sinks struct {
	json      *sink
	csv       *sink
	csvSeries *sink // non-nil when rows and series need separate CSV files
}

func (s sinks) discard() {
	s.json.discard()
	s.csv.discard()
	s.csvSeries.discard()
}

// openSinks creates the export files a subcommand will need. Rows and
// series have different column sets, so a file -csv carrying both kinds
// splits the series table into a sibling *.series.csv; stdout keeps the
// blank-line-separated two-table stream for eyeballing.
func openSinks(jsonPath, csvPath string, kind measures) (sinks, error) {
	var s sinks
	var err error
	if s.json, err = openSink(jsonPath); err != nil {
		return s, err
	}
	if s.csv, err = openSink(csvPath); err != nil {
		return s, err
	}
	if csvPath != "" && csvPath != "-" && kind.rows && kind.series {
		if s.csvSeries, err = openSink(seriesCSVPath(csvPath)); err != nil {
			return s, err
		}
	}
	return s, nil
}

func (e *export) write(s sinks) error {
	if err := s.json.put(func(w io.Writer) error {
		return metrics.WriteExport(w, metrics.Export{Rows: e.rows, Series: e.series, Sweeps: e.sweeps})
	}); err != nil {
		return err
	}
	if len(e.sweeps) > 0 {
		// The sweep subcommand is the only producer of sweeps and measures
		// nothing else, so its CSV carries exactly one table.
		return s.csv.put(func(w io.Writer) error {
			return metrics.WriteSweepsCSV(w, e.sweeps)
		})
	}
	if s.csvSeries != nil {
		if err := s.csv.put(func(w io.Writer) error {
			return metrics.WriteRowsCSV(w, e.rows)
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "numaws: rows CSV in %s, series CSV in %s\n", s.csv.path, s.csvSeries.path)
		return s.csvSeries.put(func(w io.Writer) error {
			return metrics.WriteSeriesCSV(w, e.series)
		})
	}
	return s.csv.put(func(w io.Writer) error {
		return metrics.WriteCSV(w, e.rows, e.series)
	})
}

func run(cmd string, specs []harness.Spec, opt harness.Options, ex *export, sw *sweepArgs) error {
	switch cmd {
	case "fig1":
		fmt.Println("Fig. 1: the evaluation machine")
		fmt.Print(opt.Topology.String())
	case "fig6":
		fmt.Println("Fig. 6(a): Z-Morton layout (cell by cell)")
		fmt.Print(layout.Grid(8, layout.Morton, 0))
		fmt.Println("\nFig. 6(b): blocked Z-Morton layout (4x4 blocks, row-major inside)")
		fmt.Print(layout.Grid(8, layout.BlockedMorton, 4))
	case "fig3":
		var fig3 []harness.Spec
		for _, spec := range specs {
			if spec.InFig3 {
				fig3 = append(fig3, spec)
			}
		}
		rows, err := harness.MeasureAll(fig3, opt)
		if err != nil {
			return err
		}
		ex.rows = rows
		fmt.Print(metrics.Fig3(rows))
	case "table7", "table8", "tables":
		rows, err := harness.MeasureAll(specs, opt)
		if err != nil {
			return err
		}
		ex.rows = rows
		if cmd != "table8" {
			fmt.Print(metrics.Table7(rows))
		}
		if cmd != "table7" {
			fmt.Println()
			fmt.Print(metrics.Table8(rows))
		}
	case "fig9":
		series, err := harness.MeasureScalability(specs, opt, nil)
		if err != nil {
			return err
		}
		ex.series = series
		fmt.Print(metrics.Fig9(series))
	case "sweep":
		machines, err := harness.Machines(sw.topos)
		if err != nil {
			return err
		}
		sweeps, err := harness.MeasureTopologies(sw.benches, machines, opt, sw.points)
		if err != nil {
			return err
		}
		ex.sweeps = sweeps
		fmt.Print(metrics.SweepTable(sweeps))
	case "dag":
		fmt.Println("Measured computation dags (strand cycles; parallelism = work/span)")
		fmt.Printf("%-12s %14s %14s %14s\n", "benchmark", "work (T1)", "span (Tinf)", "parallelism")
		o := opt
		o.RecordDAG = true
		reps := make([]*core.Report, len(specs))
		if err := exec.ForEach(o.Jobs, len(specs), func(i int) error {
			rep, err := harness.RunOne(specs[i], sched.PolicyNUMAWS, o)
			reps[i] = rep
			return err
		}); err != nil {
			return err
		}
		for i, spec := range specs {
			fmt.Printf("%-12s %14d %14d %14.1f\n",
				spec.Name, reps[i].DAG.Work(), reps[i].DAG.Span(), reps[i].DAG.Parallelism())
		}
	case "timeline":
		name := flag.Arg(1)
		if name == "" {
			name = "heat"
		}
		var spec *harness.Spec
		for i := range specs {
			if specs[i].Name == name {
				spec = &specs[i]
			}
		}
		if spec == nil {
			return fmt.Errorf("no benchmark named %q", name)
		}
		for _, pol := range []sched.Policy{sched.PolicyCilk, sched.PolicyNUMAWS} {
			rep, tl, err := harness.RunTraced(*spec, pol, opt)
			if err != nil {
				return err
			}
			fmt.Printf("%s on %v: T%d = %d cycles\n", name, pol, opt.P, rep.Time)
			fmt.Print(tl.Render(100))
			fmt.Println()
		}
	case "all":
		for _, sub := range []string{"fig1", "fig6", "fig3", "tables", "fig9", "dag"} {
			if err := run(sub, specs, opt, ex, nil); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return unknownSubcommand(cmd)
	}
	return nil
}
