// Command numaws regenerates the paper's figures and tables on the
// simulated NUMA platform. It is a thin shell over the public simulator
// library (repro/pkg/numaws) — everything it can do, an embedding program
// can do too.
//
// Usage:
//
//	numaws [flags] <subcommand>
//
// Subcommands:
//
//	fig1    print the evaluation machine's topology (Fig. 1)
//	fig3    normalized processing times on Cilk Plus (Fig. 3)
//	fig6    Z-Morton and blocked Z-Morton index grids (Fig. 6)
//	table7  TS / T1 / TP execution times on both platforms (Fig. 7)
//	table8  work / scheduling / idle breakdown and inflation (Fig. 8)
//	fig9    scalability curves (Fig. 9)
//	dag     measured work, span and parallelism per benchmark (Section IV)
//	timeline <bench>  per-worker execution timeline under both schedulers
//	sweep [-bench LIST] [-topologies LIST] [-points LIST]
//	        speedup curves across a grid of machine topologies
//	tournament [-bench LIST] [-topologies LIST]
//	        run every registered scheduling policy over a benchmark x
//	        topology grid (each cell at its machine's full core count,
//	        averaged over -seeds) and rank them by the geometric mean of
//	        per-cell completion time normalized to the cell's best
//	serve [-addr HOST:PORT] -store FILE [-jobs N]
//	        run the deduplicating sweep service: an HTTP/JSON API that
//	        expands grid requests, serves previously completed runs from a
//	        persistent content-addressed result store, coalesces identical
//	        in-flight runs, and streams rows as NDJSON as they finish
//	query [-server URL] [-bench LIST] [-topologies LIST] [-policies LIST]
//	      [-p LIST] [-seeds LIST] [-scale small|full] [-serial]
//	        stream one grid from a running sweep service: rows to stdout
//	        as NDJSON, the cached/simulated/failed summary to stderr
//	all     everything above except sweep, tournament, serve and query
//
// Flags:
//
//	-scale   small|full (default full)
//	-topology  machine the experiments simulate: a preset name
//	         (paper-4x8, 2x16, 8x4, snc-2x2x8, uniform) or a generic
//	         SOCKETSxCORES ring shape; unknown names are a usage error
//	-policy  scheduling policy of the NUMA-aware platform and the sweeps:
//	         a registered policy name (default numaws); unknown names are
//	         a usage error listing the registered policies
//	-bench   comma-separated benchmark names restricting the run to a
//	         subset of the registered suite, in the given order (default:
//	         every registered benchmark — the paper's nine plus the
//	         Cilk-suite additions fib, nqueens, fft, lu, rectmul);
//	         unknown names are a usage error listing the registered
//	         benchmarks
//	-p       parallel worker count for the tables (default: the whole
//	         machine — every core of the selected topology)
//	-seed    scheduler seed (default 1)
//	-seeds   seeds to average each parallel measurement over (default 1;
//	         values below 1 are a usage error)
//	-verify  verify every run's computed result (default true)
//	-jobs    how many simulations to run concurrently on the host
//	         (default: the number of CPUs). Output is identical for every
//	         value; -jobs only changes wall-clock time.
//	-json    write the measured rows/series as a JSON document to this
//	         file ("-" for stdout) in addition to the printed tables
//	-csv     write the measured rows/series as CSV to this file
//	         ("-" for stdout) in addition to the printed tables; when a
//	         subcommand measures both rows and series, the series table
//	         goes to a sibling *.series.csv file
//	-cpuprofile  write a pprof CPU profile of the measurement runs to
//	         this file (the sweep subcommand also accepts it after its
//	         name), so perf investigation of the simulator is self-serve
//	-memprofile  write a pprof heap profile taken after the measurement
//	         runs to this file
//	-timeout  per-run deadline: a simulation exceeding it is interrupted
//	         and reported as its benchmark's error row (default 0: no
//	         deadline, the fully deterministic configuration)
//	-retries re-run a timed-out simulation up to this many extra attempts;
//	         panics and verification failures are deterministic and never
//	         retried (default 0)
//	-journal append every completed run to this crash-safe JSONL file as
//	         it finishes, so a killed grid can be resumed
//	-resume  replay completed runs from the -journal file instead of
//	         re-simulating them; only the missing runs simulate, and the
//	         rows are identical to an uninterrupted grid's (requires
//	         -journal)
//
// Interrupting a run (Ctrl-C) cancels the measurement context: simulations
// not yet started are skipped, in-flight ones finish, and the command
// exits with an error instead of leaving hours of sweep unaccounted for.
// A single benchmark's failure (panic, deadline, verification mismatch)
// does not abort the grid: its row becomes an error row — printed in the
// tables, carried by the exports — and the command exits 1 after
// completing and exporting everything else.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/pkg/numaws"
)

func main() {
	// SIGTERM is what process managers send a long-running `numaws serve`;
	// it triggers the same graceful drain as Ctrl-C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(realMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its environment injected, so the golden tests can
// run full command lines in-process and capture the output.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		// Library errors already carry the "numaws:" namespace; don't
		// stutter it.
		fmt.Fprintln(stderr, "numaws:", strings.TrimPrefix(err.Error(), "numaws: "))
		return 1
	}
	fs := flag.NewFlagSet("numaws", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { printUsage(fs, stderr) }
	scale := fs.String("scale", "full", "input scale: small or full")
	topoSpec := fs.String("topology", "paper-4x8", "machine topology: a preset name or SOCKETSxCORES")
	policy := fs.String("policy", "numaws", "scheduling policy of the NUMA-aware platform and the sweeps")
	bench := fs.String("bench", "", "comma-separated benchmark names (default: the whole registered suite)")
	p := fs.Int("p", 0, "parallel worker count for tables (0: whole machine)")
	seed := fs.Int64("seed", 1, "scheduler seed")
	seeds := fs.Int("seeds", 1, "seeds to average each parallel measurement over")
	verify := fs.Bool("verify", true, "verify every run's result")
	jobs := fs.Int("jobs", runtime.NumCPU(), "concurrent simulations on the host (wall-clock only; results are identical)")
	jsonPath := fs.String("json", "", "write measured rows/series as JSON to this file (\"-\" for stdout)")
	csvPath := fs.String("csv", "", "write measured rows/series as CSV to this file (\"-\" for stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the runs to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile after the runs to this file")
	timeout := fs.Duration("timeout", 0, "per-run deadline; exceeding runs become error rows (0: none)")
	retries := fs.Int("retries", 0, "extra attempts for timed-out runs (deterministic failures are never retried)")
	journalPath := fs.String("journal", "", "append every completed run to this crash-safe JSONL file")
	resume := fs.Bool("resume", false, "replay completed runs from the -journal file instead of re-simulating")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help: usage printed, healthy exit
		}
		return 1
	}

	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	if cmd == "serve" || cmd == "query" {
		// serve and query talk to the sweep service instead of building a
		// local measurement Session, so the global flags do not apply to
		// them; an explicitly set one would be silently ignored — reject
		// it loudly instead.
		var set []string
		fs.Visit(func(f *flag.Flag) { set = append(set, "-"+f.Name) })
		if len(set) > 0 {
			return fail(fmt.Errorf("%s does not take the global flags (%s); pass flags after the subcommand: numaws %s -flag ...",
				cmd, strings.Join(set, ", "), cmd))
		}
		rest := fs.Args()[1:]
		if cmd == "serve" {
			return runServe(ctx, rest, stderr)
		}
		return runQuery(ctx, rest, stdout, stderr)
	}
	sc := numaws.ScaleFull
	if *scale == "small" {
		sc = numaws.ScaleSmall
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "numaws: -jobs %d clamped to 1 (need at least one host worker)\n", *jobs)
		*jobs = 1
	}
	if *p < 0 {
		return fail(fmt.Errorf("-p %d must be positive (or 0 for the whole machine)", *p))
	}
	if *seeds < 1 {
		// Unlike -jobs (a host-side knob that cannot change results, so a
		// clamp-with-warning suffices), -seeds changes what is measured:
		// the harness would silently treat 0 as 1, and the printed tables
		// would not be the averaging the caller asked for.
		return fail(fmt.Errorf("-seeds %d must be at least 1", *seeds))
	}
	if *resume && *journalPath == "" {
		return fail(fmt.Errorf("-resume requires -journal (the file to replay from)"))
	}
	// Session construction is the validation point: unknown -topology,
	// -policy and -bench names and out-of-range -p are usage errors here,
	// never a silent default — a sweep on the wrong machine, scheduler or
	// benchmark set looks plausible and wastes hours.
	opts := []numaws.Option{
		numaws.WithTopology(*topoSpec),
		numaws.WithPolicy(*policy),
		numaws.WithScale(sc),
		numaws.WithWorkers(*p),
		numaws.WithSeed(*seed),
		numaws.WithSeeds(*seeds),
		numaws.WithVerify(*verify),
		numaws.WithJobs(*jobs),
	}
	if *bench != "" {
		opts = append(opts, numaws.WithBenchmarks(splitList(*bench)...))
	}
	if *timeout != 0 {
		opts = append(opts, numaws.WithRunTimeout(*timeout))
	}
	if *retries != 0 {
		opts = append(opts, numaws.WithRetry(*retries))
	}
	if *journalPath != "" {
		opts = append(opts, numaws.WithJournal(*journalPath))
	}
	if *resume {
		opts = append(opts, numaws.WithResume())
	}
	session, err := numaws.New(opts...)
	if err != nil {
		return fail(err)
	}
	defer func() {
		// The journal is fsync'd per record, so a close failure loses no
		// data; report it without disturbing the exit code already chosen.
		if cerr := session.Close(); cerr != nil {
			fmt.Fprintln(stderr, "numaws:", strings.TrimPrefix(cerr.Error(), "numaws: "))
		}
	}()
	if *resume {
		// Replay silently stops at the first torn or corrupt record;
		// surface what that cost, so a resume that lost most of its
		// journal doesn't masquerade as a warm one.
		replayed, skipped := session.ReplayStats()
		fmt.Fprintf(stderr, "numaws: resume: replayed %d completed run(s), skipped %d torn/corrupt journal line(s)\n",
			replayed, skipped)
	}
	if *policy != "numaws" {
		// The tables' column headers and export field names say NWS/numaws
		// regardless of -policy (schema stability); flag the substitution
		// where results would otherwise be misread as the paper's scheduler.
		fmt.Fprintf(stderr, "numaws: note: the NWS/numaws columns carry policy %q for this run\n", *policy)
	}

	kind, known := subcommands[cmd]
	if !known {
		return fail(unknownSubcommand(cmd))
	}
	// Go's flag package stops at the first positional argument, so a flag
	// placed after the subcommand would be silently ignored — reject it
	// loudly instead of running a sweep with the wrong configuration. The
	// sweep subcommand is the exception: it owns the arguments after its
	// name (a dedicated FlagSet, like `go test -run`).
	rest := fs.Args()
	if len(rest) > 0 { // empty when cmd defaulted to "all"
		rest = rest[1:]
	}
	var tn *tournamentArgs
	if cmd == "tournament" {
		// Like sweep, tournament owns the arguments after its name.
		tn, err = parseTournamentArgs(rest, *jsonPath, *csvPath)
		if err != nil {
			if errors.Is(err, flag.ErrHelp) {
				return 0
			}
			return fail(err)
		}
		*jsonPath, *csvPath = tn.json, tn.csv
		rest = nil
	}
	var sw *sweepArgs
	if cmd == "sweep" {
		// An explicitly passed global -topology becomes the sweep's machine
		// list; combining it with -topologies would leave one of them
		// silently ignored, so that mix is rejected.
		topoExplicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "topology" {
				topoExplicit = true
			}
		})
		globalTopo := ""
		if topoExplicit {
			globalTopo = *topoSpec
		}
		sw, err = parseSweepArgs(rest, *jsonPath, *csvPath, *cpuProfile, *memProfile, globalTopo, session)
		if err != nil {
			if errors.Is(err, flag.ErrHelp) {
				return 0
			}
			return fail(err)
		}
		*jsonPath, *csvPath = sw.json, sw.csv
		*cpuProfile, *memProfile = sw.cpu, sw.mem
		rest = nil
	}
	if cmd == "timeline" && len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		rest = rest[1:] // the benchmark name operand
	}
	if len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			fmt.Fprintf(stderr, "numaws: flag %s must precede the subcommand: numaws [flags] %s\n", rest[0], cmd)
		} else {
			fmt.Fprintf(stderr, "numaws: unexpected argument %q after %q\n", rest[0], cmd)
		}
		return 1
	}
	if (*jsonPath != "" || *csvPath != "") && !kind.rows && !kind.series && !kind.sweeps && !kind.tour {
		return fail(fmt.Errorf("-json/-csv: subcommand %q produces no rows or series to export", cmd))
	}
	// Open the export files before the sweep: an unwritable path should
	// fail here, not after hours of simulation.
	out, err := openSinks(*jsonPath, *csvPath, kind, stdout)
	if err != nil {
		out.discard() // drop any sink opened before the failing one
		return fail(err)
	}
	// Profiling brackets the measurement runs only, so the profile is the
	// simulator, not flag parsing or export encoding.
	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		out.discard()
		return fail(err)
	}
	app := &app{session: session, w: stdout, args: fs.Args(), tn: tn}
	if err := app.run(ctx, cmd, sw); err != nil {
		stopProf()
		out.discard()
		return fail(err)
	}
	// The profiles are a side channel: a failure writing them must not
	// discard the completed measurements, so export first and only then
	// report the profile error (loudly, with the exports safely on disk).
	profErr := stopProf()
	if err := app.ex.write(out, stderr); err != nil {
		out.discard() // sinks not yet written keep their temp files
		return fail(err)
	}
	if profErr != nil {
		fmt.Fprintln(stderr, "numaws: profile (measurements and exports are intact):", profErr)
		return 1
	}
	// Contained benchmark failures surfaced as error rows: the tables and
	// exports above carry them, but the exit code must still say the run
	// was not fully healthy.
	failed := 0
	for _, r := range app.ex.rows {
		if r.Err != nil {
			failed++
			fmt.Fprintln(stderr, "numaws: failed:", r.Err.Error())
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "numaws: %d of %d benchmark rows failed (tables and exports carry the error rows)\n", failed, len(app.ex.rows))
		return 1
	}
	return 0
}

// startProfiles starts a CPU profile and arranges a heap profile, either
// optional ("" disables it). The returned stop function is idempotent; it
// ends the CPU profile and snapshots the heap after a final GC, so the
// profile reflects live simulator state rather than collectable garbage.
func startProfiles(cpu, mem string) (func() error, error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var err error
		if cpuF != nil {
			pprof.StopCPUProfile()
			err = cpuF.Close()
		}
		if mem != "" {
			f, ferr := os.Create(mem)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return err
			}
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}

// measures says which result kinds a subcommand produces.
type measures struct{ rows, series, sweeps, tour bool }

// subcommands is the authoritative registry: every subcommand run()
// handles, mapped to what it measures. Validity checks, the usage
// message, and the export sinks derive from it; -json/-csv problems
// (non-measuring subcommand, unwritable path) are rejected up front,
// before hours of simulation.
var subcommands = map[string]measures{
	"fig1": {}, "fig6": {}, "dag": {}, "timeline": {},
	// serve and query are dispatched before the Session is built (they
	// talk to the sweep service, exporting nothing locally); they are
	// registered here so the usage text and unknown-subcommand listing
	// stay complete.
	"serve": {}, "query": {},
	"fig3":       {rows: true},
	"table7":     {rows: true},
	"table8":     {rows: true},
	"tables":     {rows: true},
	"fig9":       {series: true},
	"sweep":      {sweeps: true},
	"tournament": {tour: true},
	"all":        {rows: true, series: true},
}

// sweepArgs carries the sweep subcommand's parsed flags.
type sweepArgs struct {
	benches   []string
	topos     []string
	points    []int
	json, csv string
	cpu, mem  string
}

// parseSweepArgs parses the arguments after "sweep" with a dedicated
// FlagSet. -json/-csv may be given either before the subcommand (the global
// flags, passed in as defaults) or after it. globalTopo is the global
// -topology value when the user passed that flag explicitly ("" otherwise);
// it narrows the sweep to that one machine, and clashes with -topologies.
func parseSweepArgs(args []string, jsonDefault, csvDefault, cpuDefault, memDefault, globalTopo string, session *numaws.Session) (*sweepArgs, error) {
	toposDefault := strings.Join(numaws.Topologies(), ",")
	if globalTopo != "" {
		toposDefault = globalTopo
	}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	bench := fs.String("bench", "", "comma-separated benchmark names (default: the Fig. 9 curve set)")
	topos := fs.String("topologies", toposDefault,
		"comma-separated topology presets or SOCKETSxCORES shapes")
	points := fs.String("points", "", "comma-separated worker counts, clipped to each machine's core count (default: each machine's quarter points)")
	jsonPath := fs.String("json", jsonDefault, "write the sweep as JSON to this file (\"-\" for stdout)")
	csvPath := fs.String("csv", csvDefault, "write the sweep as CSV to this file (\"-\" for stdout)")
	cpuProfile := fs.String("cpuprofile", cpuDefault, "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", memDefault, "write a pprof heap profile after the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("sweep: unexpected argument %q", fs.Arg(0))
	}
	if globalTopo != "" && *topos != toposDefault {
		return nil, fmt.Errorf("sweep: -topology %s conflicts with sweep -topologies %s; pass only one", globalTopo, *topos)
	}
	sw := &sweepArgs{json: *jsonPath, csv: *csvPath, cpu: *cpuProfile, mem: *memProfile, topos: splitList(*topos)}
	if *points != "" {
		for _, s := range splitList(*points) {
			p, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad -points entry %q", s)
			}
			sw.points = append(sw.points, p)
		}
	}
	if *bench == "" {
		// Default to the Fig. 9 curve set: the benchmarks the paper plots
		// as scalability curves.
		for _, b := range session.Benchmarks() {
			if b.Curve != "" {
				sw.benches = append(sw.benches, b.Name)
			}
		}
		return sw, nil
	}
	// Name validation belongs to the library: Session.Sweep rejects
	// unknown and duplicate names before any simulation runs.
	sw.benches = splitList(*bench)
	return sw, nil
}

// tournamentArgs carries the tournament subcommand's parsed flags.
type tournamentArgs struct {
	benches   []string
	topos     []string
	json, csv string
}

// parseTournamentArgs parses the arguments after "tournament" with a
// dedicated FlagSet. -json/-csv may be given either before the subcommand
// (the global flags, passed in as defaults) or after it. The machine list
// defaults to the session's own topology (Session.Tournament's nil case),
// so the global -topology flag steers a single-machine tournament without
// repetition.
func parseTournamentArgs(args []string, jsonDefault, csvDefault string) (*tournamentArgs, error) {
	fs := flag.NewFlagSet("tournament", flag.ContinueOnError)
	bench := fs.String("bench", "", "comma-separated benchmark names (default: the session's whole suite)")
	topos := fs.String("topologies", "", "comma-separated topology presets or SOCKETSxCORES shapes (default: the -topology machine)")
	jsonPath := fs.String("json", jsonDefault, "write the tournament as JSON to this file (\"-\" for stdout)")
	csvPath := fs.String("csv", csvDefault, "write the tournament as CSV to this file (\"-\" for stdout)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("tournament: unexpected argument %q", fs.Arg(0))
	}
	return &tournamentArgs{
		benches: splitList(*bench), topos: splitList(*topos),
		json: *jsonPath, csv: *csvPath,
	}, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// seriesCSVPath derives the sibling file the series table lands in when
// one -csv path must carry both kinds: out.csv -> out.series.csv.
func seriesCSVPath(path string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + ".series" + ext
}

func unknownSubcommand(cmd string) error {
	names := make([]string, 0, len(subcommands))
	for name := range subcommands {
		names = append(names, name)
	}
	sort.Strings(names)
	return fmt.Errorf("unknown subcommand %q (want %s)", cmd, strings.Join(names, ", "))
}

// export accumulates the measurements the executed subcommands produced,
// for the optional machine-readable outputs. Each kind keeps the last
// measurement set produced ("all" measures the full table rows after
// fig3's subset, so the export carries the full set).
type export struct {
	rows   []numaws.Row
	series []numaws.Series
	sweeps []numaws.SweepCurve
	tour   *numaws.Tournament
}

// sink is one pre-opened export destination. File sinks write to a
// temporary file in the destination directory and rename into place on
// success, so a failed sweep neither truncates a previous export nor
// leaves a partial one.
type sink struct {
	w    io.Writer
	f    *os.File // the temporary file; nil for stdout
	path string   // final destination
}

func openSink(path string, stdout io.Writer) (*sink, error) {
	if path == "" {
		return nil, nil
	}
	if path == "-" {
		return &sink{w: stdout, path: path}, nil
	}
	// The temp file only proves the parent directory is writable; also
	// make sure the destination itself can be renamed into, so a bad
	// path fails now rather than after the sweep.
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return nil, fmt.Errorf("%s is a directory", path)
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &sink{w: f, f: f, path: path}, nil
}

func (s *sink) put(fn func(io.Writer) error) error {
	if s == nil {
		return nil
	}
	if s.f == nil {
		return fn(s.w)
	}
	err := fn(s.f)
	if err == nil {
		err = s.f.Chmod(0o644)
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(s.f.Name())
		return err
	}
	if err := os.Rename(s.f.Name(), s.path); err != nil {
		os.Remove(s.f.Name())
		return err
	}
	return nil
}

// discard removes a file sink's temporary file without touching the
// destination; used when the sweep fails before anything is exported.
func (s *sink) discard() {
	if s == nil || s.f == nil {
		return
	}
	s.f.Close()
	os.Remove(s.f.Name())
}

// sinks holds every export destination, opened before the sweep runs.
type sinks struct {
	json      *sink
	csv       *sink
	csvSeries *sink // non-nil when rows and series need separate CSV files
}

func (s sinks) discard() {
	s.json.discard()
	s.csv.discard()
	s.csvSeries.discard()
}

// openSinks creates the export files a subcommand will need. Rows and
// series have different column sets, so a file -csv carrying both kinds
// splits the series table into a sibling *.series.csv; stdout keeps the
// blank-line-separated two-table stream for eyeballing.
func openSinks(jsonPath, csvPath string, kind measures, stdout io.Writer) (sinks, error) {
	var s sinks
	var err error
	if s.json, err = openSink(jsonPath, stdout); err != nil {
		return s, err
	}
	if s.csv, err = openSink(csvPath, stdout); err != nil {
		return s, err
	}
	if csvPath != "" && csvPath != "-" && kind.rows && kind.series {
		if s.csvSeries, err = openSink(seriesCSVPath(csvPath), stdout); err != nil {
			return s, err
		}
	}
	return s, nil
}

func (e *export) write(s sinks, stderr io.Writer) error {
	if err := s.json.put(func(w io.Writer) error {
		return numaws.WriteExport(w, numaws.Export{Rows: e.rows, Series: e.series, Sweeps: e.sweeps, Tournament: e.tour})
	}); err != nil {
		return err
	}
	if e.tour != nil {
		// The tournament subcommand is the only producer of rankings and
		// measures nothing else, so its CSV carries exactly one table.
		return s.csv.put(func(w io.Writer) error {
			return numaws.WriteTournamentCSV(w, *e.tour)
		})
	}
	if len(e.sweeps) > 0 {
		// The sweep subcommand is the only producer of sweeps and measures
		// nothing else, so its CSV carries exactly one table.
		return s.csv.put(func(w io.Writer) error {
			return numaws.WriteSweepsCSV(w, e.sweeps)
		})
	}
	if s.csvSeries != nil {
		if err := s.csv.put(func(w io.Writer) error {
			return numaws.WriteRowsCSV(w, e.rows)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "numaws: rows CSV in %s, series CSV in %s\n", s.csv.path, s.csvSeries.path)
		return s.csvSeries.put(func(w io.Writer) error {
			return numaws.WriteSeriesCSV(w, e.series)
		})
	}
	return s.csv.put(func(w io.Writer) error {
		return numaws.WriteCSV(w, e.rows, e.series)
	})
}

// app executes subcommands against the session, printing to w and
// accumulating exports.
type app struct {
	session *numaws.Session
	w       io.Writer
	args    []string // positional args after flag parsing (cmd, operands)
	tn      *tournamentArgs
	ex      export
}

func (a *app) run(ctx context.Context, cmd string, sw *sweepArgs) error {
	s := a.session
	w := a.w
	switch cmd {
	case "fig1":
		fmt.Fprintln(w, "Fig. 1: the evaluation machine")
		fmt.Fprint(w, s.Machine().Description)
	case "fig6":
		fmt.Fprintln(w, "Fig. 6(a): Z-Morton layout (cell by cell)")
		fmt.Fprint(w, numaws.MortonGrid(8))
		fmt.Fprintln(w, "\nFig. 6(b): blocked Z-Morton layout (4x4 blocks, row-major inside)")
		fmt.Fprint(w, numaws.BlockedMortonGrid(8, 4))
	case "fig3":
		var fig3 []string
		for _, b := range s.Benchmarks() {
			if b.Fig3 {
				fig3 = append(fig3, b.Name)
			}
		}
		rows, err := s.MeasureAll(ctx, fig3...)
		if err != nil {
			return err
		}
		a.ex.rows = rows
		fmt.Fprint(w, numaws.Fig3(rows))
	case "table7", "table8", "tables":
		rows, err := s.MeasureAll(ctx)
		if err != nil {
			return err
		}
		a.ex.rows = rows
		if cmd != "table8" {
			fmt.Fprint(w, numaws.Table7(rows))
		}
		if cmd != "table7" {
			fmt.Fprintln(w)
			fmt.Fprint(w, numaws.Table8(rows))
		}
	case "fig9":
		series, err := s.Scalability(ctx, nil)
		if err != nil {
			return err
		}
		a.ex.series = series
		fmt.Fprint(w, numaws.Fig9(series))
	case "sweep":
		sweeps, err := s.Sweep(ctx, sw.topos, sw.points, sw.benches...)
		if err != nil {
			return err
		}
		a.ex.sweeps = sweeps
		fmt.Fprint(w, numaws.SweepTable(sweeps))
	case "tournament":
		tour, err := s.Tournament(ctx, a.tn.topos, a.tn.benches...)
		if err != nil {
			return err
		}
		a.ex.tour = &tour
		fmt.Fprint(w, tour.Table())
	case "dag":
		fmt.Fprintln(w, "Measured computation dags (strand cycles; parallelism = work/span)")
		fmt.Fprintf(w, "%-12s %14s %14s %14s\n", "benchmark", "work (T1)", "span (Tinf)", "parallelism")
		dags, err := s.DAGs(ctx)
		if err != nil {
			return err
		}
		for _, d := range dags {
			fmt.Fprintf(w, "%-12s %14d %14d %14.1f\n", d.Bench, d.Work, d.Span, d.Parallelism)
		}
	case "timeline":
		name := ""
		if len(a.args) > 1 {
			name = a.args[1]
		}
		if name == "" {
			name = "heat"
		}
		tls, err := s.Timeline(ctx, name, 100)
		if err != nil {
			return err
		}
		for _, tl := range tls {
			fmt.Fprintf(w, "%s on %s: T%d = %d cycles\n", name, tl.Policy, tl.P, tl.Time)
			fmt.Fprint(w, tl.Chart)
			fmt.Fprintln(w)
		}
	case "all":
		for _, sub := range []string{"fig1", "fig6", "fig3", "tables", "fig9", "dag"} {
			if err := a.run(ctx, sub, nil); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return unknownSubcommand(cmd)
	}
	return nil
}
