// Command numaws regenerates the paper's figures and tables on the
// simulated NUMA platform.
//
// Usage:
//
//	numaws [flags] <subcommand>
//
// Subcommands:
//
//	fig1    print the evaluation machine's topology (Fig. 1)
//	fig3    normalized processing times on Cilk Plus (Fig. 3)
//	fig6    Z-Morton and blocked Z-Morton index grids (Fig. 6)
//	table7  TS / T1 / TP execution times on both platforms (Fig. 7)
//	table8  work / scheduling / idle breakdown and inflation (Fig. 8)
//	fig9    NUMA-WS scalability curves (Fig. 9)
//	dag     measured work, span and parallelism per benchmark (Section IV)
//	timeline <bench>  per-worker execution timeline under both schedulers
//	all     everything above
//
// Flags:
//
//	-scale   small|full (default full)
//	-p       parallel worker count for the tables (default 32)
//	-seed    scheduler seed (default 1)
//	-verify  verify every run's computed result (default true)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
)

func main() {
	scale := flag.String("scale", "full", "input scale: small or full")
	p := flag.Int("p", 32, "parallel worker count for tables")
	seed := flag.Int64("seed", 1, "scheduler seed")
	seeds := flag.Int("seeds", 1, "seeds to average each parallel measurement over")
	verify := flag.Bool("verify", true, "verify every run's result")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	sc := harness.ScaleFull
	if *scale == "small" {
		sc = harness.ScaleSmall
	}
	opt := harness.Options{P: *p, Seed: *seed, Seeds: *seeds, Verify: *verify}
	specs := harness.Specs(sc)

	if err := run(cmd, specs, opt); err != nil {
		fmt.Fprintln(os.Stderr, "numaws:", err)
		os.Exit(1)
	}
}

func run(cmd string, specs []harness.Spec, opt harness.Options) error {
	switch cmd {
	case "fig1":
		fmt.Println("Fig. 1: the evaluation machine")
		fmt.Print(topology.XeonE5_4620().String())
	case "fig6":
		fmt.Println("Fig. 6(a): Z-Morton layout (cell by cell)")
		fmt.Print(layout.Grid(8, layout.Morton, 0))
		fmt.Println("\nFig. 6(b): blocked Z-Morton layout (4x4 blocks, row-major inside)")
		fmt.Print(layout.Grid(8, layout.BlockedMorton, 4))
	case "fig3":
		rows, err := measureFig3(specs, opt)
		if err != nil {
			return err
		}
		fmt.Print(metrics.Fig3(rows))
	case "table7", "table8", "tables":
		rows, err := harness.MeasureAll(specs, opt)
		if err != nil {
			return err
		}
		if cmd != "table8" {
			fmt.Print(metrics.Table7(rows))
		}
		if cmd != "table7" {
			fmt.Println()
			fmt.Print(metrics.Table8(rows))
		}
	case "fig9":
		series, err := harness.MeasureScalability(specs, opt, nil)
		if err != nil {
			return err
		}
		fmt.Print(metrics.Fig9(series))
	case "dag":
		fmt.Println("Measured computation dags (strand cycles; parallelism = work/span)")
		fmt.Printf("%-12s %14s %14s %14s\n", "benchmark", "work (T1)", "span (Tinf)", "parallelism")
		o := opt
		o.RecordDAG = true
		for _, spec := range specs {
			rep, err := harness.RunOne(spec, sched.PolicyNUMAWS, o)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %14d %14d %14.1f\n",
				spec.Name, rep.DAG.Work(), rep.DAG.Span(), rep.DAG.Parallelism())
		}
	case "timeline":
		name := flag.Arg(1)
		if name == "" {
			name = "heat"
		}
		var spec *harness.Spec
		for i := range specs {
			if specs[i].Name == name {
				spec = &specs[i]
			}
		}
		if spec == nil {
			return fmt.Errorf("no benchmark named %q", name)
		}
		for _, pol := range []sched.Policy{sched.PolicyCilk, sched.PolicyNUMAWS} {
			rep, tl, err := harness.RunTraced(*spec, pol, opt)
			if err != nil {
				return err
			}
			fmt.Printf("%s on %v: T%d = %d cycles\n", name, pol, opt.P, rep.Time)
			fmt.Print(tl.Render(100))
			fmt.Println()
		}
	case "all":
		for _, sub := range []string{"fig1", "fig6", "fig3", "tables", "fig9", "dag"} {
			if err := run(sub, specs, opt); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown subcommand %q (want fig1, fig3, fig6, table7, table8, fig9, dag, all)", cmd)
	}
	return nil
}

// measureFig3 runs only what Fig. 3 needs: the Cilk Plus side of the seven
// Fig. 3 benchmarks.
func measureFig3(specs []harness.Spec, opt harness.Options) ([]metrics.Row, error) {
	var rows []metrics.Row
	for _, spec := range specs {
		if !spec.InFig3 {
			continue
		}
		row, err := harness.Measure(spec, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
