package harness

// This file decomposes the measurement protocols into independent jobs for
// the internal/exec worker pool. Each job is one full simulation with its
// own workload and runtime; jobs write raw reports into pre-allocated
// slots, and the slots are folded into metrics rows in canonical
// spec/platform/seed order after the pool drains, so the aggregate is
// byte-identical to what the old serial loops produced. Completed jobs are
// additionally streamed through the emitter (Options.OnRun) in completion
// order, which is what Session.Each builds on.

import (
	"context"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// platformRuns holds one platform's raw reports for one spec: the
// one-worker run plus one P-worker run per scheduler seed.
type platformRuns struct {
	t1    *core.Report
	seeds []*core.Report
}

// specRuns holds every raw report needed to assemble one metrics.Row.
type specRuns struct {
	ts       *core.Report
	baseline platformRuns // sched.Cilk, the classic work-stealing column
	policy   platformRuns // opt.Policy, the NUMA-aware column
}

// submit schedules the full Fig. 7/Fig. 8 protocol for one spec on the
// pool: TS, then T1 and the per-seed TP runs on both platforms. idx
// advances one slot per job submitted and orders errors across specs the
// way the serial loops encountered them (TS first, then baseline T1,
// baseline seeds, policy T1, policy seeds).
func (r *specRuns) submit(ctx context.Context, pool *exec.Pool, em *emitter, idx *int, spec Spec, opt Options) {
	submit := func(slot **core.Report, meta RunMeta, run func() (*core.Report, error)) {
		pool.Submit(ctx, *idx, func() error {
			rep, err := run()
			if err != nil {
				return err
			}
			*slot = rep
			meta.Time = rep.Time
			em.emit(meta)
			return nil
		})
		*idx++
	}

	submit(&r.ts, RunMeta{Bench: spec.Name, Policy: "serial", P: 1, Seed: opt.Seed, Serial: true},
		func() (*core.Report, error) { return RunSerial(ctx, spec, opt) })
	for pi, pol := range []sched.Policy{sched.Cilk, opt.Policy} {
		// Column position, not policy identity: with Policy: sched.Cilk the
		// comparison degenerates to cilk-vs-cilk, and both columns must
		// still be populated.
		pr := &r.baseline
		if pi == 1 {
			pr = &r.policy
		}
		pr.seeds = make([]*core.Report, opt.Seeds)
		pol, baseline := pol, pi == 0
		o1 := opt
		o1.P = 1
		submit(&pr.t1, RunMeta{Bench: spec.Name, Policy: pol.Name(), P: 1, Seed: opt.Seed, Baseline: baseline},
			func() (*core.Report, error) { return RunOne(ctx, spec, pol, o1) })
		for s := 0; s < opt.Seeds; s++ {
			o := opt
			o.Seed = opt.Seed + int64(s)
			submit(&pr.seeds[s], RunMeta{Bench: spec.Name, Policy: pol.Name(), P: opt.P, Seed: o.Seed, Baseline: baseline},
				func() (*core.Report, error) { return RunOne(ctx, spec, pol, o) })
		}
	}
}

// result folds one platform's reports into the averaged PlatformResult.
func (p *platformRuns) result(seeds int) metrics.PlatformResult {
	var pr metrics.PlatformResult
	pr.T1 = p.t1.Time
	pr.W1 = p.t1.Sched.WorkTotal()
	for _, rp := range p.seeds {
		pr.TP += rp.Time
		pr.WP += rp.Sched.WorkTotal()
		pr.SP += rp.Sched.SchedTotal()
		pr.IP += rp.Sched.IdleTotal()
	}
	n := int64(seeds)
	pr.TP /= n
	pr.WP /= n
	pr.SP /= n
	pr.IP /= n
	return pr
}

// row assembles the metrics row once every job has completed.
func (r *specRuns) row(spec Spec, opt Options) metrics.Row {
	return metrics.Row{
		Name:   spec.Name,
		Input:  spec.Input,
		P:      opt.P,
		TS:     r.ts.Time,
		Cilk:   r.baseline.result(opt.Seeds),
		NUMAWS: r.policy.result(opt.Seeds),
	}
}
