package harness

// This file decomposes the measurement protocols into independent jobs for
// the internal/exec worker pool. Each job is one full simulation with its
// own workload and runtime; jobs write their measured totals into
// pre-allocated slots, and the slots are folded into metrics rows in
// canonical spec/platform/seed order after the pool drains, so the
// aggregate is byte-identical to what the old serial loops produced.
// Completed jobs are additionally streamed through the emitter
// (Options.OnRun) in completion order, which is what Session.Each builds
// on.
//
// Failure containment happens at this layer's seam: a job whose run comes
// back as a *RunError records the failure on its spec (lowest submission
// index wins, so the reported failure is deterministic for a deterministic
// fault) and returns nil to the pool — the grid proceeds, and the spec
// folds into an error row. Only grid-level errors (cancellation, journal
// I/O) propagate into the pool and abort the sweep.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
)

// runResult is one completed run's measured totals — exactly the fields
// the row fold consumes, and exactly what the journal persists, so a
// replayed run is indistinguishable from a simulated one.
type runResult struct {
	time  int64
	work  int64
	sched int64
	idle  int64
}

// resultOf extracts the fold inputs from a run report.
func resultOf(rep *core.Report) runResult {
	rr := runResult{time: rep.Time}
	if rep.Sched != nil {
		rr.work = rep.Sched.WorkTotal()
		rr.sched = rep.Sched.SchedTotal()
		rr.idle = rep.Sched.IdleTotal()
	}
	return rr
}

// topologyKey is the journal's compact machine signature: the shape for
// readability plus a content hash of the full rendering (which includes
// the distance matrix), so two same-shape machines with different
// distance structure never share journal records.
func topologyKey(top *topology.Topology) string {
	h := fnv.New64a()
	io.WriteString(h, top.String())
	return fmt.Sprintf("%dx%d-%016x", top.Sockets(), top.CoresPerSocket(), h.Sum64())
}

// journaler adapts Options.Journal/Options.Resume for the submission loop.
// A nil journaler (no journal, no resume) is valid and inert.
type journaler struct {
	w      *journal.Writer
	resume map[journal.Key]journal.Result
	top    string
}

func newJournaler(opt Options) *journaler {
	if opt.Journal == nil && opt.Resume == nil {
		return nil
	}
	return &journaler{w: opt.Journal, resume: opt.Resume, top: topologyKey(opt.Topology)}
}

// key builds the run's full journal identity. Baseline is deliberately
// absent: the baseline and policy columns of a cilk-vs-cilk comparison
// measure the identical simulation, and the journal dedups by content.
func (j *journaler) key(spec Spec, meta RunMeta, opt Options) journal.Key {
	return journal.Key{
		Gen: spec.Generation(), Bench: spec.Name, Input: spec.Input,
		Scale: int(spec.SpecScale()), Topology: j.top,
		Policy: meta.Policy, P: meta.P, Seed: meta.Seed,
		Serial: meta.Serial, Verify: opt.Verify,
	}
}

// lookup reports the journaled result for a key, if resuming and present.
func (j *journaler) lookup(k journal.Key) (runResult, bool) {
	if j == nil || j.resume == nil {
		return runResult{}, false
	}
	res, ok := j.resume[k]
	if !ok {
		return runResult{}, false
	}
	return runResult{time: res.Time, work: res.Work, sched: res.Sched, idle: res.Idle}, true
}

// append durably journals one completed run. An I/O failure here is a
// grid-level error: the journal's whole point is that recorded rows are
// trustworthy, so a grid that cannot record stops.
func (j *journaler) append(k journal.Key, rr runResult) error {
	if j == nil || j.w == nil {
		return nil
	}
	return j.w.Write(k, journal.Result{Time: rr.time, Work: rr.work, Sched: rr.sched, Idle: rr.idle})
}

// platformRuns holds one platform's measured totals for one spec: the
// one-worker run plus one P-worker run per scheduler seed.
type platformRuns struct {
	t1    runResult
	seeds []runResult
}

// specRuns holds every slot needed to assemble one metrics.Row, plus the
// spec's recorded failure (if any run of the spec failed).
type specRuns struct {
	ts       runResult
	baseline platformRuns // sched.Cilk, the classic work-stealing column
	policy   platformRuns // opt.Policy, the NUMA-aware column

	mu      sync.Mutex
	fail    *RunError
	failIdx int
}

// recordFailure keeps the contained failure with the lowest submission
// index — the one the old serial loops would have hit first — so the
// error row reports deterministically no matter how pool workers raced.
func (r *specRuns) recordFailure(idx int, re *RunError) {
	r.mu.Lock()
	if r.fail == nil || idx < r.failIdx {
		r.fail, r.failIdx = re, idx
	}
	r.mu.Unlock()
}

// submit schedules the full Fig. 7/Fig. 8 protocol for one spec on the
// pool: TS, then T1 and the per-seed TP runs on both platforms. idx
// advances one slot per run (replayed or simulated) and orders failures
// across specs the way the serial loops encountered them (TS first, then
// baseline T1, baseline seeds, policy T1, policy seeds). Runs found in
// the resume journal fill their slot immediately — emitted with
// RunMeta.Replayed set — and submit no job.
func (r *specRuns) submit(ctx context.Context, pool *exec.Pool, em *emitter, jr *journaler, idx *int, spec Spec, opt Options) {
	submit := func(slot *runResult, meta RunMeta, run func() (*core.Report, error)) {
		myIdx := *idx
		*idx++
		key := journal.Key{}
		if jr != nil {
			key = jr.key(spec, meta, opt)
			if rr, ok := jr.lookup(key); ok {
				*slot = rr
				meta.Replayed = true
				meta.Time = rr.time
				em.emit(meta)
				return
			}
		}
		pool.Submit(ctx, myIdx, func() error {
			rep, err := run()
			if err != nil {
				var re *RunError
				if errors.As(err, &re) && ctx.Err() == nil {
					r.recordFailure(myIdx, re)
					return nil // contained: the grid proceeds, the spec reports an error row
				}
				return err // grid-level: cancellation (or a non-run error) aborts the sweep
			}
			rr := resultOf(rep)
			if err := jr.append(key, rr); err != nil {
				return err
			}
			*slot = rr
			meta.Time = rr.time
			em.emit(meta)
			return nil
		})
	}

	submit(&r.ts, RunMeta{Bench: spec.Name, Policy: "serial", P: 1, Seed: opt.Seed, Serial: true},
		func() (*core.Report, error) { return RunSerial(ctx, spec, opt) })
	for pi, pol := range []sched.Policy{sched.Cilk, opt.Policy} {
		// Column position, not policy identity: with Policy: sched.Cilk the
		// comparison degenerates to cilk-vs-cilk, and both columns must
		// still be populated.
		pr := &r.baseline
		if pi == 1 {
			pr = &r.policy
		}
		pr.seeds = make([]runResult, opt.Seeds)
		pol, baseline := pol, pi == 0
		o1 := opt
		o1.P = 1
		submit(&pr.t1, RunMeta{Bench: spec.Name, Policy: pol.Name(), P: 1, Seed: opt.Seed, Baseline: baseline},
			func() (*core.Report, error) { return RunOne(ctx, spec, pol, o1) })
		for s := 0; s < opt.Seeds; s++ {
			o := opt
			o.Seed = opt.Seed + int64(s)
			submit(&pr.seeds[s], RunMeta{Bench: spec.Name, Policy: pol.Name(), P: opt.P, Seed: o.Seed, Baseline: baseline},
				func() (*core.Report, error) { return RunOne(ctx, spec, pol, o) })
		}
	}
}

// result folds one platform's totals into the averaged PlatformResult.
func (p *platformRuns) result(seeds int) metrics.PlatformResult {
	var pr metrics.PlatformResult
	pr.T1 = p.t1.time
	pr.W1 = p.t1.work
	for _, rp := range p.seeds {
		pr.TP += rp.time
		pr.WP += rp.work
		pr.SP += rp.sched
		pr.IP += rp.idle
	}
	n := int64(seeds)
	pr.TP /= n
	pr.WP /= n
	pr.SP /= n
	pr.IP /= n
	return pr
}

// row assembles the metrics row once every job has completed: the folded
// measurements, or an error row when any of the spec's runs failed.
func (r *specRuns) row(spec Spec, opt Options) metrics.Row {
	if r.fail != nil {
		return metrics.Row{
			Name:  spec.Name,
			Input: spec.Input,
			P:     opt.P,
			Err:   r.fail.RowError(),
		}
	}
	return metrics.Row{
		Name:   spec.Name,
		Input:  spec.Input,
		P:      opt.P,
		TS:     r.ts.time,
		Cilk:   r.baseline.result(opt.Seeds),
		NUMAWS: r.policy.result(opt.Seeds),
	}
}
