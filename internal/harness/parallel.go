package harness

// This file decomposes the measurement protocols into independent jobs for
// the internal/exec worker pool. Each job is one full simulation with its
// own workload and runtime; jobs write raw reports into pre-allocated
// slots, and the slots are folded into metrics rows in canonical
// spec/platform/seed order after the pool drains, so the aggregate is
// byte-identical to what the old serial loops produced.

import (
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// platformRuns holds one platform's raw reports for one spec: the
// one-worker run plus one P-worker run per scheduler seed.
type platformRuns struct {
	t1    *core.Report
	seeds []*core.Report
}

// specRuns holds every raw report needed to assemble one metrics.Row.
type specRuns struct {
	ts     *core.Report
	cilk   platformRuns
	numaws platformRuns
}

// submit schedules the full Fig. 7/Fig. 8 protocol for one spec on the
// pool: TS, then T1 and the per-seed TP runs on both platforms. idx
// advances one slot per job submitted and orders errors across specs the
// way the serial loops encountered them (TS first, then Cilk T1, Cilk
// seeds, NUMA-WS T1, NUMA-WS seeds).
func (r *specRuns) submit(pool *exec.Pool, idx *int, spec Spec, opt Options) {
	submit := func(slot **core.Report, run func() (*core.Report, error)) {
		pool.Submit(*idx, func() error {
			rep, err := run()
			if err != nil {
				return err
			}
			*slot = rep
			return nil
		})
		*idx++
	}

	submit(&r.ts, func() (*core.Report, error) { return RunSerial(spec, opt) })
	for _, pol := range []sched.Policy{sched.PolicyCilk, sched.PolicyNUMAWS} {
		pr := &r.cilk
		if pol == sched.PolicyNUMAWS {
			pr = &r.numaws
		}
		pr.seeds = make([]*core.Report, opt.Seeds)
		pol := pol
		o1 := opt
		o1.P = 1
		submit(&pr.t1, func() (*core.Report, error) { return RunOne(spec, pol, o1) })
		for s := 0; s < opt.Seeds; s++ {
			o := opt
			o.Seed = opt.Seed + int64(s)
			submit(&pr.seeds[s], func() (*core.Report, error) { return RunOne(spec, pol, o) })
		}
	}
}

// result folds one platform's reports into the averaged PlatformResult.
func (p *platformRuns) result(seeds int) metrics.PlatformResult {
	var pr metrics.PlatformResult
	pr.T1 = p.t1.Time
	pr.W1 = p.t1.Sched.WorkTotal()
	for _, rp := range p.seeds {
		pr.TP += rp.Time
		pr.WP += rp.Sched.WorkTotal()
		pr.SP += rp.Sched.SchedTotal()
		pr.IP += rp.Sched.IdleTotal()
	}
	n := int64(seeds)
	pr.TP /= n
	pr.WP /= n
	pr.SP /= n
	pr.IP /= n
	return pr
}

// row assembles the metrics row once every job has completed.
func (r *specRuns) row(spec Spec, opt Options) metrics.Row {
	return metrics.Row{
		Name:   spec.Name,
		Input:  spec.Input,
		P:      opt.P,
		TS:     r.ts.Time,
		Cilk:   r.cilk.result(opt.Seeds),
		NUMAWS: r.numaws.result(opt.Seeds),
	}
}
