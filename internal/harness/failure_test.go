package harness

// Tests for the failure-containment layer: panic isolation into typed
// error rows, quarantine of pooled resources, run deadlines with
// deterministic retry, the single-flight reference cache's error path,
// and the crash-safe journal's resume protocol. Every fault here is
// injected through internal/faultinject, so the misbehavior is a pure
// function of the armed plan and the run key — the suite is deterministic
// and runs under -race in CI.

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// gridOpts is the small grid configuration the containment tests share.
func gridOpts() Options {
	return Options{P: 4, Seeds: 1, Jobs: 4, Verify: true}
}

// TestGridContainsInjectedPanic is the tentpole containment test: a grid
// in which every run of one benchmark panics must complete every other
// benchmark's row, report exactly one typed error row, quarantine the
// panicking runs' pooled inputs, and — after disarming — produce rows
// byte-identical to a clean grid, proving no quarantined instance was
// ever handed back.
func TestGridContainsInjectedPanic(t *testing.T) {
	specs := Specs(ScaleSmall)[:3]
	victim := specs[1].Name
	opt := gridOpts()
	ctx := t.Context()

	workloads.FlushPools()
	clean, err := MeasureAll(ctx, specs, opt)
	if err != nil {
		t.Fatalf("clean grid: %v", err)
	}

	workloads.ResetPoolCounters()
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: victim},
		Kind:   faultinject.PanicAtTask,
		N:      1,
	})
	defer faultinject.Disarm()
	rows, err := MeasureAll(ctx, specs, opt)
	if err != nil {
		t.Fatalf("injected grid must contain the panic, got %v", err)
	}
	var failed int
	for i, row := range rows {
		if row.Name == victim {
			if row.Err == nil {
				t.Fatalf("victim %s has no error row: %+v", victim, row)
			}
			failed++
			if row.Err.Kind != "panic" || !strings.Contains(row.Err.Msg, "injected panic") {
				t.Errorf("error row = %+v, want kind panic mentioning the injection", row.Err)
			}
			// Lowest submission index wins: the victim's TS reference was
			// memoized by the clean grid (so its serial run never
			// re-simulates and never trips), which makes the baseline T1
			// run the first failing submission — deterministically, no
			// matter how pool workers raced.
			if row.Err.Policy != sched.Cilk.Name() || row.Err.P != 1 {
				t.Errorf("reported failure should be the first-submitted failing run (baseline T1): %+v", row.Err)
			}
			continue
		}
		if row.Err != nil {
			t.Errorf("healthy spec %s got an error row: %v", row.Name, row.Err)
		}
		if !reflect.DeepEqual(row, clean[i]) {
			t.Errorf("healthy spec %s's row changed under injection:\nclean:    %+v\ninjected: %+v", row.Name, clean[i], row)
		}
	}
	if failed != 1 {
		t.Fatalf("got %d error rows, want exactly 1", failed)
	}
	if _, _, _, quarantined := workloads.PoolCounters(); quarantined == 0 {
		t.Error("panicking runs quarantined no pooled inputs")
	}

	// The recovery grid: with the fault disarmed, the pool must rebuild
	// what was quarantined and the rows must match the clean grid exactly —
	// a poisoned (mid-mutation) instance handed back would fail
	// verification or change a measurement.
	faultinject.Disarm()
	again, err := MeasureAll(ctx, specs, opt)
	if err != nil {
		t.Fatalf("recovery grid: %v", err)
	}
	if !reflect.DeepEqual(again, clean) {
		t.Errorf("recovery grid differs from clean grid:\nclean:    %+v\nrecovery: %+v", clean, again)
	}
}

// TestInjectionTargetsExactRun pins the precision of the fault targeting:
// a plan keyed to one (bench, policy, P, seed, mode) tuple fails exactly
// that run, and the error row carries the failing run's identity.
func TestInjectionTargetsExactRun(t *testing.T) {
	specs := Specs(ScaleSmall)[:2]
	opt := gridOpts()
	opt.Seeds = 2
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{
			Bench:  specs[0].Name,
			Policy: sched.NUMAWS.Name(),
			P:      opt.P,
			Seed:   2,
			Mode:   faultinject.ParallelOnly,
		},
		Kind: faultinject.PanicAtTask,
		N:    3,
	})
	defer faultinject.Disarm()
	rows, err := MeasureAll(t.Context(), specs, opt)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	re := rows[0].Err
	if re == nil {
		t.Fatalf("targeted spec has no error row: %+v", rows[0])
	}
	if re.Policy != sched.NUMAWS.Name() || re.P != opt.P || re.Seed != 2 {
		t.Errorf("error row identifies the wrong run: %+v, want numaws P=%d seed=2", re, opt.P)
	}
	if rows[1].Err != nil {
		t.Errorf("untargeted spec got an error row: %v", rows[1].Err)
	}
}

// TestPanicIsNeverRetried pins the deterministic-failure half of the retry
// policy: a panicking run fails on its first attempt even with a generous
// retry budget, because re-running a deterministic simulator reproduces
// the panic byte for byte.
func TestPanicIsNeverRetried(t *testing.T) {
	spec := specByName(t, "heat")
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name, Mode: faultinject.ParallelOnly},
		Kind:   faultinject.PanicAtTask,
		N:      0,
	})
	defer faultinject.Disarm()
	opt := Options{P: 4, Verify: true, Retries: 3}
	_, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Kind != KindPanic || re.Transient() {
		t.Errorf("kind = %v (transient %t), want non-transient panic", re.Kind, re.Transient())
	}
	if re.Attempts != 1 {
		t.Errorf("panic was attempted %d times, want 1", re.Attempts)
	}
	if len(re.Stack) == 0 {
		t.Error("panic RunError carries no stack")
	}
}

// TestRunTimeoutClassifiesHangAsTransient: a wedged-but-live run (endless
// spawn loop) is interrupted by the per-run deadline and classified as the
// retryable failure it is.
func TestRunTimeoutClassifiesHangAsTransient(t *testing.T) {
	spec := specByName(t, "heat")
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name, Mode: faultinject.ParallelOnly},
		Kind:   faultinject.HangAtTask,
		N:      1,
	})
	defer faultinject.Disarm()
	opt := Options{P: 4, RunTimeout: 50 * time.Millisecond}
	_, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Kind != KindTimeout || !re.Transient() {
		t.Errorf("kind = %v (transient %t), want transient timeout", re.Kind, re.Transient())
	}
	if !errors.Is(err, sched.ErrInterrupted) {
		t.Errorf("timeout RunError should wrap the engine interrupt, got %v", err)
	}
}

// TestRetriedRunIsByteIdentical is the determinism contract of the retry
// loop: a run that hangs once (Trips: 1) and succeeds on its second
// attempt measures exactly what an uninjected run measures, because the
// retry checked out fresh resources.
func TestRetriedRunIsByteIdentical(t *testing.T) {
	spec := specByName(t, "heat")
	opt := Options{P: 4, Verify: true}
	clean, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name, Mode: faultinject.ParallelOnly},
		Kind:   faultinject.HangAtTask,
		N:      1,
		Trips:  1,
	})
	defer faultinject.Disarm()
	// The hung attempt pays the full deadline, so keep it small — but the
	// clean retry must finish inside it even under the race detector
	// (~100ms for this run), so not too small.
	opt.RunTimeout = 2 * time.Second
	opt.Retries = 1
	retried, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
	if err != nil {
		t.Fatalf("retried run: %v", err)
	}
	if resultOf(clean) != resultOf(retried) {
		t.Errorf("retried run differs from clean run:\nclean:   %+v\nretried: %+v", resultOf(clean), resultOf(retried))
	}

	// With no retry budget the same one-trip hang is a hard failure with
	// exactly one attempt on record.
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name, Mode: faultinject.ParallelOnly},
		Kind:   faultinject.HangAtTask,
		N:      1,
		Trips:  1,
	})
	opt.Retries = 0
	_, err = RunOne(t.Context(), spec, sched.NUMAWS, opt)
	var re *RunError
	if !errors.As(err, &re) || re.Kind != KindTimeout || re.Attempts != 1 {
		t.Errorf("budgetless hang: err = %v, want one-attempt timeout RunError", err)
	}
}

// TestRefCacheNotPoisonedByPanic pins the single-flight error path of the
// memoized serial reference: a panicking TS run surfaces as an error
// without caching anything, the quarantined reference input is never
// handed back, and the next caller recomputes successfully.
func TestRefCacheNotPoisonedByPanic(t *testing.T) {
	workloads.FlushPools()
	workloads.ResetPoolCounters()
	spec := specByName(t, "lu")
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name, Mode: faultinject.SerialOnly},
		Kind:   faultinject.PanicAtTask,
		N:      0,
		Trips:  1,
	})
	defer faultinject.Disarm()
	opt := Options{Verify: true}
	_, err := RunSerial(t.Context(), spec, opt)
	var re *RunError
	if !errors.As(err, &re) || re.Kind != KindPanic || !re.Serial {
		t.Fatalf("err = %v, want serial panic RunError", err)
	}
	if _, _, _, quarantined := workloads.PoolCounters(); quarantined != 1 {
		t.Errorf("failed reference run quarantined %d instances, want 1", quarantined)
	}
	rep, err := RunSerial(t.Context(), spec, opt)
	if err != nil {
		t.Fatalf("reference recompute after contained panic: %v", err)
	}
	if rep.Time <= 0 {
		t.Errorf("recomputed reference is empty: %+v", rep)
	}
	built, pooled, _, _ := workloads.PoolCounters()
	if pooled != 0 {
		t.Errorf("quarantined reference input was handed back (%d reuses)", pooled)
	}
	if built != 2 {
		t.Errorf("expected a fresh second instance (2 built), got %d", built)
	}
	// The successful recompute is memoized: a third call must hit the memo,
	// not re-simulate.
	rep2, err := RunSerial(t.Context(), spec, opt)
	if err != nil {
		t.Fatalf("memoized reference: %v", err)
	}
	if rep2 != rep {
		t.Error("third call re-simulated instead of hitting the memo")
	}
}

// TestJournalResume is the crash/recover test: a journaled grid killed
// mid-flight (via an injected grid cancellation) resumes into rows
// deep-equal to an uninterrupted run's, re-simulating only the tuples the
// journal is missing.
func TestJournalResume(t *testing.T) {
	specs := Specs(ScaleSmall)[:3]
	// Jobs: 1 makes run completion order deterministic, so the injected
	// cancellation kills the grid at a known point: everything before the
	// victim run is journaled, everything from it on is missing.
	opt := Options{P: 4, Seeds: 1, Jobs: 1, Verify: true}
	const runsPerSpec = 5 // TS + (T1 + 1 seed) on each of two platforms
	total := runsPerSpec * len(specs)

	clean, err := MeasureAll(t.Context(), specs, opt)
	if err != nil {
		t.Fatalf("uninterrupted grid: %v", err)
	}

	path := filepath.Join(t.TempDir(), "grid.jsonl")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	// The first parallel run of the last spec cancels the grid: specs 0
	// and 1 are fully journaled, spec 2 has only its TS record.
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: specs[2].Name, Mode: faultinject.ParallelOnly},
		Kind:   faultinject.CancelGrid,
		N:      0,
		Trips:  1,
		Cancel: cancel,
	})
	defer faultinject.Disarm()
	jopt := opt
	jopt.Journal = w
	_, err = MeasureAll(ctx, specs, jopt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed grid: err = %v, want context.Canceled", err)
	}
	faultinject.Disarm()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	resume, err := journal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) == 0 || len(resume) >= total {
		t.Fatalf("journal has %d records, want a proper non-empty subset of %d", len(resume), total)
	}

	w2, err := journal.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	ropt := opt
	ropt.Journal = w2
	ropt.Resume = resume
	var mu sync.Mutex
	var replayed, simulated int
	ropt.OnRun = func(m RunMeta) {
		mu.Lock()
		if m.Replayed {
			replayed++
		} else {
			simulated++
		}
		mu.Unlock()
	}
	rows, err := MeasureAll(t.Context(), specs, ropt)
	if err != nil {
		t.Fatalf("resumed grid: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, clean) {
		t.Errorf("resumed grid differs from uninterrupted grid:\nclean:   %+v\nresumed: %+v", clean, rows)
	}
	if replayed != len(resume) {
		t.Errorf("replayed %d runs, want %d (one per journaled record)", replayed, len(resume))
	}
	if simulated != total-len(resume) {
		t.Errorf("simulated %d runs, want only the %d missing tuples", simulated, total-len(resume))
	}

	// The resumed grid's appends completed the journal: a third run
	// replays everything and simulates nothing.
	complete, err := journal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(complete) != total {
		t.Fatalf("completed journal has %d records, want %d", len(complete), total)
	}
	replayed, simulated = 0, 0
	fopt := opt
	fopt.Resume = complete
	fopt.OnRun = ropt.OnRun
	rows2, err := MeasureAll(t.Context(), specs, fopt)
	if err != nil {
		t.Fatalf("fully replayed grid: %v", err)
	}
	if !reflect.DeepEqual(rows2, clean) {
		t.Errorf("fully replayed grid differs from uninterrupted grid")
	}
	if simulated != 0 || replayed != total {
		t.Errorf("full replay ran %d simulations and %d replays, want 0 and %d", simulated, replayed, total)
	}
}

// TestErrorRowsExport pins the export surface of a contained failure: the
// error row renders in the tables and round-trips through the JSON export
// with its classification intact.
func TestErrorRowsExport(t *testing.T) {
	spec := specByName(t, "heat")
	faultinject.Arm(faultinject.Plan{
		Target: faultinject.Target{Bench: spec.Name},
		Kind:   faultinject.FailVerify,
	})
	defer faultinject.Disarm()
	row, err := Measure(t.Context(), spec, Options{P: 4, Verify: true})
	if err != nil {
		t.Fatalf("Measure must contain the failure: %v", err)
	}
	if row.Err == nil || row.Err.Kind != "verify" {
		t.Fatalf("row = %+v, want verify error row", row)
	}
	if out := metrics.Table7([]metrics.Row{row}); !strings.Contains(out, "FAILED") {
		t.Errorf("Table7 hides the failed row:\n%s", out)
	}
}
