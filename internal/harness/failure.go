package harness

// The failure-containment layer. One run of a measurement grid can die
// four ways — panic (a buggy registered benchmark or an engine invariant
// violation), deadline interrupt, grid cancellation, verification
// mismatch — and none of them may take the grid down with it. This file
// defines the taxonomy (RunError / FailKind), the single designated
// recovery boundary (contain — the only recover() in the module outside
// goroutine relays, enforced by numaws-vet's panicsafe analyzer), and the
// deterministic retry loop (attemptRun) that re-runs transient failures
// and refuses to re-run deterministic ones.
//
// Resource discipline under failure: the per-run bodies in harness.go
// settle every held resource in deferred code so the settlement happens on
// the panic unwind path too. A run that did not complete its simulation
// quarantines its arena (never handed back to the sync.Pool — its engine
// state is suspect mid-unwind) and Discards its workload lease; a run that
// completed but failed verification returns the arena (the engine
// finished cleanly) but still Discards the instance (its data mutations
// are unverified). Only a fully successful run Releases its instance back
// to the input pool. workloads.PoolCounters counts the quarantines.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// FailKind classifies a contained run failure, deciding retryability:
// timeouts and cancellations are transient (the same run can succeed on a
// quieter machine or a fresh attempt), panics and verification mismatches
// are deterministic (the simulator is a pure function of the run key, so
// re-running reproduces the failure byte for byte).
type FailKind int

// The failure taxonomy.
const (
	KindPanic   FailKind = iota // the run panicked; never retried
	KindVerify                  // result verification failed; never retried
	KindTimeout                 // Options.RunTimeout expired; retryable
	KindCancel                  // the grid's context was cancelled; retryable in principle, but the grid is going down
)

// String names the kind (the journal/export vocabulary).
func (k FailKind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindVerify:
		return "verify"
	case KindTimeout:
		return "timeout"
	case KindCancel:
		return "cancel"
	}
	return fmt.Sprintf("failkind(%d)", int(k))
}

// runKey identifies the failing run inside a RunError.
type runKey struct {
	bench  string
	policy string // "" for serial runs
	p      int
	seed   int64
	serial bool
}

// RunError is a contained run failure: the run's identity, the failure
// classification, and the evidence (panic value plus stack, or the
// underlying error). The measurement protocols convert it into an error
// row; only grid-level failures (cancellation, journal I/O) abort a sweep.
type RunError struct {
	Bench  string
	Policy string // "" for serial runs
	P      int
	Seed   int64
	Serial bool
	Kind   FailKind
	// Panic is the recovered panic value (KindPanic).
	Panic any
	// Stack is the goroutine stack captured at the recovery boundary
	// (KindPanic only).
	Stack []byte
	// Err is the underlying error: the verification failure, or the
	// deadline/cancellation context error.
	Err error
	// Attempts is how many attempts were made in total, retries included.
	Attempts int
}

// Transient reports whether the failure may be retried: it did not come
// from the run's own deterministic behavior.
func (e *RunError) Transient() bool { return e.Kind == KindTimeout || e.Kind == KindCancel }

// detail is the kind-specific part of the message.
func (e *RunError) detail() string {
	switch e.Kind {
	case KindPanic:
		return fmt.Sprintf("panic: %v", e.Panic)
	case KindTimeout:
		return fmt.Sprintf("deadline exceeded (%d attempt(s))", e.Attempts)
	}
	if e.Err != nil {
		return e.Err.Error()
	}
	return e.Kind.String()
}

// Error implements error.
func (e *RunError) Error() string {
	mode := e.Policy
	if e.Serial {
		mode = "serial"
	}
	return fmt.Sprintf("harness: run %s [%s P=%d seed=%d] failed (%s): %s",
		e.Bench, mode, e.P, e.Seed, e.Kind, e.detail())
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// RowError converts the failure into the metrics layer's export shape —
// also what the facade converts into its public RunFailure.
func (e *RunError) RowError() *metrics.RowError {
	return &metrics.RowError{
		Bench: e.Bench, Policy: e.Policy, P: e.P, Seed: e.Seed,
		Kind: e.Kind.String(), Msg: e.detail(),
	}
}

// contain is the designated recovery boundary of the harness: the ONE
// place a run's panic stops unwinding (numaws-vet's panicsafe analyzer
// rejects recover() anywhere else in the module). It executes one attempt
// of one run and converts a panic into a classified *RunError — engine
// deadline interrupts (sched.ErrInterrupted) become KindTimeout, or
// KindCancel when the grid's own context is already dead; everything else
// is KindPanic with the stack captured here, at the point of recovery.
// Errors returned by run (verify failures already typed by the run body,
// context errors) pass through untouched.
func contain(parent context.Context, key runKey, run func() (*core.Report, error)) (rep *core.Report, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		re := &RunError{
			Bench: key.bench, Policy: key.policy, P: key.p, Seed: key.seed, Serial: key.serial,
		}
		if pe, ok := p.(error); ok && errors.Is(pe, sched.ErrInterrupted) {
			re.Kind, re.Err = KindTimeout, pe
			if parent != nil && parent.Err() != nil {
				re.Kind, re.Err = KindCancel, parent.Err()
			}
		} else {
			re.Kind, re.Panic, re.Stack = KindPanic, p, debug.Stack()
		}
		rep, err = nil, re
	}()
	return run()
}

// attemptRun executes run under the containment boundary with the
// per-attempt deadline of opt.RunTimeout and the bounded retry policy of
// opt.Retries. Retry is deterministic by construction: the budget is an
// attempt count (no wall-clock backoff — each attempt is already bounded
// by the deadline), only transient failures are retried, and every attempt
// checks out fresh resources (the failed attempt's instance and arena were
// quarantined on the way out), so a run that succeeds on attempt N is
// byte-identical to one that succeeds on attempt 1. Grid cancellation
// always wins: once the parent context is dead, its error is returned
// unchanged, preserving the protocols' pinned cancellation contract.
func attemptRun(ctx context.Context, key runKey, opt Options, run func(context.Context) (*core.Report, error)) (*core.Report, error) {
	for attempt := 1; ; attempt++ {
		rctx, cancel := ctx, context.CancelFunc(func() {})
		if opt.RunTimeout > 0 {
			rctx, cancel = context.WithTimeout(ctx, opt.RunTimeout)
		}
		rep, err := contain(ctx, key, func() (*core.Report, error) { return run(rctx) })
		cancel()
		if err == nil {
			return rep, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var re *RunError
		if errors.As(err, &re) {
			re.Attempts = attempt
			if re.Transient() && attempt <= opt.Retries {
				continue
			}
		}
		return nil, err
	}
}

// interruptFor adapts a context to the engine's (and the serial elision's)
// poll hook. Contexts that can never expire install no hook at all, so the
// golden path simulates with zero per-event overhead — and either way an
// uninterrupted run is byte-identical, because the hook never touches
// simulation state.
func interruptFor(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}
