package harness

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestOptionsZeroValuesMeanDefaults pins the Options zero-value contract:
// a zero field always means the documented default, and consequently a
// literal zero can never be expressed — fill remaps Seed: 0 to 1 and
// P: 0 to 32 even when the caller meant zero.
func TestOptionsZeroValuesMeanDefaults(t *testing.T) {
	f := Options{}.fill()
	if f.Topology == nil {
		t.Error("zero Topology should become the paper's machine")
	}
	if f.P != 32 {
		t.Errorf("zero P filled to %d, want 32", f.P)
	}
	// "The whole machine" really is the whole machine: no stale 32-worker
	// cap left over from the fixed-4x8 era on bigger topologies.
	if big := (Options{Topology: topology.Ring(8, 16)}).fill(); big.P != 128 {
		t.Errorf("zero P on an 8x16 machine filled to %d, want 128", big.P)
	}
	if f.Seed != 1 {
		t.Errorf("zero Seed filled to %d, want 1", f.Seed)
	}
	if f.Seeds != 1 {
		t.Errorf("zero Seeds filled to %d, want 1", f.Seeds)
	}
	if f.Jobs != 1 {
		t.Errorf("zero Jobs filled to %d, want 1 (serial)", f.Jobs)
	}
	if f.Verify || f.RecordDAG || f.FreshInputs {
		t.Error("zero booleans must stay false")
	}

	if f.Policy == nil || f.Policy.Name() != "numaws" {
		t.Errorf("zero Policy filled to %v, want numaws", f.Policy)
	}

	// Explicit non-zero values pass through untouched.
	top := topology.TwoSocket(4)
	o := Options{Topology: top, P: 8, Seed: 42, Seeds: 3, Jobs: 5, Verify: true, RecordDAG: true,
		Policy: sched.Cilk}
	if got := o.fill(); !reflect.DeepEqual(got, o) {
		t.Errorf("fill altered explicit options: %+v -> %+v", o, got)
	}

	// The flip side of the contract: Seed: 0 is indistinguishable from
	// the default. Callers must not rely on a literal zero seed.
	if got := (Options{Seed: 0}).fill().Seed; got != 1 {
		t.Errorf("Seed: 0 filled to %d; the contract says it means the default 1", got)
	}

	// Negative counts (reachable from unvalidated CLI flags) also mean
	// the default: the job decomposition allocates Seeds slots and must
	// never see a negative length.
	neg := Options{Seeds: -2, Jobs: -3}.fill()
	if neg.Seeds != 1 || neg.Jobs != 1 {
		t.Errorf("negative counts filled to Seeds=%d Jobs=%d, want 1, 1", neg.Seeds, neg.Jobs)
	}
}

// TestMeasureAllParallelMatchesSerial is the determinism guarantee of the
// tentpole: fanning the experiment sweep out over a worker pool must
// produce results identical to the serial path, down to the rendered
// table bytes.
func TestMeasureAllParallelMatchesSerial(t *testing.T) {
	specs := Specs(ScaleSmall)
	opt := Options{P: 16, Seeds: 2, Verify: true}

	optSerial := opt
	optSerial.Jobs = 1
	serial, err := MeasureAll(t.Context(), specs, optSerial)
	if err != nil {
		t.Fatal(err)
	}
	optPar := opt
	optPar.Jobs = 8
	parallel, err := MeasureAll(t.Context(), specs, optPar)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("rows differ between Jobs=1 and Jobs=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	for _, render := range []func([]metrics.Row) string{metrics.Table7, metrics.Table8, metrics.Fig3} {
		if s, p := render(serial), render(parallel); s != p {
			t.Errorf("rendered table differs between Jobs=1 and Jobs=8:\n--- serial\n%s--- parallel\n%s", s, p)
		}
	}
}

// TestMeasureScalabilityParallelMatchesSerial is the same guarantee for
// the Fig. 9 sweep.
func TestMeasureScalabilityParallelMatchesSerial(t *testing.T) {
	specs := Specs(ScaleSmall)
	points := []int{1, 8}
	opt := Options{Seeds: 2}

	optSerial := opt
	optSerial.Jobs = 1
	serial, err := MeasureScalability(t.Context(), specs, optSerial, points)
	if err != nil {
		t.Fatal(err)
	}
	optPar := opt
	optPar.Jobs = 8
	parallel, err := MeasureScalability(t.Context(), specs, optPar, points)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("series differ between Jobs=1 and Jobs=8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if s, p := metrics.Fig9(serial), metrics.Fig9(parallel); s != p {
		t.Errorf("rendered Fig. 9 differs:\n--- serial\n%s--- parallel\n%s", s, p)
	}
}

// TestMeasureParallelMatchesSerial covers the single-spec entry point.
func TestMeasureParallelMatchesSerial(t *testing.T) {
	spec := specByName(t, "heat")
	serial, err := Measure(t.Context(), spec, Options{P: 8, Seeds: 2, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Measure(t.Context(), spec, Options{P: 8, Seeds: 2, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("row differs between Jobs=1 and Jobs=4:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// failingWorkload wraps a real workload but always fails verification.
type failingWorkload struct{ workloads.Workload }

func (failingWorkload) Verify() error { return errors.New("forced verification failure") }

// TestMeasureAllErrorSurfaces checks the containment contract for
// verification failures on both the serial and the parallel path: the
// failing spec folds into a typed error row, the healthy specs' rows are
// measured normally, and MeasureAll itself succeeds.
func TestMeasureAllErrorSurfaces(t *testing.T) {
	specs := Specs(ScaleSmall)[:3]
	// Overriding Make requires clearing the spec's pool identity: the pool
	// keys on the registry entry, not the builder, and would otherwise hand
	// back instances the original builder constructed.
	bad := workloads.Unpooled(specs[1])
	make1 := bad.Make
	bad.Make = func(aware bool) workloads.Workload {
		return failingWorkload{make1(aware)}
	}
	specs[1] = bad
	for _, jobs := range []int{1, 8} {
		rows, err := MeasureAll(t.Context(), specs, Options{P: 8, Verify: true, Jobs: jobs})
		if err != nil {
			t.Fatalf("Jobs=%d: MeasureAll must contain run failures, got %v", jobs, err)
		}
		if len(rows) != 3 {
			t.Fatalf("Jobs=%d: got %d rows, want 3", jobs, len(rows))
		}
		failed := rows[1]
		if failed.Err == nil {
			t.Fatalf("Jobs=%d: failing spec's row has no error: %+v", jobs, failed)
		}
		if failed.Err.Kind != "verify" || !strings.Contains(failed.Err.Msg, "forced verification failure") {
			t.Errorf("Jobs=%d: error row = %+v, want kind verify mentioning the forced failure", jobs, failed.Err)
		}
		if failed.Name != specs[1].Name || failed.TS != 0 {
			t.Errorf("Jobs=%d: error row should keep identity and zero measurements: %+v", jobs, failed)
		}
		for _, i := range []int{0, 2} {
			if rows[i].Err != nil {
				t.Errorf("Jobs=%d: healthy spec %s got an error row: %v", jobs, rows[i].Name, rows[i].Err)
			}
			if rows[i].TS <= 0 || rows[i].Cilk.T1 <= 0 {
				t.Errorf("Jobs=%d: healthy spec %s not measured: %+v", jobs, rows[i].Name, rows[i])
			}
		}
	}
}

// TestMeasureAllParallelSpeedup demonstrates the point of the worker
// pool: on a multi-core host, the parallel sweep must finish at least
// twice as fast as the serial one. Hosts with fewer than eight CPUs skip:
// below that there is not enough headroom to assert 2x without flaking
// on shared runners (GitHub's report 4 vCPUs), while at eight the
// expected speedup (~6x) clears the bar with a wide margin.
func TestMeasureAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison skipped in -short mode")
	}
	if exec.DefaultJobs() < 8 {
		t.Skipf("host has %d CPUs; speedup demonstration needs >= 8", exec.DefaultJobs())
	}
	specs := Specs(ScaleSmall)
	opt := Options{P: 16, Seeds: 2}

	optSerial := opt
	optSerial.Jobs = 1
	t0 := time.Now()
	if _, err := MeasureAll(t.Context(), specs, optSerial); err != nil {
		t.Fatal(err)
	}
	serialDur := time.Since(t0)

	optPar := opt
	optPar.Jobs = exec.DefaultJobs()
	t0 = time.Now()
	if _, err := MeasureAll(t.Context(), specs, optPar); err != nil {
		t.Fatal(err)
	}
	parallelDur := time.Since(t0)

	speedup := float64(serialDur) / float64(parallelDur)
	t.Logf("MeasureAll at ScaleSmall: serial %v, %d jobs %v (%.2fx)",
		serialDur, optPar.Jobs, parallelDur, speedup)
	if speedup < 2 {
		t.Errorf("parallel sweep only %.2fx faster than serial, want >= 2x on a %d-CPU host",
			speedup, exec.DefaultJobs())
	}
}

// TestMeasureAllStreamsEveryRun pins the streaming contract: OnRun receives
// exactly one RunMeta per simulation of the grid — TS plus (T1 and Seeds
// TP runs) per platform, for every spec — with valid times, and streaming
// does not perturb the returned rows.
func TestMeasureAllStreamsEveryRun(t *testing.T) {
	var specs []Spec
	for _, s := range Specs(ScaleSmall) {
		if s.Name == "cilksort" || s.Name == "heat" {
			specs = append(specs, s)
		}
	}
	opt := Options{P: 8, Seeds: 2, Jobs: exec.DefaultJobs()}
	var mu sync.Mutex
	var metas []RunMeta
	streamOpt := opt
	streamOpt.OnRun = func(m RunMeta) {
		mu.Lock()
		metas = append(metas, m)
		mu.Unlock()
	}
	rows, err := MeasureAll(t.Context(), specs, streamOpt)
	if err != nil {
		t.Fatal(err)
	}
	perSpec := 1 + 2*(1+opt.Seeds) // TS + per-platform T1 and seed runs
	if want := len(specs) * perSpec; len(metas) != want {
		t.Fatalf("streamed %d runs, want %d", len(metas), want)
	}
	serial, t1s, tps := 0, 0, 0
	for _, m := range metas {
		if m.Time <= 0 {
			t.Errorf("streamed run %+v has non-positive time", m)
		}
		switch {
		case m.Serial:
			serial++
			if m.Policy != "serial" || m.P != 1 {
				t.Errorf("serial run meta wrong: %+v", m)
			}
		case m.P == 1:
			t1s++
		case m.P == opt.P:
			tps++
		default:
			t.Errorf("streamed run at unexpected P: %+v", m)
		}
		if !m.Serial && m.Policy != "cilk" && m.Policy != "numaws" {
			t.Errorf("streamed run under unexpected policy: %+v", m)
		}
	}
	if serial != len(specs) || t1s != 2*len(specs) || tps != 2*opt.Seeds*len(specs) {
		t.Errorf("streamed run mix serial=%d t1=%d tp=%d, want %d/%d/%d",
			serial, t1s, tps, len(specs), 2*len(specs), 2*opt.Seeds*len(specs))
	}
	// Identical rows with and without streaming.
	plain, err := MeasureAll(t.Context(), specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, plain) {
		t.Errorf("streaming changed the measured rows:\n%+v\n%+v", rows, plain)
	}
}
