package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestSweepPoints(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []int
	}{
		{"paper-4x8", []int{1, 8, 16, 24, 32}}, // exactly the paper's Fig. 9 axis
		{"uniform", []int{1, 8, 16, 24, 32}},
		{"2x4", []int{1, 2, 4, 6, 8}},
		{"1x2", []int{1, 2}}, // quarter points collapse on tiny machines
		{"1x1", []int{1}},
	} {
		top, err := topology.Parse(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := SweepPoints(top); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SweepPoints(%s) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestMachines(t *testing.T) {
	ms, err := Machines([]string{"paper-4x8", "2x4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name != "paper-4x8" || ms[1].Top.Cores() != 8 {
		t.Errorf("Machines parsed wrong: %+v", ms)
	}
	for _, bad := range [][]string{nil, {"nope"}, {"2x4", "2x4"}} {
		if _, err := Machines(bad); err == nil {
			t.Errorf("Machines(%v) succeeded, want error", bad)
		}
	}
}

// TestMeasureTopologiesShape runs a small sweep grid and checks the result
// layout: machine-major ordering, per-machine point axes, speedup base 1.
func TestMeasureTopologiesShape(t *testing.T) {
	var specs []Spec
	for _, s := range Specs(ScaleSmall) {
		if s.Name == "cilksort" || s.Name == "heat" {
			specs = append(specs, s)
		}
	}
	machines, err := Machines([]string{"2x4", "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Verify: true, Jobs: exec.DefaultJobs()}
	sweeps, err := MeasureTopologies(t.Context(), specs, machines, opt, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 4 {
		t.Fatalf("%d sweeps, want 4 (2 machines x 2 specs)", len(sweeps))
	}
	if sweeps[0].Topology != "2x4" || sweeps[0].Bench != "cilksort" ||
		sweeps[3].Topology != "uniform" || sweeps[3].Bench != "heat" {
		t.Errorf("sweep order wrong: %+v", sweeps)
	}
	for _, s := range sweeps {
		if !reflect.DeepEqual(s.P, []int{1, 4, 8}) {
			t.Errorf("%s@%s axis = %v, want [1 4 8]", s.Bench, s.Topology, s.P)
		}
		if sp := s.Speedup(); sp[0] != 1 {
			t.Errorf("%s@%s speedup base = %v, want 1", s.Bench, s.Topology, sp[0])
		}
		if s.TP[0] <= 0 {
			t.Errorf("%s@%s has non-positive T1", s.Bench, s.Topology)
		}
	}
	// Points beyond a machine's core count are clipped, and 1 is always
	// re-added as the speedup base.
	clipped, err := MeasureTopologies(t.Context(), specs[:1], machines[:1], opt, []int{4, 99})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clipped[0].P, []int{1, 4}) {
		t.Errorf("clipped axis = %v, want [1 4]", clipped[0].P)
	}
}

// TestPaperPresetByteIdentical pins the refactor's compatibility contract:
// the paper-4x8 preset is the default machine, so measurements taken with an
// explicit preset must render the very same table bytes as measurements
// taken with the nil-topology default — Table 7, Table 8 and the Fig. 9
// curve alike.
func TestPaperPresetByteIdentical(t *testing.T) {
	var specs []Spec
	for _, s := range Specs(ScaleSmall) {
		if s.Name == "cilksort" || s.Name == "heat" || s.Name == "cg" {
			specs = append(specs, s)
		}
	}
	paper, err := topology.Parse("paper-4x8")
	if err != nil {
		t.Fatal(err)
	}
	def := Options{P: 8, Verify: true, Jobs: exec.DefaultJobs()}
	pre := def
	pre.Topology = paper

	defRows, err := MeasureAll(t.Context(), specs, def)
	if err != nil {
		t.Fatal(err)
	}
	preRows, err := MeasureAll(t.Context(), specs, pre)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := metrics.Table7(defRows), metrics.Table7(preRows); a != b {
		t.Errorf("Table 7 differs under the paper-4x8 preset:\ndefault:\n%s\npreset:\n%s", a, b)
	}
	if a, b := metrics.Table8(defRows), metrics.Table8(preRows); a != b {
		t.Errorf("Table 8 differs under the paper-4x8 preset:\ndefault:\n%s\npreset:\n%s", a, b)
	}

	points := []int{1, 4, 8}
	defSeries, err := MeasureScalability(t.Context(), specs, def, points)
	if err != nil {
		t.Fatal(err)
	}
	preSeries, err := MeasureScalability(t.Context(), specs, pre, points)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := metrics.Fig9(defSeries), metrics.Fig9(preSeries); a != b {
		t.Errorf("Fig. 9 differs under the paper-4x8 preset:\ndefault:\n%s\npreset:\n%s", a, b)
	}

	// And the default Fig. 9 axis on the default machine is still the
	// paper's {1, 8, 16, 24, 32}.
	if got := SweepPoints(paper); !reflect.DeepEqual(got, Fig9Points) {
		t.Errorf("SweepPoints(paper-4x8) = %v, want Fig9Points %v", got, Fig9Points)
	}
}

// TestSweepTableRendering checks the sweep's human-readable table groups by
// topology and carries every benchmark row.
func TestSweepTableRendering(t *testing.T) {
	sweeps := []metrics.Sweep{
		{Bench: "heat", Topology: "paper-4x8", Sockets: 4, Cores: 32, P: []int{1, 8}, TP: []int64{100, 20}},
		{Bench: "cg", Topology: "paper-4x8", Sockets: 4, Cores: 32, P: []int{1, 8}, TP: []int64{90, 30}},
		{Bench: "heat", Topology: "2x4", Sockets: 2, Cores: 8, P: []int{1, 8}, TP: []int64{100, 25}},
	}
	out := metrics.SweepTable(sweeps)
	for _, want := range []string{"paper-4x8 (4 sockets x 8 cores)", "2x4 (2 sockets x 4 cores)", "P=8", "5.00", "3.00", "4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "heat") != 2 || strings.Count(out, "cg") != 1 {
		t.Errorf("sweep table rows wrong:\n%s", out)
	}
}
