package harness

// Tests for the grid amortization: the workload-input pool, the shared
// serial-reference caches, and the harness's TS memoization. The contract
// under test is the one DESIGN.md states for the hot path — amortization
// must never change a measured quantity, only who pays for input
// construction and reference computation.

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestGridAmortizationByteIdentical drives a (2 policies x 3 P x 2 seeds)
// measurement grid through Measure twice — once pooled, once with
// FreshInputs — and pins both halves of the amortization contract:
//
//   - the pooled grid constructs each workload input exactly once per aware
//     configuration and computes each serial reference exactly once, and
//   - its rows are identical to the fully unamortized grid's.
func TestGridAmortizationByteIdentical(t *testing.T) {
	// refs counts the expected reference computations per benchmark: one
	// memoized TS report each, plus heat's cached verify oracle (computed
	// inside the TS run's verification). lu's verify reproducts the run's
	// own factors against the kept original, which is per-run by design.
	for _, tc := range []struct {
		bench string
		refs  uint64
	}{
		{"heat", 2},
		{"lu", 1},
	} {
		t.Run(tc.bench, func(t *testing.T) {
			spec := specByName(t, tc.bench)
			grid := func(fresh bool) []metrics.Row {
				var rows []metrics.Row
				for _, p := range []int{2, 4, 8} {
					row, err := Measure(t.Context(), spec, Options{
						P: p, Seeds: 2, Jobs: 1, Verify: true, FreshInputs: fresh,
					})
					if err != nil {
						t.Fatal(err)
					}
					rows = append(rows, row)
				}
				return rows
			}
			workloads.FlushPools()
			workloads.ResetPoolCounters()
			pooled := grid(false)
			built, reused, refs, quarantined := workloads.PoolCounters()
			if built != 2 {
				t.Errorf("pooled grid constructed %d instances, want 2 (one per aware configuration)", built)
			}
			if reused == 0 {
				t.Error("pooled grid never reused an instance")
			}
			if refs != tc.refs {
				t.Errorf("pooled grid ran %d reference computations, want %d", refs, tc.refs)
			}
			if quarantined != 0 {
				t.Errorf("healthy grid quarantined %d instances, want 0", quarantined)
			}
			fresh := grid(true)
			if !reflect.DeepEqual(pooled, fresh) {
				t.Errorf("pooled grid differs from unamortized grid:\npooled: %+v\nfresh:  %+v", pooled, fresh)
			}
		})
	}
}

// TestPooledRunsVerifyBackToBack is the reuse-safety regression test: two
// consecutive verified runs drawing on one pooled input must both pass for
// every registered benchmark — in particular the ones whose run mutates the
// constructed input in place (lu's elimination, cilksort's in-place sort,
// matmul/rectmul's accumulation into C), which a reused Prepare must
// restore.
func TestPooledRunsVerifyBackToBack(t *testing.T) {
	workloads.FlushPools()
	for _, spec := range Specs(ScaleSmall) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			workloads.ResetPoolCounters()
			opt := Options{P: 4, Verify: true}
			first, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
			if err != nil {
				t.Fatalf("first pooled run: %v", err)
			}
			second, err := RunOne(t.Context(), spec, sched.NUMAWS, opt)
			if err != nil {
				t.Fatalf("second pooled run (reused input): %v", err)
			}
			if _, reused, _, _ := workloads.PoolCounters(); reused == 0 {
				t.Fatal("second run did not draw on the pooled input")
			}
			if first.Time != second.Time {
				t.Errorf("reused input changed the measurement: TP %d then %d", first.Time, second.Time)
			}
		})
	}
}
