package harness

import (
	"errors"
	"testing"

	"repro/internal/journal"
	"repro/internal/sched"
	"repro/internal/topology"
)

// TestKeyForMatchesJournalerKey pins the seam the sweep service depends
// on: KeyFor must produce byte-for-byte the key the grid journaler writes
// for the same run, so a service store and a -journal file are mutually
// intelligible.
func TestKeyForMatchesJournalerKey(t *testing.T) {
	spec := specByName(t, "fib")
	opt := Options{Topology: topology.TwoSocket(4), P: 4, Seed: 3, Verify: true}.fill()
	jr := newJournaler(Options{Topology: opt.Topology, Resume: map[journal.Key]journal.Result{}})

	par := jr.key(spec, RunMeta{Bench: spec.Name, Policy: sched.Cilk.Name(), P: opt.P, Seed: opt.Seed}, opt)
	if got := KeyFor(spec, sched.Cilk, opt, false); got != par {
		t.Errorf("parallel key mismatch:\n KeyFor    %+v\n journaler %+v", got, par)
	}

	ser := jr.key(spec, RunMeta{Bench: spec.Name, Policy: "serial", P: 1, Seed: opt.Seed, Serial: true}, opt)
	if got := KeyFor(spec, nil, opt, true); got != ser {
		t.Errorf("serial key mismatch:\n KeyFor    %+v\n journaler %+v", got, ser)
	}
}

// memCache is an in-memory ResultCache recording its traffic.
type memCache struct {
	m    map[journal.Key]journal.Result
	puts int
	fail error
}

func newMemCache() *memCache { return &memCache{m: map[journal.Key]journal.Result{}} }

func (c *memCache) Get(k journal.Key) (journal.Result, bool) {
	r, ok := c.m[k]
	return r, ok
}

func (c *memCache) Put(k journal.Key, r journal.Result) error {
	if c.fail != nil {
		return c.fail
	}
	c.m[k] = r
	c.puts++
	return nil
}

func TestExecuteThroughCachesRuns(t *testing.T) {
	spec := specByName(t, "fib")
	opt := Options{P: 4, Seed: 2, Verify: true}
	c := newMemCache()

	cold, hit, err := ExecuteThrough(t.Context(), c, spec, sched.NUMAWS, opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first execution reported a cache hit")
	}
	if c.puts != 1 {
		t.Errorf("cold run recorded %d puts, want 1", c.puts)
	}
	if cold.Time <= 0 || cold.Work <= 0 {
		t.Errorf("implausible result: %+v", cold)
	}

	warm, hit, err := ExecuteThrough(t.Context(), c, spec, sched.NUMAWS, opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second execution missed the cache")
	}
	if warm != cold {
		t.Errorf("warm result diverged: %+v vs %+v", warm, cold)
	}
	if c.puts != 1 {
		t.Errorf("warm run re-put: %d puts", c.puts)
	}

	// A serial run of the same tuple is a distinct address.
	_, hit, err = ExecuteThrough(t.Context(), c, spec, nil, opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("serial run hit the parallel run's record")
	}
	if c.puts != 2 {
		t.Errorf("after serial run: %d puts, want 2", c.puts)
	}
}

func TestExecuteThroughNilCacheAndPutError(t *testing.T) {
	spec := specByName(t, "fib")
	opt := Options{P: 2, Seed: 1}

	res, hit, err := ExecuteThrough(t.Context(), nil, spec, sched.NUMAWS, opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if hit || res.Time <= 0 {
		t.Errorf("nil cache: hit=%v res=%+v", hit, res)
	}

	c := newMemCache()
	boom := errors.New("store: disk full")
	c.fail = boom
	if _, _, err := ExecuteThrough(t.Context(), c, spec, sched.NUMAWS, opt, false); !errors.Is(err, boom) {
		t.Errorf("Put failure must surface as a grid-level error, got %v", err)
	}
}
