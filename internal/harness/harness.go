// Package harness defines the paper's experiments: which benchmark
// configurations run on which platform at which worker counts, and the
// measurement loops that regenerate each figure and table.
//
// The paper's machine-and-methodology choices are encoded here: workers are
// packed onto the fewest sockets (Fig. 9's policy), Cilk Plus baselines run
// with the better of first-touch and interleave placement and no hints,
// NUMA-WS runs use partitioned placement plus hints (except matmul and
// strassen, which per the paper use no hints), and both platforms run
// identical inputs and base-case sizes.
package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// arenas pools run-scoped simulator storage (worker deques, victim
// pickers, frame and task pools — see core.Arena) across the measurement
// grid. Each simulation borrows one arena for the duration of the run, so
// with opt.Jobs host workers at most Jobs arenas exist and the thousands
// of (spec, policy, P, seed) runs of a sweep stop re-allocating engine
// state. Reuse never changes measured results (core.Arena's contract,
// pinned by TestPaperPresetByteIdentical and the sched arena tests).
var arenas = sync.Pool{New: func() any { return core.NewArena() }}

// Spec describes one benchmark configuration (one row of the paper's
// tables). It is the registry's spec type (see internal/workloads): the
// harness consumes whatever benchmarks are registered, in-tree or
// user-registered through the public facade.
type Spec = workloads.Spec

// Scale selects input sizes.
type Scale = workloads.Scale

// Available scales.
const (
	// ScaleSmall runs in seconds; used by tests and -short benches.
	ScaleSmall = workloads.ScaleSmall
	// ScaleFull is the EXPERIMENTS.md configuration.
	ScaleFull = workloads.ScaleFull
)

// Specs returns every registered benchmark's configuration at the given
// scale, in name order — the paper's nine plus every other registered
// benchmark (the Cilk-suite additions of internal/workloads, and anything
// registered through pkg/numaws.RegisterBenchmark). The paper's nine
// register in internal/workloads with their exact pre-registry dims, so
// restricting a run to those names reproduces the pinned golden output
// byte for byte.
func Specs(s Scale) []Spec { return workloads.Specs(s) }

// Options configures measurement runs.
//
// Zero values mean defaults: every zero (or nil) field selects the
// documented default below, applied by fill at each entry point, so
// Options{} is "the paper's configuration, measured serially". The flip
// side of this contract is that Options cannot express a literal zero —
// Seed: 0 is indistinguishable from the default Seed: 1, and a deliberate
// 1-worker run must say P: 1, because P: 0 means the whole machine (32 on
// the paper's topology). Callers wanting
// anything other than the default must pass an explicit non-zero value.
// TestOptionsZeroValuesMeanDefaults pins this contract.
type Options struct {
	Topology *topology.Topology // nil means the paper's 4x8 machine (topology.XeonE5_4620)
	P        int                // simulated worker count; 0 means the whole machine (Topology.Cores())
	Seed     int64              // scheduler seed; 0 means 1
	// Seeds averages each parallel measurement over this many scheduler
	// seeds (Seed, Seed+1, ...), echoing the paper's "each data point is
	// the average of 10 runs". 0 means 1, per the zero-value contract —
	// and so does any negative count (fill clamps, because the job
	// decomposition allocates one slot per seed). Front ends that can
	// tell "absent" from "asked for zero" should reject sub-1 counts
	// loudly instead of relying on the clamp: cmd/numaws makes -seeds 0
	// a usage error, matching its unknown -topology/-policy/-bench
	// handling.
	Seeds  int
	Verify bool // verify every run's result
	// RecordDAG captures the computation dag of parallel runs (see
	// core.Config.RecordDAG).
	RecordDAG bool
	// Jobs bounds how many independent simulations Measure, MeasureAll
	// and MeasureScalability execute concurrently on host goroutines
	// (see internal/exec); it does not affect the simulated platform or
	// any measured quantity — results are aggregated in canonical order
	// and are identical for every Jobs value. 0 means 1 (serial);
	// exec.DefaultJobs() is the whole-machine setting.
	Jobs int
	// Policy is the NUMA-aware platform of the comparison protocols (the
	// NUMA-WS column of the tables) and the scheduler of the
	// scalability/topology sweeps. nil means sched.NUMAWS, the paper's
	// scheduler. The baseline column is always sched.Cilk.
	Policy sched.Policy
	// FreshInputs disables the workload-input pool and the shared
	// TS/verify reference caches: every run builds its own single-use
	// workload instance and recomputes every serial reference — the fully
	// unamortized path. The zero value (pooled, shared) is the default
	// because amortization never changes measured results: pooled inputs
	// are bit-identical to fresh ones and references depend only on the
	// input data (pinned by TestGridAmortizationByteIdentical).
	FreshInputs bool
	// OnRun, if non-nil, receives every completed simulation of
	// Measure, MeasureAll, MeasureScalability and MeasureTopologies as it
	// finishes — in completion order, not canonical order; calls are
	// serialized. Streaming observes the sweep; it never changes the
	// returned rows, which are still aggregated canonically after the
	// pool drains.
	OnRun func(RunMeta)
	// RunTimeout bounds each individual simulation: a run that exceeds it
	// is interrupted (the engine polls a per-run deadline context) and
	// classified as a transient failure. 0 means no deadline — the zero
	// value must stay free because a deadline, however generous, turns a
	// deterministic grid into one that can observe host load.
	RunTimeout time.Duration
	// Retries re-runs a transiently failed run (timeout; never panic or
	// verification mismatch) up to this many additional attempts. The
	// budget is an attempt count, not a wall-time backoff, so retry
	// behavior is deterministic; each attempt checks out fresh resources,
	// so a retried success is byte-identical to a first-try success.
	// 0 means no retries.
	Retries int
	// Journal, if non-nil, receives one fsync'd record per completed
	// (spec, policy, P, seed) run of Measure/MeasureAll — the crash-safe
	// result log that -resume replays. Failed runs are never journaled.
	Journal *journal.Writer
	// Resume, if non-nil, replays previously journaled runs instead of
	// re-simulating them: a run whose full key is present is filled from
	// the journal (and emitted through OnRun with Replayed set), and only
	// the missing tuples simulate. Determinism makes replay exact: the
	// resumed grid's rows are deep-equal to an uninterrupted run's.
	Resume map[journal.Key]journal.Result
}

// RunMeta identifies one completed simulation of a measurement grid, for
// streaming consumers: which benchmark, under which policy ("serial" for
// the TS elision run), at which worker count and scheduler seed, and the
// completion time it measured.
type RunMeta struct {
	Bench  string
	Policy string
	P      int
	Seed   int64
	Serial bool
	// Baseline marks runs belonging to the classic work-stealing baseline
	// column of the comparison protocol (always sched.Cilk), as opposed to
	// the Options.Policy column. It is the column discriminator: with
	// Policy set to sched.Cilk both columns run cilk, and (Bench, Policy,
	// P, Seed) alone would not distinguish their runs. False for serial
	// and sweep runs, which have no baseline column.
	Baseline bool
	// Replayed marks a run that was filled from a resume journal instead
	// of simulated; its Time is the journaled measurement.
	Replayed bool
	Time     int64 // virtual cycles (TS for serial runs, TP otherwise)
}

func (o Options) fill() Options {
	if o.Topology == nil {
		o.Topology = topology.XeonE5_4620()
	}
	if o.P == 0 {
		// The whole machine. (An earlier revision capped this at the
		// paper's 32, a stale limit from the fixed-4x8 era that silently
		// under-used larger -topology machines.)
		o.P = o.Topology.Cores()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Policy == nil {
		o.Policy = sched.NUMAWS
	}
	// Counts below one (including negatives, reachable from unvalidated
	// flags) mean the default too: the job decomposition allocates one
	// slot per seed, so a negative count must never get that far.
	if o.Seeds < 1 {
		o.Seeds = 1
	}
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	return o
}

// newRuntime builds a fresh platform. arena may be nil (serial runs never
// touch the parallel engine's storage); interrupt may be nil (no run
// deadline — see interruptFor).
func newRuntime(top *topology.Topology, workers int, pol sched.Policy, seed int64, recordDAG bool, arena *core.Arena, interrupt func() bool) *core.Runtime {
	return core.NewRuntime(core.Config{
		Sched: sched.Config{
			Topology:  top,
			Workers:   workers,
			Policy:    pol,
			Seed:      seed,
			Interrupt: interrupt,
		},
		Geometry:  cache.DefaultGeometry(),
		Latency:   cache.DefaultLatency(),
		RecordDAG: recordDAG,
		Arena:     arena,
	})
}

// numaAware reports whether runs under pol get the NUMA-aware workload
// configuration (partitioned data placement plus @place hints): any policy
// that exploits locality — biased steals or work pushing — follows the
// paper's NUMA-WS protocol, while the classic baseline runs unhinted with
// serial-first-touch placement.
func numaAware(pol sched.Policy) bool { return pol.Biased() || pol.Pushes() }

// emitter serializes Options.OnRun callbacks across pool workers.
type emitter struct {
	mu sync.Mutex
	fn func(RunMeta)
}

func newEmitter(fn func(RunMeta)) *emitter {
	if fn == nil {
		return nil
	}
	return &emitter{fn: fn}
}

func (e *emitter) emit(m RunMeta) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fn(m)
	e.mu.Unlock()
}

// RunOne executes one (spec, policy, P) measurement and returns the run
// report. aware follows the platform: locality-exploiting policies get the
// NUMA-aware workload configuration. The context is checked before the
// simulation starts; a started simulation is interrupted only by
// opt.RunTimeout or cancellation (via the engine's amortized poll). A run
// that fails — panic, deadline, verification — comes back as a *RunError
// after its resources were quarantined; transient failures are retried
// per opt.Retries.
func RunOne(ctx context.Context, spec Spec, pol sched.Policy, opt Options) (*core.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt = opt.fill()
	key := runKey{bench: spec.Name, policy: pol.Name(), p: opt.P, seed: opt.Seed}
	return attemptRun(ctx, key, opt, func(rctx context.Context) (*core.Report, error) {
		return runParallelOnce(rctx, spec, pol, opt, key)
	})
}

// runParallelOnce is one attempt of one parallel measurement: check out
// the run's resources, simulate, verify, settle. The deferred settlement
// is the quarantine mechanism — it runs on the panic unwind path too, so
// by the time contain converts the panic into a RunError, the failed
// attempt's arena and workload instance are already out of circulation.
func runParallelOnce(rctx context.Context, spec Spec, pol sched.Policy, opt Options, key runKey) (*core.Report, error) {
	plan := faultinject.ForRun(spec.Name, pol.Name(), opt.P, opt.Seed, false)
	w, lease := workloads.Checkout(spec, numaAware(pol), opt.FreshInputs)
	arena := arenas.Get().(*core.Arena)
	completed, verified := false, false
	defer func() {
		// A run that never completed its simulation quarantines its arena
		// (mid-unwind engine state is suspect); a completed run returns
		// it, even if verification then failed. The workload instance is
		// stricter: it goes back to the pool only after the whole run —
		// verification included — succeeded.
		if completed {
			arenas.Put(arena)
		}
		if verified {
			lease.Release()
		} else {
			lease.Discard()
		}
	}()
	rt := newRuntime(opt.Topology, opt.P, pol, opt.Seed, opt.RecordDAG, arena, interruptFor(rctx))
	w.Prepare(rt)
	rep := rt.Run(faultinject.Instrument(plan, w.Root()))
	completed = true
	if opt.Verify {
		if err := w.Verify(); err != nil {
			return nil, verifyError(key, fmt.Errorf("harness: %s on %v at P=%d: %w", spec.Name, pol, opt.P, err))
		}
	}
	if plan != nil && plan.Kind == faultinject.FailVerify {
		return nil, verifyError(key, fmt.Errorf("harness: %s on %v at P=%d: injected verification failure", spec.Name, pol, opt.P))
	}
	verified = true
	return rep, nil
}

// verifyError types a verification mismatch as the deterministic,
// non-retryable failure it is.
func verifyError(key runKey, err error) *RunError {
	return &RunError{
		Bench: key.bench, Policy: key.policy, P: key.p, Seed: key.seed, Serial: key.serial,
		Kind: KindVerify, Err: err,
	}
}

// RunSerial measures TS for a spec (serial elision, baseline placement).
//
// TS is memoized per distinct input: a serial run never builds the
// scheduling engine, so its report depends only on the input data and the
// machine — not on the scheduler seed, P, or policy — and every cell of a
// measurement grid shares one serial reference. The memo lives in the
// input's shared cache (single-flight, so parallel -jobs workers never race
// to compute the same reference) and FreshInputs opts out.
func RunSerial(ctx context.Context, spec Spec, opt Options) (*core.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt = opt.fill()
	key := runKey{bench: spec.Name, p: 1, seed: opt.Seed, serial: true}
	// Containment and retry sit INSIDE the memoization compute: a serial
	// reference that panics or times out surfaces as an error, and RefCache
	// never caches errors, so the single-flight entry is not poisoned — the
	// next caller recomputes (pinned by TestRefCacheNotPoisonedByPanic).
	attempt := func() (*core.Report, error) {
		return attemptRun(ctx, key, opt, func(rctx context.Context) (*core.Report, error) {
			return runSerialOnce(rctx, spec, opt, key)
		})
	}
	cache := workloads.SharedCache(spec)
	if opt.FreshInputs || cache == nil {
		return attempt()
	}
	// The memo key pins everything the serial report depends on: the
	// machine shape (String renders the distance matrix too) and whether
	// this call must have verified. Geometry and latency are harness
	// constants.
	memoKey := fmt.Sprintf("harness.ts|verify=%t|%s", opt.Verify, opt.Topology)
	v, err := cache.Do(memoKey, func() (any, error) { return attempt() })
	if err != nil {
		return nil, err
	}
	return v.(*core.Report), nil
}

// runSerialOnce is one attempt of one serial-elision reference run, with
// the same deferred settlement discipline as runParallelOnce. The serial
// elision polls the interrupt hook at its Spawn/Compute edges, so serial
// runs honor RunTimeout too.
func runSerialOnce(rctx context.Context, spec Spec, opt Options, key runKey) (*core.Report, error) {
	plan := faultinject.ForRun(spec.Name, "", 1, opt.Seed, true)
	w, lease := workloads.Checkout(spec, false, opt.FreshInputs)
	arena := arenas.Get().(*core.Arena)
	completed, verified := false, false
	defer func() {
		if completed {
			arenas.Put(arena)
		}
		if verified {
			lease.Release()
		} else {
			lease.Discard()
		}
	}()
	rt := newRuntime(opt.Topology, 1, sched.Cilk, opt.Seed, false, arena, interruptFor(rctx))
	w.Prepare(rt)
	rep := rt.RunSerial(faultinject.Instrument(plan, w.Root()))
	completed = true
	if opt.Verify {
		if err := w.Verify(); err != nil {
			return nil, verifyError(key, fmt.Errorf("harness: %s serial: %w", spec.Name, err))
		}
	}
	if plan != nil && plan.Kind == faultinject.FailVerify {
		return nil, verifyError(key, fmt.Errorf("harness: %s serial: injected verification failure", spec.Name))
	}
	verified = true
	return rep, nil
}

// Measure runs the full Fig. 7/Fig. 8 protocol for one spec: TS, then T1
// and TP on the baseline and on opt.Policy. With opt.Jobs > 1 the
// protocol's independent runs execute concurrently; the row is identical
// either way. A failed run comes back as an error row (Row.Err), not an
// error — see MeasureAll.
func Measure(ctx context.Context, spec Spec, opt Options) (metrics.Row, error) {
	rows, err := MeasureAll(ctx, []Spec{spec}, opt)
	if err != nil {
		return metrics.Row{Name: spec.Name, Input: spec.Input, P: opt.fill().P}, err
	}
	return rows[0], nil
}

// MeasureAll measures every spec. Every (spec, policy, P, seed) run across
// all specs is an independent job executed on an opt.Jobs-worker pool (see
// internal/exec); results are aggregated in spec/platform/seed order, so
// the rows are identical for every Jobs value. Cancelling ctx skips every
// simulation not yet started and returns the context's error; completed
// runs already streamed through opt.OnRun remain valid.
//
// Failure containment: a spec with a failed run (panic, deadline after
// retries, verification mismatch) yields an error row — identity fields
// plus Row.Err, zero measurements — while every other spec's rows are
// unaffected; MeasureAll itself returns an error only for grid-level
// failures (cancellation, journal I/O). With opt.Journal set each
// completed run is durably journaled as it finishes; with opt.Resume set
// journaled runs replay instead of simulating.
func MeasureAll(ctx context.Context, specs []Spec, opt Options) ([]metrics.Row, error) {
	opt = opt.fill()
	runs := make([]specRuns, len(specs))
	pool := exec.NewPool(ctx, opt.Jobs)
	em := newEmitter(opt.OnRun)
	jr := newJournaler(opt)
	idx := 0
	for i := range specs {
		runs[i].submit(ctx, pool, em, jr, &idx, specs[i], opt)
	}
	if err := pool.Wait(ctx); err != nil {
		return nil, err
	}
	rows := make([]metrics.Row, len(specs))
	for i := range specs {
		rows[i] = runs[i].row(specs[i], opt)
	}
	return rows, nil
}

// Fig9Points is the paper's Fig. 9 x-axis.
var Fig9Points = []int{1, 8, 16, 24, 32}

// MeasureScalability produces the Fig. 9 series: opt.Policy's TP over the
// worker counts, tight socket packing (the Pack default). It is the
// single-machine case of MeasureTopologies, which fans every (spec, point,
// seed) run out to an opt.Jobs-worker pool and aggregates in canonical
// order. nil points derive the axis from the machine (SweepPoints), which
// on the paper's topology is exactly Fig9Points.
func MeasureScalability(ctx context.Context, specs []Spec, opt Options, points []int) ([]metrics.Series, error) {
	opt = opt.fill()
	var curve []Spec
	for _, spec := range specs {
		if spec.Fig9Name != "" {
			curve = append(curve, spec)
		}
	}
	machine := Machine{Name: "machine", Top: opt.Topology}
	sweeps, err := MeasureTopologies(ctx, curve, []Machine{machine}, opt, points)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Series, len(curve))
	for i, spec := range curve {
		out[i] = metrics.Series{Name: spec.Fig9Name, P: sweeps[i].P, TP: sweeps[i].TP}
	}
	return out, nil
}

// RunTraced is RunOne with an execution timeline attached: it returns the
// run report plus the recorded per-worker trace (see internal/trace). It
// shares the containment boundary (a panicking run returns a *RunError
// with its resources quarantined, never crashes the caller) but not the
// retry loop: a trace is a one-off diagnostic, and retrying would splice
// two attempts' timelines.
func RunTraced(ctx context.Context, spec Spec, pol sched.Policy, opt Options) (*core.Report, *trace.Timeline, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	opt = opt.fill()
	key := runKey{bench: spec.Name, policy: pol.Name(), p: opt.P, seed: opt.Seed}
	tl := trace.New(opt.P)
	rep, err := contain(ctx, key, func() (*core.Report, error) {
		w, lease := workloads.Checkout(spec, numaAware(pol), opt.FreshInputs)
		arena := arenas.Get().(*core.Arena)
		completed, verified := false, false
		defer func() {
			if completed {
				arenas.Put(arena)
			}
			if verified {
				lease.Release()
			} else {
				lease.Discard()
			}
		}()
		rt := core.NewRuntime(core.Config{
			Sched: sched.Config{
				Topology:  opt.Topology,
				Workers:   opt.P,
				Policy:    pol,
				Seed:      opt.Seed,
				Tracer:    tl,
				Interrupt: interruptFor(ctx),
			},
			Geometry: cache.DefaultGeometry(),
			Latency:  cache.DefaultLatency(),
			Arena:    arena,
		})
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		completed = true
		if opt.Verify {
			if err := w.Verify(); err != nil {
				return nil, verifyError(key, fmt.Errorf("harness: %s traced on %v: %w", spec.Name, pol, err))
			}
		}
		verified = true
		return rep, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, tl, nil
}
