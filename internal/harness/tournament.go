package harness

// The policy tournament: every given policy runs the same benchmark x
// topology grid and the policies are ranked by metrics.NewTournament's
// normalized-geomean score. Each cell runs at the machine's full core
// count (the canonical whole-machine comparison; a fixed P would bias the
// grid toward machines it happens to fit) and is averaged over opt.Seeds
// scheduler seeds, exactly like MeasureTopologies. Runs go through the
// optional ResultCache — the same journal-keyed store the sweep service
// executes through — so a repeated tournament over a warm store simulates
// nothing.

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Tournament runs pols over the specs x machines grid and ranks them.
// cache may be nil (every cell simulates). Any cell's failure — including
// a contained *RunError — aborts the tournament: a ranking with missing
// cells would silently compare incomparables. Cancelling ctx skips every
// simulation not yet started and returns the context's error.
func Tournament(ctx context.Context, specs []Spec, machines []Machine, pols []sched.Policy, cache ResultCache, opt Options) (metrics.Tournament, error) {
	opt = opt.fill()
	if len(pols) == 0 {
		return metrics.Tournament{}, fmt.Errorf("harness: tournament needs at least one policy")
	}
	if len(specs) == 0 {
		return metrics.Tournament{}, fmt.Errorf("harness: tournament needs at least one benchmark")
	}
	if len(machines) == 0 {
		return metrics.Tournament{}, fmt.Errorf("harness: tournament needs at least one machine")
	}
	seen := make(map[string]bool, len(pols))
	for _, pol := range pols {
		if seen[pol.Name()] {
			return metrics.Tournament{}, fmt.Errorf("harness: tournament policy %q named twice", pol.Name())
		}
		seen[pol.Name()] = true
	}
	// times[k][sd]: cell k = ((pol * specs) + spec) * machines + machine.
	cellOf := func(pi, si, mi int) int { return (pi*len(specs)+si)*len(machines) + mi }
	times := make([][]int64, len(pols)*len(specs)*len(machines))
	pool := exec.NewPool(ctx, opt.Jobs)
	em := newEmitter(opt.OnRun)
	idx := 0
	for pi, pol := range pols {
		for si, spec := range specs {
			for mi, mach := range machines {
				cell := &times[cellOf(pi, si, mi)]
				*cell = make([]int64, opt.Seeds)
				for sd := 0; sd < opt.Seeds; sd++ {
					pol, spec, mach, slot := pol, spec, mach, &(*cell)[sd]
					o := opt
					o.Topology = mach.Top
					o.P = mach.Top.Cores()
					o.Seed = opt.Seed + int64(sd)
					pool.Submit(ctx, idx, func() error {
						res, _, err := ExecuteThrough(ctx, cache, spec, pol, o, false)
						if err != nil {
							return err
						}
						*slot = res.Time
						em.emit(RunMeta{Bench: spec.Name, Policy: pol.Name(),
							P: o.P, Seed: o.Seed, Time: res.Time})
						return nil
					})
					idx++
				}
			}
		}
	}
	if err := pool.Wait(ctx); err != nil {
		return metrics.Tournament{}, err
	}
	cells := make([]metrics.TournamentCell, 0, len(times))
	for pi, pol := range pols {
		for si, spec := range specs {
			for mi, mach := range machines {
				var total int64
				for _, t := range times[cellOf(pi, si, mi)] {
					total += t
				}
				cells = append(cells, metrics.TournamentCell{
					Policy: pol.Name(), Bench: spec.Name, Topology: mach.Name,
					TP: total / int64(opt.Seeds),
				})
			}
		}
	}
	return metrics.NewTournament(cells)
}

// RegisteredPolicies resolves every registered policy, in registry (name)
// order — the tournament's default contestant list.
func RegisteredPolicies() []sched.Policy {
	names := sched.Names()
	out := make([]sched.Policy, len(names))
	for i, n := range names {
		pol, err := sched.Lookup(n)
		if err != nil {
			// Names and Lookup read the same registry; a miss here is a
			// registry bug, not a caller error.
			panic(err)
		}
		out[i] = pol
	}
	return out
}
