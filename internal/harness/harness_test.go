package harness

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/topology"
)

// specByName resolves one benchmark of the registered small-scale suite.
func specByName(t testing.TB, name string) Spec {
	t.Helper()
	for _, s := range Specs(ScaleSmall) {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no spec named %q", name)
	return Spec{}
}

func TestSpecsInventory(t *testing.T) {
	for _, scale := range []Scale{ScaleSmall, ScaleFull} {
		specs := Specs(scale)
		// The registered suite: the paper's nine plus the five Cilk-suite
		// additions (fib, nqueens, fft, lu, rectmul).
		if len(specs) != 14 {
			t.Fatalf("scale %d: %d specs, want 14", scale, len(specs))
		}
		want := map[string]bool{
			"cg": true, "cilksort": true, "heat": true, "hull1": true, "hull2": true,
			"matmul": true, "matmul-z": true, "strassen": true, "strassen-z": true,
			"fib": true, "nqueens": true, "fft": true, "lu": true, "rectmul": true,
		}
		fig3 := 0
		fig9 := 0
		for _, s := range specs {
			if !want[s.Name] {
				t.Errorf("unexpected spec %q", s.Name)
			}
			delete(want, s.Name)
			if s.InFig3 {
				fig3++
			}
			if s.Fig9Name != "" {
				fig9++
			}
			if got := s.Make(false).Name(); got != s.Name {
				t.Errorf("spec %q builds workload named %q", s.Name, got)
			}
		}
		if len(want) != 0 {
			t.Errorf("missing specs: %v", want)
		}
		// The paper's seven Fig. 3 benchmarks plus the five additions.
		if fig3 != 12 {
			t.Errorf("%d Fig. 3 benchmarks, want 12", fig3)
		}
		// The paper's seven Fig. 9 curves plus the five additions.
		if fig9 != 12 {
			t.Errorf("%d Fig. 9 series, want 12", fig9)
		}
	}
}

func TestRunOneAndSerial(t *testing.T) {
	spec := specByName(t, "cilksort")
	ts, err := RunSerial(t.Context(), spec, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOne(t.Context(), spec, sched.NUMAWS, Options{P: 16, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 || ts.Time <= 0 {
		t.Error("non-positive times")
	}
	if rep.Time >= ts.Time {
		t.Errorf("P=16 time %d not faster than serial %d", rep.Time, ts.Time)
	}
	if rep.Sched == nil {
		t.Error("parallel run missing scheduler stats")
	}
}

func TestMeasureProducesConsistentRow(t *testing.T) {
	spec := specByName(t, "heat")
	row, err := Measure(t.Context(), spec, Options{P: 16, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "heat" || row.P != 16 {
		t.Errorf("row identity wrong: %+v", row)
	}
	if row.TS <= 0 || row.Cilk.T1 <= 0 || row.NUMAWS.T1 <= 0 {
		t.Error("missing measurements")
	}
	// Work efficiency: T1 within a few percent of TS on both platforms.
	for _, pr := range []struct {
		name string
		t1   int64
	}{{"cilk", row.Cilk.T1}, {"numa-ws", row.NUMAWS.T1}} {
		ratio := float64(pr.t1) / float64(row.TS)
		if ratio < 0.99 || ratio > 1.10 {
			t.Errorf("%s T1/TS = %.3f, want about 1", pr.name, ratio)
		}
	}
	// TP must beat T1 at P=16.
	if row.Cilk.TP >= row.Cilk.T1 || row.NUMAWS.TP >= row.NUMAWS.T1 {
		t.Error("no parallel speedup at P=16")
	}
	// Work inflation should not be below 1 (parallel work cannot shrink).
	if row.Cilk.WorkInflation() < 0.99 || row.NUMAWS.WorkInflation() < 0.99 {
		t.Errorf("impossible inflation: cilk %.2f, nws %.2f",
			row.Cilk.WorkInflation(), row.NUMAWS.WorkInflation())
	}
}

func TestSeedAveraging(t *testing.T) {
	spec := specByName(t, "heat")
	one, err := Measure(t.Context(), spec, Options{P: 8, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Measure(t.Context(), spec, Options{P: 8, Seeds: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Averaged TP should be in the same ballpark as a single seed (within
	// 50%); it mainly must not be zero or wildly off.
	ratio := float64(avg.NUMAWS.TP) / float64(one.NUMAWS.TP)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("averaged TP %d vs single-seed %d: ratio %.2f", avg.NUMAWS.TP, one.NUMAWS.TP, ratio)
	}
}

func TestMeasureScalabilityShape(t *testing.T) {
	specs := Specs(ScaleSmall)
	// Only cilksort (the small-scale heat has just one band per worker at
	// P=16, which makes its curve noisy), to keep the test fast.
	var sort []Spec
	for _, s := range specs {
		if s.Name == "cilksort" {
			sort = append(sort, s)
		}
	}
	series, err := MeasureScalability(t.Context(), sort, Options{}, []int{1, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("%d series, want 1", len(series))
	}
	sp := series[0].Speedup()
	if sp[0] != 1 {
		t.Errorf("speedup at P=1 = %f, want 1", sp[0])
	}
	if sp[1] <= 1 || sp[2] <= sp[1]*0.8 {
		t.Errorf("speedup not increasing sensibly: %v", sp)
	}
}

func TestFig9PointsMatchPaper(t *testing.T) {
	want := []int{1, 8, 16, 24, 32}
	if len(Fig9Points) != len(want) {
		t.Fatalf("Fig9Points = %v, want %v", Fig9Points, want)
	}
	for i := range want {
		if Fig9Points[i] != want[i] {
			t.Fatalf("Fig9Points = %v, want %v", Fig9Points, want)
		}
	}
}

func TestOptionsCustomTopology(t *testing.T) {
	spec := specByName(t, "heat")
	rep, err := RunOne(t.Context(), spec, sched.NUMAWS, Options{
		Topology: topology.TwoSocket(4),
		P:        8,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 8 {
		t.Errorf("workers = %d, want 8", rep.Workers)
	}
}

func TestDeterministicMeasurement(t *testing.T) {
	spec := specByName(t, "cg")
	a, err := RunOne(t.Context(), spec, sched.NUMAWS, Options{P: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(t.Context(), spec, sched.NUMAWS, Options{P: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Errorf("same-seed measurements differ: %d vs %d", a.Time, b.Time)
	}
}
