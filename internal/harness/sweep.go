package harness

// The topology-sweep experiment surface: the Fig. 9 scalability protocol
// run across a grid of machine shapes instead of only the paper's 4x8
// machine. Every (machine, spec, point, seed) run is an independent
// simulation fanned out over the internal/exec pool, aggregated in
// canonical order so output is byte-identical for every Jobs value.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Machine names one topology of a sweep grid.
type Machine struct {
	Name string
	Top  *topology.Topology
}

// Machines resolves topology specs (preset names or SxC shapes; see
// topology.Parse) into sweep machines, rejecting unknown or duplicate names.
func Machines(specs []string) ([]Machine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("harness: no topologies given")
	}
	seen := make(map[string]bool, len(specs))
	out := make([]Machine, 0, len(specs))
	for _, spec := range specs {
		if seen[spec] {
			return nil, fmt.Errorf("harness: duplicate topology %q", spec)
		}
		seen[spec] = true
		top, err := topology.Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, Machine{Name: spec, Top: top})
	}
	return out, nil
}

// SweepPoints derives a machine's worker-count axis the way Fig. 9 chose the
// paper machine's {1, 8, 16, 24, 32}: one worker, then the quarter points of
// the whole machine. Machines too small for distinct quarters degenerate
// gracefully (duplicates collapse).
func SweepPoints(top *topology.Topology) []int {
	c := top.Cores()
	pts := []int{1}
	for _, q := range []int{c / 4, c / 2, 3 * c / 4, c} {
		if q > pts[len(pts)-1] {
			pts = append(pts, q)
		}
	}
	return pts
}

// machinePoints fixes the point axis for one machine: the explicit points
// clipped to the machine (deduplicated, ascending, 1 always present so
// Speedup has its T1 base), or SweepPoints when none were given. Clipping
// lets one -points list serve a mixed-size grid, but a machine none of the
// requested points fit is an error, not a silent one-point curve.
func machinePoints(name string, top *topology.Topology, points []int) ([]int, error) {
	if len(points) == 0 {
		return SweepPoints(top), nil
	}
	set := map[int]bool{1: true}
	fit := false
	for _, p := range points {
		if p < 1 {
			return nil, fmt.Errorf("harness: sweep point %d must be at least 1", p)
		}
		if p <= top.Cores() {
			set[p] = true
			fit = true
		}
	}
	if !fit {
		return nil, fmt.Errorf("harness: no sweep point in %v fits topology %s (%d cores)",
			points, name, top.Cores())
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out, nil
}

// MeasureTopologies runs the scalability protocol for every spec on every
// machine under opt.Policy: TP at each worker point, averaged over
// opt.Seeds scheduler seeds. points nil derives each machine's axis with
// SweepPoints; explicit points are clipped to each machine's core count.
// Results group by machine in the given order, one sweep per (machine,
// spec). Cancelling ctx skips every simulation not yet started and returns
// the context's error; completed runs already streamed through opt.OnRun
// remain valid.
func MeasureTopologies(ctx context.Context, specs []Spec, machines []Machine, opt Options, points []int) ([]metrics.Sweep, error) {
	opt = opt.fill()
	if len(machines) == 0 {
		return nil, fmt.Errorf("harness: no machines to sweep")
	}
	axes := make([][]int, len(machines))
	for m, mach := range machines {
		axis, err := machinePoints(mach.Name, mach.Top, points)
		if err != nil {
			return nil, err
		}
		axes[m] = axis
	}
	// times[m][i][j][k]: machine m, spec i, point j, seed k.
	times := make([][][][]int64, len(machines))
	pool := exec.NewPool(ctx, opt.Jobs)
	em := newEmitter(opt.OnRun)
	idx := 0
	for m, mach := range machines {
		times[m] = make([][][]int64, len(specs))
		for i, spec := range specs {
			times[m][i] = make([][]int64, len(axes[m]))
			for j, p := range axes[m] {
				times[m][i][j] = make([]int64, opt.Seeds)
				for sd := 0; sd < opt.Seeds; sd++ {
					spec, slot := spec, &times[m][i][j][sd]
					o := opt
					o.Topology = mach.Top
					o.P = p
					o.Seed = opt.Seed + int64(sd)
					pool.Submit(ctx, idx, func() error {
						rep, err := RunOne(ctx, spec, o.Policy, o)
						if err != nil {
							return err
						}
						*slot = rep.Time
						em.emit(RunMeta{Bench: spec.Name, Policy: o.Policy.Name(),
							P: o.P, Seed: o.Seed, Time: rep.Time})
						return nil
					})
					idx++
				}
			}
		}
	}
	if err := pool.Wait(ctx); err != nil {
		return nil, err
	}
	out := make([]metrics.Sweep, 0, len(machines)*len(specs))
	for m, mach := range machines {
		for i, spec := range specs {
			s := metrics.Sweep{
				Bench:    spec.Name,
				Topology: mach.Name,
				Sockets:  mach.Top.Sockets(),
				Cores:    mach.Top.Cores(),
				P:        axes[m],
			}
			for j := range axes[m] {
				var total int64
				for _, t := range times[m][i][j] {
					total += t
				}
				s.TP = append(s.TP, total/int64(opt.Seeds))
			}
			out = append(out, s)
		}
	}
	return out, nil
}
