package harness

// This file is the sweep service's execute-through-cache seam
// (internal/server): single runs addressed by their full journal key,
// simulated only when a persistent result cache does not already hold
// them. The key recipe is shared with the grid journaler in parallel.go,
// so a service store and a -journal file are mutually intelligible — a
// record written by either is a hit for both.

import (
	"context"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/sched"
)

// ResultCache is the persistent lookup the service executes through;
// internal/store implements it. Get reports a prior completion; Put
// durably records a new one. A Put error is grid-level — a cache that
// cannot record makes every later "cached" reply untrustworthy, so the
// caller stops rather than serving through it.
type ResultCache interface {
	Get(journal.Key) (journal.Result, bool)
	Put(journal.Key, journal.Result) error
}

// KeyFor is the content address of one run: the exact key the grid
// journaler writes (journaler.key), built from the run's spec, policy and
// options. Serial runs pin Policy "serial" and P 1 — the serial elision
// has no scheduler, so those axes are normalized, not echoed; pol is
// ignored for them and may be nil.
func KeyFor(spec Spec, pol sched.Policy, opt Options, serial bool) journal.Key {
	opt = opt.fill()
	policy, p := "serial", 1
	if !serial {
		policy, p = pol.Name(), opt.P
	}
	return journal.Key{
		Gen: spec.Generation(), Bench: spec.Name, Input: spec.Input,
		Scale: int(spec.SpecScale()), Topology: topologyKey(opt.Topology),
		Policy: policy, P: p, Seed: opt.Seed,
		Serial: serial, Verify: opt.Verify,
	}
}

// Execute measures one run — the serial elision when serial, one parallel
// simulation otherwise — and reduces the report to its replayable totals,
// the same four numbers the journal persists.
func Execute(ctx context.Context, spec Spec, pol sched.Policy, opt Options, serial bool) (journal.Result, error) {
	var rep *core.Report
	var err error
	if serial {
		rep, err = RunSerial(ctx, spec, opt)
	} else {
		rep, err = RunOne(ctx, spec, pol, opt)
	}
	if err != nil {
		return journal.Result{}, err
	}
	rr := resultOf(rep)
	return journal.Result{Time: rr.time, Work: rr.work, Sched: rr.sched, Idle: rr.idle}, nil
}

// ExecuteThrough is Execute behind a ResultCache: a key the cache holds
// returns its recorded totals without simulating (hit true); a miss
// simulates, records the result durably, and returns it. Failed runs
// (contained *RunError, cancellation) are never cached — like the
// journal, the cache holds only successes.
func ExecuteThrough(ctx context.Context, c ResultCache, spec Spec, pol sched.Policy, opt Options, serial bool) (journal.Result, bool, error) {
	opt = opt.fill()
	if c == nil {
		res, err := Execute(ctx, spec, pol, opt, serial)
		return res, false, err
	}
	key := KeyFor(spec, pol, opt, serial)
	if res, ok := c.Get(key); ok {
		return res, true, nil
	}
	res, err := Execute(ctx, spec, pol, opt, serial)
	if err != nil {
		return journal.Result{}, false, err
	}
	if err := c.Put(key, res); err != nil {
		return journal.Result{}, false, err
	}
	return res, false, nil
}
