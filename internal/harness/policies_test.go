package harness

import (
	"testing"

	"repro/internal/sched"
)

// newPolicies are the literature policies PR 10 added; the suite-wide
// verify and determinism guarantees the built-ins enjoy must hold for them
// through the same shared machinery.
func newPolicies(t *testing.T) []sched.Policy {
	t.Helper()
	var pols []sched.Policy
	for _, name := range []string{"steal-half", "socket-first", "adaptive-bias"} {
		pol, err := sched.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pols = append(pols, pol)
	}
	return pols
}

// TestNewPoliciesVerifyAcrossSuite runs every registered benchmark at
// small scale under each new policy with result verification on: the
// shared deque discipline, promotion and sync handling must produce
// correct results no matter how victims are chosen or how much is stolen.
func TestNewPoliciesVerifyAcrossSuite(t *testing.T) {
	specs := Specs(ScaleSmall)
	if len(specs) < 14 {
		t.Fatalf("suite has %d benchmarks, want at least the built-in 14", len(specs))
	}
	for _, pol := range newPolicies(t) {
		for _, spec := range specs {
			rep, err := RunOne(t.Context(), spec, pol, Options{P: 8, Verify: true})
			if err != nil {
				t.Fatalf("%s under %s: %v", spec.Name, pol.Name(), err)
			}
			if rep.Time <= 0 {
				t.Errorf("%s under %s: non-positive makespan %d", spec.Name, pol.Name(), rep.Time)
			}
		}
	}
}

// TestNewPoliciesDeterministicPerSeed pins byte-identical repeat runs: the
// full report (makespan, per-term totals, steal counters) of a repeated
// (spec, policy, P, seed) run must match exactly.
func TestNewPoliciesDeterministicPerSeed(t *testing.T) {
	spec := specByName(t, "cg")
	for _, pol := range newPolicies(t) {
		for _, seed := range []int64{1, 9} {
			a, err := RunOne(t.Context(), spec, pol, Options{P: 16, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunOne(t.Context(), spec, pol, Options{P: 16, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if a.Time != b.Time || a.Sched.WorkTotal() != b.Sched.WorkTotal() ||
				a.Sched.Steals != b.Sched.Steals || a.Sched.Events != b.Sched.Events {
				t.Errorf("%s seed %d: repeat runs diverged: %+v vs %+v",
					pol.Name(), seed, a.Sched, b.Sched)
			}
			if a.Sched == nil {
				t.Fatalf("%s seed %d: missing scheduler stats", pol.Name(), seed)
			}
		}
	}
}

// TestNewPoliciesDistinctBehavior sanity-checks that the three policies
// actually schedule differently from the built-ins on a NUMA-visible
// benchmark (same seed, same machine): identical event streams would mean
// a hook is dead.
func TestNewPoliciesDistinctBehavior(t *testing.T) {
	spec := specByName(t, "heat")
	base, err := RunOne(t.Context(), spec, sched.Cilk, Options{P: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range newPolicies(t) {
		rep, err := RunOne(t.Context(), spec, pol, Options{P: 16, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sched.Events == base.Sched.Events && rep.Time == base.Time &&
			rep.Sched.Steals == base.Sched.Steals {
			t.Errorf("%s run indistinguishable from cilk (T=%d, steals=%d)",
				pol.Name(), rep.Time, rep.Sched.Steals)
		}
	}
}
