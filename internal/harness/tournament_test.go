package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/sched"
)

// TestTournamentRanksDeterministically runs the same small contest twice
// and checks its shape: seeds averaged per cell, every cell at each
// machine's full core count, and an identical ranking on repetition.
func TestTournamentRanksDeterministically(t *testing.T) {
	specs := []Spec{specByName(t, "fib"), specByName(t, "cilksort")}
	machines, err := Machines([]string{"2x4", "1x2"})
	if err != nil {
		t.Fatal(err)
	}
	pols := []sched.Policy{sched.Cilk, sched.NUMAWS}
	opt := Options{Seeds: 2, Jobs: 4}

	var ps []int
	opt.OnRun = func(m RunMeta) { ps = append(ps, m.P) }
	first, err := Tournament(t.Context(), specs, machines, pols, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2*2*2*2 {
		t.Fatalf("emitted %d runs, want 16 (2 pols x 2 benches x 2 machines x 2 seeds)", len(ps))
	}
	for _, p := range ps {
		if p != 8 && p != 2 {
			t.Errorf("run at P=%d; every cell must use a machine's full core count", p)
		}
	}
	if !reflect.DeepEqual(first.Benches, []string{"fib", "cilksort"}) ||
		!reflect.DeepEqual(first.Topologies, []string{"2x4", "1x2"}) {
		t.Errorf("axes: %v / %v", first.Benches, first.Topologies)
	}
	if len(first.Entries) != 2 || first.Entries[0].Rank != 1 || len(first.Entries[0].Cells) != 4 {
		t.Fatalf("entries: %+v", first.Entries)
	}

	opt.OnRun = nil
	second, err := Tournament(t.Context(), specs, machines, pols, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("tournament not deterministic:\n first  %+v\n second %+v", first, second)
	}
}

// TestTournamentExecutesThroughCache pins the store seam: a warm cache
// answers a repeated tournament without a single simulation, with an
// identical ranking.
func TestTournamentExecutesThroughCache(t *testing.T) {
	specs := []Spec{specByName(t, "fib")}
	machines, err := Machines([]string{"2x4"})
	if err != nil {
		t.Fatal(err)
	}
	pols := []sched.Policy{sched.Cilk, sched.NUMAWS}
	c := newMemCache()

	cold, err := Tournament(t.Context(), specs, machines, pols, c, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.puts != 2 {
		t.Fatalf("cold tournament stored %d results, want 2", c.puts)
	}

	// Any simulation now panics; only the cache can answer.
	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()
	warm, err := Tournament(t.Context(), specs, machines, pols, c, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm ranking diverged:\n cold %+v\n warm %+v", cold, warm)
	}
}

// TestTournamentValidates pins the argument errors and that a contained
// run failure aborts the whole tournament rather than ranking a grid with
// holes.
func TestTournamentValidates(t *testing.T) {
	specs := []Spec{specByName(t, "fib")}
	machines, err := Machines([]string{"2x4"})
	if err != nil {
		t.Fatal(err)
	}
	pols := []sched.Policy{sched.Cilk}

	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"no policies", func() error {
			_, err := Tournament(t.Context(), specs, machines, nil, nil, Options{})
			return err
		}, "at least one policy"},
		{"no benchmarks", func() error {
			_, err := Tournament(t.Context(), nil, machines, pols, nil, Options{})
			return err
		}, "at least one benchmark"},
		{"no machines", func() error {
			_, err := Tournament(t.Context(), specs, nil, pols, nil, Options{})
			return err
		}, "at least one machine"},
		{"duplicate policy", func() error {
			_, err := Tournament(t.Context(), specs, machines,
				[]sched.Policy{sched.Cilk, sched.Cilk}, nil, Options{})
			return err
		}, "named twice"},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()
	if _, err := Tournament(t.Context(), specs, machines, pols, nil, Options{Jobs: 1}); err == nil {
		t.Error("tournament over a failing cell succeeded; a ranking with holes compares incomparables")
	}
}

// TestRegisteredPolicies checks the default contestant list resolves the
// whole registry in name order.
func TestRegisteredPolicies(t *testing.T) {
	pols := RegisteredPolicies()
	names := sched.Names()
	if len(pols) != len(names) {
		t.Fatalf("%d policies for %d names", len(pols), len(names))
	}
	for i, p := range pols {
		if p.Name() != names[i] {
			t.Errorf("policy %d is %q, want %q", i, p.Name(), names[i])
		}
	}
}
