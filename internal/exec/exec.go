// Package exec runs the harness's independent simulation jobs on a bounded
// worker pool.
//
// Every experiment the harness regenerates — each (spec, policy, P, seed)
// measurement — is a fully independent simulation: it builds its own
// workload, allocator and runtime, and shares no mutable state with any
// other run. That makes the experiment sweep embarrassingly parallel, and
// this package is the one place that exploits it. Callers pre-allocate a
// result slot per job, submit one closure per job, and aggregate the slots
// in canonical (serial) order after Wait, so parallel output is
// byte-identical to serial output.
package exec

import (
	"runtime"
	"sync"
)

// DefaultJobs is the default worker count for parallel experiment
// execution: one worker per available CPU.
func DefaultJobs() int { return runtime.NumCPU() }

// job pairs a submitted function with its position in the caller's
// canonical order.
type job struct {
	idx int
	fn  func() error
}

// Pool executes submitted jobs on a fixed number of worker goroutines.
//
// A pool with one worker degenerates to a serial loop: jobs run inline on
// Submit, in submission order, and after the first failure subsequent jobs
// are skipped — exactly the control flow of the serial code the pool
// replaces. With more workers, jobs already started run to completion, but
// once a failure is recorded workers skip jobs they have not started yet:
// every caller discards all results on error, so finishing the sweep after
// a failure would only burn cycles. Wait reports the failure with the
// lowest submission index among the jobs that ran.
type Pool struct {
	workers int
	ch      chan job
	wg      sync.WaitGroup

	mu     sync.Mutex
	err    error
	errIdx int
}

// NewPool starts a pool with the given number of workers; counts below one
// are treated as one.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, errIdx: -1}
	if workers > 1 {
		// A small buffer keeps workers fed without letting the submitter
		// race arbitrarily far ahead of execution.
		p.ch = make(chan job, 2*workers)
		for i := 0; i < workers; i++ {
			p.wg.Add(1)
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.ch {
		if p.failed() {
			continue
		}
		if err := j.fn(); err != nil {
			p.record(j.idx, err)
		}
	}
}

func (p *Pool) failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil
}

func (p *Pool) record(idx int, err error) {
	p.mu.Lock()
	if p.err == nil || idx < p.errIdx {
		p.err, p.errIdx = err, idx
	}
	p.mu.Unlock()
}

// Submit schedules one job. idx is the job's position in the caller's
// canonical serial order; it determines which error Wait reports when
// several jobs fail. Submit blocks when all workers are busy and the
// buffer is full (backpressure); it must not be called after Wait, nor
// from inside a job.
func (p *Pool) Submit(idx int, fn func() error) {
	if p.workers == 1 {
		if p.err != nil {
			return
		}
		if err := fn(); err != nil {
			p.record(idx, err)
		}
		return
	}
	p.ch <- job{idx: idx, fn: fn}
}

// Wait blocks until every submitted job has finished and returns the
// lowest-indexed error, if any. The pool cannot be reused after Wait.
func (p *Pool) Wait() error {
	if p.workers > 1 {
		close(p.ch)
		p.wg.Wait()
	}
	return p.err
}

// ForEach runs fn(0) … fn(n-1) on a pool with the given worker count and
// returns the lowest-indexed error.
func ForEach(workers, n int, fn func(i int) error) error {
	p := NewPool(workers)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(i, func() error { return fn(i) })
	}
	return p.Wait()
}
