// Package exec runs the harness's independent simulation jobs on a bounded,
// cancellable worker pool.
//
// Every experiment the harness regenerates — each (spec, policy, P, seed)
// measurement — is a fully independent simulation: it builds its own
// workload, allocator and runtime, and shares no mutable state with any
// other run. That makes the experiment sweep embarrassingly parallel, and
// this package is the one place that exploits it. Callers pre-allocate a
// result slot per job, submit one closure per job, and aggregate the slots
// in canonical (serial) order after Wait, so parallel output is
// byte-identical to serial output.
//
// Pools are context-aware: once the pool's context is cancelled, jobs not
// yet started are skipped (jobs already running finish — simulations do not
// observe the context), the submission side drains without blocking, and
// Wait reports the context's error. That is what makes a multi-hour sweep
// interruptible at per-simulation granularity without leaking goroutines.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
)

// DefaultJobs is the default worker count for parallel experiment
// execution: one worker per available CPU.
func DefaultJobs() int { return runtime.NumCPU() }

// job pairs a submitted function with its position in the caller's
// canonical order.
type job struct {
	idx int
	fn  func() error
}

// Pool executes submitted jobs on a fixed number of worker goroutines.
//
// A pool with one worker degenerates to a serial loop: jobs run inline on
// Submit, in submission order, and after the first failure (or once ctx is
// done) subsequent jobs are skipped — exactly the control flow of the serial
// code the pool replaces. With more workers, jobs already started run to
// completion, but once a failure is recorded or the context is cancelled,
// workers skip jobs they have not started yet: every caller discards all
// results on error, so finishing the sweep after a failure would only burn
// cycles.
//
// Multi-error contract: every failure that does run to completion is
// retained. Wait returns a single failure unwrapped, and aggregates several
// with errors.Join in ascending submission-index order — deterministic no
// matter which workers observed the failures, and transparent to errors.Is/
// errors.As callers either way. With no job failure, Wait returns the
// context's error. Note that skip-after-first-error makes "several failures"
// a race-dependent set (jobs in flight when the first failure lands may
// still fail); only the lowest-indexed failure is guaranteed present, which
// is why callers that need one canonical error inspect Join's first operand.
type Pool struct {
	workers int
	ch      chan job
	wg      sync.WaitGroup

	mu   sync.Mutex
	errs []indexedErr
}

// indexedErr pairs a job failure with the job's submission index, so Wait
// can order aggregated failures canonically.
type indexedErr struct {
	idx int
	err error
}

// NewPool starts a pool with the given number of workers; counts below one
// are treated as one. ctx bounds every job not yet started: cancelling it
// makes the pool skip the rest of the sweep. The context is call-scoped —
// handed to each worker goroutine, never stored — and the same context
// must flow through Submit and Wait. A nil ctx means Background.
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		// A small buffer keeps workers fed without letting the submitter
		// race arbitrarily far ahead of execution.
		p.ch = make(chan job, 2*workers)
		for i := 0; i < workers; i++ {
			p.wg.Add(1)
			go p.worker(ctx)
		}
	}
	return p
}

func (p *Pool) worker(ctx context.Context) {
	defer p.wg.Done()
	for j := range p.ch {
		if p.skip(ctx) {
			continue
		}
		if err := j.fn(); err != nil {
			p.record(j.idx, err)
		}
	}
}

// skip reports whether jobs not yet started should be dropped: a previous
// job failed, or the context is done.
func (p *Pool) skip(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.errs) > 0
}

func (p *Pool) record(idx int, err error) {
	p.mu.Lock()
	p.errs = append(p.errs, indexedErr{idx: idx, err: err})
	p.mu.Unlock()
}

// Submit schedules one job. ctx is the same context the pool was started
// with (a serial pool consults it inline; a parallel pool's workers hold
// their own reference). idx is the job's position in the caller's
// canonical serial order; it orders the failures Wait aggregates when
// several jobs fail. Submit blocks when all workers are busy and the
// buffer is full (backpressure; cancellation unblocks it, because workers
// keep draining the channel); it must not be called after Wait, nor from
// inside a job.
func (p *Pool) Submit(ctx context.Context, idx int, fn func() error) {
	if p.workers == 1 {
		if ctx == nil {
			ctx = context.Background()
		}
		if p.skip(ctx) {
			return
		}
		if err := fn(); err != nil {
			p.record(idx, err)
		}
		return
	}
	p.ch <- job{idx: idx, fn: fn}
}

// Wait blocks until every submitted job has finished or been skipped and
// returns the pool's failures per the multi-error contract above: one
// failure unwrapped, several joined in submission-index order, else the
// context's error (so a cancelled sweep surfaces ctx.Err() to its caller).
// The pool cannot be reused after Wait. Jobs already running when the
// context is cancelled run to completion before Wait returns — the pool
// never abandons a goroutine.
func (p *Pool) Wait(ctx context.Context) error {
	if p.workers > 1 {
		close(p.ch)
		p.wg.Wait()
	}
	switch len(p.errs) {
	case 0:
	case 1:
		return p.errs[0].err
	default:
		sort.Slice(p.errs, func(i, j int) bool { return p.errs[i].idx < p.errs[j].idx })
		joined := make([]error, len(p.errs))
		for i, e := range p.errs {
			joined[i] = e.err
		}
		return errors.Join(joined...)
	}
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForEach runs fn(0) … fn(n-1) on a pool with the given worker count and
// returns Wait's aggregate error (or ctx's error on cancellation).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p := NewPool(ctx, workers)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(ctx, i, func() error { return fn(i) })
	}
	return p.Wait(ctx)
}
