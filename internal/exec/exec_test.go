package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCompletesAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		const n = 100
		done := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&done[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, d := range done {
			if d != 1 {
				t.Fatalf("workers=%d: job %d ran %d times, want 1", workers, i, d)
			}
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	err := ForEach(context.Background(), workers, 64, func(int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent jobs, want <= %d", m, workers)
	}
}

func TestWaitReportsErrors(t *testing.T) {
	errs := map[int]error{
		7:  errors.New("err7"),
		3:  errors.New("err3"),
		50: errors.New("err50"),
	}

	// Serial pools short-circuit: job 3 fails first and 7/50 never run,
	// so the single failure comes back unwrapped.
	err := ForEach(context.Background(), 1, 64, func(i int) error { return errs[i] })
	if !errors.Is(err, errs[3]) {
		t.Errorf("workers=1: got %v, want err3", err)
	}
	if err.Error() != "err3" {
		t.Errorf("workers=1: single failure should be unwrapped, got %q", err.Error())
	}

	// Parallel pools retain every failure that ran (the skip-after-failure
	// optimization makes the set race-dependent, but the lowest index is
	// always among them) and join them in index order — never a fabricated
	// error.
	err = ForEach(context.Background(), 4, 64, func(i int) error { return errs[i] })
	if err == nil {
		t.Fatal("workers=4: got nil, want at least one injected error")
	}
	if !errors.Is(err, errs[3]) && !errors.Is(err, errs[7]) && !errors.Is(err, errs[50]) {
		t.Errorf("workers=4: got %v, want (a join of) the injected errors", err)
	}

	// With exactly one failing job, the reported error is deterministic
	// and unwrapped regardless of worker count.
	for _, workers := range []int{2, 8} {
		err := ForEach(context.Background(), workers, 64, func(i int) error {
			if i == 7 {
				return errs[7]
			}
			return nil
		})
		if err == nil || err.Error() != "err7" {
			t.Errorf("workers=%d: got %v, want err7", workers, err)
		}
	}
}

func TestWaitJoinsMultipleErrorsInIndexOrder(t *testing.T) {
	// Hold all four failing jobs at a barrier until each has started, so
	// every one of them runs (none is skipped) no matter how the workers
	// race — then Wait must retain all four, joined in ascending
	// submission-index order regardless of completion order.
	const workers = 4
	ctx := context.Background()
	p := NewPool(ctx, workers)
	var started sync.WaitGroup
	started.Add(workers)
	errAt := make(map[int]error, workers)
	for _, idx := range []int{9, 2, 31, 17} {
		errAt[idx] = fmt.Errorf("job %d failed", idx)
	}
	for idx, e := range errAt {
		idx, e := idx, e
		p.Submit(ctx, idx, func() error {
			started.Done()
			started.Wait()
			return e
		})
	}
	err := p.Wait(ctx)
	if err == nil {
		t.Fatal("Wait = nil, want joined errors")
	}
	for _, e := range errAt {
		if !errors.Is(err, e) {
			t.Errorf("errors.Is(err, %v) = false; every completed failure must be retained", e)
		}
	}
	want := "job 2 failed\njob 9 failed\njob 17 failed\njob 31 failed"
	if err.Error() != want {
		t.Errorf("joined error not in submission-index order:\ngot  %q\nwant %q", err.Error(), want)
	}
}

func TestSubmitAfterCancelSkipsJob(t *testing.T) {
	// Submitting after the pool's context is cancelled must neither run
	// the job nor wedge the submitter: workers keep draining the channel,
	// and Wait reports the cancellation.
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		p := NewPool(ctx, workers)
		var ran atomic.Int32
		p.Submit(ctx, 0, func() error { ran.Add(1); return nil })
		cancel()
		// Post-cancel submissions: enough of them to overflow the channel
		// buffer if workers stopped draining.
		for i := 1; i <= 64; i++ {
			p.Submit(ctx, i, func() error { ran.Add(1); return nil })
		}
		if err := p.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: Wait = %v, want context.Canceled", workers, err)
		}
		// Job 0 may or may not have beaten the cancellation; the 64
		// post-cancel jobs must all have been skipped.
		if got := ran.Load(); got > 1 {
			t.Errorf("workers=%d: %d jobs ran after cancellation, want <= 1", workers, got)
		}
	}
}

func TestSerialPoolRunsInlineInOrderAndShortCircuits(t *testing.T) {
	ctx := context.Background()
	p := NewPool(ctx, 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(ctx, i, func() error {
			order = append(order, i) // inline: no locking needed
			if i == 4 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
	}
	if err := p.Wait(ctx); err == nil || err.Error() != "boom at 4" {
		t.Fatalf("Wait = %v, want boom at 4", err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("ran jobs %v, want %v (short-circuit after failure)", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran jobs %v, want %v", order, want)
		}
	}
}

func TestParallelPoolSkipsJobsAfterFailure(t *testing.T) {
	const n = 256
	ctx := context.Background()
	p := NewPool(ctx, 4)
	failed := make(chan struct{})
	p.Submit(ctx, 0, func() error {
		close(failed)
		return errors.New("early failure")
	})
	<-failed
	// Give the worker ample time to record the failure; every job
	// submitted below should then be skipped, not executed.
	time.Sleep(20 * time.Millisecond)
	var ran atomic.Int32
	for i := 1; i < n; i++ {
		p.Submit(ctx, i, func() error {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	}
	if err := p.Wait(ctx); err == nil || err.Error() != "early failure" {
		t.Fatalf("Wait = %v, want early failure", err)
	}
	// The skip is an optimization, not a hard contract, so allow a few
	// stragglers that raced the error record — but running the whole
	// sweep after a failure is the bug this pins against.
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d jobs ran after the failure; workers should skip once an error is recorded", got, n-1)
	}
}

func TestForEachAccumulates(t *testing.T) {
	var mu sync.Mutex
	sum := 0
	if err := ForEach(context.Background(), 4, 20, func(i int) error {
		mu.Lock()
		sum += i
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 190 {
		t.Errorf("sum = %d, want 190", sum)
	}
}

func TestDefaultJobsPositive(t *testing.T) {
	if DefaultJobs() < 1 {
		t.Errorf("DefaultJobs() = %d, want >= 1", DefaultJobs())
	}
}

func TestPreCancelledContextSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(ctx, workers, 64, func(int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Errorf("workers=%d: %d jobs ran under a pre-cancelled context", workers, ran.Load())
		}
	}
}

func TestMidRunCancellationStopsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 512
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 4, n, func(i int) error {
		if ran.Add(1) == 8 {
			cancel() // cancel from inside the sweep, mid-run
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight jobs finish; everything else is skipped. Allow the few
	// stragglers that raced the cancellation.
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d jobs ran after mid-run cancellation", got, n)
	}
	// All pool goroutines must have exited by the time Wait returned.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestJobErrorBeatsLaterCancellation(t *testing.T) {
	// A real job failure recorded before cancellation is the more useful
	// report; ctx.Err() is the fallback, not an override.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEach(ctx, 1, 8, func(i int) error {
		if i == 2 {
			cancel()
			return errors.New("real failure")
		}
		return nil
	})
	if err == nil || err.Error() != "real failure" {
		t.Errorf("err = %v, want the recorded job failure", err)
	}
}
