package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func key(i int) Key {
	return Key{
		Gen: 3, Bench: "fib", Input: "n=30", Scale: 0,
		Topology: "4x8-0011223344556677", Policy: "numaws",
		P: 8, Seed: int64(i), Serial: false, Verify: true,
	}
}

func result(i int) Result {
	return Result{Time: int64(1000 + i), Work: int64(2000 + i), Sched: int64(30 + i), Idle: int64(40 + i)}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Key]Result{}
	for i := 0; i < 10; i++ {
		k, r := key(i), result(i)
		if err := w.Write(k, r); err != nil {
			t.Fatal(err)
		}
		want[k] = r
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	got, err := Replay(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatalf("missing journal must be an empty journal, got error %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from a missing file", len(got))
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the file at every byte offset inside the final record: all
	// 5 prefixes must replay to exactly the records fully written before
	// the cut.
	lines := strings.SplitAfter(strings.TrimSuffix(string(whole), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("journal has %d lines, want 5", len(lines))
	}
	prefix := strings.Join(lines[:4], "")
	last := lines[4]
	for cut := 0; cut < len(last); cut++ {
		torn := prefix + last[:cut]
		tornPath := filepath.Join(t.TempDir(), "torn.jsonl")
		if err := os.WriteFile(tornPath, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Replay(tornPath)
		if err != nil {
			t.Fatalf("cut=%d: replay of torn journal errored: %v", cut, err)
		}
		if len(got) != 4 {
			t.Fatalf("cut=%d: replayed %d records, want the 4 intact ones", cut, len(got))
		}
		for i := 0; i < 4; i++ {
			if got[key(i)] != result(i) {
				t.Fatalf("cut=%d: record %d corrupted by torn tail: %v", cut, i, got[key(i)])
			}
		}
	}
}

func TestReplayStopsAtChecksumMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Write(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the second record's payload: valid JSON, wrong
	// checksum. Replay must keep record 0 and distrust everything from
	// the corruption on — including the intact third record, because an
	// append-only journal has no way to know what else moved.
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	corrupt := strings.Replace(lines[1], `"bench":"fib"`, `"bench":"fub"`, 1)
	if corrupt == lines[1] {
		t.Fatal("corruption substitution did not apply")
	}
	mutPath := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(mutPath, []byte(lines[0]+corrupt+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(mutPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[key(0)] != result(0) {
		t.Errorf("replay past corruption: got %v, want only record 0", got)
	}
}

func TestAppendExtendsExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(key(0), result(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Write(key(1), result(1)); err != nil {
		t.Fatal(err)
	}
	// A re-journaled duplicate: the later record wins on replay.
	if err := w2.Write(key(0), Result{Time: 7, Work: 8, Sched: 9, Idle: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	if got[key(1)] != result(1) {
		t.Errorf("appended record lost: %v", got[key(1)])
	}
	if (got[key(0)] != Result{Time: 7, Work: 8, Sched: 9, Idle: 10}) {
		t.Errorf("duplicate key: later record must win, got %v", got[key(0)])
	}
}

func TestCloseNilAndDouble(t *testing.T) {
	var w *Writer
	if err := w.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestDistinctKeysStayDistinct(t *testing.T) {
	// Every field of the key must participate in identity; a journal that
	// conflated, say, serial and parallel rows would resume wrong numbers.
	base := key(0)
	variants := []Key{base}
	mut := func(f func(*Key)) {
		k := base
		f(&k)
		variants = append(variants, k)
	}
	mut(func(k *Key) { k.Gen++ })
	mut(func(k *Key) { k.Bench = "lu" })
	mut(func(k *Key) { k.Input = "n=31" })
	mut(func(k *Key) { k.Scale = 1 })
	mut(func(k *Key) { k.Topology = "2x16-aabbccddeeff0011" })
	mut(func(k *Key) { k.Policy = "cilk" })
	mut(func(k *Key) { k.P = 16 })
	mut(func(k *Key) { k.Seed = 99 })
	mut(func(k *Key) { k.Serial = true })
	mut(func(k *Key) { k.Verify = false })

	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range variants {
		if err := w.Write(k, result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(variants) {
		t.Fatalf("replayed %d records from %d distinct keys", len(got), len(variants))
	}
	for i, k := range variants {
		if got[k] != result(i) {
			t.Errorf("variant %d: got %v, want %v", i, got[k], result(i))
		}
	}
}

func TestCreateTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := os.WriteFile(path, []byte(fmt.Sprintf("%s\n", "garbage")), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Create did not truncate: %v", got)
	}
}

func TestReplayWithStatsCountsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Write(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	// Corrupt record 2's payload (valid JSON, wrong checksum): replay must
	// keep records 0-1, skip the corrupt line AND the intact record after
	// it, and report the trusted prefix ending where line 2 begins.
	corrupt := strings.Replace(lines[2], `"bench":"fib"`, `"bench":"fub"`, 1)
	if corrupt == lines[2] {
		t.Fatal("corruption substitution did not apply")
	}
	mutPath := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(mutPath, []byte(lines[0]+lines[1]+corrupt+lines[3]), 0o644); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReplayWithStats(mutPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || st.Records != 2 {
		t.Errorf("got %d records (stats %d), want the 2 before the corruption", len(got), st.Records)
	}
	if st.Skipped != 2 {
		t.Errorf("Skipped = %d, want 2 (the corrupt line and the orphaned intact one)", st.Skipped)
	}
	wantTail := int64(len(lines[0]) + len(lines[1]))
	if st.Tail != wantTail {
		t.Errorf("Tail = %d, want %d (end of the trusted prefix)", st.Tail, wantTail)
	}
}

func TestReplayWithStatsCleanJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Write(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := ReplayWithStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || st.Records != 3 || st.Skipped != 0 {
		t.Errorf("clean journal: got %d records, stats %+v", len(got), st)
	}
	if st.Tail != fi.Size() {
		t.Errorf("Tail = %d, want the whole file (%d)", st.Tail, fi.Size())
	}
}

func TestReplayWithStatsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Write(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	torn := lines[0] + lines[1][:len(lines[1])/2]
	tornPath := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(tornPath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	got, st, err := ReplayWithStats(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || st.Records != 1 || st.Skipped != 1 {
		t.Errorf("torn tail: got %d records, stats %+v", len(got), st)
	}
	if st.Tail != int64(len(lines[0])) {
		t.Errorf("Tail = %d, want %d (end of the intact first record)", st.Tail, len(lines[0]))
	}
}
