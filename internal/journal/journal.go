// Package journal makes experiment grids crash-safe: an append-only JSONL
// file with one fsync'd, checksummed record per completed run, and a replay
// reader that tolerates a torn tail. A grid killed mid-flight re-runs with
// the same journal in resume mode, replays the completed rows, and
// simulates only the remainder — producing rows identical to an
// uninterrupted run, because every simulation is deterministic in its key.
//
// Record format (one JSON object per line):
//
//	{"crc":<crc32-IEEE of the rec field's JSON bytes>,"rec":{<Key+Result>}}
//
// The checksum guards the only corruption append-only files suffer in
// practice: a torn final line from a crash mid-write. Replay stops at the
// first record that fails to parse or checksum and returns what preceded
// it; the writer appends from there, so the torn tail is simply re-measured.
//
// Keys carry the full run tuple plus the workload-registry generation:
// a journal written under one registry population never replays into a
// process whose registrations differ (see workloads.Spec.Generation).
// Baseline-vs-policy is deliberately not in the key — both measure the same
// simulation, so resume dedups them by content, mirroring the input pool.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Key identifies one simulation in the experiment space. Comparable, so it
// keys the replay map directly.
type Key struct {
	// Gen is the workload-registry generation the run's spec was stamped
	// under; it fences a journal to one registry population.
	Gen   uint64 `json:"gen"`
	Bench string `json:"bench"`
	Input string `json:"input"`
	Scale int    `json:"scale"`
	// Topology is the compact machine signature (shape plus a content
	// hash), not the full rendering; see harness's topologyKey.
	Topology string `json:"topology"`
	Policy   string `json:"policy"`
	P        int    `json:"p"`
	Seed     int64  `json:"seed"`
	Serial   bool   `json:"serial"`
	Verify   bool   `json:"verify"`
}

// Result is the replayable outcome of one completed simulation: the four
// totals every aggregation in the harness folds from. Failed runs are never
// journaled — a resume re-attempts them.
type Result struct {
	Time  int64 `json:"time"`
	Work  int64 `json:"work"`
	Sched int64 `json:"sched"`
	Idle  int64 `json:"idle"`
}

// record is one journal line's payload.
type record struct {
	Key
	Result
}

// line wraps a record with its checksum.
type line struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Writer appends checksummed records to a journal file, one fsync per
// record, safe for concurrent use by the harness's -jobs workers.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Create truncates (or creates) path and returns a writer for a fresh
// journal.
func Create(path string) (*Writer, error) {
	return open(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
}

// Append opens (or creates) path for appending, the resume path: replayed
// rows stay, new completions extend the file.
func Append(path string) (*Writer, error) {
	return open(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY)
}

func open(path string, flag int) (*Writer, error) {
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Writer{f: f}, nil
}

// Write appends one completed run and syncs it to stable storage before
// returning, so a record the caller saw succeed survives any later crash.
func (w *Writer) Write(k Key, r Result) error {
	rec, err := json.Marshal(record{Key: k, Result: r})
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	ln, err := json.Marshal(line{CRC: crc32.ChecksumIEEE(rec), Rec: rec})
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	ln = append(ln, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(ln); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Close closes the underlying file. Safe to call on a nil writer.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// Replay reads every intact record from path. A missing file is an empty
// journal (first run of a --resume grid), not an error. Reading stops at
// the first torn or corrupt record — everything before it is trusted, the
// tail is discarded for re-measurement. Later duplicates of a key win,
// which makes replay idempotent when a resumed grid re-journals a row whose
// original write raced the crash.
func Replay(path string) (map[Key]Result, error) {
	out, _, err := ReplayWithStats(path)
	return out, err
}

// ReplayStats describes what a replay found: how many intact records it
// trusted, how many lines it discarded from the first torn or corrupt
// record onward, and where the trusted prefix ends. Skipped > 0 is the
// signal a resume was partial — callers log it, and the sweep service's
// store reports it as corruption on /statusz.
type ReplayStats struct {
	// Records counts intact records replayed (before key dedup).
	Records int
	// Skipped counts non-empty lines discarded at and after the first
	// torn or corrupt record.
	Skipped int
	// Tail is the byte offset where the trusted prefix ends — the start
	// of the first discarded line. The store truncates the file here
	// before appending, so new records are never written beyond a line a
	// future replay would refuse to read past.
	Tail int64
}

// ReplayWithStats is Replay plus an account of what the reader saw: unlike
// Replay, it keeps scanning after the first torn or corrupt record — still
// trusting nothing past it — so the caller learns how much was lost.
func ReplayWithStats(path string) (map[Key]Result, ReplayStats, error) {
	out := map[Key]Result{}
	var st ReplayStats
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, st, nil
	}
	if err != nil {
		return nil, st, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	corrupt := false
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if corrupt {
			if len(raw) > 0 {
				st.Skipped++
			}
			continue
		}
		n := int64(len(sc.Bytes())) + 1 // the line plus its newline
		if len(raw) == 0 {
			st.Tail += n
			continue
		}
		var ln line
		var rec record
		switch {
		case json.Unmarshal(raw, &ln) != nil:
			corrupt = true // torn tail
		case crc32.ChecksumIEEE(ln.Rec) != ln.CRC:
			corrupt = true // corrupt record: trust nothing past it
		case json.Unmarshal(ln.Rec, &rec) != nil:
			corrupt = true
		}
		if corrupt {
			st.Skipped++
			continue
		}
		out[rec.Key] = rec.Result
		st.Records++
		st.Tail += n
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("journal: read: %w", err)
	}
	return out, st, nil
}
