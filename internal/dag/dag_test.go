package dag

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
	"repro/internal/topology"
)

// scriptRunner produces a fixed fork-join tree through the Runner interface
// (mirroring the sched package's test runner, kept local to avoid exporting
// test helpers).
type scriptRunner struct {
	fanout    int
	depth     int
	leafCost  int64
	innerCost int64
}

type scriptState struct {
	depth   int
	spawned int
	synced  bool
}

func (r *scriptRunner) state(f *sched.Frame) *scriptState {
	if f.Data == nil {
		f.Data = &scriptState{depth: r.depth}
	}
	return f.Data.(*scriptState)
}

func (r *scriptRunner) Resume(w int, f *sched.Frame) sched.Yield {
	st := r.state(f)
	if st.depth == 0 {
		return sched.Yield{Kind: sched.YieldReturn, Cost: r.leafCost}
	}
	if st.spawned < r.fanout {
		child := sched.NewFrame(f, sched.PlaceAny)
		child.Data = &scriptState{depth: st.depth - 1}
		st.spawned++
		return sched.Yield{Kind: sched.YieldSpawn, Cost: r.innerCost, Child: child}
	}
	if !st.synced {
		st.synced = true
		return sched.Yield{Kind: sched.YieldSync, Cost: r.innerCost}
	}
	return sched.Yield{Kind: sched.YieldReturn, Cost: r.innerCost}
}

// analytic work and span for the script tree.
func (r *scriptRunner) work() int64 {
	nodes := int64(1)
	var inner int64
	for d := 0; d < r.depth; d++ {
		inner += nodes
		nodes *= int64(r.fanout)
	}
	return nodes*r.leafCost + inner*int64(r.fanout+2)*r.innerCost
}

func (r *scriptRunner) span() int64 {
	// Critical path per inner level: the spawn strands up to and including
	// the last spawn (fanout * inner), then the last child's subtree in
	// parallel with the pre-sync strand — the subtree dominates — then the
	// return strand after the join. The pre-sync strand is NOT on the
	// critical path (it runs in parallel with the last child), so each
	// level contributes (fanout + 1) * innerCost.
	return int64(r.depth)*int64(r.fanout+1)*r.innerCost + r.leafCost
}

func record(t *testing.T, p int, pol sched.Policy, seed int64, script *scriptRunner) (*Graph, *sched.Stats) {
	t.Helper()
	rec := Wrap(script)
	e := sched.NewEngine(sched.Config{
		Topology: topology.XeonE5_4620(),
		Workers:  p,
		Policy:   pol,
		Seed:     seed,
	}, rec)
	stats := e.Run(sched.NewRootFrame(sched.PlaceAny))
	return rec.Graph(), stats
}

func TestWorkMatchesAnalytic(t *testing.T) {
	script := &scriptRunner{fanout: 3, depth: 4, leafCost: 100, innerCost: 7}
	g, _ := record(t, 8, sched.Cilk, 1, script)
	if g.Work() != script.work() {
		t.Errorf("recorded work %d, want %d", g.Work(), script.work())
	}
}

func TestSpanMatchesAnalytic(t *testing.T) {
	script := &scriptRunner{fanout: 2, depth: 5, leafCost: 100, innerCost: 3}
	g, _ := record(t, 8, sched.Cilk, 1, script)
	if g.Span() != script.span() {
		t.Errorf("recorded span %d, want %d", g.Span(), script.span())
	}
}

func TestDagInvariantAcrossSchedules(t *testing.T) {
	// The dag is a property of the program: identical across P, policy and
	// seed.
	base, _ := record(t, 1, sched.Cilk, 1, &scriptRunner{fanout: 3, depth: 5, leafCost: 50, innerCost: 5})
	for _, tc := range []struct {
		p    int
		pol  sched.Policy
		seed int64
	}{{8, sched.Cilk, 2}, {32, sched.NUMAWS, 3}, {32, sched.NUMAWS, 99}} {
		g, _ := record(t, tc.p, tc.pol, tc.seed, &scriptRunner{fanout: 3, depth: 5, leafCost: 50, innerCost: 5})
		if g.Work() != base.Work() || g.Span() != base.Span() || g.Nodes() != base.Nodes() {
			t.Errorf("P=%d %v seed=%d: dag (%d nodes, W=%d, S=%d) differs from base (%d, %d, %d)",
				tc.p, tc.pol, tc.seed, g.Nodes(), g.Work(), g.Span(), base.Nodes(), base.Work(), base.Span())
		}
	}
}

// Property: for random tree shapes, span <= work, and parallelism >= 1.
func TestSpanLEWorkProperty(t *testing.T) {
	f := func(fanout, depth uint8, leaf uint16) bool {
		script := &scriptRunner{
			fanout:    int(fanout)%4 + 1,
			depth:     int(depth)%5 + 1,
			leafCost:  int64(leaf)%500 + 1,
			innerCost: 3,
		}
		g, _ := record(t, 4, sched.NUMAWS, 7, script)
		return g.Span() <= g.Work() && g.Parallelism() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMakespanRespectsDagBounds(t *testing.T) {
	// T_P must satisfy max(Work/P, Span) <= T_P against the *measured* dag
	// (engine bookkeeping only adds time).
	script := &scriptRunner{fanout: 4, depth: 5, leafCost: 2000, innerCost: 10}
	for _, p := range []int{1, 8, 32} {
		g, stats := record(t, p, sched.NUMAWS, 1, &scriptRunner{fanout: 4, depth: 5, leafCost: 2000, innerCost: 10})
		if stats.Makespan < g.Work()/int64(p) {
			t.Errorf("P=%d: makespan %d below Work/P = %d", p, stats.Makespan, g.Work()/int64(p))
		}
		if stats.Makespan < g.Span() {
			t.Errorf("P=%d: makespan %d below Span %d", p, stats.Makespan, g.Span())
		}
	}
	_ = script
}

func TestEmptyGraph(t *testing.T) {
	g := &Graph{}
	if g.Work() != 0 || g.Span() != 0 || g.Parallelism() != 0 || g.Nodes() != 0 {
		t.Error("empty graph should be all zeros")
	}
}

func TestEdgesCounted(t *testing.T) {
	g, _ := record(t, 2, sched.Cilk, 1, &scriptRunner{fanout: 2, depth: 2, leafCost: 10, innerCost: 1})
	if g.Edges() < g.Nodes()-1 {
		t.Errorf("graph with %d nodes has only %d edges; must be connected", g.Nodes(), g.Edges())
	}
}

// TestCSRPredsConsistent checks the CSR storage invariants: offsets are
// monotone, cover exactly the edge array, and every predecessor id precedes
// nothing impossible (a valid node id other than the node's own).
func TestCSRPredsConsistent(t *testing.T) {
	g, _ := record(t, 4, sched.NUMAWS, 3, &scriptRunner{fanout: 3, depth: 3, leafCost: 10, innerCost: 1})
	total := 0
	for v := 0; v < g.Nodes(); v++ {
		ps := g.Preds(v)
		total += len(ps)
		for _, u := range ps {
			if int(u) < 0 || int(u) >= g.Nodes() {
				t.Fatalf("node %d has out-of-range predecessor %d", v, u)
			}
			if int(u) == v {
				t.Fatalf("node %d is its own predecessor", v)
			}
		}
		if g.Cost(v) < 0 {
			t.Fatalf("node %d has negative cost %d", v, g.Cost(v))
		}
	}
	if total != g.Edges() {
		t.Errorf("per-node predecessor lists cover %d edges, Edges() = %d", total, g.Edges())
	}
}

// TestSpanAllocations pins the Span rework's point: one int32 buffer and
// one int64 buffer per call, regardless of graph size.
func TestSpanAllocations(t *testing.T) {
	g, _ := record(t, 4, sched.Cilk, 1, &scriptRunner{fanout: 3, depth: 4, leafCost: 10, innerCost: 1})
	want := g.Span()
	allocs := testing.AllocsPerRun(10, func() {
		if got := g.Span(); got != want {
			t.Errorf("Span = %d, want %d", got, want)
		}
	})
	if allocs > 2 {
		t.Errorf("Span allocated %v times per call, want at most 2", allocs)
	}
}
