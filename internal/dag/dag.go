// Package dag records the computation dag of a simulated run and measures
// its work and span — the two quantities the paper's Section IV analysis is
// stated in ("the work is then defined as the total number of nodes in the
// dag, and span is the number of nodes along a longest path").
//
// A Recorder wraps any sched.Runner and observes its yields: every strand
// becomes a node weighted by its cycle cost; spawn, sync, call and return
// events become the series-parallel edges. Because the dag is a property of
// the *program*, not the schedule, recording the same computation at
// different worker counts or under different schedulers must produce
// identical work and span — a strong invariant the tests exploit.
//
// The graph is stored in CSR (compressed sparse row) form: one flat int32
// edge array plus per-node offsets, appended to as nodes are recorded. A
// million-strand run costs three growing slices instead of a [][]int32 with
// one slice header and one backing array per node, and Span traverses the
// flat arrays with exactly two transient allocations.
package dag

import (
	"fmt"

	"repro/internal/sched"
)

// Graph is a recorded computation dag in predecessor-CSR form: node v's
// predecessors are preds[predOff[v]:predOff[v+1]].
type Graph struct {
	cost    []int64
	predOff []int32
	preds   []int32
}

// Nodes reports the number of strands recorded.
func (g *Graph) Nodes() int { return len(g.cost) }

// Edges reports the number of dependence edges.
func (g *Graph) Edges() int { return len(g.preds) }

// Preds returns node v's predecessor ids (aliasing the graph's storage).
func (g *Graph) Preds(v int) []int32 { return g.preds[g.predOff[v]:g.predOff[v+1]] }

// Cost reports node v's strand cost in cycles.
func (g *Graph) Cost(v int) int64 { return g.cost[v] }

// Work is the total strand cost — T1 of the dag (excluding scheduler
// bookkeeping).
func (g *Graph) Work() int64 {
	var w int64
	for _, c := range g.cost {
		w += c
	}
	return w
}

// Span is the cost of the longest path — T∞ of the dag. Computed by a
// topological pass (Kahn), since suspension can create nodes out of
// dependence order. The successor CSR, the Kahn queue and the in-degrees
// are carved out of one int32 buffer and the distances out of one int64
// buffer: two allocations total, no per-node slices.
func (g *Graph) Span() int64 {
	n := len(g.cost)
	if n == 0 {
		return 0
	}
	e := len(g.preds)
	// buf layout: succOff (n+1) | succs (e) | queue (n) | indeg (n).
	buf := make([]int32, (n+1)+e+n+n)
	succOff := buf[: n+1 : n+1]
	succs := buf[n+1 : n+1+e]
	queue := buf[n+1+e : n+1+e+n]
	indeg := buf[n+1+e+n:]
	dist := make([]int64, n)

	// Pass 1: out-degree counts (shifted by one so the prefix sum leaves
	// succOff[u] pointing at u's first slot) and in-degrees.
	for v := 0; v < n; v++ {
		for _, u := range g.Preds(v) {
			succOff[u+1]++
			indeg[v]++
		}
	}
	for u := 0; u < n; u++ {
		succOff[u+1] += succOff[u]
	}
	// Pass 2: scatter successors; succOff[u] advances to its final value
	// (u's end == u+1's start, restoring the offsets invariant shifted
	// back by one: after this loop succOff[u] is the end of u's slots).
	for v := 0; v < n; v++ {
		for _, u := range g.Preds(v) {
			succs[succOff[u]] = int32(v)
			succOff[u]++
		}
	}

	var best int64
	qlen := 0
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue[qlen] = int32(v)
			qlen++
			dist[v] = g.cost[v]
		}
	}
	processed := 0
	for qlen > 0 {
		qlen--
		u := queue[qlen]
		processed++
		if dist[u] > best {
			best = dist[u]
		}
		// u's successor slots end at succOff[u]; they start where u-1's
		// end (0 for the first node).
		start := int32(0)
		if u > 0 {
			start = succOff[u-1]
		}
		for _, v := range succs[start:succOff[u]] {
			if d := dist[u] + g.cost[v]; d > dist[v] {
				dist[v] = d
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue[qlen] = v
				qlen++
			}
		}
	}
	if processed != n {
		panic(fmt.Sprintf("dag: cycle detected (%d of %d nodes processed)", processed, n))
	}
	return best
}

// Parallelism is Work/Span, the paper's T1/T∞.
func (g *Graph) Parallelism() float64 {
	s := g.Span()
	if s == 0 {
		return 0
	}
	return float64(g.Work()) / float64(s)
}

// frameState tracks dag construction for one live frame.
type frameState struct {
	last     int32   // the frame's most recent strand node
	children []int32 // end nodes of children returned since the last sync
	pending  bool    // a sync was yielded; join on next resume
}

// Recorder wraps a Runner and builds the Graph as the run executes. It is
// not safe for concurrent use; the engine calls Resume serially, which is
// exactly the guarantee it needs.
type Recorder struct {
	inner  sched.Runner
	g      *Graph
	frames map[*sched.Frame]*frameState
	// spare recycles frameStates of returned frames (with their children
	// backing arrays) for newly spawned ones.
	spare []*frameState
}

// Wrap returns a Recorder around inner; pass the Recorder itself as the
// engine's Runner.
func Wrap(inner sched.Runner) *Recorder {
	return &Recorder{
		inner:  inner,
		g:      &Graph{predOff: []int32{0}},
		frames: make(map[*sched.Frame]*frameState),
	}
}

// Graph returns the recorded dag (valid after the run completes).
func (r *Recorder) Graph() *Graph { return r.g }

// node appends a strand node whose predecessors are first (if >= 0) and
// rest, writing the edges straight into the CSR arrays.
func (r *Recorder) node(cost int64, first int32, rest []int32) int32 {
	id := int32(len(r.g.cost))
	r.g.cost = append(r.g.cost, cost)
	if first >= 0 {
		r.g.preds = append(r.g.preds, first)
	}
	r.g.preds = append(r.g.preds, rest...)
	r.g.predOff = append(r.g.predOff, int32(len(r.g.preds)))
	return id
}

func (r *Recorder) state(f *sched.Frame) *frameState {
	st := r.frames[f]
	if st == nil {
		if n := len(r.spare); n > 0 {
			st = r.spare[n-1]
			r.spare = r.spare[:n-1]
			st.last, st.children, st.pending = -1, st.children[:0], false
		} else {
			st = &frameState{last: -1}
		}
		r.frames[f] = st
	}
	return st
}

// Resume implements sched.Runner.
func (r *Recorder) Resume(w int, f *sched.Frame) sched.Yield {
	st := r.state(f)
	// If the frame parked at a cilk_sync, this resume means the sync has
	// completed: every child spawned since the last sync has returned (the
	// engine only resumes a synching frame once its join counter drains).
	// Materialize the join node now, when all child end nodes exist.
	if st.pending {
		st.pending = false
		st.last = r.node(0, st.last, st.children)
		st.children = st.children[:0]
	}

	y := r.inner.Resume(w, f)
	// The strand just executed: a node depending on the frame's previous
	// strand (or join node).
	n := r.node(y.Cost, st.last, nil)
	st.last = n

	switch y.Kind {
	case sched.YieldSpawn, sched.YieldCall:
		// The child's first strand depends on this strand.
		cs := r.state(y.Child)
		cs.last = n
	case sched.YieldSync:
		st.pending = true
	case sched.YieldReturn:
		if f.Parent != nil {
			ps := r.state(f.Parent)
			if f.Called() {
				// The caller's next strand depends directly on the callee.
				ps.last = n
			} else {
				ps.children = append(ps.children, n)
			}
		}
		delete(r.frames, f)
		r.spare = append(r.spare, st)
	}
	return y
}
