// Package dag records the computation dag of a simulated run and measures
// its work and span — the two quantities the paper's Section IV analysis is
// stated in ("the work is then defined as the total number of nodes in the
// dag, and span is the number of nodes along a longest path").
//
// A Recorder wraps any sched.Runner and observes its yields: every strand
// becomes a node weighted by its cycle cost; spawn, sync, call and return
// events become the series-parallel edges. Because the dag is a property of
// the *program*, not the schedule, recording the same computation at
// different worker counts or under different schedulers must produce
// identical work and span — a strong invariant the tests exploit.
package dag

import (
	"fmt"

	"repro/internal/sched"
)

// Graph is a recorded computation dag.
type Graph struct {
	cost  []int64
	preds [][]int32
	edges int
}

// Nodes reports the number of strands recorded.
func (g *Graph) Nodes() int { return len(g.cost) }

// Edges reports the number of dependence edges.
func (g *Graph) Edges() int { return g.edges }

// Work is the total strand cost — T1 of the dag (excluding scheduler
// bookkeeping).
func (g *Graph) Work() int64 {
	var w int64
	for _, c := range g.cost {
		w += c
	}
	return w
}

// Span is the cost of the longest path — T∞ of the dag. Computed by a
// topological pass (Kahn), since suspension can create nodes out of
// dependence order.
func (g *Graph) Span() int64 {
	n := len(g.cost)
	if n == 0 {
		return 0
	}
	indeg := make([]int32, n)
	succs := make([][]int32, n)
	for v, ps := range g.preds {
		for _, u := range ps {
			succs[u] = append(succs[u], int32(v))
			indeg[v]++
		}
	}
	dist := make([]int64, n)
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
			dist[v] = g.cost[v]
		}
	}
	var best int64
	processed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		if dist[u] > best {
			best = dist[u]
		}
		for _, v := range succs[u] {
			if d := dist[u] + g.cost[v]; d > dist[v] {
				dist[v] = d
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if processed != n {
		panic(fmt.Sprintf("dag: cycle detected (%d of %d nodes processed)", processed, n))
	}
	return best
}

// Parallelism is Work/Span, the paper's T1/T∞.
func (g *Graph) Parallelism() float64 {
	s := g.Span()
	if s == 0 {
		return 0
	}
	return float64(g.Work()) / float64(s)
}

// frameState tracks dag construction for one live frame.
type frameState struct {
	last     int32   // the frame's most recent strand node
	children []int32 // end nodes of children returned since the last sync
	pending  bool    // a sync was yielded; join on next resume
}

// Recorder wraps a Runner and builds the Graph as the run executes. It is
// not safe for concurrent use; the engine calls Resume serially, which is
// exactly the guarantee it needs.
type Recorder struct {
	inner  sched.Runner
	g      *Graph
	frames map[*sched.Frame]*frameState
}

// Wrap returns a Recorder around inner; pass the Recorder itself as the
// engine's Runner.
func Wrap(inner sched.Runner) *Recorder {
	return &Recorder{
		inner:  inner,
		g:      &Graph{},
		frames: make(map[*sched.Frame]*frameState),
	}
}

// Graph returns the recorded dag (valid after the run completes).
func (r *Recorder) Graph() *Graph { return r.g }

func (r *Recorder) node(cost int64, preds ...int32) int32 {
	id := int32(len(r.g.cost))
	r.g.cost = append(r.g.cost, cost)
	ps := make([]int32, 0, len(preds))
	for _, p := range preds {
		if p >= 0 {
			ps = append(ps, p)
			r.g.edges++
		}
	}
	r.g.preds = append(r.g.preds, ps)
	return id
}

func (r *Recorder) state(f *sched.Frame) *frameState {
	st := r.frames[f]
	if st == nil {
		st = &frameState{last: -1}
		r.frames[f] = st
	}
	return st
}

// Resume implements sched.Runner.
func (r *Recorder) Resume(w int, f *sched.Frame) sched.Yield {
	st := r.state(f)
	// If the frame parked at a cilk_sync, this resume means the sync has
	// completed: every child spawned since the last sync has returned (the
	// engine only resumes a synching frame once its join counter drains).
	// Materialize the join node now, when all child end nodes exist.
	if st.pending {
		st.pending = false
		preds := append([]int32{st.last}, st.children...)
		st.last = r.node(0, preds...)
		st.children = st.children[:0]
	}

	y := r.inner.Resume(w, f)
	// The strand just executed: a node depending on the frame's previous
	// strand (or join node).
	n := r.node(y.Cost, st.last)
	st.last = n

	switch y.Kind {
	case sched.YieldSpawn, sched.YieldCall:
		// The child's first strand depends on this strand.
		cs := r.state(y.Child)
		cs.last = n
	case sched.YieldSync:
		st.pending = true
	case sched.YieldReturn:
		if f.Parent != nil {
			ps := r.state(f.Parent)
			if f.Called() {
				// The caller's next strand depends directly on the callee.
				ps.last = n
			} else {
				ps.children = append(ps.children, n)
			}
		}
		delete(r.frames, f)
	}
	return y
}
