// Package harness stubs the real harness for the panicsafe fixtures: the
// designated boundary is sanctioned by name, but the package path buys no
// blanket exemption for its other functions.
package harness

// contain is the module's one designated recovery boundary; its recover
// (inside the deferred closure) is the sanctioned form.
func contain(run func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = nil
		}
	}()
	return run()
}

// A second containment point in the same package is still a finding.
func containAgain(run func()) {
	defer func() {
		recover() // want `recover\(\) in containAgain`
	}()
	run()
}

var _ = contain
