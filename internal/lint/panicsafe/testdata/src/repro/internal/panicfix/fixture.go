// Package panicfix seeds containment-boundary defects: recovers outside
// the designated boundary, with and without waivers.
package panicfix

// A bare recover outside the boundary swallows the failure the grid
// should have contained.
func swallow(run func()) (ok bool) {
	defer func() {
		if recover() != nil { // want `recover\(\) in swallow`
			ok = false
		}
	}()
	run()
	return true
}

// The relay form — recover only to re-raise on another goroutine — is
// sanctioned with a reasoned waiver.
func relay(run func(), raise chan<- any) {
	go func() {
		defer func() {
			//numaws:recover-ok goroutine relay, not containment: re-raised on the caller's goroutine
			if p := recover(); p != nil {
				raise <- p
			}
		}()
		run()
	}()
}

// A reasonless waiver is itself a finding.
func lazyRelay(run func()) {
	defer func() {
		//numaws:recover-ok
		recover() // want `numaws:recover-ok suppression is missing its mandatory reason`
	}()
	run()
}

// A user-defined recover shadows the builtin and is not a containment
// point.
func localRecover() bool { return false }

func notTheBuiltin() {
	if localRecover() {
		return
	}
}
