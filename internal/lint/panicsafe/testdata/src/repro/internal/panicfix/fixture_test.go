package panicfix

import "testing"

// Test files are exempt wholesale: tests recover deliberately to assert
// that code panics.
func TestSwallowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	swallow(func() { panic("boom") })
}
