// Package panicsafe pins the module's failure-containment contract from
// DESIGN.md: a panic anywhere in a run — workload construction, the
// simulation, verification — must unwind uncaught to the harness's single
// designated recovery boundary (harness.contain), where it becomes a
// typed *RunError and an attributable error row. A recover() anywhere
// else either swallows a failure the grid should have contained (losing
// the stack, the classification and the quarantine step) or creates a
// second containment point that can disagree with the first.
//
// The only sanctioned exceptions are goroutine relays: a worker that
// recovers a panic solely to re-raise it on the submitting goroutine
// (so it still reaches the boundary) waives its recover with
// `//numaws:recover-ok <reason>`.
//
// Scope: every package in the module; _test.go files are exempt
// wholesale (tests recover deliberately to assert that code panics).
package panicsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the containment-boundary checker.
var Analyzer = &analysis.Analyzer{
	Name: "panicsafe",
	Doc: "recover() appears only at the harness's designated containment boundary; " +
		"goroutine relays waive with //numaws:recover-ok <reason>",
	Run: run,
}

// boundaries names the designated containment functions, by defining
// package path and top-level function name. A recover anywhere inside
// one (including its deferred closures) is the sanctioned form.
var boundaries = map[string]map[string]bool{
	"repro/internal/harness": {"contain": true},
}

func run(pass *analysis.Pass) error {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		sup := analysis.NewSuppressions(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isBoundary(pass.Pkg.Path(), fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isRecover(pass, call) {
					return true
				}
				ok, hasReason := sup.Suppressed("recover-ok", call.Pos())
				if ok && hasReason {
					return true
				}
				if ok {
					pass.Reportf(call.Pos(), "numaws:recover-ok suppression is missing its mandatory reason")
					return true
				}
				pass.Reportf(call.Pos(),
					"recover() in %s: panics unwind to the harness's containment boundary (contain), "+
						"which classifies them into typed error rows — a relay that re-raises waives with "+
						"//numaws:recover-ok <reason>",
					fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// isBoundary reports whether fd is one of the designated containment
// functions. The boundary's recover sits inside a deferred closure, so
// the whole body of the named top-level function is sanctioned.
func isBoundary(pkgPath string, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	names, ok := boundaries[pkgPath]
	return ok && names[fd.Name.Name]
}

// isRecover reports whether call invokes the recover builtin. recover is
// never package-qualified, so only a plain identifier can resolve to it;
// a user-defined recover() shadows the builtin and resolves to a
// *types.Func instead.
func isRecover(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}
