package panicsafe_test

import (
	"testing"

	"repro/internal/lint/lintest"
	"repro/internal/lint/panicsafe"
)

func TestPanicSafe(t *testing.T) {
	lintest.Run(t, "testdata", panicsafe.Analyzer,
		"repro/internal/panicfix",
		"repro/internal/harness",
	)
}
