// Package facadepurity enforces the layering contract of DESIGN.md
// ("Layering and the public facade") in one place, as types instead of
// greps:
//
//   - the godoc-visible surface of pkg/numaws — exported function and
//     method signatures, exported struct fields, embedded fields,
//     exported interface methods, exported variable and constant types —
//     names no type defined in an internal package. Internal types remain
//     free to appear in unexported fields and function bodies; that is
//     the point of a facade;
//   - binaries and examples (repro/cmd/..., repro/examples/...) import
//     only the facade, never repro/internal/... directly. The lint
//     infrastructure itself (repro/internal/lint/...) is exempt: the
//     numaws-vet binary is developer tooling, not a simulator embedder,
//     and couples to no engine internals.
//
// This analyzer supersedes the ad-hoc AST walk that lived in
// pkg/numaws/apiguard_test.go and the facade job's shell greps over
// `go list` output; the CI godoc grep stays as belt-and-braces. There is
// no suppression: the facade contract is absolute.
package facadepurity

import (
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the facade-layering checker.
var Analyzer = &analysis.Analyzer{
	Name: "facadepurity",
	Doc: "pkg/numaws's exported surface names no internal type, and cmd/examples " +
		"import only the facade (no suppression: the contract is absolute)",
	Run: run,
}

const facadePath = "repro/pkg/numaws"

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	switch {
	case path == facadePath:
		checkSurface(pass)
	case analysis.InPackage(path, "repro/cmd") || analysis.InPackage(path, "repro/examples"):
		checkImports(pass)
	}
	return nil
}

// checkImports flags direct imports of internal packages from binaries
// and examples.
func checkImports(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(p, "repro/internal/") {
				continue
			}
			// The lint suite is developer tooling, not engine internals:
			// cmd/numaws-vet must wire the analyzers up.
			if analysis.InPackage(p, "repro/internal/lint") {
				continue
			}
			pass.Reportf(imp.Pos(), "%s imports %s: binaries and examples build against the "+
				"pkg/numaws facade only", pass.Pkg.Path(), p)
		}
	}
}

// checkSurface walks the facade's exported objects and flags any internal
// type reachable through the godoc-visible parts of their types.
func checkSurface(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		// Objects introduced by in-package test files (export_test.go)
		// are not part of the shipped surface.
		if pass.InTestFile(obj.Pos()) {
			continue
		}
		w := &walker{pass: pass, seen: map[types.Type]bool{}}
		switch obj := obj.(type) {
		case *types.Func:
			w.signature(obj.Pos(), "func "+name, obj.Type().(*types.Signature))
		case *types.TypeName:
			w.typeDecl(obj)
		case *types.Var, *types.Const:
			w.check(obj.Pos(), "var/const "+name, obj.Type(), true)
		}
	}
}

type walker struct {
	pass *analysis.Pass
	seen map[types.Type]bool
}

// internalObj returns the defining object of t when t directly names a
// type from an internal package.
func internalObj(t types.Type) *types.TypeName {
	var obj *types.TypeName
	switch t := t.(type) {
	case *types.Named:
		obj = t.Obj()
	case *types.Alias:
		obj = t.Obj()
	}
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if strings.Contains(obj.Pkg().Path(), "/internal/") {
		return obj
	}
	return nil
}

// check reports t (or, when deep, any type reachable through it) if it
// names an internal type. deep descends through composite type structure;
// the godoc-visibility rules of typeDecl decide where deep traversal is
// warranted.
func (w *walker) check(pos token.Pos, where string, t types.Type, deep bool) {
	if w.seen[t] {
		return
	}
	w.seen[t] = true
	if obj := internalObj(t); obj != nil {
		w.pass.Reportf(pos, "%s leaks internal type %s.%s (%s) into the facade's exported surface",
			where, obj.Pkg().Name(), obj.Name(), obj.Pkg().Path())
		return
	}
	if !deep {
		return
	}
	switch t := t.(type) {
	case *types.Named:
		// A named non-internal type's own declaration is checked where it
		// is declared; referencing it leaks nothing here.
	case *types.Alias:
		w.check(pos, where, types.Unalias(t), true)
	case *types.Pointer:
		w.check(pos, where, t.Elem(), true)
	case *types.Slice:
		w.check(pos, where, t.Elem(), true)
	case *types.Array:
		w.check(pos, where, t.Elem(), true)
	case *types.Map:
		w.check(pos, where, t.Key(), true)
		w.check(pos, where, t.Elem(), true)
	case *types.Chan:
		w.check(pos, where, t.Elem(), true)
	case *types.Signature:
		w.signature(pos, where, t)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			w.check(pos, where, t.Field(i).Type(), true)
		}
	case *types.Interface:
		for i := 0; i < t.NumExplicitMethods(); i++ {
			m := t.ExplicitMethod(i)
			w.signature(m.Pos(), where+" method "+m.Name(), m.Type().(*types.Signature))
		}
		for i := 0; i < t.NumEmbeddeds(); i++ {
			w.check(pos, where, t.EmbeddedType(i), true)
		}
	}
}

// signature checks a function signature's parameters and results.
func (w *walker) signature(pos token.Pos, where string, sig *types.Signature) {
	for i := 0; i < sig.Params().Len(); i++ {
		w.check(pos, where, sig.Params().At(i).Type(), true)
	}
	for i := 0; i < sig.Results().Len(); i++ {
		w.check(pos, where, sig.Results().At(i).Type(), true)
	}
}

// typeDecl checks an exported type declaration: its godoc-visible parts
// are exported struct fields, embedded fields, exported interface
// methods, exported methods of the type itself — and, for any other
// underlying shape, the whole right-hand side.
func (w *walker) typeDecl(obj *types.TypeName) {
	where := "type " + obj.Name()
	if obj.IsAlias() {
		// Works whether or not go/types materializes *types.Alias: either
		// obj.Type() is the Alias (check unwraps it) or it is the aliased
		// type directly.
		w.check(obj.Pos(), where, obj.Type(), true)
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		w.check(obj.Pos(), where, obj.Type(), true)
		return
	}
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Exported() || f.Embedded() {
				w.check(f.Pos(), where+" field "+f.Name(), f.Type(), true)
			}
		}
	case *types.Interface:
		for i := 0; i < u.NumExplicitMethods(); i++ {
			m := u.ExplicitMethod(i)
			if m.Exported() {
				w.signature(m.Pos(), where+" method "+m.Name(), m.Type().(*types.Signature))
			}
		}
		for i := 0; i < u.NumEmbeddeds(); i++ {
			w.check(obj.Pos(), where, u.EmbeddedType(i), true)
		}
	default:
		w.check(obj.Pos(), where, u, true)
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Exported() {
			w.signature(m.Pos(), where+" method "+m.Name(), m.Type().(*types.Signature))
		}
	}
}
