// Package numaws impersonates the facade. Internal types may flow
// through unexported fields and function bodies; any godoc-visible
// appearance is a leak.
package numaws

import (
	"repro/internal/engine"
)

// Row is a clean exported type: internal machinery hides in unexported
// fields.
type Row struct {
	Bench  string
	Cycles int64
	raw    *engine.Report // unexported: allowed, that is the point of a facade
}

// Run is a clean exported function: internal types appear only in its
// body.
func Run(bench string) (Row, error) {
	rep := engine.Run()
	return Row{Bench: bench, Cycles: rep.Cycles}, nil
}

// Leaky surfaces, one per godoc-visible position.

func RunRaw(bench string) *engine.Report { // want `func RunRaw leaks internal type engine\.Report`
	return engine.Run()
}

func Apply(p engine.Policy) {} // want `func Apply leaks internal type engine\.Policy`

type Result struct {
	Raw *engine.Report // want `type Result field Raw leaks internal type engine\.Report`
}

type Embedding struct {
	engine.Report // want `type Embedding field Report leaks internal type engine\.Report`
}

type Runner interface {
	RunRaw() *engine.Report // want `type Runner method RunRaw leaks internal type engine\.Report`
}

type ReportAlias = engine.Report // want `type ReportAlias leaks internal type engine\.Report`

var Default *engine.Report // want `var/const Default leaks internal type engine\.Report`

// Methods on exported types are godoc-visible too.

func (r Row) Raw() *engine.Report { return r.raw } // want `type Row method Raw leaks internal type engine\.Report`

// Deep structure is traversed: a leak hiding in a map value is still a
// leak.

func Curves() map[string][]engine.Report { return nil } // want `func Curves leaks internal type engine\.Report`
