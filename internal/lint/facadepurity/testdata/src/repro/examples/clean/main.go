// Command clean builds against the facade only.
package main

import "repro/pkg/numaws"

func main() {
	_, _ = numaws.Run("fib")
}
