// Command lintwiring imports the lint infrastructure — the one internal
// subtree binaries may couple to (developer tooling, not engine).
package main

import "repro/internal/lint/fake"

func main() {
	_ = fake.Analyzer{Name: "determinism"}
}
