// Command badtool couples to the engine directly instead of building
// against the facade.
package main

import (
	"repro/internal/engine" // want `repro/cmd/badtool imports repro/internal/engine`
)

func main() {
	_ = engine.Run()
}
