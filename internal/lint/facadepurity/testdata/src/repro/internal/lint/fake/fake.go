// Package fake stands in for the lint infrastructure, which binaries may
// import: numaws-vet wires the analyzers up.
package fake

type Analyzer struct{ Name string }
