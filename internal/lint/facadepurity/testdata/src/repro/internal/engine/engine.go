// Package engine stands in for the simulator internals a facade must not
// leak.
package engine

type Report struct{ Cycles int64 }

type Policy interface{ Name() string }

func Run() *Report { return &Report{} }
