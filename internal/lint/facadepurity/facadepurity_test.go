package facadepurity_test

import (
	"testing"

	"repro/internal/lint/facadepurity"
	"repro/internal/lint/lintest"
)

func TestFacadePurity(t *testing.T) {
	lintest.Run(t, "testdata", facadepurity.Analyzer,
		"repro/pkg/numaws",      // exported-surface leaks
		"repro/cmd/badtool",     // internal import from a binary
		"repro/examples/clean",  // facade-only example: silent
		"repro/cmd/lintwiring",  // lint infrastructure import: exempt
		"repro/internal/engine", // internal package itself: out of scope
	)
}
