// Package lint assembles the numaws-vet analyzer suite: the six
// repo-specific analyzers that turn DESIGN.md's prose invariants —
// determinism, alloc-free hot paths, facade purity, context discipline,
// init-time registration, single-boundary panic containment — into
// compile-time checks. The suite runs two
// ways: `go vet -vettool=numaws-vet ./...` in CI (see internal/lint/unit
// for the driver protocol), and in-process via the selfcheck test in
// this package.
package lint

import (
	"repro/internal/lint/allocfree"
	"repro/internal/lint/analysis"
	"repro/internal/lint/ctxfirst"
	"repro/internal/lint/determinism"
	"repro/internal/lint/facadepurity"
	"repro/internal/lint/panicsafe"
	"repro/internal/lint/registryinit"
)

// Analyzers returns the full numaws-vet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocfree.Analyzer,
		ctxfirst.Analyzer,
		determinism.Analyzer,
		facadepurity.Analyzer,
		panicsafe.Analyzer,
		registryinit.Analyzer,
	}
}
