package lint_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/lintest"
)

// TestRepoIsClean runs the full numaws-vet suite over every package in
// the module — the in-process twin of CI's
// `go vet -vettool=numaws-vet ./...`. The repo must be clean: every
// invariant the analyzers encode either holds or carries a reasoned
// waiver at the offending line.
func TestRepoIsClean(t *testing.T) {
	paths, err := modulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages found: %v", paths)
	}
	l := lintest.SharedLoader()
	for _, path := range paths {
		p, err := l.LoadPackage(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, a := range lint.Analyzers() {
			diags, err := lintest.Analyze(a, p)
			if err != nil {
				t.Errorf("%s on %s: %v", a.Name, path, err)
				continue
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", a.Name, p.Fset.Position(d.Pos), d.Message)
			}
		}
	}
}

// modulePackages walks the checkout for every directory holding Go
// source, skipping fixtures and VCS metadata.
func modulePackages() ([]string, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, analysis.ModulePath)
				} else {
					paths = append(paths, analysis.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
