// Package unit is the go-vet driver for the numaws-vet suite: a
// stdlib-only miniature of golang.org/x/tools/go/analysis/unitchecker
// (which this module deliberately does not depend on).
//
// `go vet -vettool=numaws-vet ./...` speaks a three-part protocol:
//
//   - `numaws-vet -V=full` describes the executable (name, hash) so the
//     go command can key its build cache on the tool's content;
//   - `numaws-vet -flags` reports the tool's flags as JSON so the go
//     command knows what it may forward (none);
//   - `numaws-vet <unit>.cfg` analyzes one compilation unit described by
//     a JSON config: source files, the import map, and the export-data
//     file of every dependency. Diagnostics go to stderr in
//     file:line:col form with exit status 1.
//
// The go command invokes the tool over every dependency of the target
// packages — the stdlib included — to collect analysis facts. The
// numaws analyzers are fact-free and purely intramodular, so those
// invocations (VetxOnly, or any import path outside the repro module)
// write their required empty facts file and return without parsing a
// single Go file; only repro packages pay for type-checking.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// config mirrors the JSON schema of the go command's vet config files
// (x/tools unitchecker.Config); fields the suite does not use are
// omitted and ignored by the decoder.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/numaws-vet.
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("numaws-vet: ")
	args := os.Args[1:]
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := runUnit(args[0], analyzers)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	}
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No flags of our own: the go command forwards nothing.
			fmt.Println("[]")
			return
		}
	}
	usage(analyzers)
	os.Exit(2)
}

// printVersion implements -V=full: the go command hashes this line into
// the build cache key, so it must change whenever the binary does.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], string(h.Sum(nil)))
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "numaws-vet: the repro module's analysis suite; run it via\n\n"+
		"\tgo build -o numaws-vet ./cmd/numaws-vet\n"+
		"\tgo vet -vettool=$(pwd)/numaws-vet ./...\n\nAnalyzers:\n\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "\t%s: %s\n", a.Name, a.Doc)
	}
}

// basePath strips the go command's test-variant marker: the unit for a
// package compiled with its in-package test files carries an ID like
// "repro/internal/sim [repro/internal/sim.test]", but the analyzers
// scope their contracts by plain import path.
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

type diag struct {
	posn    token.Position
	message string
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	// The go command caches a facts file per unit; the suite computes no
	// facts, so write it empty up front — then dependency units (VetxOnly,
	// or anything outside the module) are done without parsing a file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || !analysis.InModule(basePath(cfg.ImportPath)) {
		return 0, nil
	}
	diags, err := analyze(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.posn, d.message)
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// analyze type-checks one unit against its dependencies' export data
// and runs every analyzer over it.
func analyze(cfg *config, analyzers []*analysis.Analyzer) ([]diag, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Two-step import: the config's ImportMap canonicalizes the path as
	// written in source, then PackageFile locates that package's export
	// data for the compiler-specific importer.
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		return gcImporter.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tc.Check(basePath(cfg.ImportPath), fset, files, info)
	if err != nil {
		return nil, err
	}
	var out []diag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, diag{posn: fset.Position(d.Pos), message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].posn.Filename != out[j].posn.Filename {
			return out[i].posn.Filename < out[j].posn.Filename
		}
		return out[i].posn.Offset < out[j].posn.Offset
	})
	return out, nil
}
