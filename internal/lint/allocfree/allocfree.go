// Package allocfree guards the PR-3 hot-path work: the simulator layers
// that EXPERIMENTS.md ("Simulator performance") documents as
// allocation-free in steady state — the 4-ary event queue, the
// precomputed victim pickers and the THE deque — stay that way at compile
// time, not just when someone runs the ReportAllocs benchmarks.
//
// A function annotated `//numaws:alloc-free` in its doc comment is
// checked, without SSA, for every construct that heap-allocates on the
// happy path:
//
//   - make, new, append (append's amortized growth included — a reused
//     backing array that never grows again is waived per line with
//     `//numaws:alloc-ok <reason>`);
//   - composite literals of slice or map type, and &T{...};
//   - function literals (closure capture);
//   - go statements;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - boxing a non-pointer-shaped value into an interface;
//   - calls to anything not provably allocation-free: only builtins, a
//     small whitelist of stdlib packages (sync, sync/atomic, math,
//     math/bits, math/rand) and other `//numaws:alloc-free` functions are
//     legal callees; fmt in particular is flagged.
//
// Branches that unconditionally panic are exempt — panics are the failure
// path, and the repo funnels them through validated entry points whose
// messages may allocate (DESIGN.md: checkTime, checkNonEmpty).
//
// The analyzer also verifies coverage: the hot-path functions the docs
// name must actually carry the annotation, so deleting a comment (or the
// function) cannot silently retire the contract.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //numaws:alloc-free must not allocate on the happy path, and the " +
		"documented hot-path functions must carry the annotation; waive single sites with //numaws:alloc-ok <reason>",
	Run: run,
}

// annotation is the doc-comment marker naming a function allocation-free.
const annotation = "alloc-free"

// hotPath lists, per package, the functions the performance docs
// (EXPERIMENTS.md "Simulator performance", DESIGN.md "Hot-path
// architecture") rely on being allocation-free: the event queue, victim
// selection, and the THE deque. Each must carry the annotation — and the
// table doubles as the cross-package set of known-alloc-free callees.
var hotPath = map[string][]string{
	"repro/internal/sim": {
		"Queue.Push", "Queue.Pop", "Queue.Peek",
		"Picker.Pick", "RNG.PickUniformExcept",
	},
	"repro/internal/deque": {
		"Deque.PushTail", "Deque.PopTail", "Deque.StealHead", "Deque.StealHalf",
	},
}

// calleeWhitelist are stdlib packages whose functions and methods do not
// allocate on the paths hot-path code uses them for.
var calleeWhitelist = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"math/rand":   true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil
	}
	annotated := map[string]bool{}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			if analysis.HasAnnotation(fd, annotation) {
				annotated[declKey(fd)] = true
			}
		}
	}
	checkCoverage(pass, decls, annotated)
	for _, fd := range decls {
		if annotated[declKey(fd)] && fd.Body != nil {
			c := &checker{pass: pass, annotated: annotated}
			c.sup = analysis.NewSuppressions(pass.Fset, enclosingFile(pass, fd))
			c.block(fd.Body)
		}
	}
	return nil
}

// declKey names a declaration as Recv.Name or Name.
func declKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the receiver's type name, stripping pointers and
// type parameters (*Deque[T] -> Deque).
func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// checkCoverage verifies that every hot-path function the docs name
// exists and carries the annotation.
func checkCoverage(pass *analysis.Pass, decls []*ast.FuncDecl, annotated map[string]bool) {
	required := hotPath[pass.Pkg.Path()]
	if len(required) == 0 {
		return
	}
	byKey := map[string]*ast.FuncDecl{}
	for _, fd := range decls {
		byKey[declKey(fd)] = fd
	}
	for _, key := range required {
		fd, ok := byKey[key]
		if !ok {
			if len(pass.Files) > 0 {
				pass.Reportf(pass.Files[0].Name.Pos(),
					"hot-path function %s named by EXPERIMENTS.md is missing from %s — "+
						"update the allocfree analyzer's hotPath table if it moved",
					key, pass.Pkg.Path())
			}
			continue
		}
		if !annotated[key] {
			pass.Reportf(fd.Name.Pos(),
				"hot-path function %s must be annotated //numaws:alloc-free (EXPERIMENTS.md pins it allocation-free)", key)
		}
	}
}

func enclosingFile(pass *analysis.Pass, fd *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= fd.Pos() && fd.Pos() <= f.FileEnd {
			return f
		}
	}
	return pass.Files[0]
}

// checker walks one annotated function body.
type checker struct {
	pass      *analysis.Pass
	annotated map[string]bool
	sup       *analysis.Suppressions
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	ok, hasReason := c.sup.Suppressed("alloc-ok", n.Pos())
	if ok && hasReason {
		return
	}
	if ok {
		c.pass.Reportf(n.Pos(), "numaws:alloc-ok suppression is missing its mandatory reason")
		return
	}
	c.pass.Reportf(n.Pos(), format, args...)
}

// block walks a statement block, skipping branches that unconditionally
// panic (the validated failure paths).
func (c *checker) block(b *ast.BlockStmt) {
	if panics(b) {
		return
	}
	for _, stmt := range b.List {
		c.stmt(stmt)
	}
}

// panics reports whether the block's control flow ends in a panic call.
func panics(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.block(s)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.block(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Post)
		c.block(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.block(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.expr(s.Tag)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CaseClause)
			for _, e := range cc.List {
				c.expr(e)
			}
			for _, st := range cc.Body {
				c.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Type switches inspect an interface (no allocation), but hot-path
		// code has no business doing either; walk generically.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.expr(e)
				return false
			}
			return true
		})
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			c.expr(rhs)
			if len(s.Lhs) == len(s.Rhs) {
				c.checkBox(rhs, c.lhsType(s.Lhs[i]))
			}
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.DeferStmt:
		// defer of a func literal is caught by expr's FuncLit case; defer
		// of a method call (mutex unlock) is fine and open-coded.
		c.call(s.Call)
	case *ast.GoStmt:
		c.report(s, "go statement spawns a goroutine (allocates a stack) in an alloc-free function")
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, v := range vs.Values {
				c.expr(v)
				if len(vs.Names) == len(vs.Values) {
					if obj := c.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
						c.checkBox(v, obj.Type())
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			c.stmt(ls.Stmt)
		}
	}
}

// lhsType resolves the static type of an assignment target.
func (c *checker) lhsType(lhs ast.Expr) types.Type {
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := c.pass.TypesInfo.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		c.call(e)
	case *ast.FuncLit:
		c.report(e, "function literal captures its closure on the heap in an alloc-free function")
	case *ast.CompositeLit:
		c.composite(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.report(e, "&composite literal escapes to the heap in an alloc-free function")
				return
			}
		}
		c.expr(e.X)
	case *ast.BinaryExpr:
		c.expr(e.X)
		c.expr(e.Y)
		if e.Op == token.ADD {
			if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(e, "string concatenation allocates in an alloc-free function")
				}
			}
		}
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	}
}

// composite flags slice/map composite literals; value struct and array
// literals stay on the stack.
func (c *checker) composite(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			c.expr(kv.Value)
		} else {
			c.expr(elt)
		}
	}
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit, "slice literal allocates its backing array in an alloc-free function")
	case *types.Map:
		c.report(lit, "map literal allocates in an alloc-free function")
	}
}

// call checks one call expression: builtins, conversions, then callee
// discipline and argument boxing.
func (c *checker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				c.report(call, "make allocates in an alloc-free function")
			case "new":
				c.report(call, "new allocates in an alloc-free function")
			case "append":
				c.report(call, "append may grow its backing array in an alloc-free function; "+
					"waive a provably amortized site with //numaws:alloc-ok <reason>")
			case "panic":
				// Failure path: the panic value and its construction are
				// exempt, including fmt calls inside the argument.
				return
			}
			for _, arg := range call.Args {
				c.expr(arg)
			}
			return
		}
	}

	// Conversion?
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			c.expr(arg)
			c.checkConversion(call, tv.Type, arg)
		}
		return
	}

	// Regular call: arguments first.
	for _, arg := range call.Args {
		c.expr(arg)
	}
	fn := c.callee(call)
	if fn == nil {
		c.report(call, "dynamic call (function value or interface method) in an alloc-free function: "+
			"the callee cannot be proven allocation-free")
		return
	}
	c.checkCallee(call, fn)
	c.checkArgBoxing(call, fn)
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkCallee enforces the callee discipline: whitelisted stdlib,
// same-package annotated functions, or cross-package hot-path functions.
func (c *checker) checkCallee(call *ast.CallExpr, fn *types.Func) {
	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error etc. on universe types
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			c.report(call, "interface method call %s.%s in an alloc-free function: the dynamic callee "+
				"cannot be proven allocation-free", pkg.Name(), fn.Name())
			return
		}
	}
	key := funcKey(fn)
	if pkg == c.pass.Pkg {
		if !c.annotated[key] {
			c.report(call, "call to %s, which is not annotated //numaws:alloc-free", key)
		}
		return
	}
	if calleeWhitelist[pkg.Path()] {
		return
	}
	for _, k := range hotPath[pkg.Path()] {
		if k == key {
			return
		}
	}
	c.report(call, "call to %s.%s, which is not allocation-free (not whitelisted, not a documented "+
		"hot-path function)", pkg.Path(), key)
}

// funcKey names a types.Func as Recv.Name or Name, mirroring declKey.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name() + "." + fn.Name()
	case *types.Alias:
		return t.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkConversion flags converting between string and byte/rune slices.
func (c *checker) checkConversion(at ast.Node, dst types.Type, src ast.Expr) {
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok {
		return
	}
	dstStr := isString(dst)
	srcStr := isString(tv.Type)
	_, dstSlice := dst.Underlying().(*types.Slice)
	_, srcSlice := tv.Type.Underlying().(*types.Slice)
	if (dstStr && srcSlice) || (dstSlice && srcStr) {
		c.report(at, "string<->slice conversion copies and allocates in an alloc-free function")
	}
	c.checkBox(src, dst)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkArgBoxing flags arguments boxed into interface parameters.
func (c *checker) checkArgBoxing(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(arg, pt)
	}
}

// checkBox flags storing a non-pointer-shaped concrete value into an
// interface-typed destination.
func (c *checker) checkBox(src ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the interface data word holds it directly
	}
	c.report(src, "value of type %s is boxed into interface %s (heap allocation) in an alloc-free function",
		st, dst)
}
