// Package deque shadows the real THE-protocol deque with StealHead
// deleted: the coverage check must notice the documented hot-path
// function is gone rather than silently retiring the contract.
package deque // want `hot-path function Deque\.StealHead named by EXPERIMENTS\.md is missing from repro/internal/deque`

// Deque is a stand-in for the work-stealing deque.
type Deque struct{ items []int }

//numaws:alloc-free
func (d *Deque) PushTail(v int) {
	d.items[0] = v
}

//numaws:alloc-free
func (d *Deque) PopTail() (int, bool) { return 0, false }
