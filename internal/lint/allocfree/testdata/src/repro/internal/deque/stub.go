// Package deque shadows the real THE-protocol deque with StealHead
// deleted: the coverage check must notice the documented hot-path
// function is gone rather than silently retiring the contract.
package deque // want `hot-path function Deque\.StealHead named by EXPERIMENTS\.md is missing from repro/internal/deque`

// Deque is a stand-in for the work-stealing deque.
type Deque struct{ items []int }

//numaws:alloc-free
func (d *Deque) PushTail(v int) {
	d.items[0] = v
}

//numaws:alloc-free
func (d *Deque) PopTail() (int, bool) { return 0, false }

// StealHalf is present and annotated, but its amortized-growth waiver
// lost its reason — on the bulk-steal hot path that is itself a finding,
// not a free pass.
//
//numaws:alloc-free
func (d *Deque) StealHalf(dst []int) int {
	//numaws:alloc-ok
	d.items = append(d.items, 0) // want `numaws:alloc-ok suppression is missing its mandatory reason`
	return len(dst)
}
