// Package allocfix exercises the allocfree checker construct by
// construct: every heap-allocating shape it promises to flag, every
// exemption it promises to honor.
package allocfix

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

type counter struct {
	mu  sync.Mutex
	n   int
	buf []int
}

// helper is annotated and clean: legal callee for other annotated code.
//
//numaws:alloc-free
func helper(x int) int { return x * 2 }

// notAnnotated is a same-package callee without the annotation.
func notAnnotated() int { return 1 }

//numaws:alloc-free
func makes() []int {
	return make([]int, 4) // want `make allocates`
}

//numaws:alloc-free
func news() *counter {
	return new(counter) // want `new allocates`
}

//numaws:alloc-free
func (c *counter) push(v int) {
	c.buf = append(c.buf, v) // want `append may grow its backing array`
}

//numaws:alloc-free
func (c *counter) pushWaived(v int) {
	c.buf = append(c.buf, v) //numaws:alloc-ok capacity reserved at construction; steady state never grows
}

//numaws:alloc-free
func (c *counter) pushLazyWaiver(v int) {
	//numaws:alloc-ok
	c.buf = append(c.buf, v) // want `numaws:alloc-ok suppression is missing its mandatory reason`
}

//numaws:alloc-free
func closure() func() int {
	return func() int { return 1 } // want `function literal captures its closure`
}

//numaws:alloc-free
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates its backing array`
}

//numaws:alloc-free
func mapLit() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

//numaws:alloc-free
func addrLit() *counter {
	return &counter{} // want `&composite literal escapes to the heap`
}

// Value struct literals stay on the stack.
//
//numaws:alloc-free
func structLit() counter {
	return counter{n: 1}
}

//numaws:alloc-free
func spawns() {
	go notAnnotated() // want `go statement spawns a goroutine`
}

//numaws:alloc-free
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// Constant folding happens at compile time: no allocation.
//
//numaws:alloc-free
func constConcat() string {
	return "alloc" + "free"
}

//numaws:alloc-free
func convert(s string) []byte {
	return []byte(s) // want `string<->slice conversion copies`
}

//numaws:alloc-free
func convertBack(b []byte) string {
	return string(b) // want `string<->slice conversion copies`
}

// Numeric conversions are free.
//
//numaws:alloc-free
func widen(x int32) int64 {
	return int64(x)
}

//numaws:alloc-free
func dynamic(f func() int) int {
	return f() // want `dynamic call`
}

type sink interface{ use() }

type small struct{ n int }

func (s small) use() {}

//numaws:alloc-free
func callIface(s sink) {
	s.use() // want `interface method call allocfix\.use`
}

//numaws:alloc-free
func box(s small) sink {
	var i sink = s // want `value of type repro/internal/allocfix\.small is boxed into interface`
	return i
}

// Pointer-shaped values fit the interface data word directly.
//
//numaws:alloc-free
func boxPtr(p *small) {
	var i any = p
	_ = i
}

//numaws:alloc-free
func callsUnannotated() int {
	return notAnnotated() // want `call to notAnnotated, which is not annotated`
}

//numaws:alloc-free
func callsHelper() int {
	return helper(3)
}

// Whitelisted stdlib: sync never allocates on lock/unlock.
//
//numaws:alloc-free
func (c *counter) incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

//numaws:alloc-free
func format() string {
	return fmt.Sprintf("hi") // want `call to fmt\.Sprintf, which is not allocation-free`
}

// Branches that unconditionally panic are the validated failure path:
// their allocations are exempt.
//
//numaws:alloc-free
func guard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("allocfix: negative %d", n))
	}
	return n
}

// Cross-package hot-path functions from the analyzer's table are legal
// callees.
//
//numaws:alloc-free
func enqueue(q *sim.Queue) {
	q.Push(1, 2)
}
