// Package sim shadows the real event-queue package to test annotation
// coverage: all documented hot-path functions exist, one lacks its
// annotation.
package sim

type item struct{ key, tick int64 }

// Queue is a stand-in for the 4-ary event heap.
type Queue struct{ h []item }

//numaws:alloc-free
func (q *Queue) Push(k, t int64) {
	q.h = append(q.h, item{k, t}) //numaws:alloc-ok heap capacity is reserved up front; steady state never grows
}

//numaws:alloc-free
func (q *Queue) Pop() int64 {
	it := q.h[len(q.h)-1]
	q.h = q.h[:len(q.h)-1]
	return it.key
}

//numaws:alloc-free
func (q *Queue) Peek() int64 { return q.h[0].key }

// Picker is a stand-in for the precomputed victim picker.
type Picker struct{ cum []float64 }

//numaws:alloc-free
func (p *Picker) Pick(x float64) int { return len(p.cum) }

// RNG is a stand-in for the seeded per-worker RNG.
type RNG struct{ state uint64 }

func (g *RNG) PickUniformExcept(n, except int) int { // want `hot-path function RNG\.PickUniformExcept must be annotated //numaws:alloc-free`
	return n - 1
}
