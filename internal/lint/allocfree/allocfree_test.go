package allocfree_test

import (
	"testing"

	"repro/internal/lint/allocfree"
	"repro/internal/lint/lintest"
)

func TestAllocFree(t *testing.T) {
	lintest.Run(t, "testdata", allocfree.Analyzer,
		"repro/internal/allocfix", // construct-by-construct annotation checks
		"repro/internal/sim",      // coverage: hot-path function lacking the annotation
		"repro/internal/deque",    // coverage: hot-path function missing outright
	)
}
