// Package determinism enforces the repo's foundational contract: a
// simulation run is a pure function of (program, configuration, seed).
// DESIGN.md pins this dynamically with the paper-4x8 golden file; this
// analyzer makes the three ways contributors actually break it fail
// `go vet` instead of drifting until a golden diff appears:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — virtual time
//     is the only clock the simulator knows;
//   - the global math/rand (and math/rand/v2) top-level functions, whose
//     stream is shared, unseeded process state. Seeded sources
//     (rand.New(rand.NewSource(seed))) remain legal — they are exactly
//     how sim.RNG derives per-run randomness;
//   - ranging over a map, whose iteration order is deliberately
//     randomized by the runtime. The one recognized-safe shape is the
//     collect-then-sort idiom: a body that only appends the keys/values
//     to slices, each of which is later sorted in the same function.
//
// Scope: the deterministic core — internal/{sim,sched,cache,core,dag,
// workloads,harness,metrics} — excluding _test.go files. A violation that
// is provably order-independent (e.g. a max-reduction with a total-order
// tie-break) is waived line-by-line with `//numaws:nondet-ok <reason>`;
// the reason is mandatory.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the determinism contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, global math/rand and unordered map iteration in the simulator core; " +
		"suppress provably order-independent sites with //numaws:nondet-ok <reason>",
	Run: run,
}

// scope lists the packages (and their subpackages) whose code must be
// deterministic: everything a simulated event stream or a metrics row
// passes through.
var scope = []string{
	"repro/internal/sim",
	"repro/internal/sched",
	"repro/internal/cache",
	"repro/internal/core",
	"repro/internal/dag",
	"repro/internal/workloads",
	"repro/internal/harness",
	"repro/internal/metrics",
}

// bannedFuncs maps package path → function names whose call sites break
// determinism.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
		"Until": "reads the wall clock",
	},
	// The global top-level functions draw from a shared, unseeded
	// process-wide stream; New/NewSource/NewPCG etc. stay legal.
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "", "ExpFloat64": "",
		"NormFloat64": "", "Perm": "", "Shuffle": "", "Read": "", "Seed": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
}

func inScope(path string) bool {
	for _, p := range scope {
		if analysis.InPackage(path, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		sup := analysis.NewSuppressions(pass.Fset, file)
		report := func(pos ast.Node, format string, args ...any) {
			ok, hasReason := sup.Suppressed("nondet-ok", pos.Pos())
			if ok && hasReason {
				return
			}
			if ok {
				pass.Reportf(pos.Pos(), "numaws:nondet-ok suppression is missing its mandatory reason")
				return
			}
			pass.Reportf(pos.Pos(), format, args...)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, report, n)
			case *ast.RangeStmt:
				checkRange(pass, report, file, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags calls to the banned wall-clock and global-rand
// functions.
func checkCall(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions are banned; methods on seeded values
	// ((*rand.Rand).Intn) are the sanctioned replacement.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	names, ok := bannedFuncs[fn.Pkg().Path()]
	if !ok {
		return
	}
	why, ok := names[fn.Name()]
	if !ok {
		return
	}
	if why == "" {
		why = "draws from the shared global stream; use a seeded rand.New(rand.NewSource(seed))"
	}
	report(call, "call to %s.%s %s — simulator code must be deterministic in (program, config, seed)",
		fn.Pkg().Path(), fn.Name(), why)
}

// calleeFunc resolves a call's static callee, if it is a named function
// or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkRange flags `for ... range m` over a map unless the body is the
// collect-then-sort idiom.
func checkRange(pass *analysis.Pass, report func(ast.Node, string, ...any), file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if collectThenSort(pass, file, rng) {
		return
	}
	report(rng, "unordered iteration over %s: map range order is randomized; "+
		"collect the keys and sort, or waive with //numaws:nondet-ok <reason> if provably order-independent",
		tv.Type)
}

// collectThenSort reports whether every statement of the range body is an
// append of loop variables into a slice, and every such slice is passed
// to a sort call later in the enclosing function — the one map-iteration
// shape whose result is order-independent by construction.
func collectThenSort(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	var collected []*ast.Ident
	for _, stmt := range rng.Body.List {
		target, ok := appendTarget(stmt)
		if !ok {
			return false
		}
		collected = append(collected, target)
	}
	// Find the enclosing function body to search for the sort calls.
	encl := enclosingFuncBody(file, rng)
	if encl == nil {
		return false
	}
	for _, target := range collected {
		if !sortedAfter(pass, encl, rng, target) {
			return false
		}
	}
	return true
}

// appendTarget matches `x = append(x, ...)` and returns x.
func appendTarget(stmt ast.Stmt) (*ast.Ident, bool) {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil, false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil, false
	}
	return lhs, true
}

// sortFuncs are the stdlib entry points that establish a deterministic
// order over a collected slice.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether target is the first argument of a sort call
// positioned after the range statement inside body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		if names, ok := sortFuncs[fn.Pkg().Path()]; !ok || !names[fn.Name()] {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if ok && obj != nil && pass.TypesInfo.Uses[arg] == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFuncBody returns the body of the innermost function containing
// pos.
func enclosingFuncBody(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(cand ast.Node) bool {
		if cand == nil {
			return false
		}
		if cand.Pos() > n.Pos() || cand.End() < n.End() {
			return false
		}
		switch f := cand.(type) {
		case *ast.FuncDecl:
			if f.Body != nil {
				body = f.Body
			}
		case *ast.FuncLit:
			body = f.Body
		}
		return true
	})
	return body
}
