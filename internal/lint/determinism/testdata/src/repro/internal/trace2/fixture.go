// Package trace2 impersonates a package outside the determinism scope:
// host-side tooling may read clocks and iterate maps freely, so none of
// these lines carries a want comment.
package trace2

import "time"

func hostClock() time.Time { return time.Now() }

func hostKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
