// Package sim is a determinism fixture impersonating the scoped package
// repro/internal/sim. Lines marked `want` must be flagged; everything
// else must pass — in particular the seeded-rand and collect-then-sort
// false-positive cases the contract legalizes.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func wallClock() int64 {
	t := time.Now()             // want `call to time\.Now reads the wall clock`
	return int64(time.Until(t)) // want `call to time\.Until reads the wall clock`
}

func wallClockSince(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since reads the wall clock`
}

func wallClockUntil(t time.Time) time.Duration {
	return time.Until(t) // want `call to time\.Until reads the wall clock`
}

// Virtual-time arithmetic on time.Duration values is fine: only the
// wall-clock reads are banned.
func durations(a, b time.Duration) time.Duration { return a + b }

// --- global math/rand ---

func globalRand() int {
	return rand.Intn(4) // want `call to math/rand\.Intn draws from the shared global stream`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to math/rand\.Shuffle`
}

// Seeded sources are the sanctioned form: rand.New and the methods on the
// resulting *rand.Rand must pass.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

// --- map iteration ---

func unorderedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `unordered iteration over map\[string\]int`
		out = append(out, k+"!")
	}
	return out
}

func unorderedSum(m map[string]int) int {
	// Even a commutative-looking body is flagged: the analyzer cannot
	// prove float summation or early returns order-independent.
	sum := 0
	for _, v := range m { // want `unordered iteration over map\[string\]int`
		sum += v
	}
	return sum
}

// The collect-then-sort idiom is recognized: append keys, sort after.
func sortedKeys(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sort.Slice counts as establishing an order too.
func sortedValues(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Collecting without sorting afterwards is still unordered.
func collectedUnsorted(m map[string]int) []string {
	var names []string
	for name := range m { // want `unordered iteration over map\[string\]int`
		names = append(names, name)
	}
	return names
}

// A provably order-independent reduction is waived with a reasoned
// suppression.
func maxValue(m map[int]int) int {
	best := -1
	//numaws:nondet-ok max-reduction with deterministic tie-break on the key
	for k, v := range m {
		if v > best || (v == best && k > 0) {
			best = v
		}
	}
	return best
}

// A suppression without its reason is itself a finding.
func lazyWaiver(m map[int]int) {
	//numaws:nondet-ok
	for range m { // want `numaws:nondet-ok suppression is missing its mandatory reason`
	}
}

// Ranging over slices stays silent.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
