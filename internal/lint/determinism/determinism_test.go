package determinism_test

import (
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/lintest"
)

func TestDeterminism(t *testing.T) {
	lintest.Run(t, "testdata", determinism.Analyzer,
		"repro/internal/sim",    // seeded defects: clocks, global rand, map ranges
		"repro/internal/trace2", // out-of-scope package: same code, no diagnostics
	)
}
