package registryinit_test

import (
	"testing"

	"repro/internal/lint/lintest"
	"repro/internal/lint/registryinit"
)

func TestRegistryInit(t *testing.T) {
	lintest.Run(t, "testdata", registryinit.Analyzer,
		"repro/internal/regfix",
		"repro/cmd/regtool",
	)
}
