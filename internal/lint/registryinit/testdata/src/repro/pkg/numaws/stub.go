// Package numaws stubs the facade's embedder registration hooks.
package numaws

type BenchmarkDef struct{ Name string }

func RegisterBenchmark(def BenchmarkDef) error { return nil }

type PolicyDef struct{ Name string }

func RegisterPolicy(def PolicyDef) error { return nil }
