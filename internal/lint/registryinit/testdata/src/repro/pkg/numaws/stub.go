// Package numaws stubs the facade's embedder registration hook.
package numaws

type BenchmarkDef struct{ Name string }

func RegisterBenchmark(def BenchmarkDef) error { return nil }
