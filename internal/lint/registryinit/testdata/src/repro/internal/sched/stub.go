// Package sched stubs the policy registry: only the registration entry
// point's identity matters to the analyzer.
package sched

type Policy interface{ Name() string }

func Register(p Policy) {}
