package regfix

import "repro/internal/sched"

// Test files are exempt wholesale: tests register fakes and tear them
// down, and run under `go test`, not in an embedder's binary.
func registerFakeForTest() {
	sched.Register(steal{})
}

// TestMain is initialization time even outside a _test.go exemption.
func TestMain(m interface{ Run() int }) {
	sched.Register(steal{})
}
