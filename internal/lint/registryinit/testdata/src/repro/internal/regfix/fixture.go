// Package regfix seeds registration-time defects against the stub
// registries.
package regfix

import (
	"repro/internal/sched"
	"repro/internal/workloads"
)

type steal struct{}

func (steal) Name() string { return "steal" }

// Registration from init is the sanctioned form.
func init() {
	sched.Register(steal{})
	workloads.Register("fib", func(workloads.Scale) workloads.Spec {
		return workloads.Spec{Name: "fib"}
	})
}

// Late registration races the duplicate-name panic and the name-sorted
// snapshots.
func EnablePolicy() {
	sched.Register(steal{}) // want `sched\.Register called from EnablePolicy`
}

func enableBench(name string) {
	workloads.Register(name, nil) // want `workloads\.Register called from enableBench`
}

// A deliberate exception carries its reason.
func reloadPolicies() {
	//numaws:register-ok re-registration behind the config-reload mutex, names pre-validated
	sched.Register(steal{})
}

// A reasonless waiver is itself a finding.
func reloadLazily() {
	//numaws:register-ok
	sched.Register(steal{}) // want `numaws:register-ok suppression is missing its mandatory reason`
}
