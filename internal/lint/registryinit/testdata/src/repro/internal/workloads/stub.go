// Package workloads stubs the benchmark registry.
package workloads

type Spec struct{ Name string }

type Scale int

type Builder func(Scale) Spec

func Register(name string, b Builder) {}
