// Command regtool seeds the defect the real tree contained: registering
// an embedder benchmark from main instead of init — and its policy-axis
// twin, registering a facade policy after the program is up.
package main

import "repro/pkg/numaws"

func init() {
	if err := numaws.RegisterBenchmark(numaws.BenchmarkDef{Name: "scan"}); err != nil {
		panic(err)
	}
	if err := numaws.RegisterPolicy(numaws.PolicyDef{Name: "ring"}); err != nil {
		panic(err)
	}
}

func main() {
	_ = numaws.RegisterBenchmark(numaws.BenchmarkDef{Name: "late"}) // want `numaws\.RegisterBenchmark called from main`
	_ = numaws.RegisterPolicy(numaws.PolicyDef{Name: "late"})       // want `numaws\.RegisterPolicy called from main`
}
