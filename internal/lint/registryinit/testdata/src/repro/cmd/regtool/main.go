// Command regtool seeds the defect the real tree contained: registering
// an embedder benchmark from main instead of init.
package main

import "repro/pkg/numaws"

func init() {
	if err := numaws.RegisterBenchmark(numaws.BenchmarkDef{Name: "scan"}); err != nil {
		panic(err)
	}
}

func main() {
	_ = numaws.RegisterBenchmark(numaws.BenchmarkDef{Name: "late"}) // want `numaws\.RegisterBenchmark called from main`
}
