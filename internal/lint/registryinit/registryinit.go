// Package registryinit pins when the name-keyed registries — the policy
// axis (sched.Register), the benchmark axis (workloads.Register) and the
// facade's embedder hooks (numaws.RegisterBenchmark and
// numaws.RegisterPolicy) — may be populated: from init functions, from
// TestMain, or from test code.
//
// All three registries panic on a duplicate name and are read by
// name-sorted snapshots; registration after the program is up races both
// the duplicate-name panic and any in-flight snapshot. Confining
// registration to initialization time makes the registries effectively
// immutable for the life of the process, which is what the planned
// long-running sweep service requires before external code plugs in.
//
// Scope: every package in the module; _test.go files are exempt
// wholesale (tests register fakes and tear them down). A deliberate
// exception is waived with `//numaws:register-ok <reason>`.
package registryinit

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the registration-time checker.
var Analyzer = &analysis.Analyzer{
	Name: "registryinit",
	Doc: "registry Register calls happen only in init functions, TestMain or tests; " +
		"waive with //numaws:register-ok <reason>",
	Run: run,
}

// registerFuncs are the guarded registration entry points, by defining
// package path.
var registerFuncs = map[string]map[string]bool{
	"repro/internal/sched":     {"Register": true},
	"repro/internal/workloads": {"Register": true},
	"repro/pkg/numaws":         {"RegisterBenchmark": true, "RegisterPolicy": true},
}

func run(pass *analysis.Pass) error {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		sup := analysis.NewSuppressions(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowedContext(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(pass, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				names, ok := registerFuncs[fn.Pkg().Path()]
				if !ok || !names[fn.Name()] {
					return true
				}
				ok, hasReason := sup.Suppressed("register-ok", call.Pos())
				if ok && hasReason {
					return true
				}
				if ok {
					pass.Reportf(call.Pos(), "numaws:register-ok suppression is missing its mandatory reason")
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s called from %s: registries are populated in init functions (or TestMain/tests) — "+
						"late registration races the duplicate-name panic and name-sorted snapshots",
					fn.Pkg().Name(), fn.Name(), fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

// allowedContext reports whether fd is an initialization-time function:
// init or TestMain.
func allowedContext(fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	return fd.Name.Name == "init" || fd.Name.Name == "TestMain"
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
