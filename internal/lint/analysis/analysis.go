// Package analysis is the repo's in-tree miniature of
// golang.org/x/tools/go/analysis: just enough framework to express the
// numaws-vet analyzers as (name, doc, run) triples over a type-checked
// package and drive them from both `go vet -vettool` (internal/lint/unit)
// and in-process tests (internal/lint/lintest).
//
// The repo vendors no third-party code, so the x/tools module is not
// available; this package deliberately mirrors its shape — Analyzer, Pass,
// Diagnostic, Pass.Reportf — so that the analyzers read like standard
// go/analysis code and could be ported to the real framework by swapping
// one import. Facts, analyzer dependencies and suggested fixes are omitted:
// every numaws contract below is checkable one package at a time.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModulePath is the module all contracts apply to. Analyzers no-op on any
// package outside it (go vet runs the vettool over the whole dependency
// graph, standard library included), and the unit driver skips loading
// such packages entirely.
const ModulePath = "repro"

// InModule reports whether pkgpath belongs to the repo module, including
// the test variants and synthesized test-main packages go vet analyzes
// ("repro/pkg/numaws.test").
func InModule(pkgpath string) bool {
	return pkgpath == ModulePath || strings.HasPrefix(pkgpath, ModulePath+"/") ||
		strings.HasPrefix(pkgpath, ModulePath+".")
}

// InPackage reports whether pkgpath is exactly pkg or one of its
// subpackages.
func InPackage(pkgpath, pkg string) bool {
	return pkgpath == pkg || strings.HasPrefix(pkgpath, pkg+"/")
}

// An Analyzer is one statically checkable contract.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the multichecker
	// command line. Lower-case, no spaces.
	Name string

	// Doc states the contract the analyzer enforces and its suppression
	// mechanism, first sentence first.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the error return is for operational failures only
	// (it aborts the whole run, not just this package).
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Every numaws
// contract exempts test code: tests may freely use wall clocks, late
// registration and internal types — they run under `go test`, not in an
// embedder's binary.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}
