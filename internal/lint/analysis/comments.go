package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression and annotation comments. All numaws-vet markers share the
// machine-readable `//numaws:<verb>` prefix (the same convention as
// `//go:build` — no space after the slashes):
//
//	//numaws:alloc-free            annotates a function as hot-path
//	                               allocation-free (checked by allocfree)
//	//numaws:nondet-ok <reason>    suppresses one determinism diagnostic
//	//numaws:alloc-ok <reason>     suppresses one allocfree diagnostic
//	//numaws:ctx-ok <reason>       suppresses one ctxfirst diagnostic
//	//numaws:register-ok <reason>  suppresses one registryinit diagnostic
//	//numaws:recover-ok <reason>   suppresses one panicsafe diagnostic
//
// A suppression applies to the line it sits on, or — as a standalone
// comment line — to the line directly below it. The reason is mandatory:
// a suppression without one is itself reported, so every waiver in the
// tree explains itself.

// Suppressions indexes one file's numaws suppression comments by line.
type Suppressions struct {
	fset *token.FileSet
	// byLine maps a source line to the marker comment covering it.
	byLine map[int]markerComment
}

type markerComment struct {
	verb   string // e.g. "nondet-ok"
	reason string
	pos    token.Pos
}

// NewSuppressions indexes every `//numaws:` marker comment in file.
func NewSuppressions(fset *token.FileSet, file *ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLine: map[int]markerComment{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			verb, reason, ok := parseMarker(c.Text)
			if !ok || verb == "alloc-free" {
				continue
			}
			line := fset.Position(c.Slash).Line
			m := markerComment{verb: verb, reason: reason, pos: c.Slash}
			s.byLine[line] = m
			// A standalone marker comment covers the next line. Column 1
			// is not required — the marker may be indented with the code
			// it waives.
			s.byLine[line+1] = m
		}
	}
	return s
}

// Suppressed reports whether a diagnostic with the given verb at pos is
// waived by a marker comment, and whether that marker carries the
// mandatory reason.
func (s *Suppressions) Suppressed(verb string, pos token.Pos) (ok, hasReason bool) {
	m, found := s.byLine[s.fset.Position(pos).Line]
	if !found || m.verb != verb {
		return false, false
	}
	return true, m.reason != ""
}

// parseMarker splits a `//numaws:verb reason...` comment.
func parseMarker(text string) (verb, reason string, ok bool) {
	const prefix = "//numaws:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	verb, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(reason), verb != ""
}

// HasAnnotation reports whether the function declaration's doc comment
// carries the given `//numaws:<verb>` annotation.
func HasAnnotation(decl *ast.FuncDecl, verb string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if v, _, ok := parseMarker(c.Text); ok && v == verb {
			return true
		}
	}
	return false
}
