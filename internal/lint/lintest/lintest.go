// Package lintest is the in-process test driver for the numaws-vet
// analyzers: the repo's miniature of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under each analyzer's testdata/src directory,
// keyed by import path (testdata/src/repro/internal/sim holds a package
// whose import path is repro/internal/sim — analyzers scope their
// contracts by path, so fixtures impersonate real packages). Expected
// diagnostics are `// want "regexp"` comments on the offending line,
// exactly as in analysistest; a fixture line with no want comment must
// produce no diagnostic.
//
// The loader type-checks fixtures from source with a three-root importer —
// testdata/src first, then the real module, then GOROOT/src — so fixtures
// may import small stdlib packages (time, math/rand, context, sort) and
// stub out repro packages by shadowing their path under testdata/src. No
// export data, no go command, no network: `go test` is the only driver.
package lintest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source, memoizing shared
// dependencies (the stdlib closure in particular) across loads.
type Loader struct {
	// TestdataSrc, when non-empty, is the <testdata>/src directory
	// searched first for every import path.
	TestdataSrc string

	once sync.Once
	fset *token.FileSet
	mu   sync.Mutex
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg *types.Package
	err error
}

// sharedLoader memoizes the stdlib and module closure across every test
// in the process; per-testdata loaders chain to it for non-fixture paths.
var sharedLoader = &Loader{}

// SharedLoader returns the process-wide loader with no fixture shadowing:
// every path resolves to the real module or GOROOT source. The selfcheck
// test uses it to analyze the repo itself.
func SharedLoader() *Loader { return sharedLoader }

// NewLoader returns a loader rooted at the given testdata directory
// (usually "testdata" relative to the test). Fixture paths shadow module
// and stdlib paths.
func NewLoader(testdata string) *Loader {
	abs, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		abs = filepath.Join(testdata, "src")
	}
	return &Loader{TestdataSrc: abs}
}

func (l *Loader) init() {
	l.once.Do(func() {
		l.fset = token.NewFileSet()
		l.pkgs = map[string]*loadResult{}
	})
}

// moduleRoot locates the repo checkout so fixture and selfcheck loads can
// resolve "repro/..." imports from source. The test binary runs somewhere
// inside the module, so walk up from the working directory to go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lintest: no go.mod above working directory")
		}
		dir = parent
	}
}

// dirFor resolves an import path to the directory holding its source, in
// shadowing order: testdata/src, the module checkout, GOROOT/src.
func (l *Loader) dirFor(path string) (string, error) {
	if l.TestdataSrc != "" {
		dir := filepath.Join(l.TestdataSrc, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	if analysis.InModule(path) {
		root, err := moduleRoot()
		if err != nil {
			return "", err
		}
		rel := strings.TrimPrefix(path, analysis.ModulePath)
		return filepath.Join(root, filepath.FromSlash(rel)), nil
	}
	dir := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	// Stdlib packages (net, net/http, crypto/tls) import golang.org/x
	// packages vendored into GOROOT; resolve those from the vendor tree,
	// exactly as the go command does.
	dir = filepath.Join(runtime.GOROOT(), "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("lintest: cannot resolve import %q", path)
}

// Import implements types.Importer: dependencies are loaded without test
// files or type-checking info retention. Fixture-shadowed paths load from
// this loader; everything else goes through the process-wide shared
// loader so the stdlib is type-checked once per test binary.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.init()
	if l != sharedLoader && !l.shadowed(path) {
		return sharedLoader.Import(path)
	}
	l.mu.Lock()
	if r, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return r.pkg, r.err
	}
	// Reserve the slot to fail fast on import cycles instead of
	// recursing forever.
	l.pkgs[path] = &loadResult{err: fmt.Errorf("lintest: import cycle through %q", path)}
	l.mu.Unlock()

	pkg, _, _, err := l.load(path, false)
	l.mu.Lock()
	l.pkgs[path] = &loadResult{pkg: pkg, err: err}
	l.mu.Unlock()
	return pkg, err
}

func (l *Loader) shadowed(path string) bool {
	if l.TestdataSrc == "" {
		return false
	}
	fi, err := os.Stat(filepath.Join(l.TestdataSrc, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// load parses and type-checks one package. includeTests merges in-package
// _test.go files (fixture targets only). The returned Info is populated
// only when includeInfo… callers needing analysis use LoadPackage.
func (l *Loader) load(path string, includeTests bool) (*types.Package, []*ast.File, *types.Info, error) {
	l.init()
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, nil, nil, err
	}
	names, err := sourceFiles(dir, includeTests)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lintest: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("lintest: %s: no Go source in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer:  l,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: "go1.24",
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return pkg, files, info, fmt.Errorf("lintest: type-checking %s: %w", path, err)
	}
	return pkg, files, info, nil
}

// sourceFiles lists the buildable Go files of dir via go/build's tag and
// suffix matching, in stable order.
func sourceFiles(dir string, includeTests bool) ([]string, error) {
	ctxt := build.Default
	// Pure type-checking: exclude cgo files so `import "C"` never reaches
	// go/types (cgo-using stdlib packages carry !cgo fallbacks).
	ctxt.CgoEnabled = false
	bp, err := ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPackage loads path as an analysis target: in-package test files
// included, full type-checking info retained.
func (l *Loader) LoadPackage(path string) (*Package, error) {
	l.init()
	pkg, files, info, err := l.load(path, true)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Analyze runs one analyzer over a loaded package and returns its
// diagnostics in position order.
func Analyze(a *analysis.Analyzer, p *Package) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Pkg,
		TypesInfo: p.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Run loads each fixture package under testdata, applies the analyzer,
// and matches diagnostics against the fixtures' `// want "re"` comments:
// every diagnostic must land on a line expecting it, and every
// expectation must be met.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := NewLoader(testdata)
	for _, path := range paths {
		p, err := l.LoadPackage(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		diags, err := Analyze(a, p)
		if err != nil {
			t.Errorf("%s: analyzer %s: %v", path, a.Name, err)
			continue
		}
		checkWants(t, l.fset, p, diags)
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWants compares diagnostics against want comments, both keyed by
// (file, line).
func checkWants(t *testing.T, fset *token.FileSet, p *Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, lit := range splitQuoted(m[1]) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pattern, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// splitQuoted extracts the quoted string literals from a want comment's
// payload ("re1" `re2` → the two literals, quotes kept). Both
// double-quoted and backquoted forms are legal, as in analysistest;
// strconv.Unquote handles either.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		rest := s[start:]
		if rest[0] == '`' {
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, rest[:end+2])
			s = rest[end+2:]
			continue
		}
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return out
		}
		out = append(out, rest[:end+1])
		s = rest[end+1:]
	}
}
