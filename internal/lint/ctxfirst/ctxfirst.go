// Package ctxfirst enforces the context discipline PR 4 threaded through
// the tree (DESIGN.md: every entry point takes a context.Context and
// honors cancellation):
//
//   - a function or method that accepts a context.Context takes it as its
//     first parameter — mixed orders make call sites unreadable and break
//     the "is this cancellable?" at-a-glance check;
//   - no struct stores a context.Context field: a stored context outlives
//     the call it scoped, hides cancellation from signatures, and is the
//     standard library's own documented anti-pattern. Contexts flow
//     through parameters (goroutines launched by a constructor receive it
//     as an argument);
//   - code in the entry-point packages internal/harness and pkg/numaws
//     never mints its own context with context.Background or context.TODO
//     in non-test code — entry points must honor the caller's context,
//     not replace it.
//
// Scope: every package in the module, _test.go files excluded. A
// deliberate exception is waived with `//numaws:ctx-ok <reason>`.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the context-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first, are never stored in structs, and entry-point " +
		"packages never substitute Background/TODO for the caller's context; waive with //numaws:ctx-ok <reason>",
	Run: run,
}

// noMintPackages are the entry-point packages where calling
// context.Background/TODO outside tests hides the caller's context.
var noMintPackages = []string{
	"repro/internal/harness",
	"repro/internal/server",
	"repro/pkg/numaws",
}

func run(pass *analysis.Pass) error {
	if !analysis.InModule(pass.Pkg.Path()) {
		return nil
	}
	noMint := false
	for _, p := range noMintPackages {
		if analysis.InPackage(pass.Pkg.Path(), p) {
			noMint = true
		}
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		sup := analysis.NewSuppressions(pass.Fset, file)
		report := func(pos ast.Node, format string, args ...any) {
			ok, hasReason := sup.Suppressed("ctx-ok", pos.Pos())
			if ok && hasReason {
				return
			}
			if ok {
				pass.Reportf(pos.Pos(), "numaws:ctx-ok suppression is missing its mandatory reason")
				return
			}
			pass.Reportf(pos.Pos(), format, args...)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkParams(pass, report, n.Type)
			case *ast.FuncLit:
				checkParams(pass, report, n.Type)
			case *ast.StructType:
				checkFields(pass, report, n)
			case *ast.CallExpr:
				if noMint {
					checkMint(pass, report, n)
				}
			}
			return true
		})
	}
	return nil
}

// isContext reports whether the type expression denotes context.Context.
func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkParams flags a context.Context parameter that is not the first.
func checkParams(pass *analysis.Pass, report func(ast.Node, string, ...any), ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Position counts named parameters individually: f(a int, ctx
	// context.Context) has ctx at index 1.
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContext(pass, field.Type) && index != 0 {
			report(field, "context.Context must be the first parameter, not parameter %d", index+1)
		}
		index += n
	}
}

// checkFields flags struct fields of type context.Context.
func checkFields(pass *analysis.Pass, report func(ast.Node, string, ...any), st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContext(pass, field.Type) {
			report(field, "struct stores a context.Context: contexts are call-scoped and flow "+
				"through parameters, not fields")
		}
	}
}

// checkMint flags context.Background()/context.TODO() calls in the
// entry-point packages.
func checkMint(pass *analysis.Pass, report func(ast.Node, string, ...any), call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	report(call, "entry-point package calls context.%s: accept the caller's context instead of minting one",
		fn.Name())
}
