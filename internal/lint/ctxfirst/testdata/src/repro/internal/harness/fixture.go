// Package harness impersonates the entry-point package: minting a
// context here hides the caller's cancellation.
package harness

import "context"

func Measure(ctx context.Context) error { return ctx.Err() }

func MeasureAllowingNoCancel() error {
	ctx := context.Background() // want `entry-point package calls context\.Background`
	return Measure(ctx)
}

func measureLazy() error {
	return Measure(context.TODO()) // want `entry-point package calls context\.TODO`
}
