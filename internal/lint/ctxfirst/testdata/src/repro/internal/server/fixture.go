// Package server impersonates the HTTP service layer: a handler's
// context is the request's — minting one detaches the work from the
// client's disconnect.
package server

import (
	"context"
	"net/http"
)

func simulate(ctx context.Context) error { return ctx.Err() }

func handleGridDetached(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `entry-point package calls context\.Background`
	_ = simulate(ctx)
}

func handleGrid(w http.ResponseWriter, r *http.Request) {
	_ = simulate(r.Context())
}
