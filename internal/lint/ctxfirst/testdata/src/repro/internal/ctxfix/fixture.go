// Package ctxfix seeds ctxfirst defects: misplaced context parameters
// and contexts stored in struct fields.
package ctxfix

import "context"

// Correct: context first, in functions, methods and literals.
func RunOne(ctx context.Context, n int) error { return ctx.Err() }

type Engine struct {
	workers int
}

func (e *Engine) Run(ctx context.Context, n int) error { return ctx.Err() }

var _ = func(ctx context.Context, n int) error { return ctx.Err() }

// Misplaced: context is not the first parameter.
func RunLate(n int, ctx context.Context) error { // want `context\.Context must be the first parameter, not parameter 2`
	return ctx.Err()
}

func (e *Engine) RunLate(a, b int, ctx context.Context) error { // want `context\.Context must be the first parameter, not parameter 3`
	return ctx.Err()
}

// Stored: the field hides cancellation from every method signature.
type pool struct {
	ctx     context.Context // want `struct stores a context\.Context`
	workers int
}

// A deliberate, documented exception is waived with a reason.
type request struct {
	//numaws:ctx-ok call-scoped carrier struct, freed before the call returns
	ctx context.Context
}

// A reasonless waiver is itself a finding.
type lazyRequest struct {
	//numaws:ctx-ok
	ctx context.Context // want `numaws:ctx-ok suppression is missing its mandatory reason`
}

func use(p pool, r request, l lazyRequest) (any, any, any) { return p, r, l }
