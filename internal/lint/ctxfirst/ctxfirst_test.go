package ctxfirst_test

import (
	"testing"

	"repro/internal/lint/ctxfirst"
	"repro/internal/lint/lintest"
)

func TestCtxFirst(t *testing.T) {
	lintest.Run(t, "testdata", ctxfirst.Analyzer,
		"repro/internal/ctxfix",  // ordering and struct-storage defects
		"repro/internal/harness", // entry-point package: Background/TODO minting
		"repro/internal/server",  // handler contexts come from *http.Request
	)
}
