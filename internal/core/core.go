package core
