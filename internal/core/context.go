// Package core is the NUMA-WS task-parallel platform: the paper's primary
// contribution, exposed as a Go library.
//
// The programming model mirrors Cilk Plus extended with the paper's locality
// API: Spawn is cilk_spawn, Sync is cilk_sync, SpawnAt is cilk_spawn with an
// @p# place annotation (Fig. 4), and SetPlace/PlaceAny update or unset a
// frame's hint. The model stays processor-oblivious: the same program runs
// unchanged on any worker/socket count; it queries NumPlaces at run time to
// initialize its place variables, exactly as the paper's benchmarks do.
//
// A computation can execute three ways, all against the same Context
// interface:
//
//   - Runtime.RunSerial: the serial elision (spawn = call, sync = no-op),
//     measuring TS;
//   - Runtime.Run: the simulated parallel platform with either the Cilk Plus
//     or the NUMA-WS scheduler, measuring T1..TP in virtual cycles;
//   - the native executor (package native): real goroutine parallelism for
//     correctness validation.
package core

import (
	"repro/internal/memory"
	"repro/internal/sched"
)

// PlaceAny unsets a locality hint, the paper's @ANY annotation.
const PlaceAny = sched.PlaceAny

// Task is a Cilk function: a unit of spawnable work.
type Task func(Context)

// Context is the per-frame handle through which a Task expresses parallelism
// (Spawn/Sync), locality (SpawnAt/SetPlace/NumPlaces) and — on the simulated
// platform — its compute and memory footprint (Compute/Read/Write).
//
// Cost-model methods are no-ops on executors that run in real time (serial
// reference checks, the native executor).
type Context interface {
	// Spawn runs the task as a spawned child that may execute in parallel
	// with the continuation of the caller. The child inherits the caller's
	// locality hint, the paper's default: "any computation subsequently
	// spawned by G is also marked to have the same locality".
	Spawn(t Task)
	// SpawnAt is Spawn with an explicit place hint (@p#), or PlaceAny to
	// unset the inherited hint for this child.
	SpawnAt(place int, t Task)
	// Sync blocks until all children spawned by this frame have returned.
	Sync()
	// Call runs the task synchronously in the current frame, like a plain
	// function call in Cilk (no new schedulable frame).
	Call(t Task)

	// Compute charges n cycles of pure computation to the current strand.
	Compute(n int64)
	// Read charges a read of bytes [off, off+n) of region r.
	Read(r *memory.Region, off, n int64)
	// Write charges a write of bytes [off, off+n) of region r.
	Write(r *memory.Region, off, n int64)
	// ReadStrided charges count reads of elem bytes each, spaced stride
	// bytes apart starting at off — a matrix column walk or regular gather.
	ReadStrided(r *memory.Region, off, stride, elem int64, count int)
	// WriteStrided is the store analogue of ReadStrided.
	WriteStrided(r *memory.Region, off, stride, elem int64, count int)

	// NumPlaces reports how many virtual places this run has (one per
	// socket in use). Programs size their place variables from it.
	NumPlaces() int
	// Place reports the current frame's locality hint (PlaceAny if unset).
	Place() int
	// SetPlace updates the current frame's locality hint.
	SetPlace(p int)
	// Worker reports the executing worker's id (0 on serial executors);
	// diagnostic only.
	Worker() int
}

// SpawnRange recursively splits [lo, hi) by binary spawning and runs body on
// each index — the expansion of cilk_for, which "is syntactic sugar that
// compiles down to binary spawning of iterations". grain is the base-case
// coarsening: chunks of at most grain indices run serially via bodyRange.
func SpawnRange(ctx Context, lo, hi, grain int, bodyRange func(Context, int, int)) {
	if grain < 1 {
		grain = 1
	}
	type span struct{ lo, hi int }
	var impl func(ctx Context, s span)
	impl = func(ctx Context, s span) {
		for s.hi-s.lo > grain {
			mid := s.lo + (s.hi-s.lo)/2
			left := span{s.lo, mid}
			ctx.Spawn(func(c Context) { impl(c, left) })
			s.lo = mid
		}
		bodyRange(ctx, s.lo, s.hi)
	}
	impl(ctx, span{lo, hi})
	ctx.Sync()
}
