package core

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/sched"
)

func autoPlaceProbe(t *testing.T, p int, prep func(rt *Runtime) *memory.Region, off, n int64) int {
	t.Helper()
	rt := newRT(p, sched.NUMAWS, 1)
	r := prep(rt)
	got := -99
	rt.Run(func(ctx Context) {
		got = AutoPlace(ctx, r, off, n)
	})
	return got
}

func TestAutoPlaceMajoritySocket(t *testing.T) {
	got := autoPlaceProbe(t, 32, func(rt *Runtime) *memory.Region {
		return rt.Alloc("a", 8*memory.PageSize, memory.BindTo{Socket: 2})
	}, 0, 8*memory.PageSize)
	if got != 2 {
		t.Errorf("AutoPlace = %d, want 2 (all pages on socket 2)", got)
	}
}

func TestAutoPlaceFollowsBandedBlocks(t *testing.T) {
	prep := func(rt *Runtime) *memory.Region {
		return rt.Alloc("banded", 8*memory.PageSize,
			memory.BindBlocks{Blocks: 4, Sockets: []int{0, 1, 2, 3}})
	}
	// Third quarter (pages 4-5) lives on socket 2.
	if got := autoPlaceProbe(t, 32, prep, 4*memory.PageSize, 2*memory.PageSize); got != 2 {
		t.Errorf("AutoPlace over third quarter = %d, want 2", got)
	}
	// First quarter on socket 0.
	if got := autoPlaceProbe(t, 32, prep, 0, 2*memory.PageSize); got != 0 {
		t.Errorf("AutoPlace over first quarter = %d, want 0", got)
	}
}

func TestAutoPlaceNoMajority(t *testing.T) {
	got := autoPlaceProbe(t, 32, func(rt *Runtime) *memory.Region {
		return rt.Alloc("il", 8*memory.PageSize, memory.Interleave{})
	}, 0, 8*memory.PageSize)
	if got != PlaceAny {
		t.Errorf("AutoPlace over interleaved pages = %d, want PlaceAny", got)
	}
}

func TestAutoPlaceUnbound(t *testing.T) {
	got := autoPlaceProbe(t, 32, func(rt *Runtime) *memory.Region {
		return rt.Alloc("ft", 4*memory.PageSize, memory.FirstTouch{})
	}, 0, 4*memory.PageSize)
	if got != PlaceAny {
		t.Errorf("AutoPlace over untouched first-touch pages = %d, want PlaceAny", got)
	}
}

func TestAutoPlaceSocketWithoutWorkers(t *testing.T) {
	// At P=8 only socket 0 hosts workers; data on socket 3 yields PlaceAny
	// rather than an unservable hint... and at P=8 there is only one place,
	// so the single-place fast path already answers.
	got := autoPlaceProbe(t, 8, func(rt *Runtime) *memory.Region {
		return rt.Alloc("far", 4*memory.PageSize, memory.BindTo{Socket: 3})
	}, 0, 4*memory.PageSize)
	if got != PlaceAny {
		t.Errorf("AutoPlace with one place = %d, want PlaceAny", got)
	}
	// At P=16 (two places), socket-3 data still has no local workers.
	got = autoPlaceProbe(t, 16, func(rt *Runtime) *memory.Region {
		return rt.Alloc("far", 4*memory.PageSize, memory.BindTo{Socket: 3})
	}, 0, 4*memory.PageSize)
	if got != PlaceAny {
		t.Errorf("AutoPlace for workerless socket = %d, want PlaceAny", got)
	}
}

func TestAutoPlaceZeroLength(t *testing.T) {
	got := autoPlaceProbe(t, 32, func(rt *Runtime) *memory.Region {
		return rt.Alloc("z", memory.PageSize, memory.BindTo{Socket: 1})
	}, 0, 0)
	if got != PlaceAny {
		t.Errorf("AutoPlace over empty range = %d, want PlaceAny", got)
	}
}

// TestAutoPlaceEndToEnd: a socket-oblivious program using AutoPlace gets the
// same locality benefit as explicit hints.
func TestAutoPlaceEndToEnd(t *testing.T) {
	run := func(auto bool) int64 {
		rt := newRT(32, sched.NUMAWS, 1)
		const bands = 64
		arr := rt.Alloc("data", bands*4*memory.PageSize,
			memory.BindBlocks{Blocks: 4, Sockets: []int{0, 1, 2, 3}})
		bandBytes := arr.Size() / bands
		// Recursive banded sweep, hints on subtrees (the shape real
		// programs use — a flat spawn loop cannot benefit from hints under
		// continuation stealing, since each child runs on its spawner).
		var sweep func(c Context, lo, hi int)
		sweep = func(c Context, lo, hi int) {
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				l, h := lo, mid
				hint := PlaceAny
				if auto {
					hint = AutoPlace(c, arr, int64(l)*bandBytes, int64(h-l)*bandBytes)
				}
				c.SpawnAt(hint, func(cc Context) { sweep(cc, l, h) })
				lo = mid
			}
			c.Read(arr, int64(lo)*bandBytes, bandBytes)
			c.Compute(5000)
		}
		rep := rt.Run(func(ctx Context) {
			for pass := 0; pass < 6; pass++ {
				sweep(ctx, 0, bands)
				ctx.Sync()
			}
		})
		return rep.Cache.Remote()
	}
	unhinted := run(false)
	auto := run(true)
	if auto >= unhinted {
		t.Errorf("auto-placed run has %d remote accesses, unhinted %d; AutoPlace should reduce them", auto, unhinted)
	}
}
