package core

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/topology"
)

// fib builds the classic spawn-heavy microbenchmark: each call charges one
// unit of compute per node so work is countable.
func fib(n int) Task {
	return func(ctx Context) {
		ctx.Compute(1)
		if n < 2 {
			return
		}
		ctx.Spawn(fib(n - 1))
		ctx.Call(fib(n - 2)) // second "call" runs in the same frame
		ctx.Sync()
	}
}

// fibNodes counts the call-tree nodes of fib(n), including Call frames.
func fibNodes(n int) int64 {
	if n < 2 {
		return 1
	}
	return 1 + fibNodes(n-1) + fibNodes(n-2)
}

func newRT(p int, pol sched.Policy, seed int64) *Runtime {
	cfg := DefaultConfig(p, pol)
	cfg.Sched.Seed = seed
	return NewRuntime(cfg)
}

func TestSerialElisionCountsWork(t *testing.T) {
	rt := newRT(1, sched.Cilk, 1)
	rep := rt.RunSerial(fib(12))
	if rep.Time != fibNodes(12) {
		t.Errorf("TS = %d, want exactly %d compute units", rep.Time, fibNodes(12))
	}
	if rep.Sched != nil {
		t.Error("serial report has scheduler stats")
	}
}

func TestT1IncludesOnlySpawnOverhead(t *testing.T) {
	ts := newRT(1, sched.Cilk, 1).RunSerial(fib(12)).Time
	rep := newRT(1, sched.Cilk, 1).Run(fib(12))
	if rep.Time <= ts {
		t.Errorf("T1 = %d, want > TS = %d (spawn overhead exists)", rep.Time, ts)
	}
	// Work efficiency: T1/TS stays small even for spawn-heavy fib with no
	// coarsening; with the default 8-cycle spawn cost and 1-cycle strands
	// the ratio is large by construction, so check against the analytic
	// overhead instead: T1 = TS + spawns*(SpawnCost+ReturnCost-ish).
	if rep.Sched.Steals != 0 {
		t.Errorf("P=1 run stole %d times", rep.Sched.Steals)
	}
	if rep.Sched.IdleTotal() != 0 {
		t.Errorf("P=1 run idled %d cycles", rep.Sched.IdleTotal())
	}
}

func TestParallelSpeedup(t *testing.T) {
	// Binary spawning (as cilk_for compiles to): the deques hold many
	// stealable continuations, unlike a flat spawn loop.
	mk := func() Task {
		return func(ctx Context) {
			SpawnRange(ctx, 0, 256, 1, func(c Context, lo, hi int) {
				c.Compute(int64(hi-lo) * 5000)
			})
		}
	}
	t1 := newRT(1, sched.Cilk, 1).Run(mk()).Time
	t8 := newRT(8, sched.Cilk, 1).Run(mk()).Time
	t32 := newRT(32, sched.Cilk, 1).Run(mk()).Time
	if t8 >= t1 || t32 >= t8 {
		t.Errorf("no scaling: T1=%d T8=%d T32=%d", t1, t8, t32)
	}
	if sp := float64(t1) / float64(t32); sp < 8 {
		t.Errorf("T1/T32 = %.2f, want >= 8 for 256 independent leaves", sp)
	}
}

func TestNestedSyncSemantics(t *testing.T) {
	// A frame that spawns, syncs, mutates, spawns again, syncs again: the
	// order of side effects must respect sync barriers.
	var log []int
	root := func(ctx Context) {
		ctx.Spawn(func(c Context) { c.Compute(100); log = append(log, 1) })
		ctx.Spawn(func(c Context) { c.Compute(50); log = append(log, 1) })
		ctx.Sync()
		log = append(log, 2)
		ctx.Spawn(func(c Context) { c.Compute(10); log = append(log, 3) })
		ctx.Sync()
		log = append(log, 4)
	}
	newRT(8, sched.NUMAWS, 3).Run(root)
	want := []int{1, 1, 2, 3, 4}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestImplicitSyncAtReturn(t *testing.T) {
	// A task that spawns without syncing must still complete its children
	// before its parent's sync admits it.
	done := false
	root := func(ctx Context) {
		ctx.Spawn(func(c Context) {
			c.Spawn(func(cc Context) { cc.Compute(1000); done = true })
			// no explicit sync: the implicit one at return must cover it
		})
		ctx.Sync()
		if !done {
			t.Error("parent sync passed before grandchild finished")
		}
	}
	newRT(4, sched.Cilk, 2).Run(root)
}

func TestPlaceInheritanceAndOverride(t *testing.T) {
	places := map[string]int{}
	root := func(ctx Context) {
		ctx.SpawnAt(2, func(c Context) {
			places["child"] = c.Place()
			c.Spawn(func(cc Context) { places["grandchild"] = cc.Place() })
			c.SpawnAt(PlaceAny, func(cc Context) { places["unset"] = cc.Place() })
			c.SpawnAt(1, func(cc Context) { places["override"] = cc.Place() })
			c.Sync()
		})
		ctx.Sync()
	}
	newRT(32, sched.NUMAWS, 5).Run(root)
	if places["child"] != 2 {
		t.Errorf("child place = %d, want 2", places["child"])
	}
	if places["grandchild"] != 2 {
		t.Errorf("grandchild place = %d, want 2 (inheritance)", places["grandchild"])
	}
	if places["unset"] != PlaceAny {
		t.Errorf("unset place = %d, want PlaceAny", places["unset"])
	}
	if places["override"] != 1 {
		t.Errorf("override place = %d, want 1", places["override"])
	}
}

func TestSetPlace(t *testing.T) {
	got := -99
	root := func(ctx Context) {
		ctx.Spawn(func(c Context) {
			c.SetPlace(3)
			c.Spawn(func(cc Context) { got = cc.Place() })
			c.Sync()
		})
		ctx.Sync()
	}
	newRT(32, sched.NUMAWS, 5).Run(root)
	if got != 3 {
		t.Errorf("grandchild place after SetPlace(3) = %d, want 3", got)
	}
}

func TestPlaceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SpawnAt with out-of-range place did not panic")
		}
	}()
	newRT(4, sched.NUMAWS, 1).Run(func(ctx Context) {
		ctx.SpawnAt(99, func(Context) {})
		ctx.Sync()
	})
}

func TestNumPlacesFollowsPacking(t *testing.T) {
	for _, tc := range []struct{ p, places int }{
		{1, 1}, {8, 1}, {9, 2}, {16, 2}, {24, 3}, {32, 4},
	} {
		var got int
		newRT(tc.p, sched.NUMAWS, 1).Run(func(ctx Context) { got = ctx.NumPlaces() })
		if got != tc.places {
			t.Errorf("P=%d: NumPlaces() = %d, want %d", tc.p, got, tc.places)
		}
	}
}

func TestMemoryChargesAffectTime(t *testing.T) {
	run := func(pol memory.Policy, p int) int64 {
		rt := newRT(p, sched.Cilk, 1)
		arr := rt.Alloc("data", 1<<20, pol)
		return rt.Run(func(ctx Context) {
			SpawnRange(ctx, 0, 16, 1, func(c Context, lo, hi int) {
				for i := lo; i < hi; i++ {
					c.Read(arr, int64(i)*(1<<16), 1<<16)
				}
			})
		}).Time
	}
	local := run(memory.BindTo{Socket: 0}, 1)
	// On one worker everything is socket 0, so binding to socket 3 makes
	// every access two hops more expensive.
	remote := run(memory.BindTo{Socket: 3}, 1)
	if remote <= local {
		t.Errorf("remote-bound run %d not slower than local-bound %d", remote, local)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Task {
		return func(ctx Context) {
			for i := 0; i < 32; i++ {
				p := i % 4
				ctx.SpawnAt(p, func(c Context) { c.Compute(3000) })
			}
			ctx.Sync()
		}
	}
	a := newRT(32, sched.NUMAWS, 9).Run(mk())
	b := newRT(32, sched.NUMAWS, 9).Run(mk())
	if a.Time != b.Time || a.Sched.Steals != b.Sched.Steals {
		t.Errorf("same seed diverged: T=%d/%d steals=%d/%d", a.Time, b.Time, a.Sched.Steals, b.Sched.Steals)
	}
}

func TestTaskPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("task panic did not propagate to Run caller")
		}
	}()
	newRT(2, sched.Cilk, 1).Run(func(ctx Context) {
		ctx.Spawn(func(Context) { panic("boom") })
		ctx.Sync()
	})
}

func TestRuntimeSingleUse(t *testing.T) {
	rt := newRT(2, sched.Cilk, 1)
	rt.Run(func(Context) {})
	defer func() {
		if recover() == nil {
			t.Error("second Run on the same Runtime did not panic")
		}
	}()
	rt.Run(func(Context) {})
}

func TestSpawnRangeCoversAllIndices(t *testing.T) {
	covered := make([]bool, 100)
	newRT(8, sched.Cilk, 1).Run(func(ctx Context) {
		SpawnRange(ctx, 0, 100, 7, func(c Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("index %d visited twice", i)
				}
				covered[i] = true
			}
		})
	})
	for i, ok := range covered {
		if !ok {
			t.Errorf("index %d never visited", i)
		}
	}
}

// Property: SpawnRange visits each index exactly once for arbitrary ranges
// and grains, on the serial executor.
func TestSpawnRangeProperty(t *testing.T) {
	f := func(rawN, rawGrain uint8) bool {
		n := int(rawN)%200 + 1
		grain := int(rawGrain) % 32 // 0 becomes 1 inside
		counts := make([]int, n)
		rt := newRT(1, sched.Cilk, 1)
		rt.RunSerial(func(ctx Context) {
			SpawnRange(ctx, 0, n, grain, func(c Context, lo, hi int) {
				for i := lo; i < hi; i++ {
					counts[i]++
				}
			})
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkFirstInvariant(t *testing.T) {
	// The core claim: work time must not inflate with P beyond memory
	// effects. With pure Compute (no memory), WorkTotal at P=32 must equal
	// WorkTotal at P=1 exactly.
	mk := func() Task {
		var rec func(depth int) Task
		rec = func(depth int) Task {
			return func(ctx Context) {
				if depth == 0 {
					ctx.Compute(2000)
					return
				}
				ctx.Spawn(rec(depth - 1))
				ctx.Spawn(rec(depth - 1))
				ctx.Sync()
				ctx.Compute(10)
			}
		}
		return rec(7)
	}
	w1 := newRT(1, sched.NUMAWS, 1).Run(mk()).Sched.WorkTotal()
	w32 := newRT(32, sched.NUMAWS, 1).Run(mk()).Sched.WorkTotal()
	if w1 != w32 {
		t.Errorf("pure-compute work inflated: W1=%d W32=%d", w1, w32)
	}
}

func TestBrentBoundOnRealRuns(t *testing.T) {
	// T_P must satisfy T1/P <= T_P <= T1/P + c*T_inf for all P, both
	// policies (the paper's Section IV bound with our bookkeeping costs
	// folded into the constant).
	mk := func() Task {
		var rec func(depth int) Task
		rec = func(depth int) Task {
			return func(ctx Context) {
				if depth == 0 {
					ctx.Compute(4000)
					return
				}
				ctx.Spawn(rec(depth - 1))
				ctx.Spawn(rec(depth - 1))
				ctx.Sync()
			}
		}
		return rec(8)
	}
	for _, pol := range []sched.Policy{sched.Cilk, sched.NUMAWS} {
		t1 := newRT(1, pol, 1).Run(mk()).Time
		// span: 8 levels of (spawn+sync bookkeeping) + leaf = roughly
		// 8*small + 4000; be generous.
		span := int64(8*1000 + 4000)
		for _, p := range []int{2, 4, 8, 16, 32} {
			tp := newRT(p, pol, 1).Run(mk()).Time
			if tp < t1/int64(p) {
				t.Errorf("%v P=%d: T_P=%d < T1/P=%d", pol, p, tp, t1/int64(p))
			}
			if tp > t1/int64(p)+60*span {
				t.Errorf("%v P=%d: T_P=%d exceeds T1/P + O(Tinf)=%d", pol, p, tp, t1/int64(p)+60*span)
			}
		}
	}
}

func TestTopologyAccessors(t *testing.T) {
	rt := newRT(4, sched.Cilk, 1)
	if rt.Topology().Sockets() != 4 {
		t.Error("Topology() lost the machine")
	}
	if rt.Allocator().Sockets() != 4 {
		t.Error("Allocator() sockets mismatch")
	}
}

func TestConfigRequiresTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRuntime without topology did not panic")
		}
	}()
	NewRuntime(Config{Sched: sched.Config{Workers: 2}})
}

func TestWorkerReportedDuringRun(t *testing.T) {
	seen := map[int]bool{}
	newRT(8, sched.Cilk, 1).Run(func(ctx Context) {
		for i := 0; i < 64; i++ {
			ctx.Spawn(func(c Context) {
				c.Compute(2000)
				seen[c.Worker()] = true
			})
		}
		ctx.Sync()
	})
	if len(seen) < 2 {
		t.Errorf("only %d workers ever executed tasks; expected parallelism", len(seen))
	}
}

func TestSingleSocketTopologyWorks(t *testing.T) {
	cfg := Config{Sched: sched.Config{
		Topology: topology.SingleSocket(4),
		Workers:  4,
		Policy:   sched.NUMAWS,
		Seed:     1,
	}}
	rep := NewRuntime(cfg).Run(func(ctx Context) {
		for i := 0; i < 16; i++ {
			ctx.Spawn(func(c Context) { c.Compute(1000) })
		}
		ctx.Sync()
	})
	if rep.Time <= 0 {
		t.Error("single-socket run did not complete")
	}
}
