package core

import (
	"testing"

	"repro/internal/sched"
)

// TestRecordedDagOnRealProgram exercises Config.RecordDAG end to end: the
// recorded work must equal the engine's work total, the span must bound the
// makespan from below, and the dag must be identical across worker counts.
func TestRecordedDagOnRealProgram(t *testing.T) {
	mk := func() Task {
		var rec func(depth int) Task
		rec = func(depth int) Task {
			return func(ctx Context) {
				if depth == 0 {
					ctx.Compute(500)
					return
				}
				ctx.Spawn(rec(depth - 1))
				ctx.Call(rec(depth - 1))
				ctx.Sync()
				ctx.Compute(5)
			}
		}
		return rec(6)
	}
	run := func(p int) *Report {
		cfg := DefaultConfig(p, sched.NUMAWS)
		cfg.RecordDAG = true
		return NewRuntime(cfg).Run(mk())
	}
	r1 := run(1)
	r32 := run(32)

	if r1.DAG == nil || r32.DAG == nil {
		t.Fatal("RecordDAG produced no graph")
	}
	// The dag is schedule-invariant.
	if r1.DAG.Work() != r32.DAG.Work() || r1.DAG.Span() != r32.DAG.Span() {
		t.Errorf("dag differs across P: W %d/%d, S %d/%d",
			r1.DAG.Work(), r32.DAG.Work(), r1.DAG.Span(), r32.DAG.Span())
	}
	// Pure strand work (dag) plus engine bookkeeping equals the engine's
	// work total; the dag work must never exceed it.
	if r32.DAG.Work() > r32.Sched.WorkTotal() {
		t.Errorf("dag work %d exceeds engine work %d", r32.DAG.Work(), r32.Sched.WorkTotal())
	}
	// Lower bounds on the makespan from the measured dag.
	if r32.Time < r32.DAG.Span() {
		t.Errorf("T32 %d below measured span %d", r32.Time, r32.DAG.Span())
	}
	if r32.Time < r32.DAG.Work()/32 {
		t.Errorf("T32 %d below measured work/32 %d", r32.Time, r32.DAG.Work()/32)
	}
	if p := r32.DAG.Parallelism(); p < 2 {
		t.Errorf("parallelism %f too low for a 64-leaf binary tree", p)
	}
}

// TestDagNotRecordedByDefault ensures the recorder costs nothing unless
// asked for.
func TestDagNotRecordedByDefault(t *testing.T) {
	rep := newRT(4, sched.Cilk, 1).Run(func(ctx Context) { ctx.Compute(10) })
	if rep.DAG != nil {
		t.Error("DAG recorded without RecordDAG")
	}
}
