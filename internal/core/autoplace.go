package core

import "repro/internal/memory"

// AutoPlace derives a locality hint from data rather than from the
// programmer: it returns the place whose socket is home to the majority of
// the pages in [off, off+n) of region r, or PlaceAny when the range is
// unbound, spread without a majority, or homed on a socket with no workers.
//
// This implements the direction the paper's conclusion asks for: "devising
// a programming interface that allows the programmer to be socket
// oblivious". With AutoPlace the program never names a socket — it
// partitions its data under any policy and spawns with
//
//	ctx.SpawnAt(core.AutoPlace(ctx, region, off, n), task)
//
// and the hint follows the pages wherever the policy put them, for any
// socket count.
func AutoPlace(ctx Context, r *memory.Region, off, n int64) int {
	if n <= 0 {
		return PlaceAny
	}
	places := ctx.NumPlaces()
	if places <= 1 {
		return PlaceAny
	}
	counts := make(map[int]int)
	pages := 0
	last := off + n - 1
	if last >= r.Size() {
		last = r.Size() - 1
	}
	for o := off; o <= last; o += memory.PageSize {
		counts[r.HomeOf(o)]++
		pages++
	}
	counts[r.HomeOf(last)] += 0 // ensure the final page is represented
	bestSocket, bestCount := memory.SocketUnbound, 0
	//numaws:nondet-ok max-reduction with a total-order tie-break (higher count, then higher socket id) visits every entry; the winner is independent of range order
	for s, c := range counts {
		if c > bestCount || (c == bestCount && s > bestSocket) {
			bestSocket, bestCount = s, c
		}
	}
	if bestSocket == memory.SocketUnbound || bestCount*2 <= pages {
		return PlaceAny // unbound or no majority
	}
	if bestSocket >= places {
		return PlaceAny // majority socket hosts no workers in this run
	}
	return bestSocket
}
