package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dag"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Config assembles a platform instance: machine shape, scheduler policy and
// knobs, and the cache cost model.
type Config struct {
	// Sched configures the machine (Topology, Workers, Placement) and the
	// scheduler (Policy, costs, ablation switches, Seed).
	Sched sched.Config
	// Geometry sizes the caches; the zero value takes cache.DefaultGeometry.
	Geometry cache.Geometry
	// Latency sets the access cost table; the zero value takes
	// cache.DefaultLatency.
	Latency cache.Latency
	// RecordDAG captures the computation dag during Run, making measured
	// work and span available in Report.DAG (at some memory cost per
	// strand).
	RecordDAG bool
	// Arena, if non-nil, supplies reusable run-scoped storage (the
	// scheduler's worker set, deques, victim pickers and frame pool, and
	// the execution layer's task pool). A nil Arena gets a private one.
	// Reuse never changes results; it only removes per-run allocation.
	// An Arena must back at most one live Runtime at a time.
	Arena *Arena
}

// Arena carries the allocation-heavy state a Runtime can reuse from a
// previous run on the same machine shape. See sched.Arena for the
// scheduler half; the core half pools the per-frame task records and the
// cache-hierarchy model (the largest per-run construction: per-core private
// caches, per-socket LLCs, and the coherence directory's entry slabs).
type Arena struct {
	sched *sched.Arena
	tasks []*simTask
	hier  *cache.Hierarchy
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{sched: sched.NewArena()} }

// hierarchyFor returns a cache model for the given machine: the arena's
// retained hierarchy Reset to pristine when it models exactly this machine,
// or a freshly built one (retained for next time) when it does not. A Reset
// hierarchy is behaviorally identical to a new one, so reuse never changes
// simulation results.
func (a *Arena) hierarchyFor(top *topology.Topology, geo cache.Geometry, lat cache.Latency) *cache.Hierarchy {
	if a.hier != nil && a.hier.Matches(top, geo, lat) {
		a.hier.Reset()
		return a.hier
	}
	a.hier = cache.NewHierarchy(top, geo, lat)
	return a.hier
}

// DefaultConfig returns a platform on the paper's 4x8 machine with the given
// worker count and policy.
func DefaultConfig(workers int, policy sched.Policy) Config {
	return DefaultConfigOn(topology.XeonE5_4620(), workers, policy)
}

// DefaultConfigOn is DefaultConfig on an arbitrary machine: default cache
// geometry and latencies, bias weights derived from the topology's distance
// matrix, seed 1.
func DefaultConfigOn(top *topology.Topology, workers int, policy sched.Policy) Config {
	return Config{
		Sched: sched.Config{
			Topology: top,
			Workers:  workers,
			Policy:   policy,
			Seed:     1,
		},
	}
}

// Report is the outcome of one run.
type Report struct {
	// Time is the virtual completion time in cycles: TS for a serial run,
	// T_P for a simulated parallel run.
	Time int64
	// Workers is the worker count used (1 for serial).
	Workers int
	// Sched holds scheduler statistics; nil for serial runs.
	Sched *sched.Stats
	// Cache aggregates memory-hierarchy statistics over all cores.
	Cache cache.Stats
	// DAG is the recorded computation dag (only when Config.RecordDAG).
	DAG *dag.Graph
}

// Runtime is one instantiated platform: an allocator, a cache hierarchy and
// a scheduler. A Runtime runs one computation (fresh Runtimes give fresh,
// cold-cache machines, which keeps measurements independent).
type Runtime struct {
	cfg    Config
	alloc  *memory.Allocator
	caches *cache.Hierarchy
	engine *sched.Engine
	arena  *Arena

	// Task-goroutine pool for this run: strand execution hands off between
	// the engine goroutine and one goroutine per live frame; finished
	// frames' goroutines (and their channels) are reused for later frames
	// instead of being respawned.
	units     []*unit
	freeUnits []*unit
	// poisoned is set by closeUnits before it wakes parked task
	// goroutines, telling them to unwind instead of resuming; the
	// channel close publishing the wake also publishes the flag.
	poisoned bool

	used bool
}

// NewRuntime builds a platform from cfg.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Sched.Topology == nil {
		panic("core: Config.Sched.Topology is required")
	}
	if cfg.Geometry == (cache.Geometry{}) {
		cfg.Geometry = cache.DefaultGeometry()
	}
	if cfg.Latency == (cache.Latency{}) {
		cfg.Latency = cache.DefaultLatency()
	}
	if cfg.Arena == nil {
		cfg.Arena = NewArena()
	}
	rt := &Runtime{
		cfg:    cfg,
		alloc:  memory.NewAllocator(cfg.Sched.Topology.Sockets()),
		caches: cfg.Arena.hierarchyFor(cfg.Sched.Topology, cfg.Geometry, cfg.Latency),
		arena:  cfg.Arena,
	}
	return rt
}

// Alloc reserves a simulated region. Typically called by the root task
// during setup; also usable before Run.
func (rt *Runtime) Alloc(name string, size int64, pol memory.Policy) *memory.Region {
	return rt.alloc.Alloc(name, size, pol)
}

// Allocator exposes the runtime's allocator for the typed-array helpers.
func (rt *Runtime) Allocator() *memory.Allocator { return rt.alloc }

// Topology reports the machine.
func (rt *Runtime) Topology() *topology.Topology { return rt.cfg.Sched.Topology }

// Places reports how many virtual places the configured run will have (one
// per socket hosting at least one worker). Programs use it at setup time to
// partition data, mirroring the paper's "the programmer needs to use the
// runtime to query the number of sockets and perform the appropriate data
// partitioning".
func (rt *Runtime) Places() int {
	pl := rt.cfg.Sched.Placement
	if pl == nil {
		pl = rt.cfg.Sched.Topology.Pack(rt.cfg.Sched.Workers)
	}
	return pl.Used
}

// Run executes root under the configured parallel scheduler and returns the
// run report. A Runtime is single-use.
func (rt *Runtime) Run(root Task) *Report {
	rt.checkFresh()
	var runner sched.Runner = (*simRunner)(rt)
	var rec *dag.Recorder
	if rt.cfg.RecordDAG {
		rec = dag.Wrap(runner)
		runner = rec
	}
	// Release the task-goroutine pool even if the run panics, so parked
	// goroutines never outlive the Runtime.
	defer rt.closeUnits()
	rt.engine = sched.NewEngineIn(rt.arena.sched, rt.cfg.Sched, runner)
	rootFrame := rt.engine.NewRootFrame(PlaceAny)
	rootFrame.Data = newSimTask(rt, rootFrame, root)
	stats := rt.engine.Run(rootFrame)
	rep := &Report{
		Time:    stats.Makespan,
		Workers: rt.cfg.Sched.Workers,
		Sched:   stats,
		Cache:   rt.caches.TotalStats(),
	}
	if rec != nil {
		rep.DAG = rec.Graph()
	}
	return rep
}

// RunSerial executes root as the serial elision — "removing the parallel
// control constructs": Spawn degenerates to Call and Sync to a no-op — and
// returns the TS report. Memory and compute costs are still charged (to
// core 0), because TS is a real execution time, just without parallel
// overhead.
func (rt *Runtime) RunSerial(root Task) *Report {
	rt.checkFresh()
	ctx := &serialCtx{rt: rt}
	root(ctx)
	return &Report{
		Time:    ctx.clock,
		Workers: 1,
		Cache:   rt.caches.TotalStats(),
	}
}

func (rt *Runtime) checkFresh() {
	if rt.used {
		panic("core: a Runtime runs one computation; create a new Runtime per run")
	}
	rt.used = true
}

// serialCtx implements Context for the serial elision.
type serialCtx struct {
	rt    *Runtime
	clock int64
	place int
	polls int
}

var _ Context = (*serialCtx)(nil)

// serialPollInterval amortizes the serial elision's interrupt poll the way
// interruptPollInterval amortizes the engine's: one check every power-of-two
// calls. Must be a power of two.
const serialPollInterval = 1024

// poll checks the run's interrupt hook. Serial runs execute inline on the
// caller's goroutine with no event loop in between, so the elision itself
// polls at its Spawn/Compute edges; the panic unwinds to the harness
// containment boundary exactly like the engine's.
func (c *serialCtx) poll() {
	c.polls++
	if c.polls&(serialPollInterval-1) == 0 {
		if f := c.rt.cfg.Sched.Interrupt; f != nil && f() {
			panic(sched.ErrInterrupted)
		}
	}
}

func (c *serialCtx) Spawn(t Task) { c.poll(); t(c) }
func (c *serialCtx) SpawnAt(p int, t Task) {
	c.poll()
	old := c.place
	c.place = p
	t(c)
	c.place = old
}
func (c *serialCtx) Sync()           {}
func (c *serialCtx) Call(t Task)     { c.poll(); t(c) }
func (c *serialCtx) Compute(n int64) { c.poll(); c.clock += n }
func (c *serialCtx) NumPlaces() int  { return c.rt.cfg.Sched.Topology.Sockets() }
func (c *serialCtx) Place() int      { return c.place }
func (c *serialCtx) SetPlace(p int)  { c.place = p }
func (c *serialCtx) Worker() int     { return 0 }

func (c *serialCtx) Read(r *memory.Region, off, n int64) {
	c.clock += c.rt.caches.AccessRange(c.clock, 0, r, off, n, false)
}

func (c *serialCtx) Write(r *memory.Region, off, n int64) {
	c.clock += c.rt.caches.AccessRange(c.clock, 0, r, off, n, true)
}

func (c *serialCtx) ReadStrided(r *memory.Region, off, stride, elem int64, count int) {
	c.clock += c.rt.caches.AccessStrided(c.clock, 0, r, off, stride, elem, count, false)
}

func (c *serialCtx) WriteStrided(r *memory.Region, off, stride, elem int64, count int) {
	c.clock += c.rt.caches.AccessStrided(c.clock, 0, r, off, stride, elem, count, true)
}

// simRunner adapts the Runtime to sched.Runner. It is a distinct type only
// to keep the Resume method off Runtime's public surface.
type simRunner Runtime

// Resume implements sched.Runner by handing control to the frame's task
// goroutine until its next scheduling event. Exactly one task goroutine runs
// at a time (strict handoff), which keeps the simulation deterministic.
// When the task returns, its goroutine and task record go back to the pools
// for the next frame — the steady-state loop spawns no goroutines and
// allocates no task state.
func (r *simRunner) Resume(w int, f *sched.Frame) sched.Yield {
	rt := (*Runtime)(r)
	t := f.Data.(*simTask)
	t.ctx.worker = w
	t.ctx.core = rt.engine.CoreOf(w)
	t.ctx.start = rt.engine.ClockOf(w)
	if !t.started {
		t.started = true
		t.u = rt.getUnit()
		t.u.start <- t
	} else {
		t.u.resume <- struct{}{}
	}
	u := t.u
	y := <-u.yield
	if t.err != nil {
		panic(fmt.Sprintf("core: task panicked: %v", t.err))
	}
	if y.Kind == sched.YieldReturn {
		// The task is done: its final yield has been received and its
		// goroutine is parked back at the unit loop. Nothing references
		// either anymore (the engine recycles the frame when it applies
		// this yield), so both are safe to hand to the next frame.
		rt.freeUnits = append(rt.freeUnits, u)
		rt.putTask(t)
	}
	return y
}

// unit is one pooled task goroutine with its handoff channels. The
// goroutine runs tasks assigned over start until the channel closes at the
// end of the run.
type unit struct {
	start  chan *simTask
	resume chan struct{}
	yield  chan sched.Yield
}

func (u *unit) loop() {
	for t := range u.start {
		t.main()
	}
}

func (rt *Runtime) getUnit() *unit {
	if n := len(rt.freeUnits); n > 0 {
		u := rt.freeUnits[n-1]
		rt.freeUnits = rt.freeUnits[:n-1]
		return u
	}
	u := &unit{
		start:  make(chan *simTask),
		resume: make(chan struct{}),
		yield:  make(chan sched.Yield),
	}
	rt.units = append(rt.units, u)
	go u.loop()
	return u
}

// closeUnits retires the run's pooled goroutines. Units parked in the free
// pool exit their loop when their start channel closes. A unit still
// blocked inside a task — possible when the run panicked or was
// interrupted — is parked at its resume receive (strict handoff: the
// engine held the only running strand, and it is unwinding here), so
// closing resume wakes it; the poisoned flag, published by that close,
// makes resumeWait unwind the task instead of resuming it, and the
// goroutine exits through its closed loop. Nothing outlives the Runtime.
func (rt *Runtime) closeUnits() {
	rt.poisoned = true
	for _, u := range rt.units {
		close(u.start)
		close(u.resume)
	}
	rt.units, rt.freeUnits = nil, nil
}

// unitUnwind is the panic value resumeWait raises on a poisoned Runtime;
// simTask.main swallows it to retire the goroutine without yielding to an
// engine that no longer exists.
type unitUnwind struct{}

// simTask is the continuation state of one frame: a pooled goroutine unit
// that runs the user's Task and parks at every spawn/sync/return.
type simTask struct {
	fn      Task
	ctx     simCtx
	u       *unit
	started bool
	err     any
}

func newSimTask(rt *Runtime, f *sched.Frame, fn Task) *simTask {
	t := rt.getTask()
	t.fn = fn
	t.ctx = simCtx{rt: rt, frame: f, task: t}
	return t
}

func (rt *Runtime) getTask() *simTask {
	a := rt.arena
	if n := len(a.tasks); n > 0 {
		t := a.tasks[n-1]
		a.tasks = a.tasks[:n-1]
		return t
	}
	return &simTask{}
}

// putTask clears a finished task record — dropping its frame and closure
// references for the collector — and pools it for the next frame.
func (rt *Runtime) putTask(t *simTask) {
	*t = simTask{}
	rt.arena.tasks = append(rt.arena.tasks, t)
}

// main is the task goroutine body: run the user function, then an implicit
// sync (every Cilk function syncs before returning), then yield Return.
func (t *simTask) main() {
	defer func() {
		//numaws:recover-ok goroutine relay, not containment: the panic is re-raised on the engine goroutine by simRunner.Resume
		if p := recover(); p != nil {
			if _, unwind := p.(unitUnwind); unwind {
				return // torn-down Runtime: no engine is listening for a yield
			}
			t.err = p
			t.u.yield <- sched.Yield{Kind: sched.YieldReturn, Cost: t.ctx.cost}
		}
	}()
	t.fn(&t.ctx)
	if t.ctx.spawned {
		t.ctx.Sync()
	}
	t.u.yield <- sched.Yield{Kind: sched.YieldReturn, Cost: t.ctx.cost}
}

// simCtx implements Context on the simulated platform.
type simCtx struct {
	rt      *Runtime
	frame   *sched.Frame
	task    *simTask
	worker  int
	core    int
	start   int64 // virtual time at which the current strand was resumed
	cost    int64 // cycles accumulated in the current strand
	spawned bool  // whether anything was spawned since the last sync
}

// now is the strand's current virtual time, so DRAM bandwidth queuing sees
// real arrival times.
func (c *simCtx) now() int64 { return c.start + c.cost }

var _ Context = (*simCtx)(nil)

func (c *simCtx) Spawn(t Task)          { c.spawnAt(c.frame.Place, t) }
func (c *simCtx) SpawnAt(p int, t Task) { c.spawnAt(c.checkPlace(p), t) }

func (c *simCtx) checkPlace(p int) int {
	if p != PlaceAny && (p < 0 || p >= c.NumPlaces()) {
		panic(fmt.Sprintf("core: place %d out of range [0,%d)", p, c.NumPlaces()))
	}
	return p
}

func (c *simCtx) spawnAt(place int, fn Task) {
	child := c.rt.engine.NewFrame(c.frame, place)
	child.Data = newSimTask(c.rt, child, fn)
	c.spawned = true
	c.task.u.yield <- sched.Yield{Kind: sched.YieldSpawn, Cost: c.cost, Child: child}
	c.cost = 0
	c.resumeWait()
}

func (c *simCtx) Sync() {
	c.spawned = false
	c.task.u.yield <- sched.Yield{Kind: sched.YieldSync, Cost: c.cost}
	c.cost = 0
	c.resumeWait()
}

// resumeWait parks the task goroutine until the engine hands control
// back. On a torn-down Runtime the wake comes from closeUnits closing the
// channel instead; the poisoned flag distinguishes the two, and the
// unwind panic retires the goroutine through main's recover.
func (c *simCtx) resumeWait() {
	<-c.task.u.resume
	if c.rt.poisoned {
		panic(unitUnwind{})
	}
}

// Call runs t as a plain (non-spawn) Cilk function call: same worker, no
// stealable continuation, but its own frame — so a cilk_sync inside t waits
// only for t's own spawned children, never the caller's.
func (c *simCtx) Call(t Task) {
	child := c.rt.engine.NewCalledFrame(c.frame, c.frame.Place)
	child.Data = newSimTask(c.rt, child, t)
	c.task.u.yield <- sched.Yield{Kind: sched.YieldCall, Cost: c.cost, Child: child}
	c.cost = 0
	c.resumeWait()
}

func (c *simCtx) Compute(n int64) { c.cost += n }

func (c *simCtx) Read(r *memory.Region, off, n int64) {
	c.cost += c.rt.caches.AccessRange(c.now(), c.core, r, off, n, false)
}

func (c *simCtx) Write(r *memory.Region, off, n int64) {
	c.cost += c.rt.caches.AccessRange(c.now(), c.core, r, off, n, true)
}

func (c *simCtx) ReadStrided(r *memory.Region, off, stride, elem int64, count int) {
	c.cost += c.rt.caches.AccessStrided(c.now(), c.core, r, off, stride, elem, count, false)
}

func (c *simCtx) WriteStrided(r *memory.Region, off, stride, elem int64, count int) {
	c.cost += c.rt.caches.AccessStrided(c.now(), c.core, r, off, stride, elem, count, true)
}

func (c *simCtx) NumPlaces() int { return c.rt.engine.Places() }
func (c *simCtx) Place() int     { return c.frame.Place }
func (c *simCtx) SetPlace(p int) { c.frame.Place = c.checkPlace(p) }
func (c *simCtx) Worker() int    { return c.worker }

// QueueCycles reports the total extra cycles the run paid to DRAM bandwidth
// congestion (see cache.Latency.DRAMOccupancy).
func (rt *Runtime) QueueCycles() int64 { return rt.caches.QueueCycles }
