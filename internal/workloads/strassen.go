package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/memory"
)

// Strassen is the paper's strassen benchmark: matrix multiplication that
// "performs seven recursive matrix multiplications and a bunch of
// additions". Temporaries for the quadrant sums and the seven products are
// preallocated as a tree in Prepare, so parallel branches never contend.
//
// Per the paper, strassen uses no locality hints even on NUMA-WS:
// "Sub-matrices of the inputs are used in different parts of the
// computation, and thus the data necessarily has to be accessed by multiple
// sockets." The Aware flag therefore only selects the allocation policy of
// the inputs. The Z variant (strassen-z) applies the blocked Z-Morton
// layout to inputs, output, and temporaries.
type Strassen struct {
	reusable
	refShared
	cfg   Config
	n     int
	base  int
	zkind bool

	a, b, c *layout.Matrix
	temps   *stNode
	places  int
	alloc   *memory.Allocator
	nameCtr int

	// mats records every matrix in first-build order so a reused instance
	// can rebind the same matrices to a fresh allocator: newMatrix is
	// deterministic, so replaying it yields the same names in the same
	// order and the pooled instance reproduces the first run's layout.
	mats []*layout.Matrix
	matI int
}

// stNode holds one recursion level's temporaries: five A-side sums, five
// B-side sums, seven products, and the children for the recursive products.
type stNode struct {
	s    [5]*layout.Matrix
	t    [5]*layout.Matrix
	m    [7]*layout.Matrix
	kids [7]*stNode
}

// NewStrassen builds an n x n Strassen multiply recursing down to base; z
// selects the blocked Z-Morton variant.
func NewStrassen(n, base int, z bool, cfg Config) *Strassen {
	return &Strassen{cfg: cfg, n: n, base: base, zkind: z}
}

// Name implements Workload.
func (s *Strassen) Name() string {
	if s.zkind {
		return "strassen-z"
	}
	return "strassen"
}

// Prepare implements Workload.
func (s *Strassen) Prepare(rt *core.Runtime) {
	s.places = rt.Places()
	s.alloc = rt.Allocator()
	first := len(s.mats) == 0
	s.nameCtr = 0
	s.matI = 0
	s.a = s.newMatrix("A", s.n)
	s.b = s.newMatrix("B", s.n)
	s.c = s.newMatrix("C", s.n)
	s.temps = s.buildTemps(s.n)
	// No data reset on reuse: A and B are read-only during the run, and
	// every cell of C and of the temporaries is written (set, not
	// accumulated) before it is read.
	if first {
		s.a.FillRandom(s.cfg.Seed)
		s.b.FillRandom(s.cfg.Seed + 1)
	}
}

func (s *Strassen) newMatrix(what string, n int) *layout.Matrix {
	kind, block := layout.RowMajor, 0
	if s.zkind && n >= s.base && n%s.base == 0 {
		kind, block = layout.BlockedMorton, s.base
	}
	s.nameCtr++
	name := fmt.Sprintf("%s.%s%d.%d", s.Name(), what, n, s.nameCtr)
	pol := s.cfg.basePolicy()
	if what == "S" || what == "T" || what == "M" {
		// Temporaries are heap allocations a real runtime first-touches on
		// the worker that computes them — naturally distributed.
		pol = memory.FirstTouch{}
	}
	if s.matI < len(s.mats) {
		m := s.mats[s.matI]
		s.matI++
		m.Rebind(s.alloc, name, pol)
		return m
	}
	m := layout.NewMatrix(s.alloc, name, n, kind, block, pol)
	s.mats = append(s.mats, m)
	s.matI++
	return m
}

func (s *Strassen) buildTemps(n int) *stNode {
	if n <= s.base {
		return nil
	}
	h := n / 2
	node := &stNode{}
	for i := 0; i < 5; i++ {
		node.s[i] = s.newMatrix("S", h)
		node.t[i] = s.newMatrix("T", h)
	}
	for i := 0; i < 7; i++ {
		node.m[i] = s.newMatrix("M", h)
		node.kids[i] = s.buildTemps(h)
	}
	return node
}

// view is a square sub-matrix window.
type view struct {
	m      *layout.Matrix
	r0, c0 int
	n      int
}

func whole(m *layout.Matrix) view { return view{m: m, n: m.N} }

func (v view) quad(qr, qc int) view {
	h := v.n / 2
	return view{m: v.m, r0: v.r0 + qr*h, c0: v.c0 + qc*h, n: h}
}

func (v view) at(r, c int) float64     { return v.m.At(v.r0+r, v.c0+c) }
func (v view) set(r, c int, x float64) { v.m.Set(v.r0+r, v.c0+c, x) }

// chargeRow charges an access to the length-v.n row r of the view, split at
// block boundaries for blocked layouts.
func (v view) chargeRow(ctx core.Context, r int, write bool) {
	row, col, w := v.r0+r, v.c0, v.n
	if v.m.Kind == layout.BlockedMorton {
		b := v.m.Block
		for w > 0 {
			chunk := b - col%b
			if chunk > w {
				chunk = w
			}
			off, size := v.m.RowSpan(row, col, chunk)
			if write {
				ctx.Write(v.m.R, off, size)
			} else {
				ctx.Read(v.m.R, off, size)
			}
			col += chunk
			w -= chunk
		}
		return
	}
	off, size := v.m.RowSpan(row, col, w)
	if write {
		ctx.Write(v.m.R, off, size)
	} else {
		ctx.Read(v.m.R, off, size)
	}
}

// Root implements Workload.
func (s *Strassen) Root() core.Task {
	return func(ctx core.Context) {
		s.mul(ctx, whole(s.c), whole(s.a), whole(s.b), s.temps)
	}
}

// mul computes C = A * B by Strassen recursion.
func (s *Strassen) mul(ctx core.Context, c, a, b view, node *stNode) {
	if c.n <= s.base {
		s.baseMul(ctx, c, a, b, false)
		return
	}
	a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
	b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)
	s1, s2, s3, s4, s5 := whole(node.s[0]), whole(node.s[1]), whole(node.s[2]), whole(node.s[3]), whole(node.s[4])
	t1, t2, t3, t4, t5 := whole(node.t[0]), whole(node.t[1]), whole(node.t[2]), whole(node.t[3]), whole(node.t[4])

	// The "bunch of additions": ten quadrant sums, in parallel.
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, s1, a11, a22, false) }) // S1 = A11+A22
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, s2, a21, a22, false) }) // S2 = A21+A22
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, s3, a11, a12, false) }) // S3 = A11+A12
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, s4, a21, a11, true) })  // S4 = A21-A11
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, s5, a12, a22, true) })  // S5 = A12-A22
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, t1, b11, b22, false) }) // T1 = B11+B22
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, t2, b12, b22, true) })  // T2 = B12-B22
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, t3, b21, b11, true) })  // T3 = B21-B11
	ctx.Spawn(func(cc core.Context) { s.addSub(cc, t4, b11, b12, false) }) // T4 = B11+B12
	ctx.Call(func(cc core.Context) { s.addSub(cc, t5, b21, b22, false) })  // T5 = B21+B22
	ctx.Sync()

	// The seven recursive products, in parallel.
	m1, m2, m3, m4 := whole(node.m[0]), whole(node.m[1]), whole(node.m[2]), whole(node.m[3])
	m5, m6, m7 := whole(node.m[4]), whole(node.m[5]), whole(node.m[6])
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m1, s1, t1, node.kids[0]) }) // M1 = S1*T1
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m2, s2, b11, node.kids[1]) })
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m3, a11, t2, node.kids[2]) })
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m4, a22, t3, node.kids[3]) })
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m5, s3, b22, node.kids[4]) })
	ctx.Spawn(func(cc core.Context) { s.mul(cc, m6, s4, t4, node.kids[5]) })
	ctx.Call(func(cc core.Context) { s.mul(cc, m7, s5, t5, node.kids[6]) })
	ctx.Sync()

	// Combine into the C quadrants, in parallel.
	c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)
	ctx.Spawn(func(cc core.Context) { // C11 = M1 + M4 - M5 + M7
		s.combine(cc, c11, []view{m1, m4, m5, m7}, []float64{1, 1, -1, 1})
	})
	ctx.Spawn(func(cc core.Context) { // C12 = M3 + M5
		s.combine(cc, c12, []view{m3, m5}, []float64{1, 1})
	})
	ctx.Spawn(func(cc core.Context) { // C21 = M2 + M4
		s.combine(cc, c21, []view{m2, m4}, []float64{1, 1})
	})
	// C22 = M1 - M2 + M3 + M6
	ctx.Call(func(cc core.Context) {
		s.combine(cc, c22, []view{m1, m2, m3, m6}, []float64{1, -1, 1, 1})
	})
	ctx.Sync()
}

// blockwise reports whether every view is block-aligned on a BlockedMorton
// matrix with a common block size, in which case elementwise passes should
// iterate block by block: each block is one contiguous, streamable span
// (iterating such matrices row-wise would fragment every row into
// block-width pieces — precisely the access pattern the layout
// transformation exists to avoid).
func blockwise(vs ...view) (int, bool) {
	b := 0
	for _, v := range vs {
		if v.m.Kind != layout.BlockedMorton {
			return 0, false
		}
		if b == 0 {
			b = v.m.Block
		}
		if v.m.Block != b || v.r0%b != 0 || v.c0%b != 0 || v.n%b != 0 {
			return 0, false
		}
	}
	return b, true
}

// chargeBlock charges one whole-block access of the b x b tile at (r, c) of
// the view.
func (v view) chargeBlock(ctx core.Context, r, c int, write bool) {
	off, size := v.m.BlockSpan(v.r0+r, v.c0+c)
	if write {
		ctx.Write(v.m.R, off, size)
	} else {
		ctx.Read(v.m.R, off, size)
	}
}

// addSub computes dst = x + y (or x - y), parallel over row bands (or block
// rows for blocked layouts).
func (s *Strassen) addSub(ctx core.Context, dst, x, y view, sub bool) {
	apply := func(r, j int) {
		if sub {
			dst.set(r, j, x.at(r, j)-y.at(r, j))
		} else {
			dst.set(r, j, x.at(r, j)+y.at(r, j))
		}
	}
	if b, ok := blockwise(dst, x, y); ok {
		nb := dst.n / b
		core.SpawnRange(ctx, 0, nb, 1, func(c core.Context, lo, hi int) {
			for br := lo; br < hi; br++ {
				for bc := 0; bc < nb; bc++ {
					for i := 0; i < b; i++ {
						for j := 0; j < b; j++ {
							apply(br*b+i, bc*b+j)
						}
					}
					x.chargeBlock(c, br*b, bc*b, false)
					y.chargeBlock(c, br*b, bc*b, false)
					dst.chargeBlock(c, br*b, bc*b, true)
				}
			}
			c.Compute(int64(hi-lo) * int64(dst.n) * int64(b))
		})
		return
	}
	grain := 4096 / dst.n
	if grain < 1 {
		grain = 1
	}
	core.SpawnRange(ctx, 0, dst.n, grain, func(c core.Context, lo, hi int) {
		for r := lo; r < hi; r++ {
			for j := 0; j < dst.n; j++ {
				apply(r, j)
			}
			x.chargeRow(c, r, false)
			y.chargeRow(c, r, false)
			dst.chargeRow(c, r, true)
		}
		c.Compute(int64(hi-lo) * int64(dst.n))
	})
}

// combine accumulates weighted products into a C quadrant, parallel over
// row bands (or block rows for blocked layouts).
func (s *Strassen) combine(ctx core.Context, dst view, ms []view, w []float64) {
	apply := func(r, j int) {
		v := 0.0
		for k := range ms {
			v += w[k] * ms[k].at(r, j)
		}
		dst.set(r, j, v)
	}
	all := append([]view{dst}, ms...)
	if b, ok := blockwise(all...); ok {
		nb := dst.n / b
		core.SpawnRange(ctx, 0, nb, 1, func(c core.Context, lo, hi int) {
			for br := lo; br < hi; br++ {
				for bc := 0; bc < nb; bc++ {
					for i := 0; i < b; i++ {
						for j := 0; j < b; j++ {
							apply(br*b+i, bc*b+j)
						}
					}
					for k := range ms {
						ms[k].chargeBlock(c, br*b, bc*b, false)
					}
					dst.chargeBlock(c, br*b, bc*b, true)
				}
			}
			c.Compute(int64(hi-lo) * int64(dst.n) * int64(b) * int64(len(ms)))
		})
		return
	}
	grain := 4096 / dst.n
	if grain < 1 {
		grain = 1
	}
	core.SpawnRange(ctx, 0, dst.n, grain, func(c core.Context, lo, hi int) {
		for r := lo; r < hi; r++ {
			for j := 0; j < dst.n; j++ {
				apply(r, j)
			}
			for k := range ms {
				ms[k].chargeRow(c, r, false)
			}
			dst.chargeRow(c, r, true)
		}
		c.Compute(int64(hi-lo) * int64(dst.n) * int64(len(ms)))
	})
}

// baseMul is the sequential tile multiply (C = A*B, or += when acc).
func (s *Strassen) baseMul(ctx core.Context, c, a, b view, acc bool) {
	n := c.n
	chargeTile(ctx, a.m, a.r0, a.c0, n, false)
	chargeTile(ctx, b.m, b.r0, b.c0, n, false)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.0
			if acc {
				v = c.at(i, j)
			}
			for k := 0; k < n; k++ {
				v += a.at(i, k) * b.at(k, j)
			}
			c.set(i, j, v)
		}
	}
	chargeTile(ctx, c.m, c.r0, c.c0, n, true)
	ctx.Compute(int64(n) * int64(n) * int64(n))
}

// Verify implements Workload: Strassen's result must match the naive
// product within numerical tolerance.
func (s *Strassen) Verify() error {
	v, _ := s.refCache().Do(s.Name()+".ref", func() (any, error) {
		return naiveMul(s.a, s.b), nil
	})
	ref := v.([]float64)
	for r := 0; r < s.n; r++ {
		for c := 0; c < s.n; c++ {
			got := s.c.At(r, c)
			want := ref[r*s.n+c]
			d := got - want
			if d < -1e-4 || d > 1e-4 {
				return fmt.Errorf("%s: C[%d,%d] = %g, want %g", s.Name(), r, c, got, want)
			}
		}
	}
	return nil
}
