package workloads

import (
	"fmt"

	"repro/internal/core"
)

// Fib is the classic Cilk fib benchmark: the doubly recursive Fibonacci
// computation, the canonical spawn-overhead stress test. Its dag is a pure
// binary spawn tree with no memory footprint at all — every strand is
// spawn bookkeeping plus a little arithmetic — so it isolates the
// scheduler's per-spawn and per-steal costs from the memory system.
//
// Like matmul and strassen, fib takes no locality hints on either
// platform: there is no data to co-locate with, so the aware flag is
// dropped.
type Fib struct {
	reusable
	n, base int
	result  uint64
}

// NewFib builds a fib(n) computation that spawns recursively down to
// fib(base), below which it computes serially. Config is accepted for
// suite uniformity; fib has no inputs to seed and no placement to choose.
func NewFib(n, base int, _ Config) *Fib {
	if base < 2 {
		base = 2
	}
	if n < 0 {
		n = 0
	}
	return &Fib{n: n, base: base}
}

// Name implements Workload.
func (f *Fib) Name() string { return "fib" }

// Prepare implements Workload: fib allocates nothing.
func (f *Fib) Prepare(*core.Runtime) {}

// Root implements Workload.
func (f *Fib) Root() core.Task {
	return func(ctx core.Context) {
		f.result = fibRec(ctx, f.n, f.base)
	}
}

// fibRec is the Cilk fib recursion: spawn fib(n-1), call fib(n-2), sync,
// add. Below base the subtree runs serially.
func fibRec(ctx core.Context, n, base int) uint64 {
	if n < base {
		return fibLeaf(ctx, n)
	}
	var a, b uint64
	ctx.Spawn(func(c core.Context) { a = fibRec(c, n-1, base) })
	ctx.Call(func(c core.Context) { b = fibRec(c, n-2, base) })
	ctx.Sync()
	ctx.Compute(4) // the two returns and the add
	return a + b
}

// fibLeaf is the serial base case. The value is computed iteratively (so
// the host cost stays linear) while the strand is charged what the serial
// doubly recursive fib(n) would cost: one visit per call-tree node, and the
// recursive serial fib(n) makes 2*fib(n+1)-1 calls.
func fibLeaf(ctx core.Context, n int) uint64 {
	calls := 2*fibValue(n+1) - 1
	ctx.Compute(int64(calls) * 3)
	return fibValue(n)
}

// fibValue is the iterative reference (exact in uint64 for n <= 93).
func fibValue(n int) uint64 {
	var a, b uint64 = 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Verify implements Workload: the spawned recursion must agree with the
// iterative serial reference.
func (f *Fib) Verify() error {
	if want := fibValue(f.n); f.result != want {
		return fmt.Errorf("fib: fib(%d) = %d, want %d", f.n, f.result, want)
	}
	return nil
}
