package workloads

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// NQueens is the classic Cilk nqueens benchmark: count every placement of
// n non-attacking queens on an n x n board by backtracking search. The
// parallel dag is highly irregular — each branch point has a
// data-dependent number of children and subtree sizes vary by orders of
// magnitude — which exercises the scheduler's load balancing in a way the
// regular divide-and-conquer benchmarks do not.
//
// Like fib, nqueens carries no data arrays, so it is hint-free on both
// platforms: the aware flag is dropped.
type NQueens struct {
	reusable
	refShared
	n     int
	depth int // spawn per row down to this depth, then search serially
	count int64
}

// NewNQueens builds an n-queens counting search that spawns a task per
// viable queen placement for the first depth rows. Config is accepted for
// suite uniformity; the search has no inputs to seed.
func NewNQueens(n, depth int, _ Config) *NQueens {
	if n < 1 {
		n = 1
	}
	if depth < 0 {
		depth = 0
	}
	if depth > n {
		depth = n
	}
	return &NQueens{n: n, depth: depth}
}

// Name implements Workload.
func (q *NQueens) Name() string { return "nqueens" }

// Prepare implements Workload: the board state is three bitmasks passed
// down the recursion; nothing is allocated.
func (q *NQueens) Prepare(*core.Runtime) {}

// Root implements Workload.
func (q *NQueens) Root() core.Task {
	return func(ctx core.Context) {
		q.count = q.search(ctx, 0, 0, 0, 0)
	}
}

// search counts completions from a partial placement: row queens placed,
// cols/diag1/diag2 the attacked sets as bitmasks. Above the spawn depth
// each viable column spawns a child counting into its own slot (no shared
// state, so the same code is race-free under real parallelism); below it
// the search runs serially, charging one cycle-triple per visited node.
func (q *NQueens) search(ctx core.Context, row int, cols, d1, d2 uint32) int64 {
	if row == q.n {
		return 1
	}
	if row >= q.depth {
		nodes := int64(0)
		total := q.serial(row, cols, d1, d2, &nodes)
		// Eight cycles per visited node: the candidate-mask arithmetic,
		// the branch, and the call overhead of the serial recursion.
		ctx.Compute(nodes * 8)
		return total
	}
	free := ^(cols | d1 | d2) & (1<<uint(q.n) - 1)
	// One slot per candidate column: children write disjoint slots and the
	// parent sums after the sync, keeping the count deterministic.
	counts := make([]int64, q.n)
	spawned := 0
	for f := free; f != 0; f &= f - 1 {
		bit := f & -f
		col := bits.TrailingZeros32(bit)
		ncols, nd1, nd2 := cols|bit, (d1|bit)<<1&(1<<uint(q.n)-1), (d2|bit)>>1
		slot := &counts[col]
		last := f == bit // final candidate runs in place, Cilk style
		body := func(c core.Context) { *slot = q.search(c, row+1, ncols, nd1, nd2) }
		if last {
			ctx.Call(body)
		} else {
			ctx.Spawn(body)
		}
		spawned++
	}
	ctx.Sync()
	ctx.Compute(int64(spawned) * 4)
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// serial is the sequential backtracking base case, counting visited nodes
// so the caller can charge the strand.
func (q *NQueens) serial(row int, cols, d1, d2 uint32, nodes *int64) int64 {
	*nodes++
	if row == q.n {
		return 1
	}
	var total int64
	mask := uint32(1<<uint(q.n) - 1)
	for f := ^(cols | d1 | d2) & mask; f != 0; f &= f - 1 {
		bit := f & -f
		total += q.serial(row+1, cols|bit, (d1|bit)<<1&mask, (d2|bit)>>1, nodes)
	}
	return total
}

// Verify implements Workload: recount serially (an independent walk of the
// same search space) and, for board sizes with published solution counts,
// cross-check against the known value.
func (q *NQueens) Verify() error {
	v, _ := q.refCache().Do("nqueens.want", func() (any, error) {
		var nodes int64
		return q.serial(0, 0, 0, 0, &nodes), nil
	})
	want := v.(int64)
	if q.count != want {
		return fmt.Errorf("nqueens: counted %d solutions for n=%d, serial recount says %d", q.count, q.n, want)
	}
	// Known counts (OEIS A000170) for the sizes the suite uses.
	known := map[int]int64{
		4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
		11: 2680, 12: 14200, 13: 73712,
	}
	if k, ok := known[q.n]; ok && q.count != k {
		return fmt.Errorf("nqueens: counted %d solutions for n=%d, the published count is %d", q.count, q.n, k)
	}
	return nil
}
