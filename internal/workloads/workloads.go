// Package workloads implements the evaluation benchmarks and the
// name-keyed registry that makes the suite an open experiment axis.
//
// The in-tree suite is the paper's nine configurations — cg, cilksort,
// heat, hull (two inputs), matmul, strassen, plus the blocked-Z-Morton
// variants matmul-z and strassen-z — and five DAG-diverse additions from
// the classic Cilk suite: fib, nqueens, fft, lu and rectmul. All register
// at init (suite.go, suite_cilk.go); the harness, the public facade and
// the CLI derive their suites from the registry (Register/Lookup/Names/
// Specs), and pkg/numaws.RegisterBenchmark opens registration to
// embedding programs.
//
// Each benchmark performs the real computation on real Go slices (so results
// are verifiable against independent serial references) while annotating its
// compute and memory footprint through the Context, which is what the
// simulated platform charges. Every benchmark comes in two configurations:
// the baseline (what the paper runs on Cilk Plus: best-of first-touch or
// interleave allocation, no hints) and the NUMA-aware configuration
// (partitioned allocation plus locality hints, what the paper runs on
// NUMA-WS). Benchmarks with no data to place (fib, nqueens) or that the
// paper runs unhinted (matmul, strassen, rectmul) drop the aware flag.
package workloads

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// Workload is one benchmark instance. Instances are single-use: Prepare
// allocates and initializes inputs on a Runtime, Root returns the timed
// computation, and Verify checks the computed result after the run.
type Workload interface {
	// Name is the benchmark's table name (e.g. "cilksort", "matmul-z").
	Name() string
	// Prepare allocates simulated regions on rt and fills the real data.
	Prepare(rt *core.Runtime)
	// Root is the timed computation (the paper times the solve phase, not
	// input generation).
	Root() core.Task
	// Verify checks the result against an independent serial reference.
	Verify() error
}

// Config selects the benchmark configuration.
type Config struct {
	// Aware enables the NUMA-aware setup: partitioned data placement and
	// locality hints (the NUMA-WS side of the paper's tables).
	Aware bool
	// Base is the allocation policy for the baseline configuration; nil
	// means memory.BindTo{Socket: 0}, i.e. first-touch after serial
	// initialization. The paper's Cilk Plus runs pick the better of
	// first-touch and interleave per benchmark; the harness encodes those
	// choices.
	Base memory.Policy
	// Seed drives input generation.
	Seed int64
}

func (c Config) basePolicy() memory.Policy {
	if c.Base != nil {
		return c.Base
	}
	return memory.BindTo{Socket: 0}
}

// bandPolicy returns the allocation policy for a banded array: partitioned
// over places when aware, the base policy otherwise.
func (c Config) bandPolicy(places int) memory.Policy {
	if !c.Aware {
		return c.basePolicy()
	}
	return memory.Partition(places)
}

// scratchPolicy is the policy for arrays that are never initialized before
// the timed region (temporaries, pack buffers): under the baseline they get
// genuine first-touch — each page binds to whichever worker writes it first,
// as the OS would do — and under the aware configuration they are banded
// like everything else.
func (c Config) scratchPolicy(places int) memory.Policy {
	if !c.Aware {
		return memory.FirstTouch{}
	}
	return c.bandPolicy(places)
}

// rng is a small deterministic generator for input data (split-mix style so
// workloads do not depend on math/rand stream stability).
type rng struct{ s uint64 }

func newRNG(seed int64) *rng { return &rng{s: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) int63() int64     { return int64(r.next() >> 1) }
func (r *rng) intn(n int) int   { return int(r.next() % uint64(n)) }
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// placeOf maps a band index in [0, bands) to a place in [0, places).
func placeOf(band, bands, places int) int {
	if places <= 1 {
		return core.PlaceAny
	}
	p := band * places / bands
	if p >= places {
		p = places - 1
	}
	return p
}

// spawnBands runs body(band) for every band in [0, bands), spawning
// recursively (binary) and earmarking each band for its place when aware is
// set. This is the data-parallel skeleton the banded benchmarks (heat, cg,
// hull's scan passes) share.
func spawnBands(ctx core.Context, bands, places int, aware bool, body func(core.Context, int)) {
	var rec func(c core.Context, lo, hi int)
	rec = func(c core.Context, lo, hi int) {
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			l, h := lo, mid
			if aware {
				// Earmark the subtree for the place of its middle band;
				// descendants inherit and deeper spawns refine the hint as
				// ranges narrow — the paper's default inheritance. With
				// continuation stealing this is what actually places leaf
				// work: a leaf always runs on the worker that spawned it,
				// so the subtree frame must already be on the right socket
				// by then.
				c.SpawnAt(placeOf((l+h-1)/2, bands, places), func(cc core.Context) { rec(cc, l, h) })
			} else {
				c.Spawn(func(cc core.Context) { rec(cc, l, h) })
			}
			lo = mid
		}
		if aware {
			if p := placeOf(lo, bands, places); p != core.PlaceAny {
				c.SetPlace(p)
			}
		}
		body(c, lo)
	}
	rec(ctx, 0, bands)
	ctx.Sync()
}
