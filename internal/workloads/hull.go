package workloads

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/memory"
)

// Hull is the paper's hull benchmark (from the problem-based benchmark
// suite): quickhull over n points. "The algorithm works by repeatedly
// dividing up the space, drawing maximum triangles, and eliminating points
// inside the triangles." The parallel work is dominated by data-parallel
// passes — max-distance reductions and prefix-sum style packing — over index
// arrays.
//
// Two inputs reproduce the paper's hull1/hull2 split: InDisk scatters points
// inside a disk (points are eliminated quickly; the run is dominated by the
// packing passes, which "simply do not have much locality"), while OnCircle
// places every point on the hull (much more computation per point).
//
// The aware configuration bands the point and index arrays across sockets
// (spreading memory traffic) but deliberately sets no locality hints: the
// paper itself observes that hull's dominant phases "simply do not have much
// locality", and in this latency-only model hint-driven pushing costs more
// than the single-pass phases can recoup. EXPERIMENTS.md records this as a
// deviation: the paper's modest hull gains come from bandwidth spreading,
// which the substitution does not model.
type Hull struct {
	reusable
	refShared
	cfg     Config
	n       int
	grain   int
	circle  bool
	nameStr string

	x, y       *memory.F64
	idx        [2]*memory.I32
	flags      *memory.I32
	hullMark   []bool
	places     int
	partialCnt [][2]int // per-band reduction slots (root phases only)
	bands      int
}

type maxPartial struct {
	dist float64
	idx  int32
}

// Input selects the point distribution.
type Input int

// The two paper inputs.
const (
	// InDisk is hull1: points uniform in a disk.
	InDisk Input = iota
	// OnCircle is hull2: points on a circle (all points are hull vertices).
	OnCircle
)

// NewHull builds a quickhull instance with n points of the given input
// distribution; segments at or below grain are processed serially.
func NewHull(n, grain, bands int, input Input, cfg Config) *Hull {
	if grain < 64 {
		grain = 64
	}
	if bands < 1 {
		bands = 1
	}
	name := "hull1"
	if input == OnCircle {
		name = "hull2"
	}
	return &Hull{cfg: cfg, n: n, grain: grain, bands: bands,
		circle: input == OnCircle, nameStr: name}
}

// Name implements Workload.
func (h *Hull) Name() string { return h.nameStr }

// Prepare implements Workload.
func (h *Hull) Prepare(rt *core.Runtime) {
	h.places = rt.Places()
	alloc := rt.Allocator()
	pol := h.cfg.bandPolicy(h.places)
	first := h.x == nil
	h.x = memory.ReuseF64(h.x, alloc, h.nameStr+".x", h.n, pol)
	h.y = memory.ReuseF64(h.y, alloc, h.nameStr+".y", h.n, pol)
	// The index and flag buffers are pure scratch: first-touch under the
	// baseline, banded when aware.
	scratch := h.cfg.scratchPolicy(h.places)
	h.idx[0] = memory.ReuseI32(h.idx[0], alloc, h.nameStr+".idx0", h.n, scratch)
	h.idx[1] = memory.ReuseI32(h.idx[1], alloc, h.nameStr+".idx1", h.n, scratch)
	h.flags = memory.ReuseI32(h.flags, alloc, h.nameStr+".flags", h.n, scratch)
	if !first {
		// The points are read-only and the scratch buffers are written
		// before being read; only the accumulated hull marks need clearing.
		clear(h.hullMark)
		return
	}
	h.hullMark = make([]bool, h.n)
	h.partialCnt = make([][2]int, h.bands)

	rng := newRNG(h.cfg.Seed)
	for i := 0; i < h.n; i++ {
		theta := rng.float64() * 2 * math.Pi
		rad := 1.0
		if !h.circle {
			rad = math.Sqrt(rng.float64())
		}
		h.x.Data[i] = rad * math.Cos(theta)
		h.y.Data[i] = rad * math.Sin(theta)
	}
}

// cross computes the z of (b-a) x (p-a): positive iff p is strictly left of
// the directed line a -> b.
func (h *Hull) cross(a, b, p int32) float64 {
	ax, ay := h.x.Data[a], h.y.Data[a]
	return (h.x.Data[b]-ax)*(h.y.Data[p]-ay) - (h.y.Data[b]-ay)*(h.x.Data[p]-ax)
}

// chargePoint charges the gather reads of one point's coordinates.
func (h *Hull) chargePoint(ctx core.Context, p int32) {
	off, sz := h.x.Span(int(p), 1)
	ctx.Read(h.x.R, off, sz)
	off, sz = h.y.Span(int(p), 1)
	ctx.Read(h.y.R, off, sz)
}

// Root implements Workload.
func (h *Hull) Root() core.Task {
	return func(ctx core.Context) {
		// Phase 1: find the extreme points in x (banded reduction).
		spawnBands(ctx, h.bands, h.places, false, func(c core.Context, band int) {
			lo := band * h.n / h.bands
			hi := (band + 1) * h.n / h.bands
			minI, maxI := lo, lo
			for i := lo + 1; i < hi; i++ {
				if h.x.Data[i] < h.x.Data[minI] {
					minI = i
				}
				if h.x.Data[i] > h.x.Data[maxI] {
					maxI = i
				}
			}
			h.partialCnt[band] = [2]int{minI, maxI}
			off, sz := h.x.Span(lo, hi-lo)
			c.Read(h.x.R, off, sz)
			c.Compute(int64(hi-lo) * 2)
		})
		minI, maxI := h.partialCnt[0][0], h.partialCnt[0][1]
		for _, p := range h.partialCnt[1:] {
			if h.x.Data[p[0]] < h.x.Data[minI] {
				minI = p[0]
			}
			if h.x.Data[p[1]] > h.x.Data[maxI] {
				maxI = p[1]
			}
		}
		a, b := int32(minI), int32(maxI)
		h.hullMark[a] = true
		h.hullMark[b] = true

		// Phase 2: split all points into the upper side (left of a->b) and
		// lower side (left of b->a), packed into idx[0].
		nUp, nLo := h.packInit(ctx, a, b)

		// Phase 3: recursive quickhull on each side.
		src, dst := 0, 1
		ctx.Spawn(func(c core.Context) { h.rec(c, src, dst, 0, nUp, a, b) })
		ctx.Call(func(c core.Context) { h.rec(c, src, dst, nUp, nUp+nLo, b, a) })
		ctx.Sync()
	}
}

// packInit classifies every point against the a->b line and packs the two
// sides into idx[0]: upper side at [0, nUp), lower side at [nUp, nUp+nLo).
func (h *Hull) packInit(ctx core.Context, a, b int32) (nUp, nLo int) {
	// Pass 1: per-band counts.
	spawnBands(ctx, h.bands, h.places, false, func(c core.Context, band int) {
		lo := band * h.n / h.bands
		hi := (band + 1) * h.n / h.bands
		up, down := 0, 0
		for i := lo; i < hi; i++ {
			s := h.cross(a, b, int32(i))
			switch {
			case s > 0:
				h.flags.Data[i] = 1
				up++
			case s < 0:
				h.flags.Data[i] = 2
				down++
			default:
				h.flags.Data[i] = 0
			}
		}
		h.partialCnt[band] = [2]int{up, down}
		off, sz := h.x.Span(lo, hi-lo)
		c.Read(h.x.R, off, sz)
		off, sz = h.y.Span(lo, hi-lo)
		c.Read(h.y.R, off, sz)
		off, sz = h.flags.Span(lo, hi-lo)
		c.Write(h.flags.R, off, sz)
		c.Compute(int64(hi-lo) * 6)
	})
	// Serial prefix over band counts (h.bands entries, cheap).
	upBase := make([]int, h.bands)
	loBase := make([]int, h.bands)
	for band := 0; band < h.bands; band++ {
		upBase[band] = nUp
		loBase[band] = nLo
		nUp += h.partialCnt[band][0]
		nLo += h.partialCnt[band][1]
	}
	ctx.Compute(int64(h.bands) * 2)
	// Pass 2: scatter into the packed layout.
	total := nUp
	spawnBands(ctx, h.bands, h.places, false, func(c core.Context, band int) {
		lo := band * h.n / h.bands
		hi := (band + 1) * h.n / h.bands
		u, d := upBase[band], total+loBase[band]
		for i := lo; i < hi; i++ {
			switch h.flags.Data[i] {
			case 1:
				h.idx[0].Data[u] = int32(i)
				u++
			case 2:
				h.idx[0].Data[d] = int32(i)
				d++
			}
		}
		off, sz := h.flags.Span(lo, hi-lo)
		c.Read(h.flags.R, off, sz)
		if n := u - upBase[band]; n > 0 {
			off, sz = h.idx[0].Span(upBase[band], n)
			c.Write(h.idx[0].R, off, sz)
		}
		if n := d - (total + loBase[band]); n > 0 {
			off, sz = h.idx[0].Span(total+loBase[band], n)
			c.Write(h.idx[0].R, off, sz)
		}
		c.Compute(int64(hi-lo) * 2)
	})
	return nUp, nLo
}

// rec is one quickhull recursion step over idx[src][lo:hi), the points
// strictly left of a->b. It finds the farthest point f, packs the points
// outside a->f and f->b into idx[dst], and recurses with the buffers
// swapped.
func (h *Hull) rec(ctx core.Context, src, dst, lo, hi int, a, b int32) {
	count := hi - lo
	if count <= 0 {
		return
	}
	if count <= h.grain {
		// Small segment: finish this sub-hull entirely serially (matching
		// the base-case coarsening the paper's benchmarks apply — without
		// it, the fine-grained recursion drowns in scheduling time).
		h.recSerial(ctx, src, dst, lo, hi, a, b)
		return
	}
	in := h.idx[src]
	f := h.farthest(ctx, in, lo, hi, a, b)
	h.hullMark[f] = true

	out := h.idx[dst]
	n1, n2 := h.packParallel(ctx, in, out, lo, hi, a, b, f)
	ctx.Spawn(func(c core.Context) { h.rec(c, dst, src, lo, lo+n1, a, f) })
	ctx.Call(func(c core.Context) { h.rec(c, dst, src, hi-n2, hi, f, b) })
	ctx.Sync()
}

// recSerial finishes a sub-hull without spawning.
func (h *Hull) recSerial(ctx core.Context, src, dst, lo, hi int, a, b int32) {
	if hi-lo <= 0 {
		return
	}
	in, out := h.idx[src], h.idx[dst]
	best := maxPartial{dist: math.Inf(-1), idx: -1}
	for i := lo; i < hi; i++ {
		p := in.Data[i]
		d := h.cross(a, b, p)
		if d > best.dist || (d == best.dist && p < best.idx) {
			best = maxPartial{dist: d, idx: p}
		}
		h.chargePoint(ctx, p)
	}
	off, sz := in.Span(lo, hi-lo)
	ctx.Read(in.R, off, sz)
	ctx.Compute(int64(hi-lo) * 7)
	f := best.idx
	h.hullMark[f] = true
	n1, n2 := h.packSerial(ctx, in, out, lo, hi, a, b, f)
	h.recSerial(ctx, dst, src, lo, lo+n1, a, f)
	h.recSerial(ctx, dst, src, hi-n2, hi, f, b)
}

// farthest finds the point of idx[lo:hi) with the maximum cross distance
// from line a->b, ties broken toward the smaller index for determinism.
func (h *Hull) farthest(ctx core.Context, in *memory.I32, lo, hi int, a, b int32) int32 {
	count := hi - lo
	scan := func(c core.Context, sLo, sHi int) maxPartial {
		best := maxPartial{dist: math.Inf(-1), idx: -1}
		for i := sLo; i < sHi; i++ {
			p := in.Data[i]
			d := h.cross(a, b, p)
			if d > best.dist || (d == best.dist && p < best.idx) {
				best = maxPartial{dist: d, idx: p}
			}
			h.chargePoint(c, p)
		}
		off, sz := in.Span(sLo, sHi-sLo)
		c.Read(in.R, off, sz)
		c.Compute(int64(sHi-sLo) * 7)
		return best
	}
	if count <= h.grain {
		return scan(ctx, lo, hi).idx
	}
	bands := h.bands
	if bands > count/h.grain {
		bands = count/h.grain + 1
	}
	// Per-call partial buffer: concurrent recursion branches each reduce
	// into their own scratch.
	partials := make([]maxPartial, bands)
	spawnBands(ctx, bands, h.places, false, func(c core.Context, band int) {
		sLo := lo + band*count/bands
		sHi := lo + (band+1)*count/bands
		partials[band] = scan(c, sLo, sHi)
	})
	best := partials[0]
	for _, p := range partials[1:bands] {
		if p.dist > best.dist || (p.dist == best.dist && p.idx < best.idx) {
			best = p
		}
	}
	return best.idx
}

// packSerial partitions in[lo:hi) against the two new lines in one pass.
func (h *Hull) packSerial(ctx core.Context, in, out *memory.I32, lo, hi int, a, b, f int32) (n1, n2 int) {
	u, d := lo, hi
	for i := lo; i < hi; i++ {
		p := in.Data[i]
		if p == f {
			continue
		}
		if h.cross(a, f, p) > 0 {
			out.Data[u] = p
			u++
		} else if h.cross(f, b, p) > 0 {
			d--
			out.Data[d] = p
		}
		h.chargePoint(ctx, p)
	}
	// The right side was packed in reverse; restore order for determinism.
	for i, j := d, hi-1; i < j; i, j = i+1, j-1 {
		out.Data[i], out.Data[j] = out.Data[j], out.Data[i]
	}
	off, sz := in.Span(lo, hi-lo)
	ctx.Read(in.R, off, sz)
	if u > lo {
		off, sz = out.Span(lo, u-lo)
		ctx.Write(out.R, off, sz)
	}
	if hi > d {
		off, sz = out.Span(d, hi-d)
		ctx.Write(out.R, off, sz)
	}
	ctx.Compute(int64(hi-lo) * 10)
	return u - lo, hi - d
}

// packParallel is the two-pass banded pack for large segments.
func (h *Hull) packParallel(ctx core.Context, in, out *memory.I32, lo, hi int, a, b, f int32) (n1, n2 int) {
	count := hi - lo
	bands := h.bands
	if bands > count/h.grain {
		bands = count/h.grain + 1
	}
	type cnt struct{ left, right int }
	counts := make([]cnt, bands)
	// Pass 1: classify and count.
	spawnBands(ctx, bands, h.places, false, func(c core.Context, band int) {
		sLo := lo + band*count/bands
		sHi := lo + (band+1)*count/bands
		var k cnt
		for i := sLo; i < sHi; i++ {
			p := in.Data[i]
			switch {
			case p == f:
				h.flags.Data[i] = 0
			case h.cross(a, f, p) > 0:
				h.flags.Data[i] = 1
				k.left++
			case h.cross(f, b, p) > 0:
				h.flags.Data[i] = 2
				k.right++
			default:
				h.flags.Data[i] = 0
			}
			h.chargePoint(c, p)
		}
		counts[band] = k
		off, sz := in.Span(sLo, sHi-sLo)
		c.Read(in.R, off, sz)
		off, sz = h.flags.Span(sLo, sHi-sLo)
		c.Write(h.flags.R, off, sz)
		c.Compute(int64(sHi-sLo) * 12)
	})
	leftBase := make([]int, bands)
	rightBase := make([]int, bands)
	for band := 0; band < bands; band++ {
		leftBase[band] = n1
		rightBase[band] = n2
		n1 += counts[band].left
		n2 += counts[band].right
	}
	ctx.Compute(int64(bands) * 2)
	// Pass 2: scatter. Left side packs forward from lo; right side packs
	// forward into [hi-n2, hi).
	rBase := hi - n2
	spawnBands(ctx, bands, h.places, false, func(c core.Context, band int) {
		sLo := lo + band*count/bands
		sHi := lo + (band+1)*count/bands
		u := lo + leftBase[band]
		d := rBase + rightBase[band]
		for i := sLo; i < sHi; i++ {
			switch h.flags.Data[i] {
			case 1:
				out.Data[u] = in.Data[i]
				u++
			case 2:
				out.Data[d] = in.Data[i]
				d++
			}
		}
		off, sz := h.flags.Span(sLo, sHi-sLo)
		c.Read(h.flags.R, off, sz)
		off, sz = in.Span(sLo, sHi-sLo)
		c.Read(in.R, off, sz)
		if k := u - (lo + leftBase[band]); k > 0 {
			off, sz = out.Span(lo+leftBase[band], k)
			c.Write(out.R, off, sz)
		}
		if k := d - (rBase + rightBase[band]); k > 0 {
			off, sz = out.Span(rBase+rightBase[band], k)
			c.Write(out.R, off, sz)
		}
		c.Compute(int64(sHi-sLo) * 3)
	})
	return n1, n2
}

// Verify implements Workload: the marked points must be exactly the hull of
// the input, as computed by an independent Andrew's monotone chain.
func (h *Hull) Verify() error {
	v, _ := h.refCache().Do(h.nameStr+".hull", func() (any, error) {
		want := map[int32]bool{}
		for _, i := range monotoneChain(h.x.Data, h.y.Data) {
			want[i] = true
		}
		return want, nil
	})
	want := v.(map[int32]bool) // read-only once cached
	var got []int32
	for i, m := range h.hullMark {
		if m {
			got = append(got, int32(i))
		}
	}
	if len(got) != len(want) {
		return fmt.Errorf("%s: found %d hull points, reference has %d", h.nameStr, len(got), len(want))
	}
	for _, i := range got {
		if !want[i] {
			return fmt.Errorf("%s: point %d marked but not on reference hull", h.nameStr, i)
		}
	}
	return nil
}

// monotoneChain computes convex hull indices (strict: collinear boundary
// points excluded) in O(n log n).
func monotoneChain(xs, ys []float64) []int32 {
	n := len(xs)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if xs[a] != xs[b] {
			return xs[a] < xs[b]
		}
		return ys[a] < ys[b]
	})
	cross := func(o, a, b int32) float64 {
		return (xs[a]-xs[o])*(ys[b]-ys[o]) - (ys[a]-ys[o])*(xs[b]-xs[o])
	}
	var hull []int32
	for _, p := range order { // lower
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- { // upper
		p := order[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
