package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/sched"
)

// factories builds small instances of every benchmark, sized for test speed.
func factories(aware bool) map[string]func() Workload {
	cfg := Config{Aware: aware, Seed: 42}
	return map[string]func() Workload{
		"cilksort": func() Workload { return NewCilksort(1<<14, 512, cfg) },
		"heat":     func() Workload { return NewHeat(64, 64, 6, 8, cfg) },
		"cg":       func() Workload { return NewCG(512, 12, 5, 8, cfg) },
		"hull1":    func() Workload { return NewHull(4000, 256, 8, InDisk, cfg) },
		"hull2":    func() Workload { return NewHull(1500, 256, 8, OnCircle, cfg) },
		"matmul":   func() Workload { return NewMatmul(64, 16, false, cfg) },
		"matmul-z": func() Workload { return NewMatmul(64, 16, true, cfg) },
		"strassen": func() Workload { return NewStrassen(64, 16, false, cfg) },
		"strassen-z": func() Workload {
			return NewStrassen(64, 16, true, cfg)
		},
		"fib":     func() Workload { return NewFib(20, 8, cfg) },
		"nqueens": func() Workload { return NewNQueens(8, 2, cfg) },
		"fft":     func() Workload { return NewFFT(1<<10, 8, cfg) },
		"lu":      func() Workload { return NewLU(64, 16, cfg) },
		"rectmul": func() Workload { return NewRectmul(48, 32, 64, 16, cfg) },
	}
}

func newWorkloadRT(p int, pol sched.Policy) *core.Runtime {
	cfg := core.DefaultConfig(p, pol)
	cfg.Sched.Seed = 7
	return core.NewRuntime(cfg)
}

func TestSerialElisionCorrectness(t *testing.T) {
	for name, mk := range factories(false) {
		t.Run(name, func(t *testing.T) {
			w := mk()
			rt := newWorkloadRT(1, sched.Cilk)
			w.Prepare(rt)
			rep := rt.RunSerial(w.Root())
			if rep.Time <= 0 {
				t.Error("TS not positive")
			}
			if err := w.Verify(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestParallelCorrectnessCilk(t *testing.T) {
	for name, mk := range factories(false) {
		t.Run(name, func(t *testing.T) {
			w := mk()
			rt := newWorkloadRT(16, sched.Cilk)
			w.Prepare(rt)
			rep := rt.Run(w.Root())
			if rep.Time <= 0 {
				t.Error("T16 not positive")
			}
			if err := w.Verify(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestParallelCorrectnessNUMAWSAware(t *testing.T) {
	for name, mk := range factories(true) {
		t.Run(name, func(t *testing.T) {
			w := mk()
			rt := newWorkloadRT(32, sched.NUMAWS)
			w.Prepare(rt)
			rep := rt.Run(w.Root())
			if rep.Time <= 0 {
				t.Error("T32 not positive")
			}
			if err := w.Verify(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNativeExecutorCorrectness(t *testing.T) {
	// The same workload code must run correctly under real goroutine
	// parallelism. The Runtime only provides allocation here; execution is
	// native.
	for name, mk := range factories(false) {
		t.Run(name, func(t *testing.T) {
			w := mk()
			rt := newWorkloadRT(1, sched.Cilk) // allocation host only
			w.Prepare(rt)
			pool := native.NewPool(8, 4)
			pool.Run(w.Root())
			if err := w.Verify(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestAwareRunsReduceRemoteAccesses(t *testing.T) {
	// The point of the exercise: on heat (banded stencil), the NUMA-aware
	// configuration must service far fewer accesses remotely than the
	// baseline with first-touch-on-socket-0 placement.
	run := func(aware bool) (remote, total int64) {
		cfg := Config{Aware: aware, Seed: 42}
		w := NewHeat(128, 128, 4, 16, cfg)
		rt := newWorkloadRT(32, sched.NUMAWS)
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return rep.Cache.Remote(), rep.Cache.Total()
	}
	remoteAware, _ := run(true)
	remoteBase, _ := run(false)
	if remoteAware >= remoteBase {
		t.Errorf("aware run has %d remote accesses, baseline %d; binding+hints should reduce them",
			remoteAware, remoteBase)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		w := NewCilksort(1<<13, 256, Config{Aware: true, Seed: 3})
		rt := newWorkloadRT(16, sched.NUMAWS)
		w.Prepare(rt)
		return rt.Run(w.Root()).Time
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed runs diverged: %d vs %d", a, b)
	}
}

func TestHullInputShapes(t *testing.T) {
	// hull2 (on circle) must put every point on the hull; hull1 only a few.
	w2 := NewHull(400, 64, 4, OnCircle, Config{Seed: 1})
	rt := newWorkloadRT(1, sched.Cilk)
	w2.Prepare(rt)
	rt.RunSerial(w2.Root())
	if err := w2.Verify(); err != nil {
		t.Fatal(err)
	}
	marks := 0
	for _, m := range w2.hullMark {
		if m {
			marks++
		}
	}
	if marks != 400 {
		t.Errorf("on-circle input marked %d hull points, want all 400", marks)
	}

	w1 := NewHull(4000, 64, 4, InDisk, Config{Seed: 1})
	rt = newWorkloadRT(1, sched.Cilk)
	w1.Prepare(rt)
	rt.RunSerial(w1.Root())
	if err := w1.Verify(); err != nil {
		t.Fatal(err)
	}
	marks = 0
	for _, m := range w1.hullMark {
		if m {
			marks++
		}
	}
	if marks >= 400 {
		t.Errorf("in-disk input marked %d hull points, expected far fewer than n", marks)
	}
}

func TestHull2HeavierThanHull1(t *testing.T) {
	// "There is a lot more computation in hull2" for the same n.
	ts := func(input Input) int64 {
		w := NewHull(3000, 256, 8, input, Config{Seed: 5})
		rt := newWorkloadRT(1, sched.Cilk)
		w.Prepare(rt)
		return rt.RunSerial(w.Root()).Time
	}
	t1, t2 := ts(InDisk), ts(OnCircle)
	if t2 <= t1 {
		t.Errorf("hull2 TS %d not heavier than hull1 TS %d", t2, t1)
	}
}

func TestZLayoutSpeedsUpSerialMatmul(t *testing.T) {
	// The paper's Fig. 7: matmul-z TS is much lower than matmul TS (73.6s
	// vs 190.9s) because contiguous tiles stream. Check the direction.
	ts := func(z bool) int64 {
		w := NewMatmul(128, 32, z, Config{Seed: 2})
		rt := newWorkloadRT(1, sched.Cilk)
		w.Prepare(rt)
		rep := rt.RunSerial(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return rep.Time
	}
	plain, z := ts(false), ts(true)
	if z >= plain {
		t.Errorf("matmul-z TS %d not faster than matmul TS %d", z, plain)
	}
}

func TestZLayoutSpeedsUpSerialStrassen(t *testing.T) {
	ts := func(z bool) int64 {
		w := NewStrassen(128, 32, z, Config{Seed: 2})
		rt := newWorkloadRT(1, sched.Cilk)
		w.Prepare(rt)
		rep := rt.RunSerial(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return rep.Time
	}
	plain, z := ts(false), ts(true)
	if z >= plain {
		t.Errorf("strassen-z TS %d not faster than strassen TS %d", z, plain)
	}
}

func TestWorkloadNames(t *testing.T) {
	want := map[string]bool{
		"cilksort": true, "heat": true, "cg": true, "hull1": true,
		"hull2": true, "matmul": true, "matmul-z": true,
		"strassen": true, "strassen-z": true,
		"fib": true, "nqueens": true, "fft": true, "lu": true, "rectmul": true,
	}
	for key, mk := range factories(false) {
		if !want[mk().Name()] {
			t.Errorf("factory %q produced unexpected name %q", key, mk().Name())
		}
		if mk().Name() != key {
			t.Errorf("factory key %q != workload name %q", key, mk().Name())
		}
	}
}

func TestCGResidualDecreases(t *testing.T) {
	w := NewCG(256, 10, 8, 4, Config{Seed: 9})
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil { // Verify includes the residual check
		t.Error(err)
	}
}

func TestPlaceOfMapping(t *testing.T) {
	if placeOf(0, 4, 1) != core.PlaceAny {
		t.Error("single place should yield PlaceAny")
	}
	for _, tc := range []struct{ band, bands, places, want int }{
		{0, 4, 4, 0}, {1, 4, 4, 1}, {3, 4, 4, 3},
		{0, 8, 4, 0}, {7, 8, 4, 3},
		{0, 4, 2, 0}, {3, 4, 2, 1},
	} {
		if got := placeOf(tc.band, tc.bands, tc.places); got != tc.want {
			t.Errorf("placeOf(%d,%d,%d) = %d, want %d", tc.band, tc.bands, tc.places, got, tc.want)
		}
	}
}
