package workloads

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func runSort(t *testing.T, n, base, p int, pol sched.Policy, aware bool) *Cilksort {
	t.Helper()
	w := NewCilksort(n, base, Config{Aware: aware, Seed: 11})
	rt := newWorkloadRT(p, pol)
	w.Prepare(rt)
	if p == 1 {
		rt.RunSerial(w.Root())
	} else {
		rt.Run(w.Root())
	}
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCilksortTinyInput(t *testing.T) {
	// Below the base case: the top-level falls straight into quicksort.
	runSort(t, 7, 64, 1, sched.Cilk, false)
	runSort(t, 7, 64, 8, sched.Cilk, false)
}

func TestCilksortNonDivisibleLength(t *testing.T) {
	// n % 4 != 0 exercises the "last quarter is larger" paths.
	for _, n := range []int{1001, 4099, 65537} {
		runSort(t, n, 256, 8, sched.NUMAWS, true)
	}
}

func TestCilksortMinimumBase(t *testing.T) {
	// Constructor clamps base below 8.
	w := NewCilksort(100, 1, Config{Seed: 1})
	if w.base != 8 {
		t.Errorf("base = %d, want clamped to 8", w.base)
	}
}

func TestCilksortAdversarialInputs(t *testing.T) {
	// Already-sorted, reverse-sorted, and constant arrays via manual fill.
	for name, fill := range map[string]func(d []int64){
		"sorted": func(d []int64) {
			for i := range d {
				d[i] = int64(i)
			}
		},
		"reversed": func(d []int64) {
			for i := range d {
				d[i] = int64(len(d) - i)
			}
		},
		"constant": func(d []int64) {
			for i := range d {
				d[i] = 42
			}
		},
		"two-vals": func(d []int64) {
			for i := range d {
				d[i] = int64(i % 2)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			w := NewCilksort(5000, 256, Config{Seed: 1})
			rt := newWorkloadRT(16, sched.Cilk)
			w.Prepare(rt)
			fill(w.in.Data)
			w.orig = append(w.orig[:0], w.in.Data...)
			rt.Run(w.Root())
			if err := w.Verify(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCilksortResultIdenticalAcrossSchedules(t *testing.T) {
	// The sorted output (a pure function of the input) must be identical
	// no matter the scheduler or worker count.
	a := runSort(t, 20000, 512, 1, sched.Cilk, false)
	b := runSort(t, 20000, 512, 32, sched.NUMAWS, true)
	for i := range a.in.Data {
		if a.in.Data[i] != b.in.Data[i] {
			t.Fatalf("outputs diverge at %d", i)
		}
	}
}

func TestCilksortSortedRunsAreMergeable(t *testing.T) {
	// White-box: seqmerge on crafted runs.
	w := NewCilksort(64, 8, Config{Seed: 1})
	rt := newWorkloadRT(1, sched.Cilk)
	w.Prepare(rt)
	for i := 0; i < 32; i++ {
		w.in.Data[i] = int64(2 * i)      // evens
		w.in.Data[32+i] = int64(2*i + 1) // odds
	}
	rt.RunSerial(func(ctx core.Context) {
		w.seqmerge(ctx, 0, 32, 32, 64, w.in, w.tmp, 0)
	})
	if !sort.SliceIsSorted(w.tmp.Data[:64], func(i, j int) bool { return w.tmp.Data[i] < w.tmp.Data[j] }) {
		t.Errorf("seqmerge output not sorted: %v", w.tmp.Data[:16])
	}
}

func TestCilksortParmergeEmptySide(t *testing.T) {
	w := NewCilksort(64, 16, Config{Seed: 1})
	rt := newWorkloadRT(1, sched.Cilk)
	w.Prepare(rt)
	for i := 0; i < 32; i++ {
		w.in.Data[i] = int64(i)
	}
	rt.RunSerial(func(ctx core.Context) {
		// One side empty: must copy the other side verbatim.
		w.parmerge(ctx, 0, 32, 32, 32, w.in, w.tmp, 0)
	})
	for i := 0; i < 32; i++ {
		if w.tmp.Data[i] != int64(i) {
			t.Fatalf("tmp[%d] = %d, want %d", i, w.tmp.Data[i], i)
		}
	}
}

func TestCilksortAwareBindsQuarters(t *testing.T) {
	w := NewCilksort(1<<16, 512, Config{Aware: true, Seed: 1})
	rt := newWorkloadRT(32, sched.NUMAWS)
	w.Prepare(rt)
	dist := w.in.R.Distribution(4)
	for s := 0; s < 4; s++ {
		if dist[s] == 0 {
			t.Errorf("aware cilksort left socket %d with no pages: %v", s, dist)
		}
	}
}
