package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memory"
)

// FFT is the classic Cilk fft benchmark, here as a banded iterative
// Cooley-Tukey transform: a bit-reversal permutation pass followed by
// log2(n) butterfly passes with a barrier between passes, each pass
// parallel over contiguous index bands. The dag alternates full-width
// data-parallel phases whose communication pattern changes every pass —
// early passes stay band-local, the last log2(bands) passes pair each
// band with a partner half the transform away — which makes it the
// suite's stress test for phase-changing traffic.
//
// Placement matters: in the aware configuration the bands of all four
// arrays are partitioned over sockets and each band task is earmarked for
// its band's place (the early, band-local passes then run entirely on
// local memory); the baseline gets the serial-first-touch placement like
// every other benchmark.
type FFT struct {
	reusable
	refShared
	cfg   Config
	n     int // transform size, a power of two
	bands int // parallel bands per pass, a power of two <= n

	d, w     [2]*memory.F64 // input (re, im) and work (re, im) arrays
	wre, wim []float64      // twiddle table, w^j for j < n/2 (host-side constants)
	orig     [2][]float64
	places   int
}

// NewFFT builds an n-point complex transform (n rounded up to a power of
// two) parallelized over `bands` index bands per pass.
func NewFFT(n, bands int, cfg Config) *FFT {
	if n < 4 {
		n = 4
	}
	n = ceilPow2(n)
	if bands < 1 {
		bands = 1
	}
	bands = ceilPow2(bands)
	if bands > n/2 {
		bands = n / 2
	}
	return &FFT{cfg: cfg, n: n, bands: bands}
}

func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Name implements Workload.
func (f *FFT) Name() string { return "fft" }

// Prepare implements Workload.
func (f *FFT) Prepare(rt *core.Runtime) {
	f.places = rt.Places()
	pol := f.cfg.bandPolicy(f.places)
	first := f.d[0] == nil
	f.d[0] = memory.ReuseF64(f.d[0], rt.Allocator(), "fft.re", f.n, pol)
	f.d[1] = memory.ReuseF64(f.d[1], rt.Allocator(), "fft.im", f.n, pol)
	// The work arrays are never touched before the timed region: genuine
	// first-touch under the baseline, banded under the aware configuration.
	spol := f.cfg.scratchPolicy(f.places)
	f.w[0] = memory.ReuseF64(f.w[0], rt.Allocator(), "fft.wre", f.n, spol)
	f.w[1] = memory.ReuseF64(f.w[1], rt.Allocator(), "fft.wim", f.n, spol)
	if !first {
		// The input arrays are read-only during the run and the work arrays
		// are fully rewritten by the permutation pass before any butterfly
		// reads them, so reuse needs no data reset.
		return
	}
	r := newRNG(f.cfg.Seed)
	for i := 0; i < f.n; i++ {
		f.d[0].Data[i] = 2*r.float64() - 1
		f.d[1].Data[i] = 2*r.float64() - 1
	}
	f.orig[0] = append([]float64(nil), f.d[0].Data...)
	f.orig[1] = append([]float64(nil), f.d[1].Data...)
	// Twiddle factors w_n^j = exp(-2*pi*i*j/n). The table is a computed
	// constant shared read-only by every pass; it is not a simulated
	// region (a real kernel folds it into registers or recomputes it), so
	// passes charge only their array traffic.
	f.wre = make([]float64, f.n/2)
	f.wim = make([]float64, f.n/2)
	for j := 0; j < f.n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(f.n)
		f.wre[j] = math.Cos(ang)
		f.wim[j] = math.Sin(ang)
	}
}

// Root implements Workload: the permutation pass, then log2(n) butterfly
// passes, each parallel over bands with a barrier between passes.
func (f *FFT) Root() core.Task {
	return func(ctx core.Context) {
		spawnBands(ctx, f.bands, f.places, f.cfg.Aware, func(c core.Context, band int) {
			f.permuteBand(c, band)
		})
		for m := 2; m <= f.n; m <<= 1 {
			m := m
			spawnBands(ctx, f.bands, f.places, f.cfg.Aware, func(c core.Context, band int) {
				f.butterflyBand(c, band, m)
			})
		}
	}
}

// logn returns log2(f.n).
func (f *FFT) logn() uint {
	l := uint(0)
	for v := f.n; v > 1; v >>= 1 {
		l++
	}
	return l
}

// revBits reverses the low `width` bits of v.
func revBits(v int, width uint) int {
	out := 0
	for i := uint(0); i < width; i++ {
		out = out<<1 | v&1
		v >>= 1
	}
	return out
}

// permuteBand writes w[i] = d[rev(i)] for the band's index range. The
// writes stream the band; the reads are a perfect stride-n/bandSize
// gather (reversing the low bits of a contiguous range walks the array in
// steps of n/bandSize), charged as such.
func (f *FFT) permuteBand(ctx core.Context, band int) {
	size := f.n / f.bands
	lo := band * size
	width := f.logn()
	for i := lo; i < lo+size; i++ {
		j := revBits(i, width)
		f.w[0].Data[i] = f.d[0].Data[j]
		f.w[1].Data[i] = f.d[1].Data[j]
	}
	base, stride := revBits(lo, width), f.n/size
	for k := 0; k < 2; k++ {
		ctx.ReadStrided(f.d[k].R, int64(base)*8, int64(stride)*8, 8, size)
		off, sz := f.w[k].Span(lo, size)
		ctx.Write(f.w[k].R, off, sz)
	}
	ctx.Compute(int64(size) * 4)
}

// butterflyBand applies the size-m butterfly stage to the band's range.
// A pair couples i with i+m/2; the task owning the first-half index
// computes and writes both sides, so bands never write the same element
// (race-free under real parallelism). While m is at most the band size
// every pair stays band-local; in the last log2(bands) stages a first-half
// band updates its partner band's range half the block away and
// second-half bands have no work.
func (f *FFT) butterflyBand(ctx core.Context, band, m int) {
	size := f.n / f.bands
	lo, hi := band*size, (band+1)*size
	h := m / 2
	tw := f.n / m // twiddle table stride for this stage
	pairs := 0
	for i := lo; i < hi; i++ {
		j := i & (m - 1)
		if j >= h {
			continue
		}
		p := i + h
		wr, wi := f.wre[j*tw], f.wim[j*tw]
		ar, ai := f.w[0].Data[i], f.w[1].Data[i]
		br, bi := f.w[0].Data[p], f.w[1].Data[p]
		tr := wr*br - wi*bi
		ti := wr*bi + wi*br
		f.w[0].Data[i], f.w[1].Data[i] = ar+tr, ai+ti
		f.w[0].Data[p], f.w[1].Data[p] = ar-tr, ai-ti
		pairs++
	}
	if pairs == 0 {
		return // a second-half band of a late stage: its partner updates it
	}
	for k := 0; k < 2; k++ {
		off, sz := f.w[k].Span(lo, hi-lo)
		ctx.Read(f.w[k].R, off, sz)
		ctx.Write(f.w[k].R, off, sz)
		if h >= size {
			// Partners live in the band half a block away.
			off, sz = f.w[k].Span(lo+h, hi-lo)
			ctx.Read(f.w[k].R, off, sz)
			ctx.Write(f.w[k].R, off, sz)
		}
	}
	ctx.Compute(int64(pairs) * 10)
}

// Verify implements Workload: compare against an independent serial
// recursive Cooley-Tukey transform of the original input.
func (f *FFT) Verify() error {
	v, _ := f.refCache().Do("fft.ref", func() (any, error) {
		ref := make([]complex128, f.n)
		for i := range ref {
			ref[i] = complex(f.orig[0][i], f.orig[1][i])
		}
		serialFFT(ref, make([]complex128, f.n))
		return ref, nil
	})
	ref := v.([]complex128)
	tol := 1e-9 * float64(f.n)
	for i := 0; i < f.n; i++ {
		dr := f.w[0].Data[i] - real(ref[i])
		di := f.w[1].Data[i] - imag(ref[i])
		if math.Abs(dr) > tol || math.Abs(di) > tol {
			return fmt.Errorf("fft: bin %d = (%g, %g), want (%g, %g)",
				i, f.w[0].Data[i], f.w[1].Data[i], real(ref[i]), imag(ref[i]))
		}
	}
	return nil
}

// serialFFT is the reference: recursive decimation-in-time on complex128,
// structurally unrelated to the banded iterative kernel it checks.
func serialFFT(a, scratch []complex128) {
	n := len(a)
	if n == 1 {
		return
	}
	h := n / 2
	even, odd := scratch[:h], scratch[h:]
	for i := 0; i < h; i++ {
		even[i] = a[2*i]
		odd[i] = a[2*i+1]
	}
	copy(a[:h], even)
	copy(a[h:], odd)
	serialFFT(a[:h], scratch[:h])
	serialFFT(a[h:], scratch[h:])
	for k := 0; k < h; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w := complex(math.Cos(ang), math.Sin(ang))
		t := w * a[h+k]
		scratch[k], scratch[h+k] = a[k]+t, a[k]-t
	}
	copy(a, scratch)
}
