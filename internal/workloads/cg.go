package workloads

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/memory"
)

// CG is the paper's cg benchmark (from the NAS parallel benchmarks):
// conjugate-gradient iterations on a sparse matrix in CSR form. The
// expensive kernel is the sparse matrix-vector product, whose gather reads
// of the direction vector are the NUMA pain point: matrix rows stream
// locally when banded, but p[col] gathers hop sockets under the baseline
// placement.
type CG struct {
	reusable
	refShared
	cfg   Config
	n     int
	nzRow int
	iters int
	bands int

	rowptr *memory.I32
	colidx *memory.I32
	vals   *memory.F64
	b      *memory.F64
	x      *memory.F64
	r      *memory.F64
	p      *memory.F64
	q      *memory.F64

	partial []float64 // per-band reduction slots (scheduler-independent order)
	places  int
}

// NewCG builds an n-row system with nzRow nonzeros per row, run for a fixed
// iteration count (fixed, so work is identical across schedulers).
func NewCG(n, nzRow, iters, bands int, cfg Config) *CG {
	if bands < 1 {
		bands = 1
	}
	return &CG{cfg: cfg, n: n, nzRow: nzRow, iters: iters, bands: bands}
}

// Name implements Workload.
func (g *CG) Name() string { return "cg" }

// Prepare implements Workload: build a diagonally dominant sparse matrix
// with mostly-banded structure plus long-range couplings (the pattern that
// makes the gathers hurt), and the CG vectors.
func (g *CG) Prepare(rt *core.Runtime) {
	g.places = rt.Places()
	alloc := rt.Allocator()
	pol := g.cfg.bandPolicy(g.places)
	nnzPol := pol
	if g.cfg.Aware {
		// Matrix arrays are nnz-sized; band them the same way (row i's
		// nonzeros live at i*nzRow, so bands align with row bands).
		nnzPol = g.cfg.bandPolicy(g.places)
	}
	// On reuse, the Reuse* calls re-register every region in first-build
	// statement order (identical base offsets) and the generated matrix and
	// b carry over; the CG vectors need no reset — the run fully writes
	// them (x=0/r=b/p=b up front, q by the first spmv) before reading.
	first := g.rowptr == nil
	g.rowptr = memory.ReuseI32(g.rowptr, alloc, "cg.rowptr", g.n+1, pol)
	g.colidx = memory.ReuseI32(g.colidx, alloc, "cg.colidx", g.n*g.nzRow, nnzPol)
	g.vals = memory.ReuseF64(g.vals, alloc, "cg.vals", g.n*g.nzRow, nnzPol)
	g.b = memory.ReuseF64(g.b, alloc, "cg.b", g.n, pol)
	// The CG vectors are first written inside the timed region (x = 0,
	// r = b, ...), so the baseline gets genuine first-touch for them.
	scratch := g.cfg.scratchPolicy(g.places)
	g.x = memory.ReuseF64(g.x, alloc, "cg.x", g.n, scratch)
	g.r = memory.ReuseF64(g.r, alloc, "cg.r", g.n, scratch)
	g.p = memory.ReuseF64(g.p, alloc, "cg.p", g.n, scratch)
	g.q = memory.ReuseF64(g.q, alloc, "cg.q", g.n, scratch)
	if !first {
		return
	}
	g.partial = make([]float64, g.bands)

	rng := newRNG(g.cfg.Seed)
	window := g.n / 16
	if window < 4 {
		window = 4
	}
	for i := 0; i < g.n; i++ {
		g.rowptr.Data[i] = int32(i * g.nzRow)
		cols := map[int]bool{i: true}
		for len(cols) < g.nzRow {
			var c int
			if rng.intn(4) == 0 { // 25% long-range couplings
				c = rng.intn(g.n)
			} else {
				c = i - window + rng.intn(2*window+1)
			}
			if c < 0 || c >= g.n {
				continue
			}
			cols[c] = true
		}
		sorted := make([]int, 0, g.nzRow)
		for c := range cols {
			sorted = append(sorted, c)
		}
		sort.Ints(sorted)
		var offdiag float64
		base := i * g.nzRow
		for k, c := range sorted {
			g.colidx.Data[base+k] = int32(c)
			if c == i {
				continue // fill the diagonal after the off-diagonal sum is known
			}
			v := rng.float64() - 0.5
			g.vals.Data[base+k] = v
			offdiag += math.Abs(v)
		}
		for k, c := range sorted {
			if c == i {
				g.vals.Data[base+k] = offdiag + 1 // diagonal dominance
			}
		}
		g.b.Data[i] = rng.float64()
	}
	g.rowptr.Data[g.n] = int32(g.n * g.nzRow)
}

// Root implements Workload: fixed-iteration CG.
func (g *CG) Root() core.Task {
	return func(ctx core.Context) {
		n := g.n
		// x = 0; r = b; p = r.
		spawnBands(ctx, g.bands, g.places, g.cfg.Aware, func(c core.Context, band int) {
			lo, hi := g.bandRange(band)
			for i := lo; i < hi; i++ {
				g.x.Data[i] = 0
				g.r.Data[i] = g.b.Data[i]
				g.p.Data[i] = g.b.Data[i]
			}
			g.chargeVec(c, band, g.b, false)
			g.chargeVec(c, band, g.x, true)
			g.chargeVec(c, band, g.r, true)
			g.chargeVec(c, band, g.p, true)
		})
		rr := g.dot(ctx, g.r, g.r)
		for it := 0; it < g.iters; it++ {
			g.spmv(ctx)
			pq := g.dot(ctx, g.p, g.q)
			alpha := rr / pq
			// x += alpha p; r -= alpha q.
			spawnBands(ctx, g.bands, g.places, g.cfg.Aware, func(c core.Context, band int) {
				lo, hi := g.bandRange(band)
				for i := lo; i < hi; i++ {
					g.x.Data[i] += alpha * g.p.Data[i]
					g.r.Data[i] -= alpha * g.q.Data[i]
				}
				g.chargeVec(c, band, g.p, false)
				g.chargeVec(c, band, g.q, false)
				g.chargeVec(c, band, g.x, true)
				g.chargeVec(c, band, g.r, true)
				c.Compute(int64(hi-lo) * 4)
			})
			rr2 := g.dot(ctx, g.r, g.r)
			beta := rr2 / rr
			rr = rr2
			// p = r + beta p.
			spawnBands(ctx, g.bands, g.places, g.cfg.Aware, func(c core.Context, band int) {
				lo, hi := g.bandRange(band)
				for i := lo; i < hi; i++ {
					g.p.Data[i] = g.r.Data[i] + beta*g.p.Data[i]
				}
				g.chargeVec(c, band, g.r, false)
				g.chargeVec(c, band, g.p, true)
				c.Compute(int64(hi-lo) * 2)
			})
		}
		_ = n
	}
}

func (g *CG) bandRange(band int) (int, int) {
	return band * g.n / g.bands, (band + 1) * g.n / g.bands
}

func (g *CG) chargeVec(ctx core.Context, band int, v *memory.F64, write bool) {
	lo, hi := g.bandRange(band)
	off, size := v.Span(lo, hi-lo)
	if write {
		ctx.Write(v.R, off, size)
	} else {
		ctx.Read(v.R, off, size)
	}
}

// spmv computes q = A p in parallel over row bands. Matrix data streams;
// p[col] is a per-element gather.
func (g *CG) spmv(ctx core.Context) {
	spawnBands(ctx, g.bands, g.places, g.cfg.Aware, func(c core.Context, band int) {
		lo, hi := g.bandRange(band)
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := int(g.rowptr.Data[i]); k < int(g.rowptr.Data[i+1]); k++ {
				col := int(g.colidx.Data[k])
				s += g.vals.Data[k] * g.p.Data[col]
				// The gather read: one element of p, wherever it lives.
				off, sz := g.p.Span(col, 1)
				c.Read(g.p.R, off, sz)
			}
			g.q.Data[i] = s
		}
		rows := hi - lo
		off, sz := g.rowptr.Span(lo, rows+1)
		c.Read(g.rowptr.R, off, sz)
		off, sz = g.colidx.Span(lo*g.nzRow, rows*g.nzRow)
		c.Read(g.colidx.R, off, sz)
		voff, vsz := g.vals.Span(lo*g.nzRow, rows*g.nzRow)
		c.Read(g.vals.R, voff, vsz)
		g.chargeVec(c, band, g.q, true)
		c.Compute(int64(rows) * int64(g.nzRow) * 2)
	})
}

// dot computes a scheduler-independent dot product: per-band partials
// combined in band order.
func (g *CG) dot(ctx core.Context, a, b *memory.F64) float64 {
	spawnBands(ctx, g.bands, g.places, g.cfg.Aware, func(c core.Context, band int) {
		lo, hi := g.bandRange(band)
		s := 0.0
		for i := lo; i < hi; i++ {
			s += a.Data[i] * b.Data[i]
		}
		g.partial[band] = s
		g.chargeVec(c, band, a, false)
		g.chargeVec(c, band, b, false)
		c.Compute(int64(hi-lo) * 2)
	})
	var sum float64
	for _, s := range g.partial {
		sum += s
	}
	ctx.Compute(int64(g.bands))
	return sum
}

// Verify implements Workload: rerun the same banded algorithm serially in
// plain Go (identical floating-point grouping) and compare x exactly, then
// sanity-check that CG actually reduced the residual. The reference solve
// depends only on the input data, so pooled instances compute it once and
// share it.
func (g *CG) Verify() error {
	n := g.n
	v, err := g.refCache().Do("cg.x", func() (any, error) {
		x := make([]float64, n)
		r := make([]float64, n)
		p := make([]float64, n)
		q := make([]float64, n)
		copy(r, g.b.Data)
		copy(p, g.b.Data)
		dot := func(a, b []float64) float64 {
			var sum float64
			for band := 0; band < g.bands; band++ {
				lo, hi := g.bandRange(band)
				s := 0.0
				for i := lo; i < hi; i++ {
					s += a[i] * b[i]
				}
				sum += s
			}
			return sum
		}
		rr := dot(r, r)
		rr0 := rr
		for it := 0; it < g.iters; it++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for k := int(g.rowptr.Data[i]); k < int(g.rowptr.Data[i+1]); k++ {
					s += g.vals.Data[k] * p[int(g.colidx.Data[k])]
				}
				q[i] = s
			}
			alpha := rr / dot(p, q)
			for i := 0; i < n; i++ {
				x[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			rr2 := dot(r, r)
			beta := rr2 / rr
			rr = rr2
			for i := 0; i < n; i++ {
				p[i] = r[i] + beta*p[i]
			}
		}
		if rr >= rr0 {
			return nil, fmt.Errorf("cg: residual did not decrease: %g -> %g", rr0, rr)
		}
		return x, nil
	})
	if err != nil {
		return err
	}
	x := v.([]float64)
	for i := 0; i < n; i++ {
		if x[i] != g.x.Data[i] {
			return fmt.Errorf("cg: x[%d] = %g, want %g (bitwise)", i, g.x.Data[i], x[i])
		}
	}
	return nil
}
