package workloads

// Tests for the five Cilk-suite additions: every benchmark verifies at
// both registered scales under both platforms (the acceptance gate for
// opening the suite), plus per-benchmark structural checks.

import (
	"testing"

	"repro/internal/sched"
)

var cilkSuite = []string{"fib", "nqueens", "fft", "lu", "rectmul"}

// TestCilkSuiteVerifiesBothScales runs every new benchmark at ScaleSmall
// and ScaleFull: the serial elision and a P=32 NUMA-WS run (with the
// NUMA-aware configuration, as the harness would build it), each verified
// against the benchmark's serial reference.
func TestCilkSuiteVerifiesBothScales(t *testing.T) {
	for _, name := range cilkSuite {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []Scale{ScaleSmall, ScaleFull} {
			sp := b(scale)
			t.Run(sp.Name+sizeTag(scale), func(t *testing.T) {
				serial := sp.Make(false)
				rt := newWorkloadRT(1, sched.Cilk)
				serial.Prepare(rt)
				ts := rt.RunSerial(serial.Root())
				if ts.Time <= 0 {
					t.Error("TS not positive")
				}
				if err := serial.Verify(); err != nil {
					t.Errorf("serial: %v", err)
				}
				par := sp.Make(true)
				rt = newWorkloadRT(32, sched.NUMAWS)
				par.Prepare(rt)
				tp := rt.Run(par.Root())
				if tp.Time <= 0 || tp.Time >= ts.Time {
					t.Errorf("P=32 time %d not under serial %d", tp.Time, ts.Time)
				}
				if err := par.Verify(); err != nil {
					t.Errorf("parallel aware: %v", err)
				}
			})
		}
	}
}

func sizeTag(s Scale) string {
	if s == ScaleSmall {
		return "/small"
	}
	return "/full"
}

func TestCilkSuiteDeterministicAcrossRuns(t *testing.T) {
	for _, name := range cilkSuite {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sp := b(ScaleSmall)
		run := func() int64 {
			w := sp.Make(true)
			rt := newWorkloadRT(16, sched.NUMAWS)
			w.Prepare(rt)
			return rt.Run(w.Root()).Time
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: same-seed runs diverged: %d vs %d", name, a, b)
		}
	}
}

func TestFibValue(t *testing.T) {
	// fibValue is the verifier's oracle; pin it against known values.
	for _, tc := range []struct {
		n    int
		want uint64
	}{{0, 0}, {1, 1}, {2, 1}, {10, 55}, {35, 9227465}, {50, 12586269025}} {
		if got := fibValue(tc.n); got != tc.want {
			t.Errorf("fibValue(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// A deep spawn tree still computes the right number.
	w := NewFib(30, 4, Config{})
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	// The parallel search must land exactly on the published counts.
	for _, tc := range []struct {
		n    int
		want int64
	}{{4, 2}, {6, 4}, {8, 92}, {10, 724}} {
		w := NewNQueens(tc.n, 2, Config{})
		rt := newWorkloadRT(8, sched.NUMAWS)
		w.Prepare(rt)
		rt.Run(w.Root())
		if w.count != tc.want {
			t.Errorf("nqueens(%d) = %d, want %d", tc.n, w.count, tc.want)
		}
		if err := w.Verify(); err != nil {
			t.Error(err)
		}
	}
}

func TestFFTAwareReducesRemoteAccesses(t *testing.T) {
	// fft's early passes are band-local: partitioned placement plus hints
	// must service fewer accesses remotely than first-touch on socket 0.
	run := func(aware bool) int64 {
		w := NewFFT(1<<12, 16, Config{Aware: aware, Seed: 42})
		rt := newWorkloadRT(32, sched.NUMAWS)
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return rep.Cache.Remote()
	}
	if aware, base := run(true), run(false); aware >= base {
		t.Errorf("aware fft has %d remote accesses, baseline %d; banding+hints should reduce them",
			aware, base)
	}
}

func TestLUAwareReducesRemoteAccesses(t *testing.T) {
	// The matrix must outgrow the per-socket LLC (1 MiB): below that the
	// whole factorization is cache-resident and placement cannot matter.
	// Even above it the effect is modest — the pivot panels are shared by
	// every trailing row band, so a fixed fraction of lu's traffic is
	// inherently remote — but it is deterministic and directionally
	// consistent.
	run := func(aware bool) int64 {
		w := NewLU(256, 32, Config{Aware: aware, Seed: 42})
		rt := newWorkloadRT(32, sched.NUMAWS)
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return rep.Cache.Remote()
	}
	if aware, base := run(true), run(false); aware >= base {
		t.Errorf("aware lu has %d remote accesses, baseline %d; banding+hints should reduce them",
			aware, base)
	}
}

func TestRectmulRoundsDimensionsUp(t *testing.T) {
	w := NewRectmul(33, 17, 50, 16, Config{Seed: 1})
	if w.m != 48 || w.p != 32 || w.n != 64 {
		t.Errorf("rounded dims = %dx%dx%d, want 48x32x64", w.m, w.p, w.n)
	}
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}
