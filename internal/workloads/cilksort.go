package workloads

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/memory"
)

// Cilksort is the paper's cilksort benchmark: a four-way parallel mergesort
// with parallel merge, structured exactly like Fig. 4's MERGESORTTOP — sort
// the four quarters in place (each earmarked for a virtual place in the
// aware configuration), merge pairs of quarters, then merge the halves.
type Cilksort struct {
	reusable
	refShared
	cfg  Config
	n    int
	base int

	in, tmp *memory.I64
	orig    []int64
	places  int
}

// NewCilksort builds a cilksort instance over n pseudo-random int64 keys
// with the given sequential base-case size.
func NewCilksort(n, base int, cfg Config) *Cilksort {
	if base < 8 {
		base = 8
	}
	return &Cilksort{cfg: cfg, n: n, base: base}
}

// Name implements Workload.
func (s *Cilksort) Name() string { return "cilksort" }

// Prepare implements Workload. In the aware configuration the quarters of
// both arrays are bound to the sockets of their designated places, the
// allocation pattern Fig. 4's commentary prescribes.
func (s *Cilksort) Prepare(rt *core.Runtime) {
	s.places = rt.Places()
	var pol memory.Policy = s.cfg.basePolicy()
	if s.cfg.Aware {
		sockets := make([]int, 4)
		for i := range sockets {
			sockets[i] = placeOf(i, 4, s.places)
		}
		pol = memory.BindBlocks{Blocks: 4, Sockets: sockets}
	}
	first := s.in == nil
	s.in = memory.ReuseI64(s.in, rt.Allocator(), "cilksort.in", s.n, pol)
	// tmp is never touched before the timed region: real first-touch under
	// the baseline, banded like `in` under the aware configuration.
	tmpPol := pol
	if !s.cfg.Aware {
		tmpPol = memory.FirstTouch{}
	}
	s.tmp = memory.ReuseI64(s.tmp, rt.Allocator(), "cilksort.tmp", s.n, tmpPol)
	if !first {
		// The run sorts in place; restore the pristine keys. tmp needs no
		// reset — every merge writes its segment before it is read.
		copy(s.in.Data, s.orig)
		return
	}
	r := newRNG(s.cfg.Seed)
	for i := range s.in.Data {
		s.in.Data[i] = r.int63()
	}
	s.orig = append([]int64(nil), s.in.Data...)
}

// Root implements Workload; it is MERGESORTTOP from Fig. 4.
func (s *Cilksort) Root() core.Task {
	return func(ctx core.Context) {
		n := s.n
		if n < s.base {
			s.quicksort(ctx, 0, n)
			return
		}
		q := n / 4
		// Virtual place ids, "initialized ... based on number of places".
		p0 := s.hint(0)
		p1, p2, p3 := s.hint(1), s.hint(2), s.hint(3)
		// Fig. 4 lines 6-10: sort the quarters; three spawns plus a plain
		// call for the last quarter, exactly as in the figure. The first
		// spawned child carries no explicit hint — with continuation
		// stealing it runs on the spawning worker, implicitly at p0.
		ctx.Spawn(func(c core.Context) { s.mergesort(c, 0, q) })
		s.spawnSortAt(ctx, p1, q, q)
		s.spawnSortAt(ctx, p2, 2*q, q)
		s.callSortAt(ctx, p3, 3*q, n-3*q)
		ctx.Sync()
		// Fig. 4 lines 11-14: merge quarter pairs into tmp (spawn @p0,
		// call @p2). The split point is 2*q, not n/2: for n % 4 >= 2 the
		// two differ by one and the figure's n/2 arithmetic assumes a
		// divisible n.
		mid := 2 * q
		if s.cfg.Aware {
			ctx.SpawnAt(p0, func(c core.Context) { s.parmerge(c, 0, q, q, mid, s.in, s.tmp, 0) })
		} else {
			ctx.Spawn(func(c core.Context) { s.parmerge(c, 0, q, q, mid, s.in, s.tmp, 0) })
		}
		s.callMergeAt(ctx, p2, mid, 3*q, 3*q, n, mid)
		ctx.Sync()
		// Fig. 4 line 15: final merge back into the input array, @ANY.
		if s.cfg.Aware {
			ctx.SetPlace(core.PlaceAny)
		}
		ctx.Call(func(c core.Context) { s.parmerge(c, 0, mid, mid, n, s.tmp, s.in, 0) })
	}
}

func (s *Cilksort) hint(i int) int {
	if !s.cfg.Aware {
		return core.PlaceAny
	}
	return placeOf(i, 4, s.places)
}

func (s *Cilksort) spawnSortAt(ctx core.Context, place, lo, n int) {
	if s.cfg.Aware && place != core.PlaceAny {
		ctx.SpawnAt(place, func(c core.Context) { s.mergesort(c, lo, lo+n) })
	} else {
		ctx.Spawn(func(c core.Context) { s.mergesort(c, lo, lo+n) })
	}
}

func (s *Cilksort) callSortAt(ctx core.Context, place, lo, n int) {
	ctx.Call(func(c core.Context) {
		if s.cfg.Aware && place != core.PlaceAny {
			c.SetPlace(place)
		}
		s.mergesort(c, lo, lo+n)
	})
}

func (s *Cilksort) callMergeAt(ctx core.Context, place, alo, ahi, blo, bhi, out int) {
	ctx.Call(func(c core.Context) {
		if s.cfg.Aware && place != core.PlaceAny {
			c.SetPlace(place)
		}
		s.parmerge(c, alo, ahi, blo, bhi, s.in, s.tmp, out)
	})
}

// mergesort sorts in.Data[lo:hi) in place, using tmp as scratch — the
// four-way recursion of the paper's MERGESORT (no locality hints below the
// top level; descendants inherit).
func (s *Cilksort) mergesort(ctx core.Context, lo, hi int) {
	n := hi - lo
	if n <= s.base {
		s.quicksort(ctx, lo, hi)
		return
	}
	q := n / 4
	ctx.Spawn(func(c core.Context) { s.mergesort(c, lo, lo+q) })
	ctx.Spawn(func(c core.Context) { s.mergesort(c, lo+q, lo+2*q) })
	ctx.Spawn(func(c core.Context) { s.mergesort(c, lo+2*q, lo+3*q) })
	ctx.Call(func(c core.Context) { s.mergesort(c, lo+3*q, hi) })
	ctx.Sync()
	ctx.Spawn(func(c core.Context) { s.parmerge(c, lo, lo+q, lo+q, lo+2*q, s.in, s.tmp, lo) })
	ctx.Call(func(c core.Context) { s.parmerge(c, lo+2*q, lo+3*q, lo+3*q, hi, s.in, s.tmp, lo+2*q) })
	ctx.Sync()
	ctx.Call(func(c core.Context) { s.parmerge(c, lo, lo+2*q, lo+2*q, hi, s.tmp, s.in, lo) })
}

// quicksort is the sequential base case ("in-place sequential sort"). The
// real sort runs on the slice; the model charges one read+write pass over
// the segment plus n log n comparison work.
func (s *Cilksort) quicksort(ctx core.Context, lo, hi int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	seg := s.in.Data[lo:hi]
	sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	off, size := s.in.Span(lo, n)
	ctx.Read(s.in.R, off, size)
	ctx.Write(s.in.R, off, size)
	logn := int64(1)
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	ctx.Compute(int64(n) * logn * 2)
}

// parmerge merges src[alo:ahi) and src[blo:bhi) into dst starting at out,
// splitting recursively: take the median of the larger run, binary-search
// its position in the smaller run, and merge the two halves in parallel.
func (s *Cilksort) parmerge(ctx core.Context, alo, ahi, blo, bhi int, src, dst *memory.I64, out int) {
	na, nb := ahi-alo, bhi-blo
	if na < nb {
		alo, ahi, blo, bhi = blo, bhi, alo, ahi
		na, nb = nb, na
	}
	if na == 0 {
		return
	}
	if na+nb <= s.base {
		s.seqmerge(ctx, alo, ahi, blo, bhi, src, dst, out)
		return
	}
	ma := (alo + ahi) / 2
	pivot := src.Data[ma]
	mb := blo + sort.Search(nb, func(i int) bool { return src.Data[blo+i] >= pivot })
	// Charge the binary search probes (log nb scattered reads).
	for probe := nb; probe > 0; probe >>= 1 {
		off, sz := src.Span(blo, 1)
		ctx.Read(src.R, off, sz)
		ctx.Compute(2)
	}
	left := out
	right := out + (ma - alo) + (mb - blo)
	ctx.Spawn(func(c core.Context) { s.parmerge(c, alo, ma, blo, mb, src, dst, left) })
	ctx.Call(func(c core.Context) { s.parmerge(c, ma, ahi, mb, bhi, src, dst, right) })
	ctx.Sync()
}

// seqmerge is the sequential merge base case: real merge plus one streaming
// read of both inputs and one streaming write of the output.
func (s *Cilksort) seqmerge(ctx core.Context, alo, ahi, blo, bhi int, src, dst *memory.I64, out int) {
	i, j, k := alo, blo, out
	for i < ahi && j < bhi {
		if src.Data[i] <= src.Data[j] {
			dst.Data[k] = src.Data[i]
			i++
		} else {
			dst.Data[k] = src.Data[j]
			j++
		}
		k++
	}
	for i < ahi {
		dst.Data[k] = src.Data[i]
		i, k = i+1, k+1
	}
	for j < bhi {
		dst.Data[k] = src.Data[j]
		j, k = j+1, k+1
	}
	if n := ahi - alo; n > 0 {
		off, sz := src.Span(alo, n)
		ctx.Read(src.R, off, sz)
	}
	if n := bhi - blo; n > 0 {
		off, sz := src.Span(blo, n)
		ctx.Read(src.R, off, sz)
	}
	if n := k - out; n > 0 {
		off, sz := dst.Span(out, n)
		ctx.Write(dst.R, off, sz)
		ctx.Compute(int64(n) * 3)
	}
}

// Verify implements Workload: the result must equal the independently
// sorted input, element for element.
func (s *Cilksort) Verify() error {
	v, _ := s.refCache().Do("cilksort.sorted", func() (any, error) {
		w := append([]int64(nil), s.orig...)
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		return w, nil
	})
	want := v.([]int64)
	for i, v := range s.in.Data {
		if v != want[i] {
			return fmt.Errorf("cilksort: element %d is %d, want %d", i, v, want[i])
		}
	}
	return nil
}
