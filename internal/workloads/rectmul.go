package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memory"
)

// Rectmul is the classic Cilk rectmul benchmark: C += A * B on
// rectangular matrices (C is m x n, A is m x p, B is p x n), dividing the
// largest dimension in half at every level. Splitting m or n yields two
// independent halves that run in parallel; splitting p yields two updates
// of the same C that must serialize — so unlike matmul's fixed eight-way
// shape, the dag's fan-out pattern is input-shape-dependent, alternating
// parallel and forced-serial levels as the recursion squares the tile.
//
// Like matmul and strassen, rectmul uses no locality hints on either
// platform; the aware flag is dropped by the suite registration.
type Rectmul struct {
	reusable
	refShared
	cfg     Config
	m, p, n int // C is m x n, A is m x p, B is p x n
	base    int

	a, b, c *memory.F64
	places  int
}

// NewRectmul builds an (m x p) by (p x n) multiply recursing down to
// base-sized tiles (dimensions are rounded up to a multiple of base).
func NewRectmul(m, p, n, base int, cfg Config) *Rectmul {
	if base < 4 {
		base = 4
	}
	round := func(v int) int {
		if v < base {
			return base
		}
		if rem := v % base; rem != 0 {
			v += base - rem
		}
		return v
	}
	return &Rectmul{cfg: cfg, m: round(m), p: round(p), n: round(n), base: base}
}

// Name implements Workload.
func (r *Rectmul) Name() string { return "rectmul" }

// Prepare implements Workload.
func (r *Rectmul) Prepare(rt *core.Runtime) {
	r.places = rt.Places()
	pol := r.cfg.basePolicy()
	first := r.a == nil
	r.a = memory.ReuseF64(r.a, rt.Allocator(), "rectmul.A", r.m*r.p, pol)
	r.b = memory.ReuseF64(r.b, rt.Allocator(), "rectmul.B", r.p*r.n, pol)
	r.c = memory.ReuseF64(r.c, rt.Allocator(), "rectmul.C", r.m*r.n, pol)
	if !first {
		// C += A*B accumulates; reuse starts from zero again.
		clear(r.c.Data)
		return
	}
	rng := newRNG(r.cfg.Seed)
	for i := range r.a.Data {
		r.a.Data[i] = 2*rng.float64() - 1
	}
	for i := range r.b.Data {
		r.b.Data[i] = 2*rng.float64() - 1
	}
}

// Root implements Workload.
func (r *Rectmul) Root() core.Task {
	return func(ctx core.Context) {
		r.rec(ctx, 0, 0, 0, r.m, r.p, r.n)
	}
}

// rec computes C[cr:cr+m, cc:cc+n] += A[cr:cr+m, ak:ak+p] * B[ak:ak+p,
// cc:cc+n], halving the largest dimension. (cr, cc, ak) locate the tile:
// row offset in C and A, column offset in C and B, and the shared inner
// offset in A's columns and B's rows.
func (r *Rectmul) rec(ctx core.Context, cr, cc, ak, m, p, n int) {
	if m <= r.base && p <= r.base && n <= r.base {
		r.baseMul(ctx, cr, cc, ak, m, p, n)
		return
	}
	switch {
	case m >= p && m >= n:
		h := m / 2
		ctx.Spawn(func(c core.Context) { r.rec(c, cr, cc, ak, h, p, n) })
		ctx.Call(func(c core.Context) { r.rec(c, cr+h, cc, ak, m-h, p, n) })
		ctx.Sync()
	case n >= p:
		h := n / 2
		ctx.Spawn(func(c core.Context) { r.rec(c, cr, cc, ak, m, p, h) })
		ctx.Call(func(c core.Context) { r.rec(c, cr, cc+h, ak, m, p, n-h) })
		ctx.Sync()
	default:
		// Splitting the inner dimension: both halves update the same C
		// tile, so they serialize — the data dependence matmul expresses
		// with its two sync'd four-spawn phases.
		h := p / 2
		ctx.Call(func(c core.Context) { r.rec(c, cr, cc, ak, m, h, n) })
		ctx.Call(func(c core.Context) { r.rec(c, cr, cc, ak+h, m, p-h, n) })
	}
}

// baseMul is the sequential tile multiply-accumulate with tile-shaped
// strided access charges.
func (r *Rectmul) baseMul(ctx core.Context, cr, cc, ak, m, p, n int) {
	for i := 0; i < m; i++ {
		arow := r.a.Data[(cr+i)*r.p:]
		crow := r.c.Data[(cr+i)*r.n:]
		for k := 0; k < p; k++ {
			av := arow[ak+k]
			brow := r.b.Data[(ak+k)*r.n:]
			for j := 0; j < n; j++ {
				crow[cc+j] += av * brow[cc+j]
			}
		}
	}
	ctx.ReadStrided(r.a.R, int64(cr*r.p+ak)*8, int64(r.p)*8, int64(p)*8, m)
	ctx.ReadStrided(r.b.R, int64(ak*r.n+cc)*8, int64(r.n)*8, int64(n)*8, p)
	ctx.ReadStrided(r.c.R, int64(cr*r.n+cc)*8, int64(r.n)*8, int64(n)*8, m)
	ctx.WriteStrided(r.c.R, int64(cr*r.n+cc)*8, int64(r.n)*8, int64(n)*8, m)
	ctx.Compute(int64(m) * int64(p) * int64(n))
}

// Verify implements Workload: compare against a plain serial triple loop
// over the same inputs.
func (r *Rectmul) Verify() error {
	v, _ := r.refCache().Do("rectmul.ref", func() (any, error) {
		ref := make([]float64, r.m*r.n)
		for i := 0; i < r.m; i++ {
			for k := 0; k < r.p; k++ {
				av := r.a.Data[i*r.p+k]
				brow := r.b.Data[k*r.n:]
				refRow := ref[i*r.n:]
				for j := 0; j < r.n; j++ {
					refRow[j] += av * brow[j]
				}
			}
		}
		return ref, nil
	})
	ref := v.([]float64)
	tol := 1e-10 * float64(r.p)
	for i := 0; i < r.m; i++ {
		for j := 0; j < r.n; j++ {
			got, want := r.c.Data[i*r.n+j], ref[i*r.n+j]
			if math.Abs(got-want) > tol {
				return fmt.Errorf("rectmul: C[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}
