package workloads

// The paper's nine benchmark configurations, registered at init. This file
// is the former body of harness.Specs: the dims, seed, placement choices
// and Input strings are unchanged (the paper-4x8 small-scale golden output
// pins them byte for byte); only the packaging moved from a closed
// nine-entry function to per-benchmark registry entries.

import (
	"fmt"

	"repro/internal/memory"
)

// paperSeed drives input generation for the paper suite (IISWC 2018
// vintage).
const paperSeed = 20180707

// paperDims is one scale's input configuration for the paper's nine.
type paperDims struct {
	sortN, sortBase             int
	heatN, heatSteps, heatBands int
	cgN, cgNZ, cgIters, cgBands int
	hull1N, hull2N, hullGrain   int
	hullBands                   int
	mmN, mmBase                 int
	stN, stBase                 int
}

func dimsOf(s Scale) paperDims {
	if s == ScaleSmall {
		return paperDims{
			sortN: 1 << 15, sortBase: 1024,
			heatN: 128, heatSteps: 8, heatBands: 16,
			cgN: 1024, cgNZ: 16, cgIters: 6, cgBands: 16,
			hull1N: 20_000, hull2N: 6_000, hullGrain: 512, hullBands: 16,
			mmN: 128, mmBase: 32,
			stN: 128, stBase: 32,
		}
	}
	return paperDims{
		sortN: 1 << 20, sortBase: 4096,
		heatN: 768, heatSteps: 20, heatBands: 128,
		cgN: 16384, cgNZ: 32, cgIters: 8, cgBands: 128,
		hull1N: 200_000, hull2N: 50_000, hullGrain: 2048, hullBands: 64,
		mmN: 512, mmBase: 32,
		stN: 256, stBase: 16,
	}
}

// paperCfg is the per-run workload configuration: the baseline placement
// is first-touch after serial initialization, so every page lands on
// socket 0 — the configuration a vanilla Cilk Plus program gets by
// default, and the one whose serial elision matches TS.
func paperCfg(aware bool) Config {
	return Config{Aware: aware, Base: memory.BindTo{Socket: 0}, Seed: paperSeed}
}

func init() {
	Register("cg", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "cg", Input: fmt.Sprintf("%dx%d/n=%d", d.cgN, d.cgNZ, d.cgBands),
			Make: func(aware bool) Workload {
				return NewCG(d.cgN, d.cgNZ, d.cgIters, d.cgBands, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "cg",
		}
	})
	Register("cilksort", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "cilksort", Input: fmt.Sprintf("%d/%d", d.sortN, d.sortBase),
			Make: func(aware bool) Workload {
				return NewCilksort(d.sortN, d.sortBase, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "cilksort",
		}
	})
	Register("heat", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "heat", Input: fmt.Sprintf("%dx%dx%d/%d rows", d.heatN, d.heatN, d.heatSteps, d.heatN/d.heatBands),
			Make: func(aware bool) Workload {
				return NewHeat(d.heatN, d.heatN, d.heatSteps, d.heatBands, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "heat",
		}
	})
	Register("hull1", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "hull1", Input: fmt.Sprintf("%d/%d", d.hull1N, d.hullGrain),
			Make: func(aware bool) Workload {
				return NewHull(d.hull1N, d.hullGrain, d.hullBands, InDisk, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "hull1",
		}
	})
	Register("hull2", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "hull2", Input: fmt.Sprintf("%d/%d", d.hull2N, d.hullGrain),
			Make: func(aware bool) Workload {
				return NewHull(d.hull2N, d.hullGrain, d.hullBands, OnCircle, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "hull2",
		}
	})
	Register("matmul", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "matmul", Input: fmt.Sprintf("%dx%d/%dx%d", d.mmN, d.mmN, d.mmBase, d.mmBase),
			// Per the paper, matmul uses no locality hints on either
			// platform; the aware flag is dropped.
			Make: func(bool) Workload {
				return NewMatmul(d.mmN, d.mmBase, false, paperCfg(false))
			},
			InFig3: true,
		}
	})
	Register("matmul-z", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "matmul-z", Input: fmt.Sprintf("%dx%d/%dx%d", d.mmN, d.mmN, d.mmBase, d.mmBase),
			Make: func(bool) Workload {
				return NewMatmul(d.mmN, d.mmBase, true, paperCfg(false))
			},
			Fig9Name: "matmul-z",
		}
	})
	Register("strassen", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "strassen", Input: fmt.Sprintf("%dx%d/%dx%d", d.stN, d.stN, d.stBase, d.stBase),
			Make: func(bool) Workload {
				return NewStrassen(d.stN, d.stBase, false, paperCfg(false))
			},
			InFig3: true,
		}
	})
	Register("strassen-z", func(s Scale) Spec {
		d := dimsOf(s)
		return Spec{
			Name: "strassen-z", Input: fmt.Sprintf("%dx%d/%dx%d", d.stN, d.stN, d.stBase, d.stBase),
			Make: func(bool) Workload {
				return NewStrassen(d.stN, d.stBase, true, paperCfg(false))
			},
			Fig9Name: "strassen-z",
		}
	})
}
