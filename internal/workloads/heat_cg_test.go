package workloads

import (
	"testing"

	"repro/internal/sched"
)

func TestHeatBoundariesFixed(t *testing.T) {
	w := NewHeat(32, 32, 5, 4, Config{Seed: 1})
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	u := w.grid[w.cur].Data
	for x := 0; x < 32; x++ {
		if u[x] != 100 || u[31*32+x] != 100 {
			t.Fatalf("boundary cell changed: top %g bottom %g", u[x], u[31*32+x])
		}
	}
	for y := 0; y < 32; y++ {
		if u[y*32] != 100 || u[y*32+31] != 100 {
			t.Fatalf("boundary cell changed at row %d", y)
		}
	}
}

func TestHeatInteriorDiffuses(t *testing.T) {
	w := NewHeat(32, 32, 10, 4, Config{Seed: 1})
	rt := newWorkloadRT(4, sched.NUMAWS)
	w.Prepare(rt)
	before := w.grid[0].Data[5*32+5]
	rt.Run(w.Root())
	after := w.grid[w.cur].Data[5*32+5]
	if before == after {
		t.Error("interior cell unchanged after 10 steps; diffusion not happening")
	}
}

func TestHeatSingleBand(t *testing.T) {
	w := NewHeat(16, 16, 3, 1, Config{Seed: 2})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestHeatMoreBandsThanRows(t *testing.T) {
	// 10 interior rows split over 16 bands: some bands are empty.
	w := NewHeat(12, 12, 3, 16, Config{Seed: 2})
	rt := newWorkloadRT(8, sched.NUMAWS)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestHeatZeroSteps(t *testing.T) {
	w := NewHeat(16, 16, 0, 4, Config{Seed: 2})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestHeatNonSquare(t *testing.T) {
	w := NewHeat(24, 48, 4, 6, Config{Seed: 3})
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestCGBitwiseIdenticalAcrossP(t *testing.T) {
	// The banded reduction order makes CG's floats schedule-independent:
	// x must be bitwise identical at P=1 and P=32.
	run := func(p int, pol sched.Policy, aware bool) []float64 {
		w := NewCG(512, 10, 6, 8, Config{Aware: aware, Seed: 4})
		rt := newWorkloadRT(p, pol)
		w.Prepare(rt)
		if p == 1 {
			rt.RunSerial(w.Root())
		} else {
			rt.Run(w.Root())
		}
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), w.x.Data...)
	}
	serial := run(1, sched.Cilk, false)
	par := run(32, sched.NUMAWS, true)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("x[%d] differs: %g vs %g", i, serial[i], par[i])
		}
	}
}

func TestCGSingleBand(t *testing.T) {
	w := NewCG(128, 8, 4, 1, Config{Seed: 5})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestCGMatrixShape(t *testing.T) {
	w := NewCG(256, 12, 2, 4, Config{Seed: 6})
	rt := newWorkloadRT(1, sched.Cilk)
	w.Prepare(rt)
	// Every row has exactly nzRow entries with sorted unique columns
	// including the diagonal, and is diagonally dominant.
	for i := 0; i < 256; i++ {
		lo, hi := int(w.rowptr.Data[i]), int(w.rowptr.Data[i+1])
		if hi-lo != 12 {
			t.Fatalf("row %d has %d nonzeros, want 12", i, hi-lo)
		}
		var offdiag, diag float64
		seenDiag := false
		for k := lo; k < hi; k++ {
			col := int(w.colidx.Data[k])
			if k > lo && col <= int(w.colidx.Data[k-1]) {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
			if col == i {
				seenDiag = true
				diag = w.vals.Data[k]
			} else {
				v := w.vals.Data[k]
				if v < 0 {
					v = -v
				}
				offdiag += v
			}
		}
		if !seenDiag {
			t.Fatalf("row %d missing diagonal", i)
		}
		if diag <= offdiag {
			t.Fatalf("row %d not diagonally dominant: %g <= %g", i, diag, offdiag)
		}
	}
}
