package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memory"
)

// LU is the classic Cilk lu benchmark: blocked in-place LU decomposition
// without pivoting (the input is made diagonally dominant, which keeps the
// factorization stable). Each elimination step k factors the diagonal
// block, then solves the row and column panels in parallel, then applies
// the Schur-complement update to the trailing tiles in parallel — a dag
// that starts wide, narrows every step, and interleaves serial
// bottlenecks (the diagonal factor) with full-width phases. None of the
// other benchmarks has this shrinking-frontier shape.
//
// Placement matters: in the aware configuration the matrix's row bands
// are partitioned over sockets and every panel/tile task is earmarked for
// the place of the block row it writes, so trailing updates chase their
// rows across the elimination; the baseline gets serial-first-touch
// placement.
type LU struct {
	reusable
	cfg  Config
	n    int // matrix dimension, a multiple of base
	base int // tile size

	a      *memory.F64
	orig   []float64
	places int
}

// NewLU builds an n x n decomposition with base x base tiles (n is
// rounded up to a multiple of base).
func NewLU(n, base int, cfg Config) *LU {
	if base < 4 {
		base = 4
	}
	if n < base {
		n = base
	}
	if rem := n % base; rem != 0 {
		n += base - rem
	}
	return &LU{cfg: cfg, n: n, base: base}
}

// Name implements Workload.
func (l *LU) Name() string { return "lu" }

// nb returns the tile count per dimension.
func (l *LU) nb() int { return l.n / l.base }

// Prepare implements Workload: a random matrix with a dominant diagonal,
// row-banded over sockets in the aware configuration.
func (l *LU) Prepare(rt *core.Runtime) {
	l.places = rt.Places()
	first := l.a == nil
	l.a = memory.ReuseF64(l.a, rt.Allocator(), "lu.A", l.n*l.n, l.cfg.bandPolicy(l.places))
	if !first {
		// The elimination factors A in place; restore the pristine matrix.
		copy(l.a.Data, l.orig)
		return
	}
	r := newRNG(l.cfg.Seed)
	for i := 0; i < l.n; i++ {
		for j := 0; j < l.n; j++ {
			v := 2*r.float64() - 1
			if i == j {
				v += float64(l.n)
			}
			l.a.Data[i*l.n+j] = v
		}
	}
	l.orig = append([]float64(nil), l.a.Data...)
}

// at/set index the full matrix.
func (l *LU) at(r, c int) float64     { return l.a.Data[r*l.n+c] }
func (l *LU) set(r, c int, v float64) { l.a.Data[r*l.n+c] = v }

// chargeTile charges one access to the base x base tile at block (bi, bj):
// one strided span per tile (rows are n-strided segments).
func (l *LU) chargeTile(ctx core.Context, bi, bj int, write bool) {
	b := l.base
	off := int64(bi*b*l.n+bj*b) * 8
	if write {
		ctx.WriteStrided(l.a.R, off, int64(l.n)*8, int64(b)*8, b)
	} else {
		ctx.ReadStrided(l.a.R, off, int64(l.n)*8, int64(b)*8, b)
	}
}

// hint earmarks a task for the place owning block row bi (aware runs
// only).
func (l *LU) hint(ctx core.Context, bi int, t core.Task) {
	if l.cfg.Aware {
		ctx.SpawnAt(placeOf(bi, l.nb(), l.places), t)
	} else {
		ctx.Spawn(t)
	}
}

// Root implements Workload: right-looking blocked elimination.
func (l *LU) Root() core.Task {
	return func(ctx core.Context) {
		nb := l.nb()
		for k := 0; k < nb; k++ {
			k := k
			ctx.Call(func(c core.Context) { l.factor(c, k) })
			// Row panel (L_kk \ A[k][j]) and column panel (A[i][k] / U_kk)
			// solves are independent of each other.
			for j := k + 1; j < nb; j++ {
				j := j
				l.hint(ctx, k, func(c core.Context) { l.solveRow(c, k, j) })
			}
			for i := k + 1; i < nb; i++ {
				i := i
				l.hint(ctx, i, func(c core.Context) { l.solveCol(c, i, k) })
			}
			ctx.Sync()
			// Trailing Schur update: every (i, j) tile is independent.
			for i := k + 1; i < nb; i++ {
				i := i
				for j := k + 1; j < nb; j++ {
					j := j
					l.hint(ctx, i, func(c core.Context) { l.schur(c, i, j, k) })
				}
			}
			ctx.Sync()
		}
	}
}

// factor computes the unpivoted LU of diagonal block k in place.
func (l *LU) factor(ctx core.Context, k int) {
	b, o := l.base, k*l.base
	for p := 0; p < b; p++ {
		piv := l.at(o+p, o+p)
		for r := p + 1; r < b; r++ {
			m := l.at(o+r, o+p) / piv
			l.set(o+r, o+p, m)
			for c := p + 1; c < b; c++ {
				l.set(o+r, o+c, l.at(o+r, o+c)-m*l.at(o+p, o+c))
			}
		}
	}
	l.chargeTile(ctx, k, k, false)
	l.chargeTile(ctx, k, k, true)
	ctx.Compute(2 * int64(b) * int64(b) * int64(b) / 3)
}

// solveRow replaces tile (k, j) with L_kk^-1 * A[k][j] (unit lower
// forward substitution).
func (l *LU) solveRow(ctx core.Context, k, j int) {
	b, ro, co := l.base, k*l.base, j*l.base
	for p := 0; p < b; p++ {
		for r := p + 1; r < b; r++ {
			m := l.at(ro+r, ro+p) // L factor from the diagonal block
			for c := 0; c < b; c++ {
				l.set(ro+r, co+c, l.at(ro+r, co+c)-m*l.at(ro+p, co+c))
			}
		}
	}
	l.chargeTile(ctx, k, k, false)
	l.chargeTile(ctx, k, j, false)
	l.chargeTile(ctx, k, j, true)
	ctx.Compute(int64(b) * int64(b) * int64(b))
}

// solveCol replaces tile (i, k) with A[i][k] * U_kk^-1 (backward-free
// column scaling against the upper factor).
func (l *LU) solveCol(ctx core.Context, i, k int) {
	b, ro, co := l.base, i*l.base, k*l.base
	for p := 0; p < b; p++ {
		piv := l.at(co+p, co+p)
		for r := 0; r < b; r++ {
			v := l.at(ro+r, co+p) / piv
			l.set(ro+r, co+p, v)
			for c := p + 1; c < b; c++ {
				l.set(ro+r, co+c, l.at(ro+r, co+c)-v*l.at(co+p, co+c))
			}
		}
	}
	l.chargeTile(ctx, k, k, false)
	l.chargeTile(ctx, i, k, false)
	l.chargeTile(ctx, i, k, true)
	ctx.Compute(int64(b) * int64(b) * int64(b))
}

// schur applies A[i][j] -= A[i][k] * A[k][j].
func (l *LU) schur(ctx core.Context, i, j, k int) {
	b := l.base
	io, jo, ko := i*l.base, j*l.base, k*l.base
	for r := 0; r < b; r++ {
		for p := 0; p < b; p++ {
			m := l.at(io+r, ko+p)
			for c := 0; c < b; c++ {
				l.set(io+r, jo+c, l.at(io+r, jo+c)-m*l.at(ko+p, jo+c))
			}
		}
	}
	l.chargeTile(ctx, i, k, false)
	l.chargeTile(ctx, k, j, false)
	l.chargeTile(ctx, i, j, false)
	l.chargeTile(ctx, i, j, true)
	ctx.Compute(2 * int64(b) * int64(b) * int64(b))
}

// Verify implements Workload: multiply the factors back together (L unit
// lower, U upper) and compare against the original matrix.
func (l *LU) Verify() error {
	n := l.n
	tol := 1e-8 * float64(n) * float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lim := i
			if j < lim {
				lim = j
			}
			sum := 0.0
			for k := 0; k <= lim; k++ {
				lv := l.at(i, k)
				if k == i {
					lv = 1 // unit diagonal of L
				}
				sum += lv * l.at(k, j)
			}
			if math.Abs(sum-l.orig[i*n+j]) > tol {
				return fmt.Errorf("lu: (L*U)[%d,%d] = %g, want %g", i, j, sum, l.orig[i*n+j])
			}
		}
	}
	return nil
}
