package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
)

// Matmul is the paper's matmul benchmark: "an eight-way divide-and-conquer
// matrix multiplication with no temporary matrices". Each level splits C
// into quadrants, computes the four first-half products in parallel, syncs,
// then the four second-half products (no temporaries means the two updates
// to each C quadrant are serialized by the sync).
//
// The Z variant (matmul-z, the paper's data layout transformation) stores
// all three matrices in blocked Z-Morton order with the block equal to the
// base case, so every base-case tile is one contiguous, streamable,
// socket-bindable span.
type Matmul struct {
	reusable
	refShared
	cfg    Config
	n      int
	base   int
	zkind  bool
	a, b   *layout.Matrix
	c      *layout.Matrix
	places int
}

// NewMatmul builds an n x n multiply with the given base-case tile size; z
// selects the blocked Z-Morton layout variant.
func NewMatmul(n, base int, z bool, cfg Config) *Matmul {
	return &Matmul{cfg: cfg, n: n, base: base, zkind: z}
}

// Name implements Workload.
func (m *Matmul) Name() string {
	if m.zkind {
		return "matmul-z"
	}
	return "matmul"
}

// Prepare implements Workload.
func (m *Matmul) Prepare(rt *core.Runtime) {
	m.places = rt.Places()
	alloc := rt.Allocator()
	kind, block := layout.RowMajor, 0
	if m.zkind {
		kind, block = layout.BlockedMorton, m.base
	}
	pol := m.cfg.basePolicy()
	first := m.a == nil
	if first {
		m.a = layout.NewMatrix(alloc, m.Name()+".A", m.n, kind, block, pol)
		m.b = layout.NewMatrix(alloc, m.Name()+".B", m.n, kind, block, pol)
		m.c = layout.NewMatrix(alloc, m.Name()+".C", m.n, kind, block, pol)
	} else {
		m.a.Rebind(alloc, m.Name()+".A", pol)
		m.b.Rebind(alloc, m.Name()+".B", pol)
		m.c.Rebind(alloc, m.Name()+".C", pol)
		// The base case accumulates into C; reuse starts from zero again.
		clear(m.c.Data)
	}
	if m.cfg.Aware && m.zkind {
		// Co-locate quadrants with the places that compute them; only the
		// Z layout makes quadrants page-contiguous.
		sockets := make([]int, 4)
		for i := range sockets {
			sockets[i] = placeOf(i, 4, m.places)
		}
		m.a.BindQuadrantsToSockets(sockets)
		m.b.BindQuadrantsToSockets(sockets)
		m.c.BindQuadrantsToSockets(sockets)
	}
	if first {
		m.a.FillRandom(m.cfg.Seed)
		m.b.FillRandom(m.cfg.Seed + 1)
	}
}

// Root implements Workload.
func (m *Matmul) Root() core.Task {
	return func(ctx core.Context) {
		m.rec(ctx, 0, 0, 0, 0, 0, 0, m.n, true)
	}
}

// rec computes C[cr:cr+n, cc:cc+n] += A[ar..,ac..] * B[br..,bc..]. top marks
// the root level, where the aware configuration earmarks each C quadrant's
// tasks for a place.
func (m *Matmul) rec(ctx core.Context, cr, cc, ar, ac, br, bc, n int, top bool) {
	if n <= m.base {
		m.baseMul(ctx, cr, cc, ar, ac, br, bc, n)
		return
	}
	h := n / 2
	spawn := func(c core.Context, quad int, f core.Task) {
		if top && m.cfg.Aware {
			c.SpawnAt(placeOf(quad, 4, m.places), f)
		} else {
			c.Spawn(f)
		}
	}
	// First half: Cij += Ai1 * B1j. The fourth quadrant is a plain call
	// (own sync scope), as in the Cilk original.
	spawn(ctx, 0, func(c core.Context) { m.rec(c, cr, cc, ar, ac, br, bc, h, false) })
	spawn(ctx, 1, func(c core.Context) { m.rec(c, cr, cc+h, ar, ac, br, bc+h, h, false) })
	spawn(ctx, 2, func(c core.Context) { m.rec(c, cr+h, cc, ar+h, ac, br, bc, h, false) })
	ctx.Call(func(c core.Context) { m.rec(c, cr+h, cc+h, ar+h, ac, br, bc+h, h, false) })
	ctx.Sync()
	// Second half: Cij += Ai2 * B2j.
	spawn(ctx, 0, func(c core.Context) { m.rec(c, cr, cc, ar, ac+h, br+h, bc, h, false) })
	spawn(ctx, 1, func(c core.Context) { m.rec(c, cr, cc+h, ar, ac+h, br+h, bc+h, h, false) })
	spawn(ctx, 2, func(c core.Context) { m.rec(c, cr+h, cc, ar+h, ac+h, br+h, bc, h, false) })
	ctx.Call(func(c core.Context) { m.rec(c, cr+h, cc+h, ar+h, ac+h, br+h, bc+h, h, false) })
	ctx.Sync()
}

// baseMul is the sequential tile multiply: real arithmetic plus tile-shaped
// access charges (contiguous block reads under the Z layout, strided row
// walks under row-major).
func (m *Matmul) baseMul(ctx core.Context, cr, cc, ar, ac, br, bc, n int) {
	chargeTile(ctx, m.a, ar, ac, n, false)
	chargeTile(ctx, m.b, br, bc, n, false)
	chargeTile(ctx, m.c, cr, cc, n, false)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := m.c.At(cr+i, cc+j)
			for k := 0; k < n; k++ {
				s += m.a.At(ar+i, ac+k) * m.b.At(br+k, bc+j)
			}
			m.c.Set(cr+i, cc+j, s)
		}
	}
	chargeTile(ctx, m.c, cr, cc, n, true)
	ctx.Compute(int64(n) * int64(n) * int64(n))
}

// chargeTile charges one access to the n x n tile at (r, c): a single
// streaming span when the tile is a contiguous Z block, otherwise n strided
// row segments.
func chargeTile(ctx core.Context, mat *layout.Matrix, r, c, n int, write bool) {
	if mat.Kind == layout.BlockedMorton && n == mat.Block {
		off, size := mat.BlockSpan(r, c)
		if write {
			ctx.Write(mat.R, off, size)
		} else {
			ctx.Read(mat.R, off, size)
		}
		return
	}
	if mat.Kind == layout.BlockedMorton {
		// Tile smaller than the layout block: rows are contiguous within
		// the block.
		for i := 0; i < n; i++ {
			off, size := mat.RowSpan(r+i, c, n)
			if write {
				ctx.Write(mat.R, off, size)
			} else {
				ctx.Read(mat.R, off, size)
			}
		}
		return
	}
	off, _ := mat.RowSpan(r, c, n)
	stride := int64(mat.N) * 8
	if write {
		ctx.WriteStrided(mat.R, off, stride, int64(n)*8, n)
	} else {
		ctx.ReadStrided(mat.R, off, stride, int64(n)*8, n)
	}
}

// Verify implements Workload: compare against a straightforward triple-loop
// product in a row-major reference matrix.
func (m *Matmul) Verify() error {
	v, _ := m.refCache().Do(m.Name()+".ref", func() (any, error) {
		return naiveMul(m.a, m.b), nil
	})
	ref := v.([]float64)
	for r := 0; r < m.n; r++ {
		for c := 0; c < m.n; c++ {
			got := m.c.At(r, c)
			want := ref[r*m.n+c]
			d := got - want
			if d < -1e-6 || d > 1e-6 {
				return fmt.Errorf("%s: C[%d,%d] = %g, want %g", m.Name(), r, c, got, want)
			}
		}
	}
	return nil
}

// naiveMul computes A*B into a plain row-major slice, blocked over k for
// speed (results are identical to the textbook loop since float addition
// order per cell is preserved: k ascending).
func naiveMul(a, b *layout.Matrix) []float64 {
	n := a.N
	out := make([]float64, n*n)
	// Copy into flat row-major scratch to avoid layout Index costs in the
	// O(n^3) loop.
	af := make([]float64, n*n)
	bf := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			af[r*n+c] = a.At(r, c)
			bf[r*n+c] = b.At(r, c)
		}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := af[i*n+k]
			row := bf[k*n:]
			outRow := out[i*n:]
			for j := 0; j < n; j++ {
				outRow[j] += aik * row[j]
			}
		}
	}
	return out
}
