package workloads

// The name-keyed workload registry: the third open axis of the experiment
// space, next to the topology preset registry (internal/topology) and the
// scheduling-policy registry (internal/sched). A benchmark registers a
// Builder under its table name; the harness, the public facade and the CLI
// all derive their suites from the registered names instead of a closed
// list, so new benchmarks — in-tree or user-registered through
// pkg/numaws.RegisterBenchmark — flow through every measurement protocol
// and exporter without touching the harness.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scale selects benchmark input sizes.
type Scale int

// Available scales.
const (
	// ScaleSmall runs in seconds; used by tests and -short benches.
	ScaleSmall Scale = iota
	// ScaleFull is the EXPERIMENTS.md configuration.
	ScaleFull
)

// Spec describes one benchmark configuration (one row of the paper's
// tables).
type Spec struct {
	Name  string
	Input string // human-readable "input size / base case" for the table
	// Make builds a fresh workload instance; aware selects the NUMA-aware
	// configuration used for NUMA-WS runs. Instances are single-use and
	// must be deterministic: the same (scale, aware) arguments rebuild an
	// identical computation.
	Make func(aware bool) Workload
	// InFig3 marks benchmarks included in the Fig. 3 normalized-time plot
	// (of the paper's nine, the seven non--z variants).
	InFig3 bool
	// Fig9Name is the series name in Fig. 9 ("" if the benchmark has no
	// curve; the paper plots matmul and strassen only as their -z
	// variants).
	Fig9Name string

	// scale and poolGen are stamped by Specs: the scale the builder ran at
	// and the registry generation it was snapshotted under. Together with
	// Name and Input they are the spec's pool identity (see pool.go).
	// Hand-built Spec literals have poolGen 0 — no identity, never pooled.
	scale   Scale
	poolGen uint64
}

// Generation reports the registry generation the spec was stamped under by
// Specs, or 0 for hand-built literals (which have no pool identity). The
// harness's crash-safe journal includes it in every record key: a journal
// written under one registry population never replays into a process whose
// registrations differ, because the generation counter would differ too.
func (s Spec) Generation() uint64 { return s.poolGen }

// SpecScale reports the scale the spec's builder ran at (stamped by Specs;
// the zero ScaleSmall for hand-built literals). Part of the journal key.
func (s Spec) SpecScale() Scale { return s.scale }

// Builder constructs a benchmark's Spec at the given scale. The returned
// Spec's Name must equal the name the Builder was registered under.
type Builder func(Scale) Spec

// registry is the name-keyed benchmark registry. Registration normally
// happens in init functions (this package registers the paper's nine), but
// the mutex makes registration from the facade safe at any time.
var registry = struct {
	sync.RWMutex
	byName map[string]Builder
	// gen counts registry mutations, starting at 1 so a stamped spec's
	// generation is always nonzero. Every Register/Unregister bumps it and
	// flushes the workload pool: specs stamped under an older generation
	// keep working but repool under their own keys, so a name re-registered
	// with a different builder can never be served another builder's
	// pooled instances.
	gen uint64
}{byName: map[string]Builder{}, gen: 1}

// Register adds a benchmark builder under name. It panics on an empty
// name, a nil builder, or a duplicate registration: all are programming
// errors, and silently replacing a benchmark would invalidate every
// measurement taken under the name. Registration is permanent for the
// process — production code never unregisters, so results stay
// attributable to a stable name.
func Register(name string, b Builder) {
	if err := TryRegister(name, b); err != nil {
		panic(err)
	}
}

// TryRegister is Register returning an error instead of panicking; the
// public facade's RegisterBenchmark builds on it so user mistakes surface
// as errors, not crashes.
func TryRegister(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("workloads: Register: empty benchmark name")
	}
	if b == nil {
		return fmt.Errorf("workloads: Register: benchmark %q has a nil builder", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("workloads: Register: benchmark %q already registered", name)
	}
	registry.byName[name] = b
	registry.gen++
	flushPools()
	return nil
}

// Unregister removes a benchmark by name, reporting whether it was
// registered. Test hook only: production code never unregisters
// (measurements must stay attributable to a stable name); it exists so
// registry and facade tests can clean up registrations they made.
func Unregister(name string) bool {
	registry.Lock()
	defer registry.Unlock()
	_, ok := registry.byName[name]
	delete(registry.byName, name)
	if ok {
		registry.gen++
		flushPools()
	}
	return ok
}

// Lookup resolves a registered benchmark builder by name. Unknown names
// return an error listing every registered name, so callers can surface it
// as a usage error (mirroring unknown topology and policy names) instead
// of panicking.
func Lookup(name string) (Builder, error) {
	registry.RLock()
	b, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Names returns the registered benchmark names, sorted, so suites,
// listings and error messages are stable.
func Names() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// Specs builds every registered benchmark's Spec at the given scale, in
// name order — the canonical measurement order of the suite. Names and
// builders are snapshotted under one lock acquisition, so a concurrent
// (test-hook) Unregister cannot leave a name without its builder.
func Specs(s Scale) []Spec {
	registry.RLock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	builders := make([]Builder, len(names))
	for i, name := range names {
		builders[i] = registry.byName[name]
	}
	gen := registry.gen
	registry.RUnlock()
	out := make([]Spec, len(names))
	for i, b := range builders {
		out[i] = b(s)
		if out[i].Name != names[i] {
			panic(fmt.Sprintf("workloads: benchmark registered as %q built a spec named %q",
				names[i], out[i].Name))
		}
		out[i].scale = s
		out[i].poolGen = gen
	}
	return out
}
