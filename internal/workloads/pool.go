package workloads

// The workload-input pool. Building a benchmark's input tables (cg's
// sparse matrix, the sort arrays, the matrices) dominates per-run cost once
// the simulator core itself is allocation-free — and the tables are
// identical across every (policy, P, seed) cell of a measurement grid,
// because input generation depends only on (benchmark, scale, seed) and the
// aware flag changes placement policies, not data. The pool lets the
// harness check an instance out per run and return it afterwards, so each
// input is constructed once and reused across the whole grid, the way
// sched.Arena reuses engine state.
//
// Ownership and reset contract: an instance is owned exclusively by one run
// between Checkout and its release. Prepare on a reused instance must (1)
// re-register every region with the run's fresh Allocator in exactly the
// statement order of first construction — regions carry run-scoped
// first-touch page state, and identical order reproduces identical base
// offsets, so a reused input is indistinguishable from a fresh one to the
// simulator — and (2) restore any data the previous run mutated in place
// (cilksort re-copies its pristine input, lu re-copies the unfactored
// matrix, matmul/rectmul zero the accumulated C, heat re-seeds its grids,
// hull clears its mark array). Data that runs only read, or that is fully
// written before it is read, carries over untouched. The contract is pinned
// by TestPooledRunsVerifyBackToBack and the byte-identical golden output.

import (
	"sync"
	"sync/atomic"
)

// Reusable marks a workload whose Prepare supports being called again on a
// new Runtime after a completed run, per the contract above. All in-tree
// benchmarks are reusable; instances that are not stay single-use and are
// never pooled.
type Reusable interface {
	Workload
	reusableWorkload()
}

// reusable is embedded by workloads that honor the reuse contract.
type reusable struct{}

func (reusable) reusableWorkload() {}

// RefCache memoizes serial reference results (verify oracles, the
// harness's TS reports) shared by every instance of one benchmark input.
// Each key single-flights on its own lock, so concurrent -jobs workers
// asking for the same reference wait for one computation — while a compute
// may itself call Do with a different key (the harness's memoized TS run
// verifies through the same cache) without deadlocking.
type RefCache struct {
	mu   sync.Mutex
	vals map[string]*refEntry
}

type refEntry struct {
	mu   sync.Mutex
	done bool
	val  any
}

// NewRefCache returns an empty cache.
func NewRefCache() *RefCache { return &RefCache{vals: map[string]*refEntry{}} }

// Do returns the value cached under key, computing it on first use. A
// compute error is returned without being cached, so a failed or cancelled
// computation does not poison the cache for later callers.
func (c *RefCache) Do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	e := c.vals[key]
	if e == nil {
		e = &refEntry{}
		c.vals[key] = e
	}
	c.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.val, nil
	}
	refComputes.Add(1)
	v, err := compute()
	if err != nil {
		return nil, err
	}
	e.val, e.done = v, true
	return v, nil
}

// refCacheUser is implemented by workloads that can share a reference
// cache; Checkout attaches the input's shared cache to each instance.
type refCacheUser interface{ SetRefCache(*RefCache) }

// refShared is embedded by workloads with cacheable verify references. The
// zero value works standalone: an instance used outside the pool lazily
// gets a private cache, preserving the old per-instance behavior.
type refShared struct{ refs *RefCache }

// SetRefCache implements refCacheUser.
func (r *refShared) SetRefCache(c *RefCache) { r.refs = c }

// refCache returns the attached cache, creating a private one on first use
// for unpooled instances.
func (r *refShared) refCache() *RefCache {
	if r.refs == nil {
		r.refs = NewRefCache()
	}
	return r.refs
}

// poolKey identifies one pooled input configuration. The registry
// generation guards against the test-only Unregister/re-Register cycle: a
// name re-registered with a different builder gets fresh keys, never stale
// instances.
type poolKey struct {
	gen   uint64
	name  string
	input string
	scale Scale
	aware bool
}

// refKey is poolKey without the aware flag: reference results depend only
// on the input data, which is identical across the aware axis, so both
// configurations share one cache.
type refKey struct {
	gen   uint64
	name  string
	input string
	scale Scale
}

var pool = struct {
	sync.Mutex
	free map[poolKey][]Reusable
	refs map[refKey]*RefCache
}{free: map[poolKey][]Reusable{}, refs: map[refKey]*RefCache{}}

// Pool activity counters; test hooks for the amortization and
// failure-containment tests.
var (
	constructed atomic.Uint64 // instances built by Checkout
	reused      atomic.Uint64 // instances handed out from the free list
	refComputes atomic.Uint64 // RefCache compute invocations
	quarantines atomic.Uint64 // pool-backed instances discarded after a failed run
)

// PoolCounters reports how many workload instances Checkout constructed,
// how many it reused from the pool, how many reference computations ran,
// and how many pool-backed instances were quarantined by Lease.Discard,
// since the last reset. Test hook.
func PoolCounters() (built, pooled, refs, quarantined uint64) {
	return constructed.Load(), reused.Load(), refComputes.Load(), quarantines.Load()
}

// ResetPoolCounters zeroes the counters. Test hook.
func ResetPoolCounters() {
	constructed.Store(0)
	reused.Store(0)
	refComputes.Store(0)
	quarantines.Store(0)
}

// FlushPools drops every pooled instance and shared reference cache, so a
// test can observe construction counts from a clean slate. Test hook.
func FlushPools() { flushPools() }

// flushPools drops every pooled instance and shared cache. Called when the
// registry changes: stamped generations rotate, so retained state would
// never be reachable again anyway.
func flushPools() {
	pool.Lock()
	clear(pool.free)
	clear(pool.refs)
	pool.Unlock()
}

// Unpooled returns a copy of spec with its pool identity cleared: Checkout
// always constructs a fresh single-use instance for it and shares no
// reference cache. The pool keys on (generation, name, input, scale), not
// on the builder, so a caller that overrides fields of a registry spec —
// wrapping Make, say — must clear the identity or Checkout would hand back
// instances the original builder constructed.
func Unpooled(spec Spec) Spec {
	spec.poolGen = 0
	return spec
}

// SharedCache returns the reference cache every pooled instance of spec
// shares, or nil for specs that did not come from the registry (hand-built
// literals have no pool identity, so there is nothing to share). The
// harness keys its TS memoization on it.
func SharedCache(spec Spec) *RefCache {
	if spec.poolGen == 0 {
		return nil
	}
	return sharedCache(refKey{gen: spec.poolGen, name: spec.Name, input: spec.Input, scale: spec.scale})
}

func sharedCache(rk refKey) *RefCache {
	pool.Lock()
	defer pool.Unlock()
	rc := pool.refs[rk]
	if rc == nil {
		rc = NewRefCache()
		pool.refs[rk] = rc
	}
	return rc
}

// Lease is the caller's exclusive hold on a checked-out instance. Exactly
// one of Release or Discard settles it once the run is over; the zero
// Lease (handed out for unpooled instances) settles either way as a no-op.
type Lease struct {
	release func()
	discard func()
}

// Release returns the instance to its pool for reuse. Only a fully
// successful run — verification included — may release: a reused instance
// is trusted to honor the Prepare reset contract, which a run that died
// mid-mutation cannot guarantee.
func (l Lease) Release() {
	if l.release != nil {
		l.release()
	}
}

// Discard quarantines the instance: dropped, never returned to the pool,
// counted in PoolCounters' quarantined column. Every failed run — panic,
// deadline interrupt, verification mismatch — must discard, mirroring the
// harness's arena discipline. Discarding an unpooled instance is a no-op
// (there is no pool to protect) and is not counted.
func (l Lease) Discard() {
	if l.discard != nil {
		l.discard()
	}
}

// Checkout returns a workload instance for spec's aware configuration plus
// the Lease that settles its ownership. The caller owns the instance
// exclusively until it settles the lease: Release after a fully successful
// run, Discard after any failure. fresh bypasses the pool — a newly built
// single-use instance, the unamortized path — as do specs with no pool
// identity and workloads that are not Reusable; their lease is a no-op
// both ways.
func Checkout(spec Spec, aware, fresh bool) (Workload, Lease) {
	if fresh || spec.poolGen == 0 {
		constructed.Add(1)
		return spec.Make(aware), Lease{}
	}
	key := poolKey{gen: spec.poolGen, name: spec.Name, input: spec.Input, scale: spec.scale, aware: aware}
	rk := refKey{gen: spec.poolGen, name: spec.Name, input: spec.Input, scale: spec.scale}

	pool.Lock()
	var w Reusable
	if list := pool.free[key]; len(list) > 0 {
		w = list[len(list)-1]
		list[len(list)-1] = nil
		pool.free[key] = list[:len(list)-1]
	}
	rc := pool.refs[rk]
	if rc == nil {
		rc = NewRefCache()
		pool.refs[rk] = rc
	}
	pool.Unlock()

	if w == nil {
		constructed.Add(1)
		inst := spec.Make(aware)
		if u, ok := inst.(refCacheUser); ok {
			u.SetRefCache(rc)
		}
		ru, ok := inst.(Reusable)
		if !ok {
			return inst, Lease{}
		}
		w = ru
	} else {
		reused.Add(1)
		if u, ok := Workload(w).(refCacheUser); ok {
			u.SetRefCache(rc)
		}
	}
	lease := Lease{
		release: func() {
			pool.Lock()
			pool.free[key] = append(pool.free[key], w)
			pool.Unlock()
		},
		discard: func() { quarantines.Add(1) },
	}
	return w, lease
}
