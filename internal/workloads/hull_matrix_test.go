package workloads

import (
	"math"
	"testing"

	"repro/internal/layout"
	"repro/internal/sched"
)

func TestHullTriangle(t *testing.T) {
	// Three points: all are hull vertices.
	w := NewHull(3, 64, 2, InDisk, Config{Seed: 1})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	w.x.Data[0], w.y.Data[0] = 0, 0
	w.x.Data[1], w.y.Data[1] = 1, 0
	w.x.Data[2], w.y.Data[2] = 0.5, 1
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	for i, m := range w.hullMark {
		if !m {
			t.Errorf("triangle vertex %d not marked", i)
		}
	}
}

func TestHullSquareWithInteriorPoint(t *testing.T) {
	w := NewHull(5, 64, 2, InDisk, Config{Seed: 1})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	coords := [][2]float64{{-1, -1}, {1, -1}, {1, 1}, {-1, 1}, {0, 0}}
	for i, c := range coords {
		w.x.Data[i], w.y.Data[i] = c[0], c[1]
	}
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !w.hullMark[i] {
			t.Errorf("square corner %d not marked", i)
		}
	}
	if w.hullMark[4] {
		t.Error("interior point wrongly marked as hull vertex")
	}
}

func TestHullParallelMatchesSerial(t *testing.T) {
	mark := func(p int, pol sched.Policy) []bool {
		w := NewHull(8000, 256, 8, InDisk, Config{Seed: 13})
		rt := newWorkloadRT(p, pol)
		w.Prepare(rt)
		if p == 1 {
			rt.RunSerial(w.Root())
		} else {
			rt.Run(w.Root())
		}
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return w.hullMark
	}
	a := mark(1, sched.Cilk)
	b := mark(32, sched.NUMAWS)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hull membership of point %d differs across schedules", i)
		}
	}
}

func TestMonotoneChainReference(t *testing.T) {
	xs := []float64{0, 2, 2, 0, 1}
	ys := []float64{0, 0, 2, 2, 1}
	hull := monotoneChain(xs, ys)
	if len(hull) != 4 {
		t.Fatalf("reference hull has %d vertices, want 4: %v", len(hull), hull)
	}
	want := map[int32]bool{0: true, 1: true, 2: true, 3: true}
	for _, i := range hull {
		if !want[i] {
			t.Errorf("unexpected hull vertex %d", i)
		}
	}
}

func TestHullCirclePointsOnUnitCircle(t *testing.T) {
	w := NewHull(100, 64, 2, OnCircle, Config{Seed: 3})
	rt := newWorkloadRT(1, sched.Cilk)
	w.Prepare(rt)
	for i := 0; i < 100; i++ {
		r := math.Hypot(w.x.Data[i], w.y.Data[i])
		if math.Abs(r-1) > 1e-12 {
			t.Fatalf("point %d radius %g, want 1", i, r)
		}
	}
}

func TestMatmulIdentity(t *testing.T) {
	w := NewMatmul(32, 16, false, Config{Seed: 1})
	rt := newWorkloadRT(8, sched.Cilk)
	w.Prepare(rt)
	// B = I: C must equal A.
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			v := 0.0
			if r == c {
				v = 1
			}
			w.b.Set(r, c, v)
		}
	}
	rt.Run(w.Root())
	if !layout.Equal(w.a, w.c, 1e-12) {
		t.Error("A * I != A")
	}
}

func TestMatmulBaseOnly(t *testing.T) {
	// n == base: the whole multiply is one base case, no spawns.
	for _, z := range []bool{false, true} {
		w := NewMatmul(16, 16, z, Config{Seed: 2})
		rt := newWorkloadRT(4, sched.NUMAWS)
		w.Prepare(rt)
		rep := rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			t.Error(err)
		}
		if rep.Sched.Spawns != 0 {
			t.Errorf("z=%v: base-only multiply spawned %d times", z, rep.Sched.Spawns)
		}
	}
}

func TestMatmulZMatchesPlain(t *testing.T) {
	// Same inputs, both layouts: identical results (same fp order).
	mk := func(z bool) *Matmul {
		w := NewMatmul(64, 16, z, Config{Seed: 9})
		rt := newWorkloadRT(16, sched.Cilk)
		w.Prepare(rt)
		rt.Run(w.Root())
		if err := w.Verify(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	plain, zed := mk(false), mk(true)
	if !layout.Equal(plain.c, zed.c, 0) {
		t.Error("matmul and matmul-z disagree bitwise")
	}
}

func TestStrassenBaseOnly(t *testing.T) {
	w := NewStrassen(16, 16, false, Config{Seed: 3})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	if w.temps != nil {
		t.Error("base-only strassen built a temp tree")
	}
	rt.Run(w.Root())
	if err := w.Verify(); err != nil {
		t.Error(err)
	}
}

func TestStrassenTempTreeShape(t *testing.T) {
	w := NewStrassen(64, 16, false, Config{Seed: 3})
	rt := newWorkloadRT(4, sched.Cilk)
	w.Prepare(rt)
	// 64 -> 32 -> 16(base): two levels of temps.
	if w.temps == nil {
		t.Fatal("no temp tree")
	}
	if w.temps.s[0].N != 32 {
		t.Errorf("level-1 temps are %dx%d, want 32x32", w.temps.s[0].N, w.temps.s[0].N)
	}
	for i := 0; i < 7; i++ {
		kid := w.temps.kids[i]
		if kid == nil {
			t.Fatalf("missing temp child %d", i)
		}
		if kid.m[0].N != 16 {
			t.Errorf("level-2 temps are %d, want 16", kid.m[0].N)
		}
		for j := 0; j < 7; j++ {
			if kid.kids[j] != nil {
				t.Error("temp tree deeper than the recursion")
			}
		}
	}
}

func TestStrassenAgainstMatmul(t *testing.T) {
	// Strassen and the D&C matmul on identical inputs must agree within
	// numerical tolerance.
	sw := NewStrassen(64, 16, false, Config{Seed: 77})
	rtS := newWorkloadRT(16, sched.NUMAWS)
	sw.Prepare(rtS)
	rtS.Run(sw.Root())

	mw := NewMatmul(64, 16, false, Config{Seed: 77})
	rtM := newWorkloadRT(16, sched.NUMAWS)
	mw.Prepare(rtM)
	rtM.Run(mw.Root())

	if !layout.Equal(sw.a, mw.a, 0) || !layout.Equal(sw.b, mw.b, 0) {
		t.Fatal("inputs differ despite same seed")
	}
	if !layout.Equal(sw.c, mw.c, 1e-6) {
		t.Error("strassen and matmul disagree beyond tolerance")
	}
}
