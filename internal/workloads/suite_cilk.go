package workloads

// Five DAG-diverse additions from the classic Cilk benchmark suite,
// registered alongside the paper's nine: fib (pure spawn tree), nqueens
// (irregular data-dependent search), fft (phase-changing banded passes),
// lu (shrinking-frontier elimination) and rectmul (shape-dependent
// fan-out). fft and lu take the full aware-vs-baseline placement
// treatment (partitioned bands plus hints); fib, nqueens and rectmul are
// hint-free like matmul and strassen — fib and nqueens carry no data at
// all, and rectmul follows the paper's matmul protocol.

import "fmt"

// cilkDims is one scale's input configuration for the Cilk-suite
// additions.
type cilkDims struct {
	fibN, fibBase         int
	nqN, nqDepth          int
	fftN, fftBands        int
	luN, luBase           int
	rmM, rmP, rmN, rmBase int
}

func cilkDimsOf(s Scale) cilkDims {
	if s == ScaleSmall {
		return cilkDims{
			fibN: 27, fibBase: 12,
			nqN: 10, nqDepth: 3,
			fftN: 1 << 12, fftBands: 16,
			luN: 128, luBase: 16,
			rmM: 96, rmP: 64, rmN: 128, rmBase: 16,
		}
	}
	return cilkDims{
		fibN: 35, fibBase: 14,
		nqN: 13, nqDepth: 4,
		fftN: 1 << 18, fftBands: 128,
		luN: 512, luBase: 32,
		rmM: 512, rmP: 256, rmN: 384, rmBase: 32,
	}
}

func init() {
	Register("fib", func(s Scale) Spec {
		d := cilkDimsOf(s)
		return Spec{
			Name: "fib", Input: fmt.Sprintf("%d/%d", d.fibN, d.fibBase),
			// fib has no data: hint-free on both platforms, aware dropped.
			Make: func(bool) Workload {
				return NewFib(d.fibN, d.fibBase, paperCfg(false))
			},
			InFig3: true, Fig9Name: "fib",
		}
	})
	Register("nqueens", func(s Scale) Spec {
		d := cilkDimsOf(s)
		return Spec{
			Name: "nqueens", Input: fmt.Sprintf("%d/depth=%d", d.nqN, d.nqDepth),
			// nqueens has no data either: aware dropped.
			Make: func(bool) Workload {
				return NewNQueens(d.nqN, d.nqDepth, paperCfg(false))
			},
			InFig3: true, Fig9Name: "nqueens",
		}
	})
	Register("fft", func(s Scale) Spec {
		d := cilkDimsOf(s)
		return Spec{
			Name: "fft", Input: fmt.Sprintf("%d/%d bands", d.fftN, d.fftBands),
			Make: func(aware bool) Workload {
				return NewFFT(d.fftN, d.fftBands, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "fft",
		}
	})
	Register("lu", func(s Scale) Spec {
		d := cilkDimsOf(s)
		return Spec{
			Name: "lu", Input: fmt.Sprintf("%dx%d/%d", d.luN, d.luN, d.luBase),
			Make: func(aware bool) Workload {
				return NewLU(d.luN, d.luBase, paperCfg(aware))
			},
			InFig3: true, Fig9Name: "lu",
		}
	})
	Register("rectmul", func(s Scale) Spec {
		d := cilkDimsOf(s)
		return Spec{
			Name: "rectmul", Input: fmt.Sprintf("%dx%dx%d/%d", d.rmM, d.rmP, d.rmN, d.rmBase),
			// rectmul follows matmul's protocol: no hints on either
			// platform, aware dropped.
			Make: func(bool) Workload {
				return NewRectmul(d.rmM, d.rmP, d.rmN, d.rmBase, paperCfg(false))
			},
			InFig3: true, Fig9Name: "rectmul",
		}
	})
}
