package workloads

import (
	"sort"
	"strings"
	"testing"
)

// suiteNames is the in-tree suite: the paper's nine plus the five
// Cilk-suite additions, in registry (sorted) order.
var suiteNames = []string{
	"cg", "cilksort", "fft", "fib", "heat", "hull1", "hull2", "lu",
	"matmul", "matmul-z", "nqueens", "rectmul", "strassen", "strassen-z",
}

func TestNamesSortedAndStable(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) != len(suiteNames) {
		t.Fatalf("%d registered benchmarks, want %d: %v", len(names), len(suiteNames), names)
	}
	for i, want := range suiteNames {
		if names[i] != want {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want)
		}
	}
	// Stable across calls.
	again := Names()
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("Names() changed between calls: %v vs %v", names, again)
		}
	}
}

func TestLookupUnknownNameErrors(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup of an unknown benchmark succeeded")
	}
	// The error is a usable usage error: it names the offender and lists
	// what is registered.
	for _, want := range []string{`"bogus"`, "cilksort", "fib"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Lookup error missing %q: %v", want, err)
		}
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("cilksort", func(Scale) Spec { return Spec{Name: "cilksort"} })
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	if err := TryRegister("", func(Scale) Spec { return Spec{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := TryRegister("nilbuilder", nil); err == nil {
		t.Error("nil builder accepted")
		Unregister("nilbuilder")
	}
	if err := TryRegister("cilksort", func(Scale) Spec { return Spec{Name: "cilksort"} }); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate TryRegister err = %v, want already-registered", err)
	}
}

func TestRegisterLookupRoundTrip(t *testing.T) {
	name := "registry-roundtrip-test"
	Register(name, func(s Scale) Spec {
		return Spec{
			Name:  name,
			Input: "tiny",
			Make:  func(bool) Workload { return NewFib(10, 4, Config{}) },
		}
	})
	defer Unregister(name)
	b, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	sp := b(ScaleSmall)
	if sp.Name != name || sp.Input != "tiny" {
		t.Errorf("round-tripped spec = %+v", sp)
	}
	found := false
	for _, s := range Specs(ScaleSmall) {
		if s.Name == name {
			found = true
		}
	}
	if !found {
		t.Error("registered benchmark missing from Specs")
	}
	if !Unregister(name) {
		t.Error("Unregister of a registered name reported false")
	}
	if Unregister(name) {
		t.Error("second Unregister reported true")
	}
	if _, err := Lookup(name); err == nil {
		t.Error("Lookup after Unregister succeeded")
	}
}

// TestSpecsBuildsRegisteredSuiteInNameOrder pins the canonical measurement
// order: Specs returns one spec per registered name, sorted, with each
// spec named for its registry key and a working Make.
func TestSpecsBuildsRegisteredSuiteInNameOrder(t *testing.T) {
	for _, scale := range []Scale{ScaleSmall, ScaleFull} {
		specs := Specs(scale)
		if len(specs) != len(suiteNames) {
			t.Fatalf("scale %d: %d specs, want %d", scale, len(specs), len(suiteNames))
		}
		for i, sp := range specs {
			if sp.Name != suiteNames[i] {
				t.Errorf("scale %d: Specs[%d] = %q, want %q", scale, i, sp.Name, suiteNames[i])
			}
			if sp.Input == "" {
				t.Errorf("%s: empty Input", sp.Name)
			}
			if sp.Make == nil {
				t.Errorf("%s: nil Make", sp.Name)
			}
		}
	}
}

// TestMisnamedBuilderPanicsInSpecs pins the registry contract that a
// Builder's Spec.Name must equal its registry key — a mismatch would make
// measurements unattributable, so Specs fails loudly.
func TestMisnamedBuilderPanicsInSpecs(t *testing.T) {
	name := "misnamed-builder-test"
	Register(name, func(Scale) Spec {
		return Spec{Name: "something-else", Make: func(bool) Workload { return NewFib(4, 2, Config{}) }}
	})
	defer Unregister(name)
	defer func() {
		if recover() == nil {
			t.Error("Specs with a misnamed builder did not panic")
		}
	}()
	Specs(ScaleSmall)
}
