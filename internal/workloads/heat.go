package workloads

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memory"
)

// Heat is the paper's heat benchmark: Jacobi-style heat diffusion on a 2D
// plane over a series of time steps. Each step computes a new grid from the
// old one; rows are processed in parallel bands. In the aware configuration
// the row bands of both grids are bound to sockets and the band tasks are
// earmarked for the matching places, co-locating each band's computation
// with its rows across all time steps.
type Heat struct {
	reusable
	refShared
	cfg    Config
	ny, nx int
	steps  int
	bands  int

	grid   [2]*memory.F64
	places int
	cur    int // which grid holds the latest values after the run
}

// NewHeat builds an ny x nx Jacobi diffusion over the given number of time
// steps, parallelized over `bands` row bands.
func NewHeat(ny, nx, steps, bands int, cfg Config) *Heat {
	if bands < 1 {
		bands = 1
	}
	return &Heat{cfg: cfg, ny: ny, nx: nx, steps: steps, bands: bands}
}

// Name implements Workload.
func (h *Heat) Name() string { return "heat" }

// Prepare implements Workload.
func (h *Heat) Prepare(rt *core.Runtime) {
	h.places = rt.Places()
	pol := h.cfg.bandPolicy(h.places)
	h.grid[0] = memory.ReuseF64(h.grid[0], rt.Allocator(), "heat.u0", h.ny*h.nx, pol)
	h.grid[1] = memory.ReuseF64(h.grid[1], rt.Allocator(), "heat.u1", h.ny*h.nx, pol)
	// The sweeps overwrite both grids; re-seeding restores the initial
	// condition whether this is a first or a reused preparation.
	h.initGrid(h.grid[0].Data)
	copy(h.grid[1].Data, h.grid[0].Data)
}

// initGrid sets a hot boundary and a cold interior, a standard Jacobi
// setup with a verifiable steady drift.
func (h *Heat) initGrid(u []float64) {
	for y := 0; y < h.ny; y++ {
		for x := 0; x < h.nx; x++ {
			v := 0.0
			if y == 0 || y == h.ny-1 || x == 0 || x == h.nx-1 {
				v = 100
			} else if (x+y)%17 == 0 {
				v = 40
			}
			u[y*h.nx+x] = v
		}
	}
}

// Root implements Workload: `steps` Jacobi sweeps with a barrier between
// steps, each sweep parallel over row bands.
func (h *Heat) Root() core.Task {
	return func(ctx core.Context) {
		src, dst := 0, 1
		for s := 0; s < h.steps; s++ {
			from, to := src, dst
			spawnBands(ctx, h.bands, h.places, h.cfg.Aware, func(c core.Context, band int) {
				h.sweepBand(c, band, h.grid[from], h.grid[to])
			})
			src, dst = dst, src
		}
		h.cur = src
	}
}

// sweepBand applies the 5-point stencil to the band's interior rows.
func (h *Heat) sweepBand(ctx core.Context, band int, from, to *memory.F64) {
	lo := 1 + band*(h.ny-2)/h.bands
	hi := 1 + (band+1)*(h.ny-2)/h.bands
	u, v := from.Data, to.Data
	nx := h.nx
	for y := lo; y < hi; y++ {
		for x := 1; x < nx-1; x++ {
			i := y*nx + x
			v[i] = u[i] + 0.2*(u[i-nx]+u[i+nx]+u[i-1]+u[i+1]-4*u[i])
		}
	}
	rows := hi - lo
	if rows <= 0 {
		return
	}
	// The stencil reads rows lo-1 .. hi and writes rows lo .. hi-1.
	off, size := from.Span((lo-1)*nx, (rows+2)*nx)
	ctx.Read(from.R, off, size)
	off, size = to.Span(lo*nx, rows*nx)
	ctx.Write(to.R, off, size)
	ctx.Compute(int64(rows) * int64(nx) * 6)
}

// Verify implements Workload: compare against a plain serial reference
// computed from the same initial grid (computed once per input, shared by
// pooled instances).
func (h *Heat) Verify() error {
	v, _ := h.refCache().Do("heat.ref", func() (any, error) {
		a := make([]float64, h.ny*h.nx)
		b := make([]float64, h.ny*h.nx)
		h.initGrid(a)
		copy(b, a)
		for s := 0; s < h.steps; s++ {
			for y := 1; y < h.ny-1; y++ {
				for x := 1; x < h.nx-1; x++ {
					i := y*h.nx + x
					b[i] = a[i] + 0.2*(a[i-h.nx]+a[i+h.nx]+a[i-1]+a[i+1]-4*a[i])
				}
			}
			a, b = b, a
		}
		return a, nil
	})
	ref := v.([]float64)
	got := h.grid[h.cur].Data
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-9 {
			return fmt.Errorf("heat: cell %d is %g, want %g", i, got[i], ref[i])
		}
	}
	return nil
}
