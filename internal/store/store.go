// Package store is the sweep service's persistent, content-addressed
// result store: one fsync'd, CRC-checksummed record per completed run,
// in internal/journal's record format, indexed in memory for O(1)
// lookups. The address is the full journal.Key — benchmark, input, scale,
// registry generation, topology hash, policy, P, seed, serial, verify —
// so a hit is exactly a run the simulator would reproduce bit for bit,
// and a registry or topology change changes the key instead of serving a
// stale row.
//
// Open replays the file with the journal's torn-tail-tolerant reader and,
// when corruption was found, truncates the file to the trusted prefix
// before appending: the tail is discarded once (counted in Counters, so
// /statusz can report it) and later appends extend a clean file —
// appending past a corrupt line would write records no future replay
// could reach.
package store

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/journal"
)

// Counters is a snapshot of a store's activity: what Open found on disk
// and what Get/Put saw since.
type Counters struct {
	// Records is the number of intact records loaded at Open.
	Records int
	// Skipped is the number of torn or corrupt journal lines discarded at
	// Open — store corruption, zero on a healthy file.
	Skipped int
	Puts    uint64
	Hits    uint64
	Misses  uint64
}

// Store is the on-disk result store plus its in-memory index. Safe for
// concurrent use; it implements harness.ResultCache.
type Store struct {
	path string

	mu  sync.Mutex
	idx map[journal.Key]journal.Result
	w   *journal.Writer

	loaded, skipped    int
	puts, hits, misses uint64
}

// Open replays path (a missing file is an empty store), heals a torn tail
// by truncating to the trusted prefix, and opens the file for appending.
func Open(path string) (*Store, error) {
	idx, st, err := journal.ReplayWithStats(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Skipped > 0 {
		if err := os.Truncate(path, st.Tail); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	w, err := journal.Append(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{path: path, idx: idx, w: w, loaded: st.Records, skipped: st.Skipped}, nil
}

// Path reports the file the store persists to.
func (s *Store) Path() string { return s.path }

// Get reports the recorded result for a key, if present.
func (s *Store) Get(k journal.Key) (journal.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.idx[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return r, ok
}

// Put durably records one completed run: the record is fsync'd before Put
// returns, so a result a client saw stream survives any later crash. A
// key already present is a no-op — records are content-addressed, so the
// write would be byte-identical. (Two concurrent first Puts of one key
// may both append; replay dedups identical records, so the race costs a
// duplicate line, never a wrong result.)
func (s *Store) Put(k journal.Key, r journal.Result) error {
	s.mu.Lock()
	_, present := s.idx[k]
	s.mu.Unlock()
	if present {
		return nil
	}
	if err := s.w.Write(k, r); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.idx[k] = r
	s.puts++
	s.mu.Unlock()
	return nil
}

// Len reports how many distinct run tuples the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Counters snapshots the store's activity.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Records: s.loaded, Skipped: s.skipped,
		Puts: s.puts, Hits: s.hits, Misses: s.misses,
	}
}

// Close closes the underlying file. Records are fsync'd per Put, so no
// data is at risk; safe to call twice.
func (s *Store) Close() error { return s.w.Close() }
