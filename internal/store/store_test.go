package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
)

func key(i int) journal.Key {
	return journal.Key{
		Gen: 7, Bench: "heat", Input: "1024x1024", Scale: 1,
		Topology: "4x8-00aabbccddeeff11", Policy: "numaws",
		P: 8, Seed: int64(i), Verify: true,
	}
}

func result(i int) journal.Result {
	return journal.Result{Time: int64(100 + i), Work: int64(200 + i), Sched: int64(3 + i), Idle: int64(4 + i)}
}

func TestRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	for i := 1; i <= 3; i++ {
		if err := s.Put(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-putting an existing key is a no-op, not a duplicate record.
	if err := s.Put(key(1), result(1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	c := s.Counters()
	if c.Puts != 3 || c.Records != 0 {
		t.Errorf("counters after writes: %+v", c)
	}
	if r, ok := s.Get(key(2)); !ok || r != result(2) {
		t.Errorf("Get(2) = %v, %v", r, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	c = s2.Counters()
	if c.Records != 3 || c.Skipped != 0 {
		t.Errorf("reopened counters: %+v", c)
	}
	for i := 1; i <= 3; i++ {
		if r, ok := s2.Get(key(i)); !ok || r != result(i) {
			t.Errorf("reopened Get(%d) = %v, %v", i, r, ok)
		}
	}
}

func TestMissingFileIsEmptyStore(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "fresh.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Errorf("fresh store holds %d records", s.Len())
	}
	if err := s.Put(key(1), result(1)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenHealsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Put(key(i), result(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-line and append trailing garbage, as a
	// crash mid-write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("store file has %d lines, want 3", len(lines))
	}
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := s2.Counters()
	if c.Records != 2 || c.Skipped != 1 {
		t.Errorf("torn store counters: %+v, want 2 records and 1 skipped", c)
	}
	if _, ok := s2.Get(key(3)); ok {
		t.Error("torn record served as a hit")
	}
	// The heal must leave a cleanly appendable file: re-put the torn run
	// and reopen once more — everything replays, nothing skipped.
	if err := s2.Put(key(3), result(3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	c = s3.Counters()
	if c.Records != 3 || c.Skipped != 0 {
		t.Errorf("healed store counters after reopen: %+v, want 3 records and 0 skipped", c)
	}
	if r, ok := s3.Get(key(3)); !ok || r != result(3) {
		t.Errorf("re-put after heal lost: %v, %v", r, ok)
	}
}

func TestGetCountsHitsAndMisses(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(1), result(1)); err != nil {
		t.Fatal(err)
	}
	s.Get(key(1))
	s.Get(key(1))
	s.Get(key(2))
	c := s.Counters()
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
}
