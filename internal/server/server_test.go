// End-to-end tests for the sweep service, driven the way a real client
// drives it: a live handler behind httptest and the facade's QueryGrid
// streaming client. Living in package server_test lets them import
// pkg/numaws, which pins the facade's mirrored wire types to this
// package's in lockstep — a tag drift on either side breaks decoding
// here.
//
// Several tests arm faultinject plans, which are process-global, so no
// test in this file runs with t.Parallel.
package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/pkg/numaws"
)

// newService builds a facade server over a store at path and mounts it
// behind httptest. Callers own srv.Close (the store) — the httptest
// server is cleaned up automatically.
func newService(t *testing.T, path string, jobs int) (*numaws.Server, *httptest.Server) {
	t.Helper()
	srv, err := numaws.NewServer(numaws.ServerConfig{
		Store: path, Jobs: jobs,
		Logf: func(format string, args ...any) { t.Logf(format, args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// smallGrid is the suite's standard request: 1 serial + 2 workers × 2
// seeds = 5 runs of the cheapest benchmark at small scale on a small
// machine.
func smallGrid() numaws.GridRequest {
	return numaws.GridRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Workers:    []int{2, 4},
		Seeds:      []int64{1, 2},
		Scale:      "small",
		Serial:     true,
	}
}

// collect runs one query and returns its rows in canonical identity order
// (the service streams in completion order).
func collect(t *testing.T, url string, req numaws.GridRequest) ([]numaws.GridRow, numaws.GridSummary) {
	t.Helper()
	var rows []numaws.GridRow
	sum, err := numaws.QueryGrid(t.Context(), url, req, func(row numaws.GridRow) {
		rows = append(rows, row)
	})
	if err != nil {
		t.Fatal(err)
	}
	sortRows(rows)
	return rows, sum
}

func sortRows(rows []numaws.GridRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		ka := fmt.Sprintf("%s|%s|%s|%s|%04d|%08d|%v", a.Bench, a.Topology, a.Policy, a.Scale, a.P, a.Seed, a.Serial)
		kb := fmt.Sprintf("%s|%s|%s|%s|%04d|%08d|%v", b.Bench, b.Topology, b.Policy, b.Scale, b.P, b.Seed, b.Serial)
		return ka < kb
	})
}

// TestColdThenWarmQuery is the tentpole's acceptance test: a repeated
// identical grid query is served entirely from the store — zero
// simulations, proven by arming a panic on every run — with rows
// byte-identical to the cold query's.
func TestColdThenWarmQuery(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	cold, coldSum := collect(t, hs.URL, smallGrid())
	if coldSum.Rows != 5 || coldSum.Simulated != 5 || coldSum.Cached != 0 || coldSum.Failed != 0 {
		t.Fatalf("cold summary: %+v, want 5 rows all simulated", coldSum)
	}
	if len(cold) != 5 {
		t.Fatalf("cold query streamed %d rows, want 5", len(cold))
	}
	for _, row := range cold {
		if row.Cached {
			t.Errorf("cold row claims cached: %+v", row)
		}
		if row.Time <= 0 || (!row.Serial && row.Work <= 0) {
			t.Errorf("implausible row: %+v", row)
		}
	}

	// Any simulation now panics; only the store can answer.
	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()

	warm, warmSum := collect(t, hs.URL, smallGrid())
	if warmSum.Simulated != 0 || warmSum.Cached != 5 || warmSum.Failed != 0 {
		t.Fatalf("warm summary: %+v, want 5 rows all cached", warmSum)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Errorf("warm row not cached: %+v", warm[i])
		}
		warm[i].Cached = false
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("warm rows diverged from cold rows:\n cold %+v\n warm %+v", cold, warm)
	}
}

// TestConcurrentIdenticalQueriesCoalesce launches identical grids at
// once: across all clients each unique tuple simulates exactly once —
// the rest are store hits or coalesced rides on the leader's run.
func TestConcurrentIdenticalQueriesCoalesce(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	req := numaws.GridRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Workers:    []int{2},
		Seeds:      []int64{1, 2, 3},
		Scale:      "small",
	}
	const clients = 3
	const unique = 3 // 1 bench × 1 topology × 1 policy × 1 worker count × 3 seeds

	var wg sync.WaitGroup
	sums := make([]numaws.GridSummary, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i], errs[i] = numaws.QueryGrid(context.Background(), hs.URL, req, nil)
		}(i)
	}
	wg.Wait()

	simulated := 0
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if sums[i].Rows != unique || sums[i].Failed != 0 {
			t.Errorf("client %d summary: %+v", i, sums[i])
		}
		simulated += sums[i].Simulated
	}
	if simulated != unique {
		t.Errorf("%d simulations across %d identical queries, want exactly %d (one per unique tuple)",
			simulated, clients, unique)
	}
}

// TestClientCancelMidStream cancels a query after its first row: the
// server must abandon that client's remaining work and leak no
// goroutines. With Jobs: 1 the grid is strictly sequential, so the cancel
// lands with most of the grid still pending.
func TestClientCancelMidStream(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	defer srv.Close()

	baseline := runtime.NumGoroutine()

	req := numaws.GridRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Workers:    []int{2},
		Seeds:      []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Scale:      "small",
	}
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	rows := 0
	_, err := numaws.QueryGrid(ctx, hs.URL, req, func(numaws.GridRow) {
		rows++
		cancel()
	})
	if err == nil {
		t.Fatal("cancelled query returned a summary")
	}
	if rows == 0 {
		t.Fatal("query cancelled before any row streamed")
	}
	if rows == 8 {
		t.Error("all 8 rows streamed; the cancel was not mid-stream")
	}

	// The handler, its pool workers and the aborted simulation must all
	// unwind; poll because the unwind races the client's return.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cancel: %d, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRestartServesStoredRows kills the service and brings a new one up
// over the same store file: every previously streamed row must come back
// from disk, proven by arming a panic on any simulation.
func TestRestartServesStoredRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	srv1, hs1 := newService(t, path, 4)
	cold, coldSum := collect(t, hs1.URL, smallGrid())
	if coldSum.Simulated != 5 {
		t.Fatalf("cold summary: %+v", coldSum)
	}
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newService(t, path, 4)
	defer srv2.Close()

	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()

	warm, warmSum := collect(t, hs2.URL, smallGrid())
	if warmSum.Simulated != 0 || warmSum.Cached != 5 || warmSum.Failed != 0 {
		t.Fatalf("summary after restart: %+v, want 5 rows all cached", warmSum)
	}
	for i := range warm {
		warm[i].Cached = false
	}
	for i := range cold {
		cold[i].Cached = false
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Errorf("rows after restart diverged:\n before %+v\n after  %+v", cold, warm)
	}
}

// TestFailureRowsStreamInBand arms a panic on a cold store: each failed
// run streams as a row with its err field set, the grid completes, and
// nothing poisons the store — disarming and re-querying simulates clean.
func TestFailureRowsStreamInBand(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	req := numaws.GridRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Workers:    []int{2},
		Seeds:      []int64{1, 2},
		Scale:      "small",
	}
	rows, sum := collect(t, hs.URL, req)
	faultinject.Disarm()

	if sum.Rows != 2 || sum.Failed != 2 {
		t.Fatalf("summary under injection: %+v, want 2 failed rows", sum)
	}
	for _, row := range rows {
		if row.Err == nil {
			t.Fatalf("failed run streamed without err: %+v", row)
		}
		if row.Err.Kind != "panic" || !strings.Contains(row.Err.Msg, "panic") {
			t.Errorf("failure row: %+v", row.Err)
		}
		if row.Time != 0 || row.Work != 0 {
			t.Errorf("failed row carries measurements: %+v", row)
		}
	}

	clean, cleanSum := collect(t, hs.URL, req)
	if cleanSum.Simulated != 2 || cleanSum.Failed != 0 {
		t.Fatalf("summary after disarm: %+v, want 2 simulated", cleanSum)
	}
	for _, row := range clean {
		if row.Err != nil || row.Time <= 0 {
			t.Errorf("post-disarm row: %+v", row)
		}
	}
}

// TestBadRequestsAreRejected pins the validation surface: unknown axis
// values and malformed bodies are 400s with the CLI's error text, not
// silently-defaulted grids.
func TestBadRequestsAreRejected(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	defer srv.Close()

	cases := []struct {
		req  numaws.GridRequest
		want string
	}{
		{numaws.GridRequest{Benches: []string{"nope"}}, "no benchmark named"},
		{numaws.GridRequest{Topologies: []string{"weird"}}, "unknown topology"},
		{numaws.GridRequest{Policies: []string{"fifo?"}}, "unknown policy"},
		{numaws.GridRequest{Scale: "medium"}, "unknown scale"},
		{numaws.GridRequest{Benches: []string{"fib"}, Scale: "small", Seeds: []int64{0}}, "seed 0 is reserved"},
		{numaws.GridRequest{Benches: []string{"fib"}, Scale: "small", Workers: []int{99}}, "out of range"},
	}
	for _, tc := range cases {
		_, err := numaws.QueryGrid(t.Context(), hs.URL, tc.req, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("request %+v: error %v, want mention of %q", tc.req, err, tc.want)
		}
	}

	// Unknown JSON fields are a client bug, not a silent ignore.
	resp, err := http.Post(hs.URL+"/v1/grid", "application/json",
		strings.NewReader(`{"benchs":["fib"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// GET on the grid endpoint names the allowed method.
	resp, err = http.Get(hs.URL + "/v1/grid")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /v1/grid: status %d Allow %q, want 405 with Allow: POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestStatuszReportsCountersAndCorruption drives the observability
// surface: /healthz answers, /v1/axes lists the accepted axis values, and
// /statusz accounts for the traffic — including torn-tail corruption
// found when the store was opened (satellite of the resume-surfacing
// work: the service reports store damage, not just logs it).
func TestStatuszReportsCountersAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	srv1, hs1 := newService(t, path, 4)
	if _, sum := collect(t, hs1.URL, smallGrid()); sum.Simulated != 5 {
		t.Fatalf("seed query: %+v", sum)
	}
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-record, as a crash would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newService(t, path, 4)
	defer srv2.Close()

	var st struct {
		Grids     uint64 `json:"grids"`
		Rows      uint64 `json:"rows"`
		CacheHits uint64 `json:"cache_hits"`
		Simulated uint64 `json:"simulated"`
		Store     struct {
			Records int `json:"records"`
			Corrupt int `json:"corrupt_lines_skipped"`
		} `json:"store"`
	}
	getJSON(t, hs2.URL+"/statusz", &st)
	if st.Store.Records != 4 || st.Store.Corrupt != 1 {
		t.Errorf("statusz store after torn tail: %+v, want 4 records and 1 corrupt line", st.Store)
	}

	// One query: 4 rows from the healed store, the torn one re-simulated.
	if _, sum := collect(t, hs2.URL, smallGrid()); sum.Cached != 4 || sum.Simulated != 1 {
		t.Fatalf("query over healed store: %+v, want 4 cached + 1 simulated", sum)
	}
	getJSON(t, hs2.URL+"/statusz", &st)
	if st.Grids != 1 || st.Rows != 5 || st.CacheHits != 4 || st.Simulated != 1 {
		t.Errorf("statusz counters: %+v", st)
	}

	resp, err := http.Get(hs2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz: %d %q", resp.StatusCode, body)
	}

	var ax struct {
		Benches  []string `json:"benches"`
		Policies []string `json:"policies"`
		Scales   []string `json:"scales"`
	}
	getJSON(t, hs2.URL+"/v1/axes", &ax)
	if len(ax.Benches) == 0 || len(ax.Policies) == 0 {
		t.Errorf("axes missing values: %+v", ax)
	}
	if !reflect.DeepEqual(ax.Scales, []string{"small", "full"}) {
		t.Errorf("axes scales: %v", ax.Scales)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
