// End-to-end tests for POST /v1/tournament, driven through the facade's
// QueryTournament streaming client like a real consumer — which also pins
// the facade's mirrored tournament wire types to this package's.
package server_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/pkg/numaws"
)

// smallTournament is the suite's standard contest: three policies over one
// cheap benchmark on a small machine, averaged over two seeds.
func smallTournament() numaws.TournamentRequest {
	return numaws.TournamentRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Policies:   []string{"cilk", "numaws", "steal-half"},
		Seeds:      []int64{1, 2},
		Scale:      "small",
	}
}

func collectTournament(t *testing.T, url string, req numaws.TournamentRequest) ([]numaws.GridRow, numaws.TournamentSummary) {
	t.Helper()
	var rows []numaws.GridRow
	sum, err := numaws.QueryTournament(t.Context(), url, req, func(row numaws.GridRow) {
		rows = append(rows, row)
	})
	if err != nil {
		t.Fatal(err)
	}
	sortRows(rows)
	return rows, sum
}

// TestTournamentRanksAndCaches is the endpoint's acceptance test: a cold
// tournament simulates every (policy, bench, topology, seed) cell, trails
// a fully-ordered deterministic ranking, and a warm rerun reproduces the
// ranking byte for byte from the store alone — proven by arming a panic
// on every simulation.
func TestTournamentRanksAndCaches(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	rows, cold := collectTournament(t, hs.URL, smallTournament())
	if cold.Rows != 6 || cold.Simulated != 6 || cold.Cached != 0 || cold.Failed != 0 {
		t.Fatalf("cold summary: %+v, want 6 rows all simulated", cold)
	}
	if len(rows) != 6 {
		t.Fatalf("cold tournament streamed %d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.Time <= 0 || row.P != 8 {
			t.Errorf("implausible tournament row (every cell runs the whole machine): %+v", row)
		}
	}
	if len(cold.Ranking) != 3 {
		t.Fatalf("ranking has %d entries, want 3: %+v", len(cold.Ranking), cold.Ranking)
	}
	seen := map[string]bool{}
	for i, e := range cold.Ranking {
		if e.Rank != i+1 {
			t.Errorf("entry %d has rank %d, want sequential ranks", i, e.Rank)
		}
		if i > 0 && e.Score < cold.Ranking[i-1].Score {
			t.Errorf("ranking not ascending by score: %+v", cold.Ranking)
		}
		if e.Score < 1 {
			t.Errorf("score %v < 1; scores are normalized to the cell best", e.Score)
		}
		seen[e.Policy] = true
	}
	for _, p := range smallTournament().Policies {
		if !seen[p] {
			t.Errorf("policy %q missing from ranking %+v", p, cold.Ranking)
		}
	}
	if w := cold.Ranking[0]; w.Score != 1 {
		// One benchmark on one machine: the winner won its only cells.
		t.Errorf("winner score %v, want exactly 1 on a single-cell-per-policy grid", w.Score)
	}

	// Any simulation now panics; the ranking must come from the store.
	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()

	_, warm := collectTournament(t, hs.URL, smallTournament())
	if warm.Simulated != 0 || warm.Cached != 6 || warm.Failed != 0 {
		t.Fatalf("warm summary: %+v, want 6 rows all cached", warm)
	}
	if !reflect.DeepEqual(warm.Ranking, cold.Ranking) {
		t.Errorf("warm ranking diverged:\n cold %+v\n warm %+v", cold.Ranking, warm.Ranking)
	}
}

// TestTournamentDefaultsToEveryRegisteredPolicy leaves the policies axis
// empty: the contest covers the full registry — including any policy
// registered through the facade by this test binary.
func TestTournamentDefaultsToEveryRegisteredPolicy(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	req := numaws.TournamentRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Seeds:      []int64{1},
		Scale:      "small",
	}
	_, sum := collectTournament(t, hs.URL, req)
	all := numaws.Policies()
	if sum.Failed != 0 || len(sum.Ranking) != len(all) {
		t.Fatalf("summary %+v: want a ranking over all %d registered policies %v", sum, len(all), all)
	}
	got := make([]string, len(sum.Ranking))
	for i, e := range sum.Ranking {
		got[i] = e.Policy
	}
	sort.Strings(got)
	want := append([]string(nil), all...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ranked policies %v, want the registry %v", got, want)
	}
}

// TestTournamentRejectsBadRequests pins the endpoint's validation: a
// duplicated axis entry would double cells under the ranking, so it is a
// 400 up front, and unknown axis values fail like grid requests do.
func TestTournamentRejectsBadRequests(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	defer srv.Close()

	cases := []struct {
		req  numaws.TournamentRequest
		want string
	}{
		{numaws.TournamentRequest{Policies: []string{"cilk", "cilk"}}, `duplicate policies entry "cilk"`},
		{numaws.TournamentRequest{Benches: []string{"fib", "fib"}}, `duplicate benches entry "fib"`},
		{numaws.TournamentRequest{Topologies: []string{"2x4", "2x4"}}, `duplicate topologies entry "2x4"`},
		{numaws.TournamentRequest{Benches: []string{"nope"}}, "no benchmark named"},
		{numaws.TournamentRequest{Policies: []string{"fifo?"}}, "unknown policy"},
		{numaws.TournamentRequest{Scale: "medium"}, "unknown scale"},
	}
	for _, tc := range cases {
		_, err := numaws.QueryTournament(t.Context(), hs.URL, tc.req, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("request %+v: error %v, want mention of %q", tc.req, err, tc.want)
		}
	}
}

// TestTournamentWithFailuresIsUnranked arms a panic on a cold store: the
// failed rows stream in band with their err fields, the summary counts
// them, and the ranking is omitted — a ranking over missing cells would
// compare incomparables.
func TestTournamentWithFailuresIsUnranked(t *testing.T) {
	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 4)
	defer srv.Close()

	faultinject.Arm(faultinject.Plan{Kind: faultinject.PanicAtTask})
	defer faultinject.Disarm()

	req := numaws.TournamentRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Policies:   []string{"cilk", "numaws"},
		Seeds:      []int64{1},
		Scale:      "small",
	}
	rows, sum := collectTournament(t, hs.URL, req)
	if sum.Rows != 2 || sum.Failed != 2 {
		t.Fatalf("summary under injection: %+v, want 2 failed rows", sum)
	}
	if sum.Ranking != nil {
		t.Errorf("failed tournament carries a ranking: %+v", sum.Ranking)
	}
	for _, row := range rows {
		if row.Err == nil {
			t.Errorf("failed run streamed without err: %+v", row)
		}
	}
}

// TestAxesListFacadeRegisteredPolicy pins the registration seam at the
// service boundary: a policy registered through the facade shows up on
// GET /v1/axes next to the built-ins, so remote clients discover it the
// same way local sessions do.
func TestAxesListFacadeRegisteredPolicy(t *testing.T) {
	const name = "axes-probe"
	err := numaws.RegisterPolicy(numaws.PolicyDef{
		Name: name,
		Victim: func(r numaws.Rand, v numaws.PolicyView) int {
			return v.PickUniform(r)
		},
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}

	srv, hs := newService(t, filepath.Join(t.TempDir(), "store.jsonl"), 1)
	defer srv.Close()

	var ax struct {
		Policies []string `json:"policies"`
	}
	getJSON(t, hs.URL+"/v1/axes", &ax)
	found := false
	for _, p := range ax.Policies {
		found = found || p == name
	}
	if !found {
		t.Fatalf("/v1/axes policies %v missing facade-registered %q", ax.Policies, name)
	}

	// And the axis value is live: the registered policy competes in a
	// tournament addressed by its name.
	_, sum := collectTournament(t, hs.URL, numaws.TournamentRequest{
		Benches:    []string{"fib"},
		Topologies: []string{"2x4"},
		Policies:   []string{"cilk", name},
		Seeds:      []int64{1},
		Scale:      "small",
	})
	if sum.Failed != 0 || len(sum.Ranking) != 2 {
		t.Fatalf("tournament with facade policy: %+v", sum)
	}
	if got := fmt.Sprintf("%s/%s", sum.Ranking[0].Policy, sum.Ranking[1].Policy); !strings.Contains(got, name) {
		t.Errorf("ranking %q does not include %q", got, name)
	}
}
