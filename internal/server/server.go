// Package server implements the numaws sweep service: an HTTP/JSON API
// over the measurement harness backed by a persistent content-addressed
// result store (internal/store). A grid request is expanded to its run
// tuples, each tuple is served from the store when its key is already
// recorded, concurrent identical in-flight runs are coalesced behind a
// per-key single-flight, and completed rows stream to the client as
// NDJSON the moment they finish. Because every simulation is
// deterministic in its key, a cached row is byte-identical to a simulated
// one — the service turns repeated queries into O(1) lookups.
//
// Endpoints:
//
//	POST /v1/grid  expand and run a grid, streaming one NDJSON event per
//	               completed row and a trailing summary event; a stream
//	               that ends without the summary was aborted mid-grid
//	GET  /v1/axes  the accepted axis values (benchmarks, topology
//	               presets, policies, scales)
//	GET  /healthz  liveness
//	GET  /statusz  JSON counters: grids, rows, cache hits/misses,
//	               coalesced runs, in-flight simulations, store state
//	               (including corruption found at open) and workload-pool
//	               counters (including quarantines)
//
// Concurrency: each request fans its runs out on its own internal/exec
// pool, and a server-wide semaphore bounds the total simulations in
// flight across all clients, so one large grid cannot starve the host.
// Client disconnect cancels that client's request context, which aborts
// only its own uncached work — runs another client is waiting on are
// taken over by a waiter, and completed records are already durable.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Config configures a Server.
type Config struct {
	// Store is the persistent result store; required.
	Store *store.Store
	// Jobs bounds concurrent simulations across all requests; values
	// below 1 mean 1.
	Jobs int
	// MaxGridRuns is the largest accepted grid, in run tuples; values
	// below 1 mean the default of 4096.
	MaxGridRuns int
	// Logf, when non-nil, receives server log lines.
	Logf func(format string, args ...any)
}

// Server serves grid queries over a result store. Safe for concurrent
// use; build with New.
type Server struct {
	st      *store.Store
	jobs    int
	maxRuns int
	logf    func(string, ...any)

	// sem is the admission bound: at most jobs simulations in flight
	// server-wide, no matter how many clients are streaming.
	sem    chan struct{}
	flight flight

	grids, rows  atomic.Uint64
	hits, misses atomic.Uint64
	coalesced    atomic.Uint64
	failures     atomic.Uint64
	inflight     atomic.Int64
}

// New builds a Server over the given store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	maxRuns := cfg.MaxGridRuns
	if maxRuns < 1 {
		maxRuns = 4096
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		st: cfg.Store, jobs: jobs, maxRuns: maxRuns, logf: logf,
		sem:    make(chan struct{}, jobs),
		flight: flight{m: map[journal.Key]*flightCall{}},
	}, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/grid", s.handleGrid)
	mux.HandleFunc("/v1/tournament", s.handleTournament)
	mux.HandleFunc("/v1/axes", s.handleAxes)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	return mux
}

// handleGrid expands the request, fans the runs out on a bounded pool,
// and streams each completed row as its own NDJSON event. The handler's
// context is the request's: client disconnect cancels the pool, skipping
// runs not yet started, and the stream ends without its summary trailer.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req gridRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad grid request: "+err.Error(), http.StatusBadRequest)
		return
	}
	runs, err := s.expand(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.grids.Add(1)
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	st := newStream(w)
	var mu sync.Mutex
	var sum gridSummary
	pool := exec.NewPool(ctx, s.jobs)
	for i, rn := range runs {
		rn := rn
		pool.Submit(ctx, i, func() error {
			row, err := s.runOne(ctx, rn)
			if err != nil {
				return err // grid-level: cancellation or store I/O aborts the stream
			}
			mu.Lock()
			sum.Rows++
			switch {
			case row.Err != nil:
				sum.Failed++
			case row.Cached:
				sum.Cached++
			default:
				sum.Simulated++
			}
			mu.Unlock()
			s.rows.Add(1)
			return st.event(gridEvent{Row: row})
		})
	}
	if err := pool.Wait(ctx); err != nil {
		// The stream is committed to 200 by now; ending it without the
		// done trailer is the in-band abort signal.
		s.logf("numaws: grid aborted: %v", err)
		return
	}
	if err := st.event(gridEvent{Done: &sum}); err != nil {
		s.logf("numaws: grid summary write: %v", err)
	}
}

// handleTournament runs a policy tournament through the same store-backed,
// single-flight execution path grids use: every (policy, bench, topology,
// seed) run streams as an NDJSON row the moment it finishes, and the
// trailer carries the deterministic ranking — the geometric mean over
// cells of completion time normalized to each cell's best, averaged over
// the request's seeds. A warm store re-ranks without simulating anything.
func (s *Server) handleTournament(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req tournamentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad tournament request: "+err.Error(), http.StatusBadRequest)
		return
	}
	polNames := req.Policies
	if len(polNames) == 0 {
		polNames = sched.Names()
	}
	// The ranking needs exactly one measurement per (policy, bench,
	// topology, seed); a duplicated axis entry would double cells, so it
	// is rejected up front rather than surfacing as a ranking error after
	// the grid already streamed.
	for axis, vals := range map[string][]string{
		"benches": req.Benches, "topologies": req.Topologies, "policies": polNames,
	} {
		seen := make(map[string]bool, len(vals))
		for _, v := range vals {
			if seen[v] {
				http.Error(w, fmt.Sprintf("duplicate %s entry %q", axis, v), http.StatusBadRequest)
				return
			}
			seen[v] = true
		}
	}
	runs, err := s.expand(gridRequest{
		Benches: req.Benches, Topologies: req.Topologies, Policies: polNames,
		Seeds: req.Seeds, Scale: req.Scale, Verify: req.Verify,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.grids.Add(1)
	ctx := r.Context()
	w.Header().Set("Content-Type", "application/x-ndjson")
	st := newStream(w)
	// results is index-addressed so the post-wait aggregation walks the
	// expansion's canonical order, not completion order.
	results := make([]*gridRow, len(runs))
	var mu sync.Mutex
	var sum tournamentSummary
	pool := exec.NewPool(ctx, s.jobs)
	for i, rn := range runs {
		i, rn := i, rn
		pool.Submit(ctx, i, func() error {
			row, err := s.runOne(ctx, rn)
			if err != nil {
				return err
			}
			mu.Lock()
			results[i] = row
			sum.Rows++
			switch {
			case row.Err != nil:
				sum.Failed++
			case row.Cached:
				sum.Cached++
			default:
				sum.Simulated++
			}
			mu.Unlock()
			s.rows.Add(1)
			return st.event(tournamentEvent{Row: row})
		})
	}
	if err := pool.Wait(ctx); err != nil {
		s.logf("numaws: tournament aborted: %v", err)
		return
	}
	if sum.Failed == 0 {
		type cellKey struct{ pol, bench, topo string }
		var order []cellKey
		type acc struct{ total, n int64 }
		agg := map[cellKey]acc{}
		for _, row := range results {
			k := cellKey{row.Policy, row.Bench, row.Topology}
			a, ok := agg[k]
			if !ok {
				order = append(order, k)
			}
			a.total += row.Time
			a.n++
			agg[k] = a
		}
		cells := make([]metrics.TournamentCell, len(order))
		for i, k := range order {
			a := agg[k]
			cells[i] = metrics.TournamentCell{
				Policy: k.pol, Bench: k.bench, Topology: k.topo, TP: a.total / a.n,
			}
		}
		t, err := metrics.NewTournament(cells)
		if err != nil {
			// Unreachable with the duplicate-axis check above; ending the
			// stream without its trailer is the in-band abort signal.
			s.logf("numaws: tournament ranking: %v", err)
			return
		}
		for _, e := range t.Entries {
			sum.Ranking = append(sum.Ranking, tournamentRank{Rank: e.Rank, Policy: e.Policy, Score: e.Score})
		}
	}
	if err := st.event(tournamentEvent{Done: &sum}); err != nil {
		s.logf("numaws: tournament summary write: %v", err)
	}
}

// runOne produces one grid row. Contained run failures (*harness.RunError:
// panic, verification mismatch, deadline) become the row's err field and
// the grid proceeds; only cancellation and store I/O return an error.
func (s *Server) runOne(ctx context.Context, rn runSpec) (*gridRow, error) {
	row := &gridRow{
		Bench: rn.spec.Name, Input: rn.spec.Input, Scale: rn.scaleName,
		Topology: rn.topoName, Policy: rn.polName, P: rn.p, Seed: rn.seed,
		Serial: rn.serial,
	}
	res, cached, err := s.result(ctx, rn)
	if err != nil {
		var re *harness.RunError
		if errors.As(err, &re) && ctx.Err() == nil {
			s.failures.Add(1)
			row.Err = &rowError{Kind: re.Kind.String(), Msg: re.Error()}
			return row, nil
		}
		return nil, err
	}
	row.Cached = cached
	row.Time, row.Work, row.Sched, row.Idle = res.Time, res.Work, res.Sched, res.Idle
	return row, nil
}

// result serves one run tuple: from the store when recorded, otherwise by
// simulating it exactly once across all concurrent clients. The reported
// bool is true when this request did not simulate (store hit or a
// coalesced ride on another request's run).
func (s *Server) result(ctx context.Context, rn runSpec) (journal.Result, bool, error) {
	opt := harness.Options{Topology: rn.top, P: rn.p, Seed: rn.seed, Verify: rn.verify}
	key := harness.KeyFor(rn.spec, rn.pol, opt, rn.serial)
	if res, ok := s.st.Get(key); ok {
		s.hits.Add(1)
		return res, true, nil
	}
	for {
		leader := false
		res, err := s.flight.do(key, func() (journal.Result, error) {
			leader = true
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				return journal.Result{}, ctx.Err()
			}
			defer func() { <-s.sem }()
			s.inflight.Add(1)
			defer s.inflight.Add(-1)
			res, hit, err := harness.ExecuteThrough(ctx, s.st, rn.spec, rn.pol, opt, rn.serial)
			if err == nil && !hit {
				s.misses.Add(1)
			}
			return res, err
		})
		switch {
		case err == nil && leader:
			return res, false, nil
		case err == nil:
			s.coalesced.Add(1)
			return res, true, nil
		case !leader && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			// The leader's client disconnected mid-run; its cancellation
			// must not fail a waiter whose own request is still live —
			// loop and take the flight over.
			continue
		default:
			return journal.Result{}, false, err
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// axes is the GET /v1/axes payload: every accepted axis value, so a
// client can build valid grid requests without guessing.
type axes struct {
	Benches    []string `json:"benches"`
	Topologies []string `json:"topologies"` // presets; SOCKETSxCORES shapes are accepted too
	Policies   []string `json:"policies"`
	Scales     []string `json:"scales"`
}

func (s *Server) handleAxes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, axes{
		Benches:    workloads.Names(),
		Topologies: topology.Presets(),
		Policies:   sched.Names(),
		Scales:     []string{"small", "full"},
	})
}

// statusz is the GET /statusz payload, expvar-style: the server's own
// counters plus the store's and the workload pool's.
type statusz struct {
	Grids     uint64 `json:"grids"`
	Rows      uint64 `json:"rows"`
	CacheHits uint64 `json:"cache_hits"`
	Simulated uint64 `json:"simulated"`
	Coalesced uint64 `json:"coalesced"`
	Failures  uint64 `json:"failures"`
	Inflight  int64  `json:"inflight"`
	Store     struct {
		Records int    `json:"records"`
		Corrupt int    `json:"corrupt_lines_skipped"`
		Puts    uint64 `json:"puts"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"store"`
	Pool struct {
		Built       uint64 `json:"built"`
		Pooled      uint64 `json:"pooled"`
		Refs        uint64 `json:"refs"`
		Quarantined uint64 `json:"quarantined"`
	} `json:"pool"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var st statusz
	st.Grids = s.grids.Load()
	st.Rows = s.rows.Load()
	st.CacheHits = s.hits.Load()
	st.Simulated = s.misses.Load()
	st.Coalesced = s.coalesced.Load()
	st.Failures = s.failures.Load()
	st.Inflight = s.inflight.Load()
	c := s.st.Counters()
	st.Store.Records, st.Store.Corrupt = c.Records, c.Skipped
	st.Store.Puts, st.Store.Hits, st.Store.Misses = c.Puts, c.Hits, c.Misses
	st.Pool.Built, st.Pool.Pooled, st.Pool.Refs, st.Pool.Quarantined = workloads.PoolCounters()
	writeJSON(w, st)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// stream serializes NDJSON events onto one response: pool workers emit
// rows concurrently, and the ResponseWriter is not safe for concurrent
// writes. Each event flushes, so a slow grid still streams.
type stream struct {
	mu  sync.Mutex
	enc *json.Encoder
	fl  http.Flusher // nil when the writer cannot flush (tests)
}

func newStream(w http.ResponseWriter) *stream {
	st := &stream{enc: json.NewEncoder(w)}
	if fl, ok := w.(http.Flusher); ok {
		st.fl = fl
	}
	return st
}

func (s *stream) event(ev any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(ev); err != nil {
		return err
	}
	if s.fl != nil {
		s.fl.Flush()
	}
	return nil
}

// flight is the per-key single-flight for in-progress simulations: the
// RefCache discipline (block on a per-key entry, never the map) plus
// completion broadcast and entry removal — once a run completes, its
// result lives in the store, so the map holds only in-flight work and
// stays bounded. Errors are never published as lasting state (no
// poisoning): the entry is gone before waiters observe the outcome.
type flight struct {
	mu sync.Mutex
	m  map[journal.Key]*flightCall
}

// flightCall is one in-progress run. res/err are written once, before
// done is closed; waiters read them only after <-done.
type flightCall struct {
	done chan struct{}
	res  journal.Result
	err  error
}

// do runs fn under k's flight, or — when another goroutine is already
// running it — waits for that leader and returns the leader's outcome.
// The wait is not cancellable: a leader always terminates (its own
// context bounds it), and callers distinguish the leader's cancellation
// from their own.
func (f *flight) do(k journal.Key, fn func() (journal.Result, error)) (journal.Result, error) {
	f.mu.Lock()
	if c, ok := f.m[k]; ok {
		f.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.m[k] = c
	f.mu.Unlock()
	c.res, c.err = fn()
	f.mu.Lock()
	delete(f.m, k)
	f.mu.Unlock()
	close(c.done)
	return c.res, c.err
}
