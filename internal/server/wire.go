package server

// The sweep service's wire contract. These types define the JSON that
// crosses the HTTP boundary; pkg/numaws mirrors them field for field in
// its own facade types (GridRequest, GridRow, GridSummary) because the
// facade wraps this package and therefore cannot be imported by it — the
// JSON tags, not the Go types, are the shared contract, and the facade's
// end-to-end tests pin the two in lockstep.

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/sched"
	"repro/internal/topology"
)

// gridRequest is the body of POST /v1/grid: the same experiment axes the
// CLI takes, each a list, expanded to their cross product. Empty axes
// take the CLI's defaults.
type gridRequest struct {
	// Benches restricts the grid to the named benchmarks, in the given
	// order; empty means every registered benchmark.
	Benches []string `json:"benches,omitempty"`
	// Topologies lists preset names or SOCKETSxCORES shapes; empty means
	// ["paper-4x8"].
	Topologies []string `json:"topologies,omitempty"`
	// Policies lists registered policy names; empty means ["numaws"].
	Policies []string `json:"policies,omitempty"`
	// Workers lists simulated worker counts; 0 means the whole machine of
	// each topology. Empty means [0].
	Workers []int `json:"workers,omitempty"`
	// Seeds lists scheduler seeds; 0 is rejected (the engine reserves it
	// as "default"). Empty means [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale is "small" or "full" (the default).
	Scale string `json:"scale,omitempty"`
	// Serial adds one serial-elision (TS) row per benchmark × topology.
	Serial bool `json:"serial,omitempty"`
	// Verify controls result verification; nil means true.
	Verify *bool `json:"verify,omitempty"`
}

// gridRow is one completed run, streamed as an NDJSON event the moment it
// finishes (completion order, not grid order — clients sort by the
// identity fields if they need canonical order).
type gridRow struct {
	Bench    string `json:"bench"`
	Input    string `json:"input"`
	Scale    string `json:"scale"`
	Topology string `json:"topology"` // the requested spec string
	Policy   string `json:"policy"`   // "serial" for serial-elision rows
	P        int    `json:"p"`
	Seed     int64  `json:"seed"`
	Serial   bool   `json:"serial,omitempty"`
	// Cached marks a row served without simulating in this request: a
	// store hit, or a coalesced ride on another client's in-flight run.
	Cached bool  `json:"cached"`
	Time   int64 `json:"time"`
	Work   int64 `json:"work"`
	Sched  int64 `json:"sched"`
	Idle   int64 `json:"idle"`
	// Err marks a contained run failure (panic, verify, timeout); the
	// measurement fields are zero and the grid proceeded without it.
	Err *rowError `json:"err,omitempty"`
}

// rowError is a contained failure on the wire.
type rowError struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// gridSummary trails the stream. A response that ends without one was
// truncated: the grid aborted (cancellation, store I/O) mid-stream.
type gridSummary struct {
	Rows      int `json:"rows"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
	Failed    int `json:"failed"`
}

// gridEvent is one NDJSON line: exactly one field is set.
type gridEvent struct {
	Row  *gridRow     `json:"row,omitempty"`
	Done *gridSummary `json:"done,omitempty"`
}

// tournamentRequest is the body of POST /v1/tournament: a policy
// tournament over the benchmark x topology grid. Every cell runs at its
// machine's full core count; a fixed worker axis would bias the ranking
// toward machines it happens to fit, so the request has none.
type tournamentRequest struct {
	// Benches restricts the grid to the named benchmarks, in the given
	// order; empty means every registered benchmark.
	Benches []string `json:"benches,omitempty"`
	// Topologies lists preset names or SOCKETSxCORES shapes; empty means
	// ["paper-4x8"].
	Topologies []string `json:"topologies,omitempty"`
	// Policies lists the contestants; empty means every registered policy.
	Policies []string `json:"policies,omitempty"`
	// Seeds lists scheduler seeds to average each cell over; empty means
	// [1].
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale is "small" or "full" (the default).
	Scale string `json:"scale,omitempty"`
	// Verify controls result verification; nil means true.
	Verify *bool `json:"verify,omitempty"`
}

// tournamentRank is one ranked policy of the trailer.
type tournamentRank struct {
	Rank   int     `json:"rank"`
	Policy string  `json:"policy"`
	Score  float64 `json:"score"` // geomean of per-cell TP / cell-best TP
}

// tournamentSummary trails a tournament stream: the grid counts plus the
// ranking. Ranking is omitted when any cell failed — a ranking over
// missing cells would compare incomparables — so clients must treat a
// summary with Failed > 0 as an unranked tournament.
type tournamentSummary struct {
	Rows      int              `json:"rows"`
	Cached    int              `json:"cached"`
	Simulated int              `json:"simulated"`
	Failed    int              `json:"failed"`
	Ranking   []tournamentRank `json:"ranking,omitempty"`
}

// tournamentEvent is one NDJSON line of a tournament stream: exactly one
// field is set. Rows are the same shape grid streams use.
type tournamentEvent struct {
	Row  *gridRow           `json:"row,omitempty"`
	Done *tournamentSummary `json:"done,omitempty"`
}

// runSpec is one expanded grid cell, validated and resolved.
type runSpec struct {
	spec      harness.Spec
	topoName  string
	top       *topology.Topology
	pol       sched.Policy // nil for serial rows
	polName   string       // "serial" for serial rows
	p         int
	seed      int64
	serial    bool
	scaleName string
	verify    bool
}

// expand validates a request the way the CLI validates its flags — every
// unknown name is an error listing the accepted ones, never a silent
// default — and expands the axes into the grid's run list: bench-major,
// then topology, the serial row first, then policy × workers × seeds.
func (s *Server) expand(req gridRequest) ([]runSpec, error) {
	scaleName := req.Scale
	var sc harness.Scale
	switch scaleName {
	case "", "full":
		scaleName, sc = "full", harness.ScaleFull
	case "small":
		sc = harness.ScaleSmall
	default:
		return nil, fmt.Errorf("unknown scale %q (want small or full)", req.Scale)
	}
	verify := true
	if req.Verify != nil {
		verify = *req.Verify
	}
	all := harness.Specs(sc)
	specs := all
	if len(req.Benches) > 0 {
		byName := make(map[string]harness.Spec, len(all))
		known := make([]string, 0, len(all))
		for _, sp := range all {
			byName[sp.Name] = sp
			known = append(known, sp.Name)
		}
		specs = make([]harness.Spec, 0, len(req.Benches))
		for _, n := range req.Benches {
			sp, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("no benchmark named %q (want %s)", n, strings.Join(known, ", "))
			}
			specs = append(specs, sp)
		}
	}
	topoSpecs := req.Topologies
	if len(topoSpecs) == 0 {
		topoSpecs = []string{"paper-4x8"}
	}
	type machine struct {
		name string
		top  *topology.Topology
	}
	machines := make([]machine, 0, len(topoSpecs))
	for _, t := range topoSpecs {
		top, err := topology.Parse(t)
		if err != nil {
			return nil, err
		}
		machines = append(machines, machine{name: t, top: top})
	}
	polNames := req.Policies
	if len(polNames) == 0 {
		polNames = []string{"numaws"}
	}
	pols := make([]sched.Policy, 0, len(polNames))
	for _, n := range polNames {
		pol, err := sched.Lookup(n)
		if err != nil {
			return nil, err
		}
		pols = append(pols, pol)
	}
	workers := req.Workers
	if len(workers) == 0 {
		workers = []int{0}
	}
	seeds := req.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	for _, sd := range seeds {
		if sd == 0 {
			return nil, fmt.Errorf("seed 0 is reserved as the engine's default; pass an explicit non-zero seed")
		}
	}
	var runs []runSpec
	for _, sp := range specs {
		for _, m := range machines {
			if req.Serial {
				runs = append(runs, runSpec{
					spec: sp, topoName: m.name, top: m.top,
					polName: "serial", p: 1, seed: seeds[0], serial: true,
					scaleName: scaleName, verify: verify,
				})
			}
			for _, pol := range pols {
				for _, p := range workers {
					if p < 0 {
						return nil, fmt.Errorf("negative worker count %d", p)
					}
					rp := p
					if rp == 0 {
						rp = m.top.Cores()
					}
					if rp > m.top.Cores() {
						return nil, fmt.Errorf("%d workers out of range [1,%d] for topology %s",
							p, m.top.Cores(), m.name)
					}
					for _, sd := range seeds {
						runs = append(runs, runSpec{
							spec: sp, topoName: m.name, top: m.top,
							pol: pol, polName: pol.Name(), p: rp, seed: sd,
							scaleName: scaleName, verify: verify,
						})
					}
				}
			}
		}
	}
	if len(runs) > s.maxRuns {
		return nil, fmt.Errorf("grid of %d runs exceeds this server's limit of %d; split the request",
			len(runs), s.maxRuns)
	}
	return runs, nil
}
