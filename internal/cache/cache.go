// Package cache models the memory hierarchy of a NUMA machine: a private
// cache per core (L1+L2 merged into one level), a shared last-level cache
// per socket, invalidation-based coherence between them, and DRAM whose
// latency grows with the hop distance between the accessing socket and the
// page's home socket.
//
// The paper defines work inflation as extra processing time during parallel
// runs "due to effects experienced only during parallel executions such as
// additional cache misses, remote memory accesses, and memory bandwidth
// issues", and notes access latency spans tens of cycles (local LLC), over a
// hundred (local DRAM or remote LLC), to a few hundred (remote DRAM). This
// model charges exactly those costs so that scheduler decisions — where a
// steal lands, whether a frame runs on its designated socket — translate
// into the same inflation phenomena.
package cache

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/topology"
)

// Geometry fixes the cache sizes. Sizes are scaled down relative to the
// paper's hardware in the same proportion as the workload inputs, so
// capacity effects (a socket's working set fitting or not fitting in LLC)
// are preserved.
type Geometry struct {
	PrivateBytes int // per-core private cache capacity
	PrivateWays  int // private cache associativity
	LLCBytes     int // per-socket shared LLC capacity
	LLCWays      int // LLC associativity
}

// DefaultGeometry mirrors the paper's 256 KiB private L2 and 16 MiB LLC,
// scaled down 16x to match the scaled workload inputs.
func DefaultGeometry() Geometry {
	return Geometry{
		PrivateBytes: 64 << 10,
		PrivateWays:  8,
		LLCBytes:     1 << 20,
		LLCWays:      16,
	}
}

// Latency fixes per-line access costs in cycles.
type Latency struct {
	PrivateHit  int64 // hit in the core's own cache ("tens of cycles" bucket)
	LocalLLC    int64 // hit in the socket's LLC
	RemoteCache int64 // line supplied by a cache on another socket (coherence transfer), before per-hop cost
	DRAMBase    int64 // DRAM access on the local socket
	PerHop      int64 // added per hop of socket distance (remote LLC or remote DRAM)
	// StreamDivisor divides the DRAM cost of lines that continue a
	// contiguous run within one Access call, modelling the hardware
	// prefetcher and open DRAM rows. The blocked Z-Morton layout's serial
	// speedup (matmul-z TS 73.6s vs matmul 190.9s) comes from exactly this
	// effect: "it traverses the matrices in a way that enables the
	// prefetcher".
	StreamDivisor int64
	// WriteInvalidate is the extra cost of a write that must invalidate
	// copies in other caches (destructive sharing).
	WriteInvalidate int64
	// DRAMOccupancy models memory bandwidth: each DRAM line fill costs the
	// home socket's memory controller this many cycles of service capacity.
	// When a socket's recent fill demand exceeds its capacity
	// (DRAMChannels lines in parallel), DRAM costs at that socket are
	// multiplied by the congestion ratio, up to DRAMMaxCongestion. This is
	// the "memory bandwidth issues" component of work inflation the paper
	// lists alongside extra misses and remote accesses: when many cores
	// hammer one socket's DRAM (the first-touch-on-socket-0 baseline),
	// congestion dominates, and spreading or localizing the traffic — what
	// NUMA-WS placement does — removes it. Zero disables bandwidth
	// modelling (pure latency).
	//
	// The model is epoch-based rather than a per-access queue: strands
	// execute atomically in the simulator, so a true queue would serialize
	// whole strands against each other and wildly overstate contention;
	// a demand-proportional latency multiplier measured over fixed virtual
	// time epochs is stable under strand-atomic interleaving.
	DRAMOccupancy int64
	// DRAMChannels is the number of independent channels per memory
	// controller; zero means 4, as on the paper's four-channel Xeon
	// E5-4620. Capacity per epoch is epochLen * DRAMChannels /
	// DRAMOccupancy line fills.
	DRAMChannels int
	// DRAMMaxCongestion caps the congestion multiplier; zero means 4.
	DRAMMaxCongestion int64
}

// DefaultLatency follows the paper's qualitative numbers: tens of cycles for
// local caches, over a hundred for local DRAM and remote LLC, a few hundred
// for remote DRAM.
func DefaultLatency() Latency {
	return Latency{
		PrivateHit:        3,
		LocalLLC:          30,
		RemoteCache:       90,
		DRAMBase:          120,
		PerHop:            90,
		StreamDivisor:     4,
		WriteInvalidate:   60,
		DRAMOccupancy:     6,
		DRAMChannels:      4,
		DRAMMaxCongestion: 4,
	}
}

// Kind classifies where an access was serviced, for statistics.
type Kind int

// Access service points, from fastest to slowest.
const (
	KindPrivateHit Kind = iota
	KindLocalLLC
	KindRemoteCache
	KindLocalDRAM
	KindRemoteDRAM
	numKinds
)

// String names the access kind.
func (k Kind) String() string {
	switch k {
	case KindPrivateHit:
		return "private-hit"
	case KindLocalLLC:
		return "local-llc"
	case KindRemoteCache:
		return "remote-cache"
	case KindLocalDRAM:
		return "local-dram"
	case KindRemoteDRAM:
		return "remote-dram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Stats accumulates access counts and cycles by service point.
type Stats struct {
	Count  [numKinds]int64
	Cycles [numKinds]int64
}

// Total reports the total number of line accesses.
func (s *Stats) Total() int64 {
	var t int64
	for _, c := range s.Count {
		t += c
	}
	return t
}

// TotalCycles reports the total memory cycles charged.
func (s *Stats) TotalCycles() int64 {
	var t int64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// Remote reports the number of accesses serviced off-socket.
func (s *Stats) Remote() int64 {
	return s.Count[KindRemoteCache] + s.Count[KindRemoteDRAM]
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	for k := 0; k < int(numKinds); k++ {
		s.Count[k] += other.Count[k]
		s.Cycles[k] += other.Cycles[k]
	}
}

// setAssoc is a set-associative cache of line tags with LRU replacement,
// implemented with flat arrays for speed (the simulator touches it for every
// modelled cache line).
type setAssoc struct {
	sets int
	ways int
	tag  []int64  // sets*ways entries; -1 = invalid
	use  []uint64 // LRU timestamps, parallel to tag
	tick uint64
}

func newSetAssoc(bytes, ways int) *setAssoc {
	lines := bytes / memory.LineSize
	if lines < ways {
		lines = ways
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &setAssoc{
		sets: sets,
		ways: ways,
		tag:  make([]int64, sets*ways),
		use:  make([]uint64, sets*ways),
	}
	for i := range c.tag {
		c.tag[i] = -1
	}
	return c
}

// lookup reports whether line is present, refreshing its LRU position.
func (c *setAssoc) lookup(line int64) bool {
	base := int(line%int64(c.sets)) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tag[base+w] == line {
			c.tick++
			c.use[base+w] = c.tick
			return true
		}
	}
	return false
}

// insert places line in its set, evicting the LRU way if needed, and
// returns the evicted line or -1.
func (c *setAssoc) insert(line int64) (evicted int64) {
	base := int(line%int64(c.sets)) * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tag[i] == line { // already present
			c.tick++
			c.use[i] = c.tick
			return -1
		}
		if c.tag[i] == -1 {
			victim = i
			break
		}
		if c.use[i] < c.use[victim] {
			victim = i
		}
	}
	evicted = c.tag[victim]
	c.tag[victim] = line
	c.tick++
	c.use[victim] = c.tick
	return evicted
}

// invalidate removes line if present and reports whether it was.
func (c *setAssoc) invalidate(line int64) bool {
	base := int(line%int64(c.sets)) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tag[base+w] == line {
			c.tag[base+w] = -1
			return true
		}
	}
	return false
}

// flush invalidates every line. Used to model the cold cache a worker has
// after migration in targeted experiments.
func (c *setAssoc) flush() {
	for i := range c.tag {
		c.tag[i] = -1
	}
}

// reset returns the cache to its just-constructed state: every way invalid,
// LRU clock at zero.
func (c *setAssoc) reset() {
	for i := range c.tag {
		c.tag[i] = -1
		c.use[i] = 0
	}
	c.tick = 0
}

// bitset is a fixed-width bitmask over entity ids (cores or sockets), sized
// once at hierarchy construction. It replaces the old uint64/uint32 masks so
// the directory scales to machines of any shape instead of panicking past
// 64 cores or 32 sockets.
type bitset []uint64

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }

// any reports whether any bit is set.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// anyExcept reports whether any bit other than i is set.
func (b bitset) anyExcept(i int) bool {
	for wi, w := range b {
		if wi == i>>6 {
			w &^= 1 << uint(i&63)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// onlyKeep clears every bit except i (bit i keeps its current value).
func (b bitset) onlyKeep(i int) {
	keep := b[i>>6] & (1 << uint(i&63))
	for wi := range b {
		b[wi] = 0
	}
	b[i>>6] = keep
}

func bitsetWords(n int) int { return (n + 63) / 64 }

// lineInfo is the coherence directory entry for one line: which private
// caches and which LLCs currently hold it. On machines up to 64 cores and
// 64 sockets — every preset, and the paper's machine — the bitsets alias
// the inline backing array, so an entry is still a single allocation with
// no extra pointer chase; only bigger machines spill to a heap-allocated
// word slice.
type lineInfo struct {
	priv   bitset // over cores
	llc    bitset // over sockets
	inline [2]uint64
}

// Hierarchy is the full machine cache model.
type Hierarchy struct {
	top  *topology.Topology
	geo  Geometry
	lat  Latency
	priv []*setAssoc // indexed by core
	llc  []*setAssoc // indexed by socket
	dir  map[int64]*lineInfo
	// Directory entries are carved out of block allocations: entries are
	// the simulator's dominant allocation count, and handing them out from
	// a block turns ~256 allocations into one. The blocks are kept and the
	// cursor rewound on Reset, so a reused hierarchy re-hands the same
	// memory instead of allocating fresh blocks every run.
	slabs   [][]lineInfo
	slabI   int // block the cursor is in
	slabOff int // next free entry within that block
	// perCore statistics, indexed by core.
	perCore []Stats
	// Congestion tracking: per socket, line-fill counts per virtual-time
	// epoch (a small ring indexed by epoch number).
	epochCount [][congestionRing]int64
	epochTag   [][congestionRing]int64
	// QueueCycles accumulates total extra cycles charged to congestion,
	// for reports.
	QueueCycles int64
}

// epochLen is the congestion-measurement window in cycles; congestionRing
// is how many epochs the ring remembers.
const (
	epochLen       = 32768
	congestionRing = 64
)

// NewHierarchy builds the cache model for the given machine; any socket and
// core count is accepted (the coherence directory sizes its bitmasks to the
// topology).
func NewHierarchy(top *topology.Topology, geo Geometry, lat Latency) *Hierarchy {
	h := &Hierarchy{
		top:        top,
		geo:        geo,
		lat:        lat,
		priv:       make([]*setAssoc, top.Cores()),
		llc:        make([]*setAssoc, top.Sockets()),
		dir:        make(map[int64]*lineInfo),
		perCore:    make([]Stats, top.Cores()),
		epochCount: make([][congestionRing]int64, top.Sockets()),
		epochTag:   make([][congestionRing]int64, top.Sockets()),
	}
	for i := range h.priv {
		h.priv[i] = newSetAssoc(geo.PrivateBytes, geo.PrivateWays)
	}
	for i := range h.llc {
		h.llc[i] = newSetAssoc(geo.LLCBytes, geo.LLCWays)
	}
	return h
}

// Matches reports whether h models exactly the machine described by the
// arguments, so a caller holding a used hierarchy can tell if Reset-and-reuse
// is equivalent to building a fresh one. Topologies are compared by shape,
// not pointer: preset constructors return fresh values per call.
func (h *Hierarchy) Matches(top *topology.Topology, geo Geometry, lat Latency) bool {
	return h.geo == geo && h.lat == lat && h.top.SameShape(top)
}

// Reset returns the hierarchy to its just-constructed state — every cache
// empty, directory empty, statistics and congestion history zeroed — while
// keeping the backing arrays, so a reused hierarchy costs no construction
// allocations. A Reset hierarchy is behaviorally indistinguishable from
// NewHierarchy with the same arguments (pinned by tests).
func (h *Hierarchy) Reset() {
	for _, c := range h.priv {
		c.reset()
	}
	for _, c := range h.llc {
		c.reset()
	}
	clear(h.dir)
	h.slabI, h.slabOff = 0, 0
	clear(h.perCore)
	for i := range h.epochCount {
		h.epochCount[i] = [congestionRing]int64{}
		h.epochTag[i] = [congestionRing]int64{}
	}
	h.QueueCycles = 0
}

// Latency exposes the cost table (for reports and tests).
func (h *Hierarchy) Latency() Latency { return h.lat }

// StatsOf returns the accumulated statistics for one core.
func (h *Hierarchy) StatsOf(core int) *Stats { return &h.perCore[core] }

// TotalStats sums statistics over all cores.
func (h *Hierarchy) TotalStats() Stats {
	var t Stats
	for i := range h.perCore {
		t.Add(&h.perCore[i])
	}
	return t
}

func (h *Hierarchy) info(line int64) *lineInfo {
	li := h.dir[line]
	if li == nil {
		// Entries come from the slab; use the inline backing when the
		// machine fits, and carve both spilled bitsets out of one
		// allocation when it does not.
		if h.slabI == len(h.slabs) {
			h.slabs = append(h.slabs, make([]lineInfo, 256))
		}
		li = &h.slabs[h.slabI][h.slabOff]
		if h.slabOff++; h.slabOff == len(h.slabs[h.slabI]) {
			h.slabI++
			h.slabOff = 0
		}
		*li = lineInfo{} // may hold stale bits from before a Reset
		pw, lw := bitsetWords(h.top.Cores()), bitsetWords(h.top.Sockets())
		if pw == 1 && lw == 1 {
			li.priv = li.inline[:1]
			li.llc = li.inline[1:2]
		} else {
			words := make([]uint64, pw+lw)
			li.priv = words[:pw]
			li.llc = words[pw:]
		}
		h.dir[line] = li
	}
	return li
}

func (h *Hierarchy) dropIfEmpty(line int64, li *lineInfo) {
	if !li.priv.any() && !li.llc.any() {
		delete(h.dir, line)
	}
}

// evictFromPrivate records that core's private cache dropped line.
func (h *Hierarchy) evictFromPrivate(core int, line int64) {
	if line < 0 {
		return
	}
	if li, ok := h.dir[line]; ok {
		li.priv.clear(core)
		h.dropIfEmpty(line, li)
	}
}

// evictFromLLC records that socket's LLC dropped line (non-inclusive: lines
// may remain in private caches).
func (h *Hierarchy) evictFromLLC(socket int, line int64) {
	if line < 0 {
		return
	}
	if li, ok := h.dir[line]; ok {
		li.llc.clear(socket)
		h.dropIfEmpty(line, li)
	}
}

// nearestHolder returns the hop distance to the closest socket other than
// from whose LLC or private caches hold the line, or -1 if none.
func (h *Hierarchy) nearestHolder(from int, li *lineInfo) int {
	best := -1
	for s := 0; s < h.top.Sockets(); s++ {
		if s == from {
			continue
		}
		holds := li.llc.get(s)
		if !holds && li.priv.any() {
			lo, hi := h.top.CoreRange(s)
			for c := lo; c < hi; c++ {
				if li.priv.get(c) {
					holds = true
					break
				}
			}
		}
		if holds {
			d := h.top.Distance(from, s)
			if best == -1 || d < best {
				best = d
			}
		}
	}
	return best
}

// invalidateOthers removes the line from every cache except core's own
// private cache and reports whether any copy existed elsewhere.
func (h *Hierarchy) invalidateOthers(core int, line int64) bool {
	li, ok := h.dir[line]
	if !ok {
		return false
	}
	any := false
	if li.priv.anyExcept(core) {
		for c := 0; c < h.top.Cores(); c++ {
			if c != core && li.priv.get(c) {
				h.priv[c].invalidate(line)
				any = true
			}
		}
		li.priv.onlyKeep(core)
	}
	mySock := h.top.SocketOf(core)
	if li.llc.anyExcept(mySock) {
		for s := 0; s < h.top.Sockets(); s++ {
			if s != mySock && li.llc.get(s) {
				h.llc[s].invalidate(line)
				any = true
			}
		}
		li.llc.onlyKeep(mySock)
	}
	h.dropIfEmpty(line, li)
	return any
}

// Access charges one cache-line access by the given core at virtual time
// now. home is the page's home socket (memory.SocketUnbound is treated as
// local DRAM, the cheapest case, because an unbound page has no remote cost
// yet). streaming marks the line as a continuation of a contiguous run,
// eligible for the prefetch discount on DRAM fills. It returns the cycle
// cost and where the access was serviced.
func (h *Hierarchy) Access(now int64, core int, line int64, home int, write, streaming bool) (int64, Kind) {
	socket := h.top.SocketOf(core)
	cost, kind := h.service(now, core, socket, line, home, streaming)
	if write {
		if h.invalidateOthers(core, line) {
			cost += h.lat.WriteInvalidate
		}
	}
	st := &h.perCore[core]
	st.Count[kind]++
	st.Cycles[kind] += cost
	return cost, kind
}

func (h *Hierarchy) service(now int64, core, socket int, line int64, home int, streaming bool) (int64, Kind) {
	// 1. Private cache.
	if h.priv[core].lookup(line) {
		return h.lat.PrivateHit, KindPrivateHit
	}
	// 2. Socket-local LLC.
	if h.llc[socket].lookup(line) {
		h.fillPrivate(core, line)
		return h.lat.LocalLLC, KindLocalLLC
	}
	li := h.info(line)
	// 3. A cache on another socket (coherence transfer).
	if d := h.nearestHolder(socket, li); d >= 0 {
		h.fill(core, socket, line)
		return h.lat.RemoteCache + int64(d)*h.lat.PerHop, KindRemoteCache
	}
	// 4. DRAM on the home socket: latency by distance plus bandwidth
	// queuing at the home memory controller.
	hops := 0
	bank := socket
	if home != memory.SocketUnbound {
		hops = h.top.Distance(socket, home)
		bank = home
	}
	cost := h.lat.DRAMBase + int64(hops)*h.lat.PerHop
	if streaming && h.lat.StreamDivisor > 1 {
		cost /= h.lat.StreamDivisor
	}
	cost += h.congest(now, bank, cost)
	h.fill(core, socket, line)
	if hops == 0 {
		return cost, KindLocalDRAM
	}
	return cost, KindRemoteDRAM
}

// congest records one line fill at the bank socket's memory controller at
// virtual time now, and returns the extra cycles the access pays if the
// previous epoch's demand at that controller exceeded its capacity.
func (h *Hierarchy) congest(now int64, bank int, dramCost int64) int64 {
	if h.lat.DRAMOccupancy <= 0 {
		return 0
	}
	epoch := now / epochLen
	slot := int(epoch % congestionRing)
	if h.epochTag[bank][slot] != epoch {
		h.epochTag[bank][slot] = epoch
		h.epochCount[bank][slot] = 0
	}
	h.epochCount[bank][slot]++

	// Demand from the most recent completed epoch.
	prev := epoch - 1
	pslot := int(prev % congestionRing)
	if prev < 0 || h.epochTag[bank][pslot] != prev {
		return 0
	}
	channels := int64(h.lat.DRAMChannels)
	if channels <= 0 {
		channels = 4
	}
	capacity := epochLen * channels / h.lat.DRAMOccupancy
	demand := h.epochCount[bank][pslot]
	if demand <= capacity {
		return 0
	}
	maxC := h.lat.DRAMMaxCongestion
	if maxC <= 0 {
		maxC = 4
	}
	// Extra cost proportional to overload, capped: factor = demand/capacity.
	extra := dramCost * (demand - capacity) / capacity
	if extra > dramCost*(maxC-1) {
		extra = dramCost * (maxC - 1)
	}
	h.QueueCycles += extra
	return extra
}

// fill installs line in both the core's private cache and its socket's LLC.
func (h *Hierarchy) fill(core, socket int, line int64) {
	if ev := h.llc[socket].insert(line); ev >= 0 {
		h.evictFromLLC(socket, ev)
	}
	h.info(line).llc.set(socket)
	h.fillPrivate(core, line)
}

func (h *Hierarchy) fillPrivate(core int, line int64) {
	if ev := h.priv[core].insert(line); ev >= 0 {
		h.evictFromPrivate(core, ev)
	}
	h.info(line).priv.set(core)
}

// AccessRange charges an access to the byte range [off, off+n) of region r
// by core, starting at virtual time now and walking it line by line. Pages
// bound by first-touch bind to the accessing core's socket, exactly like
// the OS policy. Lines after the first of each page-contiguous run are
// marked streaming. It returns the total cycles charged.
func (h *Hierarchy) AccessRange(now int64, core int, r *memory.Region, off, n int64, write bool) int64 {
	if n <= 0 {
		return 0
	}
	socket := h.top.SocketOf(core)
	var total int64
	firstLine := r.GlobalLine(off)
	lastLine := r.GlobalLine(off + n - 1)
	for line := firstLine; line <= lastLine; line++ {
		lineOff := line*memory.LineSize - r.Base()
		if lineOff < 0 {
			lineOff = 0
		}
		home := r.TouchFrom(lineOff, socket)
		streaming := line != firstLine && line%(memory.PageSize/memory.LineSize) != 0
		c, _ := h.Access(now+total, core, line, home, write, streaming)
		total += c
	}
	return total
}

// AccessStrided charges accesses to count elements of size elem bytes,
// starting at off with the given stride in bytes — the pattern of a
// row-major matrix column walk or strided gather. Strides other than elem
// defeat streaming. It returns total cycles.
func (h *Hierarchy) AccessStrided(now int64, core int, r *memory.Region, off, stride, elem int64, count int, write bool) int64 {
	var total int64
	for i := 0; i < count; i++ {
		o := off + int64(i)*stride
		total += h.AccessRange(now+total, core, r, o, elem, write)
	}
	return total
}

// FlushCore empties one core's private cache (used by tests and by
// migration experiments).
func (h *Hierarchy) FlushCore(core int) {
	c := h.priv[core]
	for i := range c.tag {
		h.evictFromPrivate(core, c.tag[i])
	}
	c.flush()
}

// DirectorySize reports the number of tracked lines (bounded by total cache
// capacity; used by tests to check the directory does not leak).
func (h *Hierarchy) DirectorySize() int { return len(h.dir) }
