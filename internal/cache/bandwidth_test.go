package cache

import (
	"testing"

	"repro/internal/memory"
	"repro/internal/topology"
)

// congested builds a hierarchy and saturates socket 0's controller during
// one epoch, so accesses in the following epoch pay congestion.
func congested(t *testing.T, lat Latency) *Hierarchy {
	t.Helper()
	h := NewHierarchy(topology.XeonE5_4620(), DefaultGeometry(), lat)
	capacity := epochLen * int64(lat.DRAMChannels) / lat.DRAMOccupancy
	// Overload socket 0 threefold during epoch 0.
	for i := int64(0); i < 3*capacity; i++ {
		h.Access(i%epochLen, int(i)%8, 1_000_000+i, 0, false, false)
	}
	return h
}

func TestCongestionChargesOverloadedSocket(t *testing.T) {
	lat := DefaultLatency()
	h := congested(t, lat)
	// Epoch 1 access to socket 0 DRAM pays the congestion multiplier.
	cost, kind := h.Access(epochLen+1, 0, 1, 0, false, false)
	if kind != KindLocalDRAM {
		t.Fatalf("kind = %v, want local-dram", kind)
	}
	if cost <= lat.DRAMBase {
		t.Errorf("congested access cost %d, want > uncontended %d", cost, lat.DRAMBase)
	}
	if maxCost := lat.DRAMBase * lat.DRAMMaxCongestion; cost > maxCost {
		t.Errorf("congested access cost %d exceeds cap %d", cost, maxCost)
	}
	if h.QueueCycles <= 0 {
		t.Error("QueueCycles not accumulated")
	}
}

func TestCongestionSparesOtherSockets(t *testing.T) {
	lat := DefaultLatency()
	h := congested(t, lat)
	// Socket 1's DRAM is idle: an epoch-1 access pays pure latency.
	cost, _ := h.Access(epochLen+1, 8, 2, 1, false, false)
	if cost != lat.DRAMBase {
		t.Errorf("other-socket access cost %d, want %d", cost, lat.DRAMBase)
	}
}

func TestCongestionDecays(t *testing.T) {
	lat := DefaultLatency()
	h := congested(t, lat)
	// Two epochs later, with an intervening quiet epoch, the charge is gone.
	h.Access(epochLen+1, 0, 3, 0, false, false) // epoch 1: light traffic
	cost, _ := h.Access(2*epochLen+1, 0, 4, 0, false, false)
	if cost != lat.DRAMBase {
		t.Errorf("post-quiet access cost %d, want %d (congestion must decay)", cost, lat.DRAMBase)
	}
}

func TestCongestionDisabled(t *testing.T) {
	lat := DefaultLatency()
	h := congested(t, lat)
	h.lat.DRAMOccupancy = 0 // switch bandwidth modelling off post-overload
	cost, _ := h.Access(epochLen+1, 0, 5, 0, false, false)
	if cost != lat.DRAMBase {
		t.Errorf("cost with bandwidth disabled = %d, want %d", cost, lat.DRAMBase)
	}
	if h.QueueCycles != 0 {
		t.Errorf("QueueCycles = %d, want 0", h.QueueCycles)
	}
}

func TestUnderCapacityIsFree(t *testing.T) {
	lat := DefaultLatency()
	h := NewHierarchy(topology.XeonE5_4620(), DefaultGeometry(), lat)
	capacity := epochLen * int64(lat.DRAMChannels) / lat.DRAMOccupancy
	// Half-capacity demand in epoch 0.
	for i := int64(0); i < capacity/2; i++ {
		h.Access(i%epochLen, int(i)%8, 2_000_000+i, 0, false, false)
	}
	cost, _ := h.Access(epochLen+1, 0, 6, 0, false, false)
	if cost != lat.DRAMBase {
		t.Errorf("under-capacity follow-up cost %d, want %d", cost, lat.DRAMBase)
	}
	if h.QueueCycles != 0 {
		t.Errorf("QueueCycles = %d, want 0 under capacity", h.QueueCycles)
	}
}

func TestRemoteFillCongestsHomeController(t *testing.T) {
	lat := DefaultLatency()
	h := NewHierarchy(topology.XeonE5_4620(), DefaultGeometry(), lat)
	capacity := epochLen * int64(lat.DRAMChannels) / lat.DRAMOccupancy
	// Remote cores (socket 1) overload socket 0's bank.
	for i := int64(0); i < 3*capacity; i++ {
		h.Access(i%epochLen, 8+int(i)%8, 3_000_000+i, 0, false, false)
	}
	// A local socket-0 access then pays: the bank is the contended
	// resource, not the requester.
	cost, _ := h.Access(epochLen+1, 0, 7, 0, false, false)
	if cost <= lat.DRAMBase {
		t.Errorf("local access after remote overload cost %d, want > %d", cost, lat.DRAMBase)
	}
}

func TestHotSocketInflatesConcurrentScans(t *testing.T) {
	// End-to-end shape: 32 cores all streaming from socket 0's DRAM at the
	// same virtual times accumulate congestion; the same scans spread over
	// four home sockets stay (mostly) uncongested.
	run := func(homeOf func(i int) int) int64 {
		top := topology.XeonE5_4620()
		h := NewHierarchy(top, DefaultGeometry(), DefaultLatency())
		alloc := memory.NewAllocator(4)
		regions := make([]*memory.Region, 32)
		for i := range regions {
			regions[i] = alloc.Alloc("r", 1<<20, memory.BindTo{Socket: homeOf(i)})
		}
		for chunk := 0; chunk < 64; chunk++ {
			for core := 0; core < 32; core++ {
				h.AccessRange(int64(chunk)*2000, core, regions[core], int64(chunk)*16384, 16384, false)
			}
		}
		return h.QueueCycles
	}
	hot := run(func(i int) int { return 0 })
	spread := run(func(i int) int { return i % 4 })
	if hot <= spread*2 {
		t.Errorf("hot-socket congestion %d not clearly above spread congestion %d", hot, spread)
	}
}
