package cache

import (
	"testing"

	"repro/internal/topology"
)

// TestBigMachineDirectory exercises the coherence directory past the old
// 64-core/32-socket mask limits: a 96-socket ring with 2 cores per socket
// (192 cores) must build, service accesses with the right kinds, track
// holders across word boundaries, and drain the directory on invalidation.
func TestBigMachineDirectory(t *testing.T) {
	top := topology.Ring(96, 2)
	h := NewHierarchy(top, DefaultGeometry(), DefaultLatency())
	lat := h.Latency()

	const line = 7
	// Core 0 (socket 0) pulls the line from its local DRAM.
	if _, kind := h.Access(tnext(), 0, line, 0, false, false); kind != KindLocalDRAM {
		t.Fatalf("first access kind = %v, want local-dram", kind)
	}
	// Core 190 (socket 95, bit 95 of the socket mask and bit 190 of the
	// core mask — both past the first word) finds the remote copy.
	cost, kind := h.Access(tnext(), 190, line, 0, false, false)
	if kind != KindRemoteCache {
		t.Fatalf("cross-machine access kind = %v, want remote-cache", kind)
	}
	d := int64(top.Distance(95, 0))
	if want := lat.RemoteCache + d*lat.PerHop; cost != want {
		t.Errorf("remote transfer cost = %d, want %d (%d hops)", cost, want, d)
	}
	// Both sockets now hold it; a hit on core 191 (same socket as 190) is
	// an LLC hit.
	if _, kind := h.Access(tnext(), 191, line, 0, false, false); kind != KindLocalLLC {
		t.Errorf("same-socket access kind = %v, want local-llc", kind)
	}
	// A write from core 1 invalidates every other copy, paying the
	// invalidation premium, and leaves core 1 the only holder.
	cost, _ = h.Access(tnext(), 1, line, 0, true, false)
	if cost < lat.WriteInvalidate {
		t.Errorf("write cost %d did not include the invalidate premium %d", cost, lat.WriteInvalidate)
	}
	if _, kind := h.Access(tnext(), 190, line, 0, false, false); kind != KindRemoteCache {
		t.Errorf("post-invalidate access kind = %v, want remote-cache from core 1's socket", kind)
	}
	// Flushing every core drains the private masks; evicting nothing leaks.
	for c := 0; c < top.Cores(); c++ {
		h.FlushCore(c)
	}
	if st := h.TotalStats(); st.Total() == 0 {
		t.Error("no accesses recorded")
	}
}

// TestBitset covers the word-boundary arithmetic directly.
func TestBitset(t *testing.T) {
	b := make(bitset, 3) // 192 bits
	for _, i := range []int{0, 63, 64, 100, 191} {
		if b.get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set after set", i)
		}
	}
	if !b.any() {
		t.Error("any() false with bits set")
	}
	if !b.anyExcept(0) {
		t.Error("anyExcept(0) false with bit 191 set")
	}
	b.onlyKeep(100)
	for i := 0; i < 192; i++ {
		if b.get(i) != (i == 100) {
			t.Errorf("after onlyKeep(100): bit %d = %v", i, b.get(i))
		}
	}
	if b.anyExcept(100) {
		t.Error("anyExcept(100) true after onlyKeep(100)")
	}
	b.clear(100)
	if b.any() {
		t.Error("any() true after clearing the last bit")
	}
}
