package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
	"repro/internal/topology"
)

// tnext supplies strictly increasing virtual times so the latency-focused
// tests never trigger bandwidth queuing (each access arrives long after the
// previous one finished).
var tclock int64

func tnext() int64 {
	tclock += 1_000_000
	return tclock
}

func newTestHierarchy() (*Hierarchy, *memory.Allocator) {
	top := topology.XeonE5_4620()
	return NewHierarchy(top, DefaultGeometry(), DefaultLatency()), memory.NewAllocator(top.Sockets())
}

func TestColdMissThenHit(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()

	cost, kind := h.Access(tnext(), 0, 100, 0, false, false)
	if kind != KindLocalDRAM {
		t.Fatalf("first access kind = %v, want local-dram", kind)
	}
	if cost != lat.DRAMBase {
		t.Errorf("first access cost = %d, want %d", cost, lat.DRAMBase)
	}

	cost, kind = h.Access(tnext(), 0, 100, 0, false, false)
	if kind != KindPrivateHit {
		t.Fatalf("second access kind = %v, want private-hit", kind)
	}
	if cost != lat.PrivateHit {
		t.Errorf("second access cost = %d, want %d", cost, lat.PrivateHit)
	}
}

func TestLocalLLCHitAcrossCores(t *testing.T) {
	h, _ := newTestHierarchy()
	// Core 0 pulls the line in; core 1 (same socket) should hit the LLC.
	h.Access(tnext(), 0, 42, 0, false, false)
	_, kind := h.Access(tnext(), 1, 42, 0, false, false)
	if kind != KindLocalLLC {
		t.Errorf("same-socket second core kind = %v, want local-llc", kind)
	}
}

func TestRemoteCacheTransfer(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	// Core 0 (socket 0) pulls the line; core 8 (socket 1, one hop) should
	// get a coherence transfer rather than DRAM.
	h.Access(tnext(), 0, 7, 0, false, false)
	cost, kind := h.Access(tnext(), 8, 7, 0, false, false)
	if kind != KindRemoteCache {
		t.Fatalf("cross-socket access kind = %v, want remote-cache", kind)
	}
	want := lat.RemoteCache + lat.PerHop // one hop
	if cost != want {
		t.Errorf("cross-socket cost = %d, want %d", cost, want)
	}
	// Two hops: socket 0 -> socket 3 (core 24).
	h2, _ := newTestHierarchy()
	h2.Access(tnext(), 0, 7, 0, false, false)
	cost, kind = h2.Access(tnext(), 24, 7, 0, false, false)
	if kind != KindRemoteCache {
		t.Fatalf("two-hop access kind = %v, want remote-cache", kind)
	}
	want = lat.RemoteCache + 2*lat.PerHop
	if cost != want {
		t.Errorf("two-hop cost = %d, want %d", cost, want)
	}
}

func TestRemoteDRAMByDistance(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	cases := []struct {
		core int
		home int
		hops int64
		kind Kind
	}{
		{0, 0, 0, KindLocalDRAM},  // socket 0 -> home 0
		{0, 1, 1, KindRemoteDRAM}, // socket 0 -> home 1 (one hop)
		{0, 3, 2, KindRemoteDRAM}, // socket 0 -> home 3 (two hops)
	}
	for i, tc := range cases {
		line := int64(1000 + i) // distinct cold lines
		cost, kind := h.Access(tnext(), tc.core, line, tc.home, false, false)
		if kind != tc.kind {
			t.Errorf("case %d: kind = %v, want %v", i, kind, tc.kind)
		}
		if want := lat.DRAMBase + tc.hops*lat.PerHop; cost != want {
			t.Errorf("case %d: cost = %d, want %d", i, cost, want)
		}
	}
}

func TestUnboundPageCostsLocal(t *testing.T) {
	h, _ := newTestHierarchy()
	cost, kind := h.Access(tnext(), 0, 5, memory.SocketUnbound, false, false)
	if kind != KindLocalDRAM || cost != h.Latency().DRAMBase {
		t.Errorf("unbound access = (%d, %v), want (%d, local-dram)", cost, kind, h.Latency().DRAMBase)
	}
}

func TestStreamingDiscount(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	c1, _ := h.Access(tnext(), 0, 2000, 3, false, false) // two-hop DRAM, no stream
	c2, _ := h.Access(tnext(), 0, 2001, 3, false, true)  // streaming continuation
	if c2 >= c1 {
		t.Errorf("streaming access cost %d, want < non-streaming %d", c2, c1)
	}
	want := (lat.DRAMBase + 2*lat.PerHop) / lat.StreamDivisor
	if c2 != want {
		t.Errorf("streaming cost = %d, want %d", c2, want)
	}
	// Streaming never applies to cache hits.
	c3, kind := h.Access(tnext(), 0, 2001, 3, false, true)
	if kind != KindPrivateHit || c3 != lat.PrivateHit {
		t.Errorf("streaming hit = (%d, %v), want (%d, private-hit)", c3, kind, lat.PrivateHit)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	// Cores 0 and 8 both read the line.
	h.Access(tnext(), 0, 9, 0, false, false)
	h.Access(tnext(), 8, 9, 0, false, false)
	if _, kind := h.Access(tnext(), 8, 9, 0, false, false); kind != KindPrivateHit {
		t.Fatalf("core 8 re-read kind = %v, want private-hit", kind)
	}
	// Core 0 writes: core 8's copy must be invalidated and the write pays
	// the invalidation penalty.
	cost, kind := h.Access(tnext(), 0, 9, 0, true, false)
	if kind != KindPrivateHit {
		t.Fatalf("writer kind = %v, want private-hit", kind)
	}
	if cost != lat.PrivateHit+lat.WriteInvalidate {
		t.Errorf("writer cost = %d, want %d", cost, lat.PrivateHit+lat.WriteInvalidate)
	}
	// Core 8 must now miss (its socket LLC was invalidated too, so it gets
	// the line from socket 0's caches).
	_, kind = h.Access(tnext(), 8, 9, 0, false, false)
	if kind != KindRemoteCache {
		t.Errorf("invalidated reader kind = %v, want remote-cache", kind)
	}
}

func TestWriteWithoutSharersHasNoPenalty(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	h.Access(tnext(), 0, 11, 0, false, false)
	cost, _ := h.Access(tnext(), 0, 11, 0, true, false)
	if cost != lat.PrivateHit {
		t.Errorf("exclusive write cost = %d, want %d", cost, lat.PrivateHit)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 2 lines, 2 ways, 1 set.
	c := newSetAssoc(2*memory.LineSize, 2)
	if c.sets != 1 || c.ways != 2 {
		t.Fatalf("geometry = %d sets x %d ways, want 1x2", c.sets, c.ways)
	}
	c.insert(1)
	c.insert(2)
	c.lookup(1) // make 2 the LRU
	if ev := c.insert(3); ev != 2 {
		t.Errorf("evicted %d, want 2 (LRU)", ev)
	}
	if !c.lookup(1) || !c.lookup(3) || c.lookup(2) {
		t.Error("cache contents wrong after eviction")
	}
}

func TestInsertExistingIsNoEviction(t *testing.T) {
	c := newSetAssoc(2*memory.LineSize, 2)
	c.insert(1)
	if ev := c.insert(1); ev != -1 {
		t.Errorf("re-insert evicted %d, want -1", ev)
	}
}

func TestFlushCore(t *testing.T) {
	h, _ := newTestHierarchy()
	h.Access(tnext(), 0, 77, 0, false, false)
	h.FlushCore(0)
	_, kind := h.Access(tnext(), 0, 77, 0, false, false)
	if kind == KindPrivateHit {
		t.Errorf("post-flush access kind = %v, want a miss", kind)
	}
}

func TestAccessRangeFirstTouch(t *testing.T) {
	h, alloc := newTestHierarchy()
	r := alloc.Alloc("ft", 2*memory.PageSize, memory.FirstTouch{})
	// Core 9 is on socket 1; its touch binds the page there.
	h.AccessRange(tnext(), 9, r, 0, 128, false)
	if got := r.HomeOf(0); got != 1 {
		t.Errorf("page home after first touch = %d, want 1", got)
	}
	// A later touch by socket 0 does not rebind.
	h.AccessRange(tnext(), 0, r, 256, 128, false)
	if got := r.HomeOf(256); got != 1 {
		t.Errorf("page home after second toucher = %d, want 1", got)
	}
}

func TestAccessRangeCostShape(t *testing.T) {
	h, alloc := newTestHierarchy()
	r := alloc.Alloc("seq", 1<<20, memory.BindTo{Socket: 0})
	// Sequential scan by local core: mostly streaming local DRAM.
	seqCost := h.AccessRange(tnext(), 0, r, 0, 1<<16, false)
	// Same bytes scanned by a two-hop remote core on fresh lines.
	h2, alloc2 := newTestHierarchy()
	r2 := alloc2.Alloc("seq", 1<<20, memory.BindTo{Socket: 0})
	remoteCost := h2.AccessRange(tnext(), 24, r2, 0, 1<<16, false)
	if remoteCost <= seqCost {
		t.Errorf("remote scan cost %d, want > local scan cost %d", remoteCost, seqCost)
	}
}

func TestAccessStridedBeatsByStreamLoss(t *testing.T) {
	// A strided walk over the same number of lines must cost more than a
	// sequential walk (no prefetch discount).
	h, alloc := newTestHierarchy()
	r := alloc.Alloc("m", 1<<22, memory.BindTo{Socket: 0})
	seq := h.AccessRange(tnext(), 0, r, 0, 256*memory.LineSize, false)
	h2, alloc2 := newTestHierarchy()
	r2 := alloc2.Alloc("m", 1<<22, memory.BindTo{Socket: 0})
	strided := h2.AccessStrided(tnext(), 0, r2, 0, memory.PageSize, 8, 256, false)
	if strided <= seq {
		t.Errorf("strided cost %d, want > sequential cost %d", strided, seq)
	}
}

func TestStatsAccounting(t *testing.T) {
	h, _ := newTestHierarchy()
	h.Access(tnext(), 0, 1, 0, false, false)
	h.Access(tnext(), 0, 1, 0, false, false)
	h.Access(tnext(), 8, 1, 0, false, false)
	st := h.StatsOf(0)
	if st.Count[KindLocalDRAM] != 1 || st.Count[KindPrivateHit] != 1 {
		t.Errorf("core 0 stats = %+v, want 1 dram + 1 hit", st.Count)
	}
	total := h.TotalStats()
	if total.Total() != 3 {
		t.Errorf("total accesses = %d, want 3", total.Total())
	}
	if total.Remote() != 1 {
		t.Errorf("remote accesses = %d, want 1", total.Remote())
	}
	if total.TotalCycles() <= 0 {
		t.Error("total cycles not positive")
	}
}

func TestDirectoryBounded(t *testing.T) {
	h, _ := newTestHierarchy()
	// Touch far more lines than the caches hold; directory must stay
	// bounded by total capacity.
	for i := int64(0); i < 200000; i++ {
		h.Access(tnext(), int(i)%32, i, int(i)%4, i%3 == 0, false)
	}
	capacityLines := (32*DefaultGeometry().PrivateBytes + 4*DefaultGeometry().LLCBytes) / memory.LineSize
	if h.DirectorySize() > capacityLines {
		t.Errorf("directory has %d lines, want <= capacity %d", h.DirectorySize(), capacityLines)
	}
}

// Property: access cost is always positive and bounded by the worst case
// (two-hop DRAM + invalidation), and kinds are consistent with cost order.
func TestAccessCostBoundsProperty(t *testing.T) {
	h, _ := newTestHierarchy()
	lat := h.Latency()
	worst := lat.DRAMBase + int64(4)*lat.PerHop + lat.WriteInvalidate
	f := func(rawLine uint16, rawCore, rawHome uint8, write bool) bool {
		core := int(rawCore) % 32
		home := int(rawHome) % 4
		cost, kind := h.Access(tnext(), core, int64(rawLine), home, write, false)
		if cost <= 0 || cost > worst {
			return false
		}
		return kind >= KindPrivateHit && kind <= KindRemoteDRAM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: repeating the same access immediately is always a private hit.
func TestRepeatIsHitProperty(t *testing.T) {
	h, _ := newTestHierarchy()
	f := func(rawLine uint16, rawCore uint8) bool {
		core := int(rawCore) % 32
		h.Access(tnext(), core, int64(rawLine), 0, false, false)
		_, kind := h.Access(tnext(), core, int64(rawLine), 0, false, false)
		return kind == KindPrivateHit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindPrivateHit:  "private-hit",
		KindLocalLLC:    "local-llc",
		KindRemoteCache: "remote-cache",
		KindLocalDRAM:   "local-dram",
		KindRemoteDRAM:  "remote-dram",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
