package cache

import (
	"testing"

	"repro/internal/topology"
)

// driveMixed runs a deterministic pseudo-random access mix over the
// hierarchy — all cores, reads and writes, streaming and not, with arrival
// times sometimes close enough to trigger bandwidth queuing — and returns
// every observable: each access's (cost, kind), the accumulated congestion
// cycles, and a per-core stats sample.
func driveMixed(h *Hierarchy, salt uint64) []int64 {
	var out []int64
	var now int64
	rnd := salt*2862933555777941757 + 3037000493
	for i := 0; i < 4000; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		core := int(rnd>>33) % 32
		line := int64(rnd>>17) % (1 << 18)
		home := int(rnd>>51) % 4
		now += int64(rnd>>40) % 256
		cost, kind := h.Access(now, core, line, home, rnd&1 == 0, rnd&2 == 0)
		out = append(out, cost, int64(kind))
	}
	out = append(out, h.QueueCycles)
	for c := 0; c < 32; c++ {
		s := h.StatsOf(c)
		out = append(out, s.Remote())
	}
	return out
}

// TestResetEqualsFresh pins the hierarchy-reuse contract the harness's
// arena pooling depends on: a hierarchy that has absorbed an arbitrary
// access history and is then Reset must charge exactly what a
// freshly constructed hierarchy charges, access for access.
func TestResetEqualsFresh(t *testing.T) {
	fresh, _ := newTestHierarchy()
	want := driveMixed(fresh, 7)

	used, _ := newTestHierarchy()
	driveMixed(used, 13) // a different history to forget
	used.Reset()
	got := driveMixed(used, 7)

	if len(got) != len(want) {
		t.Fatalf("observation lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("observation %d differs after Reset: fresh %d, reset %d", i, want[i], got[i])
		}
	}
}

// TestMatches pins the reuse guard: same shape matches, anything else
// (different machine, geometry, or latency table) must force a rebuild.
func TestMatches(t *testing.T) {
	top := topology.XeonE5_4620()
	h := NewHierarchy(top, DefaultGeometry(), DefaultLatency())
	if !h.Matches(topology.XeonE5_4620(), DefaultGeometry(), DefaultLatency()) {
		t.Error("identical machine description must match (fresh preset pointer)")
	}
	other, err := topology.Parse("2x16")
	if err != nil {
		t.Fatal(err)
	}
	if h.Matches(other, DefaultGeometry(), DefaultLatency()) {
		t.Error("different topology must not match")
	}
	geo := DefaultGeometry()
	geo.PrivateBytes *= 2
	if h.Matches(topology.XeonE5_4620(), geo, DefaultLatency()) {
		t.Error("different geometry must not match")
	}
	lat := DefaultLatency()
	lat.DRAMBase++
	if h.Matches(topology.XeonE5_4620(), DefaultGeometry(), lat) {
		t.Error("different latency table must not match")
	}
}
