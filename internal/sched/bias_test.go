package sched

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// TestDefaultBiasWeights pins the derivation of the steal bias from the
// distance matrix: weight 2^(maxDistance-h) per hop class. On the paper's
// machine this must reproduce its hard-coded {4, 2, 1} distribution exactly;
// on deeper and flatter machines the same rule extends and degenerates.
func TestDefaultBiasWeights(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  *topology.Topology
		want []float64
	}{
		{"paper-4x8", topology.XeonE5_4620(), []float64{4, 2, 1}},
		{"two-socket", topology.TwoSocket(16), []float64{2, 1}},
		{"uniform", topology.SingleSocket(32), []float64{1}},
		{"8-ring", topology.Ring(8, 4), []float64{16, 8, 4, 2, 1}},
	} {
		if got := DefaultBiasWeights(tc.top); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: DefaultBiasWeights = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDefaultBiasWeightsDeepRingStaysFinite guards the exponent cap: on a
// very deep machine every weight and any realistic weight sum must stay
// finite and positive, or proportional victim selection silently breaks.
func TestDefaultBiasWeightsDeepRingStaysFinite(t *testing.T) {
	w := DefaultBiasWeights(topology.Ring(2100, 1))
	var sum float64
	for h, v := range w {
		if v <= 0 || math.IsInf(v, 0) {
			t.Fatalf("weight[%d] = %v, want finite positive", h, v)
		}
		sum += v
	}
	// Even a million victims of the heaviest class must not overflow.
	if s := sum * 1e6; math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("weight sum %v overflows under scaling", sum)
	}
	if w[len(w)-1] != 1 {
		t.Errorf("farthest weight = %v, want 1", w[len(w)-1])
	}
}

// TestDefaultBiasWeightsAllPresets checks every preset yields positive
// weights covering its hop range — the positivity Lemma 1 requires.
func TestDefaultBiasWeightsAllPresets(t *testing.T) {
	for _, name := range topology.Presets() {
		top, ok := topology.Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		w := DefaultBiasWeights(top)
		if len(w) != top.MaxDistance()+1 {
			t.Errorf("%s: %d weights for max distance %d", name, len(w), top.MaxDistance())
		}
		for h, v := range w {
			if v <= 0 {
				t.Errorf("%s: weight[%d] = %v, want positive", name, h, v)
			}
		}
	}
}
