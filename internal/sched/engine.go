// Package sched implements the two work-stealing schedulers the paper
// compares — classic Cilk Plus work stealing (its Fig. 2 pseudocode) and
// NUMA-WS (its Fig. 5 pseudocode: locality-biased steals plus lazy work
// pushing through single-entry mailboxes) — on top of a deterministic
// virtual-time engine.
//
// Every design point called out in the paper is represented and
// individually switchable so ablation benchmarks can probe it: the
// deque-vs-mailbox coin flip, the constant pushing threshold, the
// single-entry mailbox, the biased victim distribution, and the work-first
// rule that pushing happens only on steal-path events.
package sched

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/deque"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ErrInterrupted is the panic value the engine aborts with when
// Config.Interrupt asks it to stop: a run deadline expired or the
// measurement grid was cancelled mid-run. The harness's containment
// boundary recognizes it (errors.Is) and converts the abort into a typed,
// retryable run error instead of a process crash.
var ErrInterrupted = errors.New("sched: run interrupted (deadline or cancellation)")

// interruptPollInterval amortizes the event loop's interrupt check: one
// poll every this many events. Must be a power of two (the loop masks the
// event counter). At the simulator's event rates this bounds deadline
// overshoot to well under a millisecond of wall time per run.
const interruptPollInterval = 1024

// Config parameterizes a run.
type Config struct {
	Topology *topology.Topology
	Workers  int
	// Placement maps workers to cores; nil means Topology.Pack(Workers),
	// the paper's tight packing.
	Placement *topology.Placement
	// Policy selects the scheduler driving the run (see the Policy
	// interface and the name-keyed registry in policy.go); nil means Cilk,
	// classic work stealing.
	Policy Policy
	Seed   int64

	// Scheduling costs, in cycles. Zero values take defaults.
	SpawnCost        int64 // work-path: push continuation at cilk_spawn
	ReturnCost       int64 // work-path: pop at spawned-child return
	StealAttemptCost int64 // steal-path: one steal attempt, before hop cost
	StealHopCost     int64 // added per hop of thief-victim socket distance
	PromoteCost      int64 // steal-path: shadow-to-full frame promotion
	SyncCheckCost    int64 // steal-path: nontrivial sync / CHECKPARENT
	PushAttemptCost  int64 // steal-path: one PUSHBACK attempt
	MailboxPopCost   int64 // steal-path: taking a frame out of a mailbox

	// PushThreshold is the paper's constant pushing threshold: once a
	// frame accumulates more failed pushes than this, the pusher resumes
	// it itself. Zero takes the default; negative means threshold 0
	// (a single failed attempt already gives up).
	PushThreshold int
	// BiasWeights[h] is the steal weight for victims h hops away. Nil
	// takes the default {4, 2, 1, ...}. Every weight must be positive so
	// each deque keeps probability >= 1/(cP), which Lemma 1 requires.
	BiasWeights []float64

	// Ablation switches (all false/zero in the faithful configuration).
	DisableCoinFlip bool // always check the mailbox before the deque
	MailboxCapacity int  // mailbox entries; 0 means the paper's single entry
	EagerPush       bool // push at spawn time (work-path pushing, the anti-pattern)
	DisableBias     bool // uniform victims even under a biased policy
	DisableMailbox  bool // biased steals only, no work pushing

	// MaxEvents aborts runaway simulations; 0 means a large default.
	MaxEvents int64

	// Interrupt, if non-nil, is polled every interruptPollInterval events
	// by the event loop; returning true aborts the run by panicking with
	// ErrInterrupted. The harness arms it with a per-run deadline context
	// so a wedged simulation cannot hold a measurement grid hostage. The
	// hook never observes or perturbs simulation state, so an uninterrupted
	// run is byte-identical with or without it.
	Interrupt func() bool

	// Tracer, if non-nil, receives the per-worker execution timeline
	// (strand execution, scheduler bookkeeping, idle probing). See
	// internal/trace for a recorder and renderer.
	Tracer Tracer
}

// TraceKind classifies a traced time span.
type TraceKind int

// Span categories: useful work (strand execution), scheduler bookkeeping
// (spawn/sync/steal/push handling), and idle probing (failed steals).
const (
	TraceWork TraceKind = iota
	TraceBookkeeping
	TraceIdle
)

// String names the trace kind.
func (k TraceKind) String() string {
	switch k {
	case TraceWork:
		return "work"
	case TraceBookkeeping:
		return "bookkeeping"
	case TraceIdle:
		return "idle"
	}
	return fmt.Sprintf("trace(%d)", int(k))
}

// Tracer receives execution-timeline spans from the engine. Calls are
// serialized (the engine is single-threaded); spans for one worker are
// non-overlapping and in increasing time order.
type Tracer interface {
	Span(worker int, start, end int64, kind TraceKind)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Policy == nil {
		out.Policy = Cilk
	}
	if out.Placement == nil {
		out.Placement = out.Topology.Pack(out.Workers)
	}
	def := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&out.SpawnCost, 8)
	def(&out.ReturnCost, 4)
	def(&out.StealAttemptCost, 150)
	def(&out.StealHopCost, 60)
	def(&out.PromoteCost, 300)
	def(&out.SyncCheckCost, 80)
	def(&out.PushAttemptCost, 120)
	def(&out.MailboxPopCost, 40)
	if out.PushThreshold == 0 {
		out.PushThreshold = 4
	}
	if out.PushThreshold < 0 {
		out.PushThreshold = 0
	}
	if out.BiasWeights == nil {
		out.BiasWeights = DefaultBiasWeights(out.Topology)
	}
	if out.MailboxCapacity <= 0 {
		out.MailboxCapacity = 1
	}
	if out.MaxEvents == 0 {
		out.MaxEvents = 2_000_000_000
	}
	return out
}

// DefaultBiasWeights derives the steal-bias weights from the machine's
// distance matrix: the weight halves with every hop, normalized so the
// farthest victim has weight 1 — w[h] = 2^(maxDistance-h). On the paper's
// two-hop machine this is exactly its {4, 2, 1} distribution; on a deeper
// machine (e.g. an 8-socket ring with 4-hop diameters) the same rule keeps
// every victim's weight positive, which Lemma 1 requires, while preserving
// the 2:1 preference between adjacent hop classes. The exponent is capped
// at 512 so that on a pathologically deep machine (a 1000+-hop ring) the
// nearest hop classes degrade to equal weights instead of a weight *sum*
// that overflows to +Inf and breaks proportional victim selection: even
// with millions of workers, a sum of 2^512-bounded weights stays far below
// float64's 2^1024 ceiling.
func DefaultBiasWeights(top *topology.Topology) []float64 {
	maxHop := top.MaxDistance()
	w := make([]float64, maxHop+1)
	for h := range w {
		exp := maxHop - h
		if exp > 512 {
			exp = 512
		}
		w[h] = math.Ldexp(1, exp)
	}
	return w
}

// WorkerStats is the per-worker time breakdown the paper's Fig. 3 and
// Fig. 8 report: work time ("useful work"), scheduling time ("frame
// promotions upon successful steals and nontrivial syncs" and, in NUMA-WS,
// work pushing), and idle time ("trying to steal but failing to find work").
type WorkerStats struct {
	Work  int64
	Sched int64
	Idle  int64
}

// Stats aggregates a run.
type Stats struct {
	Makespan  int64 // T_P: virtual time when the root returned
	PerWorker []WorkerStats

	Steals         int64 // successful deque steals
	StealAttempts  int64 // all steal attempts, successful or not
	FailedSteals   int64
	Promotions     int64 // shadow-to-full promotions
	MailboxSteals  int64 // frames taken from another worker's mailbox
	MailboxSelf    int64 // frames taken from the worker's own mailbox
	Pushes         int64 // successful mailbox deposits
	PushAttempts   int64
	PushOverflows  int64 // frames that hit the pushing threshold
	NontrivialSync int64
	SuspendedSync  int64
	Spawns         int64
	FramesRun      int64 // successful CHECKPARENT resumptions
	Events         int64
	// RemoteResumes counts frames resumed on a socket other than their
	// designated place (load balancing overriding the hint).
	RemoteResumes int64
	// LocalResumes counts placed frames resumed on their designated socket.
	LocalResumes int64
	// StealsByHop[h] counts successful deque steals whose victim sat h hops
	// from the thief — the per-hop-class remote-access profile adaptive
	// policies observe.
	StealsByHop []int64
	// BulkSteals counts frames acquired beyond the first by StealHalf
	// transfers (bulk-stealing policies only).
	BulkSteals int64
}

// WorkTotal sums work time over workers (the paper's W_P).
func (s *Stats) WorkTotal() int64 { return s.sum(func(w WorkerStats) int64 { return w.Work }) }

// SchedTotal sums scheduling time over workers (S_P).
func (s *Stats) SchedTotal() int64 { return s.sum(func(w WorkerStats) int64 { return w.Sched }) }

// IdleTotal sums idle time over workers (I_P).
func (s *Stats) IdleTotal() int64 { return s.sum(func(w WorkerStats) int64 { return w.Idle }) }

func (s *Stats) sum(f func(WorkerStats) int64) int64 {
	var t int64
	for _, w := range s.PerWorker {
		t += f(w)
	}
	return t
}

// nextAction mirrors the pseudocode's next_action variable.
type nextAction int

const (
	actionSteal nextAction = iota
	actionCheckParent
)

// worker is the engine-side state of one logical worker.
type worker struct {
	id     int
	core   int
	socket int
	deque  *deque.Deque[*Frame]
	// mailbox holds ready full frames deposited by work pushing. The
	// paper's mailbox has exactly one entry; larger capacities exist only
	// for the ablation study.
	mailbox []*Frame

	clock   int64
	run     *Frame // frame to execute at the next event, if any
	pending *Yield // a finished strand's event, to apply at its end time
	next    nextAction
	check   *Frame // parent to CHECKPARENT, if next == actionCheckParent
	stats   WorkerStats
	// picker draws this thief's victim under the biased policy; built once
	// at construction from the per-hop-class weight table (nil when the
	// run's policy never draws biased victims) and rebuilt at adaptation
	// epochs under an Adaptive policy. Uniform victims need no state at
	// all — see sim.RNG.PickUniformExcept.
	picker *sim.Picker
	// reserve parks the extra frames of a bulk steal (already promoted to
	// full frames) until the worker next reaches the scheduling loop. They
	// must not enter the deque: the deque holds only this worker's own
	// spawn ancestry, and the pop-at-return pairing depends on that.
	reserve []*Frame
	// streak counts consecutive failed steal attempts since the worker
	// last acquired a frame; policies see it as Steal.Streak.
	streak int
}

func (w *worker) mailboxFull() bool  { return len(w.mailbox) == cap(w.mailbox) }
func (w *worker) mailboxEmpty() bool { return len(w.mailbox) == 0 }

// reset returns a pooled worker to its pre-run state. The deque is already
// empty: a completed run drains every deque and mailbox (the root cannot
// return while any frame is still parked).
func (w *worker) reset() {
	w.mailbox = w.mailbox[:0]
	for i := range w.reserve {
		w.reserve[i] = nil
	}
	w.reserve = w.reserve[:0]
	w.streak = 0
	w.clock = 0
	w.run = nil
	w.pending = nil
	w.next = actionSteal
	w.check = nil
	w.stats = WorkerStats{}
}

// Engine runs one computation under one scheduler configuration.
type Engine struct {
	cfg      Config
	runner   Runner
	rng      *sim.RNG
	arena    *Arena
	q        *sim.Queue
	workers  []*worker
	onSocket [][]int // per-socket push-candidate worker ids
	view     View    // the policies' read-only machine view
	stats    Stats
	done     bool
	finish   int64
	// pushes caches Policy.Pushes() && !DisableMailbox: whether the
	// mailbox/PUSHBACK machinery is live this run.
	pushes bool
	// bulk caches the BulkStealer hook: successful steals transfer half
	// the victim's deque instead of one frame.
	bulk bool
	// The Adaptive hook, armed only when the policy implements it with a
	// positive epoch AND the run draws biased victims (pickers exist to
	// rebuild). adWeights is the run's private, mutable copy of the
	// per-hop-class bias weights; pickScratch is the per-victim weight
	// scratch reused across picker rebuilds.
	adaptive    Adaptive
	adaptEvery  int64
	adaptNext   int64
	adWeights   []float64
	pickScratch []float64
}

// NewEngine builds an engine with a private arena. The configuration is
// validated and defaulted. Callers that run many simulations on the same
// machine shape should reuse an Arena via NewEngineIn instead.
func NewEngine(cfg Config, r Runner) *Engine {
	return NewEngineIn(NewArena(), cfg, r)
}

// NewEngineIn builds an engine inside an arena, reusing the arena's worker
// set, victim pickers, push-candidate lists, event queue and frame pool
// when the machine shape matches the arena's previous engine. The arena
// must not back another live engine.
func NewEngineIn(a *Arena, cfg Config, r Runner) *Engine {
	if cfg.Topology == nil {
		panic("sched: Config.Topology is required")
	}
	if cfg.Workers <= 0 || cfg.Workers > cfg.Topology.Cores() {
		panic(fmt.Sprintf("sched: %d workers invalid for a %d-core machine", cfg.Workers, cfg.Topology.Cores()))
	}
	c := cfg.withDefaults()
	needBias := c.Policy.Biased() && !c.DisableBias && c.Workers > 1
	e := &Engine{cfg: c, runner: r, rng: sim.NewRNG(c.Seed), arena: a, q: &a.q}
	e.pushes = c.Policy.Pushes() && !c.DisableMailbox
	if bs, ok := c.Policy.(BulkStealer); ok {
		e.bulk = bs.StealsBulk()
	}
	e.q.Reset()
	e.workers = a.workersFor(&c, needBias)
	e.onSocket = a.onSocket
	e.view = View{top: c.Topology, sockets: c.Placement.Socket, onSocket: a.onSocket}
	if ad, ok := c.Policy.(Adaptive); ok && needBias && ad.AdaptEvery() > 0 {
		e.adaptive = ad
		e.adaptEvery = ad.AdaptEvery()
		e.adaptNext = e.adaptEvery
		e.adWeights = append([]float64(nil), c.BiasWeights...)
	}
	return e
}

// NewFrame is Frame's pooled constructor: like the package-level NewFrame,
// but drawing storage from the engine's arena. The engine recycles the
// frame when it returns, so a steady-state run allocates no frames at all.
func (e *Engine) NewFrame(parent *Frame, place int) *Frame {
	f := e.arena.newFrame()
	f.Place, f.Parent = place, parent
	return f
}

// NewCalledFrame is NewFrame for a plain (non-spawn) call frame.
func (e *Engine) NewCalledFrame(parent *Frame, place int) *Frame {
	f := e.NewFrame(parent, place)
	f.called = true
	return f
}

// NewRootFrame is the pooled constructor for the computation's root frame.
func (e *Engine) NewRootFrame(place int) *Frame {
	f := e.arena.newFrame()
	f.Place, f.Root, f.full = place, true, true
	return f
}

// recycle returns a finished frame to the arena; frames the caller built
// with the package-level constructors are left alone (tests inspect them
// after the run).
func (e *Engine) recycle(f *Frame) {
	if f.pooled {
		e.arena.release(f)
	}
}

// CoreOf reports the machine core that worker w is pinned to; the execution
// layer uses it to charge memory accesses to the right cache.
func (e *Engine) CoreOf(w int) int { return e.workers[w].core }

// ClockOf reports worker w's current virtual time; the execution layer uses
// it to timestamp a resumed strand's memory accesses.
func (e *Engine) ClockOf(w int) int64 { return e.workers[w].clock }

// SocketOf reports worker w's socket.
func (e *Engine) SocketOf(w int) int { return e.workers[w].socket }

// Workers reports the worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Places reports the number of virtual places: one per socket that hosts at
// least one worker ("threads on a given socket [form] a single group; each
// group forms a virtual place").
func (e *Engine) Places() int { return e.cfg.Placement.Used }

// Run executes the computation rooted at root to completion and returns the
// collected statistics. Worker 0 starts with the root, mirroring the
// runtime "always pins the worker who started the root computation at the
// first core on the first socket"; all other workers start stealing.
func (e *Engine) Run(root *Frame) *Stats {
	if !root.Root {
		panic("sched: Run requires a root frame (NewRootFrame)")
	}
	e.done = false
	e.stats = Stats{}
	e.stats.StealsByHop = make([]int64, e.cfg.Topology.MaxDistance()+1)
	e.workers[0].run = root
	for _, w := range e.workers {
		w.next = actionSteal
		e.q.Push(w.clock, w.id)
	}
	for !e.done && e.q.Len() > 0 {
		e.stats.Events++
		if e.stats.Events > e.cfg.MaxEvents {
			panic(fmt.Sprintf("sched: exceeded %d events; computation appears stuck", e.cfg.MaxEvents))
		}
		// Deadline poll, amortized so the hot loop pays one mask-and-branch
		// per event. The panic unwinds to the harness containment boundary.
		if e.stats.Events&(interruptPollInterval-1) == 0 && e.cfg.Interrupt != nil && e.cfg.Interrupt() {
			panic(ErrInterrupted)
		}
		// Adaptation epoch: a deterministic event count, so an adaptive
		// run replays byte-for-byte from its seed.
		if e.adaptive != nil && e.stats.Events == e.adaptNext {
			e.adaptNext += e.adaptEvery
			e.adaptTick()
		}
		at, id := e.q.Pop()
		w := e.workers[id]
		if at > w.clock {
			w.clock = at
		}
		switch {
		case w.pending != nil:
			y := *w.pending
			w.pending = nil
			e.apply(w, y)
		case w.run != nil:
			e.execute(w)
		default:
			e.schedule(w)
		}
		if !e.done {
			e.q.Push(w.clock, w.id)
		}
	}
	e.stats.Makespan = e.finish
	e.stats.PerWorker = make([]WorkerStats, len(e.workers))
	for i, w := range e.workers {
		st := w.stats
		// Account the tail gap between a worker's last event and the end
		// of the run as idle time, so Work+Sched+Idle ≈ P * T_P.
		if w.clock < e.finish {
			st.Idle += e.finish - w.clock
		}
		e.stats.PerWorker[i] = st
	}
	return &e.stats
}

// execute advances w's assigned frame by one strand. The resulting
// scheduling event (push, pop, sync check) is deferred to the strand's
// completion time: the strand occupies [clock, clock+cost), and other
// workers' events inside that window must observe the deque as it was when
// the strand began — otherwise a long strand would, for example, pop its
// parent continuation "at" its start and collapse the steal window to
// nothing.
func (e *Engine) execute(w *worker) {
	f := w.run
	start := w.clock
	y := e.runner.Resume(w.id, f)
	w.clock += y.Cost
	w.stats.Work += y.Cost
	w.pending = &y
	if e.cfg.Tracer != nil && w.clock > start {
		e.cfg.Tracer.Span(w.id, start, w.clock, TraceWork)
	}
}

// apply performs the scheduling event a completed strand ended with
// (Fig. 2 spawn/return handling, Fig. 5 sync handling).
func (e *Engine) apply(w *worker, y Yield) {
	f := w.run
	start := w.clock
	defer func() {
		if e.cfg.Tracer != nil && w.clock > start {
			// Spawn and return handling is work-path cost (the engine
			// charges it to the work term); sync handling is steal-path.
			kind := TraceWork
			if y.Kind == YieldSync {
				kind = TraceBookkeeping
			}
			e.cfg.Tracer.Span(w.id, start, w.clock, kind)
		}
	}()
	switch y.Kind {
	case YieldSpawn:
		e.onSpawn(w, f, y.Child)
	case YieldReturn:
		e.onReturn(w, f)
	case YieldSync:
		e.onSync(w, f)
	case YieldCall:
		// A plain call: the callee runs next on this worker; the caller's
		// continuation is not stealable (nothing is pushed). No cost — a
		// call is just a function call.
		w.run = y.Child
	default:
		panic(fmt.Sprintf("sched: unknown yield kind %v", y.Kind))
	}
}

// onSpawn implements "F spawns G": push F's continuation at the tail, keep
// executing G. With the EagerPush ablation enabled, a mis-placed child is
// instead pushed to its designated socket right here — on the work path —
// which is exactly the overhead the work-first principle forbids.
func (e *Engine) onSpawn(w *worker, parent, child *Frame) {
	e.stats.Spawns++
	w.clock += e.cfg.SpawnCost
	w.stats.Work += e.cfg.SpawnCost
	parent.children++

	if e.cfg.EagerPush && e.cfg.Policy.Pushes() &&
		child.Place != PlaceAny && child.Place != w.socket {
		// Work-path pushing (the anti-pattern): promote the child so it can
		// run detached, then push it toward its socket. The cost lands on
		// the work term because the worker doing useful work pays it, which
		// is exactly what the work-first principle forbids.
		parent.full = true
		parent.stolen = true // the detached child makes the next sync nontrivial
		child.full = true
		cost, ok := e.tryPush(child)
		w.clock += cost
		w.stats.Work += cost // charged to work: this is the point of the ablation
		if ok {
			w.run = parent // parent continues; child runs remotely
			return
		}
		child.full = false // fall back to the normal spawn path below
	}

	w.deque.PushTail(parent)
	w.run = child
}

// onReturn implements "G returns to its spawning parent F". The returning
// frame is dead afterwards — nothing references it — so pooled frames are
// recycled into the arena here, which is what keeps the steady-state loop
// allocation-free.
func (e *Engine) onReturn(w *worker, f *Frame) {
	w.clock += e.cfg.ReturnCost
	w.stats.Work += e.cfg.ReturnCost
	if f.Root {
		e.done = true
		e.finish = w.clock
		w.run = nil
		e.recycle(f)
		return
	}
	if f.called {
		// Returning from a plain call: resume the caller right here (its
		// continuation was never stealable, and whichever worker finishes
		// the callee carries the caller forward).
		w.run = f.Parent
		e.recycle(f)
		return
	}
	parent := f.Parent
	parent.children--
	e.recycle(f)
	if popped, ok := w.deque.PopTail(); ok {
		if popped != parent {
			panic("sched: deque tail is not the returning child's parent")
		}
		w.run = parent
		return
	}
	// Parent was stolen; the deque is empty. Check whether we are the last
	// returning child (scheduling loop CHECK_PARENT).
	w.run = nil
	w.next = actionCheckParent
	w.check = parent
}

// onSync implements "F executes cilk_sync" per Fig. 5: trivial for
// non-stolen frames (work path untouched); otherwise a nontrivial sync that
// may succeed (and, under NUMA-WS, push the synched frame home) or suspend.
func (e *Engine) onSync(w *worker, f *Frame) {
	if !f.stolen && f.children == 0 {
		// Nothing to do: a frame that has not been stolen since its last
		// sync has no outstanding children (its spawns all returned via
		// local pops), so the sync is a no-op on the work path. The
		// children check only matters under the EagerPush ablation, where
		// detached children can exist without a steal.
		w.run = f
		return
	}
	w.clock += e.cfg.SyncCheckCost
	w.stats.Sched += e.cfg.SyncCheckCost
	e.stats.NontrivialSync++
	if f.children == 0 {
		// CHECKSYNC succeeded.
		f.stolen = false
		if e.pushHomeIfForeign(w, f) {
			w.run = nil
			w.next = actionSteal
			return
		}
		w.run = f
		return
	}
	// Outstanding children: suspend and go steal. A suspended frame needs
	// full-frame bookkeeping (its children will resume it from other
	// workers).
	e.stats.SuspendedSync++
	f.suspended = true
	f.full = true
	w.run = nil
	w.next = actionSteal
}

// pushHomeIfForeign applies Fig. 5's PUSHBACK on a ready full frame that is
// earmarked for a different socket. It reports whether the frame was handed
// away (in which case the caller must not run it). Costs are charged to the
// scheduling term — this is a steal-path event.
func (e *Engine) pushHomeIfForeign(w *worker, f *Frame) bool {
	if !e.pushes {
		return false
	}
	if f.Place == PlaceAny || f.Place == w.socket {
		return false
	}
	cost, ok := e.tryPush(f)
	w.clock += cost
	w.stats.Sched += cost
	return ok
}

// tryPush performs PUSHBACK(F): repeatedly pick a random worker on F's
// designated socket and try to deposit F in its mailbox; each failure
// increments the frame's counter, and once the counter exceeds the pushing
// threshold the push gives up (the caller resumes F itself). Returns the
// total cycle cost of the attempts and whether F was deposited.
func (e *Engine) tryPush(f *Frame) (int64, bool) {
	// A place outside the machine simply has no candidates, like the old
	// Placement.WorkersOn scan (the socket then counts as hosting no
	// workers and the push overflows below).
	var candidates []int
	if f.Place >= 0 && f.Place < len(e.onSocket) {
		candidates = e.onSocket[f.Place]
	}
	var cost int64
	if len(candidates) == 0 {
		// The designated socket hosts no workers in this run (fewer sockets
		// in use than places the program named); treat as threshold
		// overflow.
		e.stats.PushOverflows++
		return 0, false
	}
	for {
		e.stats.PushAttempts++
		cost += e.cfg.PushAttemptCost
		r := e.workers[candidates[e.rng.Intn(len(candidates))]]
		if !r.mailboxFull() {
			r.mailbox = append(r.mailbox, f)
			e.stats.Pushes++
			return cost, true
		}
		f.pushCount++
		if f.pushCount > e.cfg.PushThreshold {
			e.stats.PushOverflows++
			return cost, false
		}
	}
}

// schedule runs one iteration of the scheduling loop (Fig. 2 lines 19-25,
// Fig. 5 lines 17-29) for a worker with no assigned frame.
func (e *Engine) schedule(w *worker) {
	var frame *Frame
	start := w.clock
	defer func() {
		if e.cfg.Tracer != nil && w.clock > start {
			kind := TraceIdle
			if frame != nil {
				kind = TraceBookkeeping
			}
			e.cfg.Tracer.Span(w.id, start, w.clock, kind)
		}
	}()

	if w.next == actionCheckParent {
		// CHECKPARENT: resume the suspended parent if we were its last
		// returning child.
		parent := w.check
		w.check = nil
		w.next = actionSteal
		w.clock += e.cfg.SyncCheckCost
		w.stats.Sched += e.cfg.SyncCheckCost
		if parent.suspended && parent.children == 0 {
			parent.suspended = false
			parent.stolen = false // the sync completes as the frame resumes
			frame = parent
			e.stats.FramesRun++
		}
	}

	// Fig. 5 lines 21-24: a resumed parent earmarked elsewhere is pushed
	// home instead of run here.
	if frame != nil && e.pushHomeIfForeign(w, frame) {
		frame = nil
	}

	// In the faithful schedulers a worker reaches the scheduling loop only
	// with an empty deque ("when a worker is about to return control back
	// to the scheduling loop, its deque must be empty"). The EagerPush
	// ablation breaks that invariant — a frame can suspend at a sync while
	// its ancestors' continuations still sit in the deque — so resume the
	// youngest such continuation before acquiring any unrelated work:
	// running a mailbox or stolen frame on top of a non-empty deque would
	// corrupt the pop-at-return pairing.
	if frame == nil {
		if popped, ok := w.deque.PopTail(); ok {
			w.clock += e.cfg.SyncCheckCost
			w.stats.Sched += e.cfg.SyncCheckCost
			frame = popped
		}
	}

	// Frames parked by a bulk steal: run the deepest first, the frame a
	// deque pop would have produced had the ancestry been this worker's
	// own. Unparking is a steal-path event, costed like a mailbox take.
	if frame == nil && len(w.reserve) > 0 {
		frame = w.reserve[len(w.reserve)-1]
		w.reserve[len(w.reserve)-1] = nil
		w.reserve = w.reserve[:len(w.reserve)-1]
		w.clock += e.cfg.MailboxPopCost
		w.stats.Sched += e.cfg.MailboxPopCost
	}

	// Fig. 5 line 26: check our own mailbox before stealing.
	if frame == nil && e.pushes && !w.mailboxEmpty() {
		frame = e.popMailbox(w)
		w.clock += e.cfg.MailboxPopCost
		w.stats.Sched += e.cfg.MailboxPopCost
		e.stats.MailboxSelf++
	}

	if frame == nil {
		frame = e.steal(w)
	}
	if frame != nil {
		w.streak = 0
		e.noteResume(frame, w)
	}
	w.run = frame
}

func (e *Engine) noteResume(f *Frame, w *worker) {
	if f.Place == PlaceAny {
		return
	}
	if f.Place == w.socket {
		e.stats.LocalResumes++
	} else {
		e.stats.RemoteResumes++
	}
}

func (e *Engine) popMailbox(w *worker) *Frame {
	f := w.mailbox[0]
	copy(w.mailbox, w.mailbox[1:])
	w.mailbox = w.mailbox[:len(w.mailbox)-1]
	return f
}

// steal performs one steal attempt and returns the acquired frame or nil.
// Under cilk this is RANDOMSTEAL; under numaws it is BIASEDSTEALWITHPUSH.
func (e *Engine) steal(w *worker) *Frame {
	if e.cfg.Workers == 1 {
		// No victims exist; spin (costed) until our own work appears.
		w.clock += e.cfg.StealAttemptCost
		w.stats.Idle += e.cfg.StealAttemptCost
		return nil
	}
	e.stats.StealAttempts++

	// Victim selection is the policy's hook: for the built-in schedulers,
	// one Float64 draw either way, consumed exactly as the linear weighted
	// scan would (the cross-check tests in internal/sim pin this), so the
	// event stream is byte-identical to the old enum-dispatched code.
	victim := e.workers[e.cfg.Policy.Victim(e.rng, w.picker, &e.view, Steal{Self: w.id, Streak: w.streak})]
	hop := e.cfg.Topology.Distance(w.socket, victim.socket)
	attemptCost := e.cfg.StealAttemptCost + int64(hop)*e.cfg.StealHopCost
	w.clock += attemptCost

	if !e.pushes {
		return e.stealDeque(w, victim, attemptCost, hop)
	}

	// NUMA-WS: flip a coin between the victim's deque and its mailbox. The
	// paper's analysis needs the deque reachable with probability 1/2 so
	// the critical node at some deque head keeps probability >= 1/(2cP).
	intoDeque := e.rng.Coin()
	if e.cfg.DisableCoinFlip {
		intoDeque = false // ablation: always look at the mailbox first
	}
	if intoDeque {
		return e.stealDeque(w, victim, attemptCost, hop)
	}
	if victim.mailboxEmpty() {
		// Outcome 1: empty mailbox; fall back to the deque.
		return e.stealDeque(w, victim, attemptCost, hop)
	}
	f := e.popMailbox(victim)
	if f.Place == PlaceAny || f.Place == w.socket {
		// Outcome 2: earmarked for our socket; take it.
		w.stats.Sched += attemptCost + e.cfg.MailboxPopCost
		w.clock += e.cfg.MailboxPopCost
		e.stats.MailboxSteals++
		return f
	}
	// Outcome 3: earmarked for a different socket; we become the pusher.
	cost, ok := e.tryPush(f)
	w.clock += cost
	w.stats.Sched += cost + attemptCost
	if ok {
		return nil
	}
	// Pushing threshold reached: take it ourselves.
	e.stats.MailboxSteals++
	return f
}

// stealDeque attempts to take the head of the victim's deque, promoting the
// stolen frame, and — under NUMA-WS — pushing it home if it is earmarked for
// a different socket. Under a bulk-stealing policy the transfer takes up to
// half the victim's deque instead.
func (e *Engine) stealDeque(w, victim *worker, attemptCost int64, hop int) *Frame {
	if e.bulk {
		return e.stealBulk(w, victim, attemptCost, hop)
	}
	f, ok := victim.deque.StealHead()
	if !ok {
		w.stats.Idle += attemptCost
		e.stats.FailedSteals++
		w.streak++
		return nil
	}
	if !f.full {
		e.stats.Promotions++
	}
	f.promote()
	w.clock += e.cfg.PromoteCost
	w.stats.Sched += attemptCost + e.cfg.PromoteCost
	e.stats.Steals++
	e.stats.StealsByHop[hop]++
	if e.pushHomeIfForeign(w, f) {
		return nil
	}
	return f
}

// bulkStealMax bounds one StealHalf transfer. Spawn depth — and therefore
// deque depth — is logarithmic for divide-and-conquer programs, so the
// bound exists only to keep a pathological deque from turning one steal
// into an unbounded promotion bill.
const bulkStealMax = 256

// stealBulk is stealDeque's bulk variant (BulkStealer policies): take up
// to half the victim's deque, promote every frame (PromoteCost each — the
// amount stolen changes, the per-frame bookkeeping cost does not), run the
// head frame and park the rest in the thief's reserve.
func (e *Engine) stealBulk(w, victim *worker, attemptCost int64, hop int) *Frame {
	if e.arena.bulkBuf == nil {
		e.arena.bulkBuf = make([]*Frame, bulkStealMax)
	}
	buf := e.arena.bulkBuf
	n := victim.deque.StealHalf(buf)
	if n == 0 {
		w.stats.Idle += attemptCost
		e.stats.FailedSteals++
		w.streak++
		return nil
	}
	first := buf[0]
	for i := 0; i < n; i++ {
		f := buf[i]
		buf[i] = nil
		if !f.full {
			e.stats.Promotions++
		}
		f.promote()
		e.stats.Steals++
		e.stats.StealsByHop[hop]++
		if i > 0 {
			e.stats.BulkSteals++
			w.reserve = append(w.reserve, f)
		}
	}
	cost := int64(n) * e.cfg.PromoteCost
	w.clock += cost
	w.stats.Sched += attemptCost + cost
	if e.pushHomeIfForeign(w, first) {
		return nil
	}
	return first
}

// adaptTick runs one Adaptive epoch: snapshot the counters, let the policy
// rewrite its hop-class weights, and rebuild the per-thief pickers if it
// did. Only armed when the run draws biased victims (pickers exist).
func (e *Engine) adaptTick() {
	obs := Observation{
		Events:        e.stats.Events,
		StealAttempts: e.stats.StealAttempts,
		Steals:        e.stats.Steals,
		FailedSteals:  e.stats.FailedSteals,
		RemoteResumes: e.stats.RemoteResumes,
		LocalResumes:  e.stats.LocalResumes,
		StealsByHop:   e.stats.StealsByHop,
	}
	if !e.adaptive.Adapt(obs, e.adWeights) {
		return
	}
	for h, wt := range e.adWeights {
		if wt <= 0 {
			panic(fmt.Sprintf("sched: policy %q: Adapt set weight %g for hop class %d; every weight must stay positive",
				e.cfg.Policy.Name(), wt, h))
		}
	}
	if e.pickScratch == nil {
		e.pickScratch = make([]float64, e.cfg.Workers)
	}
	for _, w := range e.workers {
		for v := range e.workers {
			if v == w.id {
				e.pickScratch[v] = 0 // a worker never steals from itself
			} else {
				hop := e.cfg.Topology.Distance(w.socket, e.workers[v].socket)
				e.pickScratch[v] = e.adWeights[hop]
			}
		}
		w.picker = sim.NewPicker(e.pickScratch)
	}
	// The arena's cached pickers no longer match the shape key's weights;
	// force a rebuild on the next reuse.
	e.arena.pickersDirty = true
}
