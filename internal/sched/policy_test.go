package sched

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// fakePolicy is a registrable test double.
type fakePolicy struct{ name string }

func (p fakePolicy) Name() string { return p.name }
func (fakePolicy) Biased() bool   { return false }
func (fakePolicy) Pushes() bool   { return false }
func (fakePolicy) Victim(rng *sim.RNG, _ *sim.Picker, view *View, at Steal) int {
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// testView builds the machine view an engine would hand to Victim for
// workers packed onto top.
func testView(top *topology.Topology, workers int) *View {
	pl := top.Pack(workers)
	onSocket := make([][]int, top.Sockets())
	for w, s := range pl.Socket {
		onSocket[s] = append(onSocket[s], w)
	}
	return &View{top: top, sockets: pl.Socket, onSocket: onSocket}
}

func TestRegistryBuiltins(t *testing.T) {
	for name, want := range map[string]Policy{"cilk": Cilk, "numaws": NUMAWS} {
		got, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("Lookup(%q) = %v, want the builtin instance", name, got)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	builtin := []string{"adaptive-bias", "cilk", "numaws", "socket-first", "steal-half"}
	if !reflect.DeepEqual(names, builtin) {
		t.Fatalf("Names() = %v, want %v", names, builtin)
	}
	// Stable across calls.
	if again := Names(); !reflect.DeepEqual(names, again) {
		t.Errorf("Names() unstable: %v then %v", names, again)
	}
	// A later registration keeps the listing sorted.
	Register(fakePolicy{name: "aaa-test"})
	defer unregister("aaa-test")
	if got := Names(); !reflect.DeepEqual(got, append([]string{"aaa-test"}, builtin...)) {
		t.Errorf("Names() after Register = %v, want sorted with aaa-test first", got)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakePolicy{name: "dup-test"})
	defer unregister("dup-test")
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(fakePolicy{name: "dup-test"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Register with an empty name did not panic")
		}
	}()
	Register(fakePolicy{name: ""})
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("nope")
	if err == nil {
		t.Fatal("Lookup of an unknown policy succeeded")
	}
	for _, want := range []string{`"nope"`, "cilk", "numaws"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Lookup error %q does not mention %s", err, want)
		}
	}
}

// TestInterfacePoliciesMatchEnumSemantics pins that the interface hooks
// encode exactly the decisions the old two-value enum dispatched on: cilk is
// uniform/no-push, numaws is biased/pushing, and numaws degrades to the
// uniform draw when its picker was ablated away.
func TestInterfacePoliciesMatchEnumSemantics(t *testing.T) {
	if Cilk.Biased() || Cilk.Pushes() {
		t.Error("cilk must be unbiased and non-pushing")
	}
	if !NUMAWS.Biased() || !NUMAWS.Pushes() {
		t.Error("numaws must be biased and pushing")
	}
	// Victim draws consume the RNG exactly like the pre-interface code:
	// one uniform draw for cilk (and for bias-ablated numaws), one picker
	// draw otherwise.
	a, b, c := sim.NewRNG(7), sim.NewRNG(7), sim.NewRNG(7)
	picker := sim.NewPicker([]float64{0, 1, 2, 4})
	v8 := testView(topology.TwoSocket(4), 8)
	for i := 0; i < 1000; i++ {
		want := a.PickUniformExcept(8, 3)
		if got := Cilk.Victim(b, picker, v8, Steal{Self: 3}); got != want {
			t.Fatalf("draw %d: Cilk.Victim = %d, want uniform %d", i, got, want)
		}
		if got := NUMAWS.Victim(c, nil, v8, Steal{Self: 3}); got != want {
			t.Fatalf("draw %d: unbiased NUMAWS.Victim = %d, want uniform %d", i, got, want)
		}
	}
	d, e := sim.NewRNG(9), sim.NewRNG(9)
	v4 := testView(topology.TwoSocket(2), 4)
	for i := 0; i < 1000; i++ {
		want := picker.Pick(d)
		if got := NUMAWS.Victim(e, picker, v4, Steal{Self: 0}); got != want {
			t.Fatalf("draw %d: biased NUMAWS.Victim = %d, want picker %d", i, got, want)
		}
	}
}

// TestEnginePolicyDispatch pins that engines built from the registered
// policies behave exactly as the enum-driven engines did: identical stats
// under each policy, mailbox machinery live only under numaws.
func TestEnginePolicyDispatch(t *testing.T) {
	mk := func() *treeRunner {
		return &treeRunner{fanout: 4, depth: 5, leafCost: 800, innerCost: 10,
			placeOf: func(i int) int { return i % 4 }}
	}
	cilk := runTree(t, testConfig(16, Cilk), mk())
	if cilk.Pushes != 0 || cilk.MailboxSteals != 0 || cilk.MailboxSelf != 0 {
		t.Errorf("cilk run used mailboxes: %+v", cilk)
	}
	nws := runTree(t, testConfig(16, NUMAWS), mk())
	if nws.Pushes == 0 {
		t.Errorf("numaws run never pushed: %+v", nws)
	}
	// A looked-up policy is the same instance, so the run replays
	// identically.
	viaLookup, err := Lookup("numaws")
	if err != nil {
		t.Fatal(err)
	}
	again := runTree(t, testConfig(16, viaLookup), mk())
	if again.Makespan != nws.Makespan || again.Steals != nws.Steals ||
		again.Pushes != nws.Pushes || again.Events != nws.Events {
		t.Errorf("run under Lookup(numaws) diverged:\n%+v\n%+v", again, nws)
	}
}
