package sched

// The scheduling policies under comparison, as pluggable values instead of a
// closed enum. A Policy packages the two decision points that distinguish
// the paper's schedulers — how a thief selects its victim, and whether the
// lazy work-pushing machinery (mailboxes, PUSHBACK) is active — so new
// scheduler variants register themselves by name instead of editing the
// engine. The engine consumes a policy only through these hooks; everything
// else (deque discipline, promotion, sync handling, cost accounting) is
// shared by construction, which is exactly the paper's controlled-comparison
// methodology.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Policy is one scheduling policy. Implementations must be stateless (one
// Policy value is shared by every engine and every goroutine) and
// deterministic: a victim draw may consume randomness only through the rng
// it is handed, so runs replay byte-for-byte from the seed.
type Policy interface {
	// Name is the policy's registry key and display name ("cilk",
	// "numaws").
	Name() string
	// Biased reports whether thieves draw victims from the locality-biased
	// distribution, in which case the engine builds a per-thief victim
	// picker from the run's BiasWeights. Ablation (Config.DisableBias) can
	// still force uniform victims on a biased policy.
	Biased() bool
	// Pushes reports whether the policy performs lazy work pushing through
	// mailboxes: PUSHBACK on stolen or synced foreign frames, the mailbox
	// check in the scheduling loop, and the mailbox half of the steal coin
	// flip. Ablation (Config.DisableMailbox) can switch the machinery off
	// without changing the policy.
	Pushes() bool
	// Victim draws the victim worker id for one steal attempt by thief
	// self. picker is the thief's biased picker (non-nil exactly when
	// Biased() held and bias was not ablated away; a drawn id is never
	// self). workers is the total worker count, always at least 2 when the
	// engine calls this. Implementations must consume exactly one draw
	// from rng so the event stream stays seed-reproducible.
	Victim(rng *sim.RNG, picker *sim.Picker, workers, self int) int
}

// cilkPolicy is classic work stealing as in Intel Cilk Plus (the paper's
// Fig. 2): uniformly random victims, no mailboxes, no work pushing.
type cilkPolicy struct{}

func (cilkPolicy) Name() string   { return "cilk" }
func (cilkPolicy) String() string { return "cilk" }
func (cilkPolicy) Biased() bool   { return false }
func (cilkPolicy) Pushes() bool   { return false }
func (cilkPolicy) Victim(rng *sim.RNG, _ *sim.Picker, workers, self int) int {
	return rng.PickUniformExcept(workers, self)
}

// numawsPolicy is the paper's NUMA-WS scheduler (its Fig. 5):
// locality-biased steals plus lazy work pushing with single-entry mailboxes.
type numawsPolicy struct{}

func (numawsPolicy) Name() string   { return "numaws" }
func (numawsPolicy) String() string { return "numaws" }
func (numawsPolicy) Biased() bool   { return true }
func (numawsPolicy) Pushes() bool   { return true }
func (numawsPolicy) Victim(rng *sim.RNG, picker *sim.Picker, workers, self int) int {
	if picker != nil {
		return picker.Pick(rng)
	}
	// Bias ablated away (DisableBias): same uniform draw as cilk.
	return rng.PickUniformExcept(workers, self)
}

// The two schedulers the paper compares, registered under the names "cilk"
// and "numaws" at init.
var (
	// Cilk is classic work stealing (Fig. 2): uniformly random victims,
	// no mailboxes, no work pushing.
	Cilk Policy = cilkPolicy{}
	// NUMAWS is the paper's scheduler (Fig. 5): locality-biased steals and
	// lazy work pushing with single-entry mailboxes.
	NUMAWS Policy = numawsPolicy{}
)

// registry is the name-keyed policy registry. Registration normally happens
// in init functions of this module's packages, but the mutex makes
// Register/Lookup safe from tests and late registration at any time.
var registry = struct {
	sync.RWMutex
	byName map[string]Policy
}{byName: map[string]Policy{}}

func init() {
	Register(Cilk)
	Register(NUMAWS)
}

// Register adds a policy to the registry under p.Name(). It panics on an
// empty name or a duplicate registration: both are programming errors, and
// silently replacing a scheduler would invalidate every measurement taken
// under the name.
func Register(p Policy) {
	name := p.Name()
	if name == "" {
		panic("sched: Register: policy has an empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("sched: Register: policy %q already registered", name))
	}
	registry.byName[name] = p
}

// unregister removes a policy by name. Test hook only: production code never
// unregisters (measurements must stay attributable to a stable name).
func unregister(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.byName, name)
}

// Lookup resolves a registered policy by name. Unknown names return an error
// listing every registered name, so callers can surface it as a usage error
// (mirroring how unknown topology names are reported) instead of panicking.
func Lookup(name string) (Policy, error) {
	registry.RLock()
	p, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names returns the registered policy names, sorted, so listings and error
// messages are stable.
func Names() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}
