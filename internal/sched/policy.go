package sched

// The scheduling policies under comparison, as pluggable values instead of a
// closed enum. A Policy packages the decision points that distinguish the
// paper's schedulers — how a thief selects its victim, and whether the lazy
// work-pushing machinery (mailboxes, PUSHBACK) is active — plus two optional
// hooks for policies from the wider work-stealing literature: a steal-amount
// hook (one frame vs half the victim's deque) and a per-epoch observation
// hook that lets a policy re-weight its victim distribution mid-run. The
// engine consumes a policy only through these hooks; everything else (deque
// discipline, promotion, sync handling, cost accounting) is shared by
// construction, which is exactly the paper's controlled-comparison
// methodology.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/topology"
)

// View is a policy's read-only window onto the run's machine: the worker
// count, the worker-to-socket map and the socket distance matrix. The
// engine builds one View per run and hands the same pointer to every
// Victim call, so consulting it never allocates. Policies must treat it
// as immutable.
type View struct {
	top      *topology.Topology
	sockets  []int   // worker id -> socket
	onSocket [][]int // socket -> resident worker ids, ascending
}

// Workers reports the run's worker count (always at least 2 when the
// engine calls Victim).
func (v *View) Workers() int { return len(v.sockets) }

// SocketOf reports the socket hosting worker w.
func (v *View) SocketOf(w int) int { return v.sockets[w] }

// Sockets reports the machine's socket count.
func (v *View) Sockets() int { return v.top.Sockets() }

// Hops reports the distance-matrix hop count between two sockets.
func (v *View) Hops(a, b int) int { return v.top.Distance(a, b) }

// MaxHops reports the machine's diameter in hops (the largest hop class).
func (v *View) MaxHops() int { return v.top.MaxDistance() }

// SocketMates returns the ids of every worker on w's socket, including w
// itself, in ascending order. The returned slice is the engine's own
// candidate list: callers must not modify it.
func (v *View) SocketMates(w int) []int { return v.onSocket[v.sockets[w]] }

// Steal carries the per-attempt state of one steal: who is stealing and
// how the search has been going. It is passed by value — extending it with
// new fields never breaks existing policies.
type Steal struct {
	// Self is the thief's worker id (never a valid victim).
	Self int
	// Streak counts the thief's consecutive failed steal attempts since it
	// last acquired a frame to run. Hierarchical policies use it to widen
	// their victim set deterministically; it resets to zero whenever the
	// thief obtains work from any source.
	Streak int
}

// Policy is one scheduling policy. Implementations must be stateless (one
// Policy value is shared by every engine and every goroutine) and
// deterministic: a victim draw may consume randomness only through the rng
// it is handed, so runs replay byte-for-byte from the seed.
type Policy interface {
	// Name is the policy's registry key and display name ("cilk",
	// "numaws").
	Name() string
	// Biased reports whether thieves draw victims from the locality-biased
	// distribution, in which case the engine builds a per-thief victim
	// picker from the run's BiasWeights. Ablation (Config.DisableBias) can
	// still force uniform victims on a biased policy.
	Biased() bool
	// Pushes reports whether the policy performs lazy work pushing through
	// mailboxes: PUSHBACK on stolen or synced foreign frames, the mailbox
	// check in the scheduling loop, and the mailbox half of the steal coin
	// flip. Ablation (Config.DisableMailbox) can switch the machinery off
	// without changing the policy.
	Pushes() bool
	// Victim draws the victim worker id for one steal attempt. picker is
	// the thief's biased picker (non-nil exactly when Biased() held and
	// bias was not ablated away; a drawn id is never at.Self). view is the
	// run's machine view and at the attempt's state. The returned id must
	// be a worker other than at.Self. Implementations must be
	// deterministic, consuming randomness only through rng — the built-in
	// policies draw exactly once so their event streams stay
	// byte-identical to the pre-refactor engine (the pinned goldens hold
	// this).
	Victim(rng *sim.RNG, picker *sim.Picker, view *View, at Steal) int
}

// BulkStealer is the optional steal-amount hook: a policy whose
// StealsBulk() reports true transfers up to half the victim's deque per
// successful steal (Deque.StealHalf) instead of a single frame. The head
// frame is run immediately and the rest are parked in the thief's private
// reserve, drained before its mailbox — never placed in the thief's deque,
// which would corrupt the pop-at-return pairing. Policies that do not
// implement the interface steal single frames.
type BulkStealer interface {
	StealsBulk() bool
}

// Observation is a deterministic snapshot of the engine's counters at an
// adaptation epoch, fed to Adaptive.Adapt. All counts are cumulative since
// the start of the run. StealsByHop is indexed by hop class (successful
// deque steals whose victim was h hops from the thief) and must be treated
// as read-only.
type Observation struct {
	Events        int64
	StealAttempts int64
	Steals        int64
	FailedSteals  int64
	RemoteResumes int64
	LocalResumes  int64
	StealsByHop   []int64
}

// Adaptive is the optional observation hook: the engine calls Adapt every
// AdaptEvery() events (a deterministic event-count epoch, so adaptation
// replays byte-for-byte from the seed) with a counter snapshot and the
// current per-hop-class bias weights. Adapt may rewrite the weights in
// place — every weight must stay strictly positive, the positivity Lemma 1
// requires — and reports whether it changed them, in which case the engine
// rebuilds the per-thief victim pickers. The hook is only consulted when
// the policy is Biased and bias was not ablated away; AdaptEvery() <= 0
// disables it. Policies stay stateless: Adapt must be a pure function of
// its arguments.
type Adaptive interface {
	AdaptEvery() int64
	Adapt(obs Observation, weights []float64) bool
}

// cilkPolicy is classic work stealing as in Intel Cilk Plus (the paper's
// Fig. 2): uniformly random victims, no mailboxes, no work pushing.
type cilkPolicy struct{}

func (cilkPolicy) Name() string   { return "cilk" }
func (cilkPolicy) String() string { return "cilk" }
func (cilkPolicy) Biased() bool   { return false }
func (cilkPolicy) Pushes() bool   { return false }
func (cilkPolicy) Victim(rng *sim.RNG, _ *sim.Picker, view *View, at Steal) int {
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// numawsPolicy is the paper's NUMA-WS scheduler (its Fig. 5):
// locality-biased steals plus lazy work pushing with single-entry mailboxes.
type numawsPolicy struct{}

func (numawsPolicy) Name() string   { return "numaws" }
func (numawsPolicy) String() string { return "numaws" }
func (numawsPolicy) Biased() bool   { return true }
func (numawsPolicy) Pushes() bool   { return true }
func (numawsPolicy) Victim(rng *sim.RNG, picker *sim.Picker, view *View, at Steal) int {
	if picker != nil {
		return picker.Pick(rng)
	}
	// Bias ablated away (DisableBias): same uniform draw as cilk.
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// The two schedulers the paper compares, registered under the names "cilk"
// and "numaws" at init.
var (
	// Cilk is classic work stealing (Fig. 2): uniformly random victims,
	// no mailboxes, no work pushing.
	Cilk Policy = cilkPolicy{}
	// NUMAWS is the paper's scheduler (Fig. 5): locality-biased steals and
	// lazy work pushing with single-entry mailboxes.
	NUMAWS Policy = numawsPolicy{}
)

// registry is the name-keyed policy registry. Registration normally happens
// in init functions of this module's packages, but the mutex makes
// Register/Lookup safe from tests and late registration at any time.
var registry = struct {
	sync.RWMutex
	byName map[string]Policy
}{byName: map[string]Policy{}}

func init() {
	Register(Cilk)
	Register(NUMAWS)
}

// Register adds a policy to the registry under p.Name(). It panics on an
// empty name or a duplicate registration: both are programming errors, and
// silently replacing a scheduler would invalidate every measurement taken
// under the name.
func Register(p Policy) {
	if err := TryRegister(p); err != nil {
		panic(err.Error())
	}
}

// TryRegister is Register returning an error instead of panicking, for
// registration seams (like the pkg/numaws facade hook) that surface misuse
// to their caller.
func TryRegister(p Policy) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("sched: Register: policy has an empty name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[name]; dup {
		return fmt.Errorf("sched: Register: policy %q already registered", name)
	}
	registry.byName[name] = p
	return nil
}

// unregister removes a policy by name. Test hook only: production code never
// unregisters (measurements must stay attributable to a stable name).
func unregister(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.byName, name)
}

// Lookup resolves a registered policy by name. Unknown names return an error
// listing every registered name, so callers can surface it as a usage error
// (mirroring how unknown topology names are reported) instead of panicking.
func Lookup(name string) (Policy, error) {
	registry.RLock()
	p, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return p, nil
}

// Names returns the registered policy names, sorted, so listings and error
// messages are stable.
func Names() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}
