package sched

import (
	"testing"

	"repro/internal/topology"
)

// The tests in this file pin down the paper's Fig. 5 protocol decisions
// one by one, using small scripted computations whose scheduling events are
// fully determined.

// twoPhaseRunner: the root spawns one long-running child earmarked for a
// given place, then a second child, syncs, and returns. It gives a thief a
// deterministic single stealable frame to exercise the steal protocol on.
type twoPhaseRunner struct {
	childPlace int
	childCost  int64
}

type twoPhaseState struct{ step int }

func (r *twoPhaseRunner) Resume(w int, f *Frame) Yield {
	if f.Root {
		st, _ := f.Data.(*twoPhaseState)
		if st == nil {
			st = &twoPhaseState{}
			f.Data = st
		}
		st.step++
		switch st.step {
		case 1, 2:
			child := NewFrame(f, r.childPlace)
			return Yield{Kind: YieldSpawn, Cost: 10, Child: child}
		case 3:
			return Yield{Kind: YieldSync, Cost: 10}
		default:
			return Yield{Kind: YieldReturn, Cost: 10}
		}
	}
	return Yield{Kind: YieldReturn, Cost: r.childCost}
}

func runTwoPhase(t *testing.T, cfg Config, r *twoPhaseRunner) *Stats {
	t.Helper()
	e := NewEngine(cfg, r)
	return e.Run(NewRootFrame(PlaceAny))
}

func TestStolenForeignFrameIsPushedHome(t *testing.T) {
	// Subtrees earmarked for socket 1 must reach socket-1 workers via
	// mailboxes rather than run on thieves' sockets. (The earmarked frame
	// must itself be stealable — i.e. a spawning subtree, not a leaf: under
	// continuation stealing a leaf always runs on its spawner, and only
	// frames that transit deques or syncs can be pushed.)
	cfg := testConfig(16, NUMAWS) // sockets 0 and 1 in use
	cfg.Seed = 3
	r := &treeRunner{fanout: 4, depth: 4, leafCost: 5000, innerCost: 10,
		placeOf: func(i int) int { return 1 }} // everything belongs on socket 1
	st := runTree(t, cfg, r)
	if st.Pushes == 0 {
		t.Errorf("no pushes for a foreign-earmarked computation (steals=%d)", st.Steals)
	}
	if st.LocalResumes == 0 {
		t.Error("earmarked frames never resumed on their designated socket")
	}
	if st.LocalResumes <= st.RemoteResumes {
		t.Errorf("hints not honored: %d local vs %d remote resumes", st.LocalResumes, st.RemoteResumes)
	}
}

func TestHomeFrameNotPushed(t *testing.T) {
	// Earmarked for socket 0, where everything runs at P=8 (one socket):
	// pushing must never trigger.
	cfg := testConfig(8, NUMAWS)
	st := runTwoPhase(t, cfg, &twoPhaseRunner{childPlace: 0, childCost: 50_000})
	if st.Pushes != 0 || st.PushAttempts != 0 {
		t.Errorf("pushed %d times for home-socket computation", st.Pushes)
	}
}

func TestPlaceAnyNeverPushed(t *testing.T) {
	cfg := testConfig(32, NUMAWS)
	st := runTwoPhase(t, cfg, &twoPhaseRunner{childPlace: PlaceAny, childCost: 50_000})
	if st.Pushes != 0 {
		t.Errorf("pushed %d times for @ANY computation", st.Pushes)
	}
}

func TestPushThresholdOverflowTakesFrame(t *testing.T) {
	// Mailbox capacity 1 with every target's mailbox pre-filled is hard to
	// stage through public APIs; instead verify the accounting invariant on
	// a busy hinted workload: overflowed frames were still executed (the
	// run completes), and attempts = successes + failures where failures
	// are bounded by threshold+1 per overflow plus the per-success misses.
	cfg := testConfig(32, NUMAWS)
	cfg.PushThreshold = 1
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 2000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, cfg, r)
	if st.PushAttempts < st.Pushes {
		t.Errorf("attempts %d < successes %d", st.PushAttempts, st.Pushes)
	}
	maxFailures := (int64(cfg.PushThreshold) + 1) * (st.PushOverflows + st.Pushes)
	if st.PushAttempts-st.Pushes > maxFailures {
		t.Errorf("failed attempts %d exceed threshold bound %d",
			st.PushAttempts-st.Pushes, maxFailures)
	}
}

func TestDisableCoinFlipStillCorrect(t *testing.T) {
	cfg := testConfig(32, NUMAWS)
	cfg.DisableCoinFlip = true
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 1000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, cfg, r)
	if st.Makespan <= 0 {
		t.Fatal("run did not complete")
	}
	// Everything still executed exactly once: total work conserved.
	ref := runTree(t, testConfig(1, NUMAWS), &treeRunner{fanout: 4, depth: 6, leafCost: 1000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }})
	if st.WorkTotal() != ref.WorkTotal() {
		t.Errorf("work differs with coin flip disabled: %d vs %d", st.WorkTotal(), ref.WorkTotal())
	}
}

func TestBiasWeightsValidation(t *testing.T) {
	cfg := testConfig(4, NUMAWS)
	cfg.BiasWeights = []float64{1, 1, 1} // must cover max hop distance (2) — ok
	r := &treeRunner{fanout: 2, depth: 3, leafCost: 100, innerCost: 5}
	st := runTree(t, cfg, r)
	if st.Makespan <= 0 {
		t.Error("run with custom weights did not complete")
	}
}

func TestCustomPlacementSpread(t *testing.T) {
	top := topology.XeonE5_4620()
	cfg := Config{
		Topology:  top,
		Workers:   8,
		Placement: top.Spread(8), // two workers per socket: 4 places at P=8
		Policy:    NUMAWS,
		Seed:      1,
	}
	e := NewEngine(cfg, &treeRunner{fanout: 4, depth: 4, leafCost: 1000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }})
	if e.Places() != 4 {
		t.Fatalf("spread placement has %d places, want 4", e.Places())
	}
	st := e.Run(NewRootFrame(PlaceAny))
	if st.Makespan <= 0 {
		t.Error("spread run did not complete")
	}
	if st.Pushes == 0 {
		t.Error("spread run with 4 places and hints performed no pushes")
	}
}

func TestSchedulingTimeOnlyOnStealPath(t *testing.T) {
	// At P=1 nothing is ever stolen, so scheduling time must be exactly 0
	// under both policies — the work-first principle's accounting footprint.
	for _, pol := range []Policy{Cilk, NUMAWS} {
		r := &treeRunner{fanout: 3, depth: 6, leafCost: 500, innerCost: 5,
			placeOf: func(i int) int { return i % 4 }}
		st := runTree(t, testConfig(1, pol), r)
		if st.SchedTotal() != 0 {
			t.Errorf("%v P=1: scheduling time %d, want 0", pol, st.SchedTotal())
		}
	}
}

func TestMailboxFramesAreFullFrames(t *testing.T) {
	// Every frame that transits a mailbox must be a full frame (the paper's
	// invariant: "each worker can have only one single outstanding ready
	// full frame"). Indirect check: promotions+suspensions account for all
	// full frames, and runs with heavy pushing complete with drained
	// mailboxes (the engine would deadlock otherwise).
	cfg := testConfig(32, NUMAWS)
	r := &treeRunner{fanout: 4, depth: 7, leafCost: 800, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, cfg, r)
	if st.Pushes == 0 {
		t.Skip("schedule produced no pushes at this seed")
	}
	if st.MailboxSelf+st.MailboxSteals == 0 {
		t.Error("pushed frames were never consumed from mailboxes")
	}
}
