package sched

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestLiteraturePoliciesRegistered(t *testing.T) {
	for name, want := range map[string]Policy{
		"steal-half":    StealHalf,
		"socket-first":  SocketFirst,
		"adaptive-bias": AdaptiveBias,
	} {
		got, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("Lookup(%q) = %v, want the builtin instance", name, got)
		}
	}
}

// TestStealHalfRunsBulk pins that the BulkStealer hook is live: a
// steal-half run on a wide tree transfers frames beyond the first and
// still completes with the same spawn/return accounting as cilk.
func TestStealHalfRunsBulk(t *testing.T) {
	mk := func() *treeRunner {
		return &treeRunner{fanout: 8, depth: 4, leafCost: 200, innerCost: 10}
	}
	sh := runTree(t, testConfig(16, StealHalf), mk())
	if sh.BulkSteals == 0 {
		t.Errorf("steal-half run recorded no bulk steals: %+v", sh)
	}
	if sh.Pushes != 0 || sh.MailboxSteals != 0 || sh.MailboxSelf != 0 {
		t.Errorf("steal-half run used mailboxes: %+v", sh)
	}
	cilk := runTree(t, testConfig(16, Cilk), mk())
	if sh.Spawns != cilk.Spawns {
		t.Errorf("steal-half ran %d spawns, cilk %d — same tree must spawn identically",
			sh.Spawns, cilk.Spawns)
	}
	// Shadow-to-full promotions happen on first steals only; a frame
	// stolen again after resuming stays full, so promotions never exceed
	// steals, bulk or not.
	if sh.Promotions == 0 || sh.Promotions > sh.Steals {
		t.Errorf("promotions %d outside (0, steals %d]", sh.Promotions, sh.Steals)
	}
	// A single-frame policy records no bulk transfers.
	if cilk.BulkSteals != 0 {
		t.Errorf("cilk recorded %d bulk steals, want 0", cilk.BulkSteals)
	}
}

// TestSocketFirstPrefersSocketMates pins the hierarchy: with a fresh
// streak every draw lands on a same-socket victim; once the streak reaches
// the mate count the policy widens to the whole machine.
func TestSocketFirstPrefersSocketMates(t *testing.T) {
	top := topology.XeonE5_4620() // 4 sockets x 8 cores
	view := testView(top, 32)
	rng := sim.NewRNG(3)
	self := 9 // socket 1
	for i := 0; i < 500; i++ {
		v := SocketFirst.Victim(rng, nil, view, Steal{Self: self, Streak: 0})
		if v == self {
			t.Fatalf("draw %d picked self", i)
		}
		if view.SocketOf(v) != view.SocketOf(self) {
			t.Fatalf("draw %d with streak 0 picked remote victim %d (socket %d)",
				i, v, view.SocketOf(v))
		}
	}
	// Streak at/past the mate count: uniform over the machine, and the
	// draw sequence matches PickUniformExcept exactly.
	a, b := sim.NewRNG(5), sim.NewRNG(5)
	sawRemote := false
	for i := 0; i < 500; i++ {
		want := a.PickUniformExcept(32, self)
		got := SocketFirst.Victim(b, nil, view, Steal{Self: self, Streak: 7})
		if got != want {
			t.Fatalf("draw %d with exhausted streak: got %d, want uniform %d", i, got, want)
		}
		if view.SocketOf(got) != view.SocketOf(self) {
			sawRemote = true
		}
	}
	if !sawRemote {
		t.Error("exhausted-streak draws never left the socket")
	}
}

// TestSocketFirstSingleSocketDegeneratesToUniform pins the edge case: with
// every worker on one socket the hierarchy is vacuous and the policy is
// plain uniform stealing.
func TestSocketFirstSingleSocketDegeneratesToUniform(t *testing.T) {
	view := testView(topology.SingleSocket(8), 8)
	mates := view.SocketMates(2)
	if len(mates) != 8 {
		t.Fatalf("SocketMates = %v, want all 8 workers", mates)
	}
	// Streak 0 stays inside the (only) socket but never picks self.
	rng := sim.NewRNG(11)
	for i := 0; i < 200; i++ {
		if v := SocketFirst.Victim(rng, nil, view, Steal{Self: 2, Streak: 0}); v == 2 {
			t.Fatalf("draw %d picked self", i)
		}
	}
}

// TestAdaptiveBiasAdaptIsPure pins the Adapt contract: a pure function of
// the observation, weights in [1, 8] (strictly positive, Lemma 1), and a
// no-op before any steal succeeds.
func TestAdaptiveBiasAdaptIsPure(t *testing.T) {
	ad := AdaptiveBias.(Adaptive)
	if ad.AdaptEvery() <= 0 {
		t.Fatalf("AdaptEvery() = %d, want positive", ad.AdaptEvery())
	}
	w := []float64{4, 2, 1}
	if ad.Adapt(Observation{StealsByHop: []int64{0, 0, 0}}, w) {
		t.Error("Adapt with no observed steals reported a change")
	}
	if !reflect.DeepEqual(w, []float64{4, 2, 1}) {
		t.Errorf("no-op Adapt mutated weights: %v", w)
	}
	obs := Observation{StealsByHop: []int64{30, 10, 0}}
	if !ad.Adapt(obs, w) {
		t.Error("Adapt with observed steals reported no change")
	}
	w2 := []float64{4, 2, 1}
	ad.Adapt(obs, w2)
	if !reflect.DeepEqual(w, w2) {
		t.Errorf("Adapt is not pure: %v vs %v", w, w2)
	}
	for h, wt := range w {
		if wt < 1 || wt > 8 {
			t.Errorf("weight[%d] = %g outside [1, 8]", h, wt)
		}
	}
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("weights %v not ordered by observed steal share", w)
	}
}

// TestAdaptiveRunIsDeterministic pins that epoch-driven reweighting
// replays byte-for-byte from the seed, and that adaptation actually
// engages on a run long enough to cross epochs.
func TestAdaptiveRunIsDeterministic(t *testing.T) {
	mk := func() *treeRunner {
		return &treeRunner{fanout: 4, depth: 7, leafCost: 300, innerCost: 10,
			placeOf: func(i int) int { return i % 4 }}
	}
	a := runTree(t, testConfig(16, AdaptiveBias), mk())
	if a.Events < adaptiveBiasEpoch {
		t.Fatalf("run too short to adapt: %d events < epoch %d", a.Events, adaptiveBiasEpoch)
	}
	b := runTree(t, testConfig(16, AdaptiveBias), mk())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed adaptive runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestAdaptiveRunDoesNotContaminateArena pins the picker-reuse hazard: an
// adaptive run rebuilds the arena's cached pickers mid-run, and a numaws
// run reusing the same arena must still start from the base bias weights.
func TestAdaptiveRunDoesNotContaminateArena(t *testing.T) {
	mk := func() *treeRunner {
		return &treeRunner{fanout: 4, depth: 7, leafCost: 300, innerCost: 10,
			placeOf: func(i int) int { return i % 4 }}
	}
	run := func(a *Arena, pol Policy) *Stats {
		e := NewEngineIn(a, testConfig(16, pol), mk())
		return e.Run(NewRootFrame(PlaceAny))
	}
	fresh := run(NewArena(), NUMAWS)
	arena := NewArena()
	run(arena, AdaptiveBias)
	reused := run(arena, NUMAWS)
	if !reflect.DeepEqual(fresh, reused) {
		t.Errorf("numaws run after an adaptive run in the same arena diverged:\n%+v\n%+v",
			fresh, reused)
	}
}

// TestBulkReserveDrainsBeforeMailbox pins the reserve's place in the
// scheduling loop: a run completes with every bulk-stolen frame executed
// (the root cannot return otherwise) and the reserve empty afterwards.
func TestBulkReserveDrained(t *testing.T) {
	e := NewEngine(testConfig(16, StealHalf), &treeRunner{fanout: 8, depth: 4, leafCost: 200, innerCost: 10})
	st := e.Run(NewRootFrame(PlaceAny))
	if st.BulkSteals == 0 {
		t.Fatal("run produced no bulk steals; the reserve path was never exercised")
	}
	for _, w := range e.workers {
		if len(w.reserve) != 0 {
			t.Errorf("worker %d finished with %d frames parked in reserve", w.id, len(w.reserve))
		}
	}
}
