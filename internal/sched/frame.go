package sched

import "fmt"

// PlaceAny means a frame carries no locality constraint — the paper's @ANY
// annotation, which "indicates no place constraints and unsets the locality
// hint".
const PlaceAny = -1

// Frame is the scheduler's unit of work, mirroring Cilk Plus frames: "every
// Cilk function has an associated shadow frame that gets pushed onto the
// deque upon spawning. ... Whenever a frame is stolen successfully, the
// runtime promotes the stolen frame from a shadow frame into a full frame."
//
// A Frame starts as a shadow frame (cheap, work-path) and is promoted to a
// full frame on its first steal (steal-path bookkeeping), per the work-first
// principle.
type Frame struct {
	// Place is the frame's locality hint: the virtual place (socket) the
	// user earmarked it for, or PlaceAny. Children inherit the parent's
	// place by default.
	Place int
	// Root marks the first root full frame; its return ends the run.
	Root bool
	// Parent is the spawning frame (nil for the root).
	Parent *Frame
	// Data is an opaque slot for the Runner (the execution layer stores
	// its continuation state here). The scheduler never inspects it.
	Data any

	full      bool // promoted to a full frame by a successful steal
	stolen    bool // stolen and has not completed a cilk_sync since
	suspended bool // parked at a nontrivial sync awaiting children
	called    bool // invoked by a plain call, not a spawn
	pooled    bool // allocated from an engine arena; recycled on return
	children  int  // outstanding spawned children
	pushCount int  // PUSHBACK retries; compared against the pushing threshold
}

// NewFrame returns a frame spawned by parent with the given place hint.
func NewFrame(parent *Frame, place int) *Frame {
	return &Frame{Place: place, Parent: parent}
}

// NewCalledFrame returns a frame for a plain (non-spawn) function call. A
// called frame gives the callee its own sync scope — in Cilk, cilk_sync
// waits only for children spawned by the *current function instance* — but
// contributes no parallelism: the caller blocks until it returns, and the
// caller's continuation is not stealable meanwhile.
func NewCalledFrame(parent *Frame, place int) *Frame {
	return &Frame{Place: place, Parent: parent, called: true}
}

// Called reports whether this frame was entered by a plain call.
func (f *Frame) Called() bool { return f.called }

// NewRootFrame returns the root full frame of a computation. The paper pins
// the root at the first core of the first socket, so the root's implicit
// place is socket 0 unless the caller overrides it.
func NewRootFrame(place int) *Frame {
	return &Frame{Place: place, Root: true, full: true}
}

// Full reports whether the frame has been promoted to a full frame.
func (f *Frame) Full() bool { return f.full }

// Stolen reports whether the frame has been stolen since its last
// successful sync.
func (f *Frame) Stolen() bool { return f.stolen }

// Suspended reports whether the frame is parked at a nontrivial sync.
func (f *Frame) Suspended() bool { return f.suspended }

// Children reports the number of outstanding spawned children.
func (f *Frame) Children() int { return f.children }

// PushCount reports how many failed PUSHBACK attempts the frame has
// accumulated.
func (f *Frame) PushCount() int { return f.pushCount }

// promote turns a shadow frame into a full frame at steal time and marks it
// stolen (so its next cilk_sync is nontrivial). In the real runtime this is
// where the expensive full-frame bookkeeping is created; here the engine
// models that cost via Config.PromoteCost.
func (f *Frame) promote() {
	f.full = true
	f.stolen = true
}

func (f *Frame) String() string {
	kind := "shadow"
	if f.full {
		kind = "full"
	}
	return fmt.Sprintf("frame{%s place=%d stolen=%v susp=%v children=%d}",
		kind, f.Place, f.stolen, f.suspended, f.children)
}

// YieldKind classifies the scheduling event at which a strand ended.
type YieldKind int

// The scheduling events user code can hit: cilk_spawn, cilk_sync, returning
// from a function, and a plain call of a Cilk function (which opens a fresh
// sync scope without creating stealable work).
const (
	YieldSpawn YieldKind = iota
	YieldSync
	YieldReturn
	YieldCall
)

// String names the yield kind.
func (k YieldKind) String() string {
	switch k {
	case YieldSpawn:
		return "spawn"
	case YieldSync:
		return "sync"
	case YieldReturn:
		return "return"
	case YieldCall:
		return "call"
	}
	return fmt.Sprintf("yield(%d)", int(k))
}

// Yield describes what a frame did when it was last resumed: the strand it
// executed (its cost in cycles) and the scheduling event that ended it.
type Yield struct {
	Kind  YieldKind
	Cost  int64  // cycles of the strand executed before this event
	Child *Frame // for YieldSpawn: the freshly spawned child frame
}

// Runner executes frames' strands on behalf of the engine. The engine calls
// Resume each time a worker lets frame f run; the Runner runs user code on
// worker w until the next spawn, sync, or return, and reports what happened.
//
// Contract: after a YieldSync, the engine will call Resume again on the same
// frame only when the sync is allowed to complete (trivially, or after all
// children returned); the Runner then continues past the sync point.
type Runner interface {
	Resume(w int, f *Frame) Yield
}
