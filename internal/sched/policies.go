package sched

// Three policies from the wider work-stealing literature, exercising every
// optional hook the refactored contract offers. Each shares the deque
// discipline, promotion, sync handling and cost accounting with cilk and
// numaws by construction — the paper's controlled-comparison methodology —
// and differs only through the Policy hooks, so a tournament across all
// five is an apples-to-apples ranking.

import "repro/internal/sim"

// stealHalfPolicy is classic work stealing with bulk transfers: uniformly
// random victims, but a successful steal takes half the victim's deque
// (Deque.StealHalf) instead of one frame. The head frame runs immediately;
// the rest wait in the thief's reserve. Fewer, fatter steals trade steal
// traffic for promotion cost — each transferred frame still pays
// PromoteCost, so the per-frame bookkeeping bill matches single-frame
// stealing exactly.
type stealHalfPolicy struct{}

func (stealHalfPolicy) Name() string     { return "steal-half" }
func (stealHalfPolicy) String() string   { return "steal-half" }
func (stealHalfPolicy) Biased() bool     { return false }
func (stealHalfPolicy) Pushes() bool     { return false }
func (stealHalfPolicy) StealsBulk() bool { return true }
func (stealHalfPolicy) Victim(rng *sim.RNG, _ *sim.Picker, view *View, at Steal) int {
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// socketFirstPolicy is hierarchical work stealing: a thief exhausts its
// same-socket victims before probing remote sockets. "Exhausted" is
// deterministic — after len(mates)-1 consecutive failed attempts (one
// expected probe per socket mate) the thief widens to the whole machine,
// and any acquired frame resets the streak. No mailboxes, no work pushing:
// the policy is cilk with a locality-first victim order, isolating the
// value of hierarchy from the value of pushing.
type socketFirstPolicy struct{}

func (socketFirstPolicy) Name() string   { return "socket-first" }
func (socketFirstPolicy) String() string { return "socket-first" }
func (socketFirstPolicy) Biased() bool   { return false }
func (socketFirstPolicy) Pushes() bool   { return false }
func (socketFirstPolicy) Victim(rng *sim.RNG, _ *sim.Picker, view *View, at Steal) int {
	mates := view.SocketMates(at.Self)
	if n := len(mates); n > 1 && at.Streak < n-1 {
		// Uniform over the socket mates excluding self: draw from n-1
		// slots and map a self hit to the last mate (which is never self
		// when the draw could land on self).
		v := mates[rng.Intn(n-1)]
		if v == at.Self {
			v = mates[n-1]
		}
		return v
	}
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// adaptiveBiasEpoch is the adaptive-bias adaptation interval in events.
// Event counts are deterministic, so every run adapts at the same points
// regardless of host machine or wall clock.
const adaptiveBiasEpoch = 1 << 15

// adaptiveBiasPolicy is NUMA-WS with a feedback loop on the victim
// distribution: it starts from the run's hop-class bias weights and, every
// adaptiveBiasEpoch events, re-weights each hop class by its observed share
// of successful steals — the engine's remote-access profile. Hop classes
// where steals keep succeeding (work actually lives there) gain weight;
// classes that never pay out decay toward the floor. Every weight stays in
// [1, 8], strictly positive as Lemma 1 requires, so the critical-path
// bound's shape survives adaptation.
type adaptiveBiasPolicy struct{}

func (adaptiveBiasPolicy) Name() string      { return "adaptive-bias" }
func (adaptiveBiasPolicy) String() string    { return "adaptive-bias" }
func (adaptiveBiasPolicy) Biased() bool      { return true }
func (adaptiveBiasPolicy) Pushes() bool      { return true }
func (adaptiveBiasPolicy) AdaptEvery() int64 { return adaptiveBiasEpoch }
func (adaptiveBiasPolicy) Victim(rng *sim.RNG, picker *sim.Picker, view *View, at Steal) int {
	if picker != nil {
		return picker.Pick(rng)
	}
	return rng.PickUniformExcept(view.Workers(), at.Self)
}

// Adapt rewrites weights[h] to 1 + 7*(share of successful steals at hop
// h), a pure function of the observation so the policy itself stays
// stateless. Before any steal succeeds there is nothing to learn and the
// weights are left alone.
func (adaptiveBiasPolicy) Adapt(obs Observation, weights []float64) bool {
	var total int64
	for _, n := range obs.StealsByHop {
		total += n
	}
	if total == 0 {
		return false
	}
	changed := false
	for h := range weights {
		var observed int64
		if h < len(obs.StealsByHop) {
			observed = obs.StealsByHop[h]
		}
		w := 1 + 7*float64(observed)/float64(total)
		if w != weights[h] {
			weights[h] = w
			changed = true
		}
	}
	return changed
}

// The literature policies, registered alongside cilk and numaws at init.
var (
	// StealHalf is uniform work stealing with half-deque transfers.
	StealHalf Policy = stealHalfPolicy{}
	// SocketFirst is hierarchical stealing: same-socket victims first.
	SocketFirst Policy = socketFirstPolicy{}
	// AdaptiveBias is NUMA-WS with epoch-adaptive hop-class weights.
	AdaptiveBias Policy = adaptiveBiasPolicy{}
)

func init() {
	Register(StealHalf)
	Register(SocketFirst)
	Register(AdaptiveBias)
}
