package sched

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// treeState drives a synthetic fork-join tree through the Runner interface
// without any user-code machinery: each internal frame spawns `fanout`
// children, syncs, and returns; leaves just burn `leafCost` cycles.
type treeState struct {
	depth   int
	spawned int
	synced  bool
}

// treeRunner is a scripted Runner producing a perfectly balanced tree.
type treeRunner struct {
	fanout    int
	depth     int
	leafCost  int64
	innerCost int64
	// place, if >= 0, earmarks every frame below the first-level child i
	// for place placeOf(i); nil means no hints.
	placeOf func(i int) int
}

func (r *treeRunner) state(f *Frame) *treeState {
	if f.Data == nil {
		f.Data = &treeState{depth: r.depth}
	}
	return f.Data.(*treeState)
}

func (r *treeRunner) Resume(w int, f *Frame) Yield {
	st := r.state(f)
	if st.depth == 0 {
		return Yield{Kind: YieldReturn, Cost: r.leafCost}
	}
	if st.spawned < r.fanout {
		place := f.Place
		if f.Root && r.placeOf != nil {
			place = r.placeOf(st.spawned)
		}
		child := NewFrame(f, place)
		child.Data = &treeState{depth: st.depth - 1}
		st.spawned++
		return Yield{Kind: YieldSpawn, Cost: r.innerCost, Child: child}
	}
	if !st.synced {
		st.synced = true
		return Yield{Kind: YieldSync, Cost: r.innerCost}
	}
	return Yield{Kind: YieldReturn, Cost: r.innerCost}
}

// work computes the exact total strand cost of the tree (excluding
// spawn/return bookkeeping costs the engine adds).
func (r *treeRunner) work() int64 {
	leaves := int64(1)
	inner := int64(0)
	nodes := int64(1)
	for d := 0; d < r.depth; d++ {
		inner += nodes
		nodes *= int64(r.fanout)
	}
	leaves = nodes
	// Each inner frame emits fanout spawn strands + 1 sync strand + 1
	// return strand, each costing innerCost.
	return leaves*r.leafCost + inner*int64(r.fanout+2)*r.innerCost
}

// span computes the tree's critical path in strand cost (again excluding
// engine bookkeeping): along one root-to-leaf path each inner node
// contributes (fanout+2) strands in the worst case.
func (r *treeRunner) span() int64 {
	return int64(r.depth)*int64(r.fanout+2)*r.innerCost + r.leafCost
}

func testConfig(p int, pol Policy) Config {
	return Config{
		Topology: topology.XeonE5_4620(),
		Workers:  p,
		Policy:   pol,
		Seed:     7,
	}
}

func runTree(t *testing.T, cfg Config, r *treeRunner) *Stats {
	t.Helper()
	e := NewEngine(cfg, r)
	root := NewRootFrame(PlaceAny)
	return e.Run(root)
}

func TestSingleWorkerMatchesWork(t *testing.T) {
	r := &treeRunner{fanout: 2, depth: 6, leafCost: 1000, innerCost: 10}
	cfg := testConfig(1, Cilk)
	st := runTree(t, cfg, r)
	// T1 = strand work + spawn/return bookkeeping; no steals, no idle.
	if st.Steals != 0 {
		t.Errorf("P=1 run had %d steals, want 0", st.Steals)
	}
	if st.IdleTotal() != 0 {
		t.Errorf("P=1 run had idle time %d, want 0", st.IdleTotal())
	}
	if st.SchedTotal() != 0 {
		t.Errorf("P=1 run had scheduling time %d, want 0", st.SchedTotal())
	}
	if st.Makespan != st.WorkTotal() {
		t.Errorf("P=1 makespan %d != work %d", st.Makespan, st.WorkTotal())
	}
	if st.WorkTotal() < r.work() {
		t.Errorf("work total %d < pure strand work %d", st.WorkTotal(), r.work())
	}
}

func TestWorkConservedAcrossP(t *testing.T) {
	// The pure strand work executed must be identical at every P; only
	// bookkeeping differs. (This is what "work-efficient" means: the work
	// term does not grow with parallelism.)
	r1 := &treeRunner{fanout: 2, depth: 8, leafCost: 500, innerCost: 5}
	t1 := runTree(t, testConfig(1, Cilk), r1).WorkTotal()
	for _, p := range []int{2, 8, 32} {
		r := &treeRunner{fanout: 2, depth: 8, leafCost: 500, innerCost: 5}
		st := runTree(t, testConfig(p, Cilk), r)
		// Strand work identical; spawn/return bookkeeping identical (same
		// tree). So WorkTotal must match T1's exactly: the engine never
		// charges scheduling overhead to the work term.
		if st.WorkTotal() != t1 {
			t.Errorf("P=%d work total = %d, want %d (work term must not inflate)", p, st.WorkTotal(), t1)
		}
	}
}

func TestSpeedupAndTimeBound(t *testing.T) {
	for _, pol := range []Policy{Cilk, NUMAWS} {
		r := &treeRunner{fanout: 4, depth: 6, leafCost: 3000, innerCost: 10}
		t1 := runTree(t, testConfig(1, pol), r).Makespan
		for _, p := range []int{4, 16, 32} {
			r2 := &treeRunner{fanout: 4, depth: 6, leafCost: 3000, innerCost: 10}
			st := runTree(t, testConfig(p, pol), r2)
			if st.Makespan < t1/int64(p) {
				t.Errorf("%v P=%d: makespan %d below T1/P = %d (impossible)", pol, p, st.Makespan, t1/int64(p))
			}
			// T_P <= T1/P + c*T_inf with a generous constant accounting for
			// bookkeeping costs on the span.
			span := r2.span()
			bound := t1/int64(p) + 3000*span/int64(r2.leafCost) + 200*span
			if st.Makespan > bound {
				t.Errorf("%v P=%d: makespan %d exceeds T1/P + O(Tinf) bound %d", pol, p, st.Makespan, bound)
			}
			if st.Makespan >= t1 {
				t.Errorf("%v P=%d: no speedup (T_P %d >= T1 %d)", pol, p, st.Makespan, t1)
			}
		}
	}
}

func TestStealBound(t *testing.T) {
	// Successful steals must be O(P * #spans-worth-of-strands). Use the
	// strand count along the critical path as the span proxy.
	for _, pol := range []Policy{Cilk, NUMAWS} {
		r := &treeRunner{fanout: 2, depth: 10, leafCost: 200, innerCost: 5}
		p := 32
		st := runTree(t, testConfig(p, pol), r)
		spanStrands := int64(r.depth)*int64(r.fanout+2) + 1
		limit := 40 * int64(p) * spanStrands // generous constant
		if st.Steals > limit {
			t.Errorf("%v: %d steals exceed O(P*Tinf) budget %d", pol, st.Steals, limit)
		}
		if st.Steals == 0 {
			t.Errorf("%v: expected some steals at P=%d", pol, p)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) *Stats {
		cfg := testConfig(16, NUMAWS)
		cfg.Seed = seed
		r := &treeRunner{fanout: 3, depth: 6, leafCost: 700, innerCost: 10,
			placeOf: func(i int) int { return i % 4 }}
		return runTree(t, cfg, r)
	}
	a, b := run(42), run(42)
	if a.Makespan != b.Makespan || a.Steals != b.Steals || a.Pushes != b.Pushes {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Makespan, a.Steals, a.Pushes, b.Makespan, b.Steals, b.Pushes)
	}
	c := run(43)
	if a.Makespan == c.Makespan && a.Steals == c.Steals && a.StealAttempts == c.StealAttempts {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestPromotionOnlyOnSteal(t *testing.T) {
	r := &treeRunner{fanout: 2, depth: 8, leafCost: 100, innerCost: 2}
	st := runTree(t, testConfig(32, Cilk), r)
	if st.Promotions == 0 {
		t.Fatal("expected promotions at P=32")
	}
	if st.Promotions > st.Steals {
		t.Errorf("promotions %d exceed successful steals %d", st.Promotions, st.Steals)
	}
}

func TestNUMAWSUsesMailboxesWithHints(t *testing.T) {
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 2000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, testConfig(32, NUMAWS), r)
	if st.Pushes == 0 {
		t.Error("NUMA-WS with place hints performed no work pushing")
	}
	if st.MailboxSteals+st.MailboxSelf == 0 {
		t.Error("no frames were ever taken from mailboxes")
	}
	// Hinted frames should run on their designated socket far more often
	// than not.
	if st.LocalResumes <= st.RemoteResumes {
		t.Errorf("local resumes %d <= remote resumes %d; hints are not being honored",
			st.LocalResumes, st.RemoteResumes)
	}
}

func TestCilkNeverPushes(t *testing.T) {
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 2000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, testConfig(32, Cilk), r)
	if st.Pushes != 0 || st.PushAttempts != 0 || st.MailboxSteals != 0 {
		t.Errorf("classic work stealing touched mailboxes: pushes=%d attempts=%d mbsteals=%d",
			st.Pushes, st.PushAttempts, st.MailboxSteals)
	}
}

func TestPushAmortization(t *testing.T) {
	// The paper bounds push events by successful steals: at most two
	// push-triggering events per successful steal, each bounded by the
	// constant threshold. Check attempts <= (threshold+1) * 2 * (steals +
	// syncs) with slack.
	r := &treeRunner{fanout: 4, depth: 7, leafCost: 1000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	cfg := testConfig(32, NUMAWS)
	st := runTree(t, cfg, r)
	perEvent := int64(4 + 1) // default threshold 4 => at most 5 attempts per PUSHBACK call
	budget := perEvent * 2 * (st.Steals + st.NontrivialSync + st.FramesRun + st.MailboxSteals + 1)
	if st.PushAttempts > budget {
		t.Errorf("push attempts %d exceed amortization budget %d", st.PushAttempts, budget)
	}
}

func TestBiasedStealsPreferLocalVictims(t *testing.T) {
	// With bias on, a 32-worker NUMA-WS run steals mostly within sockets.
	// We can't observe victim sockets directly from Stats, so compare idle
	// behavior indirectly: run with bias and with DisableBias and check
	// both complete while bias produces at least as many local resumes.
	r1 := &treeRunner{fanout: 4, depth: 6, leafCost: 2000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st1 := runTree(t, testConfig(32, NUMAWS), r1)

	cfg := testConfig(32, NUMAWS)
	cfg.DisableBias = true
	r2 := &treeRunner{fanout: 4, depth: 6, leafCost: 2000, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st2 := runTree(t, cfg, r2)
	if st1.Makespan <= 0 || st2.Makespan <= 0 {
		t.Fatal("runs did not complete")
	}
}

func TestMailboxCapacityAblation(t *testing.T) {
	cfg := testConfig(32, NUMAWS)
	cfg.MailboxCapacity = 4
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 1500, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, cfg, r)
	if st.Pushes == 0 {
		t.Error("multi-entry mailbox run performed no pushes")
	}
}

func TestEagerPushAblationChargesWorkTerm(t *testing.T) {
	// Eager pushing happens on the work path, so WorkTotal must exceed the
	// lazy configuration's on the same tree.
	mk := func() *treeRunner {
		return &treeRunner{fanout: 4, depth: 6, leafCost: 1500, innerCost: 10,
			placeOf: func(i int) int { return i % 4 }}
	}
	lazy := runTree(t, testConfig(32, NUMAWS), mk())
	cfg := testConfig(32, NUMAWS)
	cfg.EagerPush = true
	eager := runTree(t, cfg, mk())
	if eager.WorkTotal() <= lazy.WorkTotal() {
		t.Errorf("eager push work %d <= lazy work %d; eager pushing must inflate the work term",
			eager.WorkTotal(), lazy.WorkTotal())
	}
}

func TestDisableMailboxStillCompletes(t *testing.T) {
	cfg := testConfig(32, NUMAWS)
	cfg.DisableMailbox = true
	r := &treeRunner{fanout: 4, depth: 6, leafCost: 1500, innerCost: 10,
		placeOf: func(i int) int { return i % 4 }}
	st := runTree(t, cfg, r)
	if st.Pushes != 0 {
		t.Errorf("mailbox disabled but %d pushes happened", st.Pushes)
	}
	if st.Makespan <= 0 {
		t.Error("run did not complete")
	}
}

func TestTimeBreakdownAccounting(t *testing.T) {
	r := &treeRunner{fanout: 2, depth: 9, leafCost: 800, innerCost: 5}
	p := 16
	st := runTree(t, testConfig(p, Cilk), r)
	total := st.WorkTotal() + st.SchedTotal() + st.IdleTotal()
	// Work + Sched + Idle should account for P * makespan within a small
	// tolerance (the last in-flight event of each worker may overshoot).
	exact := int64(p) * st.Makespan
	diff := total - exact
	if diff < 0 {
		diff = -diff
	}
	if diff > exact/10 {
		t.Errorf("breakdown %d differs from P*T_P %d by more than 10%%", total, exact)
	}
}

func TestChildrenCountersDrainToZero(t *testing.T) {
	r := &treeRunner{fanout: 3, depth: 6, leafCost: 300, innerCost: 5}
	e := NewEngine(testConfig(32, NUMAWS), r)
	root := NewRootFrame(PlaceAny)
	e.Run(root)
	if root.Children() != 0 {
		t.Errorf("root has %d outstanding children after completion", root.Children())
	}
	if root.Suspended() {
		t.Error("root still suspended after completion")
	}
}

func TestConfigValidation(t *testing.T) {
	r := &treeRunner{fanout: 2, depth: 2, leafCost: 10, innerCost: 1}
	for name, cfg := range map[string]Config{
		"nil topology":     {Workers: 2},
		"zero workers":     {Topology: topology.XeonE5_4620()},
		"too many workers": {Topology: topology.XeonE5_4620(), Workers: 33},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(%s) did not panic", name)
				}
			}()
			NewEngine(cfg, r)
		}()
	}
}

func TestRunRequiresRootFrame(t *testing.T) {
	e := NewEngine(testConfig(2, Cilk), &treeRunner{fanout: 2, depth: 1, leafCost: 1, innerCost: 1})
	defer func() {
		if recover() == nil {
			t.Error("Run on a non-root frame did not panic")
		}
	}()
	e.Run(NewFrame(nil, PlaceAny))
}

func TestPolicyNames(t *testing.T) {
	if Cilk.Name() != "cilk" || NUMAWS.Name() != "numaws" {
		t.Errorf("policy names wrong: %q, %q", Cilk.Name(), NUMAWS.Name())
	}
	// The policies render by name through fmt too (harness error messages
	// and the timeline header rely on it).
	if got := fmt.Sprintf("%v/%v", Cilk, NUMAWS); got != "cilk/numaws" {
		t.Errorf("policy fmt rendering = %q, want cilk/numaws", got)
	}
}

func TestYieldKindString(t *testing.T) {
	for k, want := range map[YieldKind]string{YieldSpawn: "spawn", YieldSync: "sync", YieldReturn: "return"} {
		if k.String() != want {
			t.Errorf("YieldKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestFrameString(t *testing.T) {
	f := NewFrame(nil, 2)
	s := f.String()
	if s == "" {
		t.Error("empty frame string")
	}
	f.promote()
	if !f.Full() || !f.Stolen() {
		t.Errorf("promote left frame in wrong state: %v", f)
	}
	// Promotion never touches the child counter (the counter is maintained
	// at spawn/return, so it is already accurate at steal time).
	f.children = 3
	f.promote()
	if f.Children() != 3 {
		t.Errorf("re-promotion reset children to %d, want 3", f.Children())
	}
}
