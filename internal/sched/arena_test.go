package sched

import (
	"reflect"
	"testing"
)

// TestArenaReuseMatchesFreshEngines pins the arena's compatibility
// contract: a sequence of runs through one reused arena — alternating
// policies, worker counts and seeds, so both the shape-match and the
// rebuild paths are exercised — produces exactly the statistics fresh
// engines produce.
func TestArenaReuseMatchesFreshEngines(t *testing.T) {
	type shape struct {
		p    int
		pol  Policy
		seed int64
	}
	shapes := []shape{
		{32, NUMAWS, 1},
		{32, NUMAWS, 2}, // same shape, new seed: the reuse path
		{32, Cilk, 2},   // bias dropped: rebuild
		{8, NUMAWS, 1},  // smaller worker set: rebuild
		{32, NUMAWS, 1}, // back to the first shape
	}
	newRunner := func() *treeRunner {
		return &treeRunner{fanout: 3, depth: 5, leafCost: 700, innerCost: 5,
			placeOf: func(i int) int { return i % 3 }}
	}
	arena := NewArena()
	for i, s := range shapes {
		cfg := testConfig(s.p, s.pol)
		cfg.Seed = s.seed

		fresh := NewEngine(cfg, newRunner())
		want := *fresh.Run(fresh.NewRootFrame(PlaceAny))

		reused := NewEngineIn(arena, cfg, newRunner())
		got := *reused.Run(reused.NewRootFrame(PlaceAny))

		if !reflect.DeepEqual(got, want) {
			t.Errorf("run %d (%+v): arena-reused stats differ from fresh engine\ngot:  %+v\nwant: %+v",
				i, s, got, want)
		}
	}
}

// TestArenaFrameRecycling checks the frame pool reaches steady state: after
// a completed run every pooled frame is back on the free list, so a second
// identical run allocates no new frame blocks.
func TestArenaFrameRecycling(t *testing.T) {
	arena := NewArena()
	run := func() {
		r := &treeRunner{fanout: 4, depth: 5, leafCost: 100, innerCost: 2}
		e := NewEngineIn(arena, testConfig(16, NUMAWS), r)
		e.Run(e.NewRootFrame(PlaceAny))
	}
	run()
	blocks, free := len(arena.blocks), len(arena.free)
	if blocks == 0 {
		t.Fatal("engine-built frames did not come from the arena")
	}
	if free != 256*blocks {
		t.Errorf("after a completed run %d of %d pooled frames are free; some frame never returned",
			free, 256*blocks)
	}
	run()
	if len(arena.blocks) != blocks {
		t.Errorf("second identical run grew the arena from %d to %d blocks", blocks, len(arena.blocks))
	}
}

// TestEngineFrameConstructorsMatchPackageOnes checks the pooled
// constructors produce frames indistinguishable from the package-level ones
// apart from pooling.
func TestEngineFrameConstructorsMatchPackageOnes(t *testing.T) {
	e := NewEngine(testConfig(2, Cilk), &treeRunner{fanout: 1, depth: 1, leafCost: 1, innerCost: 1})
	parent := e.NewRootFrame(3)
	if !parent.Root || !parent.Full() || parent.Place != 3 || !parent.pooled {
		t.Errorf("NewRootFrame: %+v", parent)
	}
	f := e.NewFrame(parent, 1)
	if f.Parent != parent || f.Place != 1 || f.Called() || f.Full() || !f.pooled {
		t.Errorf("NewFrame: %+v", f)
	}
	c := e.NewCalledFrame(parent, 2)
	if c.Parent != parent || c.Place != 2 || !c.Called() || !c.pooled {
		t.Errorf("NewCalledFrame: %+v", c)
	}
}
