package sched

import (
	"repro/internal/deque"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Arena owns the allocation-heavy engine state that survives from one run
// to the next: the worker set (each worker carries a 64K-entry deque), the
// per-thief victim pickers, the per-socket push-candidate lists, the event
// queue's backing array, and a Frame free list. harness.Measure* repeats
// thousands of (spec, policy, P, seed) runs on identical machine shapes;
// building each engine inside a reused Arena makes every run after the
// first allocate almost nothing on the steal path.
//
// An Arena is not safe for concurrent use: it may back at most one live
// Engine at a time. The harness keeps one Arena per host worker goroutine.
// Reuse never changes results — a reused engine starts from exactly the
// state a fresh one would (the paper-4x8 pinned outputs and the
// arena-vs-fresh engine tests hold this).
type Arena struct {
	q sim.Queue

	// Cached worker set, valid for the shape in key. Each worker carries
	// its per-thief biased picker (nil when the shape never draws biased
	// victims).
	workers  []*worker
	onSocket [][]int // per-socket worker ids (push candidates)
	key      arenaKey
	// pickersDirty marks the cached pickers as diverged from the key's
	// weight table: an Adaptive policy rebuilt them mid-run. The next
	// reuse reconstructs them from the base weights so a following run
	// starts exactly where a fresh engine would.
	pickersDirty bool

	// bulkBuf is the StealHalf transfer buffer shared by every bulk steal
	// of every run in this arena (the engine is single-threaded and drains
	// it before returning). Lazily sized to bulkStealMax.
	bulkBuf []*Frame

	// Frame free list. Frames are recycled when they return, so at the end
	// of a completed run every pooled frame is back on the list.
	free   []*Frame
	blocks [][]Frame
}

// arenaKey captures every input of worker/picker/candidate construction.
// Topology is compared by pointer: the harness resolves one *Topology per
// measurement sweep, so identity matches within a sweep and a conservative
// rebuild across sweeps costs one construction.
type arenaKey struct {
	top      *topology.Topology
	workers  int
	needBias bool
	mailbox  int
	// placement and bias weights are compared by content (they are
	// re-derived per run, so pointer identity would never match).
	sockets []int
	cores   []int
	weights []float64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

func (k *arenaKey) matches(top *topology.Topology, c *Config, needBias bool) bool {
	if k.top != top || k.workers != c.Workers || k.needBias != needBias ||
		k.mailbox != c.MailboxCapacity {
		return false
	}
	if len(k.sockets) != len(c.Placement.Socket) || len(k.weights) != len(c.BiasWeights) {
		return false
	}
	for i, s := range c.Placement.Socket {
		if k.sockets[i] != s || k.cores[i] != c.Placement.Core[i] {
			return false
		}
	}
	for i, w := range c.BiasWeights {
		if k.weights[i] != w {
			return false
		}
	}
	return true
}

// workersFor returns the worker set for the defaulted config c, reusing the
// cached set when the shape matches and rebuilding it otherwise.
func (a *Arena) workersFor(c *Config, needBias bool) []*worker {
	if a.key.matches(c.Topology, c, needBias) {
		for _, w := range a.workers {
			w.reset()
		}
		if a.pickersDirty {
			if needBias {
				a.buildPickers(c)
			}
			a.pickersDirty = false
		}
		return a.workers
	}
	a.build(c, needBias)
	return a.workers
}

// build constructs workers, pickers and push-candidate lists for shape c
// and records the shape key. The old workers' deques — by far the largest
// engine allocation, 64K entries each — are salvaged for the new set.
func (a *Arena) build(c *Config, needBias bool) {
	old := a.workers
	a.workers = make([]*worker, c.Workers)
	for i := range a.workers {
		w := &worker{
			id:     i,
			core:   c.Placement.Core[i],
			socket: c.Placement.Socket[i],
		}
		if i < len(old) && old[i].deque.Empty() {
			w.deque = old[i].deque
		} else {
			w.deque = deque.New[*Frame](0)
		}
		if i < len(old) && cap(old[i].mailbox) >= c.MailboxCapacity {
			w.mailbox = old[i].mailbox[:0:c.MailboxCapacity]
		} else {
			w.mailbox = make([]*Frame, 0, c.MailboxCapacity)
		}
		a.workers[i] = w
	}
	if needBias && c.Workers > 1 {
		a.buildPickers(c)
	}
	a.pickersDirty = false
	a.onSocket = make([][]int, c.Topology.Sockets())
	for w, s := range c.Placement.Socket {
		a.onSocket[s] = append(a.onSocket[s], w)
	}
	a.key = arenaKey{
		top:      c.Topology,
		workers:  c.Workers,
		needBias: needBias,
		mailbox:  c.MailboxCapacity,
		sockets:  append([]int(nil), c.Placement.Socket...),
		cores:    append([]int(nil), c.Placement.Core...),
		weights:  append([]float64(nil), c.BiasWeights...),
	}
}

// buildPickers constructs the per-thief biased pickers: thief t steals
// victim v with weight BiasWeights[hop(t,v)] and weight 0 for itself. The
// hop-class table is the only weight storage; each picker folds it into
// prefix sums once, replacing the old per-worker weights/uweights pair
// re-scanned on every steal. The uniform distribution needs no table at
// all (sim.PickUniformExcept), and a single worker has no victims.
func (a *Arena) buildPickers(c *Config) {
	scratch := make([]float64, c.Workers)
	for _, w := range a.workers {
		for v := range a.workers {
			if v == w.id {
				scratch[v] = 0 // a worker never steals from itself
			} else {
				hop := c.Topology.Distance(w.socket, a.workers[v].socket)
				scratch[v] = c.BiasWeights[hop]
			}
		}
		w.picker = sim.NewPicker(scratch)
	}
}

// newFrame hands out a pooled frame, growing the arena by a block when the
// free list is empty.
func (a *Arena) newFrame() *Frame {
	if len(a.free) == 0 {
		block := make([]Frame, 256)
		a.blocks = append(a.blocks, block)
		for i := range block {
			block[i].pooled = true
			a.free = append(a.free, &block[i])
		}
	}
	f := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return f
}

// release returns a pooled frame to the free list. Only the engine calls
// this, and only when the frame has returned (nothing references it).
func (a *Arena) release(f *Frame) {
	*f = Frame{pooled: true}
	a.free = append(a.free, f)
}
