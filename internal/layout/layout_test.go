package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// fig6a is the exact 8x8 cell Z-Morton grid from the paper's Fig. 6(a).
const fig6a = ` 0  1  4  5 16 17 20 21
 2  3  6  7 18 19 22 23
 8  9 12 13 24 25 28 29
10 11 14 15 26 27 30 31
32 33 36 37 48 49 52 53
34 35 38 39 50 51 54 55
40 41 44 45 56 57 60 61
42 43 46 47 58 59 62 63
`

// fig6b is the exact 8x8 blocked Z-Morton grid (block 4) from Fig. 6(b).
const fig6b = ` 0  1  2  3 16 17 18 19
 4  5  6  7 20 21 22 23
 8  9 10 11 24 25 26 27
12 13 14 15 28 29 30 31
32 33 34 35 48 49 50 51
36 37 38 39 52 53 54 55
40 41 42 43 56 57 58 59
44 45 46 47 60 61 62 63
`

func TestFig6aGolden(t *testing.T) {
	if got := Grid(8, Morton, 0); got != fig6a {
		t.Errorf("Fig. 6(a) mismatch:\ngot:\n%s\nwant:\n%s", got, fig6a)
	}
}

func TestFig6bGolden(t *testing.T) {
	if got := Grid(8, BlockedMorton, 4); got != fig6b {
		t.Errorf("Fig. 6(b) mismatch:\ngot:\n%s\nwant:\n%s", got, fig6b)
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(r16, c16 uint16) bool {
		r, c := int(r16), int(c16)
		rr, cc := MortonDecode(MortonIndex(r, c))
		return rr == r && cc == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonIsBijectionOnGrid(t *testing.T) {
	const n = 64
	seen := make([]bool, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := MortonIndex(r, c)
			if i < 0 || i >= n*n {
				t.Fatalf("MortonIndex(%d,%d) = %d out of range", r, c, i)
			}
			if seen[i] {
				t.Fatalf("MortonIndex(%d,%d) = %d collides", r, c, i)
			}
			seen[i] = true
		}
	}
}

// Property: all three layouts are bijections over the grid.
func TestLayoutBijectionProperty(t *testing.T) {
	a := memory.NewAllocator(4)
	for _, tc := range []struct {
		kind  Kind
		block int
	}{{RowMajor, 0}, {Morton, 0}, {BlockedMorton, 4}} {
		m := NewMatrix(a, tc.kind.String(), 16, tc.kind, tc.block, memory.Interleave{})
		seen := make([]bool, 16*16)
		for r := 0; r < 16; r++ {
			for c := 0; c < 16; c++ {
				i := m.Index(r, c)
				if i < 0 || i >= len(seen) || seen[i] {
					t.Fatalf("%v: Index(%d,%d) = %d invalid or duplicate", tc.kind, r, c, i)
				}
				seen[i] = true
			}
		}
	}
}

func TestBlockedMortonBlockContiguity(t *testing.T) {
	a := memory.NewAllocator(4)
	m := NewMatrix(a, "m", 32, BlockedMorton, 8, memory.Interleave{})
	// Every cell of a block must fall inside the block's span.
	for br := 0; br < 4; br++ {
		for bc := 0; bc < 4; bc++ {
			off, size := m.BlockSpan(br*8, bc*8)
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					idx := int64(m.Index(br*8+r, bc*8+c)) * 8
					if idx < off || idx >= off+size {
						t.Fatalf("cell (%d,%d) of block (%d,%d) at byte %d outside span [%d,%d)",
							r, c, br, bc, idx, off, off+size)
					}
				}
			}
		}
	}
}

func TestQuadrantsAreContiguousQuarters(t *testing.T) {
	// In Z order the four quadrants occupy the four contiguous quarters of
	// the array — the property that page binding relies on.
	a := memory.NewAllocator(4)
	n, b := 64, 8
	m := NewMatrix(a, "m", n, BlockedMorton, b, memory.FirstTouch{})
	half := n / 2
	quarterCells := n * n / 4
	quadOf := func(r, c int) int {
		q := 0
		if c >= half {
			q |= 1
		}
		if r >= half {
			q |= 2
		}
		return q
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i := m.Index(r, c)
			if got, want := i/quarterCells, quadOf(r, c); got != want {
				t.Fatalf("cell (%d,%d) index %d in quarter %d, want quadrant %d", r, c, i, got, want)
			}
		}
	}
}

func TestBindQuadrantsToSockets(t *testing.T) {
	a := memory.NewAllocator(4)
	// 64x64 floats = 32 KiB = 8 pages; each quadrant = 2 pages.
	m := NewMatrix(a, "m", 64, BlockedMorton, 8, memory.FirstTouch{})
	m.BindQuadrantsToSockets([]int{0, 1, 2, 3})
	dist := m.R.Distribution(4)
	for s := 0; s < 4; s++ {
		if dist[s] != 2 {
			t.Errorf("socket %d owns %d pages, want 2; dist=%v", s, dist[s], dist)
		}
	}
}

func TestRowSpan(t *testing.T) {
	a := memory.NewAllocator(4)
	rm := NewMatrix(a, "rm", 16, RowMajor, 0, memory.Interleave{})
	off, size := rm.RowSpan(3, 4, 8)
	if off != int64(3*16+4)*8 || size != 64 {
		t.Errorf("row-major RowSpan = (%d,%d), want (%d,64)", off, size, int64(3*16+4)*8)
	}
	bm := NewMatrix(a, "bm", 16, BlockedMorton, 4, memory.Interleave{})
	off, _ = bm.RowSpan(5, 4, 4) // row 1 of block (1,1)
	if off != int64(bm.Index(5, 4))*8 {
		t.Errorf("blocked RowSpan offset = %d, want %d", off, int64(bm.Index(5, 4))*8)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RowSpan crossing block boundary did not panic")
			}
		}()
		bm.RowSpan(0, 2, 4)
	}()
}

func TestAtSetAddAcrossLayouts(t *testing.T) {
	a := memory.NewAllocator(2)
	for _, tc := range []struct {
		kind  Kind
		block int
	}{{RowMajor, 0}, {Morton, 0}, {BlockedMorton, 4}} {
		m := NewMatrix(a, tc.kind.String(), 8, tc.kind, tc.block, memory.Interleave{})
		m.Set(3, 5, 7.5)
		m.Add(3, 5, 0.5)
		if got := m.At(3, 5); got != 8 {
			t.Errorf("%v: At(3,5) = %f, want 8", tc.kind, got)
		}
		if got := m.At(5, 3); got != 0 {
			t.Errorf("%v: At(5,3) = %f, want 0", tc.kind, got)
		}
	}
}

func TestFillRandomLayoutIndependent(t *testing.T) {
	a := memory.NewAllocator(2)
	rm := NewMatrix(a, "rm", 16, RowMajor, 0, memory.Interleave{})
	bm := NewMatrix(a, "bm", 16, BlockedMorton, 4, memory.Interleave{})
	rm.FillRandom(42)
	bm.FillRandom(42)
	if !Equal(rm, bm, 0) {
		t.Error("FillRandom produced different logical contents across layouts")
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	a := memory.NewAllocator(2)
	x := NewMatrix(a, "x", 8, RowMajor, 0, memory.Interleave{})
	y := NewMatrix(a, "y", 8, RowMajor, 0, memory.Interleave{})
	if !Equal(x, y, 0) {
		t.Error("zero matrices not equal")
	}
	y.Set(7, 7, 1e-3)
	if Equal(x, y, 1e-6) {
		t.Error("difference not detected")
	}
	if !Equal(x, y, 1e-2) {
		t.Error("difference within eps not tolerated")
	}
	z := NewMatrix(a, "z", 4, RowMajor, 0, memory.Interleave{})
	if Equal(x, z, 1) {
		t.Error("size mismatch not detected")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	a := memory.NewAllocator(2)
	for name, f := range map[string]func(){
		"morton non-pow2":     func() { NewMatrix(a, "m", 12, Morton, 0, memory.Interleave{}) },
		"block non-divisor":   func() { NewMatrix(a, "m", 16, BlockedMorton, 5, memory.Interleave{}) },
		"block grid non-pow2": func() { NewMatrix(a, "m", 24, BlockedMorton, 8, memory.Interleave{}) },
		"zero block":          func() { NewMatrix(a, "m", 16, BlockedMorton, 0, memory.Interleave{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{RowMajor: "row-major", Morton: "z-morton", BlockedMorton: "blocked-z-morton"} {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include its number")
	}
}
