// Package layout implements the paper's data layout transformation
// (Section III-C, Fig. 6): matrices stored row-major, in cell-by-cell
// Z-Morton order (the cache-oblivious bit-interleaved layout), or in the
// paper's blocked Z-Morton order, where fixed-size blocks are laid out along
// the recursive Z curve and cells within each block are row-major.
//
// Blocked Z-Morton gives divide-and-conquer base cases contiguous memory —
// so a base-case tile is one streaming read, its pages can be bound to one
// socket, and the bit interleaving is computed per block instead of per
// cell ("we save on overhead for index computation").
package layout

import (
	"fmt"
	"strings"

	"repro/internal/memory"
)

// Kind selects a matrix storage order.
type Kind int

// Supported layouts.
const (
	// RowMajor is the conventional C order.
	RowMajor Kind = iota
	// Morton is the cell-by-cell Z-Morton order of Fig. 6a.
	Morton
	// BlockedMorton is Fig. 6b: blocks on the Z curve, cells row-major
	// within each block.
	BlockedMorton
)

// String names the layout kind.
func (k Kind) String() string {
	switch k {
	case RowMajor:
		return "row-major"
	case Morton:
		return "z-morton"
	case BlockedMorton:
		return "blocked-z-morton"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MortonIndex interleaves the bits of (row, col) into the Z-curve index:
// bit i of col lands at position 2i and bit i of row at position 2i+1,
// which reproduces Fig. 6a exactly (index 1 is (0,1); index 2 is (1,0)).
func MortonIndex(row, col int) int64 {
	return int64(spread(uint32(col)) | spread(uint32(row))<<1)
}

// MortonDecode inverts MortonIndex.
func MortonDecode(i int64) (row, col int) {
	return int(compact(uint64(i) >> 1)), int(compact(uint64(i)))
}

// spread inserts a zero bit above every bit of x (16 -> 32 bits).
func spread(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & 0x00FF00FF00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F0F0F0F0F
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact drops every other bit of x, inverting spread.
func compact(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0F0F0F0F0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF00FF00FF
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	v = (v | v>>16) & 0x00000000FFFFFFFF
	return uint32(v)
}

// Matrix is a dense n x n float64 matrix stored in one of the three layouts,
// backed by a simulated region so accesses can be charged to the cache
// model.
type Matrix struct {
	N     int
	Block int // block side for BlockedMorton; 0 otherwise
	Kind  Kind
	Data  []float64
	R     *memory.Region
}

// NewMatrix allocates an n x n matrix with the given layout. For
// BlockedMorton, n must be a multiple of block and n/block a power of two
// (the Z curve needs a power-of-two block grid); for Morton, n must be a
// power of two.
func NewMatrix(a *memory.Allocator, name string, n int, kind Kind, block int, pol memory.Policy) *Matrix {
	switch kind {
	case Morton:
		if n&(n-1) != 0 {
			panic(fmt.Sprintf("layout: Morton matrix side %d is not a power of two", n))
		}
	case BlockedMorton:
		if block <= 0 || n%block != 0 {
			panic(fmt.Sprintf("layout: block %d does not divide side %d", block, n))
		}
		if g := n / block; g&(g-1) != 0 {
			panic(fmt.Sprintf("layout: block grid %d is not a power of two", n/block))
		}
	default:
		block = 0
	}
	return &Matrix{
		N:     n,
		Block: block,
		Kind:  kind,
		Data:  make([]float64, n*n),
		R:     a.Alloc(name, int64(n)*int64(n)*8, pol),
	}
}

// Rebind re-registers the matrix's region with a fresh allocator, keeping
// its data and layout. Pooled workloads call it during Prepare to carry a
// constructed matrix into a new run: regions hold run-scoped first-touch
// state, so each run needs its own, but the expensive part — the data and
// its layout — is layout-validated once and reused.
func (m *Matrix) Rebind(a *memory.Allocator, name string, pol memory.Policy) {
	m.R = a.Alloc(name, int64(m.N)*int64(m.N)*8, pol)
}

// Index maps (row, col) to the linear element index under the matrix's
// layout.
func (m *Matrix) Index(row, col int) int {
	switch m.Kind {
	case Morton:
		return int(MortonIndex(row, col))
	case BlockedMorton:
		b := m.Block
		blockIdx := MortonIndex(row/b, col/b)
		return int(blockIdx)*b*b + (row%b)*b + (col % b)
	default:
		return row*m.N + col
	}
}

// At reads element (row, col).
func (m *Matrix) At(row, col int) float64 { return m.Data[m.Index(row, col)] }

// Set writes element (row, col).
func (m *Matrix) Set(row, col int, v float64) { m.Data[m.Index(row, col)] = v }

// Add accumulates into element (row, col).
func (m *Matrix) Add(row, col int, v float64) { m.Data[m.Index(row, col)] += v }

// BlockSpan reports the (byte offset, byte length) of the b x b tile whose
// top-left corner is (row, col), for charging a whole-tile access. Under
// BlockedMorton with b == m.Block the tile is contiguous — one streaming
// span; the caller should use TileCharge for the general case.
func (m *Matrix) BlockSpan(row, col int) (off, size int64) {
	if m.Kind != BlockedMorton {
		panic("layout: BlockSpan requires a BlockedMorton matrix")
	}
	b := m.Block
	idx := int64(MortonIndex(row/b, col/b)) * int64(b) * int64(b)
	return idx * 8, int64(b) * int64(b) * 8
}

// RowSpan reports the (byte offset, byte length) of the length-w row
// segment starting at (row, col), valid for RowMajor matrices and for
// within-block rows of BlockedMorton matrices.
func (m *Matrix) RowSpan(row, col, w int) (off, size int64) {
	switch m.Kind {
	case RowMajor:
		return int64(row*m.N+col) * 8, int64(w) * 8
	case BlockedMorton:
		b := m.Block
		if col/b != (col+w-1)/b {
			panic("layout: RowSpan crosses a block boundary")
		}
		return int64(m.Index(row, col)) * 8, int64(w) * 8
	default:
		panic("layout: RowSpan unsupported for cell Z-Morton")
	}
}

// BindQuadrantsToSockets binds the pages of each quadrant of a
// BlockedMorton matrix to a socket: quadrant q (in Z order: TL, TR, BL, BR)
// goes to sockets[q % len(sockets)]. Under the Z curve each quadrant is one
// contiguous quarter of the array, which is what makes this binding
// possible at page granularity — the point of the transformation.
func (m *Matrix) BindQuadrantsToSockets(sockets []int) {
	if m.Kind != BlockedMorton {
		panic("layout: quadrant binding requires BlockedMorton")
	}
	if len(sockets) == 0 {
		return
	}
	quarter := m.R.Size() / 4
	for q := 0; q < 4; q++ {
		m.R.BindRange(int64(q)*quarter, quarter, sockets[q%len(sockets)])
	}
}

// FillRandom initializes the matrix with a cheap deterministic pattern in
// logical (row, col) space, identical across layouts so results are
// comparable.
func (m *Matrix) FillRandom(seed int64) {
	s := uint64(seed)*2862933555777941757 + 3037000493
	for r := 0; r < m.N; r++ {
		for c := 0; c < m.N; c++ {
			s = s*6364136223846793005 + 1442695040888963407
			m.Set(r, c, float64(int64(s>>33)%2048-1024)/256.0)
		}
	}
}

// Equal reports whether two matrices hold the same logical values within
// eps, regardless of layout.
func Equal(a, b *Matrix, eps float64) bool {
	if a.N != b.N {
		return false
	}
	for r := 0; r < a.N; r++ {
		for c := 0; c < a.N; c++ {
			d := a.At(r, c) - b.At(r, c)
			if d < -eps || d > eps {
				return false
			}
		}
	}
	return true
}

// Grid renders the linear indices of an n x n matrix under the given layout
// as rows of numbers — the format of the paper's Fig. 6 tables.
func Grid(n int, kind Kind, block int) string {
	m := Matrix{N: n, Block: block, Kind: kind}
	var b strings.Builder
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%2d", m.Index(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
