package faultinject

import (
	"testing"

	"repro/internal/core"
)

// tree spawns a binary tree of tasks: 2^(depth+1)-1 entries including the
// root, in a deterministic serial-elision order.
func tree(depth int) core.Task {
	return func(ctx core.Context) {
		if depth == 0 {
			ctx.Compute(1)
			return
		}
		ctx.Spawn(tree(depth - 1))
		ctx.Spawn(tree(depth - 1))
		ctx.Sync()
	}
}

func TestTargetMatching(t *testing.T) {
	cases := []struct {
		name   string
		target Target
		bench  string
		policy string
		p      int
		seed   int64
		serial bool
		want   bool
	}{
		{"zero target matches parallel", Target{}, "fib", "cilk", 8, 1, false, true},
		{"zero target matches serial", Target{}, "fib", "", 1, 1, true, true},
		{"bench match", Target{Bench: "fib"}, "fib", "cilk", 8, 1, false, true},
		{"bench mismatch", Target{Bench: "lu"}, "fib", "cilk", 8, 1, false, false},
		{"policy mismatch", Target{Policy: "numaws"}, "fib", "cilk", 8, 1, false, false},
		{"p mismatch", Target{P: 16}, "fib", "cilk", 8, 1, false, false},
		{"seed match", Target{Seed: 3}, "fib", "cilk", 8, 3, false, true},
		{"seed mismatch", Target{Seed: 3}, "fib", "cilk", 8, 1, false, false},
		{"parallel-only rejects serial", Target{Mode: ParallelOnly}, "fib", "", 1, 1, true, false},
		{"serial-only rejects parallel", Target{Mode: SerialOnly}, "fib", "cilk", 8, 1, false, false},
		{"serial-only accepts serial", Target{Mode: SerialOnly}, "fib", "", 1, 1, true, true},
		{"full tuple", Target{Bench: "fib", Policy: "cilk", P: 8, Seed: 2, Mode: ParallelOnly}, "fib", "cilk", 8, 2, false, true},
	}
	for _, c := range cases {
		if got := c.target.matches(c.bench, c.policy, c.p, c.seed, c.serial); got != c.want {
			t.Errorf("%s: matches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestForRunDisarmedIsNil(t *testing.T) {
	Disarm()
	if p := ForRun("fib", "cilk", 8, 1, false); p != nil {
		t.Errorf("disarmed ForRun = %+v, want nil", p)
	}
}

func TestForRunTripBudget(t *testing.T) {
	Arm(Plan{Target: Target{Bench: "fib"}, Kind: HangAtTask, Trips: 2})
	defer Disarm()
	if p := ForRun("lu", "cilk", 8, 1, false); p != nil {
		t.Fatal("non-matching run consumed a trip")
	}
	for i := 0; i < 2; i++ {
		if p := ForRun("fib", "cilk", 8, 1, false); p == nil {
			t.Fatalf("trip %d: ForRun = nil, want plan", i)
		}
	}
	if p := ForRun("fib", "cilk", 8, 1, false); p != nil {
		t.Error("trip budget exhausted but ForRun still returned the plan")
	}
}

func TestInstrumentPanicsAtExactTaskIndex(t *testing.T) {
	// The same fault site on every execution: instrument the same tree
	// twice and require the identical Injected value.
	for round := 0; round < 2; round++ {
		plan := &Plan{Kind: PanicAtTask, N: 5}
		rt := core.NewRuntime(core.DefaultConfig(1, nil))
		got := func() (p any) {
			defer func() { p = recover() }()
			rt.RunSerial(Instrument(plan, tree(3)))
			return nil
		}()
		inj, ok := got.(Injected)
		if !ok {
			t.Fatalf("round %d: recovered %v (%T), want Injected", round, got, got)
		}
		if inj.Task != 5 {
			t.Fatalf("round %d: panicked at task %d, want 5", round, inj.Task)
		}
	}
}

func TestInstrumentCountsWholeTree(t *testing.T) {
	// Index past the last task: the fault never trips and the computation
	// completes untouched.
	plan := &Plan{Kind: PanicAtTask, N: 15} // tree(3) has 15 task entries
	rt := core.NewRuntime(core.DefaultConfig(1, nil))
	rep := rt.RunSerial(Instrument(plan, tree(3)))
	if rep.Time != 8 {
		t.Errorf("instrumented-but-untripped run: Time = %d, want 8 (eight leaf Computes)", rep.Time)
	}
}

func TestInstrumentNilPlanAndFailVerifyAreIdentity(t *testing.T) {
	root := tree(1)
	if got := Instrument(nil, root); got == nil {
		t.Fatal("Instrument(nil) = nil")
	}
	plan := &Plan{Kind: FailVerify}
	rt := core.NewRuntime(core.DefaultConfig(1, nil))
	rep := rt.RunSerial(Instrument(plan, tree(3)))
	if rep.Time != 8 {
		t.Errorf("FailVerify instrumentation must not perturb the run: Time = %d, want 8", rep.Time)
	}
}

func TestCancelGridInvokesCancel(t *testing.T) {
	called := 0
	plan := &Plan{Kind: CancelGrid, N: 2, Cancel: func() { called++ }}
	rt := core.NewRuntime(core.DefaultConfig(1, nil))
	rt.RunSerial(Instrument(plan, tree(3)))
	if called != 1 {
		t.Errorf("Cancel called %d times, want 1", called)
	}
}

func TestTaskIndexForDeterministicAndBounded(t *testing.T) {
	for seed := int64(-3); seed < 50; seed++ {
		a := TaskIndexFor(seed, 37)
		b := TaskIndexFor(seed, 37)
		if a != b {
			t.Fatalf("seed %d: %d != %d", seed, a, b)
		}
		if a < 0 || a >= 37 {
			t.Fatalf("seed %d: index %d out of [0,37)", seed, a)
		}
	}
	if TaskIndexFor(1, 0) != 0 {
		t.Error("max<=0 must clamp to 0")
	}
}
