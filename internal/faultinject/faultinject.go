// Package faultinject deterministically breaks chosen simulation runs so
// tests can prove the harness's failure-containment invariants: panic
// isolation, quarantine of pooled resources, deadline interrupts,
// transient-only retry, and journal resume. It is a no-op unless armed —
// the disarmed fast path in the harness is a single atomic load — and every
// injected fault is a pure function of the armed Plan and the run key, so
// an injected grid misbehaves identically on every execution and under
// -race.
//
// The package is compiled into the harness but reachable only through Arm,
// which only tests call; production grids never trip it.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// Kind selects the injected failure.
type Kind int

// The injectable faults.
const (
	// PanicAtTask panics with an Injected value when the run enters its
	// Target.N'th task — the "buggy registered benchmark" case. A
	// deterministic failure: never retried.
	PanicAtTask Kind = iota
	// HangAtTask turns the N'th task into an endless spawn loop. The run
	// keeps generating scheduler events, so the engine's amortized
	// interrupt poll fires once the run deadline expires — modelling a
	// wedged-but-live computation, the transient (retryable) failure.
	HangAtTask
	// FailVerify makes the run's verification report a mismatch even
	// though the computation is correct. Deterministic: never retried.
	FailVerify
	// CancelGrid calls Plan.Cancel when the run enters its N'th task,
	// cancelling the whole grid mid-flight — the killed-sweep case the
	// journal's resume path exists for.
	CancelGrid
)

// Mode restricts a Target to one execution mode.
type Mode int

// Target modes.
const (
	AnyMode      Mode = iota // parallel and serial runs alike
	ParallelOnly             // simulated parallel runs
	SerialOnly               // serial-elision (reference) runs
)

// Target selects which runs a Plan affects. Zero-valued fields are
// wildcards: the zero Target matches every run.
type Target struct {
	Bench  string // benchmark name; "" matches all
	Policy string // policy name; "" matches all (serial runs carry "")
	P      int    // worker count; 0 matches all
	Seed   int64  // scheduler seed; 0 matches all
	Mode   Mode
}

func (t Target) matches(bench, policy string, p int, seed int64, serial bool) bool {
	if t.Bench != "" && t.Bench != bench {
		return false
	}
	if t.Policy != "" && t.Policy != policy {
		return false
	}
	if t.P != 0 && t.P != p {
		return false
	}
	if t.Seed != 0 && t.Seed != seed {
		return false
	}
	switch t.Mode {
	case ParallelOnly:
		return !serial
	case SerialOnly:
		return serial
	}
	return true
}

// Plan is one armed fault: which runs to affect, how, and how often.
type Plan struct {
	Target
	Kind Kind
	// N is the zero-based task-entry index the fault trips at (PanicAtTask,
	// HangAtTask, CancelGrid). Use TaskIndexFor for a seeded choice.
	N int
	// Trips bounds how many matching runs are affected; 0 means every one.
	// Trips=1 is the transient-failure shape: the first attempt hangs, the
	// retry runs clean.
	Trips int
	// Cancel is invoked by CancelGrid; typically a context.CancelFunc.
	Cancel func()
}

// armed pairs the active plan with its consumed-trip count.
type armed struct {
	plan    Plan
	matched atomic.Int64
}

var current atomic.Pointer[armed]

// Arm activates a plan, replacing any previous one. Tests must pair it
// with a deferred Disarm; plans must not be armed concurrently.
func Arm(p Plan) { current.Store(&armed{plan: p}) }

// Disarm deactivates injection; every run is clean again.
func Disarm() { current.Store(nil) }

// ForRun reports the plan affecting the given run, or nil. A plan with a
// trip budget is consumed per matching call: once the budget is spent,
// later matches — retries of the faulted run included — run clean.
func ForRun(bench, policy string, p int, seed int64, serial bool) *Plan {
	a := current.Load()
	if a == nil {
		return nil
	}
	if !a.plan.matches(bench, policy, p, seed, serial) {
		return nil
	}
	if a.plan.Trips > 0 && a.matched.Add(1) > int64(a.plan.Trips) {
		return nil
	}
	return &a.plan
}

// Injected is the panic value PanicAtTask raises. On parallel runs the
// core layer relays task panics as strings, so tests match on the message
// (errors.As is not available across the relay); Error keeps it
// recognizable either way.
type Injected struct {
	Task int
}

// Error implements error, making the raw panic value classifiable too.
func (i Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at task %d", i.Task)
}

// Instrument wraps root so the plan's task-indexed fault trips during the
// run. A nil plan, and kinds that act elsewhere (FailVerify), return root
// unchanged. The task counter needs no lock: the simulator's strict
// handoff (and the serial elision's single goroutine) run exactly one task
// at a time.
func Instrument(plan *Plan, root core.Task) core.Task {
	if plan == nil {
		return root
	}
	switch plan.Kind {
	case PanicAtTask, HangAtTask, CancelGrid:
		in := &injector{plan: plan}
		return in.wrap(root)
	}
	return root
}

// injector counts task entries across one instrumented run.
type injector struct {
	plan  *Plan
	tasks int
}

func (in *injector) wrap(t core.Task) core.Task {
	return func(ctx core.Context) {
		wc := ictx{Context: ctx, in: in}
		in.enter(wc)
		t(wc)
	}
}

// enter trips the fault when the counter reaches the plan's task index.
func (in *injector) enter(ctx core.Context) {
	idx := in.tasks
	in.tasks++
	if idx != in.plan.N {
		return
	}
	switch in.plan.Kind {
	case PanicAtTask:
		panic(Injected{Task: idx})
	case HangAtTask:
		// An endless spawn loop, not a compute spin: task bodies yield to
		// the engine only at spawn/sync edges, so spinning inside Compute
		// would wedge the engine itself. Spawning keeps events (and the
		// serial elision's Spawn-edge polls) flowing, which is exactly
		// what lets the deadline interrupt abort the run.
		for {
			ctx.Spawn(func(core.Context) {})
			ctx.Sync()
		}
	case CancelGrid:
		if in.plan.Cancel != nil {
			in.plan.Cancel()
		}
	}
}

// ictx wraps every child task of an instrumented task, so the entry
// counter sees the whole computation in deterministic execution order.
type ictx struct {
	core.Context
	in *injector
}

func (c ictx) Spawn(t core.Task)          { c.Context.Spawn(c.in.wrap(t)) }
func (c ictx) SpawnAt(p int, t core.Task) { c.Context.SpawnAt(p, c.in.wrap(t)) }
func (c ictx) Call(t core.Task)           { c.Context.Call(c.in.wrap(t)) }

// TaskIndexFor derives a deterministic task index in [0, max) from a seed
// (splitmix64), so a suite of injection tests can spread fault sites
// across runs without hand-picking indexes.
func TaskIndexFor(seed int64, max int) int {
	if max <= 0 {
		return 0
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b290
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(max))
}
