// Package metrics derives and formats the paper's reported quantities: spawn
// overhead T1/TS, scalability T1/TP, work inflation W_P/T1, and the
// work/scheduling/idle time breakdown, rendered as the rows of Fig. 3,
// Fig. 7 (table), Fig. 8 (table) and Fig. 9.
package metrics

import (
	"fmt"
	"strings"
)

// PlatformResult is one platform's measurements for one benchmark.
type PlatformResult struct {
	T1 int64 // one-worker time
	TP int64 // P-worker time
	WP int64 // summed work time at P workers
	SP int64 // summed scheduling time at P workers
	IP int64 // summed idle time at P workers
	W1 int64 // work time at one worker (= T1)
}

// SpawnOverhead is T1/TS.
func (r *PlatformResult) SpawnOverhead(ts int64) float64 { return ratio(r.T1, ts) }

// Scalability is T1/TP.
func (r *PlatformResult) Scalability() float64 { return ratio(r.T1, r.TP) }

// WorkInflation is WP/T1: how much the total useful-work time grew going
// parallel.
func (r *PlatformResult) WorkInflation() float64 { return ratio(r.WP, r.T1) }

// RowError describes why a benchmark's measurement failed: the failed
// run's key and the harness's failure classification. It lives here rather
// than in the harness so renderers and exporters can carry it without an
// import cycle.
type RowError struct {
	Bench  string
	Policy string // "" for serial-reference failures
	P      int
	Seed   int64
	Kind   string // the harness taxonomy: panic, verify, timeout, cancel
	Msg    string
}

// Error implements error.
func (e *RowError) Error() string {
	mode := e.Policy
	if mode == "" {
		mode = "serial"
	}
	return fmt.Sprintf("%s [%s P=%d seed=%d]: %s: %s", e.Bench, mode, e.P, e.Seed, e.Kind, e.Msg)
}

// Row is one benchmark's full measurement across both platforms.
type Row struct {
	Name   string
	Input  string // "input size / base case size" description
	TS     int64
	Cilk   PlatformResult
	NUMAWS PlatformResult
	P      int // worker count of the TP/WP/SP/IP columns
	// Err, when non-nil, marks the row as failed: one of its runs died
	// (panic, deadline, verify mismatch) and containment turned the loss
	// of this row into an error row instead of the loss of the grid. The
	// measurement fields are zero; renderers print a diagnostic line and
	// exporters carry the error alongside the identity fields.
	Err *RowError
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// cyc renders a cycle count compactly.
func cyc(v int64) string {
	switch {
	case v >= 10_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Table7 renders the Fig. 7 table: TS, then T1 (spawn overhead) and TP
// (scalability) per platform. Times are virtual cycles, not seconds — the
// parenthesized ratios are the comparable quantities.
func Table7(rows []Row) string {
	var b strings.Builder
	p := 0
	if len(rows) > 0 {
		p = rows[0].P
	}
	fmt.Fprintf(&b, "Fig. 7: execution times (virtual cycles); spawn overhead under T1, scalability under T%d\n", p)
	fmt.Fprintf(&b, "%-12s %-14s %10s | %10s %-8s %10s %-8s | %10s %-8s %10s %-8s\n",
		"benchmark", "input/base", "TS",
		"Cilk T1", "(T1/TS)", fmt.Sprintf("Cilk T%d", p), "(T1/TP)",
		"NWS T1", "(T1/TS)", fmt.Sprintf("NWS T%d", p), "(T1/TP)")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-12s %-14s FAILED: %v\n", r.Name, r.Input, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-12s %-14s %10s | %10s (%.2fx)  %10s (%.2fx)  | %10s (%.2fx)  %10s (%.2fx)\n",
			r.Name, r.Input, cyc(r.TS),
			cyc(r.Cilk.T1), r.Cilk.SpawnOverhead(r.TS), cyc(r.Cilk.TP), r.Cilk.Scalability(),
			cyc(r.NUMAWS.T1), r.NUMAWS.SpawnOverhead(r.TS), cyc(r.NUMAWS.TP), r.NUMAWS.Scalability())
	}
	return b.String()
}

// Table8 renders the Fig. 8 table: T1, W_P (work inflation), S_P, I_P per
// platform.
func Table8(rows []Row) string {
	var b strings.Builder
	p := 0
	if len(rows) > 0 {
		p = rows[0].P
	}
	fmt.Fprintf(&b, "Fig. 8: work/scheduling/idle breakdown at P=%d; work inflation (W%d/T1) in parentheses\n", p, p)
	fmt.Fprintf(&b, "%-12s | %10s %10s %-8s %8s %8s | %10s %10s %-8s %8s %8s\n",
		"benchmark",
		"Cilk T1", fmt.Sprintf("W%d", p), "(infl)", fmt.Sprintf("S%d", p), fmt.Sprintf("I%d", p),
		"NWS T1", fmt.Sprintf("W%d", p), "(infl)", fmt.Sprintf("S%d", p), fmt.Sprintf("I%d", p))
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-12s | FAILED: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-12s | %10s %10s (%.2fx)  %8s %8s | %10s %10s (%.2fx)  %8s %8s\n",
			r.Name,
			cyc(r.Cilk.T1), cyc(r.Cilk.WP), r.Cilk.WorkInflation(), cyc(r.Cilk.SP), cyc(r.Cilk.IP),
			cyc(r.NUMAWS.T1), cyc(r.NUMAWS.WP), r.NUMAWS.WorkInflation(), cyc(r.NUMAWS.SP), cyc(r.NUMAWS.IP))
	}
	return b.String()
}

// Fig3 renders the normalized total processing times of the Cilk Plus runs:
// for P=1 the normalized T1, for P=P the work/scheduling/idle components,
// all normalized to TS.
func Fig3(rows []Row) string {
	var b strings.Builder
	p := 0
	if len(rows) > 0 {
		p = rows[0].P
	}
	fmt.Fprintf(&b, "Fig. 3: total processing time on Cilk Plus normalized to TS (P=1 and P=%d)\n", p)
	fmt.Fprintf(&b, "%-12s %10s | %10s %10s %10s %10s\n",
		"benchmark", "P=1", fmt.Sprintf("P=%d tot", p), "work", "sched", "idle")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-12s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		ts := float64(r.TS)
		if ts == 0 {
			continue
		}
		w := float64(r.Cilk.WP) / ts
		s := float64(r.Cilk.SP) / ts
		i := float64(r.Cilk.IP) / ts
		fmt.Fprintf(&b, "%-12s %10.2f | %10.2f %10.2f %10.2f %10.2f\n",
			r.Name, float64(r.Cilk.T1)/ts, w+s+i, w, s, i)
	}
	return b.String()
}

// Series is one benchmark's scalability curve for Fig. 9.
type Series struct {
	Name string
	P    []int
	TP   []int64 // TP[i] corresponds to P[i]
}

// Speedup reports T1/TP per point (P[0] must be 1).
func (s *Series) Speedup() []float64 {
	out := make([]float64, len(s.TP))
	if len(s.TP) == 0 {
		return out
	}
	t1 := s.TP[0]
	for i, tp := range s.TP {
		out[i] = ratio(t1, tp)
	}
	return out
}

// Fig9 renders the scalability curves as a table of T1/TP values.
func Fig9(series []Series) string {
	var b strings.Builder
	b.WriteString("Fig. 9: scalability (T1/TP) on NUMA-WS; workers packed onto the fewest sockets\n")
	if len(series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", "benchmark")
	for _, p := range series[0].P {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("P=%d", p))
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-12s", s.Name)
		for _, sp := range s.Speedup() {
			fmt.Fprintf(&b, " %8.2f", sp)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
