package metrics

// The CSV-quoting audit, pinned: benchmark Input strings are free-form
// ("16384x32/n=128" today, but registry benchmarks choose their own) and
// one rename away from containing commas or quotes. The writers go
// through encoding/csv, so such fields must round-trip intact through a
// strict CSV reader — this test is the contract that keeps a naive
// fmt.Fprintf writer from ever sneaking back in.

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestRowsCSVRoundTripsHostileFields(t *testing.T) {
	rows := []Row{
		{
			Name:  `bench,with "quotes"`,
			Input: `16384x32,"q"/n=128`,
			P:     8, TS: 100,
			Cilk:   PlatformResult{T1: 110, TP: 25, WP: 80, SP: 5, IP: 15},
			NUMAWS: PlatformResult{T1: 105, TP: 20, WP: 70, SP: 4, IP: 6},
		},
		{
			Name:  "plain",
			Input: "has\nnewline and ,comma",
			P:     4, TS: 50,
			Cilk:   PlatformResult{T1: 55, TP: 15},
			NUMAWS: PlatformResult{T1: 52, TP: 12},
		},
	}
	var b strings.Builder
	if err := WriteRowsCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("written CSV does not parse back: %v\n%s", err, b.String())
	}
	if len(records) != 1+len(rows) {
		t.Fatalf("%d records, want header + %d rows", len(records), len(rows))
	}
	for i, row := range rows {
		rec := records[1+i]
		if rec[0] != row.Name || rec[1] != row.Input {
			t.Errorf("row %d identity fields = (%q, %q), want (%q, %q)",
				i, rec[0], rec[1], row.Name, row.Input)
		}
	}
	if got := records[1][3]; got != "100" {
		t.Errorf("row 0 ts = %q, want 100 (hostile fields shifted columns?)", got)
	}
}

func TestSweepsCSVRoundTripsHostileFields(t *testing.T) {
	sweeps := []Sweep{{
		Bench:    `fft,"banded"`,
		Topology: "weird,topo",
		Sockets:  2, Cores: 8,
		P:  []int{1, 8},
		TP: []int64{1000, 200},
	}}
	var b strings.Builder
	if err := WriteSweepsCSV(&b, sweeps); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("written CSV does not parse back: %v\n%s", err, b.String())
	}
	if len(records) != 3 {
		t.Fatalf("%d records, want header + 2 points", len(records))
	}
	for i, rec := range records[1:] {
		if rec[0] != sweeps[0].Bench || rec[1] != sweeps[0].Topology {
			t.Errorf("point %d identity = (%q, %q), want (%q, %q)",
				i, rec[0], rec[1], sweeps[0].Bench, sweeps[0].Topology)
		}
	}
}

func TestSeriesCSVRoundTripsHostileFields(t *testing.T) {
	series := []Series{{Name: `curve,"x"`, P: []int{1, 4}, TP: []int64{100, 30}}}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, series); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("written CSV does not parse back: %v\n%s", err, b.String())
	}
	if len(records) != 3 || records[1][0] != series[0].Name {
		t.Fatalf("series identity did not round-trip: %+v", records)
	}
}
