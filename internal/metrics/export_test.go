package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func exportFixtures() ([]Row, []Series) {
	rows := []Row{
		{
			Name: "heat", Input: "128x128x8/8 rows", P: 32, TS: 1000,
			Cilk:   PlatformResult{T1: 1100, TP: 200, WP: 1500, SP: 300, IP: 400, W1: 1100},
			NUMAWS: PlatformResult{T1: 1050, TP: 100, WP: 1200, SP: 150, IP: 250, W1: 1050},
		},
		{
			Name: "cg", Input: "1024x16/n=16", P: 32, TS: 2000,
			Cilk:   PlatformResult{T1: 2400, TP: 500, WP: 3000, SP: 600, IP: 700, W1: 2400},
			NUMAWS: PlatformResult{T1: 2200, TP: 250, WP: 2500, SP: 300, IP: 350, W1: 2200},
		},
	}
	series := []Series{
		{Name: "heat", P: []int{1, 8, 32}, TP: []int64{1000, 150, 50}},
	}
	return rows, series
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rows, series := exportFixtures()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows, series); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []struct {
			Name string `json:"name"`
			P    int    `json:"p"`
			TS   int64  `json:"ts"`
			Cilk struct {
				T1            int64   `json:"t1"`
				SpawnOverhead float64 `json:"spawn_overhead"`
				Scalability   float64 `json:"scalability"`
				WorkInflation float64 `json:"work_inflation"`
			} `json:"cilk"`
			NUMAWS struct {
				TP int64 `json:"tp"`
			} `json:"numaws"`
		} `json:"rows"`
		Series []struct {
			Name   string `json:"name"`
			Points []struct {
				P       int     `json:"p"`
				TP      int64   `json:"tp"`
				Speedup float64 `json:"speedup"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Rows) != 2 || len(doc.Series) != 1 {
		t.Fatalf("got %d rows, %d series; want 2, 1", len(doc.Rows), len(doc.Series))
	}
	r := doc.Rows[0]
	if r.Name != "heat" || r.TS != 1000 || r.Cilk.T1 != 1100 || r.NUMAWS.TP != 100 {
		t.Errorf("row 0 fields wrong: %+v", r)
	}
	if r.Cilk.SpawnOverhead != 1.1 || r.Cilk.Scalability != 5.5 {
		t.Errorf("derived ratios wrong: overhead=%v scalability=%v", r.Cilk.SpawnOverhead, r.Cilk.Scalability)
	}
	s := doc.Series[0]
	if s.Name != "heat" || len(s.Points) != 3 {
		t.Fatalf("series wrong: %+v", s)
	}
	if s.Points[2].P != 32 || s.Points[2].TP != 50 || s.Points[2].Speedup != 20 {
		t.Errorf("series point wrong: %+v", s.Points[2])
	}
}

func TestWriteJSONOmitsEmptySections(t *testing.T) {
	rows, _ := exportFixtures()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "series") {
		t.Errorf("empty series section should be omitted:\n%s", buf.String())
	}
}

func TestWriteRowsCSV(t *testing.T) {
	rows, _ := exportFixtures()
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want header + 2 rows", len(recs))
	}
	header, rec := recs[0], recs[1]
	if len(header) != 21 || len(rec) != 21 {
		t.Fatalf("header has %d fields, record %d; want 21 (incl. trailing error)", len(header), len(rec))
	}
	if header[len(header)-1] != "error" || rec[len(rec)-1] != "" {
		t.Errorf("trailing error column: header %q value %q, want \"error\" and empty", header[len(header)-1], rec[len(rec)-1])
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return rec[i]
			}
		}
		t.Fatalf("no column %q in %v", name, header)
		return ""
	}
	if col("name") != "heat" || col("ts") != "1000" || col("cilk_t1") != "1100" {
		t.Errorf("wrong identity columns: %v", rec)
	}
	if col("cilk_spawn_overhead") != "1.1" || col("numaws_tp") != "100" {
		t.Errorf("wrong measurement columns: %v", rec)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	_, series := exportFixtures()
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("%d records, want header + 3 points", len(recs))
	}
	want := []string{"heat", "32", "50", "20"}
	got := recs[3]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("last point = %v, want %v", got, want)
		}
	}
}

func TestWriteCSVBothSections(t *testing.T) {
	rows, series := exportFixtures()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows, series); err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(buf.String(), "\n\n")
	if len(parts) != 2 {
		t.Fatalf("want two blank-line-separated CSV tables, got %d:\n%s", len(parts), buf.String())
	}
	if !strings.HasPrefix(parts[0], "name,input,p,ts,") {
		t.Errorf("first table should be rows:\n%s", parts[0])
	}
	if !strings.HasPrefix(parts[1], "name,p,tp,speedup") {
		t.Errorf("second table should be series:\n%s", parts[1])
	}
}
