package metrics

// The topology-sweep surface: speedup-vs-worker-count curves measured on a
// grid of machine shapes — Fig. 9's experiment opened along a new axis.

import (
	"fmt"
	"strings"
)

// Sweep is one benchmark's scalability curve on one machine topology.
type Sweep struct {
	Bench    string
	Topology string // the spec the machine was named by (preset or SxC)
	Sockets  int
	Cores    int // total cores; the largest meaningful P
	P        []int
	TP       []int64 // TP[i] corresponds to P[i]
}

// Speedup reports T1/TP per point (P[0] must be 1).
func (s *Sweep) Speedup() []float64 {
	out := make([]float64, len(s.TP))
	if len(s.TP) == 0 {
		return out
	}
	t1 := s.TP[0]
	for i, tp := range s.TP {
		out[i] = ratio(t1, tp)
	}
	return out
}

// SweepTable renders the per-topology speedup tables: one Fig. 9-style block
// per topology, in first-appearance order, so curves measured on the same
// machine shape line up under one point axis.
func SweepTable(sweeps []Sweep) string {
	var b strings.Builder
	b.WriteString("Sweep: NUMA-WS speedup (T1/TP) by machine topology; workers packed onto the fewest sockets\n")
	var order []string
	byTopo := map[string][]Sweep{}
	for _, s := range sweeps {
		if _, ok := byTopo[s.Topology]; !ok {
			order = append(order, s.Topology)
		}
		byTopo[s.Topology] = append(byTopo[s.Topology], s)
	}
	for _, topo := range order {
		group := byTopo[topo]
		fmt.Fprintf(&b, "\n-- %s (%d sockets x %d cores) --\n",
			topo, group[0].Sockets, group[0].Cores/max(group[0].Sockets, 1))
		fmt.Fprintf(&b, "%-12s", "benchmark")
		for _, p := range group[0].P {
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("P=%d", p))
		}
		b.WriteByte('\n')
		for _, s := range group {
			fmt.Fprintf(&b, "%-12s", s.Bench)
			for _, sp := range s.Speedup() {
				fmt.Fprintf(&b, " %8.2f", sp)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
