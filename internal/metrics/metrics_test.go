package metrics

import (
	"strings"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{
			Name: "cilksort", Input: "1048576/4096", TS: 1000, P: 32,
			Cilk:   PlatformResult{T1: 1005, TP: 47, WP: 1540, SP: 10, IP: 30, W1: 1005},
			NUMAWS: PlatformResult{T1: 1030, TP: 39, WP: 1210, SP: 15, IP: 20, W1: 1030},
		},
		{
			Name: "heat", Input: "512x512", TS: 2000, P: 32,
			Cilk:   PlatformResult{T1: 1990, TP: 330, WP: 10430, SP: 26, IP: 71, W1: 1990},
			NUMAWS: PlatformResult{T1: 1990, TP: 143, WP: 4478, SP: 10, IP: 45, W1: 1990},
		},
	}
}

func TestPlatformResultRatios(t *testing.T) {
	r := PlatformResult{T1: 1070, TP: 107, WP: 2140}
	if got := r.SpawnOverhead(1000); got != 1.07 {
		t.Errorf("SpawnOverhead = %f, want 1.07", got)
	}
	if got := r.Scalability(); got != 10 {
		t.Errorf("Scalability = %f, want 10", got)
	}
	if got := r.WorkInflation(); got != 2 {
		t.Errorf("WorkInflation = %f, want 2", got)
	}
}

func TestRatioZeroDenominator(t *testing.T) {
	r := PlatformResult{T1: 100}
	if got := r.Scalability(); got != 0 {
		t.Errorf("Scalability with TP=0 = %f, want 0", got)
	}
	if got := r.SpawnOverhead(0); got != 0 {
		t.Errorf("SpawnOverhead with TS=0 = %f, want 0", got)
	}
}

func TestTable7Rendering(t *testing.T) {
	out := Table7(sampleRows())
	for _, want := range []string{
		"Fig. 7", "cilksort", "heat", "T32",
		"(1.00x)",  // cilksort Cilk spawn overhead 1005/1000
		"(21.38x)", // cilksort Cilk scalability 1005/47
		"(26.41x)", // cilksort NUMA-WS scalability 1030/39
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable8Rendering(t *testing.T) {
	out := Table8(sampleRows())
	for _, want := range []string{
		"Fig. 8", "W32", "S32", "I32",
		"(1.53x)", // cilksort Cilk inflation 1540/1005
		"(5.24x)", // heat Cilk inflation 10430/1990
		"(2.25x)", // heat NUMA-WS inflation 4478/1990
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table8 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Rendering(t *testing.T) {
	out := Fig3(sampleRows())
	for _, want := range []string{"Fig. 3", "normalized to TS", "P=32", "cilksort", "heat"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
	// heat P=1 bar: T1/TS = 1990/2000 = 0.99 or 1.00.
	if !strings.Contains(out, "0.99") && !strings.Contains(out, "1.00") {
		t.Errorf("Fig3 missing the heat P=1 bar:\n%s", out)
	}
}

func TestFig3SkipsZeroTS(t *testing.T) {
	rows := []Row{{Name: "broken", TS: 0, P: 32}}
	out := Fig3(rows)
	if strings.Contains(out, "broken") {
		t.Errorf("Fig3 rendered a zero-TS row:\n%s", out)
	}
}

func TestSeriesSpeedup(t *testing.T) {
	s := Series{Name: "cg", P: []int{1, 8, 32}, TP: []int64{3200, 400, 100}}
	sp := s.Speedup()
	want := []float64{1, 8, 32}
	for i := range want {
		if sp[i] != want[i] {
			t.Errorf("Speedup[%d] = %f, want %f", i, sp[i], want[i])
		}
	}
	empty := Series{}
	if got := empty.Speedup(); len(got) != 0 {
		t.Errorf("empty Speedup = %v, want empty", got)
	}
}

func TestFig9Rendering(t *testing.T) {
	series := []Series{
		{Name: "cg", P: []int{1, 8, 32}, TP: []int64{3200, 400, 100}},
		{Name: "heat", P: []int{1, 8, 32}, TP: []int64{1000, 200, 80}},
	}
	out := Fig9(series)
	for _, want := range []string{"Fig. 9", "P=1", "P=8", "P=32", "cg", "heat", "32.00", "12.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 output missing %q:\n%s", want, out)
		}
	}
	if got := Fig9(nil); !strings.Contains(got, "Fig. 9") {
		t.Errorf("Fig9(nil) = %q", got)
	}
}

func TestCycleFormatting(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{
		{532, "532"},
		{15300, "15.3k"},
		{12_500_000, "12.5M"},
		{73_000_000_000, "73.0G"},
	} {
		if got := cyc(tc.v); got != tc.want {
			t.Errorf("cyc(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
