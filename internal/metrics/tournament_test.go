package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// fourCells is a 2-policy x 2-bench x 1-topology tournament with known
// arithmetic: "a" wins fib (100 vs 200) and loses heat (300 vs 150), "b"
// the reverse, so both score geomean(1, 2) = sqrt(2) and the tie breaks
// on the policy name.
func fourCells() []TournamentCell {
	return []TournamentCell{
		{Policy: "a", Bench: "fib", Topology: "2x4", TP: 100},
		{Policy: "a", Bench: "heat", Topology: "2x4", TP: 300},
		{Policy: "b", Bench: "fib", Topology: "2x4", TP: 200},
		{Policy: "b", Bench: "heat", Topology: "2x4", TP: 150},
	}
}

func TestNewTournamentScoresAndRanks(t *testing.T) {
	tour, err := NewTournament([]TournamentCell{
		{Policy: "slow", Bench: "fib", Topology: "2x4", TP: 220},
		{Policy: "fast", Bench: "fib", Topology: "2x4", TP: 100},
		{Policy: "slow", Bench: "fib", Topology: "4x8", TP: 90},
		{Policy: "fast", Bench: "fib", Topology: "4x8", TP: 45},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tour.Benches, []string{"fib"}) ||
		!reflect.DeepEqual(tour.Topologies, []string{"2x4", "4x8"}) {
		t.Errorf("axes: %v / %v", tour.Benches, tour.Topologies)
	}
	if tour.Winner() != "fast" {
		t.Fatalf("winner %q, want fast", tour.Winner())
	}
	fast, slow := tour.Entries[0], tour.Entries[1]
	if fast.Rank != 1 || slow.Rank != 2 {
		t.Errorf("ranks %d/%d, want 1/2", fast.Rank, slow.Rank)
	}
	if fast.Score != 1 {
		t.Errorf("fast won every cell but scores %v", fast.Score)
	}
	// slow's norms are 2.2 and 2.0; geomean = sqrt(4.4).
	if want := math.Sqrt(2.2 * 2.0); math.Abs(slow.Score-want) > 1e-12 {
		t.Errorf("slow score %v, want %v", slow.Score, want)
	}
	if len(slow.Cells) != 2 || slow.Cells[0].Norm != 2.2 || slow.Cells[1].Norm != 2.0 {
		t.Errorf("slow cells: %+v", slow.Cells)
	}
}

func TestNewTournamentTieBreaksByName(t *testing.T) {
	tour, err := NewTournament(fourCells())
	if err != nil {
		t.Fatal(err)
	}
	if tour.Entries[0].Score != tour.Entries[1].Score {
		t.Fatalf("scores diverge: %+v", tour.Entries)
	}
	if tour.Entries[0].Policy != "a" || tour.Entries[1].Policy != "b" {
		t.Errorf("equal scores must rank by name: %+v", tour.Entries)
	}
}

func TestNewTournamentRejectsBadGrids(t *testing.T) {
	cases := []struct {
		name  string
		cells []TournamentCell
		want  string
	}{
		{"empty", nil, "no cells"},
		{"duplicate cell", append(fourCells(),
			TournamentCell{Policy: "a", Bench: "fib", Topology: "2x4", TP: 1}), "twice"},
		{"missing cell", fourCells()[:3], "missing cell"},
		{"non-positive time", []TournamentCell{
			{Policy: "a", Bench: "fib", Topology: "2x4", TP: 0}}, "non-positive TP"},
	}
	for _, tc := range cases {
		if _, err := NewTournament(tc.cells); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestTournamentTable(t *testing.T) {
	tour, err := NewTournament(fourCells())
	if err != nil {
		t.Fatal(err)
	}
	got := TournamentTable(&tour)
	for _, want := range []string{
		"Tournament: 2 policies x 2 benchmark(s) x 1 topology(s); winner a (score 1.4142)",
		"geomean over cells",
		"rank  policy",
		"-- 2x4: TP by benchmark (x cell best) --",
		"100 (1.000x)",
		"300 (2.000x)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
}

func TestTournamentExportRoundTrips(t *testing.T) {
	tour, err := NewTournament(fourCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExport(&buf, Export{Tournament: &tour}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string `json:"schema"`
		Tournament *struct {
			Benches []string `json:"benches"`
			Entries []struct {
				Rank   int     `json:"rank"`
				Policy string  `json:"policy"`
				Score  float64 `json:"score"`
				Cells  []struct {
					Bench string  `json:"bench"`
					TP    int64   `json:"tp"`
					Norm  float64 `json:"norm"`
				} `json:"cells"`
			} `json:"entries"`
		} `json:"tournament"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tournament == nil || len(doc.Tournament.Entries) != 2 {
		t.Fatalf("exported tournament: %+v", doc.Tournament)
	}
	e := doc.Tournament.Entries[0]
	if e.Rank != 1 || e.Policy != "a" || len(e.Cells) != 2 || e.Cells[0].TP != 100 {
		t.Errorf("first entry: %+v", e)
	}

	// And the export omits the section when absent.
	buf.Reset()
	if err := WriteExport(&buf, Export{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "tournament") {
		t.Errorf("empty export mentions tournament:\n%s", buf.String())
	}
}

func TestWriteTournamentCSV(t *testing.T) {
	tour, err := NewTournament(fourCells())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTournamentCSV(&buf, &tour); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 { // header + 2 policies x 2 cells
		t.Fatalf("%d records, want 5: %v", len(recs), recs)
	}
	if !reflect.DeepEqual(recs[0], []string{"rank", "policy", "score", "bench", "topology", "tp", "norm"}) {
		t.Errorf("header: %v", recs[0])
	}
	if recs[1][0] != "1" || recs[1][1] != "a" || recs[1][3] != "fib" || recs[1][5] != "100" {
		t.Errorf("first data record: %v", recs[1])
	}
	if recs[3][0] != "2" || recs[3][1] != "b" {
		t.Errorf("rank-major order broken: %v", recs[3])
	}
}
