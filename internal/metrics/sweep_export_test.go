package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sweepFixtures() []Sweep {
	return []Sweep{
		{Bench: "heat", Topology: "paper-4x8", Sockets: 4, Cores: 32,
			P: []int{1, 8, 32}, TP: []int64{1000, 200, 100}},
		{Bench: "heat", Topology: "2x16", Sockets: 2, Cores: 32,
			P: []int{1, 16}, TP: []int64{1000, 125}},
	}
}

func TestWriteExportSweepsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExport(&buf, Export{Sweeps: sweepFixtures()}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sweeps []struct {
			Bench    string `json:"bench"`
			Topology string `json:"topology"`
			Sockets  int    `json:"sockets"`
			Cores    int    `json:"cores"`
			Points   []struct {
				P       int     `json:"p"`
				TP      int64   `json:"tp"`
				Speedup float64 `json:"speedup"`
			} `json:"points"`
		} `json:"sweeps"`
		Rows   []json.RawMessage `json:"rows"`
		Series []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 0 || len(doc.Series) != 0 {
		t.Error("empty sections must be omitted")
	}
	if len(doc.Sweeps) != 2 {
		t.Fatalf("%d sweeps, want 2", len(doc.Sweeps))
	}
	s := doc.Sweeps[0]
	if s.Bench != "heat" || s.Topology != "paper-4x8" || s.Sockets != 4 || s.Cores != 32 {
		t.Errorf("sweep identity wrong: %+v", s)
	}
	if len(s.Points) != 3 || s.Points[2].P != 32 || s.Points[2].TP != 100 || s.Points[2].Speedup != 10 {
		t.Errorf("sweep points wrong: %+v", s.Points)
	}
}

func TestWriteSweepsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepsCSV(&buf, sweepFixtures()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 { // header + 3 points + 2 points
		t.Fatalf("%d records, want 6:\n%s", len(recs), buf.String())
	}
	wantHeader := []string{"bench", "topology", "sockets", "cores", "p", "tp", "speedup"}
	for i, h := range wantHeader {
		if recs[0][i] != h {
			t.Fatalf("header = %v, want %v", recs[0], wantHeader)
		}
	}
	if recs[3][1] != "paper-4x8" || recs[3][4] != "32" || recs[3][6] != "10" {
		t.Errorf("last paper-4x8 record = %v", recs[3])
	}
	if recs[5][1] != "2x16" || recs[5][5] != "125" || recs[5][6] != "8" {
		t.Errorf("last 2x16 record = %v", recs[5])
	}
}
