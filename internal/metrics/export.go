// Machine-readable exports of the paper's measurements: the same rows and
// series the tables render, as JSON (one document carrying raw cycle
// counts plus the derived ratios) and CSV (one flat record per benchmark
// row, one per series point), for BENCH_*.json-style perf tracking and
// downstream tooling.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// platformJSON is one platform's exported measurements.
type platformJSON struct {
	T1 int64 `json:"t1"`
	TP int64 `json:"tp"`
	WP int64 `json:"wp"`
	SP int64 `json:"sp"`
	IP int64 `json:"ip"`
	// Derived ratios, as reported in the tables.
	SpawnOverhead float64 `json:"spawn_overhead"` // T1/TS
	Scalability   float64 `json:"scalability"`    // T1/TP
	WorkInflation float64 `json:"work_inflation"` // WP/T1
}

func exportPlatform(r PlatformResult, ts int64) platformJSON {
	return platformJSON{
		T1: r.T1, TP: r.TP, WP: r.WP, SP: r.SP, IP: r.IP,
		SpawnOverhead: r.SpawnOverhead(ts),
		Scalability:   r.Scalability(),
		WorkInflation: r.WorkInflation(),
	}
}

// rowErrorJSON is a failed row's exported diagnosis.
type rowErrorJSON struct {
	Bench  string `json:"bench"`
	Policy string `json:"policy,omitempty"`
	P      int    `json:"p"`
	Seed   int64  `json:"seed"`
	Kind   string `json:"kind"`
	Msg    string `json:"msg"`
}

// rowJSON is one benchmark's exported measurements across both platforms.
type rowJSON struct {
	Name   string        `json:"name"`
	Input  string        `json:"input"`
	P      int           `json:"p"`
	TS     int64         `json:"ts"`
	Cilk   platformJSON  `json:"cilk"`
	NUMAWS platformJSON  `json:"numaws"`
	Error  *rowErrorJSON `json:"error,omitempty"`
}

// seriesPointJSON is one point of a scalability curve.
type seriesPointJSON struct {
	P       int     `json:"p"`
	TP      int64   `json:"tp"`
	Speedup float64 `json:"speedup"` // T1/TP
}

// seriesJSON is one exported scalability curve.
type seriesJSON struct {
	Name   string            `json:"name"`
	Points []seriesPointJSON `json:"points"`
}

// sweepJSON is one exported topology-sweep curve.
type sweepJSON struct {
	Bench    string            `json:"bench"`
	Topology string            `json:"topology"`
	Sockets  int               `json:"sockets"`
	Cores    int               `json:"cores"`
	Points   []seriesPointJSON `json:"points"`
}

// tournamentCellJSON is one exported tournament cell.
type tournamentCellJSON struct {
	Bench    string  `json:"bench"`
	Topology string  `json:"topology"`
	TP       int64   `json:"tp"`
	Norm     float64 `json:"norm"` // TP / best TP in the cell
}

// tournamentEntryJSON is one exported ranked policy.
type tournamentEntryJSON struct {
	Rank   int                  `json:"rank"`
	Policy string               `json:"policy"`
	Score  float64              `json:"score"` // geomean of norm over cells
	Cells  []tournamentCellJSON `json:"cells"`
}

// tournamentJSON is an exported policy tournament.
type tournamentJSON struct {
	Benches    []string              `json:"benches"`
	Topologies []string              `json:"topologies"`
	Entries    []tournamentEntryJSON `json:"entries"`
}

// document is the top-level JSON export.
type document struct {
	Rows       []rowJSON       `json:"rows,omitempty"`
	Series     []seriesJSON    `json:"series,omitempty"`
	Sweeps     []sweepJSON     `json:"sweeps,omitempty"`
	Tournament *tournamentJSON `json:"tournament,omitempty"`
}

// Export bundles every measurement kind a command can produce, for the
// machine-readable writers.
type Export struct {
	Rows       []Row
	Series     []Series
	Sweeps     []Sweep
	Tournament *Tournament
}

// WriteJSON writes rows and/or series (either may be empty) as one
// indented JSON document.
func WriteJSON(w io.Writer, rows []Row, series []Series) error {
	return WriteExport(w, Export{Rows: rows, Series: series})
}

// WriteExport writes every measurement kind in e (any may be empty) as one
// indented JSON document.
func WriteExport(w io.Writer, e Export) error {
	rows, series := e.Rows, e.Series
	var doc document
	for _, r := range rows {
		rj := rowJSON{
			Name: r.Name, Input: r.Input, P: r.P, TS: r.TS,
			Cilk:   exportPlatform(r.Cilk, r.TS),
			NUMAWS: exportPlatform(r.NUMAWS, r.TS),
		}
		if r.Err != nil {
			rj.Error = &rowErrorJSON{
				Bench: r.Err.Bench, Policy: r.Err.Policy, P: r.Err.P,
				Seed: r.Err.Seed, Kind: r.Err.Kind, Msg: r.Err.Msg,
			}
		}
		doc.Rows = append(doc.Rows, rj)
	}
	for _, s := range series {
		sj := seriesJSON{Name: s.Name}
		speedup := s.Speedup()
		for i, p := range s.P {
			sj.Points = append(sj.Points, seriesPointJSON{P: p, TP: s.TP[i], Speedup: speedup[i]})
		}
		doc.Series = append(doc.Series, sj)
	}
	for _, s := range e.Sweeps {
		sj := sweepJSON{Bench: s.Bench, Topology: s.Topology, Sockets: s.Sockets, Cores: s.Cores}
		speedup := s.Speedup()
		for i, p := range s.P {
			sj.Points = append(sj.Points, seriesPointJSON{P: p, TP: s.TP[i], Speedup: speedup[i]})
		}
		doc.Sweeps = append(doc.Sweeps, sj)
	}
	if t := e.Tournament; t != nil {
		tj := &tournamentJSON{Benches: t.Benches, Topologies: t.Topologies}
		for _, en := range t.Entries {
			ej := tournamentEntryJSON{Rank: en.Rank, Policy: en.Policy, Score: en.Score}
			for _, c := range en.Cells {
				ej.Cells = append(ej.Cells, tournamentCellJSON{
					Bench: c.Bench, Topology: c.Topology, TP: c.TP, Norm: c.Norm,
				})
			}
			tj.Entries = append(tj.Entries, ej)
		}
		doc.Tournament = tj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCSVRecords funnels every CSV table through encoding/csv. This is a
// contract, not a convenience: benchmark Input strings are free-form
// (registry benchmarks choose their own), so fields containing commas,
// quotes or newlines must be quoted per RFC 4180 — pinned by the
// round-trip tests in csv_roundtrip_test.go.
func writeCSVRecords(w io.Writer, records [][]string) error {
	return csv.NewWriter(w).WriteAll(records)
}

// WriteRowsCSV writes one CSV record per benchmark row: identity, raw
// cycle counts, and the derived ratios for both platforms, plus a trailing
// error column — empty for healthy rows, the failed run's diagnosis for
// error rows (whose measurement columns are zero).
func WriteRowsCSV(w io.Writer, rows []Row) error {
	records := [][]string{{
		"name", "input", "p", "ts",
		"cilk_t1", "cilk_tp", "cilk_wp", "cilk_sp", "cilk_ip",
		"cilk_spawn_overhead", "cilk_scalability", "cilk_work_inflation",
		"numaws_t1", "numaws_tp", "numaws_wp", "numaws_sp", "numaws_ip",
		"numaws_spawn_overhead", "numaws_scalability", "numaws_work_inflation",
		"error",
	}}
	for _, r := range rows {
		plat := func(p PlatformResult) []string {
			return []string{
				strconv.FormatInt(p.T1, 10), strconv.FormatInt(p.TP, 10),
				strconv.FormatInt(p.WP, 10), strconv.FormatInt(p.SP, 10),
				strconv.FormatInt(p.IP, 10),
				formatFloat(p.SpawnOverhead(r.TS)), formatFloat(p.Scalability()),
				formatFloat(p.WorkInflation()),
			}
		}
		rec := []string{r.Name, r.Input, strconv.Itoa(r.P), strconv.FormatInt(r.TS, 10)}
		rec = append(rec, plat(r.Cilk)...)
		rec = append(rec, plat(r.NUMAWS)...)
		if r.Err != nil {
			rec = append(rec, r.Err.Error())
		} else {
			rec = append(rec, "")
		}
		records = append(records, rec)
	}
	return writeCSVRecords(w, records)
}

// WriteSeriesCSV writes scalability curves in long form: one CSV record
// per (series, point).
func WriteSeriesCSV(w io.Writer, series []Series) error {
	records := [][]string{{"name", "p", "tp", "speedup"}}
	for _, s := range series {
		speedup := s.Speedup()
		for i, p := range s.P {
			records = append(records, []string{
				s.Name, strconv.Itoa(p), strconv.FormatInt(s.TP[i], 10), formatFloat(speedup[i]),
			})
		}
	}
	return writeCSVRecords(w, records)
}

// WriteSweepsCSV writes topology-sweep curves in long form: one CSV record
// per (bench, topology, point).
func WriteSweepsCSV(w io.Writer, sweeps []Sweep) error {
	records := [][]string{{"bench", "topology", "sockets", "cores", "p", "tp", "speedup"}}
	for _, s := range sweeps {
		speedup := s.Speedup()
		for i, p := range s.P {
			records = append(records, []string{
				s.Bench, s.Topology, strconv.Itoa(s.Sockets), strconv.Itoa(s.Cores),
				strconv.Itoa(p), strconv.FormatInt(s.TP[i], 10), formatFloat(speedup[i]),
			})
		}
	}
	return writeCSVRecords(w, records)
}

// WriteTournamentCSV writes a ranked tournament in long form: one CSV
// record per (policy, bench, topology) cell, rank-major, carrying the
// entry's score alongside the cell's raw TP and its ratio to the cell's
// best.
func WriteTournamentCSV(w io.Writer, t *Tournament) error {
	records := [][]string{{"rank", "policy", "score", "bench", "topology", "tp", "norm"}}
	for _, e := range t.Entries {
		for _, c := range e.Cells {
			records = append(records, []string{
				strconv.Itoa(e.Rank), e.Policy, formatFloat(e.Score),
				c.Bench, c.Topology, strconv.FormatInt(c.TP, 10), formatFloat(c.Norm),
			})
		}
	}
	return writeCSVRecords(w, records)
}

// WriteCSV writes rows and/or series as CSV. When both are present the
// two tables are separated by a blank line, each with its own header —
// a stream for eyeballing, not for strict CSV parsers (the tables have
// different widths); tooling that reads the output back should receive
// one kind per writer (WriteRowsCSV / WriteSeriesCSV).
func WriteCSV(w io.Writer, rows []Row, series []Series) error {
	if len(rows) > 0 {
		if err := WriteRowsCSV(w, rows); err != nil {
			return err
		}
		if len(series) > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	if len(series) > 0 {
		return WriteSeriesCSV(w, series)
	}
	return nil
}
