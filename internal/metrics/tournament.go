package metrics

// The policy-tournament surface: every registered scheduling policy runs
// the same benchmark x topology grid, and the policies are ranked by how
// close each stays to the best completion time of every cell. The score is
// the geometric mean over cells of TP / best-TP-in-cell, so 1.0 means the
// policy won every cell and the ranking is scale-free across benchmarks
// whose absolute makespans differ by orders of magnitude.

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TournamentCell is one raw tournament measurement: policy pol completed
// bench on topology in TP cycles (averaged over the protocol's seeds).
type TournamentCell struct {
	Policy   string
	Bench    string
	Topology string
	TP       int64
}

// TournamentResult is one cell of a ranked entry: the raw completion time
// plus its ratio to the cell's best time across all policies (1.0 = this
// policy won the cell).
type TournamentResult struct {
	Bench    string
	Topology string
	TP       int64
	Norm     float64 // TP / best TP in this (bench, topology) cell
}

// TournamentEntry is one policy's ranked tournament outcome.
type TournamentEntry struct {
	Rank   int
	Policy string
	// Score is the geometric mean of Norm over the entry's cells; lower is
	// better and 1.0 means the policy had the best time in every cell.
	Score float64
	// Cells holds one result per (bench, topology), bench-major, in the
	// tournament's axis order.
	Cells []TournamentResult
}

// Tournament is a complete ranked tournament: the grid axes and one entry
// per policy, best score first.
type Tournament struct {
	Benches    []string
	Topologies []string
	Entries    []TournamentEntry
}

// Winner reports the top-ranked policy name ("" for an empty tournament).
func (t *Tournament) Winner() string {
	if len(t.Entries) == 0 {
		return ""
	}
	return t.Entries[0].Policy
}

// NewTournament ranks raw cells into a tournament. Every policy must carry
// exactly one measurement per (bench, topology) cell of the grid spanned
// by the cells — a missing or duplicated cell is an error, because a
// ranking over unequal grids would silently compare incomparables. Axis
// and policy orders follow first appearance in cells; the returned entries
// are sorted by ascending score, ties broken by policy name, so the
// ranking is deterministic for deterministic inputs.
func NewTournament(cells []TournamentCell) (Tournament, error) {
	var t Tournament
	var pols []string
	type cellKey struct{ bench, topo string }
	seenBench := map[string]bool{}
	seenTopo := map[string]bool{}
	seenPol := map[string]bool{}
	tp := map[string]map[cellKey]int64{}
	for _, c := range cells {
		if !seenBench[c.Bench] {
			seenBench[c.Bench] = true
			t.Benches = append(t.Benches, c.Bench)
		}
		if !seenTopo[c.Topology] {
			seenTopo[c.Topology] = true
			t.Topologies = append(t.Topologies, c.Topology)
		}
		if !seenPol[c.Policy] {
			seenPol[c.Policy] = true
			pols = append(pols, c.Policy)
			tp[c.Policy] = map[cellKey]int64{}
		}
		k := cellKey{c.Bench, c.Topology}
		if _, dup := tp[c.Policy][k]; dup {
			return Tournament{}, fmt.Errorf("metrics: tournament: policy %q measured cell (%s, %s) twice",
				c.Policy, c.Bench, c.Topology)
		}
		if c.TP <= 0 {
			return Tournament{}, fmt.Errorf("metrics: tournament: policy %q cell (%s, %s) has non-positive TP %d",
				c.Policy, c.Bench, c.Topology, c.TP)
		}
		tp[c.Policy][k] = c.TP
	}
	if len(pols) == 0 {
		return Tournament{}, fmt.Errorf("metrics: tournament: no cells")
	}
	// The cell's best time across policies is the normalization base.
	best := map[cellKey]int64{}
	for _, pol := range pols {
		for _, b := range t.Benches {
			for _, topo := range t.Topologies {
				k := cellKey{b, topo}
				v, ok := tp[pol][k]
				if !ok {
					return Tournament{}, fmt.Errorf("metrics: tournament: policy %q is missing cell (%s, %s)",
						pol, b, topo)
				}
				if cur, ok := best[k]; !ok || v < cur {
					best[k] = v
				}
			}
		}
	}
	for _, pol := range pols {
		e := TournamentEntry{Policy: pol}
		logSum := 0.0
		for _, b := range t.Benches {
			for _, topo := range t.Topologies {
				k := cellKey{b, topo}
				norm := float64(tp[pol][k]) / float64(best[k])
				logSum += math.Log(norm)
				e.Cells = append(e.Cells, TournamentResult{
					Bench: b, Topology: topo, TP: tp[pol][k], Norm: norm,
				})
			}
		}
		e.Score = math.Exp(logSum / float64(len(e.Cells)))
		t.Entries = append(t.Entries, e)
	}
	sort.SliceStable(t.Entries, func(i, j int) bool {
		a, b := t.Entries[i], t.Entries[j]
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Policy < b.Policy
	})
	for i := range t.Entries {
		t.Entries[i].Rank = i + 1
	}
	return t, nil
}

// TournamentTable renders the ranked tournament: a one-line summary (the
// line CI smoke checks grep for), the ranking, then one TP table per
// topology so cells measured on the same machine shape line up.
func TournamentTable(t *Tournament) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tournament: %d policies x %d benchmark(s) x %d topology(s); winner %s (score %.4f)\n",
		len(t.Entries), len(t.Benches), len(t.Topologies), t.Winner(), t.bestScore())
	b.WriteString("score = geomean over cells of TP / cell-best TP; 1.0000 means the policy won every cell\n\n")
	fmt.Fprintf(&b, "%4s  %-14s %8s\n", "rank", "policy", "score")
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "%4d  %-14s %8.4f\n", e.Rank, e.Policy, e.Score)
	}
	for _, topo := range t.Topologies {
		fmt.Fprintf(&b, "\n-- %s: TP by benchmark (x cell best) --\n", topo)
		fmt.Fprintf(&b, "%-14s", "policy")
		for _, bench := range t.Benches {
			fmt.Fprintf(&b, " %22s", bench)
		}
		b.WriteByte('\n')
		for _, e := range t.Entries {
			fmt.Fprintf(&b, "%-14s", e.Policy)
			for _, c := range e.Cells {
				if c.Topology != topo {
					continue
				}
				fmt.Fprintf(&b, " %22s", fmt.Sprintf("%d (%.3fx)", c.TP, c.Norm))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (t *Tournament) bestScore() float64 {
	if len(t.Entries) == 0 {
		return 0
	}
	return t.Entries[0].Score
}
