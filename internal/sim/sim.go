// Package sim provides the primitives of the deterministic discrete-event
// simulation that replaces the paper's physical testbed: a virtual-time
// priority queue of workers and a seeded random number generator.
//
// All scheduler randomness (victim selection, the deque-vs-mailbox coin
// flip, receiver choice in work pushing) flows through one RNG, so a run is
// a pure function of (program, configuration, seed). Ties in virtual time
// are broken by worker id, which keeps the event order total.
//
// Both primitives are built for the engine's hot loop: the queue is an
// index-based 4-ary min-heap of (time, id) pairs — no interface boxing, no
// per-push allocation, amortized O(1) push into a reused backing array —
// and victim selection goes through a Picker whose weights are validated
// and prefix-summed once at construction, so each draw is a single Float64
// plus an O(log n) binary search instead of an O(n) validate-and-scan.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual time in cycles.
type Time = int64

// item is a queue entry: worker id scheduled to act at a virtual time.
type item struct {
	at Time
	id int
}

// less orders entries by (time, id) — the simulation's total event order.
//
//numaws:alloc-free
func (a item) less(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// Queue is a min-heap of worker wakeups ordered by (time, id). The zero
// value is ready to use.
//
// The heap is 4-ary: with one entry per simulated worker the tree is at
// most a couple of levels deep, sift-down touches one cache line of
// children per level, and — unlike container/heap — Push and Pop move
// concrete 16-byte items with no interface conversions and no allocation
// beyond the amortized growth of the backing array, which a reused Queue
// never pays again.
type Queue struct {
	h []item
}

// validated entry points: every panic the queue can raise is funneled
// through these two checks, so the messages stay consistent and the
// hot-path methods below stay branch-light.

// checkTime guards Push against negative virtual time.
//
//numaws:alloc-free
func checkTime(at Time) {
	if at < 0 {
		panic(fmt.Sprintf("sim: negative time %d", at))
	}
}

// checkNonEmpty guards Pop and Peek; op names the failing operation.
//
//numaws:alloc-free
func (q *Queue) checkNonEmpty(op string) {
	if len(q.h) == 0 {
		panic("sim: " + op + " empty queue")
	}
}

// Push schedules worker id to act at virtual time at.
//
//numaws:alloc-free
func (q *Queue) Push(at Time, id int) {
	checkTime(at)
	q.h = append(q.h, item{at: at, id: id}) //numaws:alloc-ok amortized growth of the reused backing array; a warmed-up queue never grows again (BenchmarkQueue pins 0 allocs/op)
	q.siftUp(len(q.h) - 1)
}

// Pop removes and returns the earliest (time, id) entry. It panics on an
// empty queue; callers gate on Len.
//
//numaws:alloc-free
func (q *Queue) Pop() (Time, int) {
	q.checkNonEmpty("pop from")
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top.at, top.id
}

// Peek reports the earliest entry without removing it.
//
//numaws:alloc-free
func (q *Queue) Peek() (Time, int) {
	q.checkNonEmpty("peek at")
	return q.h[0].at, q.h[0].id
}

// Len reports the number of queued entries.
//
//numaws:alloc-free
func (q *Queue) Len() int { return len(q.h) }

// Reset empties the queue, keeping the backing array for reuse.
//
//numaws:alloc-free
func (q *Queue) Reset() { q.h = q.h[:0] }

//numaws:alloc-free
func (q *Queue) siftUp(i int) {
	x := q.h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !x.less(q.h[p]) {
			break
		}
		q.h[i] = q.h[p]
		i = p
	}
	q.h[i] = x
}

//numaws:alloc-free
func (q *Queue) siftDown(i int) {
	n := len(q.h)
	x := q.h[i]
	for {
		c := 4*i + 1 // first child
		if c >= n {
			break
		}
		// Find the smallest of the up-to-four children.
		min := c
		last := c + 4
		if last > n {
			last = n
		}
		for j := c + 1; j < last; j++ {
			if q.h[j].less(q.h[min]) {
				min = j
			}
		}
		if !q.h[min].less(x) {
			break
		}
		q.h[i] = q.h[min]
		i = min
	}
	q.h[i] = x
}

// RNG is the seeded source of all scheduler randomness.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Coin returns true with probability 1/2 — the NUMA-WS thief's choice
// between a victim's deque and its mailbox.
func (g *RNG) Coin() bool { return g.r.Intn(2) == 0 }

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum. This implements the locality-biased victim distribution.
//
// Pick re-validates and re-scans the weights on every call; hot paths that
// draw from a fixed distribution should build a Picker once instead. Picker
// reproduces Pick draw-for-draw (TestPickerMatchesLinearPick pins that), so
// this linear form is kept as the executable specification and for one-off
// draws.
func (g *RNG) Pick(weights []float64) int {
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("sim: negative weight %f at %d", w, i))
		}
		sum += w
	}
	if sum <= 0 {
		panic("sim: weights sum to zero")
	}
	x := g.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Picker draws indices from a fixed weight distribution. The weights are
// validated once and folded into left-to-right prefix sums at construction,
// so each Pick costs one Float64 draw plus a binary search — O(log n)
// instead of Pick's O(n) validate-and-scan — and consumes exactly the same
// single Float64 the linear Pick would, returning the same index.
type Picker struct {
	// prefix[i] is weights[0] + ... + weights[i-1], accumulated left to
	// right in the same order Pick's subtraction scan consumes them.
	prefix []float64
}

// NewPicker validates weights (non-negative, positive sum — the same panics
// Pick raises per call, paid once here) and returns a Picker over them.
// The weights slice is not retained.
func NewPicker(weights []float64) *Picker {
	p := &Picker{prefix: make([]float64, len(weights)+1)}
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("sim: negative weight %f at %d", w, i))
		}
		p.prefix[i+1] = p.prefix[i] + w
	}
	if p.prefix[len(weights)] <= 0 {
		panic("sim: weights sum to zero")
	}
	return p
}

// Len reports the number of weights.
//
//numaws:alloc-free
func (p *Picker) Len() int { return len(p.prefix) - 1 }

// Pick draws one index with probability proportional to its weight, using
// g the exact same way the linear RNG.Pick does (one Float64 per draw).
//
//numaws:alloc-free
func (p *Picker) Pick(g *RNG) int {
	n := len(p.prefix) - 1
	x := g.r.Float64() * p.prefix[n]
	// The linear scan returns the first i whose cumulative weight strictly
	// exceeds x; binary-search the prefix sums for it. An index with zero
	// weight can never be first (its prefix entry equals its
	// predecessor's), matching the scan's skip of zero weights.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.prefix[mid+1] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == n {
		lo = n - 1 // floating-point slack, as in the linear scan
	}
	return lo
}

// PickUniformExcept draws a uniform index in [0, n) excluding self,
// consuming g exactly as Pick would over a weight vector of n ones with a
// zero at self (the engine's uniform victim distribution): one Float64
// draw, same resulting index, but O(1) and with no weights array at all.
//
//numaws:alloc-free
func (g *RNG) PickUniformExcept(n, self int) int {
	if n < 2 || self < 0 || self >= n {
		panic(fmt.Sprintf("sim: uniform pick over %d entries excluding %d", n, self))
	}
	// Pick would compute sum = n-1 (exact: a left-to-right sum of ones)
	// and scan x = Float64()*(n-1) through the ones, landing on the
	// floor(x)-th non-self index; the fallthrough on floating-point slack
	// returns the last index, exactly as the scan's `return len-1` does.
	x := g.r.Float64() * float64(n-1)
	k := int(x)
	if k >= n-1 {
		return n - 1
	}
	if k >= self {
		k++
	}
	return k
}

// Shuffle permutes the ints in place.
func (g *RNG) Shuffle(xs []int) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
