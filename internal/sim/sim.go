// Package sim provides the primitives of the deterministic discrete-event
// simulation that replaces the paper's physical testbed: a virtual-time
// priority queue of workers and a seeded random number generator.
//
// All scheduler randomness (victim selection, the deque-vs-mailbox coin
// flip, receiver choice in work pushing) flows through one RNG, so a run is
// a pure function of (program, configuration, seed). Ties in virtual time
// are broken by worker id, which keeps the event order total.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in cycles.
type Time = int64

// item is a queue entry: worker id scheduled to act at a virtual time.
type item struct {
	at Time
	id int
}

// Queue is a min-heap of worker wakeups ordered by (time, id). The zero
// value is ready to use.
type Queue struct {
	h itemHeap
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Push schedules worker id to act at virtual time at.
func (q *Queue) Push(at Time, id int) {
	if at < 0 {
		panic(fmt.Sprintf("sim: negative time %d", at))
	}
	heap.Push(&q.h, item{at: at, id: id})
}

// Pop removes and returns the earliest (time, id) entry. It panics on an
// empty queue; callers gate on Len.
func (q *Queue) Pop() (Time, int) {
	if len(q.h) == 0 {
		panic("sim: pop from empty queue")
	}
	it := heap.Pop(&q.h).(item)
	return it.at, it.id
}

// Peek reports the earliest entry without removing it.
func (q *Queue) Peek() (Time, int) {
	if len(q.h) == 0 {
		panic("sim: peek at empty queue")
	}
	return q.h[0].at, q.h[0].id
}

// Len reports the number of queued entries.
func (q *Queue) Len() int { return len(q.h) }

// RNG is the seeded source of all scheduler randomness.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Coin returns true with probability 1/2 — the NUMA-WS thief's choice
// between a victim's deque and its mailbox.
func (g *RNG) Coin() bool { return g.r.Intn(2) == 0 }

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum. This implements the locality-biased victim distribution.
func (g *RNG) Pick(weights []float64) int {
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("sim: negative weight %f at %d", w, i))
		}
		sum += w
	}
	if sum <= 0 {
		panic("sim: weights sum to zero")
	}
	x := g.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Shuffle permutes the ints in place.
func (g *RNG) Shuffle(xs []int) {
	g.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
