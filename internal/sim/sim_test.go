package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(30, 1)
	q.Push(10, 2)
	q.Push(20, 3)
	var times []Time
	for q.Len() > 0 {
		at, _ := q.Pop()
		times = append(times, at)
	}
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		t.Errorf("pop order %v not sorted", times)
	}
}

func TestQueueTieBreakById(t *testing.T) {
	var q Queue
	q.Push(5, 9)
	q.Push(5, 1)
	q.Push(5, 4)
	want := []int{1, 4, 9}
	for _, w := range want {
		_, id := q.Pop()
		if id != w {
			t.Errorf("pop id = %d, want %d", id, w)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	var q Queue
	q.Push(7, 3)
	at, id := q.Peek()
	if at != 7 || id != 3 {
		t.Errorf("Peek() = (%d, %d), want (7, 3)", at, id)
	}
	if q.Len() != 1 {
		t.Errorf("Peek consumed the entry: len = %d", q.Len())
	}
}

func TestQueuePanics(t *testing.T) {
	var q Queue
	for name, f := range map[string]func(){
		"pop empty":     func() { q.Pop() },
		"peek empty":    func() { q.Peek() },
		"negative time": func() { q.Push(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: popping always yields non-decreasing times regardless of
// insertion order.
func TestQueueMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var q Queue
		for i, r := range raw {
			q.Push(Time(r), i)
		}
		last := Time(-1)
		for q.Len() > 0 {
			at, _ := q.Pop()
			if at < last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 20; i++ {
		if a.Intn(1000) != c.Intn(1000) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical 20-draw streams")
	}
}

func TestCoinIsRoughlyFair(t *testing.T) {
	g := NewRNG(7)
	heads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Coin() {
			heads++
		}
	}
	if math.Abs(float64(heads)/n-0.5) > 0.03 {
		t.Errorf("heads fraction = %f, want about 0.5", float64(heads)/n)
	}
}

func TestPickFollowsWeights(t *testing.T) {
	g := NewRNG(11)
	weights := []float64{6, 3, 1} // local socket heavily favored
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Pick(weights)]++
	}
	total := 10.0
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency = %f, want about %f", i, got, want)
		}
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	g := NewRNG(13)
	weights := []float64{1, 0, 1}
	for i := 0; i < 5000; i++ {
		if g.Pick(weights) == 1 {
			t.Fatal("picked zero-weight index")
		}
	}
}

func TestPickPanics(t *testing.T) {
	g := NewRNG(1)
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"all zero": {0, 0},
		"empty":    {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%s) did not panic", name)
				}
			}()
			g.Pick(w)
		}()
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	g := NewRNG(3)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	g.Shuffle(xs)
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i+1 {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
	}
}
