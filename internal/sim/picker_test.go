package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pickBoth drives a linear Pick and a Picker from identically seeded RNGs
// and reports the first draw index where they disagree (-1 if none).
func pickBoth(t *testing.T, weights []float64, seed int64, draws int) int {
	t.Helper()
	a, b := NewRNG(seed), NewRNG(seed)
	p := NewPicker(weights)
	if p.Len() != len(weights) {
		t.Fatalf("Picker.Len() = %d, want %d", p.Len(), len(weights))
	}
	for i := 0; i < draws; i++ {
		if got, want := p.Pick(b), a.Pick(weights); got != want {
			t.Errorf("weights %v seed %d draw %d: Picker = %d, linear Pick = %d",
				weights, seed, i, got, want)
			return i
		}
	}
	return -1
}

// TestPickerMatchesLinearPick is the cross-check the engine's byte-identical
// contract rests on: a Picker consumes the RNG exactly like the linear Pick
// and returns the same index, draw for draw, for the weight families the
// schedulers actually build.
func TestPickerMatchesLinearPick(t *testing.T) {
	families := map[string][]float64{
		// The paper machine's per-victim vectors: hop-class weights 4/2/1
		// with a zero at the thief's own slot.
		"paper-4x8 thief": {0, 4, 4, 2, 2, 1, 1, 2, 4, 2, 1, 4, 1, 2, 4, 1},
		"uniform":         {1, 1, 1, 1, 1, 1, 1},
		"uniform w/ self": {1, 1, 1, 0, 1, 1, 1, 1},
		"single":          {3},
		"zero head":       {0, 0, 5, 1},
		"zero tail":       {5, 1, 0, 0},
		"fractional":      {0.25, 0.5, 0.125, 1.75, 0.0625},
	}
	// The deep-ring capped-exponent weights from the topology sweep: a
	// 1200-socket ring's hop classes degrade to equal 2^512 weights near
	// the thief instead of overflowing (sched.DefaultBiasWeights).
	deep := make([]float64, 600)
	for h := range deep {
		exp := len(deep) - 1 - h
		if exp > 512 {
			exp = 512
		}
		deep[h] = math.Ldexp(1, exp)
	}
	families["deep-ring capped"] = deep

	for name, w := range families {
		for seed := int64(1); seed <= 5; seed++ {
			if i := pickBoth(t, w, seed, 4000); i >= 0 {
				t.Fatalf("%s: first divergence at draw %d", name, i)
			}
		}
	}
}

// TestPickerMatchesLinearPickRandomWeights extends the cross-check to
// randomly generated weight vectors: integer-valued (where floating-point
// subtraction and prefix summation are both exact) and arbitrary floats.
func TestPickerMatchesLinearPickRandomWeights(t *testing.T) {
	gen := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + gen.Intn(64)
		w := make([]float64, n)
		sum := 0.0
		for i := range w {
			if trial%2 == 0 {
				w[i] = float64(gen.Intn(16)) // integers, sometimes zero
			} else {
				w[i] = gen.Float64() * math.Ldexp(1, gen.Intn(20)-10)
			}
			sum += w[i]
		}
		if sum == 0 {
			w[gen.Intn(n)] = 1
		}
		if i := pickBoth(t, w, int64(trial+1), 500); i >= 0 {
			t.Fatalf("trial %d: first divergence at draw %d", trial, i)
		}
	}
}

func TestPickerFollowsWeights(t *testing.T) {
	g := NewRNG(11)
	p := NewPicker([]float64{6, 3, 1})
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[p.Pick(g)]++
	}
	for i, w := range []float64{6, 3, 1} {
		got := float64(counts[i]) / n
		want := w / 10.0
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency = %f, want about %f", i, got, want)
		}
	}
}

// TestNewPickerPanics pins the satellite contract: the validation panics the
// linear Pick raises per call are raised by NewPicker once, at construction.
func TestNewPickerPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"all zero": {0, 0},
		"empty":    {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPicker(%s) did not panic", name)
				}
			}()
			NewPicker(w)
		}()
	}
}

// TestPickUniformExceptMatchesLinearPick checks the O(1) uniform draw
// against the linear Pick over the ones-with-a-zero-at-self vector it
// replaces, draw for draw.
func TestPickUniformExceptMatchesLinearPick(t *testing.T) {
	for _, n := range []int{2, 3, 8, 32, 33} {
		for self := 0; self < n; self += 1 + n/5 {
			w := make([]float64, n)
			for i := range w {
				if i != self {
					w[i] = 1
				}
			}
			a, b := NewRNG(int64(7*n+self)), NewRNG(int64(7*n+self))
			for i := 0; i < 2000; i++ {
				got, want := b.PickUniformExcept(n, self), a.Pick(w)
				if got != want {
					t.Fatalf("n=%d self=%d draw %d: PickUniformExcept = %d, Pick = %d",
						n, self, i, got, want)
				}
				if got == self {
					t.Fatalf("n=%d self=%d draw %d: picked self", n, self, i)
				}
			}
		}
	}
}

func TestPickUniformExceptPanics(t *testing.T) {
	g := NewRNG(1)
	for name, f := range map[string]func(){
		"n too small": func() { g.PickUniformExcept(1, 0) },
		"self low":    func() { g.PickUniformExcept(4, -1) },
		"self high":   func() { g.PickUniformExcept(4, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestPickerQuickProperty drives random dyadic weights through quick.Check:
// dyadic rationals with a bounded exponent range keep every prefix sum and
// every subtraction exact, so the linear scan and the binary search must
// agree index-for-index, not just almost always.
func TestPickerQuickProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		sum := 0.0
		for i, r := range raw {
			w[i] = float64(r) / 4.0
			sum += w[i]
		}
		if sum == 0 {
			w[0] = 1
		}
		return pickBoth(t, w, seed, 100) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
