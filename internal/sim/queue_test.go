package sim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refHeap is the container/heap implementation the 4-ary Queue replaced,
// kept here as the executable specification for the ordering cross-check.
type refHeap []item

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TestQueueMatchesContainerHeap drives the 4-ary queue and the boxed
// container/heap reference through identical interleaved push/pop streams —
// including duplicate times and duplicate (time, id) pairs — and requires
// identical pop sequences. (time, id) is a total order over distinct
// entries, so the pop order is fully determined and heap arity cannot show
// through; this test pins that.
func TestQueueMatchesContainerHeap(t *testing.T) {
	gen := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		var r refHeap
		for op := 0; op < 400; op++ {
			if q.Len() != r.Len() {
				t.Fatalf("trial %d: Len %d != reference %d", trial, q.Len(), r.Len())
			}
			if q.Len() > 0 && gen.Intn(3) == 0 {
				at, id := q.Pop()
				ref := heap.Pop(&r).(item)
				if at != ref.at || id != ref.id {
					t.Fatalf("trial %d op %d: Pop = (%d,%d), reference = (%d,%d)",
						trial, op, at, id, ref.at, ref.id)
				}
				continue
			}
			// Small value ranges force collisions on time and on (time, id).
			it := item{at: Time(gen.Intn(16)), id: gen.Intn(8)}
			q.Push(it.at, it.id)
			heap.Push(&r, it)
		}
		for q.Len() > 0 {
			at, id := q.Pop()
			ref := heap.Pop(&r).(item)
			if at != ref.at || id != ref.id {
				t.Fatalf("trial %d drain: Pop = (%d,%d), reference = (%d,%d)",
					trial, at, id, ref.at, ref.id)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftovers", trial, r.Len())
		}
	}
}

// TestQueuePopsInSortedOrderProperty is the fuzz/property form: whatever the
// insertion order, a min-heap pops its multiset in sorted (time, id) order.
func TestQueuePopsInSortedOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var q Queue
		want := make([]item, len(raw))
		for i, r := range raw {
			it := item{at: Time(r % 512), id: i % 16}
			q.Push(it.at, it.id)
			want[i] = it
		}
		sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
		for _, w := range want {
			at, id := q.Pop()
			if at != w.at || id != w.id {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQueueReset pins the reuse contract: Reset empties the queue but a
// reused queue orders entries exactly like a fresh one.
func TestQueueReset(t *testing.T) {
	var q Queue
	q.Push(3, 0)
	q.Push(1, 1)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	q.Push(5, 2)
	q.Push(4, 7)
	if at, id := q.Pop(); at != 4 || id != 7 {
		t.Errorf("first pop after reuse = (%d,%d), want (4,7)", at, id)
	}
	if at, id := q.Pop(); at != 5 || id != 2 {
		t.Errorf("second pop after reuse = (%d,%d), want (5,2)", at, id)
	}
}
