package native

import (
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestRunsToCompletion(t *testing.T) {
	var n atomic.Int64
	p := NewPool(4, 4)
	p.Run(func(ctx core.Context) {
		for i := 0; i < 100; i++ {
			ctx.Spawn(func(core.Context) { n.Add(1) })
		}
		ctx.Sync()
	})
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestNestedForkJoin(t *testing.T) {
	var sum atomic.Int64
	var rec func(depth, val int) core.Task
	rec = func(depth, val int) core.Task {
		return func(ctx core.Context) {
			if depth == 0 {
				sum.Add(int64(val))
				return
			}
			ctx.Spawn(rec(depth-1, val))
			ctx.Spawn(rec(depth-1, val))
			ctx.Sync()
		}
	}
	NewPool(8, 1).Run(rec(10, 1))
	if sum.Load() != 1024 {
		t.Errorf("sum = %d, want 1024 leaves", sum.Load())
	}
}

func TestSyncOrdersEffects(t *testing.T) {
	// After Sync returns, all spawned children's effects must be visible.
	data := make([]int, 1000)
	NewPool(8, 1).Run(func(ctx core.Context) {
		core.SpawnRange(ctx, 0, len(data), 16, func(c core.Context, lo, hi int) {
			for i := lo; i < hi; i++ {
				data[i] = i * i
			}
		})
		// SpawnRange ends with Sync; everything must be written now.
		for i, v := range data {
			if v != i*i {
				t.Errorf("data[%d] = %d before use, want %d", i, v, i*i)
				return
			}
		}
	})
}

func TestParallelSort(t *testing.T) {
	// A real recursive algorithm end-to-end on the native executor.
	n := 50000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = (i * 1103515245) % 99991
	}
	var msort func(a, tmp []int) core.Task
	msort = func(a, tmp []int) core.Task {
		return func(ctx core.Context) {
			if len(a) < 512 {
				sort.Ints(a)
				return
			}
			mid := len(a) / 2
			ctx.Spawn(msort(a[:mid], tmp[:mid]))
			ctx.Call(msort(a[mid:], tmp[mid:]))
			ctx.Sync()
			copy(tmp, a)
			i, j := 0, mid
			for k := 0; k < len(a); k++ {
				switch {
				case i >= mid:
					a[k] = tmp[j]
					j++
				case j >= len(a):
					a[k] = tmp[i]
					i++
				case tmp[i] <= tmp[j]:
					a[k] = tmp[i]
					i++
				default:
					a[k] = tmp[j]
					j++
				}
			}
		}
	}
	NewPool(8, 1).Run(msort(xs, make([]int, n)))
	if !sort.IntsAreSorted(xs) {
		t.Error("native parallel mergesort produced unsorted output")
	}
}

func TestPlacesReported(t *testing.T) {
	var places, got int
	p := NewPool(2, 3)
	p.Run(func(ctx core.Context) {
		places = ctx.NumPlaces()
		ctx.SpawnAt(2, func(c core.Context) { got = c.Place() })
		ctx.Sync()
	})
	if places != 3 {
		t.Errorf("NumPlaces = %d, want 3", places)
	}
	if got != 2 {
		t.Errorf("child place = %d, want 2", got)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate out of Run")
		}
	}()
	NewPool(4, 1).Run(func(ctx core.Context) {
		ctx.Spawn(func(core.Context) { panic("native boom") })
		ctx.Sync()
	})
}

func TestPoolReusable(t *testing.T) {
	p := NewPool(4, 1)
	var a, b atomic.Int64
	p.Run(func(ctx core.Context) {
		core.SpawnRange(ctx, 0, 50, 4, func(c core.Context, lo, hi int) { a.Add(int64(hi - lo)) })
	})
	p.Run(func(ctx core.Context) {
		core.SpawnRange(ctx, 0, 70, 4, func(c core.Context, lo, hi int) { b.Add(int64(hi - lo)) })
	})
	if a.Load() != 50 || b.Load() != 70 {
		t.Errorf("reuse failed: a=%d b=%d", a.Load(), b.Load())
	}
}

func TestDefaultWorkers(t *testing.T) {
	p := NewPool(0, 0)
	if p.Workers() < 1 {
		t.Errorf("Workers() = %d, want >= 1", p.Workers())
	}
	done := false
	p.Run(func(core.Context) { done = true })
	if !done {
		t.Error("root never ran")
	}
}
