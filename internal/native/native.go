// Package native executes the same workloads as the simulated platform on
// real goroutines, with real work-stealing deques, for correctness and
// parallel-execution validation.
//
// Why this is not the paper's scheduler: NUMA-WS relies on
// continuation-stealing (the thief resumes the suspended parent's stack) and
// worker-to-core pinning. Go offers neither — goroutine stacks cannot be
// adopted by another thread of control, and the Go scheduler hides core
// placement. The native executor therefore uses child-stealing (the spawned
// child is the stealable item; the parent's goroutine keeps running the
// continuation) plus work-helping at syncs, which preserves the programming
// model and the fork-join semantics, while the simulator (package core)
// models the faithful continuation-stealing runtime. This split is the
// repro-band substitution documented in DESIGN.md.
package native

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/memory"
)

// Pool is a fixed-size work-stealing executor.
type Pool struct {
	workers int
	places  int
	deques  []*deque.Deque[*job]
	done    atomic.Bool
	seedCtr atomic.Uint64
}

// job is one spawned task instance.
type job struct {
	fn     core.Task
	ctx    *nativeCtx
	parent *nativeCtx
}

// NewPool builds an executor with the given worker count (defaults to
// GOMAXPROCS if workers <= 0) and a number of virtual places to report
// through Context.NumPlaces (defaults to 1). Place hints are accepted and
// recorded but do not constrain scheduling — the Go runtime controls actual
// placement.
func NewPool(workers, places int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if places <= 0 {
		places = 1
	}
	p := &Pool{
		workers: workers,
		places:  places,
		deques:  make([]*deque.Deque[*job], workers),
	}
	for i := range p.deques {
		p.deques[i] = deque.New[*job](0)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes root to completion on the pool and blocks until done. A Pool
// is reusable across sequential Run calls (not concurrent ones).
func (p *Pool) Run(root core.Task) {
	p.done.Store(false)
	rootCtx := &nativeCtx{pool: p, place: core.PlaceAny}
	var panicked atomic.Value
	finished := make(chan struct{})

	rootJob := &job{
		fn: func(ctx core.Context) {
			defer close(finished)
			root(ctx)
		},
		ctx: rootCtx,
	}
	p.deques[0].PushTail(rootJob)

	stop := make(chan struct{})
	for w := 1; w < p.workers; w++ {
		go p.workerLoop(w, stop, &panicked)
	}
	// Worker 0 runs in the caller's goroutine so Run blocks naturally.
	go func() {
		<-finished
		p.done.Store(true)
	}()
	p.workerLoop(0, stop, &panicked)
	close(stop)
	// Wait for the root to be fully finished (worker 0 may have observed
	// done before the closing goroutine ran).
	<-finished
	if v := panicked.Load(); v != nil {
		panic(fmt.Sprintf("native: task panicked: %v", v))
	}
}

func (p *Pool) workerLoop(w int, stop <-chan struct{}, panicked *atomic.Value) {
	backoff := 0
	for !p.done.Load() {
		select {
		case <-stop:
			return
		default:
		}
		if j := p.findWork(w); j != nil {
			backoff = 0
			p.runJob(w, j, panicked)
			continue
		}
		backoff++
		if backoff > 64 {
			runtime.Gosched()
		}
	}
}

// findWork pops the local deque tail first (depth-first, cache-friendly),
// then scans other workers' heads.
func (p *Pool) findWork(w int) *job {
	if j, ok := p.deques[w].PopTail(); ok {
		return j
	}
	n := p.workers
	start := int(p.seedCtr.Add(1)) % n
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == w {
			continue
		}
		if j, ok := p.deques[v].StealHead(); ok {
			return j
		}
	}
	return nil
}

func (p *Pool) runJob(w int, j *job, panicked *atomic.Value) {
	defer func() {
		//numaws:recover-ok goroutine relay, not containment: the panic is re-raised on the caller's goroutine by Pool.Run
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, fmt.Sprint(r))
			p.done.Store(true)
		}
		if j.parent != nil {
			j.parent.pending.Add(-1)
		}
	}()
	j.ctx.worker = w
	j.fn(j.ctx)
	j.ctx.Sync() // implicit sync at return, as in Cilk
}

// nativeCtx implements core.Context with real parallelism and no cost model.
type nativeCtx struct {
	pool    *Pool
	place   int
	worker  int
	pending atomic.Int64
}

var _ core.Context = (*nativeCtx)(nil)

func (c *nativeCtx) Spawn(t core.Task)          { c.spawnAt(c.place, t) }
func (c *nativeCtx) SpawnAt(p int, t core.Task) { c.spawnAt(p, t) }

func (c *nativeCtx) spawnAt(place int, t core.Task) {
	child := &nativeCtx{pool: c.pool, place: place, worker: c.worker}
	c.pending.Add(1)
	c.pool.deques[c.worker].PushTail(&job{fn: t, ctx: child, parent: c})
}

// Sync waits for this frame's children, helping execute pending work while
// waiting (a blocked worker would waste a core).
func (c *nativeCtx) Sync() {
	var panicked atomic.Value
	backoff := 0
	for c.pending.Load() > 0 {
		if j := c.pool.findWork(c.worker); j != nil {
			backoff = 0
			c.pool.runJob(c.worker, j, &panicked)
			if v := panicked.Load(); v != nil {
				panic(v)
			}
			continue
		}
		backoff++
		if backoff > 16 {
			runtime.Gosched()
		}
	}
}

// Call gives the callee its own sync scope, matching Cilk's function-scoped
// cilk_sync: a sync inside t must not wait for the caller's children.
func (c *nativeCtx) Call(t core.Task) {
	child := &nativeCtx{pool: c.pool, place: c.place, worker: c.worker}
	t(child)
	child.Sync() // implicit sync at function return
}

func (c *nativeCtx) Compute(int64)                                         {}
func (c *nativeCtx) Read(*memory.Region, int64, int64)                     {}
func (c *nativeCtx) Write(*memory.Region, int64, int64)                    {}
func (c *nativeCtx) ReadStrided(*memory.Region, int64, int64, int64, int)  {}
func (c *nativeCtx) WriteStrided(*memory.Region, int64, int64, int64, int) {}

func (c *nativeCtx) NumPlaces() int { return c.pool.places }
func (c *nativeCtx) Place() int     { return c.place }
func (c *nativeCtx) SetPlace(p int) { c.place = p }
func (c *nativeCtx) Worker() int    { return c.worker }
