// Package trace records and renders per-worker execution timelines from the
// scheduler engine — the visualization behind the paper's Fig. 3/Fig. 8 time
// breakdown: where each worker's cycles went (useful work, scheduler
// bookkeeping, idle probing) over the course of a run.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sched"
)

// span is one recorded interval.
type span struct {
	worker     int
	start, end int64
	kind       sched.TraceKind
}

// Timeline implements sched.Tracer: it records spans and renders them.
type Timeline struct {
	workers int
	spans   []span
	last    int64
	dropped int
}

var _ sched.Tracer = (*Timeline)(nil)

// New returns a timeline for a machine with the given worker count.
func New(workers int) *Timeline {
	return &Timeline{workers: workers}
}

// Span implements sched.Tracer. Zero-length spans (end == start) are
// legal instantaneous events: they contribute no cycles to totals or
// rendering but advance End, so a tracer hookup emitting only markers
// still produces a non-empty timeline. Malformed spans — a worker outside
// [0, workers) or end < start — are dropped and counted (Dropped), so a
// buggy hookup is detectable instead of silently rendering empty.
func (t *Timeline) Span(worker int, start, end int64, kind sched.TraceKind) {
	if worker < 0 || worker >= t.workers || end < start {
		t.dropped++
		return
	}
	t.spans = append(t.spans, span{worker: worker, start: start, end: end, kind: kind})
	if end > t.last {
		t.last = end
	}
}

// Spans reports the number of recorded spans.
func (t *Timeline) Spans() int { return len(t.spans) }

// Dropped reports how many malformed spans were rejected (out-of-range
// worker or end < start). A non-zero count means the tracer hookup is
// feeding the timeline garbage.
func (t *Timeline) Dropped() int { return t.dropped }

// End reports the latest recorded time.
func (t *Timeline) End() int64 { return t.last }

// Totals sums recorded cycles per kind for one worker (or all workers if
// worker < 0).
func (t *Timeline) Totals(worker int) (work, book, idle int64) {
	for _, s := range t.spans {
		if worker >= 0 && s.worker != worker {
			continue
		}
		d := s.end - s.start
		switch s.kind {
		case sched.TraceWork:
			work += d
		case sched.TraceBookkeeping:
			book += d
		default:
			idle += d
		}
	}
	return work, book, idle
}

// Utilization reports the fraction of [0, End] each worker spent on useful
// work.
func (t *Timeline) Utilization() []float64 {
	out := make([]float64, t.workers)
	if t.last == 0 {
		return out
	}
	for w := 0; w < t.workers; w++ {
		work, _, _ := t.Totals(w)
		out[w] = float64(work) / float64(t.last)
	}
	return out
}

// Render draws the timeline as one row per worker over `cols` time buckets.
// Each bucket shows the dominant activity: '#' work, '+' bookkeeping,
// '.' idle probing, ' ' nothing recorded.
func (t *Timeline) Render(cols int) string {
	if cols < 1 {
		cols = 64
	}
	if t.last == 0 {
		return "(empty timeline)\n"
	}
	// buckets[w][c][kind] accumulates cycles.
	buckets := make([][][3]int64, t.workers)
	for w := range buckets {
		buckets[w] = make([][3]int64, cols)
	}
	scale := float64(cols) / float64(t.last)
	for _, s := range t.spans {
		k := int(s.kind)
		if k > 2 {
			k = 2
		}
		// Distribute the span's cycles across the buckets it overlaps.
		c0 := int(float64(s.start) * scale)
		c1 := int(float64(s.end-1) * scale)
		if c1 >= cols {
			c1 = cols - 1
		}
		for c := c0; c <= c1; c++ {
			bLo := int64(float64(c) / scale)
			bHi := int64(float64(c+1) / scale)
			lo, hi := s.start, s.end
			if bLo > lo {
				lo = bLo
			}
			if bHi < hi {
				hi = bHi
			}
			if hi > lo {
				buckets[s.worker][c][k] += hi - lo
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d cycles across %d workers ('#' work, '+' bookkeeping, '.' idle)\n", t.last, t.workers)
	for w := 0; w < t.workers; w++ {
		fmt.Fprintf(&b, "w%-3d |", w)
		for c := 0; c < cols; c++ {
			bb := buckets[w][c]
			switch {
			case bb[0] == 0 && bb[1] == 0 && bb[2] == 0:
				b.WriteByte(' ')
			case bb[0] >= bb[1] && bb[0] >= bb[2]:
				b.WriteByte('#')
			case bb[1] >= bb[2]:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		work, book, idle := t.Totals(w)
		total := work + book + idle
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(work) / float64(total)
		}
		fmt.Fprintf(&b, "| %5.1f%% work (w=%d b=%d i=%d)\n", pct, work, book, idle)
	}
	return b.String()
}
