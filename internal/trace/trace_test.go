package trace

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/topology"
)

func TestSpanRecordingAndTotals(t *testing.T) {
	tl := New(2)
	tl.Span(0, 0, 100, sched.TraceWork)
	tl.Span(0, 100, 130, sched.TraceBookkeeping)
	tl.Span(1, 0, 80, sched.TraceIdle)
	if tl.Spans() != 3 {
		t.Errorf("Spans() = %d, want 3", tl.Spans())
	}
	if tl.End() != 130 {
		t.Errorf("End() = %d, want 130", tl.End())
	}
	work, book, idle := tl.Totals(0)
	if work != 100 || book != 30 || idle != 0 {
		t.Errorf("worker 0 totals = (%d,%d,%d), want (100,30,0)", work, book, idle)
	}
	work, book, idle = tl.Totals(-1)
	if work != 100 || book != 30 || idle != 80 {
		t.Errorf("all totals = (%d,%d,%d), want (100,30,80)", work, book, idle)
	}
}

func TestMalformedSpansDroppedAndCounted(t *testing.T) {
	tl := New(2)
	tl.Span(-1, 0, 10, sched.TraceWork) // worker below range
	tl.Span(5, 0, 10, sched.TraceWork)  // worker above range
	tl.Span(0, 10, 5, sched.TraceWork)  // negative length
	if tl.Spans() != 0 {
		t.Errorf("malformed spans were recorded: %d", tl.Spans())
	}
	// The drops are counted, so a buggy tracer hookup fails loudly
	// instead of silently rendering an empty timeline.
	if tl.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tl.Dropped())
	}
}

func TestZeroLengthSpansAreLegalInstants(t *testing.T) {
	tl := New(2)
	tl.Span(0, 10, 10, sched.TraceWork) // instantaneous event
	tl.Span(1, 25, 25, sched.TraceIdle)
	if tl.Spans() != 2 {
		t.Fatalf("zero-length spans not recorded: %d", tl.Spans())
	}
	if tl.Dropped() != 0 {
		t.Errorf("zero-length spans counted as dropped: %d", tl.Dropped())
	}
	// Instants carry no cycles but do advance the timeline's end.
	if work, book, idle := tl.Totals(-1); work != 0 || book != 0 || idle != 0 {
		t.Errorf("instants contributed cycles: (%d,%d,%d)", work, book, idle)
	}
	if tl.End() != 25 {
		t.Errorf("End() = %d, want 25", tl.End())
	}
	// Rendering stays well-formed (no panic, one row per worker) even
	// when instants land at bucket boundaries.
	tl.Span(0, 0, 100, sched.TraceWork)
	if out := tl.Render(10); !strings.Contains(out, "w0") || !strings.Contains(out, "w1") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestUtilization(t *testing.T) {
	tl := New(2)
	tl.Span(0, 0, 100, sched.TraceWork)
	tl.Span(1, 0, 50, sched.TraceWork)
	tl.Span(1, 50, 100, sched.TraceIdle)
	u := tl.Utilization()
	if u[0] != 1.0 || u[1] != 0.5 {
		t.Errorf("utilization = %v, want [1.0, 0.5]", u)
	}
}

func TestRenderShape(t *testing.T) {
	tl := New(2)
	tl.Span(0, 0, 1000, sched.TraceWork)
	tl.Span(1, 0, 500, sched.TraceIdle)
	tl.Span(1, 500, 1000, sched.TraceBookkeeping)
	out := tl.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render has %d lines, want header + 2 workers:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "####") {
		t.Errorf("worker 0 row lacks work marks: %q", lines[1])
	}
	if !strings.Contains(lines[2], ".") || !strings.Contains(lines[2], "+") {
		t.Errorf("worker 1 row lacks idle/bookkeeping marks: %q", lines[2])
	}
	if Timeline := New(1); !strings.Contains(Timeline.Render(10), "empty") {
		t.Error("empty timeline should render a placeholder")
	}
}

// TestEndToEndWithEngine traces a real engine run and checks the recorded
// totals agree with the engine's own accounting.
func TestEndToEndWithEngine(t *testing.T) {
	tl := New(8)
	cfg := sched.Config{
		Topology: topology.XeonE5_4620(),
		Workers:  8,
		Policy:   sched.NUMAWS,
		Seed:     5,
		Tracer:   tl,
	}
	r := &fanoutRunner{depth: 5, leafCost: 2000}
	e := sched.NewEngine(cfg, r)
	st := e.Run(sched.NewRootFrame(sched.PlaceAny))

	work, _, _ := tl.Totals(-1)
	if work != st.WorkTotal() {
		t.Errorf("traced work %d != engine work %d", work, st.WorkTotal())
	}
	if tl.End() < st.Makespan {
		t.Errorf("trace end %d before makespan %d", tl.End(), st.Makespan)
	}
	if tl.Spans() == 0 {
		t.Fatal("no spans recorded")
	}
	out := tl.Render(60)
	if !strings.Contains(out, "w0") || !strings.Contains(out, "w7") {
		t.Errorf("render missing worker rows:\n%s", out)
	}
}

// fanoutRunner is a tiny scripted binary tree for the end-to-end test.
type fanoutRunner struct {
	depth    int
	leafCost int64
}

type fanoutState struct {
	depth   int
	spawned bool
	synced  bool
}

func (r *fanoutRunner) Resume(w int, f *sched.Frame) sched.Yield {
	st, _ := f.Data.(*fanoutState)
	if st == nil {
		st = &fanoutState{depth: r.depth}
		f.Data = st
	}
	if st.depth == 0 {
		return sched.Yield{Kind: sched.YieldReturn, Cost: r.leafCost}
	}
	if !st.spawned {
		st.spawned = true
		child := sched.NewFrame(f, sched.PlaceAny)
		child.Data = &fanoutState{depth: st.depth - 1}
		return sched.Yield{Kind: sched.YieldSpawn, Cost: 10, Child: child}
	}
	if !st.synced {
		st.synced = true
		// Run the second half in this frame via a call.
		child := sched.NewCalledFrame(f, f.Place)
		child.Data = &fanoutState{depth: st.depth - 1}
		return sched.Yield{Kind: sched.YieldCall, Cost: 10, Child: child}
	}
	if st.depth > 0 && st.synced && st.spawned {
		st.depth = -1 // mark sync emitted next time
		return sched.Yield{Kind: sched.YieldSync, Cost: 10}
	}
	return sched.Yield{Kind: sched.YieldReturn, Cost: 10}
}
