package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLIFOAtTail(t *testing.T) {
	d := New[int](8)
	for i := 1; i <= 3; i++ {
		d.PushTail(i)
	}
	for want := 3; want >= 1; want-- {
		got, ok := d.PopTail()
		if !ok || got != want {
			t.Fatalf("PopTail() = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if _, ok := d.PopTail(); ok {
		t.Error("PopTail on empty deque succeeded")
	}
}

func TestFIFOAtHead(t *testing.T) {
	d := New[int](8)
	for i := 1; i <= 3; i++ {
		d.PushTail(i)
	}
	for want := 1; want <= 3; want++ {
		got, ok := d.StealHead()
		if !ok || got != want {
			t.Fatalf("StealHead() = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if _, ok := d.StealHead(); ok {
		t.Error("StealHead on empty deque succeeded")
	}
}

func TestOwnerAndThiefInterleaved(t *testing.T) {
	d := New[int](8)
	d.PushTail(1) // oldest
	d.PushTail(2)
	d.PushTail(3) // newest
	if got, _ := d.StealHead(); got != 1 {
		t.Errorf("thief got %d, want 1 (oldest)", got)
	}
	if got, _ := d.PopTail(); got != 3 {
		t.Errorf("owner got %d, want 3 (newest)", got)
	}
	if got, _ := d.PopTail(); got != 2 {
		t.Errorf("owner got %d, want 2", got)
	}
	if d.Len() != 0 {
		t.Errorf("Len() = %d, want 0", d.Len())
	}
}

func TestPeekHead(t *testing.T) {
	d := New[int](4)
	if _, ok := d.PeekHead(); ok {
		t.Error("PeekHead on empty succeeded")
	}
	d.PushTail(7)
	got, ok := d.PeekHead()
	if !ok || got != 7 {
		t.Errorf("PeekHead() = (%d, %v), want (7, true)", got, ok)
	}
	if d.Len() != 1 {
		t.Error("PeekHead consumed the item")
	}
}

func TestCompactionOnFull(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 4; i++ {
		d.PushTail(i)
	}
	// Steal two to free space at the front; pushes should compact.
	d.StealHead()
	d.StealHead()
	d.PushTail(4)
	d.PushTail(5)
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		got, ok := d.StealHead()
		if !ok || got != w {
			t.Fatalf("after compaction StealHead() = (%d, %v), want (%d, true)", got, ok, w)
		}
	}
}

func TestCapacityPanic(t *testing.T) {
	d := New[int](2)
	d.PushTail(1)
	d.PushTail(2)
	defer func() {
		if recover() == nil {
			t.Error("overfull push did not panic")
		}
	}()
	d.PushTail(3)
}

func TestZeroCapacityGetsDefault(t *testing.T) {
	d := New[int](0)
	for i := 0; i < 100; i++ {
		d.PushTail(i)
	}
	if d.Len() != 100 {
		t.Errorf("Len() = %d, want 100", d.Len())
	}
}

// Property: any sequence of pushes then k steals + j pops partitions the
// items: steals see the oldest k in order, pops see the newest j newest-first.
func TestPartitionProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		count := int(n)%32 + 1
		steals := int(k) % (count + 1)
		d := New[int](64)
		for i := 0; i < count; i++ {
			d.PushTail(i)
		}
		for i := 0; i < steals; i++ {
			got, ok := d.StealHead()
			if !ok || got != i {
				return false
			}
		}
		for i := count - 1; i >= steals; i-- {
			got, ok := d.PopTail()
			if !ok || got != i {
				return false
			}
		}
		_, ok := d.PopTail()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Concurrent stress: one owner pushes/pops, many thieves steal. Every item
// must be consumed exactly once in total.
func TestConcurrentOwnerThieves(t *testing.T) {
	const items = 20000
	const thieves = 4
	d := New[int64](items + 1)
	var consumed atomic.Int64
	var stolen atomic.Int64
	var wg sync.WaitGroup

	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := d.StealHead(); ok {
					consumed.Add(1)
					stolen.Add(1)
				}
				select {
				case <-stop:
					// Drain anything left before exiting.
					for {
						if _, ok := d.StealHead(); !ok {
							return
						}
						consumed.Add(1)
						stolen.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: push all items, popping a few along the way like a real worker.
	for i := int64(0); i < items; i++ {
		d.PushTail(i)
		if i%3 == 0 {
			if _, ok := d.PopTail(); ok {
				consumed.Add(1)
			}
		}
	}
	// Owner drains its remainder.
	for {
		if _, ok := d.PopTail(); !ok {
			break
		}
		consumed.Add(1)
	}
	close(stop)
	wg.Wait()
	// Final sweep in case a thief parked an index transiently.
	for {
		if _, ok := d.StealHead(); !ok {
			break
		}
		consumed.Add(1)
	}

	if got := consumed.Load(); got != items {
		t.Errorf("consumed %d items, want %d", got, items)
	}
}

func TestConcurrentNoDuplicates(t *testing.T) {
	const items = 5000
	d := New[int](items)
	seen := make([]atomic.Int32, items)
	var wg sync.WaitGroup
	done := make(chan struct{})

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.StealHead(); ok {
					seen[v].Add(1)
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		d.PushTail(i)
		if v, ok := d.PopTail(); ok {
			seen[v].Add(1)
		}
	}
	close(done)
	wg.Wait()
	for {
		if v, ok := d.StealHead(); ok {
			seen[v].Add(1)
		} else {
			break
		}
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, n)
		}
	}
}

func TestStealHalfTakesCeilHalfFromHead(t *testing.T) {
	for n := 0; n <= 9; n++ {
		d := New[int](16)
		for i := 0; i < n; i++ {
			d.PushTail(i)
		}
		dst := make([]int, 16)
		got := d.StealHalf(dst)
		want := (n + 1) / 2
		if got != want {
			t.Fatalf("n=%d: StealHalf took %d items, want %d", n, got, want)
		}
		for i := 0; i < got; i++ {
			if dst[i] != i {
				t.Fatalf("n=%d: dst[%d] = %d, want %d (oldest first)", n, i, dst[i], i)
			}
		}
		if d.Len() != n-want {
			t.Fatalf("n=%d: victim kept %d items, want %d", n, d.Len(), n-want)
		}
		// The victim's remaining items are the deeper half, still poppable
		// in LIFO order.
		for i := n - 1; i >= want; i-- {
			v, ok := d.PopTail()
			if !ok || v != i {
				t.Fatalf("n=%d: PopTail() = (%d, %v), want (%d, true)", n, v, ok, i)
			}
		}
	}
}

func TestStealHalfBoundedByDst(t *testing.T) {
	d := New[int](16)
	for i := 0; i < 10; i++ {
		d.PushTail(i)
	}
	dst := make([]int, 2)
	if got := d.StealHalf(dst); got != 2 {
		t.Fatalf("StealHalf with len-2 dst took %d, want 2", got)
	}
	if dst[0] != 0 || dst[1] != 1 {
		t.Fatalf("StealHalf took %v, want [0 1]", dst)
	}
	if d.Len() != 8 {
		t.Fatalf("victim has %d items, want 8", d.Len())
	}
	if got := d.StealHalf(nil); got != 0 {
		t.Fatalf("StealHalf with nil dst took %d, want 0", got)
	}
}

func TestStealHalfConcurrentNoDuplicates(t *testing.T) {
	const items = 5000
	d := New[int](items)
	seen := make([]atomic.Int32, items)
	var wg sync.WaitGroup
	done := make(chan struct{})

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]int, items)
			for {
				k := d.StealHalf(dst)
				for j := 0; j < k; j++ {
					seen[dst[j]].Add(1)
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		d.PushTail(i)
		if v, ok := d.PopTail(); ok {
			seen[v].Add(1)
		}
	}
	close(done)
	wg.Wait()
	for {
		if v, ok := d.StealHead(); ok {
			seen[v].Add(1)
		} else {
			break
		}
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, n)
		}
	}
}
