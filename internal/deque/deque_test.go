package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLIFOAtTail(t *testing.T) {
	d := New[int](8)
	for i := 1; i <= 3; i++ {
		d.PushTail(i)
	}
	for want := 3; want >= 1; want-- {
		got, ok := d.PopTail()
		if !ok || got != want {
			t.Fatalf("PopTail() = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if _, ok := d.PopTail(); ok {
		t.Error("PopTail on empty deque succeeded")
	}
}

func TestFIFOAtHead(t *testing.T) {
	d := New[int](8)
	for i := 1; i <= 3; i++ {
		d.PushTail(i)
	}
	for want := 1; want <= 3; want++ {
		got, ok := d.StealHead()
		if !ok || got != want {
			t.Fatalf("StealHead() = (%d, %v), want (%d, true)", got, ok, want)
		}
	}
	if _, ok := d.StealHead(); ok {
		t.Error("StealHead on empty deque succeeded")
	}
}

func TestOwnerAndThiefInterleaved(t *testing.T) {
	d := New[int](8)
	d.PushTail(1) // oldest
	d.PushTail(2)
	d.PushTail(3) // newest
	if got, _ := d.StealHead(); got != 1 {
		t.Errorf("thief got %d, want 1 (oldest)", got)
	}
	if got, _ := d.PopTail(); got != 3 {
		t.Errorf("owner got %d, want 3 (newest)", got)
	}
	if got, _ := d.PopTail(); got != 2 {
		t.Errorf("owner got %d, want 2", got)
	}
	if d.Len() != 0 {
		t.Errorf("Len() = %d, want 0", d.Len())
	}
}

func TestPeekHead(t *testing.T) {
	d := New[int](4)
	if _, ok := d.PeekHead(); ok {
		t.Error("PeekHead on empty succeeded")
	}
	d.PushTail(7)
	got, ok := d.PeekHead()
	if !ok || got != 7 {
		t.Errorf("PeekHead() = (%d, %v), want (7, true)", got, ok)
	}
	if d.Len() != 1 {
		t.Error("PeekHead consumed the item")
	}
}

func TestCompactionOnFull(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 4; i++ {
		d.PushTail(i)
	}
	// Steal two to free space at the front; pushes should compact.
	d.StealHead()
	d.StealHead()
	d.PushTail(4)
	d.PushTail(5)
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		got, ok := d.StealHead()
		if !ok || got != w {
			t.Fatalf("after compaction StealHead() = (%d, %v), want (%d, true)", got, ok, w)
		}
	}
}

func TestCapacityPanic(t *testing.T) {
	d := New[int](2)
	d.PushTail(1)
	d.PushTail(2)
	defer func() {
		if recover() == nil {
			t.Error("overfull push did not panic")
		}
	}()
	d.PushTail(3)
}

func TestZeroCapacityGetsDefault(t *testing.T) {
	d := New[int](0)
	for i := 0; i < 100; i++ {
		d.PushTail(i)
	}
	if d.Len() != 100 {
		t.Errorf("Len() = %d, want 100", d.Len())
	}
}

// Property: any sequence of pushes then k steals + j pops partitions the
// items: steals see the oldest k in order, pops see the newest j newest-first.
func TestPartitionProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		count := int(n)%32 + 1
		steals := int(k) % (count + 1)
		d := New[int](64)
		for i := 0; i < count; i++ {
			d.PushTail(i)
		}
		for i := 0; i < steals; i++ {
			got, ok := d.StealHead()
			if !ok || got != i {
				return false
			}
		}
		for i := count - 1; i >= steals; i-- {
			got, ok := d.PopTail()
			if !ok || got != i {
				return false
			}
		}
		_, ok := d.PopTail()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Concurrent stress: one owner pushes/pops, many thieves steal. Every item
// must be consumed exactly once in total.
func TestConcurrentOwnerThieves(t *testing.T) {
	const items = 20000
	const thieves = 4
	d := New[int64](items + 1)
	var consumed atomic.Int64
	var stolen atomic.Int64
	var wg sync.WaitGroup

	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := d.StealHead(); ok {
					consumed.Add(1)
					stolen.Add(1)
				}
				select {
				case <-stop:
					// Drain anything left before exiting.
					for {
						if _, ok := d.StealHead(); !ok {
							return
						}
						consumed.Add(1)
						stolen.Add(1)
					}
				default:
				}
			}
		}()
	}

	// Owner: push all items, popping a few along the way like a real worker.
	for i := int64(0); i < items; i++ {
		d.PushTail(i)
		if i%3 == 0 {
			if _, ok := d.PopTail(); ok {
				consumed.Add(1)
			}
		}
	}
	// Owner drains its remainder.
	for {
		if _, ok := d.PopTail(); !ok {
			break
		}
		consumed.Add(1)
	}
	close(stop)
	wg.Wait()
	// Final sweep in case a thief parked an index transiently.
	for {
		if _, ok := d.StealHead(); !ok {
			break
		}
		consumed.Add(1)
	}

	if got := consumed.Load(); got != items {
		t.Errorf("consumed %d items, want %d", got, items)
	}
}

func TestConcurrentNoDuplicates(t *testing.T) {
	const items = 5000
	d := New[int](items)
	seen := make([]atomic.Int32, items)
	var wg sync.WaitGroup
	done := make(chan struct{})

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.StealHead(); ok {
					seen[v].Add(1)
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		d.PushTail(i)
		if v, ok := d.PopTail(); ok {
			seen[v].Add(1)
		}
	}
	close(done)
	wg.Wait()
	for {
		if v, ok := d.StealHead(); ok {
			seen[v].Add(1)
		} else {
			break
		}
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("item %d consumed %d times, want exactly once", i, n)
		}
	}
}
