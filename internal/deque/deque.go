// Package deque implements the THE-protocol work-stealing deque from Cilk-5
// (Frigo, Leiserson, Randall, PLDI 1998), which the paper keeps unchanged in
// NUMA-WS: "The THE protocol remains unchanged in NUMA-WS".
//
// The protocol's point is the work-first principle applied to deque access:
// the victim (owner) pushes and pops at the tail without taking a lock in
// the common case, and only synchronizes with a thief when both race for the
// last item. Thieves always lock and take from the head (the oldest, and in
// the ABP potential argument the "top-heavy", item).
//
// The deque is safe for one owner plus any number of concurrent thieves: the
// simulator uses it single-threaded (events are serialized in virtual time)
// and the native executor uses it with real goroutine thieves.
package deque

import (
	"sync"
	"sync/atomic"
)

// Deque is a THE-protocol double-ended queue. The zero value is unusable;
// call New.
type Deque[T any] struct {
	head  atomic.Int64 // H: next index a thief would steal
	tail  atomic.Int64 // T: next index the owner would push
	lock  sync.Mutex   // the "E" in THE: taken by thieves, and by the owner on conflict
	tasks []T
	zero  T
}

// DefaultCapacity bounds deque depth. Depth equals the spawn depth of the
// computation (one entry per in-flight spawned ancestor), which is
// logarithmic for divide-and-conquer programs, so this is generous.
const DefaultCapacity = 1 << 16

// New returns an empty deque with the given capacity (DefaultCapacity if
// capacity <= 0). Capacity is fixed: growing the backing array under a
// concurrent thief read would be unsafe without extra indirection, and
// spawn depth bounds usage.
func New[T any](capacity int) *Deque[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Deque[T]{tasks: make([]T, capacity)}
}

// PushTail adds x at the tail. Owner-only. It panics if the deque is full
// (spawn depth exceeded capacity).
//
//numaws:alloc-free
func (d *Deque[T]) PushTail(x T) {
	t := d.tail.Load()
	if int(t) == len(d.tasks) {
		// Out of room: compact under the lock. Entries live in [H, T);
		// shift them to the front. Thieves are excluded by the lock.
		d.lock.Lock()
		h := d.head.Load()
		if int(t-h) >= len(d.tasks) {
			d.lock.Unlock()
			panic("deque: capacity exceeded")
		}
		copy(d.tasks, d.tasks[h:t])
		d.tail.Store(t - h)
		d.head.Store(0)
		t = d.tail.Load()
		d.lock.Unlock()
	}
	d.tasks[t] = x
	d.tail.Store(t + 1)
}

// PopTail removes and returns the item at the tail. Owner-only. The fast
// path takes no lock; the owner locks only when it races a thief for the
// final item, per the THE protocol.
//
//numaws:alloc-free
func (d *Deque[T]) PopTail() (T, bool) {
	t := d.tail.Load() - 1
	d.tail.Store(t)
	h := d.head.Load()
	if h > t {
		// Possible conflict with a thief: restore, lock, retry.
		d.tail.Store(t + 1)
		d.lock.Lock()
		h = d.head.Load()
		t = d.tail.Load() - 1
		d.tail.Store(t)
		if h > t {
			// The deque is empty (the thief won).
			d.tail.Store(t + 1)
			d.lock.Unlock()
			return d.zero, false
		}
		d.lock.Unlock()
	}
	x := d.tasks[t]
	d.tasks[t] = d.zero
	return x, true
}

// StealHead removes and returns the item at the head. Thief side: always
// locks.
//
//numaws:alloc-free
func (d *Deque[T]) StealHead() (T, bool) {
	d.lock.Lock()
	defer d.lock.Unlock()
	h := d.head.Load()
	d.head.Store(h + 1)
	if h+1 > d.tail.Load() {
		d.head.Store(h) // lost to the owner; restore
		return d.zero, false
	}
	x := d.tasks[h]
	d.tasks[h] = d.zero
	return x, true
}

// StealHalf removes up to half the items in the deque (rounded up) from
// the head into dst and returns how many were taken, in deque order (the
// oldest first — dst[0] is exactly the frame StealHead would have taken).
// Thief side: always locks, like StealHead, and the owner may still race
// it for the final items through the lock-free PopTail fast path, so every
// item is taken with the same increment-then-check handshake as a
// single-frame steal; a lost race stops the bulk transfer early rather
// than double-claiming the item. Taking at most half (of the size observed
// at entry) preserves the ABP potential argument's shape: the victim keeps
// the deeper half of its deque, so a bulk-stealing policy still spreads
// top-heavy work without draining its victims.
//
//numaws:alloc-free
func (d *Deque[T]) StealHalf(dst []T) int {
	d.lock.Lock()
	defer d.lock.Unlock()
	n := d.tail.Load() - d.head.Load()
	if n <= 0 {
		return 0
	}
	k := (n + 1) / 2
	if int64(len(dst)) < k {
		k = int64(len(dst))
	}
	taken := 0
	for int64(taken) < k {
		h := d.head.Load()
		d.head.Store(h + 1)
		if h+1 > d.tail.Load() {
			d.head.Store(h) // lost to the owner; keep what we have
			break
		}
		dst[taken] = d.tasks[h]
		d.tasks[h] = d.zero
		taken++
	}
	return taken
}

// PeekHead returns the head item without removing it, for diagnostics and
// the simulator's deterministic inspection. It takes the lock.
//
//numaws:alloc-free
func (d *Deque[T]) PeekHead() (T, bool) {
	d.lock.Lock()
	defer d.lock.Unlock()
	h, t := d.head.Load(), d.tail.Load()
	if h >= t {
		return d.zero, false
	}
	return d.tasks[h], true
}

// Len reports the current number of items. Racy under concurrency; exact
// when used single-threaded (as in the simulator).
//
//numaws:alloc-free
func (d *Deque[T]) Len() int {
	n := int(d.tail.Load() - d.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the deque has no items (same caveat as Len).
//
//numaws:alloc-free
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }
