package topology

// Parameterized machine shapes and the named preset registry. The paper
// evaluates one fixed machine (4 sockets x 8 cores, XeonE5_4620); everything
// here exists to open that axis: generic constructors for common NUMA shapes
// plus a parser so experiment surfaces (numaws sweep, harness.Machines) can
// name topologies on the command line.

import (
	"fmt"
	"strings"
)

// Ring builds a topology whose sockets are connected in a cycle, with hop
// distance the minimum number of links between two sockets — the shape of
// point-to-point interconnects (QPI/UPI rings) when vendors scale past
// fully-connected socket counts. Ring(2, c) is fully connected; Ring(4, c)
// has the same distance multiset as the paper's machine.
func Ring(sockets, coresPerSocket int) *Topology {
	d := make([][]int, sockets)
	for i := range d {
		d[i] = make([]int, sockets)
		for j := range d[i] {
			hops := i - j
			if hops < 0 {
				hops = -hops
			}
			if around := sockets - hops; around < hops {
				hops = around
			}
			d[i][j] = hops
		}
	}
	return MustNew(sockets, coresPerSocket, d)
}

// Clustered builds a sub-NUMA-clustering topology: packages physical
// packages, each split into clustersPerPackage NUMA nodes of coresPerCluster
// cores. Nodes in the same package are one hop apart (they share an on-die
// mesh); nodes in different packages are two hops apart (a cross-package
// link plus the on-die hop). This is the shape `numactl --hardware` reports
// on an SNC-enabled Xeon.
func Clustered(packages, clustersPerPackage, coresPerCluster int) *Topology {
	if packages <= 0 || clustersPerPackage <= 0 {
		panic(fmt.Sprintf("topology: invalid clustered shape %dx%dx%d",
			packages, clustersPerPackage, coresPerCluster))
	}
	nodes := packages * clustersPerPackage
	d := make([][]int, nodes)
	for i := range d {
		d[i] = make([]int, nodes)
		for j := range d[i] {
			switch {
			case i == j:
				d[i][j] = 0
			case i/clustersPerPackage == j/clustersPerPackage:
				d[i][j] = 1
			default:
				d[i][j] = 2
			}
		}
	}
	return MustNew(nodes, coresPerCluster, d)
}

// presets is the named topology registry, in display order. Every preset has
// 32 cores so sweeps compare machine shape, not machine size.
var presets = []struct {
	name  string
	about string
	build func() *Topology
}{
	{"paper-4x8", "the paper's 4-socket x 8-core Xeon E5-4620", XeonE5_4620},
	{"2x16", "2 sockets x 16 cores, fully connected", func() *Topology { return Ring(2, 16) }},
	{"8x4", "8 sockets x 4 cores on a ring (max 4 hops)", func() *Topology { return Ring(8, 4) }},
	{"snc-2x2x8", "2 packages x 2 sub-NUMA clusters x 8 cores", func() *Topology { return Clustered(2, 2, 8) }},
	{"uniform", "1 socket x 32 cores (UMA control)", func() *Topology { return SingleSocket(32) }},
}

// Presets returns the registered preset names in display order.
func Presets() []string {
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.name
	}
	return names
}

// Preset returns the named preset topology, or false if no such preset
// exists. Each call builds a fresh Topology.
func Preset(name string) (*Topology, bool) {
	for _, p := range presets {
		if p.name == name {
			return p.build(), true
		}
	}
	return nil, false
}

// Parse resolves a topology spec: a preset name (see Presets) or a generic
// "SxC" shape — S sockets of C cores on a ring interconnect, e.g. "2x4" or
// "16x8". Unknown specs return an error naming the accepted forms, so
// callers can surface it as a usage error instead of silently defaulting.
func Parse(spec string) (*Topology, error) {
	if t, ok := Preset(spec); ok {
		return t, nil
	}
	var sockets, cores int
	if n, err := fmt.Sscanf(spec, "%dx%d", &sockets, &cores); n == 2 && err == nil &&
		spec == fmt.Sprintf("%dx%d", sockets, cores) {
		if sockets <= 0 || cores <= 0 {
			return nil, fmt.Errorf("topology: shape %q must have positive sockets and cores", spec)
		}
		return Ring(sockets, cores), nil
	}
	return nil, fmt.Errorf("topology: unknown topology %q (want a preset — %s — or a SOCKETSxCORES shape like 2x4)",
		spec, strings.Join(Presets(), ", "))
}
